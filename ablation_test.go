package microsampler_test

import (
	"testing"

	"microsampler"
)

// TestAblationDataDepDivider is the variable-timing-arithmetic case
// study (constant-time principle 3): branchless code whose divisor
// width depends on a secret is clean on a fixed-latency divider and
// leaks on an early-terminating one.
func TestAblationDataDepDivider(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	fixed := verify(t, "CT-DIV", microsampler.MegaBoom(), 4)
	if fixed.AnyLeak() {
		t.Fatalf("fixed-latency divider: %s", microsampler.RenderSummary(fixed))
	}
	cfg := microsampler.MegaBoom()
	cfg.DataDepDivide = true
	dd := verify(t, "CT-DIV", cfg, 4)
	div, _ := dd.Unit(microsampler.EUUDIV)
	if !div.Leaky() {
		t.Fatal("early-out divider: EUU-DIV not flagged")
	}
	// The leak is pure timing: the timing-free view must be clean
	// everywhere (the Fig. 9 diagnosis applied in reverse).
	for _, u := range dd.Units {
		if u.AssocNoTiming.Leaky() {
			t.Errorf("%v: timing-free view flagged a pure-latency leak", u.Unit)
		}
	}
}

// TestAblationPrefetcher shows the tracked-unit coverage question of
// Section VII-D (false negatives): with the next-line prefetcher
// disabled, its class-distinguishing state disappears, while the other
// address units still catch the ME-V1-MV leak.
func TestAblationPrefetcher(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	cfg := microsampler.MegaBoom()
	cfg.NextLinePrefetcher = false
	rep := verify(t, "ME-V1-MV", cfg, 4)
	nlp, _ := rep.Unit(microsampler.NLPADDR)
	if nlp.Leaky() {
		t.Error("NLP-ADDR flagged with the prefetcher disabled")
	}
	sq, _ := rep.Unit(microsampler.SQADDR)
	cache, _ := rep.Unit(microsampler.CACHEADDR)
	if !sq.Leaky() || !cache.Leaky() {
		t.Error("address leak must still be caught without the prefetcher")
	}
}

// TestAblationPValueGuard reproduces the false-positive discussion of
// Section VII-D: a workload whose per-iteration state is unique (a
// pointer-chasing stream at iteration-dependent addresses) yields raw
// Cramér's V of 1 on address units, but the chi-squared p-value rejects
// it and nothing is flagged.
func TestAblationPValueGuard(t *testing.T) {
	w := microsampler.Workload{
		Name: "STREAM",
		Source: `
	.text
_start:
	la   s2, buf
	la   t0, base_off     # per-run random offset (like heap ASLR):
	ld   t0, 0(t0)        # every snapshot is globally unique
	add  s2, s2, t0
	li   s3, 16           # iterations
	li   s4, 0
	la   s5, bits
	roi.begin
loop:
	add  t1, s5, s4
	lbu  t1, 0(t1)        # per-run random class bit
	iter.begin t1
	slli t2, s4, 7        # iteration-unique address
	add  t2, t2, s2
	ld   t3, 0(t2)
	sd   t3, 8(t2)
	iter.end
	addi s4, s4, 1
	bltu s4, s3, loop
	roi.end
	li a0, 0
	li a7, 93
	ecall
	.data
base_off: .dword 0
bits:     .zero 16
buf: .zero 65536
`,
		Setup: func(run int, m *microsampler.Machine, prog *microsampler.Program) error {
			m.Memory().Write(prog.MustSymbol("base_off"), 8, uint64(run)*4096+128)
			bits := prog.MustSymbol("bits")
			for i := 0; i < 16; i++ {
				// Deterministic pseudo-random class bits per run.
				b := uint64((i*7+run*13)>>1) & 1
				m.Memory().Write(bits+uint64(i), 1, b)
			}
			return nil
		},
	}
	rep, err := microsampler.Verify(w, microsampler.Options{Runs: 2, Warmup: 2})
	if err != nil {
		t.Fatal(err)
	}
	lq, _ := rep.Unit(microsampler.LQADDR)
	if lq.Assoc.V < 0.9 {
		t.Errorf("expected near-1 raw V from all-unique snapshots, got %v", lq.Assoc)
	}
	if lq.Assoc.Significant() {
		t.Errorf("all-unique snapshots must be insignificant: %v", lq.Assoc)
	}
	if rep.AnyLeak() {
		t.Errorf("p-value guard failed: %s", microsampler.RenderSummary(rep))
	}
}

// TestDetectionRobustAcrossConfigs runs the headline detections on
// SmallBoom: the verdicts must not depend on the large configuration.
func TestDetectionRobustAcrossConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	small := microsampler.SmallBoom()

	safe := verify(t, "ME-V2-SAFE", small, 4)
	if safe.AnyLeak() {
		t.Errorf("SmallBoom: safe kernel flagged: %s", microsampler.RenderSummary(safe))
	}
	mv := verify(t, "ME-V1-MV", small, 4)
	if sq, _ := mv.Unit(microsampler.SQADDR); !sq.Leaky() {
		t.Error("SmallBoom: ME-V1-MV address leak missed")
	}
	if pc, _ := mv.Unit(microsampler.SQPC); pc.Leaky() {
		t.Error("SmallBoom: ME-V1-MV SQ-PC wrongly flagged")
	}
	cv := verify(t, "ME-V1-CV", small, 4)
	if n := len(cv.LeakyUnits()); n < 10 {
		t.Errorf("SmallBoom: ME-V1-CV only flagged %d units", n)
	}
}
