package microsampler_test

import (
	"testing"

	"microsampler"
)

// TestWindowedExponentiation exercises multi-class (4-valued secret)
// analysis end-to-end: the secret-indexed power table leaks exactly
// through the load-address and cache-request channels; the masked-scan
// variant is clean.
func TestWindowedExponentiation(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	lkup := verify(t, "ME-WIN4-LKUP", microsampler.MegaBoom(), 5)
	if classes := len(microsampler.MeanCyclesByClass(lkup.Iterations)); classes != 4 {
		t.Fatalf("expected 4 secret classes, saw %d", classes)
	}
	leaks := leakySet(lkup)
	if !leaks[microsampler.LQADDR] || !leaks[microsampler.CACHEADDR] {
		t.Errorf("table lookup should leak through LQ-ADDR and Cache-ADDR: %s",
			microsampler.RenderSummary(lkup))
	}
	for u := range leaks {
		if u != microsampler.LQADDR && u != microsampler.CACHEADDR {
			t.Errorf("unexpected leaky unit %v", u)
		}
	}
	lq, _ := lkup.Unit(microsampler.LQADDR)
	if lq.Assoc.Rows != 4 || lq.Assoc.Cols != 4 {
		t.Errorf("expected a 4x4 contingency table, got %dx%d",
			lq.Assoc.Rows, lq.Assoc.Cols)
	}

	safe := verify(t, "ME-WIN4-SAFE", microsampler.MegaBoom(), 5)
	if safe.AnyLeak() {
		t.Errorf("scan-select variant flagged: %s", microsampler.RenderSummary(safe))
	}
}

// TestAESCaseStudies asserts the AES extension results: classic T-table
// AES is distinguishable through every tracked unit under cache
// pressure, while the table-preload countermeasure closes the residency
// and timing channels but leaves the access-pattern channels open.
func TestAESCaseStudies(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}

	t.Run("AES-TTABLE leaks broadly", func(t *testing.T) {
		rep := verify(t, "AES-TTABLE", microsampler.MegaBoom(), 4)
		if n := len(rep.LeakyUnits()); n < 12 {
			t.Fatalf("T-table AES flagged only %d units: %s",
				n, microsampler.RenderSummary(rep))
		}
		for _, must := range []microsampler.Unit{
			microsampler.LQADDR, microsampler.CACHEADDR, microsampler.MSHRADDR,
			microsampler.LFBADDR,
		} {
			u, _ := rep.Unit(must)
			if !u.Leaky() {
				t.Errorf("unit %v not flagged", must)
			}
		}
	})

	t.Run("AES-PRELOAD closes residency but not access pattern", func(t *testing.T) {
		rep := verify(t, "AES-PRELOAD", microsampler.MegaBoom(), 4)
		for _, stillLeaky := range []microsampler.Unit{
			microsampler.LQADDR, microsampler.CACHEADDR, microsampler.TLBADDR,
		} {
			u, _ := rep.Unit(stillLeaky)
			if !u.Leaky() {
				t.Errorf("access-pattern unit %v should remain flagged", stillLeaky)
			}
		}
		for _, closed := range []microsampler.Unit{
			microsampler.MSHRADDR, microsampler.LFBADDR, microsampler.NLPADDR,
			microsampler.SQADDR, microsampler.ROBPC, microsampler.EUUDIV,
		} {
			u, _ := rep.Unit(closed)
			if u.Leaky() {
				t.Errorf("residency/timing unit %v should be closed by preloading", closed)
			}
		}
	})
}

// TestChaCha20Clean asserts the ARX cipher's clean verdict: the same
// key-distinguishing experiment that separates AES's T-table kernel
// finds nothing in ChaCha20.
func TestChaCha20Clean(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rep := verify(t, "CHACHA20", microsampler.MegaBoom(), 4)
	if rep.AnyLeak() {
		t.Fatalf("ChaCha20 flagged: %s", microsampler.RenderSummary(rep))
	}
}

// TestSpectrePHT asserts the transient-execution showcase: the
// bounds-check-bypass victim is architecturally constant (the probe
// always returns 0), yet the secret-indexed transient load separates
// the classes through the memory-observation units, with the probe
// array's two lines extracted as the unique features.
func TestSpectrePHT(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rep := verify(t, "SPECTRE-PHT", microsampler.MegaBoom(), 8)
	leaks := leakySet(rep)
	for _, must := range []microsampler.Unit{
		microsampler.LQADDR, microsampler.CACHEADDR, microsampler.MSHRADDR,
		microsampler.LFBADDR, microsampler.NLPADDR,
	} {
		if !leaks[must] {
			t.Errorf("unit %v must catch the transient access", must)
		}
	}
	for _, clean := range []microsampler.Unit{
		microsampler.SQADDR, microsampler.SQPC, microsampler.EUUALU,
		microsampler.EUUMUL, microsampler.ROBPC,
	} {
		if leaks[clean] {
			t.Errorf("unit %v should be clean (no architectural divergence)", clean)
		}
	}
	lq, _ := rep.Unit(microsampler.LQADDR)
	if len(lq.UniqueFeatures[0]) != 1 || len(lq.UniqueFeatures[1]) != 1 {
		t.Errorf("expected exactly one unique transient line per class: %v",
			lq.UniqueFeatures)
	}
	// The unique features are the two probe-array lines, 64 bytes apart.
	a, b := lq.UniqueFeatures[0][0], lq.UniqueFeatures[1][0]
	if b-a != 64 && a-b != 64 {
		t.Errorf("unique lines %#x/%#x are not adjacent probe lines", a, b)
	}
}
