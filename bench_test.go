// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section VII). Each benchmark runs the corresponding
// experiment end-to-end and prints the artefact (chart, table or
// histogram) the paper reports; wall-clock time of the verification
// pipeline is what the benchmark measures.
//
//	go test -bench=. -benchmem
//
// EXPERIMENTS.md records the paper-vs-measured comparison for each.
package microsampler_test

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"microsampler"
)

var printOnce sync.Map

// emit prints an artefact once per benchmark name, so repeated
// calibration calls of the benchmark body do not duplicate output.
func emit(name, artefact string) {
	if _, dup := printOnce.LoadOrStore(name, true); !dup {
		fmt.Fprintf(os.Stdout, "\n───── %s ─────\n%s", name, artefact)
	}
}

func verifyNamed(b *testing.B, name string, cfg microsampler.Config,
	runs int) *microsampler.Report {
	b.Helper()
	w, err := microsampler.WorkloadByName(name)
	if err != nil {
		b.Fatal(err)
	}
	rep, err := microsampler.Verify(w, microsampler.Options{
		Config: cfg, Runs: runs, Warmup: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

// BenchmarkTable2ContingencyTable regenerates Table II: the contingency
// table of snapshot-hash frequencies per key-bit class for the store
// queue of the ME-V1-MV case study.
func BenchmarkTable2ContingencyTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := verifyNamed(b, "ME-V1-MV", microsampler.MegaBoom(), 4)
		emit("Table II (SQ-ADDR contingency table, ME-V1-MV)",
			microsampler.RenderContingency(rep, microsampler.SQADDR, 8))
	}
}

// BenchmarkTable5OpenSSLPrimitives regenerates Table V: the sweep over
// the 28 OpenSSL constant-time primitives. Only CRYPTO_memcmp (via its
// return-value-dependent caller) may be flagged.
func BenchmarkTable5OpenSSLPrimitives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := fmt.Sprintf("%-36s %s\n", "Constant-time OpenSSL primitive", "Leakage")
		flagged := 0
		names := append([]string{"CRYPTO_memcmp"}, microsampler.OpenSSLPrimitiveNames()...)
		for _, name := range names {
			runs := 4
			if name == "CRYPTO_memcmp" {
				runs = 6
			}
			rep := verifyNamed(b, name, microsampler.MegaBoom(), runs)
			verdict := "x"
			if rep.AnyLeak() {
				verdict = "LEAK"
				flagged++
			}
			out += fmt.Sprintf("%-36s %s\n", name, verdict)
		}
		emit("Table V (OpenSSL constant-time primitive sweep)", out)
		if flagged != 1 {
			b.Fatalf("Table V: %d primitives flagged, want exactly 1 (CRYPTO_memcmp)", flagged)
		}
	}
}

// BenchmarkTable6StageBreakdown regenerates Table VI: per-stage analysis
// time for ME-V1-CV (the paper runs 4 1024-bit keys; this runs 4 32-bit
// keys — the relative stage shape, dominated by simulation and trace
// parsing, is the reproduced quantity).
func BenchmarkTable6StageBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := microsampler.WorkloadByName("ME-V1-CV")
		if err != nil {
			b.Fatal(err)
		}
		rep, err := microsampler.Verify(w, microsampler.Options{
			Config: microsampler.MegaBoom(), Runs: 4, Warmup: 4,
			MeasureStages: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		emit("Table VI (stage breakdown, ME-V1-CV, 4 keys)",
			microsampler.RenderStages(rep))
	}
}

// BenchmarkTable7Scalability regenerates Table VII: MicroSampler's
// near-linear scaling across SmallBoom -> MegaBoom versus the formal
// baseline's blow-up across the 1x ALU -> 8x SCARV designs.
func BenchmarkTable7Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		small := microsampler.SmallBoom()
		mega := microsampler.MegaBoom()

		w, err := microsampler.WorkloadByName("ME-V1-CV")
		if err != nil {
			b.Fatal(err)
		}
		timeFor := func(cfg microsampler.Config) (float64, int) {
			rep, err := microsampler.Verify(w, microsampler.Options{
				Config: cfg, Runs: 4, Warmup: 4, MeasureStages: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			return rep.Stages.Total().Seconds(), cfg.CoreStateBits()
		}
		tSmall, bitsSmall := timeFor(small)
		tMega, bitsMega := timeFor(mega)

		aluRes, err := microsampler.FormalCheck(microsampler.FormalALU(), 64)
		if err != nil {
			b.Fatal(err)
		}
		scarvRes, err := microsampler.FormalCheck(microsampler.FormalSCARV(), 2)
		if err != nil {
			b.Fatal(err)
		}
		if !aluRes.Holds() || !scarvRes.Holds() {
			b.Fatal("formal baseline reported spurious violations")
		}

		out := fmt.Sprintf("%-14s %-18s %12s %10s\n", "Tool", "Design (size)", "Analysis", "Scaling")
		out += fmt.Sprintf("%-14s %-18s %12.3fs\n", "MicroSampler",
			fmt.Sprintf("SmallBoom (%dKb)", bitsSmall/1000), tSmall)
		out += fmt.Sprintf("%-14s %-18s %12.3fs %8.1fx size / %.1fx time\n", "",
			fmt.Sprintf("MegaBoom (%dKb)", bitsMega/1000), tMega,
			float64(bitsMega)/float64(bitsSmall), tMega/tSmall)
		out += fmt.Sprintf("%-14s %-18s %12.3fs\n", "Formal (2-safety)",
			fmt.Sprintf("ALU (%d bits)", aluRes.StateBits), aluRes.Elapsed.Seconds())
		out += fmt.Sprintf("%-14s %-18s %12.3fs %8.1fx size / %.1fx time\n", "",
			fmt.Sprintf("SCARV (%d bits)", scarvRes.StateBits),
			scarvRes.Elapsed.Seconds(),
			float64(scarvRes.StateBits)/float64(aluRes.StateBits),
			scarvRes.Elapsed.Seconds()/aluRes.Elapsed.Seconds())
		emit("Table VII (scalability vs formal verification)", out)

		formalBlowup := scarvRes.Elapsed.Seconds() / aluRes.Elapsed.Seconds()
		msGrowth := tMega / tSmall
		if formalBlowup < 8 {
			b.Fatalf("formal blow-up %.1fx not superlinear for 8x design", formalBlowup)
		}
		if msGrowth > 8 {
			b.Fatalf("MicroSampler growth %.1fx exceeds design-size ratio", msGrowth)
		}
	}
}

// BenchmarkFig3MEV1CV regenerates Fig. 3: the compiler-vulnerability
// case leaks through (almost) every tracked unit.
func BenchmarkFig3MEV1CV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := verifyNamed(b, "ME-V1-CV", microsampler.MegaBoom(), 6)
		emit("Fig 3 (Cramér's V per unit, ME-V1-CV)", microsampler.RenderChart(rep))
		if n := len(rep.LeakyUnits()); n < 12 {
			b.Fatalf("Fig 3: only %d leaky units, want almost all", n)
		}
		b.ReportMetric(float64(len(rep.LeakyUnits())), "leaky-units")
	}
}

// BenchmarkFig4MEV1MV regenerates Fig. 4: the branchless variant leaks
// only through the address-carrying memory units.
func BenchmarkFig4MEV1MV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := verifyNamed(b, "ME-V1-MV", microsampler.MegaBoom(), 6)
		emit("Fig 4 (Cramér's V per unit, ME-V1-MV)", microsampler.RenderChart(rep))
		sq, _ := rep.Unit(microsampler.SQADDR)
		sqpc, _ := rep.Unit(microsampler.SQPC)
		if !sq.Leaky() || sqpc.Leaky() {
			b.Fatal("Fig 4 shape wrong: want SQ-ADDR leaky, SQ-PC clean")
		}
		b.ReportMetric(float64(len(rep.LeakyUnits())), "leaky-units")
	}
}

// BenchmarkFig5FeatureUniqueness regenerates Fig. 5: the unique SQ-ADDR
// features per key-bit class are the dst/dummy store addresses.
func BenchmarkFig5FeatureUniqueness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := verifyNamed(b, "ME-V1-MV", microsampler.MegaBoom(), 6)
		emit("Fig 5 (SQ-ADDR feature uniqueness, ME-V1-MV)",
			microsampler.RenderFeatures(rep, microsampler.SQADDR))
		sq, _ := rep.Unit(microsampler.SQADDR)
		if len(sq.UniqueFeatures[0]) == 0 || len(sq.UniqueFeatures[1]) == 0 {
			b.Fatal("Fig 5: both classes must have unique store addresses")
		}
	}
}

// BenchmarkFig6TimingDistributions regenerates Fig. 6: overlapping
// iteration-timing distributions without cache pressure (6a) and a
// clear separation once the dummy region is evicted between uses (6b).
func BenchmarkFig6TimingDistributions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		repA := verifyNamed(b, "ME-V1-MV-6A", microsampler.MegaBoom(), 6)
		repB := verifyNamed(b, "ME-V1-MV-6B", microsampler.MegaBoom(), 6)
		emit("Fig 6a (no prior access)",
			microsampler.RenderHistogram("ME-V1-MV-6A", repA.Iterations))
		emit("Fig 6b (dst resident)",
			microsampler.RenderHistogram("ME-V1-MV-6B", repB.Iterations))
		mA := microsampler.MeanCyclesByClass(repA.Iterations)
		mB := microsampler.MeanCyclesByClass(repB.Iterations)
		sep := func(m map[uint64]float64) float64 {
			d := m[0] - m[1]
			if d < 0 {
				d = -d
			}
			return d
		}
		if sep(mA) > 3 {
			b.Fatalf("Fig 6a: distributions separated by %.1f cycles, want overlap", sep(mA))
		}
		if sep(mB) < 5 || mB[0] < mB[1] {
			b.Fatalf("Fig 6b: want dst-class (bit 1) faster by >=5 cycles, got %+v", mB)
		}
		b.ReportMetric(sep(mB), "fig6b-separation-cycles")
	}
}

// BenchmarkFig7MEV2Safe regenerates Fig. 7: the BearSSL conditional copy
// shows no statistically significant correlation on the baseline core.
func BenchmarkFig7MEV2Safe(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := verifyNamed(b, "ME-V2-SAFE", microsampler.MegaBoom(), 6)
		emit("Fig 7 (Cramér's V per unit, ME-V2-Safe)", microsampler.RenderChart(rep))
		if rep.AnyLeak() {
			b.Fatalf("Fig 7: safe kernel flagged: %s", microsampler.RenderSummary(rep))
		}
	}
}

// BenchmarkFig9FastBypass regenerates Fig. 9: the same safe kernel on a
// core with the fast-bypass optimisation, with and without timing
// information in the snapshots.
func BenchmarkFig9FastBypass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := microsampler.MegaBoom()
		cfg.FastBypass = true
		rep := verifyNamed(b, "ME-V2-SAFE", cfg, 6)
		emit("Fig 9 (ME-V2-FB, with/without timing)",
			microsampler.RenderTimingChart(rep))
		sq, _ := rep.Unit(microsampler.SQADDR)
		alu, _ := rep.Unit(microsampler.EUUALU)
		rob, _ := rep.Unit(microsampler.ROBOCPNCY)
		if !sq.Leaky() {
			b.Fatal("Fig 9: SQ-ADDR must correlate with timing included")
		}
		if sq.AssocNoTiming.Leaky() {
			b.Fatal("Fig 9: SQ-ADDR correlation must disappear without timing")
		}
		// The folded AND survives timing removal on the ALU (it never
		// executes for key bit 0) and on the reorder buffer (the fused
		// entry changes the occupancy sequence).
		if !alu.AssocNoTiming.Leaky() || !rob.AssocNoTiming.Leaky() {
			b.Fatal("Fig 9: EUU-ALU and ROB occupancy must survive timing removal")
		}
	}
}

// BenchmarkExtAESKeyDistinguishing is the AES extension study: classic
// T-table AES-128 versus the table-preload countermeasure, as a
// two-candidate-key distinguishing experiment under cache pressure.
func BenchmarkExtAESKeyDistinguishing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ttable := verifyNamed(b, "AES-TTABLE", microsampler.MegaBoom(), 4)
		preload := verifyNamed(b, "AES-PRELOAD", microsampler.MegaBoom(), 4)
		emit("Extension: AES key distinguishing",
			microsampler.RenderSummary(ttable)+
				microsampler.RenderSummary(preload))
		chacha := verifyNamed(b, "CHACHA20", microsampler.MegaBoom(), 4)
		emit("Extension: ChaCha20 (ARX, constant-time by construction)",
			microsampler.RenderSummary(chacha))
		if n := len(ttable.LeakyUnits()); n < 12 {
			b.Fatalf("T-table AES flagged only %d units", n)
		}
		if chacha.AnyLeak() {
			b.Fatal("ChaCha20 wrongly flagged")
		}
		lq, _ := preload.Unit(microsampler.LQADDR)
		mshr, _ := preload.Unit(microsampler.MSHRADDR)
		if !lq.Leaky() || mshr.Leaky() {
			b.Fatal("preload countermeasure shape wrong")
		}
		b.ReportMetric(float64(len(preload.LeakyUnits())), "preload-leaky-units")
	}
}

// BenchmarkExtWindowedExponentiation is the multi-class extension
// study: fixed-window exponentiation with a 4-valued secret class per
// iteration, comparing the secret-indexed power table against the
// constant-time scan.
func BenchmarkExtWindowedExponentiation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lkup := verifyNamed(b, "ME-WIN4-LKUP", microsampler.MegaBoom(), 5)
		safe := verifyNamed(b, "ME-WIN4-SAFE", microsampler.MegaBoom(), 5)
		emit("Extension: windowed exponentiation (4 classes)",
			microsampler.RenderSummary(lkup)+microsampler.RenderSummary(safe)+
				microsampler.RenderContingency(lkup, microsampler.LQADDR, 6))
		if lq, _ := lkup.Unit(microsampler.LQADDR); !lq.Leaky() {
			b.Fatal("window lookup leak not detected")
		}
		if safe.AnyLeak() {
			b.Fatal("scan-select variant wrongly flagged")
		}
	}
}

// BenchmarkExtSpectrePHT is the transient-execution extension study: a
// bounds-check-bypass victim whose secret dependence exists only in
// mispredicted (squashed) execution. It must be flagged on the
// memory-observation units with the two transient probe lines as the
// extracted features, and stay clean on the architectural-activity
// units.
func BenchmarkExtSpectrePHT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := verifyNamed(b, "SPECTRE-PHT", microsampler.MegaBoom(), 8)
		emit("Extension: Spectre-PHT (transient-only leakage)",
			microsampler.RenderSummary(rep)+
				microsampler.RenderFeatures(rep, microsampler.LQADDR))
		lq, _ := rep.Unit(microsampler.LQADDR)
		mshr, _ := rep.Unit(microsampler.MSHRADDR)
		alu, _ := rep.Unit(microsampler.EUUALU)
		if !lq.Leaky() || !mshr.Leaky() || alu.Leaky() {
			b.Fatal("Spectre-PHT shape wrong")
		}
	}
}

// BenchmarkAblationDataDepDivider is the DESIGN.md ablation for the
// divider model: the CT-DIV kernel (branchless, constant addresses,
// secret-width divide) is clean on the fixed-latency divider and flagged
// on the early-terminating one — constant-time principle 3 in action.
func BenchmarkAblationDataDepDivider(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fixed := verifyNamed(b, "CT-DIV", microsampler.MegaBoom(), 4)
		cfg := microsampler.MegaBoom()
		cfg.DataDepDivide = true
		dd := verifyNamed(b, "CT-DIV", cfg, 4)
		emit("Ablation: divider model (CT-DIV)",
			"fixed latency:  "+microsampler.RenderSummary(fixed)+
				"early-out:      "+microsampler.RenderSummary(dd))
		if fixed.AnyLeak() {
			b.Fatal("fixed-latency divider flagged a clean kernel")
		}
		if div, _ := dd.Unit(microsampler.EUUDIV); !div.Leaky() {
			b.Fatal("early-out divider leak not detected")
		}
	}
}

// BenchmarkAblationPrefetcher is the DESIGN.md ablation for prefetcher
// coverage: without the next-line prefetcher its evidence disappears but
// the other address units still flag ME-V1-MV.
func BenchmarkAblationPrefetcher(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := microsampler.MegaBoom()
		cfg.NextLinePrefetcher = false
		rep := verifyNamed(b, "ME-V1-MV", cfg, 4)
		emit("Ablation: prefetcher disabled (ME-V1-MV)",
			microsampler.RenderSummary(rep))
		nlp, _ := rep.Unit(microsampler.NLPADDR)
		sq, _ := rep.Unit(microsampler.SQADDR)
		if nlp.Leaky() || !sq.Leaky() {
			b.Fatal("prefetcher ablation shape wrong")
		}
	}
}

// BenchmarkFig10MemcmpTransient regenerates Fig. 10: CRYPTO_memcmp with
// a dependent caller branch leaks only through the reorder buffer.
func BenchmarkFig10MemcmpTransient(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := verifyNamed(b, "CT-MEM-CMP", microsampler.MegaBoom(), 8)
		emit("Fig 10 (Cramér's V per unit, CT-MEM-CMP)", microsampler.RenderChart(rep))
		rob, _ := rep.Unit(microsampler.ROBPC)
		if !rob.Leaky() {
			b.Fatal("Fig 10: ROB-PC must be flagged")
		}
		for _, u := range rep.LeakyUnits() {
			if u.Unit != microsampler.ROBPC && u.Unit != microsampler.ROBOCPNCY {
				b.Fatalf("Fig 10: unexpected leaky unit %v", u.Unit)
			}
		}
	}
}

// BenchmarkVerifyBaseline is the no-telemetry reference for
// BenchmarkVerifyWithTelemetry: the same workload and options with all
// observability surfaces off.
func BenchmarkVerifyBaseline(b *testing.B) {
	w, err := microsampler.WorkloadByName("ME-V1-MV")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := microsampler.Verify(w, microsampler.Options{
			Config: microsampler.SmallBoom(), Runs: 2, Warmup: 2,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerifyWithTelemetry measures the full observability path
// with no sink attached: a metrics registry plus in-memory span
// retention. Compare against BenchmarkVerifyBaseline; the instrumented
// run must stay within a few percent, because instrumentation is
// per-run/per-stage, never per-cycle.
func BenchmarkVerifyWithTelemetry(b *testing.B) {
	w, err := microsampler.WorkloadByName("ME-V1-MV")
	if err != nil {
		b.Fatal(err)
	}
	reg := microsampler.NewMetrics()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := microsampler.Verify(w, microsampler.Options{
			Config: microsampler.SmallBoom(), Runs: 2, Warmup: 2,
			Metrics: reg,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSamplingThroughput measures the end-to-end ingest rate of
// the per-cycle sampler: total state rows fed into the snapshot
// pipeline per second of wall-clock verification time. This is the
// number the allocation-free hot path moves; compare across commits
// with scripts/bench.sh.
func BenchmarkSamplingThroughput(b *testing.B) {
	w, err := microsampler.WorkloadByName("ME-V1-MV")
	if err != nil {
		b.Fatal(err)
	}
	var rows uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := microsampler.Verify(w, microsampler.Options{
			Config: microsampler.SmallBoom(), Runs: 2, Warmup: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, n := range rep.Samples {
			rows += n
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(rows)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkRetryOverhead measures the fault-tolerance machinery on the
// zero-fault path: the same workload as BenchmarkSamplingThroughput but
// with retries, a per-run deadline and the stall watchdog all armed.
// No fault ever fires, so the delta against BenchmarkSamplingThroughput
// is the pure bookkeeping cost (context plumbing, watchdog goroutine,
// panic guard) — it must stay within a few percent.
func BenchmarkRetryOverhead(b *testing.B) {
	w, err := microsampler.WorkloadByName("ME-V1-MV")
	if err != nil {
		b.Fatal(err)
	}
	var rows uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := microsampler.Verify(w, microsampler.Options{
			Config: microsampler.SmallBoom(), Runs: 2, Warmup: 2,
			Retry:      microsampler.RetryPolicy{Max: 3},
			RunTimeout: time.Minute,
			Watchdog:   10 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Retries != 0 {
			b.Fatalf("zero-fault run retried %d times", rep.Retries)
		}
		for _, n := range rep.Samples {
			rows += n
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(rows)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkCacheHit measures the content-addressed verdict cache
// against the simulation it replaces: one cold Verify primes the
// cache, then every iteration is a pure hit. The speedup-x metric is
// cold-time over per-hit time; the caching contract requires at least
// two orders of magnitude.
func BenchmarkCacheHit(b *testing.B) {
	w, err := microsampler.WorkloadByName("ME-V1-MV")
	if err != nil {
		b.Fatal(err)
	}
	cache := microsampler.NewVerifyCache(16)
	// The daemon's default job shape (MegaBoom, 4 runs) — the simulation
	// a cache hit actually replaces in production.
	opts := microsampler.Options{
		Config: microsampler.MegaBoom(), Runs: 4, Warmup: 4,
		Cache: cache,
	}
	start := time.Now()
	cold, err := microsampler.Verify(w, opts)
	if err != nil {
		b.Fatal(err)
	}
	coldDur := time.Since(start)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := microsampler.Verify(w, opts)
		if err != nil {
			b.Fatal(err)
		}
		if rep != cold {
			b.Fatal("cache hit returned a different report")
		}
	}
	b.StopTimer()
	if st := cache.Stats(); st.Hits != uint64(b.N) {
		b.Fatalf("cache hits = %d, want %d", st.Hits, b.N)
	}
	perHit := b.Elapsed().Seconds() / float64(b.N)
	speedup := coldDur.Seconds() / perHit
	b.ReportMetric(speedup, "speedup-x")
	if speedup < 100 {
		b.Fatalf("cache hit only %.0fx faster than simulation, want >=100x", speedup)
	}
}

// BenchmarkMatrixSweep measures configuration-grid sweep throughput:
// the TAGE-HIST config-flip workload fanned across a 2×4 grid
// (predictor × prefetcher, 8 cells), cells verified concurrently. The
// custom cells/s metric is the capacity number for sizing larger
// hardware-space sweeps.
func BenchmarkMatrixSweep(b *testing.B) {
	w, err := microsampler.WorkloadByName("TAGE-HIST")
	if err != nil {
		b.Fatal(err)
	}
	grid, err := microsampler.ParseGridSpec("prefetch=nlp,none,stride,both;predictor=gshare,tage")
	if err != nil {
		b.Fatal(err)
	}
	var cells int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := microsampler.MatrixOptions{Grid: grid, CellParallel: -1}
		opts.Runs = 2
		opts.Warmup = 2
		m, err := microsampler.VerifyMatrix(w, opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range m.Cells {
			if c.Err != "" {
				b.Fatalf("cell %s: %s", c.Name, c.Err)
			}
		}
		cells += len(m.Cells)
	}
	b.StopTimer()
	b.ReportMetric(float64(cells)/b.Elapsed().Seconds(), "cells/s")
}
