package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"microsampler"
)

// histDiff carries the CLI's differential-observability wiring: the
// optional run-history store this invocation records into, and the
// optional baseline (a history label or an artifact file) the fresh
// verdicts are diffed against. A diff that contains a verdict
// regression — any clean→leaky flip — is returned as an error, so the
// process exits nonzero: the CI gate.
type histDiff struct {
	store        *microsampler.HistoryStore
	label        string
	diffAgainst  string // history label to diff against
	baselineFile string // or: baseline artifact file to diff against
	diffOut      string
	diffHTML     string
	vdelta       float64
}

// active reports whether any history/diff work is requested (and hence
// whether the run needs its diffable artifact even on a cache replay).
func (hd *histDiff) active() bool {
	return hd != nil && (hd.store != nil || hd.diffAgainst != "" || hd.baselineFile != "")
}

// baseline resolves the diff baseline blob: the artifact file verbatim,
// or the named artifact of the latest history record carrying the
// -diff-against label. A (“”, nil, nil) return means no diff was
// requested.
func (hd *histDiff) baseline(kind, artName string) (string, []byte, error) {
	switch {
	case hd.baselineFile != "":
		data, err := os.ReadFile(hd.baselineFile)
		return hd.baselineFile, data, err
	case hd.diffAgainst != "":
		rec, ok := hd.store.Latest(hd.diffAgainst, "", kind)
		if !ok {
			return "", nil, fmt.Errorf("history: no %s record labeled %q in %s",
				kind, hd.diffAgainst, hd.store.Dir())
		}
		data, err := hd.store.Artifact(rec, artName)
		return hd.diffAgainst, data, err
	}
	return "", nil, nil
}

func (hd *histDiff) writeDiff(data []byte, html string) error {
	if hd.diffOut != "" {
		if err := os.WriteFile(hd.diffOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if hd.diffHTML != "" {
		if err := os.WriteFile(hd.diffHTML, []byte(html), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// finishReport records a single verification into the history store
// and, when a baseline is configured, diffs the fresh digest against it.
// The baseline is resolved before the append, so `-label X
// -diff-against X` compares against the previous run labeled X, not
// this one.
func (hd *histDiff) finishReport(rep *microsampler.Report, digest *microsampler.ReportDigest, digestJSON []byte, elapsed time.Duration) error {
	if !hd.active() {
		return nil
	}
	baseLabel, baseData, err := hd.baseline(microsampler.HistoryKindReport, "digest")
	if err != nil {
		return err
	}
	if hd.store != nil {
		rec := microsampler.HistoryRecord{
			Label:         hd.label,
			Workload:      rep.Workload,
			Kind:          microsampler.HistoryKindReport,
			Leaky:         rep.AnyLeak(),
			MaxV:          digest.MaxV(),
			Iterations:    len(rep.Iterations),
			SimCycles:     int64(rep.SimCycles),
			ElapsedMillis: elapsed.Milliseconds(),
		}
		for _, u := range rep.LeakyUnits() {
			rec.LeakyUnits = append(rec.LeakyUnits, u.Unit.String())
		}
		if _, err := hd.store.Append(rec, map[string][]byte{"digest": digestJSON}); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "microsampler: history: recorded %s / %s\n", rec.Label, rec.Workload)
	}
	if baseData == nil {
		return nil
	}
	var base microsampler.ReportDigest
	if err := json.Unmarshal(baseData, &base); err != nil {
		return fmt.Errorf("baseline digest %s: %w", baseLabel, err)
	}
	d := microsampler.BuildDiff(&base, digest, microsampler.DiffOptions{
		FromLabel: baseLabel, ToLabel: hd.label, VDelta: hd.vdelta,
	})
	data, err := d.JSON()
	if err != nil {
		return err
	}
	if err := hd.writeDiff(data, d.HTML(&base, digest)); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "microsampler: diff vs %s: %d flip(s), %d regression(s), %d improvement(s)\n",
		baseLabel, len(d.Flips), d.Regressions, d.Improvements)
	if d.Regression() {
		return fmt.Errorf("verdict regression vs %s: %d unit(s) flipped clean → leaky", baseLabel, d.Regressions)
	}
	return nil
}

// finishMatrix is finishReport for a grid sweep: the diffable artifact
// is the matrix artifact itself, and the record summarises the cells.
func (hd *histDiff) finishMatrix(art *microsampler.MatrixArtifact, artJSON []byte, elapsed time.Duration) error {
	if !hd.active() {
		return nil
	}
	baseLabel, baseData, err := hd.baseline(microsampler.HistoryKindMatrix, "matrix")
	if err != nil {
		return err
	}
	if hd.store != nil {
		rec := microsampler.HistoryRecord{
			Label:         hd.label,
			Workload:      art.Workload,
			Kind:          microsampler.HistoryKindMatrix,
			Cells:         len(art.Cells),
			ElapsedMillis: elapsed.Milliseconds(),
		}
		for _, c := range art.Cells {
			if c.Leaky {
				rec.Leaky = true
				rec.LeakyCells = append(rec.LeakyCells, c.Name)
			}
			if c.MaxV > rec.MaxV {
				rec.MaxV = c.MaxV
			}
			rec.Iterations += c.Iterations
			rec.SimCycles += int64(c.SimCycles)
		}
		if _, err := hd.store.Append(rec, map[string][]byte{"matrix": artJSON}); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "microsampler: history: recorded %s / %s\n", rec.Label, rec.Workload)
	}
	if baseData == nil {
		return nil
	}
	var base microsampler.MatrixArtifact
	if err := json.Unmarshal(baseData, &base); err != nil {
		return fmt.Errorf("baseline matrix %s: %w", baseLabel, err)
	}
	d := microsampler.BuildMatrixDiff(&base, art, microsampler.DiffOptions{
		FromLabel: baseLabel, ToLabel: hd.label, VDelta: hd.vdelta,
	})
	data, err := d.JSON()
	if err != nil {
		return err
	}
	if err := hd.writeDiff(data, d.HTML(&base, art)); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "microsampler: diff vs %s: %d common cell(s), %d flip(s), %d regression(s), %d improvement(s)\n",
		baseLabel, d.Cells, len(d.Flips), d.Regressions, d.Improvements)
	if d.Regression() {
		return fmt.Errorf("verdict regression vs %s: %d cell(s) flipped clean → leaky", baseLabel, d.Regressions)
	}
	return nil
}
