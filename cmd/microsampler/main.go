// Command microsampler runs the MicroSampler leakage-detection pipeline
// on a built-in case study or a user-supplied assembly program and
// prints the per-unit verdicts, charts and root-cause reports.
//
// Usage:
//
//	microsampler -list
//	microsampler -workload ME-V1-MV [-config mega|small] [-runs 8]
//	microsampler -workload ME-V2-SAFE -fast-bypass -timing-chart
//	microsampler -workload ME-V1-MV-6B -histogram
//	microsampler -workload ME-V1-MV -features SQ-ADDR -contingency SQ-ADDR
//	microsampler -src program.s -runs 4
//	microsampler -workload AES-TTABLE -json > report.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"microsampler"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "microsampler:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("microsampler", flag.ContinueOnError)
	var (
		list        = fs.Bool("list", false, "list built-in workloads and exit")
		workload    = fs.String("workload", "", "built-in case-study name")
		srcPath     = fs.String("src", "", "path to an RV64 assembly program to verify")
		config      = fs.String("config", "mega", "core configuration: mega or small")
		fastBypass  = fs.Bool("fast-bypass", false, "enable the fast-bypass optimisation (ME-V2-FB)")
		runs        = fs.Int("runs", 8, "independent runs (distinct keys/inputs)")
		warmup      = fs.Int("warmup", 4, "warmup iterations to drop per run")
		chart       = fs.Bool("chart", true, "print the Cramér's V bar chart")
		timingChart = fs.Bool("timing-chart", false, "print the with/without-timing chart (Fig. 9)")
		histogram   = fs.Bool("histogram", false, "print per-class iteration timing histogram (Fig. 6)")
		features    = fs.String("features", "", "print feature extraction for a unit (e.g. SQ-ADDR)")
		contingency = fs.String("contingency", "", "print the contingency table for a unit")
		stages      = fs.Bool("stages", false, "measure and print the stage-time breakdown (Table VI)")
		parallel    = fs.Int("parallel", -1, "concurrent simulation runs (-1: one per CPU, 1: sequential)")
		jsonOut     = fs.Bool("json", false, "emit the machine-readable JSON report instead of charts")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, n := range microsampler.WorkloadNames() {
			fmt.Println(n)
		}
		return nil
	}

	var w microsampler.Workload
	switch {
	case *workload != "":
		var err error
		w, err = microsampler.WorkloadByName(*workload)
		if err != nil {
			return err
		}
	case *srcPath != "":
		src, err := os.ReadFile(*srcPath)
		if err != nil {
			return err
		}
		w = microsampler.Workload{Name: *srcPath, Source: string(src)}
	default:
		return fmt.Errorf("one of -workload or -src is required (see -list)")
	}

	cfg, err := configByName(*config)
	if err != nil {
		return err
	}
	cfg.FastBypass = *fastBypass

	rep, err := microsampler.Verify(w, microsampler.Options{
		Config:        cfg,
		Runs:          *runs,
		Warmup:        *warmup,
		MeasureStages: *stages,
		Parallel:      *parallel,
	})
	if err != nil {
		return err
	}

	if *jsonOut {
		data, err := microsampler.RenderJSON(rep)
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}

	fmt.Print(microsampler.RenderSummary(rep))
	if *chart {
		fmt.Print(microsampler.RenderChart(rep))
	}
	if *timingChart {
		fmt.Print(microsampler.RenderTimingChart(rep))
	}
	if *histogram {
		fmt.Print(microsampler.RenderHistogram(rep.Workload, rep.Iterations))
	}
	if *features != "" {
		u, err := unitByName(*features)
		if err != nil {
			return err
		}
		fmt.Print(microsampler.RenderFeatures(rep, u))
	}
	if *contingency != "" {
		u, err := unitByName(*contingency)
		if err != nil {
			return err
		}
		fmt.Print(microsampler.RenderContingency(rep, u, 8))
	}
	if *stages {
		fmt.Print(microsampler.RenderStages(rep))
	}
	return nil
}

func configByName(name string) (microsampler.Config, error) {
	switch strings.ToLower(name) {
	case "mega", "megaboom":
		return microsampler.MegaBoom(), nil
	case "small", "smallboom":
		return microsampler.SmallBoom(), nil
	}
	return microsampler.Config{}, fmt.Errorf("unknown config %q (mega or small)", name)
}

func unitByName(name string) (microsampler.Unit, error) {
	for _, u := range microsampler.AllUnits() {
		if strings.EqualFold(u.String(), name) {
			return u, nil
		}
	}
	return 0, fmt.Errorf("unknown unit %q", name)
}
