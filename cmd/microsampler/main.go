// Command microsampler runs the MicroSampler leakage-detection pipeline
// on a built-in case study or a user-supplied assembly program and
// prints the per-unit verdicts, charts and root-cause reports.
//
// Usage:
//
//	microsampler -list
//	microsampler -workload ME-V1-MV [-config mega|small] [-runs 8]
//	microsampler -workload ME-V2-SAFE -fast-bypass -timing-chart
//	microsampler -workload ME-V1-MV-6B -histogram
//	microsampler -workload ME-V1-MV -features SQ-ADDR -contingency SQ-ADDR
//	microsampler -src program.s -runs 4
//	microsampler -workload AES-TTABLE -json > report.json
//	microsampler -workload ME-V1-MV -runs 4 -parallel 4 -metrics -trace-out spans.jsonl
//	microsampler -workload ME-V1-MV -progress -pprof localhost:6060
//	microsampler -workload ME-NAIVE -perfetto-out trace.json -heatmap-out heatmap.json -heatmap-html heatmap.html
//	microsampler -workload ME-V1-MV -run-timeout 30s -retries 2
//	microsampler -workload AES-TTABLE -provenance-out prov.json -provenance-html prov.html
//	microsampler -workload ME-V1-MV -flight-recorder 1024 -flight-recorder-out postmortem.json
//	microsampler -workload TAGE-HIST -matrix "prefetch=none,stride;predictor=gshare,tage" -matrix-out matrix.json -matrix-html matrix.html
//	microsampler -workload AES-TTABLE -json -cache-dir ~/.cache/microsampler
//	microsampler -workload CT-MEM-CMP -history-dir .ms-history -label "$(git rev-parse --short HEAD)"
//	microsampler -workload CT-MEM-CMP -history-dir .ms-history -diff-against baseline -diff-out diff.json -diff-html diff.html
//	microsampler -workload TAGE-HIST -matrix default -diff-baseline baselines/tage.json
//	microsampler -version
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"microsampler"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "microsampler:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("microsampler", flag.ContinueOnError)
	var (
		list        = fs.Bool("list", false, "list built-in workloads and exit")
		workload    = fs.String("workload", "", "built-in case-study name")
		srcPath     = fs.String("src", "", "path to an RV64 assembly program to verify")
		config      = fs.String("config", "mega", "core configuration: mega or small")
		fastBypass  = fs.Bool("fast-bypass", false, "enable the fast-bypass optimisation (ME-V2-FB)")
		runs        = fs.Int("runs", 8, "independent runs (distinct keys/inputs)")
		warmup      = fs.Int("warmup", 4, "warmup iterations to drop per run (0: keep all)")
		chart       = fs.Bool("chart", true, "print the Cramér's V bar chart")
		timingChart = fs.Bool("timing-chart", false, "print the with/without-timing chart (Fig. 9)")
		histogram   = fs.Bool("histogram", false, "print per-class iteration timing histogram (Fig. 6)")
		features    = fs.String("features", "", "print feature extraction for a unit (e.g. SQ-ADDR)")
		contingency = fs.String("contingency", "", "print the contingency table for a unit")
		stages      = fs.Bool("stages", false, "measure and print the stage-time breakdown (Table VI)")
		parallel    = fs.Int("parallel", -1, "concurrent simulation runs (-1: one per CPU, 1: sequential)")
		runTimeout  = fs.Duration("run-timeout", 0, "per-run wall-clock deadline (0: no deadline)")
		retries     = fs.Int("retries", 0, "retries per failed run for transient errors, with exponential backoff (0: fail fast)")
		jsonOut     = fs.Bool("json", false, "emit the machine-readable JSON report instead of charts")
		metrics     = fs.Bool("metrics", false, "print the telemetry metrics dump after the run")
		traceOut    = fs.String("trace-out", "", "write pipeline spans as JSON lines to FILE")
		perfettoOut = fs.String("perfetto-out", "", "write the pipeline trace as Perfetto/Chrome JSON to FILE (open in ui.perfetto.dev)")
		heatmapOut  = fs.String("heatmap-out", "", "write the leakage heatmap as JSON to FILE")
		heatmapHTML = fs.String("heatmap-html", "", "write the leakage heatmap as self-contained HTML to FILE")
		heatmapWin  = fs.Int("heatmap-windows", 16, "iteration windows in the leakage heatmap")
		matrixSpec  = fs.String("matrix", "", "sweep a configuration grid instead of a single config: a spec like base=small,mega;predictor=gshare,tage, or \"default\"")
		matrixOut   = fs.String("matrix-out", "", "write the matrix verdict artifact as JSON to FILE (with -matrix)")
		matrixHTML  = fs.String("matrix-html", "", "write the matrix verdict heatmap as self-contained HTML to FILE (with -matrix)")
		matrixPar   = fs.Int("matrix-parallel", 1, "concurrent grid cells (-1: one per CPU); composes with -parallel")
		provOut     = fs.String("provenance-out", "", "write the instruction-level leakage provenance as JSON to FILE")
		provHTML    = fs.String("provenance-html", "", "write the leakage provenance as self-contained HTML (ranked table + disassembly) to FILE")
		flightN     = fs.Int("flight-recorder", 0, "arm a per-run flight recorder of the last N cycles (0: off)")
		flightOut   = fs.String("flight-recorder-out", "", "on failure, write the flight-recorder post-mortem as Perfetto JSON to FILE (implies -flight-recorder 1024 when unset)")
		cacheDir    = fs.String("cache-dir", "", "content-addressed disk cache: -json reports and -matrix artifacts from identical earlier runs are replayed byte-for-byte without simulating")
		historyDir  = fs.String("history-dir", "", "append this run's verdict and diffable artifact to the run-history store at DIR")
		runLabel    = fs.String("label", "", "history label for this run (default: the VCS commit stamped into the binary, else \"unlabeled\")")
		diffAgainst = fs.String("diff-against", "", "diff this run against the latest history record with LABEL (requires -history-dir); exits nonzero on a verdict regression")
		diffBase    = fs.String("diff-baseline", "", "diff this run against the baseline artifact in FILE (a report digest or matrix artifact JSON); exits nonzero on a verdict regression")
		diffOut     = fs.String("diff-out", "", "write the diff artifact as JSON to FILE (with -diff-against or -diff-baseline)")
		diffHTML    = fs.String("diff-html", "", "write the diff as a self-contained side-by-side HTML document to FILE")
		diffVDelta  = fs.Float64("diff-vdelta", 0, "minimum |ΔV| reported as drift in diffs (0: the default 0.05)")
		digestOut   = fs.String("digest-out", "", "write the report digest — the diffable baseline artifact — as JSON to FILE")
		showVersion = fs.Bool("version", false, "print the version and build provenance, then exit")
		progress    = fs.Bool("progress", false, "print live per-run progress to stderr")
		pprofAddr   = fs.String("pprof", "", "serve net/http/pprof on ADDR (e.g. localhost:6060)")
		cpuProfile  = fs.String("cpuprofile", "", "write a CPU profile to FILE")
		memProfile  = fs.String("memprofile", "", "write a heap profile to FILE")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *showVersion {
		fmt.Println(microsampler.VersionLine("microsampler"))
		return nil
	}
	if *diffAgainst != "" && *historyDir == "" {
		return fmt.Errorf("-diff-against requires -history-dir")
	}
	if *diffAgainst != "" && *diffBase != "" {
		return fmt.Errorf("-diff-against and -diff-baseline are mutually exclusive")
	}

	if *pprofAddr != "" {
		ln := *pprofAddr
		go func() {
			if err := http.ListenAndServe(ln, nil); err != nil {
				fmt.Fprintln(os.Stderr, "microsampler: pprof server:", err)
			}
		}()
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "microsampler: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "microsampler: memprofile:", err)
			}
		}()
	}

	if *list {
		for _, n := range microsampler.WorkloadNames() {
			fmt.Println(n)
		}
		return nil
	}

	var w microsampler.Workload
	switch {
	case *workload != "":
		var err error
		w, err = microsampler.WorkloadByName(*workload)
		if err != nil {
			return err
		}
	case *srcPath != "":
		src, err := os.ReadFile(*srcPath)
		if err != nil {
			return err
		}
		w = microsampler.Workload{Name: *srcPath, Source: string(src)}
	default:
		return fmt.Errorf("one of -workload or -src is required (see -list)")
	}

	cfg, err := configByName(*config)
	if err != nil {
		return err
	}
	cfg.FastBypass = *fastBypass

	opts := microsampler.Options{
		Config:        cfg,
		Runs:          *runs,
		Warmup:        *warmup,
		MeasureStages: *stages,
		Parallel:      *parallel,
		RunTimeout:    *runTimeout,
		Retry:         microsampler.RetryPolicy{Max: *retries},
	}
	if *warmup == 0 {
		opts.Warmup = microsampler.NoWarmup
	}
	opts.FlightRecorderFrames = *flightN
	if *flightOut != "" && opts.FlightRecorderFrames == 0 {
		opts.FlightRecorderFrames = 1024
	}
	var reg *microsampler.MetricsRegistry
	if *metrics {
		reg = microsampler.NewMetrics()
		microsampler.BuildInfoGauge(reg, "microsampler_build_info")
		opts.Metrics = reg
	}
	var traceFile *os.File
	if *traceOut != "" {
		var err error
		traceFile, err = os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer traceFile.Close()
		opts.TraceSink = traceFile
	}
	if *progress {
		opts.OnProgress = func(p microsampler.Progress) {
			fmt.Fprintf(os.Stderr, "\rrun %d/%d done (%d cycles, %d iterations, %v elapsed)",
				p.Done, p.Total, p.Cycles, p.Iterations, p.Elapsed.Round(time.Millisecond))
			if p.Done == p.Total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	var diskCache *microsampler.DiskCache
	if *cacheDir != "" {
		var err error
		diskCache, err = microsampler.OpenDiskCache(*cacheDir)
		if err != nil {
			return err
		}
	}

	hd := &histDiff{
		label:        *runLabel,
		diffAgainst:  *diffAgainst,
		baselineFile: *diffBase,
		diffOut:      *diffOut,
		diffHTML:     *diffHTML,
		vdelta:       *diffVDelta,
	}
	if hd.label == "" {
		hd.label = microsampler.DefaultHistoryLabel()
	}
	if *historyDir != "" {
		store, err := microsampler.OpenHistory(*historyDir)
		if err != nil {
			return err
		}
		defer store.Close()
		hd.store = store
	}

	if *matrixSpec != "" {
		if *digestOut != "" {
			return fmt.Errorf("-digest-out applies to single-config runs; with -matrix the diffable artifact is -matrix-out")
		}
		return runMatrix(w, opts, *matrixSpec, *matrixOut, *matrixHTML, *matrixPar, diskCache, hd)
	}

	// The cached fast path replays the rendered report bytes, so it only
	// applies when the run's sole output is the -json report. History and
	// diff wiring needs the full report for its digest, so it disables
	// the fast path too.
	var cacheKey string
	if diskCache != nil && *jsonOut && !*metrics && !hd.active() &&
		*traceOut == "" && *perfettoOut == "" && *heatmapOut == "" &&
		*heatmapHTML == "" && *provOut == "" && *provHTML == "" && *digestOut == "" {
		key, err := microsampler.CacheKey(w, opts)
		if err != nil {
			return err
		}
		cacheKey = key
		if data, ok, err := diskCache.Get(key); err == nil && ok {
			fmt.Fprintln(os.Stderr, "microsampler: report replayed from cache")
			fmt.Println(string(data))
			return nil
		}
	}

	verifyStart := time.Now()
	rep, err := microsampler.Verify(w, opts)
	verifyElapsed := time.Since(verifyStart)
	if err != nil {
		// A failed run can still leave evidence: write the flight
		// recorder's post-mortem before surfacing the error.
		if *flightOut != "" {
			if dump, ok := microsampler.FlightDumpFromError(err); ok {
				data, jerr := microsampler.RenderFlightPerfetto(dump).JSON()
				if jerr == nil {
					jerr = os.WriteFile(*flightOut, append(data, '\n'), 0o644)
				}
				if jerr != nil {
					fmt.Fprintln(os.Stderr, "microsampler: flight recorder:", jerr)
				} else {
					fmt.Fprintf(os.Stderr, "microsampler: post-mortem written to %s (last %d cycles)\n",
						*flightOut, len(dump.Frames))
				}
			}
		}
		return err
	}

	if *perfettoOut != "" {
		data, err := microsampler.RenderPerfetto(rep).JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*perfettoOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if *heatmapOut != "" {
		data, err := microsampler.RenderHeatmapJSON(rep, *heatmapWin)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*heatmapOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if *heatmapHTML != "" {
		doc, err := microsampler.RenderHeatmapHTML(rep, *heatmapWin)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*heatmapHTML, []byte(doc), 0o644); err != nil {
			return err
		}
	}
	if *provOut != "" {
		data, err := microsampler.RenderProvenanceJSON(rep)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*provOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if *provHTML != "" {
		doc, err := microsampler.RenderProvenanceHTML(rep)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*provHTML, []byte(doc), 0o644); err != nil {
			return err
		}
	}

	// History recording and baseline diffing: the digest is the diffable
	// artifact of a single verification. A verdict regression surfaces
	// as diffErr after the requested outputs are written, so the process
	// exits nonzero (the CI gate) without swallowing the report.
	var diffErr error
	if hd.active() || *digestOut != "" {
		digest, err := microsampler.BuildDigest(rep)
		if err != nil {
			return err
		}
		digestJSON, err := digest.JSON()
		if err != nil {
			return err
		}
		if *digestOut != "" {
			if err := os.WriteFile(*digestOut, append(digestJSON, '\n'), 0o644); err != nil {
				return err
			}
		}
		diffErr = hd.finishReport(rep, digest, digestJSON, verifyElapsed)
	}

	if *jsonOut {
		data, err := microsampler.RenderJSON(rep)
		if err != nil {
			return err
		}
		if cacheKey != "" {
			if err := diskCache.Put(cacheKey, data); err != nil {
				fmt.Fprintln(os.Stderr, "microsampler: cache write:", err)
			}
		}
		fmt.Println(string(data))
		if reg != nil {
			fmt.Print(microsampler.RenderMetrics(reg))
		}
		return diffErr
	}

	fmt.Print(microsampler.RenderSummary(rep))
	if *chart {
		fmt.Print(microsampler.RenderChart(rep))
	}
	if *timingChart {
		fmt.Print(microsampler.RenderTimingChart(rep))
	}
	if *histogram {
		fmt.Print(microsampler.RenderHistogram(rep.Workload, rep.Iterations))
	}
	if *features != "" {
		u, err := unitByName(*features)
		if err != nil {
			return err
		}
		fmt.Print(microsampler.RenderFeatures(rep, u))
	}
	if *contingency != "" {
		u, err := unitByName(*contingency)
		if err != nil {
			return err
		}
		fmt.Print(microsampler.RenderContingency(rep, u, 8))
	}
	if *stages {
		fmt.Print(microsampler.RenderStages(rep))
	}
	if reg != nil {
		fmt.Print(microsampler.RenderMetrics(reg))
	}
	return diffErr
}

// matrixCacheEntry is the cached form of one full matrix invocation:
// the verdict text plus both rendered artifacts, so a replay is
// byte-identical to the original run whatever outputs are requested.
type matrixCacheEntry struct {
	Text string `json:"text"`
	JSON []byte `json:"json"` // rendered artifact, base64 so it round-trips verbatim
	HTML string `json:"html"`
}

// runMatrix sweeps the workload over a configuration grid, prints the
// per-cell verdicts and writes the requested artifacts. With a disk
// cache, an identical earlier sweep is replayed without simulating —
// history recording and baseline diffing still run off the replayed
// artifact, so the CI gate costs microseconds on an unchanged tree.
func runMatrix(w microsampler.Workload, opts microsampler.Options, spec, jsonOut, htmlOut string, cellParallel int, disk *microsampler.DiskCache, hd *histDiff) error {
	var (
		grid microsampler.GridSpec
		err  error
	)
	if strings.EqualFold(spec, "default") {
		grid = microsampler.DefaultGrid()
	} else if grid, err = microsampler.ParseGridSpec(spec); err != nil {
		return err
	}
	mo := microsampler.MatrixOptions{Options: opts, Grid: grid, CellParallel: cellParallel}

	var cacheKey string
	if disk != nil {
		key, err := microsampler.MatrixCacheKey(w, mo)
		if err != nil {
			return err
		}
		cacheKey = key
		if data, ok, err := disk.Get(key); err == nil && ok {
			var ent matrixCacheEntry
			if err := json.Unmarshal(data, &ent); err == nil {
				fmt.Fprintln(os.Stderr, "microsampler: matrix replayed from cache")
				fmt.Print(ent.Text)
				if err := writeMatrixArtifacts(jsonOut, htmlOut, ent.JSON, ent.HTML); err != nil {
					return err
				}
				if hd.active() {
					var art microsampler.MatrixArtifact
					if err := json.Unmarshal(ent.JSON, &art); err != nil {
						return fmt.Errorf("cached matrix artifact: %w", err)
					}
					return hd.finishMatrix(&art, ent.JSON, 0)
				}
				return nil
			}
			fmt.Fprintln(os.Stderr, "microsampler: cache entry corrupt, re-verifying:", err)
		}
	}

	sweepStart := time.Now()
	m, err := microsampler.VerifyMatrix(w, mo)
	sweepElapsed := time.Since(sweepStart)
	if err != nil {
		return err
	}
	var sb strings.Builder
	leaky := m.LeakyCells()
	fmt.Fprintf(&sb, "matrix %s: %d cells, %d leaky\n", m.Workload, len(m.Cells), len(leaky))
	for _, c := range m.Cells {
		switch {
		case c.Err != "":
			fmt.Fprintf(&sb, "  %-60s ERROR %s\n", c.Name, c.Err)
		case c.Leaky:
			units := make([]string, 0, len(c.Flagged))
			for _, f := range c.Flagged {
				units = append(units, fmt.Sprintf("%s V=%.3f", f.Unit, f.V))
			}
			fmt.Fprintf(&sb, "  %-60s LEAKY  %s\n", c.Name, strings.Join(units, ", "))
		default:
			fmt.Fprintf(&sb, "  %-60s clean\n", c.Name)
		}
	}
	fmt.Print(sb.String())

	art := microsampler.BuildMatrix(m)
	var artJSON []byte
	if cacheKey != "" || jsonOut != "" || hd.active() {
		if artJSON, err = art.JSON(); err != nil {
			return err
		}
	}
	var artHTML string
	if cacheKey != "" || htmlOut != "" {
		artHTML = art.HTML()
	}
	if cacheKey != "" {
		ent := matrixCacheEntry{Text: sb.String(), JSON: artJSON, HTML: artHTML}
		data, err := json.Marshal(ent)
		if err == nil {
			err = disk.Put(cacheKey, data)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "microsampler: cache write:", err)
		}
	}
	if err := writeMatrixArtifacts(jsonOut, htmlOut, artJSON, artHTML); err != nil {
		return err
	}
	return hd.finishMatrix(art, artJSON, sweepElapsed)
}

func writeMatrixArtifacts(jsonOut, htmlOut string, artJSON []byte, artHTML string) error {
	if jsonOut != "" {
		if err := os.WriteFile(jsonOut, append(artJSON, '\n'), 0o644); err != nil {
			return err
		}
	}
	if htmlOut != "" {
		if err := os.WriteFile(htmlOut, []byte(artHTML), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func configByName(name string) (microsampler.Config, error) {
	switch strings.ToLower(name) {
	case "mega", "megaboom":
		return microsampler.MegaBoom(), nil
	case "small", "smallboom":
		return microsampler.SmallBoom(), nil
	}
	return microsampler.Config{}, fmt.Errorf("unknown config %q (mega or small)", name)
}

func unitByName(name string) (microsampler.Unit, error) {
	for _, u := range microsampler.AllUnits() {
		if strings.EqualFold(u.String(), name) {
			return u, nil
		}
	}
	return 0, fmt.Errorf("unknown unit %q", name)
}
