package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"microsampler"
)

func TestConfigByName(t *testing.T) {
	for name, want := range map[string]string{
		"mega": "MegaBoom", "MEGA": "MegaBoom", "MegaBoom": "MegaBoom",
		"small": "SmallBoom", "smallboom": "SmallBoom",
	} {
		cfg, err := configByName(name)
		if err != nil || cfg.Name != want {
			t.Errorf("configByName(%q) = %v, %v", name, cfg.Name, err)
		}
	}
	if _, err := configByName("huge"); err == nil {
		t.Error("unknown config should error")
	}
}

func TestUnitByName(t *testing.T) {
	u, err := unitByName("sq-addr")
	if err != nil || u != microsampler.SQADDR {
		t.Errorf("unitByName(sq-addr) = %v, %v", u, err)
	}
	if _, err := unitByName("bogus"); err == nil {
		t.Error("unknown unit should error")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil ||
		!strings.Contains(err.Error(), "-workload or -src") {
		t.Errorf("missing workload: %v", err)
	}
	if err := run([]string{"-workload", "nope"}); err == nil {
		t.Error("unknown workload should error")
	}
	if err := run([]string{"-workload", "ME-NAIVE", "-config", "huge"}); err == nil {
		t.Error("unknown config should error")
	}
	if err := run([]string{"-src", "/definitely/missing.s"}); err == nil {
		t.Error("missing source file should error")
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSourceFile(t *testing.T) {
	src := `
	.text
_start:
	li   s2, 8
	roi.begin
loop:
	andi s3, s2, 1
	iter.begin s3
	mul  t0, s2, s2
	iter.end
	addi s2, s2, -1
	bnez s2, loop
	roi.end
	li a0, 0
	li a7, 93
	ecall
`
	path := filepath.Join(t.TempDir(), "prog.s")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-src", path, "-runs", "2", "-warmup", "1",
		"-config", "small", "-chart=false"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunJSON(t *testing.T) {
	if err := run([]string{"-workload", "ME-NAIVE", "-runs", "2",
		"-warmup", "2", "-config", "small", "-json"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunObservabilityFlags(t *testing.T) {
	dir := t.TempDir()
	traceFile := filepath.Join(dir, "spans.jsonl")
	err := run([]string{"-workload", "ME-NAIVE", "-runs", "2", "-warmup", "1",
		"-config", "small", "-parallel", "2", "-chart=false",
		"-metrics", "-trace-out", traceFile, "-progress"})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) < 10 {
		t.Fatalf("expected spans on sink, got %d lines", len(lines))
	}
	for _, line := range lines {
		var span map[string]interface{}
		if err := json.Unmarshal([]byte(line), &span); err != nil {
			t.Fatalf("malformed span line %q: %v", line, err)
		}
		for _, key := range []string{"id", "name", "startNs", "durNs"} {
			if _, ok := span[key]; !ok {
				t.Fatalf("span line missing %q: %s", key, line)
			}
		}
	}
}

func TestRunExportFlags(t *testing.T) {
	dir := t.TempDir()
	perfetto := filepath.Join(dir, "trace.json")
	hmJSON := filepath.Join(dir, "heatmap.json")
	hmHTML := filepath.Join(dir, "heatmap.html")
	err := run([]string{"-workload", "ME-NAIVE", "-runs", "2", "-warmup", "2",
		"-config", "small", "-chart=false",
		"-perfetto-out", perfetto,
		"-heatmap-out", hmJSON, "-heatmap-html", hmHTML, "-heatmap-windows", "8"})
	if err != nil {
		t.Fatal(err)
	}

	var trace struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	data, err := os.ReadFile(perfetto)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &trace); err != nil || len(trace.TraceEvents) == 0 {
		t.Errorf("perfetto trace: err=%v events=%d", err, len(trace.TraceEvents))
	}

	var hm struct {
		Windows int `json:"windows"`
		Units   []struct {
			Unit  string                   `json:"unit"`
			Cells []map[string]interface{} `json:"cells"`
		} `json:"units"`
	}
	data, err = os.ReadFile(hmJSON)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &hm); err != nil {
		t.Fatal(err)
	}
	if hm.Windows != 8 || len(hm.Units) == 0 || len(hm.Units[0].Cells) != 8 {
		t.Errorf("heatmap shape: windows=%d units=%d", hm.Windows, len(hm.Units))
	}

	html, err := os.ReadFile(hmHTML)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(html), "<svg") || !strings.Contains(string(html), "</html>") {
		t.Error("heatmap HTML incomplete")
	}
}

func TestRunProvenanceFlags(t *testing.T) {
	dir := t.TempDir()
	pvJSON := filepath.Join(dir, "prov.json")
	pvHTML := filepath.Join(dir, "prov.html")
	err := run([]string{"-workload", "ME-NAIVE", "-runs", "2", "-warmup", "2",
		"-config", "small", "-chart=false",
		"-provenance-out", pvJSON, "-provenance-html", pvHTML})
	if err != nil {
		t.Fatal(err)
	}
	var pv struct {
		Iterations int `json:"iterations"`
		Entries    []struct {
			Unit string `json:"unit"`
			PC   uint64 `json:"pc"`
			Via  string `json:"via"`
		} `json:"entries"`
	}
	data, err := os.ReadFile(pvJSON)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &pv); err != nil {
		t.Fatal(err)
	}
	// ME-NAIVE is the paper's canonical leaky case study: the ranking
	// must localize at least one instruction.
	if pv.Iterations == 0 || len(pv.Entries) == 0 {
		t.Errorf("provenance empty: iterations=%d entries=%d", pv.Iterations, len(pv.Entries))
	}
	html, err := os.ReadFile(pvHTML)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(html), "Leakage provenance") ||
		!strings.Contains(string(html), "</html>") {
		t.Error("provenance HTML incomplete")
	}
}

func TestRunFlightRecorderFlags(t *testing.T) {
	// A run that exits nonzero must fail AND leave the post-mortem.
	src := `
_start:
	li   t0, 50
spin:
	addi t0, t0, -1
	bnez t0, spin
	li a0, 9
	li a7, 93
	ecall
`
	dir := t.TempDir()
	prog := filepath.Join(dir, "fail.s")
	if err := os.WriteFile(prog, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "postmortem.json")
	err := run([]string{"-src", prog, "-runs", "1", "-config", "small",
		"-chart=false", "-flight-recorder-out", out})
	if err == nil {
		t.Fatal("want verification failure")
	}
	var doc struct {
		TraceEvents []map[string]any  `json:"traceEvents"`
		OtherData   map[string]string `json:"otherData"`
	}
	data, readErr := os.ReadFile(out)
	if readErr != nil {
		t.Fatalf("post-mortem not written: %v", readErr)
	}
	if err := json.Unmarshal(data, &doc); err != nil || len(doc.TraceEvents) == 0 {
		t.Errorf("post-mortem invalid: err=%v events=%d", err, len(doc.TraceEvents))
	}
	if doc.OtherData["source"] != "microsampler flight recorder" {
		t.Errorf("post-mortem otherData = %v", doc.OtherData)
	}
	// Explicit frame budget round-trips through the option layer:
	// negative values are rejected by validation.
	if err := run([]string{"-src", prog, "-runs", "1", "-config", "small",
		"-chart=false", "-flight-recorder", "-1"}); err == nil ||
		!strings.Contains(err.Error(), "FlightRecorderFrames") {
		t.Errorf("negative -flight-recorder: %v", err)
	}
}

func TestRunFaultToleranceFlags(t *testing.T) {
	err := run([]string{"-workload", "ME-NAIVE", "-runs", "2", "-warmup", "1",
		"-config", "small", "-chart=false",
		"-run-timeout", "30s", "-retries", "2"})
	if err != nil {
		t.Fatal(err)
	}
	// Negative values are rejected by option validation, not silently
	// clamped.
	if err := run([]string{"-workload", "ME-NAIVE", "-runs", "2", "-warmup", "1",
		"-config", "small", "-chart=false", "-retries", "-1"}); err == nil ||
		!strings.Contains(err.Error(), "Options.Retry") {
		t.Errorf("negative -retries: %v", err)
	}
	if err := run([]string{"-workload", "ME-NAIVE", "-runs", "2", "-warmup", "1",
		"-config", "small", "-chart=false", "-run-timeout", "-1s"}); err == nil ||
		!strings.Contains(err.Error(), "RunTimeout") {
		t.Errorf("negative -run-timeout: %v", err)
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and
// returns everything it printed, failing the test if fn errors.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	data, err := io.ReadAll(r)
	r.Close()
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	return string(data)
}

// countCacheBlobs walks the cache dir and counts stored blobs; a cache
// hit adds none, a miss adds one.
func countCacheBlobs(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && strings.HasSuffix(path, ".bin") {
			n++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestRunJSONCacheReplay(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "cache")
	args := func(extra ...string) []string {
		return append([]string{"-workload", "ME-NAIVE", "-runs", "2",
			"-warmup", "2", "-config", "small", "-json",
			"-cache-dir", cacheDir}, extra...)
	}
	first := captureStdout(t, func() error { return run(args()) })
	if n := countCacheBlobs(t, cacheDir); n != 1 {
		t.Fatalf("blobs after first run = %d, want 1", n)
	}
	second := captureStdout(t, func() error { return run(args()) })
	if second != first {
		t.Error("cached replay not byte-identical to the original report")
	}
	if n := countCacheBlobs(t, cacheDir); n != 1 {
		t.Errorf("blobs after replay = %d, want 1 (replay must not re-verify)", n)
	}
	// A detection-relevant change (seed range) misses and re-verifies.
	third := captureStdout(t, func() error { return run(args("-runs", "3")) })
	if third == first {
		t.Error("different run count served the same cached report")
	}
	if n := countCacheBlobs(t, cacheDir); n != 2 {
		t.Errorf("blobs after changed run = %d, want 2", n)
	}
}

func TestRunMatrixCacheReplay(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	out1 := filepath.Join(dir, "m1.json")
	out2 := filepath.Join(dir, "m2.json")
	args := func(out string) []string {
		return []string{"-workload", "ME-NAIVE", "-runs", "2", "-warmup", "2",
			"-matrix", "base=small;prefetch=none,stride",
			"-cache-dir", cacheDir, "-matrix-out", out}
	}
	first := captureStdout(t, func() error { return run(args(out1)) })
	second := captureStdout(t, func() error { return run(args(out2)) })
	if second != first {
		t.Error("matrix replay text differs from the original sweep")
	}
	if n := countCacheBlobs(t, cacheDir); n != 1 {
		t.Errorf("blobs after matrix replay = %d, want 1", n)
	}
	b1, err := os.ReadFile(out1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("matrix artifact bytes differ across replay")
	}
}

func TestRunProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	err := run([]string{"-workload", "ME-NAIVE", "-runs", "2", "-warmup", "1",
		"-config", "small", "-chart=false",
		"-cpuprofile", cpu, "-memprofile", mem})
	if err != nil {
		t.Fatal(err)
	}
	// The CPU profile is stopped by run's deferred StopCPUProfile; the
	// heap profile is written by the deferred memprofile hook.
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil || st.Size() == 0 {
			t.Errorf("profile %s missing or empty: %v", p, err)
		}
	}
}

func TestRunVersionFlag(t *testing.T) {
	out := captureStdout(t, func() error { return run([]string{"-version"}) })
	if !strings.Contains(out, "microsampler") || !strings.Contains(out, "commit") {
		t.Errorf("-version output: %q", out)
	}
}

func TestRunDiffFlagValidation(t *testing.T) {
	if err := run([]string{"-workload", "ME-NAIVE", "-diff-against", "x"}); err == nil ||
		!strings.Contains(err.Error(), "-history-dir") {
		t.Errorf("-diff-against without -history-dir: %v", err)
	}
	if err := run([]string{"-workload", "ME-NAIVE", "-history-dir", t.TempDir(),
		"-diff-against", "x", "-diff-baseline", "y"}); err == nil ||
		!strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("both diff sources: %v", err)
	}
	if err := run([]string{"-workload", "ME-NAIVE", "-matrix", "base=small",
		"-digest-out", "x.json"}); err == nil ||
		!strings.Contains(err.Error(), "-digest-out") {
		t.Errorf("-digest-out with -matrix: %v", err)
	}
}

// TestRunHistoryAndDiffGate is the CI-gate contract end to end: a clean
// baseline recorded in the history store, a self-diff that passes, and
// a leak (a different workload under the same probes) that flips units
// clean→leaky and makes the process exit nonzero.
func TestRunHistoryAndDiffGate(t *testing.T) {
	dir := t.TempDir()
	hist := filepath.Join(dir, "history")
	base := []string{"-runs", "2", "-warmup", "2", "-config", "small", "-chart=false",
		"-history-dir", hist}

	// Record the clean baseline.
	if err := run(append(base, "-workload", "ME-V2-SAFE", "-label", "base")); err != nil {
		t.Fatal(err)
	}

	// Unchanged re-run diffs quiet and exits zero.
	diffOut := filepath.Join(dir, "self.json")
	if err := run(append(base, "-workload", "ME-V2-SAFE", "-label", "head",
		"-diff-against", "base", "-diff-out", diffOut)); err != nil {
		t.Fatalf("self-diff must pass: %v", err)
	}
	var self struct {
		Regressions int           `json:"regressions"`
		Flips       []interface{} `json:"flips"`
	}
	data, err := os.ReadFile(diffOut)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &self); err != nil {
		t.Fatal(err)
	}
	if self.Regressions != 0 || len(self.Flips) != 0 {
		t.Fatalf("self-diff not quiet: %s", data)
	}

	// The leaky workload under the same label regresses: nonzero exit,
	// diff artifacts written with the flips highlighted.
	regOut := filepath.Join(dir, "reg.json")
	regHTML := filepath.Join(dir, "reg.html")
	err = run(append(base, "-workload", "ME-NAIVE", "-label", "leaky",
		"-diff-against", "base", "-diff-out", regOut, "-diff-html", regHTML))
	if err == nil || !strings.Contains(err.Error(), "verdict regression") {
		t.Fatalf("regression must fail the run: %v", err)
	}
	var reg struct {
		Regressions int `json:"regressions"`
	}
	data, err = os.ReadFile(regOut)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &reg); err != nil || reg.Regressions == 0 {
		t.Fatalf("regression diff artifact: %v, %s", err, data)
	}
	html, err := os.ReadFile(regHTML)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(html), "VERDICT FLIP") {
		t.Error("diff HTML does not highlight the flips")
	}

	// All three runs are in the store, artifacts included.
	store, err := microsampler.OpenHistory(hist)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if store.Len() != 3 {
		t.Fatalf("history has %d records, want 3", store.Len())
	}
	rec, ok := store.Latest("leaky", "", microsampler.HistoryKindReport)
	if !ok || !rec.Leaky || len(rec.LeakyUnits) == 0 {
		t.Fatalf("leaky record: %+v ok=%v", rec, ok)
	}
	if _, err := store.Artifact(rec, "digest"); err != nil {
		t.Fatal(err)
	}
}

func TestRunDigestOutAndBaselineFile(t *testing.T) {
	dir := t.TempDir()
	digest := filepath.Join(dir, "digest.json")
	args := []string{"-workload", "ME-NAIVE", "-runs", "2", "-warmup", "2",
		"-config", "small", "-chart=false"}
	if err := run(append(args, "-digest-out", digest)); err != nil {
		t.Fatal(err)
	}

	// Self-diff against the digest file: quiet.
	if err := run(append(args, "-diff-baseline", digest)); err != nil {
		t.Fatalf("self-diff against digest file: %v", err)
	}

	// Flip injection: rewrite the baseline with every unit clean, so the
	// fresh (leaky) run must trip the gate.
	data, err := os.ReadFile(digest)
	if err != nil {
		t.Fatal(err)
	}
	var d microsampler.ReportDigest
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatal(err)
	}
	d.Leaky = false
	for i := range d.Units {
		d.Units[i].Leaky = false
	}
	mutated, err := json.Marshal(&d)
	if err != nil {
		t.Fatal(err)
	}
	cleanBase := filepath.Join(dir, "clean.json")
	if err := os.WriteFile(cleanBase, mutated, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-diff-baseline", cleanBase)); err == nil ||
		!strings.Contains(err.Error(), "verdict regression") {
		t.Fatalf("injected flip not detected: %v", err)
	}
}

// TestRunMatrixDiffGate exercises the sweep-level gate, including the
// cache-replay path: an unchanged re-sweep diffs quiet off the cached
// artifact, and an injected flip in the baseline trips the gate.
func TestRunMatrixDiffGate(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	hist := filepath.Join(dir, "history")
	art := filepath.Join(dir, "matrix.json")
	args := func(extra ...string) []string {
		return append([]string{"-workload", "TAGE-HIST", "-runs", "4", "-warmup", "4",
			"-matrix", "predictor=gshare,tage", "-cache-dir", cacheDir,
			"-history-dir", hist}, extra...)
	}
	if err := run(args("-label", "base", "-matrix-out", art)); err != nil {
		t.Fatal(err)
	}
	if n := countCacheBlobs(t, cacheDir); n != 1 {
		t.Fatalf("blobs after sweep = %d, want 1", n)
	}

	// Unchanged re-sweep: served from cache, self-diff quiet, recorded.
	if err := run(args("-label", "head", "-diff-against", "base")); err != nil {
		t.Fatalf("cached self-diff must pass: %v", err)
	}
	if n := countCacheBlobs(t, cacheDir); n != 1 {
		t.Errorf("diffing re-sweep re-verified: %d blobs", n)
	}

	// Inject a flip: a baseline claiming every cell clean.
	data, err := os.ReadFile(art)
	if err != nil {
		t.Fatal(err)
	}
	var m microsampler.MatrixArtifact
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for i := range m.Cells {
		m.Cells[i].Leaky = false
	}
	mutated, err := json.Marshal(&m)
	if err != nil {
		t.Fatal(err)
	}
	cleanBase := filepath.Join(dir, "clean.json")
	if err := os.WriteFile(cleanBase, mutated, 0o644); err != nil {
		t.Fatal(err)
	}
	diffOut := filepath.Join(dir, "diff.json")
	diffHTML := filepath.Join(dir, "diff.html")
	err = run(args("-label", "head2", "-diff-baseline", cleanBase,
		"-diff-out", diffOut, "-diff-html", diffHTML))
	if err == nil || !strings.Contains(err.Error(), "verdict regression") {
		t.Fatalf("injected matrix flip not detected: %v", err)
	}
	var d struct {
		Regressions int `json:"regressions"`
	}
	data, err = os.ReadFile(diffOut)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &d); err != nil || d.Regressions != 1 {
		t.Fatalf("matrix diff artifact: %v, %s", err, data)
	}
	html, err := os.ReadFile(diffHTML)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(html), "VERDICT FLIP") ||
		strings.Count(string(html), "<svg") != 2 {
		t.Error("matrix diff HTML incomplete")
	}

	// The history store saw all three sweeps.
	store, err := microsampler.OpenHistory(hist)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if store.Len() != 3 {
		t.Fatalf("history has %d records, want 3", store.Len())
	}
	rec, ok := store.Latest("", "TAGE-HIST", microsampler.HistoryKindMatrix)
	if !ok || rec.Cells != 2 || len(rec.LeakyCells) != 1 {
		t.Fatalf("matrix record: %+v ok=%v", rec, ok)
	}
}
