// Command msasm assembles RV64 source in the framework's dialect and
// prints the resulting image as a hex dump or disassembly.
//
// Usage:
//
//	msasm program.s            # assemble, print segment summary
//	msasm -d program.s         # assemble and disassemble the text
//	msasm -hex program.s       # assemble and hex-dump the text
package main

import (
	"flag"
	"fmt"
	"os"

	"microsampler/internal/asm"
	"microsampler/internal/version"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "msasm:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("msasm", flag.ContinueOnError)
	disasm := fs.Bool("d", false, "disassemble the text segment")
	hex := fs.Bool("hex", false, "hex-dump the text segment")
	showVersion := fs.Bool("version", false, "print the version and build provenance, then exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Println(version.Get().Line("msasm"))
		return nil
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: msasm [-d] [-hex] program.s")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	prog, err := asm.Assemble(string(src))
	if err != nil {
		return err
	}
	fmt.Printf("text: %d bytes at %#x, data: %d bytes at %#x, entry %#x\n",
		len(prog.Text), prog.TextBase, len(prog.Data), prog.DataBase, prog.Entry)

	switch {
	case *disasm:
		fmt.Print(asm.DisassembleText(prog))
	case *hex:
		for off := 0; off < len(prog.Text); off += 16 {
			end := off + 16
			if end > len(prog.Text) {
				end = len(prog.Text)
			}
			fmt.Printf("%8x:  % x\n", prog.TextBase+uint64(off), prog.Text[off:end])
		}
	}
	return nil
}
