package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeProg(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "p.s")
	src := "_start:\n\tli a0, 0\n\tli a7, 93\n\tecall\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunModes(t *testing.T) {
	path := writeProg(t)
	for _, args := range [][]string{
		{path},
		{"-d", path},
		{"-hex", path},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing file should error")
	}
	if err := run([]string{"/missing.s"}); err == nil {
		t.Error("unreadable file should error")
	}
	bad := filepath.Join(t.TempDir(), "bad.s")
	if err := os.WriteFile(bad, []byte("_start:\n\tfrobnicate\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}); err == nil {
		t.Error("assembly error should propagate")
	}
}
