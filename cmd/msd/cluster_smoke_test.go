package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// reservePort grabs an ephemeral localhost port and releases it for the
// daemon to bind.
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// lockedBuffer is a concurrency-safe bytes.Buffer for capturing a child
// process's stderr while the test also reads it.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSecondSignalForcesExit: the first SIGTERM starts a graceful drain;
// an operator sending a second one mid-drain means "now" — the daemon
// must exit immediately with status 1 instead of waiting out
// -drain-timeout.
func TestSecondSignalForcesExit(t *testing.T) {
	if testing.Short() {
		t.Skip("signal test spawns a real daemon process")
	}
	addr := reservePort(t)
	base := "http://" + addr

	var stderr lockedBuffer
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), helperEnv+"="+strings.Join([]string{
		"-addr", addr, "-workers", "1", "-log-level", "error",
		"-drain-timeout", "2m",
	}, "\x1f"))
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	exited := false
	defer func() {
		if !exited {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	}()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became healthy; stderr:\n%s", stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A slow in-flight job keeps the drain from finishing between the
	// two signals.
	id, _, code := postJob(t, base, map[string]any{
		"source": slowLeakySource, "config": "small", "runs": 1024, "warmup": 2,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	deadline = time.Now().Add(30 * time.Second)
	for {
		if st, _ := jobStatus(t, base, id); st == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// The drain has demonstrably begun once readiness flips to 503; only
	// then does the second signal mean "force exit" rather than racing
	// the first.
	deadline = time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			break // HTTP already down: the drain is past readiness
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("drain never started after SIGTERM")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		exited = true
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 1 {
			t.Errorf("exit error = %v, want status 1", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not force-exit on the second signal (still draining)")
	}
	if out := stderr.String(); !strings.Contains(out, "second signal") {
		t.Errorf("stderr missing the force-exit notice:\n%s", out)
	}
}

// gridBaseline mirrors .github/baselines/*.json: the committed
// single-node verdicts the cluster run must reproduce byte-for-byte at
// the verdict level.
type gridBaseline struct {
	Workload string `json:"workload"`
	Cells    []struct {
		Name         string `json:"name"`
		Leaky        bool   `json:"leaky"`
		FlaggedUnits []struct {
			Unit string `json:"unit"`
		} `json:"flaggedUnits"`
		Iterations int   `json:"iterations"`
		SimCycles  int64 `json:"simCycles"`
	} `json:"cells"`
}

// batchSmokeView is the slice of the batch wire format the smoke test
// reads.
type batchSmokeView struct {
	ID         string `json:"id"`
	Status     string `json:"status"`
	Points     int    `json:"points"`
	Done       int    `json:"done"`
	Failed     int    `json:"failed"`
	Degraded   bool   `json:"degraded"`
	Reassigned int    `json:"reassigned"`
	Results    []struct {
		Cell   string `json:"cell"`
		Result *struct {
			Leaky      bool     `json:"leaky"`
			LeakyUnits []string `json:"leakyUnits"`
			Iterations int      `json:"iterations"`
			SimCycles  int64    `json:"simCycles"`
			Err        string   `json:"error"`
			Worker     string   `json:"worker"`
			Degraded   bool     `json:"degraded"`
		} `json:"result"`
	} `json:"results"`
}

func getBatchSmoke(t *testing.T, base, id string) batchSmokeView {
	t.Helper()
	resp, err := http.Get(base + "/api/v1/batch/" + id)
	if err != nil {
		t.Fatalf("batch status: %v", err)
	}
	defer resp.Body.Close()
	var v batchSmokeView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode batch: %v", err)
	}
	return v
}

// TestClusterSmoke is the robustness acceptance test: a real 3-process
// cluster (coordinator + 2 workers) verifies the 12-cell TAGE-HIST
// default grid as one batch, one worker is SIGKILLed mid-run, and the
// surviving cluster must finish with at least one reassigned shard,
// zero failures, and per-cell verdicts identical to the committed
// single-node baseline — then the coordinator's journal must pass
// -audit-verify.
func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster smoke spawns real daemon processes")
	}
	dir := t.TempDir()
	addrC := reservePort(t)
	baseC := "http://" + addrC

	coord := startDaemon(t, baseC,
		"-addr", addrC, "-coordinator", "-journal-dir", dir,
		"-worker-ttl", "1s", "-log-level", "error")
	coordUp := true
	defer func() {
		if coordUp {
			_ = coord.Process.Kill()
			_, _ = coord.Process.Wait()
		}
	}()

	var workers []*exec.Cmd
	workerDead := make([]bool, 2)
	for i := 0; i < 2; i++ {
		addrW := reservePort(t)
		w := startDaemon(t, "http://"+addrW,
			"-addr", addrW, "-worker-of", baseC,
			"-heartbeat", "100ms", "-log-level", "error")
		workers = append(workers, w)
		defer func(i int, w *exec.Cmd) {
			if !workerDead[i] {
				_ = w.Process.Kill()
				_, _ = w.Process.Wait()
			}
		}(i, w)
	}

	// Both workers registered and healthy before the batch goes in, so
	// no point degrades to coordinator-local execution for want of a
	// worker that was still booting.
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(baseC + "/api/v1/cluster/workers")
		if err != nil {
			t.Fatal(err)
		}
		var v struct {
			Workers []struct {
				Healthy bool `json:"healthy"`
			} `json:"workers"`
		}
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		healthy := 0
		for _, w := range v.Workers {
			if w.Healthy {
				healthy++
			}
		}
		if healthy == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/2 workers healthy", healthy)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The same sweep the committed baseline was generated from:
	// TAGE-HIST across the default grid at -runs 4 -warmup 4.
	body, _ := json.Marshal(map[string]any{
		"points": []map[string]any{
			{"workload": "TAGE-HIST", "matrix": "default", "runs": 4, "warmup": 4},
		},
	})
	resp, err := http.Post(baseC+"/api/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var submitted batchSmokeView
	err = json.NewDecoder(resp.Body).Decode(&submitted)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch submit: code=%d err=%v", resp.StatusCode, err)
	}
	if submitted.Points != 12 {
		t.Fatalf("batch exploded to %d points, want the 12-cell default grid", submitted.Points)
	}

	// SIGKILL worker 2 as soon as the batch is demonstrably in flight:
	// its unfinished shards turn into transport errors (and, once its
	// heartbeats stale out, a dead membership entry) and must be
	// reassigned to the survivor.
	deadline = time.Now().Add(60 * time.Second)
	for {
		v := getBatchSmoke(t, baseC, submitted.ID)
		if v.Done >= 1 && v.Done < v.Points {
			break
		}
		if v.Status == "done" {
			t.Skip("batch finished before the kill window; cannot exercise reassignment on this machine")
		}
		if time.Now().After(deadline) {
			t.Fatal("batch never made progress")
		}
		time.Sleep(time.Millisecond)
	}
	if err := workers[1].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = workers[1].Process.Wait()
	workerDead[1] = true

	var final batchSmokeView
	deadline = time.Now().Add(120 * time.Second)
	for {
		final = getBatchSmoke(t, baseC, submitted.ID)
		if final.Status == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch stuck after worker kill: %+v", final)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if final.Done != 12 || final.Failed != 0 {
		t.Fatalf("batch = done %d / failed %d, want 12/0", final.Done, final.Failed)
	}
	if final.Reassigned < 1 {
		t.Errorf("reassigned = %d, want >= 1 after SIGKILLing a worker mid-batch", final.Reassigned)
	}

	// Verdict diff against the committed single-node baseline: zero
	// divergence allowed, whatever path each point took.
	raw, err := os.ReadFile(filepath.Join("..", "..", ".github", "baselines", "tage-hist-default-grid.json"))
	if err != nil {
		t.Fatal(err)
	}
	var baseline gridBaseline
	if err := json.Unmarshal(raw, &baseline); err != nil {
		t.Fatal(err)
	}
	want := map[string]int{}
	for i, c := range baseline.Cells {
		want[c.Name] = i
	}
	if len(final.Results) != len(baseline.Cells) {
		t.Fatalf("results = %d cells, baseline has %d", len(final.Results), len(baseline.Cells))
	}
	for _, pv := range final.Results {
		i, ok := want[pv.Cell]
		if !ok {
			t.Errorf("cell %q not in the baseline grid", pv.Cell)
			continue
		}
		cell := baseline.Cells[i]
		res := pv.Result
		if res == nil || res.Err != "" {
			t.Errorf("cell %q: no healthy result: %+v", pv.Cell, res)
			continue
		}
		if res.Leaky != cell.Leaky {
			t.Errorf("cell %q: leaky=%v, baseline says %v", pv.Cell, res.Leaky, cell.Leaky)
		}
		if res.Iterations != cell.Iterations || res.SimCycles != cell.SimCycles {
			t.Errorf("cell %q: iterations/simCycles = %d/%d, baseline %d/%d",
				pv.Cell, res.Iterations, res.SimCycles, cell.Iterations, cell.SimCycles)
		}
		var wantUnits []string
		for _, u := range cell.FlaggedUnits {
			wantUnits = append(wantUnits, u.Unit)
		}
		gotUnits := append([]string(nil), res.LeakyUnits...)
		sort.Strings(wantUnits)
		sort.Strings(gotUnits)
		if fmt.Sprint(gotUnits) != fmt.Sprint(wantUnits) {
			t.Errorf("cell %q: leaky units %v, baseline %v", pv.Cell, gotUnits, wantUnits)
		}
	}
	t.Logf("cluster smoke: done=%d failed=%d reassigned=%d degraded=%v",
		final.Done, final.Failed, final.Reassigned, final.Degraded)

	// Graceful coordinator shutdown, then the journal's audit chain must
	// verify offline — the batch survived a worker kill without
	// corrupting the WAL.
	if err := coord.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitExit := make(chan error, 1)
	go func() { waitExit <- coord.Wait() }()
	select {
	case <-waitExit:
		coordUp = false
	case <-time.After(60 * time.Second):
		t.Fatal("coordinator did not shut down")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := run(ctx, []string{"-audit-verify", "-journal-dir", dir}, nil); err != nil {
		t.Errorf("-audit-verify failed after the cluster run: %v", err)
	}
}
