// Command msd is the MicroSampler daemon: a long-running HTTP service
// that runs verification jobs on a bounded worker pool and exposes the
// framework's observability surfaces.
//
// Usage:
//
//	msd -addr :8844 -workers 2 -queue 32
//	msd -log-format json -log-level debug
//
// Endpoints:
//
//	POST /api/v1/jobs                    submit a job ({"workload":"ME-NAIVE"} or {"source":"..."})
//	GET  /api/v1/jobs                    list tracked jobs
//	GET  /api/v1/jobs/{id}               job status and verdict
//	GET  /api/v1/jobs/{id}/progress      live progress (stage, simulated cycles, runs, retries)
//	GET  /api/v1/jobs/{id}/report        JSON report artifact
//	GET  /api/v1/jobs/{id}/trace         Perfetto trace (open in ui.perfetto.dev)
//	GET  /api/v1/jobs/{id}/heatmap       leakage heatmap JSON
//	GET  /api/v1/jobs/{id}/heatmap.html  leakage heatmap as self-contained HTML
//	GET  /api/v1/jobs/{id}/provenance    instruction-level leakage provenance JSON
//	GET  /api/v1/jobs/{id}/provenance.html  provenance as self-contained HTML
//	GET  /api/v1/jobs/{id}/postmortem    flight-recorder Perfetto dump (failed jobs)
//	GET  /api/v1/history                 labeled run-history records (?label=, ?workload=)
//	POST /api/v1/diff                    verdict diff between two labels ({"from":"A","to":"B"})
//	POST /api/v1/cluster/execute         run one point on this daemon (any msd is a capable worker)
//	GET  /metrics                        Prometheus text exposition
//	GET  /healthz, /readyz               liveness / readiness
//	GET  /debug/pprof/                   Go profiling
//
// Coordinator-only endpoints (-coordinator):
//
//	POST /api/v1/cluster/register        worker self-registration
//	POST /api/v1/cluster/heartbeat       worker liveness
//	GET  /api/v1/cluster/workers         registered worker set
//	POST /api/v1/batch                   submit a point batch ({"points":[{"workload":"ME-NAIVE","matrix":"default"}]})
//	GET  /api/v1/batch                   list batches
//	GET  /api/v1/batch/{id}              batch status and per-point results
//	GET  /api/v1/cache/{key}             shared verdict store (cross-node cache fill)
//	PUT  /api/v1/cache/{key}             worker verdict upload
//
// A verification cluster is one coordinator plus any number of workers:
//
//	msd -coordinator -addr :8844 -journal-dir /var/lib/msd
//	msd -addr :8845 -worker-of http://coordinator:8844
//	msd -addr :8846 -worker-of http://coordinator:8844
//
// The coordinator shards batch points across healthy workers by
// rendezvous-hashing their canonical cache keys; a worker that misses
// -heartbeat beats for -worker-ttl is marked dead and its in-flight
// shards are reassigned (a point the dying worker already uploaded is a
// cache hit, not a re-simulation); stragglers past -hedge-after (or 3×
// the observed latency EWMA) get a hedged duplicate, first result wins;
// with zero healthy workers the coordinator degrades to local execution
// and flags the batch rather than failing it.
//
// SIGINT/SIGTERM drains in-flight jobs (bounded by -drain-timeout)
// before exiting; a second SIGINT/SIGTERM forces immediate exit.
//
// With -journal-dir set, every job transition is appended to a fsynced
// write-ahead journal and finished jobs' artifacts are persisted under
// that directory; a daemon restarted over the same directory re-enqueues
// jobs that were queued at the crash and marks jobs that were mid-run as
// interrupted (-recover re-enqueues those too):
//
//	msd -journal-dir /var/lib/msd -recover
//
// With -cache set, finished jobs' verdicts are retained in a
// content-addressed cache and identical resubmissions are served the
// same bytes without simulating (add -cache-dir for a disk layer that
// survives restarts). Journaled daemons additionally chain terminal
// journal records into Merkle roots (GET /api/v1/audit); the journal
// can be checked offline:
//
//	msd -journal-dir /var/lib/msd -audit-verify
//	msd -journal-dir /var/lib/msd -audit-verify -audit-head <chain-hex>
//
// With -history-dir set (journaled daemons default it to
// <journal-dir>/history), every finished job's verdict is filed in the
// labeled run-history store and the daemon serves verdict diffs between
// labels; clean↔leaky flips surface in the msd_verdict_flips_total
// counter.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"microsampler/internal/cluster"
	"microsampler/internal/msd"
	"microsampler/internal/version"
)

func main() {
	ctx, stop := signalContext(context.Background())
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "msd:", err)
		os.Exit(1)
	}
}

// signalContext cancels the returned context on the first SIGINT or
// SIGTERM and force-exits the process on the second. signal.NotifyContext
// would swallow the repeat while Drain waits out -drain-timeout; an
// operator mashing Ctrl-C during a long drain means "now", not "in two
// minutes".
func signalContext(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-ch
		cancel()
		sig := <-ch
		fmt.Fprintf(os.Stderr, "msd: second signal (%v), forcing exit\n", sig)
		os.Exit(1)
	}()
	return ctx, func() {
		signal.Stop(ch)
		cancel()
	}
}

// run starts the daemon and serves until ctx is cancelled. When ready
// is non-nil it receives the bound listen address once the server
// accepts connections (the smoke test uses it with -addr 127.0.0.1:0).
func run(ctx context.Context, args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("msd", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", ":8844", "HTTP listen address")
		workers       = fs.Int("workers", 1, "concurrent verification jobs")
		queue         = fs.Int("queue", 16, "queued-job capacity (submissions beyond it get 503)")
		maxJobs       = fs.Int("max-jobs", 64, "finished jobs retained in memory")
		drainTimeout  = fs.Duration("drain-timeout", 2*time.Minute, "max wait for in-flight jobs on shutdown")
		journalDir    = fs.String("journal-dir", "", "directory for the crash-safe job journal and artifacts (default: disabled, jobs are in-memory only)")
		recoverFlag   = fs.Bool("recover", false, "re-enqueue jobs interrupted by a crash instead of leaving them terminal (requires -journal-dir; queued jobs are always recovered)")
		watchdog      = fs.Duration("watchdog", 0, "abort a simulation run that stops retiring for this wall-clock duration (0: disabled)")
		flightFrames  = fs.Int("flight-recorder", 1024, "cycles of per-unit occupancy kept per run; failed jobs expose the dump as a postmortem artifact (0: off)")
		cacheEntries  = fs.Int("cache", 256, "verdicts retained in the content-addressed cache; identical resubmissions are served without simulating (0: off)")
		cacheDir      = fs.String("cache-dir", "", "disk layer for the verdict cache, surviving restarts (default: <journal-dir>/cache when journaled, else memory-only)")
		historyDir    = fs.String("history-dir", "", "directory for the labeled run-history store behind /api/v1/history and /api/v1/diff (default: <journal-dir>/history when journaled, else disabled)")
		auditBatch    = fs.Int("audit-batch", 0, "terminal journal records per Merkle audit root (0: default)")
		coordinator   = fs.Bool("coordinator", false, "serve the cluster-coordinator surface: worker registration, batch sharding, the shared verdict store")
		workerOf      = fs.String("worker-of", "", "coordinator base URL this daemon registers with as a worker (e.g. http://host:8844)")
		heartbeat     = fs.Duration("heartbeat", time.Second, "worker heartbeat period (with -worker-of)")
		workerTTL     = fs.Duration("worker-ttl", 5*time.Second, "heartbeat staleness after which the coordinator marks a worker dead and reassigns its shards")
		hedgeAfter    = fs.Duration("hedge-after", 30*time.Second, "straggler threshold floor: a dispatch outliving max(this, 3x latency EWMA) gets a hedged duplicate (negative: off)")
		shardTimeout  = fs.Duration("shard-timeout", 2*time.Minute, "bound on one dispatch attempt to one worker")
		maxRetryAfter = fs.Duration("max-retry-after", 5*time.Minute, "cap on the 503 Retry-After hint (negative: uncapped)")
		advertise     = fs.String("advertise", "", "URL workers/coordinators reach this daemon at (default: http://<bound addr>)")
		auditVerify   = fs.Bool("audit-verify", false, "verify the journal's Merkle audit chain under -journal-dir and exit")
		auditHead     = fs.String("audit-head", "", "with -audit-verify: externally recorded chain head the journal must end at (detects tail truncation)")
		logFormat     = fs.String("log-format", "text", "log output format: text or json")
		logLevel      = fs.String("log-level", "info", "log level: debug, info, warn or error")
		showVersion   = fs.Bool("version", false, "print the version and build provenance, then exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Println(version.Get().Line("msd"))
		return nil
	}
	if *recoverFlag && *journalDir == "" {
		return fmt.Errorf("-recover requires -journal-dir")
	}
	if *auditVerify {
		if *journalDir == "" {
			return fmt.Errorf("-audit-verify requires -journal-dir")
		}
		return runAuditVerify(*journalDir, *auditHead)
	}
	if *cacheDir == "" && *cacheEntries > 0 && *journalDir != "" {
		*cacheDir = filepath.Join(*journalDir, "cache")
	}
	if *historyDir == "" && *journalDir != "" {
		*historyDir = filepath.Join(*journalDir, "history")
	}

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		return err
	}

	server, err := msd.New(msd.Config{
		Workers:            *workers,
		QueueSize:          *queue,
		MaxJobs:            *maxJobs,
		Logger:             logger,
		JournalDir:         *journalDir,
		RequeueInterrupted: *recoverFlag,
		Watchdog:           *watchdog,
		FlightFrames:       *flightFrames,
		CacheEntries:       *cacheEntries,
		CacheDir:           *cacheDir,
		HistoryDir:         *historyDir,
		AuditBatch:         *auditBatch,
		Coordinator:        *coordinator,
		CoordinatorURL:     *workerOf,
		WorkerTTL:          *workerTTL,
		HedgeAfter:         *hedgeAfter,
		ShardTimeout:       *shardTimeout,
		MaxRetryAfter:      *maxRetryAfter,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpServer := &http.Server{
		Handler:           server.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	logger.Info("msd listening", "addr", ln.Addr().String(),
		"workers", *workers, "queue", *queue)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpServer.Serve(ln) }()

	// Worker mode: register with the coordinator and keep the
	// registration alive. The agent stops with the serve context; a
	// draining worker simply vanishes from the healthy set when its
	// heartbeats stop.
	if *workerOf != "" {
		self := *advertise
		if self == "" {
			self = "http://" + ln.Addr().String()
		}
		agent := &cluster.Agent{
			Coordinator: *workerOf,
			Self:        self,
			Interval:    *heartbeat,
			Logger:      logger,
		}
		go agent.Run(ctx)
	}

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Shutdown: stop intake, finish queued and in-flight jobs, then
	// close the HTTP server.
	logger.Info("msd shutting down", "drain_timeout", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := server.Drain(drainCtx)
	if err := httpServer.Shutdown(drainCtx); err != nil && drainErr == nil {
		drainErr = err
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) && drainErr == nil {
		drainErr = err
	}
	return drainErr
}

// runAuditVerify recomputes the journal's Merkle audit chain and
// reports the outcome on stdout; a tampered journal (or a head mismatch
// against an externally recorded anchor) is a non-nil error, which
// main turns into exit status 1.
func runAuditVerify(dir, head string) error {
	sum, err := msd.VerifyAuditLog(dir)
	if err != nil {
		return err
	}
	if head != "" && !strings.EqualFold(head, sum.Chain) {
		return fmt.Errorf("audit chain head is %s, expected %s (journal tail truncated or anchor stale)",
			sum.Chain, head)
	}
	fmt.Printf("audit OK: %d records, %d terminal, %d roots, %d pending, chain %s\n",
		sum.Records, sum.Terminal, sum.Batches, sum.Pending, sum.Chain)
	return nil
}

func buildLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "", "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q", format)
	}
}
