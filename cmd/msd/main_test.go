package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestSmoke boots the daemon on an ephemeral port, submits a real
// verification job over HTTP, polls it to completion, downloads the
// artifacts, scrapes /metrics, and shuts the daemon down cleanly — the
// full lifecycle a deployment exercises.
func TestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon smoke test runs a real simulation")
	}
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-workers", "1",
			"-log-format", "json",
			"-log-level", "error",
			"-drain-timeout", "60s",
			"-watchdog", "30s",
			"-flight-recorder", "256",
			"-history-dir", t.TempDir(),
		}, ready)
	}()

	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	// Health and readiness respond before any job runs.
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}

	// Submit the quickstart workload on the small core, few runs, so
	// the smoke test stays fast.
	body, _ := json.Marshal(map[string]any{
		"workload": "ME-NAIVE",
		"config":   "small",
		"runs":     2,
		"warmup":   2,
		"label":    "smoke",
	})
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || job.ID == "" {
		t.Fatalf("submit: status=%d job=%+v", resp.StatusCode, job)
	}

	// Poll to completion.
	var final struct {
		Status    string   `json:"status"`
		Error     string   `json:"error"`
		Leaky     *bool    `json:"leaky"`
		Artifacts []string `json:"artifacts"`
	}
	deadline := time.Now().Add(90 * time.Second)
	for {
		resp, err := http.Get(base + "/api/v1/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&final)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if final.Status == "done" || final.Status == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", final.Status)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if final.Status != "done" {
		t.Fatalf("job failed: %s", final.Error)
	}
	if final.Leaky == nil || !*final.Leaky {
		t.Error("ME-NAIVE should be flagged leaky")
	}
	if len(final.Artifacts) != 7 {
		t.Errorf("artifacts: %v", final.Artifacts)
	}

	// The labeled run landed in the history store.
	resp, err = http.Get(base + "/api/v1/history?label=smoke")
	if err != nil {
		t.Fatal(err)
	}
	var hist struct {
		Records []map[string]any `json:"records"`
	}
	err = json.NewDecoder(resp.Body).Decode(&hist)
	resp.Body.Close()
	if err != nil || len(hist.Records) != 1 {
		t.Errorf("history: err=%v records=%+v", err, hist.Records)
	} else if hist.Records[0]["leaky"] != true || hist.Records[0]["kind"] != "report" {
		t.Errorf("history record: %+v", hist.Records[0])
	}

	// The progress endpoint reports the terminal state with the full
	// cycle count.
	resp, err = http.Get(base + "/api/v1/jobs/" + job.ID + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	var pg struct {
		Stage  string `json:"stage"`
		Cycles int64  `json:"cycles"`
	}
	err = json.NewDecoder(resp.Body).Decode(&pg)
	resp.Body.Close()
	if err != nil || pg.Stage != "done" || pg.Cycles == 0 {
		t.Errorf("progress after completion: err=%v %+v", err, pg)
	}

	// The provenance artifact localizes ME-NAIVE's leak to at least one
	// instruction.
	resp, err = http.Get(base + "/api/v1/jobs/" + job.ID + "/provenance")
	if err != nil {
		t.Fatal(err)
	}
	var pv struct {
		Entries []map[string]any `json:"entries"`
	}
	err = json.NewDecoder(resp.Body).Decode(&pv)
	resp.Body.Close()
	if err != nil || len(pv.Entries) == 0 {
		t.Errorf("provenance artifact: err=%v entries=%d", err, len(pv.Entries))
	}

	// The Perfetto artifact is a valid trace document.
	resp, err = http.Get(base + "/api/v1/jobs/" + job.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	err = json.NewDecoder(resp.Body).Decode(&trace)
	resp.Body.Close()
	if err != nil || len(trace.TraceEvents) == 0 {
		t.Errorf("trace artifact: err=%v events=%d", err, len(trace.TraceEvents))
	}

	// /metrics carries daemon and pipeline series after the job.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := new(strings.Builder)
	buf := make([]byte, 64*1024)
	for {
		n, err := resp.Body.Read(buf)
		metrics.Write(buf[:n])
		if err != nil {
			break
		}
	}
	resp.Body.Close()
	for _, want := range []string{
		"msd_jobs_completed_total 1",
		"# TYPE msd_job_seconds histogram",
		"verify_stage_seconds",
		"sim_cycles_total",
	} {
		if !strings.Contains(metrics.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Graceful shutdown: cancel the context and require a clean exit.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestVersionFlag: -version prints and exits cleanly without binding a
// listener.
func TestVersionFlag(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := run(ctx, []string{"-version", "-addr", "256.0.0.1:99999"}, nil); err != nil {
		t.Errorf("-version: %v", err)
	}
}

func TestBadFlags(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := run(ctx, []string{"-log-level", "loud"}, nil); err == nil {
		t.Error("bad log level must error")
	}
	if err := run(ctx, []string{"-log-format", "xml"}, nil); err == nil {
		t.Error("bad log format must error")
	}
	if err := run(ctx, []string{"-addr", "256.0.0.1:99999"}, nil); err == nil {
		t.Error("bad listen address must error")
	}
	if err := run(ctx, []string{"-watchdog", "fast"}, nil); err == nil {
		t.Error("malformed -watchdog must error")
	}
	if err := run(ctx, []string{"-flight-recorder", "many"}, nil); err == nil {
		t.Error("malformed -flight-recorder must error")
	}
}

// TestAuditVerifyFlag exercises the offline audit mode: a journal
// without audit records passes (everything is pending), a forged audit
// record fails, and the flag demands a journal directory.
func TestAuditVerifyFlag(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := run(ctx, []string{"-audit-verify"}, nil); err == nil {
		t.Error("-audit-verify without -journal-dir must error")
	}

	dir := t.TempDir()
	journal := filepath.Join(dir, "journal.jsonl")
	clean := `{"event":"submit","id":"job-1","req":{"source":"nop"}}
{"event":"start","id":"job-1"}
{"event":"done","id":"job-1","leaky":true}
`
	if err := os.WriteFile(journal, []byte(clean), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(ctx, []string{"-audit-verify", "-journal-dir", dir}, nil); err != nil {
		t.Errorf("clean journal failed -audit-verify: %v", err)
	}

	forged := clean + `{"event":"audit","root":"deadbeef","prev":"` + strings.Repeat("0", 64) + `","first":1,"count":1}` + "\n"
	if err := os.WriteFile(journal, []byte(forged), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(ctx, []string{"-audit-verify", "-journal-dir", dir}, nil); err == nil {
		t.Error("forged audit root passed -audit-verify")
	}
}
