package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"
)

// helperEnv re-executes the test binary as a real msd daemon: when set,
// TestMain runs main's run() with the US-separated (0x1f) args instead of the
// test suite. This gives the kill/recover test an actual OS process to
// SIGKILL — in-process "crashes" cannot model a dead process.
const helperEnv = "MSD_HELPER_ARGS"

func TestMain(m *testing.M) {
	if args := os.Getenv(helperEnv); args != "" {
		// The helper uses the same signal wiring as the real binary, so
		// the second-signal force-exit path is what the tests exercise.
		ctx, stop := signalContext(context.Background())
		defer stop()
		if err := run(ctx, strings.Split(args, "\x1f"), nil); err != nil {
			fmt.Fprintln(os.Stderr, "msd helper:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// startDaemon spawns the helper-process daemon with the given flags and
// waits for /healthz.
func startDaemon(t *testing.T, base string, flags ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), helperEnv+"="+strings.Join(flags, "\x1f"))
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start daemon: %v", err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	_ = cmd.Process.Kill()
	t.Fatal("daemon never became healthy")
	return nil
}

func postJob(t *testing.T, base string, req map[string]any) (id, status string, code int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	var v struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&v)
	return v.ID, v.Status, resp.StatusCode
}

func jobStatus(t *testing.T, base, id string) (status, errMsg string) {
	t.Helper()
	resp, err := http.Get(base + "/api/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("status %s: %v", id, err)
	}
	defer resp.Body.Close()
	var v struct {
		Status string `json:"status"`
		Error  string `json:"error"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&v)
	return v.Status, v.Error
}

// slowLeakySource is a secret-dependent loop with enough iterations
// that a multi-run job reliably outlives the SIGKILL window.
const slowLeakySource = `
	.text
_start:
	li   s2, 60
	roi.begin
loop:
	andi s3, s2, 1
	iter.begin s3
	mul  t0, s2, s2
	beqz s3, skip
	mul  t0, t0, s2
skip:
	iter.end
	addi s2, s2, -1
	bnez s2, loop
	roi.end
	li a0, 0
	li a7, 93
	ecall
`

// TestKillRecover is the crash-recovery acceptance test: a real daemon
// process is SIGKILLed mid-job and a new process over the same journal
// directory must pick up the pieces — the interrupted job re-runs
// (-recover), the queued job runs, and the ID sequence continues.
func TestKillRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("kill/recover spawns real daemon processes")
	}
	dir := t.TempDir()

	// Reserve an ephemeral port for both daemon incarnations.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	base := "http://" + addr
	flags := []string{
		"-addr", addr, "-workers", "1", "-journal-dir", dir,
		"-recover", "-log-level", "error",
	}

	first := startDaemon(t, base, flags...)
	killed := false
	defer func() {
		if !killed {
			_ = first.Process.Kill()
			_, _ = first.Process.Wait()
		}
	}()

	// Job 1 is slow enough to be mid-run when the SIGKILL lands; job 2
	// waits behind it in the queue.
	id1, _, code := postJob(t, base, map[string]any{
		"source": slowLeakySource, "config": "small", "runs": 48, "warmup": 2,
	})
	if code != http.StatusAccepted || id1 != "job-1" {
		t.Fatalf("submit 1: code=%d id=%s", code, id1)
	}
	id2, _, code := postJob(t, base, map[string]any{
		"source": slowLeakySource, "config": "small", "runs": 2, "warmup": 2,
	})
	if code != http.StatusAccepted || id2 != "job-2" {
		t.Fatalf("submit 2: code=%d id=%s", code, id2)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, _ := jobStatus(t, base, id1)
		if st == "running" {
			break
		}
		if st == "done" || st == "failed" {
			t.Fatalf("job-1 reached %q before the kill; make it slower", st)
		}
		if time.Now().After(deadline) {
			t.Fatal("job-1 never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The crash: SIGKILL, no drain, no goodbye.
	if err := first.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = first.Process.Wait()
	killed = true

	second := startDaemon(t, base, flags...)
	defer func() {
		_ = second.Process.Signal(syscall.SIGTERM)
		waitExit := make(chan error, 1)
		go func() { waitExit <- second.Wait() }()
		select {
		case <-waitExit:
		case <-time.After(30 * time.Second):
			_ = second.Process.Kill()
		}
	}()

	// Both jobs must finish under the new incarnation: job-1 re-enqueued
	// by -recover after being marked interrupted, job-2 recovered from
	// the queued state.
	deadline = time.Now().Add(120 * time.Second)
	for _, id := range []string{id1, id2} {
		for {
			st, errMsg := jobStatus(t, base, id)
			if st == "done" {
				break
			}
			if st == "failed" {
				t.Fatalf("%s failed after recovery: %s", id, errMsg)
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s stuck in %q after recovery", id, st)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// The ID sequence resumes past the journaled jobs.
	id3, _, code := postJob(t, base, map[string]any{
		"source": slowLeakySource, "config": "small", "runs": 2, "warmup": 2,
	})
	if code != http.StatusAccepted || id3 != "job-3" {
		t.Errorf("post-recovery submit: code=%d id=%s want job-3", code, id3)
	}
}
