// Command mssim runs a bare program on the cycle-level BOOM simulator
// and prints execution statistics — the substrate without the analysis.
//
// Usage:
//
//	mssim program.s
//	mssim -config small -max-cycles 1000000 program.s
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"microsampler/internal/asm"
	"microsampler/internal/sim"
	"microsampler/internal/version"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mssim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mssim", flag.ContinueOnError)
	config := fs.String("config", "mega", "core configuration: mega or small")
	maxCycles := fs.Int64("max-cycles", 50_000_000, "cycle budget")
	fastBypass := fs.Bool("fast-bypass", false, "enable the fast-bypass optimisation")
	showVersion := fs.Bool("version", false, "print the version and build provenance, then exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Println(version.Get().Line("mssim"))
		return nil
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: mssim [-config mega|small] program.s")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	prog, err := asm.Assemble(string(src))
	if err != nil {
		return err
	}

	var cfg sim.Config
	switch strings.ToLower(*config) {
	case "mega", "megaboom":
		cfg = sim.MegaBoom()
	case "small", "smallboom":
		cfg = sim.SmallBoom()
	default:
		return fmt.Errorf("unknown config %q", *config)
	}
	cfg.FastBypass = *fastBypass

	m, err := sim.New(cfg)
	if err != nil {
		return err
	}
	if err := m.LoadProgram(prog); err != nil {
		return err
	}
	res, err := m.Run(*maxCycles)
	if len(res.Output) > 0 {
		os.Stdout.Write(res.Output)
	}
	if err != nil {
		return err
	}
	fmt.Printf("exit %d after %d cycles, %d instructions (IPC %.2f), %d/%d branches mispredicted\n",
		res.ExitCode, res.Cycles, res.Instructions, res.IPC(),
		res.Mispredicts, res.Branches)
	fmt.Printf("D-cache: %d hits, %d misses; %d TLB misses; %d prefetches\n",
		res.DCacheHits, res.DCacheMisses, res.TLBMisses, res.Prefetches)
	return nil
}
