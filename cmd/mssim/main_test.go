package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.s")
	src := "_start:\n\tli a0, 0\n\tli a7, 93\n\tecall\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{path},
		{"-config", "small", path},
		{"-fast-bypass", path},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing file should error")
	}
	if err := run([]string{"-config", "huge", "/missing.s"}); err == nil {
		t.Error("bad config should error")
	}
	path := filepath.Join(t.TempDir(), "loop.s")
	if err := os.WriteFile(path, []byte("_start:\n\tj _start\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-max-cycles", "100", path}); err == nil {
		t.Error("cycle budget exhaustion should propagate")
	}
}
