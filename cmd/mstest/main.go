// Command mstest is MicroSampler's detection-quality gate. It replays
// the ground-truth oracle corpus — labeled leaky/safe workload pairs —
// under independent input seeds and checks every verdict against its
// label: zero false positives on the safe set, zero false negatives on
// the leaky set, and per-unit expectations where the paper pins them.
//
// Usage:
//
//	mstest list
//	mstest run [-seeds 5] [-match RE] [-out quality.json] [-baseline quality.json]
//	mstest calibrate [-seeds 5] [-out quality.json]
//	mstest diff baseline.json current.json [-vtol 0.05]
//	mstest version
//
// `run` evaluates the corpus and exits nonzero on any ground-truth
// violation (and, with -baseline, on any regression against a stored
// artifact). `calibrate` does the same but always writes the artifact,
// producing the baseline that future `diff` calls compare against.
// `diff` compares two artifacts offline.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"microsampler/internal/oracle"
	"microsampler/internal/version"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mstest:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: mstest {run|calibrate|diff|list} [flags]")
	}
	switch args[0] {
	case "run":
		return runCorpus(args[1:], false)
	case "calibrate":
		return runCorpus(args[1:], true)
	case "diff":
		return runDiff(args[1:])
	case "list":
		return runList(args[1:])
	case "version", "-version", "--version":
		fmt.Println(version.Get().Line("mstest"))
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q (want run, calibrate, diff, list, or version)", args[0])
	}
}

// corpusFlags are shared by run and calibrate.
func corpusFlags(fs *flag.FlagSet) (seeds *int, match, out, baseline *string,
	vthresh, pthresh *float64, parallel *int, quiet *bool) {
	seeds = fs.Int("seeds", 5, "independent input seeds per corpus entry")
	match = fs.String("match", "", "restrict to entries whose name or pair matches this regexp")
	out = fs.String("out", "", "write the quality.json artifact to FILE")
	baseline = fs.String("baseline", "", "diff the outcome against a stored quality.json")
	vthresh = fs.Float64("vthresh", 0, "override the Cramér's V verdict threshold (0: paper default)")
	pthresh = fs.Float64("pthresh", 0, "override the p-value significance threshold (0: paper default)")
	parallel = fs.Int("parallel", -1, "concurrent simulation runs per verification (-1: one per CPU)")
	quiet = fs.Bool("quiet", false, "suppress per-entry progress lines")
	return
}

func runCorpus(args []string, calibrate bool) error {
	name := "run"
	if calibrate {
		name = "calibrate"
	}
	fs := flag.NewFlagSet("mstest "+name, flag.ContinueOnError)
	seeds, match, out, baseline, vthresh, pthresh, parallel, quiet := corpusFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if calibrate && *out == "" {
		*out = "quality.json"
	}
	opts := oracle.Options{
		Seeds:      *seeds,
		Thresholds: oracle.Thresholds{V: *vthresh, P: *pthresh},
		Parallel:   *parallel,
	}
	if *match != "" {
		re, err := regexp.Compile(*match)
		if err != nil {
			return fmt.Errorf("-match: %w", err)
		}
		opts.Match = re
	}
	if !*quiet {
		opts.OnEntry = func(eq oracle.EntryQuality) {
			verdict := "safe"
			if eq.WantLeaky {
				verdict = "leaky"
			}
			status := "ok"
			if eq.Violations > 0 {
				status = fmt.Sprintf("FAIL (%d/%d seeds violate)", eq.Violations, len(eq.Seeds))
			}
			fmt.Printf("%-18s %-16s want=%-5s marginV=%.3f  %s\n",
				eq.Name, eq.Pair, verdict, eq.MarginV, status)
		}
	}

	q, err := oracle.RunCorpus(oracle.Corpus(), opts)
	if err != nil {
		return err
	}
	if q.Summary.Entries == 0 {
		return fmt.Errorf("no corpus entries matched %q", *match)
	}
	printSummary(q)

	if *out != "" {
		data, err := q.Marshal()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d entries, %d trials)\n", *out, q.Summary.Entries, q.Summary.Trials)
	}

	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			return err
		}
		base, err := oracle.ParseQuality(data)
		if err != nil {
			return err
		}
		d := oracle.Diff(base, q, -1)
		printDiff(d)
		if !d.Clean() {
			return fmt.Errorf("%d regression(s) against baseline %s", len(d.Regressions), *baseline)
		}
	}

	if !q.Summary.Pass {
		return fmt.Errorf("detection-quality gate failed: %d false positive(s), %d false negative(s), %d unit violation(s)",
			q.Summary.FalsePositives, q.Summary.FalseNegatives, q.Summary.UnitViolations)
	}
	return nil
}

func runDiff(args []string) error {
	fs := flag.NewFlagSet("mstest diff", flag.ContinueOnError)
	vtol := fs.Float64("vtol", 0.05, "allowed erosion of an entry's V margin toward the threshold")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) != 2 {
		return fmt.Errorf("usage: mstest diff [-vtol T] baseline.json current.json")
	}
	var qs [2]*oracle.Quality
	for i, path := range rest {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		q, err := oracle.ParseQuality(data)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		qs[i] = q
	}
	d := oracle.Diff(qs[0], qs[1], *vtol)
	printDiff(d)
	if !d.Clean() {
		return fmt.Errorf("%d regression(s)", len(d.Regressions))
	}
	fmt.Println("no regressions")
	return nil
}

func runList(args []string) error {
	fs := flag.NewFlagSet("mstest list", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Printf("%-18s %-16s %-28s %-9s %-6s %s\n",
		"NAME", "PAIR", "WORKLOAD", "CONFIG", "LABEL", "NOTES")
	for _, e := range oracle.Corpus() {
		label := "safe"
		if e.WantLeaky {
			label = "leaky"
		}
		fmt.Printf("%-18s %-16s %-28s %-9s %-6s %s\n",
			e.Name, e.Pair, e.Workload, e.ConfigName(), label, e.Notes)
	}
	return nil
}

func printSummary(q *oracle.Quality) {
	s := q.Summary
	fmt.Printf("corpus: %d entries in %d pairs, %d seeds, %d trials (V>%g, p<%g)\n",
		s.Entries, s.Pairs, q.Seeds, s.Trials, q.VThreshold, q.PThreshold)
	fmt.Printf("false positives: %d/%d (rate %.3f, 95%% CI [%.3f, %.3f])\n",
		s.FPRate.Errors, s.FPRate.Trials, s.FPRate.Rate, s.FPRate.WilsonLo, s.FPRate.WilsonHi)
	fmt.Printf("false negatives: %d/%d (rate %.3f, 95%% CI [%.3f, %.3f])\n",
		s.FNRate.Errors, s.FNRate.Trials, s.FNRate.Rate, s.FNRate.WilsonLo, s.FNRate.WilsonHi)
	if s.Pass {
		fmt.Println("PASS")
	} else {
		fmt.Println("FAIL")
	}
}

func printDiff(d oracle.DiffResult) {
	for _, r := range d.Regressions {
		fmt.Println("REGRESSION:", r)
	}
	for _, dr := range d.Drift {
		fmt.Println("drift:", dr)
	}
	if len(d.Regressions) == 0 && len(d.Drift) == 0 {
		fmt.Println("baseline and current artifacts agree")
	}
}
