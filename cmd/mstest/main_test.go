package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"microsampler/internal/oracle"
)

// capture runs fn with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()
	runErr := fn()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = orig
	return string(out), runErr
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"bogus"},
		{"diff"},
		{"diff", "only-one.json"},
		{"run", "-match", "("},
		{"run", "-match", "^no-such-entry$", "-seeds", "1"},
	}
	for _, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("run(%q) should fail", args)
		}
	}
}

func TestListShowsWholeCorpus(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"list"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range oracle.Corpus() {
		if !strings.Contains(out, e.Name) {
			t.Errorf("list output missing entry %s", e.Name)
		}
	}
}

func TestRunWritesArtifactAndSelfDiffsClean(t *testing.T) {
	art := filepath.Join(t.TempDir(), "quality.json")
	out, err := capture(t, func() error {
		return run([]string{"run", "-match", "^divider$", "-seeds", "2", "-quiet", "-out", art})
	})
	if err != nil {
		t.Fatalf("gate failed on the divider pair: %v\n%s", err, out)
	}
	if !strings.Contains(out, "PASS") {
		t.Errorf("summary missing PASS:\n%s", out)
	}
	data, err := os.ReadFile(art)
	if err != nil {
		t.Fatal(err)
	}
	q, err := oracle.ParseQuality(data)
	if err != nil {
		t.Fatalf("written artifact does not parse: %v", err)
	}
	if q.Summary.Entries != 2 || !q.Summary.Pass {
		t.Errorf("artifact summary: %+v", q.Summary)
	}

	// The artifact must diff clean against itself, and a rerun against
	// it as -baseline must report no regressions.
	out, err = capture(t, func() error { return run([]string{"diff", art, art}) })
	if err != nil {
		t.Fatalf("self-diff: %v\n%s", err, out)
	}
	if !strings.Contains(out, "no regressions") {
		t.Errorf("self-diff output:\n%s", out)
	}
	if _, err := capture(t, func() error {
		return run([]string{"run", "-match", "^divider$", "-seeds", "2", "-quiet", "-baseline", art})
	}); err != nil {
		t.Errorf("rerun against own baseline regressed: %v", err)
	}
}

func TestRunGateFailsUnderInjectedThreshold(t *testing.T) {
	// V > 1 is unsatisfiable, so the leaky twin turns into a false
	// negative and the gate must exit nonzero.
	out, err := capture(t, func() error {
		return run([]string{"run", "-match", "^divider$", "-seeds", "1", "-quiet", "-vthresh", "1.0"})
	})
	if err == nil {
		t.Fatalf("gate passed with an unsatisfiable V threshold:\n%s", out)
	}
	if !strings.Contains(err.Error(), "false negative") {
		t.Errorf("gate error should mention false negatives: %v", err)
	}
}
