package microsampler_test

import (
	"fmt"
	"log"

	"microsampler"
)

// Example verifies a tiny hand-written kernel whose multiplier activity
// depends on the secret bit, and prints the per-unit verdict for the
// multiplier.
func Example() {
	w := microsampler.Workload{
		Name: "demo",
		Source: `
	.text
_start:
	li   s2, 24
	roi.begin
loop:
	andi s3, s2, 1
	iter.begin s3         # label the iteration with the secret bit
	mul  t0, s2, s2
	beqz s3, skip
	mul  t0, t0, s2       # executed only when the bit is 1: a leak
skip:
	iter.end
	addi s2, s2, -1
	bnez s2, loop
	roi.end
	li a0, 0
	li a7, 93
	ecall
`,
	}
	rep, err := microsampler.Verify(w, microsampler.Options{Runs: 2, Warmup: 2})
	if err != nil {
		log.Fatal(err)
	}
	mul, _ := rep.Unit(microsampler.EUUMUL)
	fmt.Printf("EUU-MUL leaky: %v\n", mul.Leaky())
	fmt.Printf("any other finding kinds: unique features for class 1: %v\n",
		len(mul.UniqueFeatures[1]) > 0)
	// Output:
	// EUU-MUL leaky: true
	// any other finding kinds: unique features for class 1: true
}

// ExampleWorkloadByName runs a built-in case study.
func ExampleWorkloadByName() {
	w, err := microsampler.WorkloadByName("ME-V1-MV")
	if err != nil {
		log.Fatal(err)
	}
	rep, err := microsampler.Verify(w, microsampler.Options{Runs: 3, Parallel: -1})
	if err != nil {
		log.Fatal(err)
	}
	sq, _ := rep.Unit(microsampler.SQADDR)
	pc, _ := rep.Unit(microsampler.SQPC)
	fmt.Printf("store addresses leak: %v; store PCs leak: %v\n", sq.Leaky(), pc.Leaky())
	// Output:
	// store addresses leak: true; store PCs leak: false
}
