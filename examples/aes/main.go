// AES case study (extension beyond the paper's case list, same
// methodology): a key-distinguishing experiment against T-table AES-128.
//
// Each run fixes a plaintext and two candidate keys that differ in one
// byte; iterations alternate between the keys, which is the secret class
// label. Under cache pressure (the Te0 lines are evicted between
// encryptions), the classic T-table kernel is distinguishable through
// load addresses, cache requests, miss-status registers, fill buffer,
// prefetcher state and timing.
//
// The well-known countermeasure — touching every table line before the
// rounds — is then verified too: the residency and timing channels
// close, but MicroSampler still flags the load-address, cache-request
// and TLB channels, demonstrating that preloading does not make table
// lookups data-oblivious (exactly the gap that trace-driven and
// SGX-style attackers exploit).
package main

import (
	"fmt"
	"log"

	"microsampler"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	for _, name := range []string{"AES-TTABLE", "AES-PRELOAD"} {
		w, err := microsampler.WorkloadByName(name)
		if err != nil {
			return err
		}
		rep, err := microsampler.Verify(w, microsampler.Options{
			Config: microsampler.MegaBoom(),
			Runs:   6,
			Warmup: 4,
		})
		if err != nil {
			return err
		}
		fmt.Printf("=== %s\n", name)
		fmt.Print(microsampler.RenderSummary(rep))
		fmt.Print(microsampler.RenderChart(rep))
		if u, ok := rep.Unit(microsampler.LQADDR); ok && u.Leaky() {
			fmt.Print(microsampler.RenderFeatures(rep, microsampler.LQADDR))
		}
		fmt.Println()
	}
	return nil
}
