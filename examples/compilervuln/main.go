// Compiler vulnerability study (the paper's ME-V1-CV, Section VII-A1),
// reproduced with a real compiler: the same constant-time conditional
// copy source is compiled twice by the bundled miniature constant-time
// compiler —
//
//   - with the "balanced" lowering (branchless mask select of the
//     destination pointer: the ME-V1-MV shape), and
//   - with the "preload" optimisation that hoists memmove's first
//     argument above the ctl check, producing the unbalanced sequence
//     of the paper's Listing 4 (two extra instructions on the ctl==0
//     path).
//
// Both binaries compute identical results; MicroSampler distinguishes
// them: the preloaded version leaks through control-flow-sensitive
// units (ROB, execution units, queue timing), the balanced version only
// through the secret-dependent store addresses.
package main

import (
	"fmt"
	"log"

	"microsampler"
)

const ccopySource = `
func ccopy(ctl, dst, dummy, src, len) {
	if (ctl) {
		memmove(dst, src, len);
	} else {
		memmove(dummy, src, len);
	}
	return 0;
}
func memmove(dst, src, len) {
	while (len) {
		store64(dst, load64(src));
		dst = dst + 8;
		src = src + 8;
		len = len - 8;
	}
	return 0;
}
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	strategies := []struct {
		name     string
		strategy microsampler.Strategy
	}{
		{"CCOPY-BALANCED", microsampler.LowerBalanced},
		{"CCOPY-PRELOAD", microsampler.LowerPreload},
	}
	for _, s := range strategies {
		code, err := microsampler.CompileCT(ccopySource, s.strategy)
		if err != nil {
			return fmt.Errorf("compile %s: %w", s.name, err)
		}
		w, err := microsampler.ModexpWithConditionalCopy(s.name, code)
		if err != nil {
			return err
		}
		rep, err := microsampler.Verify(w, microsampler.Options{Runs: 6, Warmup: 4})
		if err != nil {
			return err
		}
		fmt.Printf("=== conditional copy compiled with the %q strategy\n", s.strategy)
		fmt.Print(microsampler.RenderSummary(rep))
		fmt.Print(microsampler.RenderChart(rep))
		if u, ok := rep.Unit(microsampler.SQADDR); ok && u.Leaky() {
			fmt.Print(microsampler.RenderFeatures(rep, microsampler.SQADDR))
		}
		fmt.Println()
	}
	return nil
}
