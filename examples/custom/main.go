// Custom workload: verifying your own kernel with the public API.
//
// This example shows the full downstream-user workflow:
//
//  1. write the kernel in the framework's RV64 assembly dialect, with
//     roi/iter markers around the security-critical region;
//  2. provide a Setup function that writes per-run secrets and a
//     reference result into the program's data symbols;
//  3. run Verify and inspect per-unit statistics and root causes.
//
// The kernel under test is a deliberately subtle one: a constant-time
// conditional negation that is computed branchlessly — but spills its
// mask to a secret-indexed stack slot, an easy mistake to make when
// hand-managing scratch space.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"microsampler"
)

const kernel = `
	.text
_start:
	la   s2, values
	la   s3, bits
	la   s4, scratch
	call sweep            # warmup
	roi.begin
	call sweep
	roi.end
	la   t0, expected
	ld   t0, 0(t0)
	sub  a0, a0, t0
	snez a0, a0
	li   a7, 93
	ecall

sweep:                    # returns checksum in a0
	addi sp, sp, -16
	sd   ra, 8(sp)
	li   s5, 0
	li   s6, 0
sw_loop:
	slli t0, s5, 3
	add  t0, t0, s2
	ld   t2, 0(t0)        # value
	add  t0, s3, s5
	lbu  t3, 0(t0)        # secret bit
	iter.begin t3
	neg  t4, t3           # mask = bit ? -1 : 0
	# BUG under test: the scratch slot index depends on the secret.
	slli t5, t3, 3
	add  t5, t5, s4
	sd   t4, 0(t5)
	ld   t4, 0(t5)
	xor  t2, t2, t4       # conditional negate (branchless)
	sub  t2, t2, t4
	iter.end
	slli t0, s6, 1
	srli t1, s6, 63
	or   s6, t0, t1
	xor  s6, s6, t2
	addi s5, s5, 1
	li   t0, 24
	bltu s5, t0, sw_loop
	mv   a0, s6
	ld   ra, 8(sp)
	addi sp, sp, 16
	ret

	.data
expected: .dword 0
values:   .zero 192
bits:     .zero 24
	.align 6
scratch:  .zero 64
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	w := microsampler.Workload{
		Name:   "COND-NEGATE",
		Source: kernel,
		Setup: func(runIdx int, m *microsampler.Machine, prog *microsampler.Program) error {
			rng := rand.New(rand.NewSource(1000 + int64(runIdx)))
			mem := m.Memory()
			values := prog.MustSymbol("values")
			bits := prog.MustSymbol("bits")
			checksum := uint64(0)
			for i := 0; i < 24; i++ {
				v := rng.Uint64()
				b := uint64(rng.Intn(2))
				mem.Write(values+uint64(8*i), 8, v)
				mem.Write(bits+uint64(i), 1, b)
				r := v
				if b == 1 {
					r = -v
				}
				checksum = checksum<<1 | checksum>>63
				checksum ^= r
			}
			mem.Write(prog.MustSymbol("expected"), 8, checksum)
			return nil
		},
	}
	rep, err := microsampler.Verify(w, microsampler.Options{
		Runs:     6,
		Warmup:   4,
		Parallel: -1,
	})
	if err != nil {
		return err
	}
	fmt.Print(microsampler.RenderSummary(rep))
	fmt.Print(microsampler.RenderChart(rep))
	if u, ok := rep.Unit(microsampler.SQADDR); ok && u.Leaky() {
		fmt.Print(microsampler.RenderFeatures(rep, microsampler.SQADDR))
		fmt.Println("-> the secret-indexed scratch slot is the root cause")
	}
	return nil
}
