// Microarchitectural vulnerability study (the paper's ME-V2-FB,
// Section VII-B): a correct constant-time kernel is broken by a
// seemingly benign hardware optimisation.
//
// The BearSSL conditional copy (ME-V2-Safe) is verified twice: on the
// baseline MegaBoom core, where nothing correlates with the key bits,
// and on the same core with the "fast bypass" optimisation enabled —
// an AND whose available operand is zero is folded at rename time,
// skipping the ALU. Because the copy's mask is zero exactly when the
// key bit is zero, the fold fires per key bit and the kernel leaks.
//
// The with/without-timing chart shows the paper's diagnostic: the store
// queue correlations disappear once timing is removed (pure timing
// leakage), while EUU-ALU and ROB-PC remain — the folded AND itself.
package main

import (
	"fmt"
	"log"

	"microsampler"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	w, err := microsampler.WorkloadByName("ME-V2-SAFE")
	if err != nil {
		return err
	}

	baseline := microsampler.MegaBoom()
	optimised := microsampler.MegaBoom()
	optimised.FastBypass = true

	for _, cfg := range []struct {
		label  string
		config microsampler.Config
	}{
		{"baseline MegaBoom", baseline},
		{"MegaBoom + fast bypass (ME-V2-FB)", optimised},
	} {
		rep, err := microsampler.Verify(w, microsampler.Options{
			Config: cfg.config,
			Runs:   6,
			Warmup: 4,
		})
		if err != nil {
			return err
		}
		fmt.Printf("=== %s\n", cfg.label)
		fmt.Print(microsampler.RenderSummary(rep))
		if rep.AnyLeak() {
			fmt.Print(microsampler.RenderTimingChart(rep))
			// Root cause: the AND instruction unique to key bit 1 (for
			// bit 0 it is folded and never reaches an ALU).
			fmt.Print(microsampler.RenderFeatures(rep, microsampler.EUUALU))
		} else {
			fmt.Print(microsampler.RenderChart(rep))
		}
		fmt.Println()
	}
	return nil
}
