// Transient-execution study (the paper's CT-MEM-CMP, Section VII-C1):
// OpenSSL's CRYPTO_memcmp compares two buffers in constant time, but a
// caller that branches on its return value creates a secret-dependent
// control-flow divergence — and the loop-exit branch inside memcmp can
// mispredict, making the function speculatively return a partial result
// that transiently steers the caller's branch.
//
// MicroSampler flags the reorder buffer (and only the reorder buffer):
// the PCs of the equal/inequal call targets appear in ROB snapshots,
// including transient appearances that never commit. Every other unit
// stays below the leakage threshold, matching the paper's Fig. 10 —
// exactly the kind of finding that post-silicon tools miss because no
// architecturally visible timing difference exists.
package main

import (
	"fmt"
	"log"

	"microsampler"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	w, err := microsampler.WorkloadByName("CT-MEM-CMP")
	if err != nil {
		return err
	}
	rep, err := microsampler.Verify(w, microsampler.Options{
		Config: microsampler.MegaBoom(),
		Runs:   8,
		Warmup: 4,
	})
	if err != nil {
		return err
	}
	fmt.Print(microsampler.RenderSummary(rep))
	fmt.Print(microsampler.RenderChart(rep))
	fmt.Print(microsampler.RenderFeatures(rep, microsampler.ROBPC))
	fmt.Print(microsampler.RenderContingency(rep, microsampler.ROBPC, 6))
	return nil
}
