// Quickstart: verify a constant-time kernel with MicroSampler.
//
// This runs the paper's ME-V2-Safe case study — BearSSL's branchless
// conditional copy inside modular exponentiation — on the MegaBoom
// core model and prints the per-unit Cramér's V chart (Fig. 7 of the
// paper): on the baseline core no microarchitectural unit shows a
// statistically significant correlation with the key bits.
//
// For contrast it then verifies the naive square-and-multiply (the
// paper's Listing 1), which leaks through nearly everything.
package main

import (
	"fmt"
	"log"

	"microsampler"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	for _, name := range []string{"ME-V2-SAFE", "ME-NAIVE"} {
		w, err := microsampler.WorkloadByName(name)
		if err != nil {
			return err
		}
		rep, err := microsampler.Verify(w, microsampler.Options{
			Config: microsampler.MegaBoom(),
			Runs:   6,
			Warmup: 4,
		})
		if err != nil {
			return err
		}
		fmt.Print(microsampler.RenderSummary(rep))
		fmt.Print(microsampler.RenderChart(rep))
		fmt.Println()
	}
	return nil
}
