// Transient-only leakage (Spectre-PHT): the strongest demonstration of
// why pre-silicon microarchitectural visibility matters.
//
// The victim is the canonical bounds-check-bypass gadget:
//
//	if (idx < len) y = table2[(table1[idx] & 1) * 64];
//
// Every probe calls it with an out-of-bounds index aimed at a secret
// byte. Architecturally nothing ever depends on the secret — the bounds
// check holds and the probe returns 0 — so no post-silicon address- or
// time-based tool observing committed behaviour has anything to see.
// But in the mispredicted window the core transiently loads the probe
// array at a secret-selected cache line, and MicroSampler's per-cycle
// view flags the load queue, cache requests, MSHRs, fill buffer and
// prefetcher, then extracts the two transiently-touched lines as the
// unique features, attributed to the victim function.
package main

import (
	"fmt"
	"log"

	"microsampler"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	w, err := microsampler.WorkloadByName("SPECTRE-PHT")
	if err != nil {
		return err
	}
	rep, err := microsampler.Verify(w, microsampler.Options{
		Config:   microsampler.MegaBoom(),
		Runs:     8,
		Warmup:   4,
		Parallel: -1,
	})
	if err != nil {
		return err
	}
	fmt.Print(microsampler.RenderSummary(rep))
	fmt.Print(microsampler.RenderChart(rep))
	fmt.Print(microsampler.RenderFeatures(rep, microsampler.LQADDR))
	fmt.Print(microsampler.RenderFeatures(rep, microsampler.MSHRADDR))
	return nil
}
