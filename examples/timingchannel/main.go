// Timing-channel demonstration (the paper's Fig. 6, Section VII-A2):
// the branchless ME-V1-MV conditional copy has no timing leak under
// normal conditions — but the secret-dependent store addresses that
// MicroSampler flags can be turned into a timing channel by controlling
// cache residency.
//
// Variant 6a leaves both copy destinations cached: the per-class
// iteration timing distributions are indistinguishable. Variant 6b
// models the cache pressure of a real working set (the write-only dummy
// region is evicted between uses while dst stays warm because it is
// read every iteration): iterations that copy to dst are now measurably
// faster, recovering the key bit from timing alone.
package main

import (
	"fmt"
	"log"

	"microsampler"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	for _, tc := range []struct {
		workload string
		label    string
	}{
		{"ME-V1-MV-6A", "Fig 6a: no cache pressure (dst and dummy both resident)"},
		{"ME-V1-MV-6B", "Fig 6b: dst resident, dummy evicted between uses"},
	} {
		w, err := microsampler.WorkloadByName(tc.workload)
		if err != nil {
			return err
		}
		rep, err := microsampler.Verify(w, microsampler.Options{Runs: 6, Warmup: 4})
		if err != nil {
			return err
		}
		fmt.Println("===", tc.label)
		fmt.Print(microsampler.RenderHistogram(tc.workload, rep.Iterations))
		means := microsampler.MeanCyclesByClass(rep.Iterations)
		fmt.Printf("mean cycles: key bit 0 -> %.1f, key bit 1 -> %.1f\n\n",
			means[0], means[1])
	}
	return nil
}
