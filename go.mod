module microsampler

go 1.24
