package asm

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"

	"microsampler/internal/isa"
)

// Option configures the assembler.
type Option func(*assembler)

// WithTextBase sets the base address of the text segment.
func WithTextBase(addr uint64) Option { return func(a *assembler) { a.textBase = addr } }

// WithDataBase sets the base address of the data segment.
func WithDataBase(addr uint64) Option { return func(a *assembler) { a.dataBase = addr } }

// WithStackTop sets the initial stack pointer of the program.
func WithStackTop(addr uint64) Option { return func(a *assembler) { a.stackTop = addr } }

// SyntaxError describes an assembly failure at a specific source line.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string { return fmt.Sprintf("line %d: %s", e.Line, e.Msg) }

type section int

const (
	secText section = iota
	secData
)

type pending struct {
	line     int
	mnemonic string
	operands []string
	addr     uint64
	size     int // bytes reserved in pass 1
}

type dataItem struct {
	line  int
	addr  uint64
	kind  string   // directive name
	exprs []string // operand expressions
	size  int
}

type assembler struct {
	textBase, dataBase, stackTop uint64

	symbols map[string]uint64
	text    []pending
	data    []dataItem
	textEnd uint64
	dataEnd uint64
}

// Assemble translates source text into a Program.
func Assemble(src string, opts ...Option) (*Program, error) {
	a := &assembler{
		textBase: DefaultTextBase,
		dataBase: DefaultDataBase,
		stackTop: DefaultStackTop,
		symbols:  make(map[string]uint64),
	}
	for _, o := range opts {
		o(a)
	}
	if err := a.pass1(src); err != nil {
		return nil, err
	}
	return a.pass2()
}

func stripComment(line string) string {
	inChar := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '\'':
			inChar = !inChar
		case '#':
			if !inChar {
				return line[:i]
			}
		case '/':
			if !inChar && i+1 < len(line) && line[i+1] == '/' {
				return line[:i]
			}
		}
	}
	return line
}

func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

func (a *assembler) pass1(src string) error {
	sec := secText
	tc, dc := a.textBase, a.dataBase

	for lineNo, raw := range strings.Split(src, "\n") {
		n := lineNo + 1
		line := strings.TrimSpace(stripComment(raw))

		// Peel off any leading labels.
		for {
			idx := strings.Index(line, ":")
			if idx < 0 {
				break
			}
			head := strings.TrimSpace(line[:idx])
			if head == "" || strings.ContainsAny(head, " \t\"'()") {
				break
			}
			if _, dup := a.symbols[head]; dup {
				return &SyntaxError{n, fmt.Sprintf("duplicate symbol %q", head)}
			}
			if sec == secText {
				a.symbols[head] = tc
			} else {
				a.symbols[head] = dc
			}
			line = strings.TrimSpace(line[idx+1:])
		}
		if line == "" {
			continue
		}

		mnemonic, rest, _ := strings.Cut(line, " ")
		mnemonic = strings.ToLower(strings.TrimSpace(mnemonic))
		operands := splitOperands(rest)

		if strings.HasPrefix(mnemonic, ".") {
			var err error
			sec, tc, dc, err = a.directive1(n, sec, tc, dc, mnemonic, rest, operands)
			if err != nil {
				return err
			}
			continue
		}

		if sec != secText {
			return &SyntaxError{n, "instruction outside .text section"}
		}
		size, err := a.instSize(n, mnemonic, operands)
		if err != nil {
			return err
		}
		a.text = append(a.text, pending{
			line: n, mnemonic: mnemonic, operands: operands, addr: tc, size: size,
		})
		tc += uint64(size)
	}
	a.textEnd, a.dataEnd = tc, dc
	return nil
}

func align(v uint64, pow uint64) uint64 {
	mask := (uint64(1) << pow) - 1
	return (v + mask) &^ mask
}

func (a *assembler) directive1(n int, sec section, tc, dc uint64,
	mnemonic, rest string, operands []string) (section, uint64, uint64, error) {
	switch mnemonic {
	case ".text":
		return secText, tc, dc, nil
	case ".data", ".bss", ".rodata":
		return secData, tc, dc, nil
	case ".section":
		switch strings.TrimSpace(rest) {
		case ".text":
			return secText, tc, dc, nil
		case ".data", ".bss", ".rodata":
			return secData, tc, dc, nil
		}
		return sec, tc, dc, &SyntaxError{n, fmt.Sprintf("unknown section %q", rest)}
	case ".globl", ".global", ".type", ".size", ".option", ".file", ".attribute":
		return sec, tc, dc, nil
	case ".equ", ".set":
		if len(operands) != 2 {
			return sec, tc, dc, &SyntaxError{n, ".equ needs name, value"}
		}
		v, err := a.eval(operands[1])
		if err != nil {
			return sec, tc, dc, &SyntaxError{n, err.Error()}
		}
		a.symbols[operands[0]] = uint64(v)
		return sec, tc, dc, nil
	case ".align", ".p2align":
		if len(operands) < 1 {
			return sec, tc, dc, &SyntaxError{n, ".align needs an argument"}
		}
		p, err := strconv.ParseUint(operands[0], 0, 6)
		if err != nil {
			return sec, tc, dc, &SyntaxError{n, "bad .align argument"}
		}
		if sec == secText {
			// Text alignment is reserved with nops in pass 2.
			newTC := align(tc, p)
			if newTC != tc {
				a.text = append(a.text, pending{line: n, mnemonic: ".pad",
					addr: tc, size: int(newTC - tc)})
			}
			return sec, newTC, dc, nil
		}
		newDC := align(dc, p)
		if newDC != dc {
			a.data = append(a.data, dataItem{line: n, addr: dc, kind: ".zero",
				exprs: []string{strconv.FormatUint(newDC-dc, 10)}, size: int(newDC - dc)})
		}
		return sec, tc, newDC, nil
	case ".byte", ".half", ".word", ".dword", ".quad", ".zero", ".space",
		".ascii", ".asciz", ".string":
		if sec != secText {
			size, err := dataSize(n, mnemonic, rest, operands)
			if err != nil {
				return sec, tc, dc, err
			}
			a.data = append(a.data, dataItem{line: n, addr: dc, kind: mnemonic,
				exprs: operands, size: size})
			if mnemonic == ".ascii" || mnemonic == ".asciz" || mnemonic == ".string" {
				a.data[len(a.data)-1].exprs = []string{strings.TrimSpace(rest)}
			}
			return sec, tc, dc + uint64(size), nil
		}
		return sec, tc, dc, &SyntaxError{n, "data directive in .text"}
	}
	return sec, tc, dc, &SyntaxError{n, fmt.Sprintf("unknown directive %q", mnemonic)}
}

func dataSize(n int, kind, rest string, operands []string) (int, error) {
	unit := 0
	switch kind {
	case ".byte":
		unit = 1
	case ".half":
		unit = 2
	case ".word":
		unit = 4
	case ".dword", ".quad":
		unit = 8
	case ".zero", ".space":
		if len(operands) != 1 {
			return 0, &SyntaxError{n, kind + " needs one argument"}
		}
		v, err := strconv.ParseUint(operands[0], 0, 32)
		if err != nil {
			return 0, &SyntaxError{n, "bad " + kind + " size"}
		}
		return int(v), nil
	case ".ascii", ".asciz", ".string":
		s, err := strconv.Unquote(strings.TrimSpace(rest))
		if err != nil {
			return 0, &SyntaxError{n, "bad string literal"}
		}
		if kind == ".ascii" {
			return len(s), nil
		}
		return len(s) + 1, nil
	}
	return unit * len(operands), nil
}

// instSize returns the number of bytes an instruction (or pseudo) will
// occupy. Pseudo-instruction expansions whose length depends on symbol
// values not yet known are reserved at their worst case and padded.
func (a *assembler) instSize(n int, mnemonic string, operands []string) (int, error) {
	switch mnemonic {
	case "li":
		if len(operands) != 2 {
			return 0, &SyntaxError{n, "li needs rd, imm"}
		}
		if v, err := a.eval(operands[1]); err == nil {
			return 4 * len(liSequence(isa.T0, v)), nil
		}
		return 4 * 12, nil // worst case, padded in pass 2
	case "la":
		return 8, nil
	case ".pad":
		return 0, nil
	}
	return 4, nil
}

func (a *assembler) pass2() (*Program, error) {
	p := &Program{
		TextBase: a.textBase,
		DataBase: a.dataBase,
		StackTop: a.stackTop,
		Symbols:  a.symbols,
	}
	if a.textEnd >= a.dataBase && len(a.data) > 0 {
		return nil, fmt.Errorf("asm: text segment (%#x) overlaps data base (%#x)",
			a.textEnd, a.dataBase)
	}

	text := make([]byte, 0, int(a.textEnd-a.textBase))
	for _, pd := range a.text {
		insts, err := a.expand(pd)
		if err != nil {
			return nil, err
		}
		for len(insts)*4 < pd.size {
			insts = append(insts, isa.Inst{Op: isa.OpADDI}) // nop padding
		}
		if len(insts)*4 > pd.size {
			return nil, &SyntaxError{pd.line, "internal: expansion exceeds reservation"}
		}
		for _, in := range insts {
			w, err := isa.Encode(in)
			if err != nil {
				return nil, &SyntaxError{pd.line, err.Error()}
			}
			text = binary.LittleEndian.AppendUint32(text, w)
		}
	}
	p.Text = text

	data := make([]byte, 0, int(a.dataEnd-a.dataBase))
	for _, d := range a.data {
		chunk, err := a.emitData(d)
		if err != nil {
			return nil, err
		}
		data = append(data, chunk...)
	}
	p.Data = data

	if e, ok := a.symbols["_start"]; ok {
		p.Entry = e
	} else {
		p.Entry = a.textBase
	}
	return p, nil
}

func (a *assembler) emitData(d dataItem) ([]byte, error) {
	switch d.kind {
	case ".zero", ".space":
		return make([]byte, d.size), nil
	case ".ascii", ".asciz", ".string":
		s, err := strconv.Unquote(d.exprs[0])
		if err != nil {
			return nil, &SyntaxError{d.line, "bad string literal"}
		}
		b := []byte(s)
		if d.kind != ".ascii" {
			b = append(b, 0)
		}
		return b, nil
	}
	unit := map[string]int{".byte": 1, ".half": 2, ".word": 4, ".dword": 8, ".quad": 8}[d.kind]
	out := make([]byte, 0, unit*len(d.exprs))
	for _, e := range d.exprs {
		v, err := a.eval(e)
		if err != nil {
			return nil, &SyntaxError{d.line, err.Error()}
		}
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		out = append(out, buf[:unit]...)
	}
	return out, nil
}

// eval evaluates a constant expression: numbers, character literals,
// symbols, joined with + and -.
func (a *assembler) eval(expr string) (int64, error) {
	s := strings.TrimSpace(expr)
	if s == "" {
		return 0, fmt.Errorf("empty expression")
	}
	var total int64
	sign := int64(1)
	i := 0
	for i < len(s) {
		switch s[i] {
		case '+':
			sign = 1
			i++
			continue
		case '-':
			sign = -sign
			i++
			continue
		case ' ', '\t':
			i++
			continue
		}
		j := i
		for j < len(s) && s[j] != '+' && s[j] != '-' && s[j] != ' ' {
			if s[j] == '\'' { // char literal: consume to closing quote
				k := strings.IndexByte(s[j+1:], '\'')
				if k < 0 {
					return 0, fmt.Errorf("unterminated char literal in %q", expr)
				}
				j += k + 2
				continue
			}
			j++
		}
		tok := s[i:j]
		v, err := a.evalAtom(tok)
		if err != nil {
			return 0, err
		}
		total += sign * v
		sign = 1
		i = j
	}
	return total, nil
}

func (a *assembler) evalAtom(tok string) (int64, error) {
	if tok == "" {
		return 0, fmt.Errorf("empty term")
	}
	if tok[0] == '\'' {
		s, err := strconv.Unquote(tok)
		if err != nil || len(s) != 1 {
			return 0, fmt.Errorf("bad char literal %q", tok)
		}
		return int64(s[0]), nil
	}
	if v, err := strconv.ParseInt(tok, 0, 64); err == nil {
		return v, nil
	}
	if v, err := strconv.ParseUint(tok, 0, 64); err == nil {
		return int64(v), nil
	}
	if v, ok := a.symbols[tok]; ok {
		return int64(v), nil
	}
	return 0, fmt.Errorf("undefined symbol %q", tok)
}

func (a *assembler) reg(n int, name string) (isa.Reg, error) {
	r, ok := isa.RegByName(strings.TrimSpace(name))
	if !ok {
		return 0, &SyntaxError{n, fmt.Sprintf("bad register %q", name)}
	}
	return r, nil
}

// memOperand parses "off(reg)" or "(reg)".
func (a *assembler) memOperand(n int, s string) (int64, isa.Reg, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	close := strings.LastIndexByte(s, ')')
	if open < 0 || close < open {
		return 0, 0, &SyntaxError{n, fmt.Sprintf("bad memory operand %q", s)}
	}
	r, err := a.reg(n, s[open+1:close])
	if err != nil {
		return 0, 0, err
	}
	offStr := strings.TrimSpace(s[:open])
	if offStr == "" {
		return 0, r, nil
	}
	off, err := a.eval(offStr)
	if err != nil {
		return 0, 0, &SyntaxError{n, err.Error()}
	}
	return off, r, nil
}

// liSequence computes the canonical instruction sequence loading v into rd.
func liSequence(rd isa.Reg, v int64) []isa.Inst {
	if v >= -2048 && v < 2048 {
		return []isa.Inst{{Op: isa.OpADDI, Rd: rd, Rs1: isa.Zero, Imm: v}}
	}
	if v >= -(1<<31) && v < 1<<31 {
		lo := v << 52 >> 52 // sign-extended low 12 bits
		hi := (v - lo) >> 12 & 0xFFFFF
		hiSigned := hi << 44 >> 44
		out := []isa.Inst{{Op: isa.OpLUI, Rd: rd, Imm: hiSigned}}
		if lo != 0 {
			out = append(out, isa.Inst{Op: isa.OpADDIW, Rd: rd, Rs1: rd, Imm: lo})
		} else {
			out = append(out, isa.Inst{Op: isa.OpADDIW, Rd: rd, Rs1: rd, Imm: 0})
		}
		return out
	}
	// General 64-bit constant: build the upper part recursively, then
	// shift in 12 bits at a time.
	lo := v << 52 >> 52
	hi := (v - lo) >> 12
	out := liSequence(rd, hi)
	out = append(out, isa.Inst{Op: isa.OpSLLI, Rd: rd, Rs1: rd, Imm: 12})
	if lo != 0 {
		out = append(out, isa.Inst{Op: isa.OpADDI, Rd: rd, Rs1: rd, Imm: lo})
	}
	return out
}
