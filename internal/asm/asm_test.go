package asm

import (
	"errors"
	"strings"
	"testing"

	"microsampler/internal/isa"
)

func mustAssemble(t *testing.T, src string, opts ...Option) *Program {
	t.Helper()
	p, err := Assemble(src, opts...)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func TestAssembleBasic(t *testing.T) {
	p := mustAssemble(t, `
		.text
	_start:
		addi a0, zero, 5
		addi a1, zero, 7
		add  a2, a0, a1
		ecall
	`)
	insts, err := p.Instructions()
	if err != nil {
		t.Fatal(err)
	}
	want := []isa.Inst{
		{Op: isa.OpADDI, Rd: isa.A0, Imm: 5},
		{Op: isa.OpADDI, Rd: isa.A1, Imm: 7},
		{Op: isa.OpADD, Rd: isa.A2, Rs1: isa.A0, Rs2: isa.A1},
		{Op: isa.OpECALL},
	}
	if len(insts) != len(want) {
		t.Fatalf("got %d instructions, want %d", len(insts), len(want))
	}
	for i := range want {
		if insts[i] != want[i] {
			t.Errorf("inst %d: got %v want %v", i, insts[i], want[i])
		}
	}
	if p.Entry != p.TextBase {
		t.Errorf("entry = %#x want %#x", p.Entry, p.TextBase)
	}
}

func TestAssembleBranchesAndLabels(t *testing.T) {
	p := mustAssemble(t, `
	_start:
		li   t0, 3
	loop:
		addi t0, t0, -1
		bnez t0, loop
		beq  t0, zero, done
		nop
	done:
		ecall
	`)
	insts, err := p.Instructions()
	if err != nil {
		t.Fatal(err)
	}
	// li 3 -> 1 inst; addi; bnez (beq t0!=0 back -4); beq forward +8; nop; ecall
	var foundBack, foundFwd bool
	for _, in := range insts {
		if in.Op == isa.OpBNE && in.Imm == -4 {
			foundBack = true
		}
		if in.Op == isa.OpBEQ && in.Imm == 8 {
			foundFwd = true
		}
	}
	if !foundBack || !foundFwd {
		t.Errorf("branch offsets wrong: %v", insts)
	}
}

func TestAssembleDataSection(t *testing.T) {
	p := mustAssemble(t, `
		.data
	bytes:
		.byte 1, 2, 0xFF
		.align 3
	words:
		.dword 0x1122334455667788, -1
	msg:
		.asciz "hi"
		.zero 4
		.text
	_start:
		la a0, bytes
		ld a1, 0(a0)
		ecall
	`)
	if got := p.MustSymbol("bytes"); got != p.DataBase {
		t.Errorf("bytes symbol = %#x want %#x", got, p.DataBase)
	}
	wordsAddr := p.MustSymbol("words")
	if wordsAddr != p.DataBase+8 {
		t.Errorf("words not aligned to 8: %#x", wordsAddr)
	}
	off := wordsAddr - p.DataBase
	if p.Data[off] != 0x88 || p.Data[off+7] != 0x11 {
		t.Errorf("dword little-endian layout wrong: % x", p.Data[off:off+8])
	}
	if p.Data[off+8] != 0xFF {
		t.Errorf("-1 dword wrong: %x", p.Data[off+8])
	}
	msgOff := p.MustSymbol("msg") - p.DataBase
	if string(p.Data[msgOff:msgOff+3]) != "hi\x00" {
		t.Errorf("asciz wrong: %q", p.Data[msgOff:msgOff+3])
	}
	if p.Data[0] != 1 || p.Data[1] != 2 || p.Data[2] != 0xFF {
		t.Errorf("bytes wrong: % x", p.Data[:3])
	}
}

func TestAssembleLiRanges(t *testing.T) {
	tests := []struct {
		val  string
		want int64
	}{
		{"0", 0},
		{"42", 42},
		{"-1", -1},
		{"2047", 2047},
		{"-2048", -2048},
		{"2048", 2048},
		{"0x7FFFF000", 0x7FFFF000},
		{"0x12345678", 0x12345678},
		{"-2147483648", -2147483648},
		{"0x123456789ABCDEF0", 0x123456789ABCDEF0},
		{"-81985529216486896", -81985529216486896},
		{"0x8000000000000000", -9223372036854775808},
	}
	for _, tt := range tests {
		p := mustAssemble(t, "_start:\n li a0, "+tt.val+"\n ecall\n")
		insts, err := p.Instructions()
		if err != nil {
			t.Fatal(err)
		}
		// Interpret the sequence to verify the loaded constant.
		var regs [32]int64
		for _, in := range insts {
			switch in.Op {
			case isa.OpADDI:
				regs[in.Rd] = regs[in.Rs1] + in.Imm
			case isa.OpADDIW:
				regs[in.Rd] = int64(int32(regs[in.Rs1] + in.Imm))
			case isa.OpLUI:
				regs[in.Rd] = in.Imm << 12
			case isa.OpSLLI:
				regs[in.Rd] = regs[in.Rs1] << uint(in.Imm)
			case isa.OpECALL:
			default:
				t.Fatalf("li %s: unexpected op %v", tt.val, in.Op)
			}
			regs[0] = 0
		}
		if regs[isa.A0] != tt.want {
			t.Errorf("li %s: loaded %d (%#x), want %d", tt.val,
				regs[isa.A0], regs[isa.A0], tt.want)
		}
	}
}

func TestAssemblePseudoInstructions(t *testing.T) {
	p := mustAssemble(t, `
	_start:
		mv   a0, a1
		not  a2, a3
		neg  a4, a5
		seqz t0, t1
		snez t2, t3
		sext.w s2, s3
		j    next
	next:
		jr   ra
		call _start
		ret
		roi.begin
		iter.begin a0
		iter.end
		roi.end
		cbo.flush (a0)
		ecall
	`)
	insts, err := p.Instructions()
	if err != nil {
		t.Fatal(err)
	}
	checks := map[int]isa.Inst{
		0: {Op: isa.OpADDI, Rd: isa.A0, Rs1: isa.A1},
		1: {Op: isa.OpXORI, Rd: isa.A2, Rs1: isa.A3, Imm: -1},
		2: {Op: isa.OpSUB, Rd: isa.A4, Rs1: isa.Zero, Rs2: isa.A5},
		3: {Op: isa.OpSLTIU, Rd: isa.T0, Rs1: isa.T1, Imm: 1},
		4: {Op: isa.OpSLTU, Rd: isa.T2, Rs1: isa.Zero, Rs2: isa.T3},
		5: {Op: isa.OpADDIW, Rd: isa.S2, Rs1: isa.S3},
		6: {Op: isa.OpJAL, Rd: isa.Zero, Imm: 4},
		7: {Op: isa.OpJALR, Rd: isa.Zero, Rs1: isa.RA},
	}
	for i, want := range checks {
		if insts[i] != want {
			t.Errorf("inst %d: got %v want %v", i, insts[i], want)
		}
	}
	if insts[8].Op != isa.OpJAL || insts[8].Rd != isa.RA {
		t.Errorf("call wrong: %v", insts[8])
	}
	if insts[10] != (isa.Inst{Op: isa.OpMARK, Imm: int64(isa.MarkROIBegin)}) {
		t.Errorf("roi.begin wrong: %v", insts[10])
	}
	if insts[11] != (isa.Inst{Op: isa.OpMARK, Rs1: isa.A0, Imm: int64(isa.MarkIterBegin)}) {
		t.Errorf("iter.begin wrong: %v", insts[11])
	}
	if insts[14] != (isa.Inst{Op: isa.OpCBOFLUSH, Rs1: isa.A0}) {
		t.Errorf("cbo.flush wrong: %v", insts[14])
	}
}

func TestAssembleEqu(t *testing.T) {
	p := mustAssemble(t, `
		.equ BUFLEN, 32
		.equ TWO_BUF, BUFLEN+BUFLEN
	_start:
		li a0, BUFLEN
		li a1, TWO_BUF
		addi a2, zero, BUFLEN-1
		ecall
	`)
	insts, err := p.Instructions()
	if err != nil {
		t.Fatal(err)
	}
	if insts[0].Imm != 32 || insts[1].Imm != 64 || insts[2].Imm != 31 {
		t.Errorf("equ values wrong: %v %v %v", insts[0], insts[1], insts[2])
	}
}

func TestAssembleErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{"unknown mnemonic", "_start:\n frobnicate a0\n", "unknown mnemonic"},
		{"bad register", "_start:\n add a0, q7, a1\n", "bad register"},
		{"undefined symbol", "_start:\n beq a0, a1, nowhere\n", "undefined symbol"},
		{"duplicate label", "x:\n nop\nx:\n nop\n", "duplicate symbol"},
		{"operand count", "_start:\n add a0, a1\n", "expects 3 operands"},
		{"data in text", ".text\n .word 5\n", "data directive in .text"},
		{"inst in data", ".data\n add a0, a1, a2\n", "outside .text"},
		{"bad directive", ".bogus 1\n", "unknown directive"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Assemble(tt.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not contain %q", err, tt.want)
			}
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Errorf("error is not a *SyntaxError: %T", err)
			}
		})
	}
}

func TestSymbolAt(t *testing.T) {
	p := mustAssemble(t, `
	_start:
		nop
		nop
	helper:
		nop
		ecall
	`)
	if got := p.SymbolAt(p.TextBase); got != "_start" {
		t.Errorf("SymbolAt(base) = %q", got)
	}
	h := p.MustSymbol("helper")
	if got := p.SymbolAt(h); got != "helper" {
		t.Errorf("SymbolAt(helper) = %q", got)
	}
	if got := p.SymbolAt(h + 4); !strings.HasPrefix(got, "helper+") {
		t.Errorf("SymbolAt(helper+4) = %q", got)
	}
}

func TestBranchZeroAndSwapForms(t *testing.T) {
	p := mustAssemble(t, `
	_start:
	top:
		beqz a0, top
		bnez a1, top
		bltz a2, top
		bgez a3, top
		bgtz a4, top
		blez a5, top
		bgt  a0, a1, top
		ble  a0, a1, top
		bgtu a0, a1, top
		bleu a0, a1, top
		ecall
	`)
	insts, err := p.Instructions()
	if err != nil {
		t.Fatal(err)
	}
	wantOps := []isa.Op{isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE,
		isa.OpBLT, isa.OpBGE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU}
	for i, op := range wantOps {
		if insts[i].Op != op {
			t.Errorf("inst %d: op %v want %v", i, insts[i].Op, op)
		}
	}
	// bgtz a4, top -> blt zero(rs1), a4(rs2)
	if insts[4].Rs1 != isa.Zero || insts[4].Rs2 != isa.A4 {
		t.Errorf("bgtz operands wrong: %v", insts[4])
	}
	// bgt a0, a1 -> blt a1, a0
	if insts[6].Rs1 != isa.A1 || insts[6].Rs2 != isa.A0 {
		t.Errorf("bgt operands wrong: %v", insts[6])
	}
}

func TestCustomBases(t *testing.T) {
	p := mustAssemble(t, "_start:\n ecall\n",
		WithTextBase(0x8000), WithDataBase(0x20000), WithStackTop(0x40000))
	if p.TextBase != 0x8000 || p.DataBase != 0x20000 || p.StackTop != 0x40000 {
		t.Errorf("bases not applied: %+v", p)
	}
	if p.Entry != 0x8000 {
		t.Errorf("entry = %#x", p.Entry)
	}
}
