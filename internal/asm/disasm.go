package asm

import (
	"encoding/binary"
	"fmt"
	"strings"

	"microsampler/internal/isa"
)

// DisasmLine is one disassembled instruction.
type DisasmLine struct {
	Addr   uint64
	Word   uint32
	Inst   isa.Inst
	Valid  bool
	Symbol string // nearest preceding text symbol, with offset
}

// String renders the line in objdump-like form.
func (l DisasmLine) String() string {
	if !l.Valid {
		return fmt.Sprintf("%8x:  %08x  <invalid>", l.Addr, l.Word)
	}
	return fmt.Sprintf("%8x:  %08x  %-30s %s", l.Addr, l.Word, l.Inst, l.Symbol)
}

// Disassemble decodes the program's text segment.
func Disassemble(p *Program) []DisasmLine {
	out := make([]DisasmLine, 0, len(p.Text)/4)
	for off := 0; off+4 <= len(p.Text); off += 4 {
		addr := p.TextBase + uint64(off)
		word := binary.LittleEndian.Uint32(p.Text[off:])
		line := DisasmLine{Addr: addr, Word: word, Symbol: p.SymbolAt(addr)}
		if in, err := isa.Decode(word); err == nil {
			line.Inst = in
			line.Valid = true
		}
		out = append(out, line)
	}
	return out
}

// DisassembleText renders the whole text segment as one string.
func DisassembleText(p *Program) string {
	var b strings.Builder
	for _, l := range Disassemble(p) {
		b.WriteString(l.String())
		b.WriteByte('\n')
	}
	return b.String()
}
