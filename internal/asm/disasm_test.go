package asm

import (
	"strings"
	"testing"

	"microsampler/internal/isa"
)

func TestDisassemble(t *testing.T) {
	p := mustAssemble(t, `
_start:
	addi a0, zero, 5
	add  a1, a0, a0
helper:
	ecall
`)
	lines := Disassemble(p)
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !lines[0].Valid || lines[0].Inst.Op != isa.OpADDI {
		t.Errorf("line 0: %+v", lines[0])
	}
	if lines[0].Symbol != "_start" {
		t.Errorf("line 0 symbol = %q", lines[0].Symbol)
	}
	if lines[2].Symbol != "helper" {
		t.Errorf("line 2 symbol = %q", lines[2].Symbol)
	}
	text := DisassembleText(p)
	if !strings.Contains(text, "addi a0, zero, 5") ||
		!strings.Contains(text, "ecall") {
		t.Errorf("rendered text wrong:\n%s", text)
	}
}

func TestDisassembleInvalidWord(t *testing.T) {
	p := mustAssemble(t, "_start:\n nop\n")
	p.Text[0] = 0xFF
	p.Text[1] = 0xFF
	p.Text[2] = 0xFF
	p.Text[3] = 0xFF
	lines := Disassemble(p)
	if lines[0].Valid {
		t.Error("garbage word decoded as valid")
	}
	if !strings.Contains(lines[0].String(), "<invalid>") {
		t.Error("invalid marker missing")
	}
}

// TestReassembleRoundTrip disassembles a program and feeds the rendered
// non-pseudo instruction text back through the assembler: the binary
// must be identical (labels become raw offsets, which the Inst renderer
// emits as absolute immediates the assembler treats as addresses — so
// the round trip is checked at the single-instruction level instead).
func TestReassembleSingleInstructions(t *testing.T) {
	p := mustAssemble(t, `
	.data
v: .dword 7
	.text
_start:
	addi a0, zero, 42
	add  a1, a0, a0
	mul  a2, a1, a0
	sltu a3, a0, a1
	srai a4, a1, 3
	ld   a5, 0(a0)
	sd   a5, 8(a0)
	lbu  a6, 1(a0)
	ecall
`)
	for _, line := range Disassemble(p) {
		if line.Inst.Class() == isa.ClassBranch || line.Inst.Op == isa.OpMARK {
			continue
		}
		src := "_start:\n\t" + line.Inst.String() + "\n"
		p2, err := Assemble(src)
		if err != nil {
			t.Errorf("re-assemble %q: %v", line.Inst, err)
			continue
		}
		insts, err := p2.Instructions()
		if err != nil {
			t.Fatal(err)
		}
		if len(insts) != 1 || insts[0] != line.Inst {
			t.Errorf("round trip %q -> %v", line.Inst, insts)
		}
	}
}
