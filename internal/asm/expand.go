package asm

import (
	"fmt"
	"strings"

	"microsampler/internal/isa"
)

var rTypeOps = map[string]isa.Op{
	"add": isa.OpADD, "sub": isa.OpSUB, "sll": isa.OpSLL, "slt": isa.OpSLT,
	"sltu": isa.OpSLTU, "xor": isa.OpXOR, "srl": isa.OpSRL, "sra": isa.OpSRA,
	"or": isa.OpOR, "and": isa.OpAND,
	"addw": isa.OpADDW, "subw": isa.OpSUBW, "sllw": isa.OpSLLW,
	"srlw": isa.OpSRLW, "sraw": isa.OpSRAW,
	"mul": isa.OpMUL, "mulh": isa.OpMULH, "mulhsu": isa.OpMULHSU,
	"mulhu": isa.OpMULHU, "div": isa.OpDIV, "divu": isa.OpDIVU,
	"rem": isa.OpREM, "remu": isa.OpREMU,
	"mulw": isa.OpMULW, "divw": isa.OpDIVW, "divuw": isa.OpDIVUW,
	"remw": isa.OpREMW, "remuw": isa.OpREMUW,
}

var iTypeOps = map[string]isa.Op{
	"addi": isa.OpADDI, "slti": isa.OpSLTI, "sltiu": isa.OpSLTIU,
	"xori": isa.OpXORI, "ori": isa.OpORI, "andi": isa.OpANDI,
	"slli": isa.OpSLLI, "srli": isa.OpSRLI, "srai": isa.OpSRAI,
	"addiw": isa.OpADDIW, "slliw": isa.OpSLLIW, "srliw": isa.OpSRLIW,
	"sraiw": isa.OpSRAIW,
}

var loadOps = map[string]isa.Op{
	"lb": isa.OpLB, "lh": isa.OpLH, "lw": isa.OpLW, "ld": isa.OpLD,
	"lbu": isa.OpLBU, "lhu": isa.OpLHU, "lwu": isa.OpLWU,
}

var storeOps = map[string]isa.Op{
	"sb": isa.OpSB, "sh": isa.OpSH, "sw": isa.OpSW, "sd": isa.OpSD,
}

var branchOps = map[string]isa.Op{
	"beq": isa.OpBEQ, "bne": isa.OpBNE, "blt": isa.OpBLT,
	"bge": isa.OpBGE, "bltu": isa.OpBLTU, "bgeu": isa.OpBGEU,
}

// branchSwapOps map pseudo comparisons onto swapped-operand branches.
var branchSwapOps = map[string]isa.Op{
	"bgt": isa.OpBLT, "ble": isa.OpBGE, "bgtu": isa.OpBLTU, "bleu": isa.OpBGEU,
}

// branchZeroOps compare a register against zero.
var branchZeroOps = map[string]struct {
	op      isa.Op
	regLeft bool // register goes in rs1 (else rs2)
}{
	"beqz": {isa.OpBEQ, true},
	"bnez": {isa.OpBNE, true},
	"bltz": {isa.OpBLT, true},
	"bgez": {isa.OpBGE, true},
	"bgtz": {isa.OpBLT, false},
	"blez": {isa.OpBGE, false},
}

func (a *assembler) expand(pd pending) ([]isa.Inst, error) {
	n, ops := pd.line, pd.operands
	need := func(k int) error {
		if len(ops) != k {
			return &SyntaxError{n, fmt.Sprintf("%s expects %d operands, got %d",
				pd.mnemonic, k, len(ops))}
		}
		return nil
	}

	switch m := pd.mnemonic; m {
	case ".pad":
		return nil, nil

	case "nop":
		return []isa.Inst{{Op: isa.OpADDI}}, nil

	case "li":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.reg(n, ops[0])
		if err != nil {
			return nil, err
		}
		v, err := a.eval(ops[1])
		if err != nil {
			return nil, &SyntaxError{n, err.Error()}
		}
		return liSequence(rd, v), nil

	case "la":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.reg(n, ops[0])
		if err != nil {
			return nil, err
		}
		v, err := a.eval(ops[1])
		if err != nil {
			return nil, &SyntaxError{n, err.Error()}
		}
		if v < 0 || v >= 1<<31 {
			return nil, &SyntaxError{n, fmt.Sprintf("la address %#x out of range", v)}
		}
		seq := liSequence(rd, v)
		for len(seq) < 2 {
			seq = append(seq, isa.Inst{Op: isa.OpADDI}) // keep la fixed at 8 bytes
		}
		return seq, nil

	case "mv":
		return a.twoReg(n, ops, func(rd, rs isa.Reg) isa.Inst {
			return isa.Inst{Op: isa.OpADDI, Rd: rd, Rs1: rs}
		})
	case "not":
		return a.twoReg(n, ops, func(rd, rs isa.Reg) isa.Inst {
			return isa.Inst{Op: isa.OpXORI, Rd: rd, Rs1: rs, Imm: -1}
		})
	case "neg":
		return a.twoReg(n, ops, func(rd, rs isa.Reg) isa.Inst {
			return isa.Inst{Op: isa.OpSUB, Rd: rd, Rs1: isa.Zero, Rs2: rs}
		})
	case "negw":
		return a.twoReg(n, ops, func(rd, rs isa.Reg) isa.Inst {
			return isa.Inst{Op: isa.OpSUBW, Rd: rd, Rs1: isa.Zero, Rs2: rs}
		})
	case "sext.w":
		return a.twoReg(n, ops, func(rd, rs isa.Reg) isa.Inst {
			return isa.Inst{Op: isa.OpADDIW, Rd: rd, Rs1: rs}
		})
	case "seqz":
		return a.twoReg(n, ops, func(rd, rs isa.Reg) isa.Inst {
			return isa.Inst{Op: isa.OpSLTIU, Rd: rd, Rs1: rs, Imm: 1}
		})
	case "snez":
		return a.twoReg(n, ops, func(rd, rs isa.Reg) isa.Inst {
			return isa.Inst{Op: isa.OpSLTU, Rd: rd, Rs1: isa.Zero, Rs2: rs}
		})
	case "sltz":
		return a.twoReg(n, ops, func(rd, rs isa.Reg) isa.Inst {
			return isa.Inst{Op: isa.OpSLT, Rd: rd, Rs1: rs, Rs2: isa.Zero}
		})
	case "sgtz":
		return a.twoReg(n, ops, func(rd, rs isa.Reg) isa.Inst {
			return isa.Inst{Op: isa.OpSLT, Rd: rd, Rs1: isa.Zero, Rs2: rs}
		})

	case "j", "jal", "call", "tail":
		return a.expandJump(pd)

	case "jr":
		if err := need(1); err != nil {
			return nil, err
		}
		rs, err := a.reg(n, ops[0])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpJALR, Rd: isa.Zero, Rs1: rs}}, nil

	case "jalr":
		return a.expandJALR(pd)

	case "ret":
		return []isa.Inst{{Op: isa.OpJALR, Rd: isa.Zero, Rs1: isa.RA}}, nil

	case "ecall":
		return []isa.Inst{{Op: isa.OpECALL}}, nil
	case "ebreak":
		return []isa.Inst{{Op: isa.OpEBREAK}}, nil
	case "fence":
		return []isa.Inst{{Op: isa.OpFENCE}}, nil

	case "cbo.flush":
		if err := need(1); err != nil {
			return nil, err
		}
		_, rs, err := a.memOperand(n, ops[0])
		if err != nil {
			rs, err = a.reg(n, ops[0])
			if err != nil {
				return nil, err
			}
		}
		return []isa.Inst{{Op: isa.OpCBOFLUSH, Rs1: rs}}, nil

	case "roi.begin":
		return []isa.Inst{{Op: isa.OpMARK, Imm: int64(isa.MarkROIBegin)}}, nil
	case "roi.end":
		return []isa.Inst{{Op: isa.OpMARK, Imm: int64(isa.MarkROIEnd)}}, nil
	case "iter.begin":
		if err := need(1); err != nil {
			return nil, err
		}
		rs, err := a.reg(n, ops[0])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpMARK, Rs1: rs, Imm: int64(isa.MarkIterBegin)}}, nil
	case "iter.end":
		return []isa.Inst{{Op: isa.OpMARK, Imm: int64(isa.MarkIterEnd)}}, nil

	case "lui", "auipc":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.reg(n, ops[0])
		if err != nil {
			return nil, err
		}
		v, err := a.eval(ops[1])
		if err != nil {
			return nil, &SyntaxError{n, err.Error()}
		}
		op := isa.OpLUI
		if m == "auipc" {
			op = isa.OpAUIPC
		}
		return []isa.Inst{{Op: op, Rd: rd, Imm: v}}, nil
	}

	if op, ok := rTypeOps[pd.mnemonic]; ok {
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err1 := a.reg(n, ops[0])
		rs1, err2 := a.reg(n, ops[1])
		rs2, err3 := a.reg(n, ops[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}}, nil
	}

	if op, ok := iTypeOps[pd.mnemonic]; ok {
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err1 := a.reg(n, ops[0])
		rs1, err2 := a.reg(n, ops[1])
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		imm, err := a.eval(ops[2])
		if err != nil {
			return nil, &SyntaxError{n, err.Error()}
		}
		return []isa.Inst{{Op: op, Rd: rd, Rs1: rs1, Imm: imm}}, nil
	}

	if op, ok := loadOps[pd.mnemonic]; ok {
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.reg(n, ops[0])
		if err != nil {
			return nil, err
		}
		off, rs1, err := a.memOperand(n, ops[1])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: op, Rd: rd, Rs1: rs1, Imm: off}}, nil
	}

	if op, ok := storeOps[pd.mnemonic]; ok {
		if err := need(2); err != nil {
			return nil, err
		}
		rs2, err := a.reg(n, ops[0])
		if err != nil {
			return nil, err
		}
		off, rs1, err := a.memOperand(n, ops[1])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: op, Rs1: rs1, Rs2: rs2, Imm: off}}, nil
	}

	if op, ok := branchOps[pd.mnemonic]; ok {
		return a.expandBranch(pd, op, false)
	}
	if op, ok := branchSwapOps[pd.mnemonic]; ok {
		return a.expandBranch(pd, op, true)
	}
	if bz, ok := branchZeroOps[pd.mnemonic]; ok {
		if err := need(2); err != nil {
			return nil, err
		}
		rs, err := a.reg(n, ops[0])
		if err != nil {
			return nil, err
		}
		off, err := a.branchTarget(n, pd.addr, ops[1])
		if err != nil {
			return nil, err
		}
		in := isa.Inst{Op: bz.op, Imm: off}
		if bz.regLeft {
			in.Rs1 = rs
		} else {
			in.Rs2 = rs
		}
		return []isa.Inst{in}, nil
	}

	return nil, &SyntaxError{n, fmt.Sprintf("unknown mnemonic %q", pd.mnemonic)}
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

func (a *assembler) twoReg(n int, ops []string,
	build func(rd, rs isa.Reg) isa.Inst) ([]isa.Inst, error) {
	if len(ops) != 2 {
		return nil, &SyntaxError{n, "expected rd, rs"}
	}
	rd, err1 := a.reg(n, ops[0])
	rs, err2 := a.reg(n, ops[1])
	if err := firstErr(err1, err2); err != nil {
		return nil, err
	}
	return []isa.Inst{build(rd, rs)}, nil
}

func (a *assembler) branchTarget(n int, addr uint64, expr string) (int64, error) {
	v, err := a.eval(expr)
	if err != nil {
		return 0, &SyntaxError{n, err.Error()}
	}
	off := v - int64(addr)
	return off, nil
}

func (a *assembler) expandBranch(pd pending, op isa.Op, swap bool) ([]isa.Inst, error) {
	n, ops := pd.line, pd.operands
	if len(ops) != 3 {
		return nil, &SyntaxError{n, pd.mnemonic + " expects rs1, rs2, target"}
	}
	r1, err1 := a.reg(n, ops[0])
	r2, err2 := a.reg(n, ops[1])
	if err := firstErr(err1, err2); err != nil {
		return nil, err
	}
	off, err := a.branchTarget(n, pd.addr, ops[2])
	if err != nil {
		return nil, err
	}
	if swap {
		r1, r2 = r2, r1
	}
	return []isa.Inst{{Op: op, Rs1: r1, Rs2: r2, Imm: off}}, nil
}

func (a *assembler) expandJump(pd pending) ([]isa.Inst, error) {
	n, ops := pd.line, pd.operands
	rd := isa.Zero
	target := ""
	switch pd.mnemonic {
	case "j", "tail":
		if len(ops) != 1 {
			return nil, &SyntaxError{n, pd.mnemonic + " expects a target"}
		}
		target = ops[0]
	case "call":
		if len(ops) != 1 {
			return nil, &SyntaxError{n, "call expects a target"}
		}
		rd, target = isa.RA, ops[0]
	case "jal":
		switch len(ops) {
		case 1:
			rd, target = isa.RA, ops[0]
		case 2:
			r, err := a.reg(n, ops[0])
			if err != nil {
				return nil, err
			}
			rd, target = r, ops[1]
		default:
			return nil, &SyntaxError{n, "jal expects [rd,] target"}
		}
	}
	off, err := a.branchTarget(n, pd.addr, target)
	if err != nil {
		return nil, err
	}
	return []isa.Inst{{Op: isa.OpJAL, Rd: rd, Imm: off}}, nil
}

func (a *assembler) expandJALR(pd pending) ([]isa.Inst, error) {
	n, ops := pd.line, pd.operands
	switch len(ops) {
	case 1:
		if strings.Contains(ops[0], "(") {
			off, rs1, err := a.memOperand(n, ops[0])
			if err != nil {
				return nil, err
			}
			return []isa.Inst{{Op: isa.OpJALR, Rd: isa.RA, Rs1: rs1, Imm: off}}, nil
		}
		rs1, err := a.reg(n, ops[0])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpJALR, Rd: isa.RA, Rs1: rs1}}, nil
	case 2:
		rd, err := a.reg(n, ops[0])
		if err != nil {
			return nil, err
		}
		off, rs1, err := a.memOperand(n, ops[1])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpJALR, Rd: rd, Rs1: rs1, Imm: off}}, nil
	case 3:
		rd, err1 := a.reg(n, ops[0])
		rs1, err2 := a.reg(n, ops[1])
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		imm, err := a.eval(ops[2])
		if err != nil {
			return nil, &SyntaxError{n, err.Error()}
		}
		return []isa.Inst{{Op: isa.OpJALR, Rd: rd, Rs1: rs1, Imm: imm}}, nil
	}
	return nil, &SyntaxError{n, "jalr expects rd, off(rs1)"}
}
