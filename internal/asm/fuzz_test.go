package asm

import (
	"strings"
	"testing"
)

// FuzzAssemble asserts the assembler never panics on arbitrary source
// text, and that accepted programs decode cleanly.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"_start:\n\tnop\n",
		"_start:\n\tli a0, 42\n\tecall\n",
		".data\nx: .dword 1\n.text\n_start:\n\tla a0, x\n",
		"loop:\n\tbeqz a0, loop\n",
		".equ K, 5\n_start:\n\taddi a0, zero, K\n",
		"_start:\n\tadd a0, a1\n",   // wrong arity
		"_start:\n\tld a0, (sp\n",   // unbalanced paren
		"x: .zero 99999999999999\n", // absurd size
		"\x00\x01\x02",
		strings.Repeat("a:", 100),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return
		}
		if _, err := p.Instructions(); err != nil {
			t.Fatalf("assembled program does not decode: %v", err)
		}
	})
}

// FuzzEval asserts the expression evaluator never panics.
func FuzzEval(f *testing.F) {
	for _, s := range []string{"1+2", "-3", "sym", "'a'", "0x10+sym-2", "''", "+", "1++2"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, expr string) {
		a := &assembler{symbols: map[string]uint64{"sym": 7}}
		_, _ = a.eval(expr)
	})
}
