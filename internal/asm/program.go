// Package asm implements a two-pass assembler for the RV64IM subset
// defined in internal/isa, including the usual RISC-V pseudo-instructions
// and the MARK tracing extension. Case-study kernels throughout the
// repository are written in this assembly dialect, mirroring the paper's
// listings.
package asm

import (
	"encoding/binary"
	"fmt"
	"sort"

	"microsampler/internal/isa"
)

// Default memory layout of assembled programs.
const (
	DefaultTextBase = 0x0000_1000
	DefaultDataBase = 0x0004_0000
	DefaultStackTop = 0x0010_0000
)

// Program is an assembled binary image plus metadata.
type Program struct {
	TextBase uint64
	Text     []byte // encoded instructions
	DataBase uint64
	Data     []byte
	Entry    uint64            // initial PC (symbol _start, else TextBase)
	StackTop uint64            // initial SP
	Symbols  map[string]uint64 // label/equ values
}

// Symbol returns the value of a defined symbol.
func (p *Program) Symbol(name string) (uint64, bool) {
	v, ok := p.Symbols[name]
	return v, ok
}

// MustSymbol returns the value of a symbol that is known to exist; it is
// a convenience for test and harness code and panics on a missing name.
func (p *Program) MustSymbol(name string) uint64 {
	v, ok := p.Symbols[name]
	if !ok {
		panic(fmt.Sprintf("asm: undefined symbol %q", name))
	}
	return v
}

// Instructions decodes the text segment back into instruction form.
func (p *Program) Instructions() ([]isa.Inst, error) {
	out := make([]isa.Inst, 0, len(p.Text)/4)
	for off := 0; off+4 <= len(p.Text); off += 4 {
		word := binary.LittleEndian.Uint32(p.Text[off:])
		in, err := isa.Decode(word)
		if err != nil {
			return nil, fmt.Errorf("text+%#x: %w", off, err)
		}
		out = append(out, in)
	}
	return out, nil
}

// SymbolAt reports the name of the symbol covering the address, for
// diagnostics. It returns the closest preceding text symbol.
func (p *Program) SymbolAt(addr uint64) string {
	return p.symbolIn(addr, p.TextBase, p.TextBase+uint64(len(p.Text)))
}

// DataSymbolAt reports the closest preceding data symbol covering the
// address (e.g. a leaked load address resolved to its buffer).
func (p *Program) DataSymbolAt(addr uint64) string {
	return p.symbolIn(addr, p.DataBase, p.DataBase+uint64(len(p.Data)))
}

// AnySymbolAt resolves an address in either segment.
func (p *Program) AnySymbolAt(addr uint64) string {
	if addr >= p.DataBase && addr < p.DataBase+uint64(len(p.Data)) {
		return p.DataSymbolAt(addr)
	}
	return p.SymbolAt(addr)
}

func (p *Program) symbolIn(addr, lo, hi uint64) string {
	best := ""
	var bestAddr uint64
	names := make([]string, 0, len(p.Symbols))
	for n := range p.Symbols {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		v := p.Symbols[n]
		if v <= addr && v >= bestAddr && v >= lo && v < hi {
			best, bestAddr = n, v
		}
	}
	if best == "" {
		return fmt.Sprintf("%#x", addr)
	}
	if addr == bestAddr {
		return best
	}
	return fmt.Sprintf("%s+%#x", best, addr-bestAddr)
}
