// Package cache implements the content-addressed result cache of the
// verification pipeline. A verification is a pure function of (program
// bytes, machine configuration, seed range, detection-relevant options)
// — the calibration gate proves byte-identical output across runs — so
// hashing that tuple into a canonical SHA-256 key lets repeat
// submissions (CI re-runs, popular crypto kernels, the config-identical
// cells of a matrix re-sweep) be served in microseconds instead of a
// full simulation.
//
// The package deliberately knows nothing about reports or jobs: it
// provides the canonical key builder (Hasher), a bounded in-memory LRU
// of arbitrary values, an fsync'd content-addressed disk blob store,
// and a singleflight group for deduplicating identical in-flight work.
// The core and msd packages compose these into their own caching
// layers.
package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"sync"
)

// Hasher builds a canonical content-addressed key: a SHA-256 over a
// sequence of named, typed fields. Every field is written as
// length-prefixed (name, type tag, value) triples, so distinct field
// sequences can never collide by concatenation ("ab"+"c" vs "a"+"bc")
// and a value of one type can never alias a value of another.
//
// Canonicalisation is by construction: callers write fields in a fixed
// schema order with defaults already applied, so two requests that
// differ only in JSON field order or in spelling out a default produce
// the same key, while any change to a hashed field changes it.
type Hasher struct {
	h   hash.Hash
	buf [10]byte
}

// NewHasher returns an empty key builder.
func NewHasher() *Hasher {
	return &Hasher{h: sha256.New()}
}

func (k *Hasher) writeLen(n int) {
	m := binary.PutUvarint(k.buf[:], uint64(n))
	k.h.Write(k.buf[:m])
}

func (k *Hasher) field(name string, tag byte) {
	k.writeLen(len(name))
	k.h.Write([]byte(name))
	k.h.Write([]byte{tag})
}

// Str hashes a named string field.
func (k *Hasher) Str(name, v string) {
	k.field(name, 's')
	k.writeLen(len(v))
	k.h.Write([]byte(v))
}

// Bytes hashes a named byte-slice field (e.g. program bytes).
func (k *Hasher) Bytes(name string, v []byte) {
	k.field(name, 'b')
	k.writeLen(len(v))
	k.h.Write(v)
}

// Int hashes a named integer field.
func (k *Hasher) Int(name string, v int64) {
	k.field(name, 'i')
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	k.h.Write(b[:])
}

// Uint hashes a named unsigned integer field.
func (k *Hasher) Uint(name string, v uint64) {
	k.field(name, 'u')
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	k.h.Write(b[:])
}

// Bool hashes a named boolean field.
func (k *Hasher) Bool(name string, v bool) {
	k.field(name, 'f')
	if v {
		k.h.Write([]byte{1})
	} else {
		k.h.Write([]byte{0})
	}
}

// Sum returns the key: the lowercase-hex SHA-256 of every field written
// so far. The Hasher must not be reused after Sum.
func (k *Hasher) Sum() string {
	return hex.EncodeToString(k.h.Sum(nil))
}

// Stats is a point-in-time reading of a cache's effectiveness.
type Stats struct {
	Hits, Misses uint64
	Entries      int
}

// LRU is a bounded, goroutine-safe in-memory cache mapping canonical
// keys to arbitrary values, evicting least-recently-used entries beyond
// the capacity. Values are shared, not copied: callers must treat
// cached values as immutable (verification reports are read-only once
// built).
type LRU struct {
	mu      sync.Mutex
	max     int
	ll      *list.List
	items   map[string]*list.Element
	hits    uint64
	misses  uint64
	evicted uint64
}

type lruEntry struct {
	key   string
	value any
}

// NewLRU returns an empty cache holding at most max entries (values
// below 1 are clamped to 1).
func NewLRU(max int) *LRU {
	if max < 1 {
		max = 1
	}
	return &LRU{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the value cached under key, marking it most recently
// used.
func (c *LRU) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).value, true
}

// Put caches value under key, evicting the least recently used entry
// when the cache is full. Re-putting an existing key refreshes its
// value and recency.
func (c *LRU) Put(key string, value any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).value = value
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, value: value})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
		c.evicted++
	}
}

// Len returns the number of cached entries.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns the cache's hit/miss counters and current size.
func (c *LRU) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Entries: c.ll.Len()}
}
