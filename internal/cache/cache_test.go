package cache

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestHasherDeterministic(t *testing.T) {
	build := func() string {
		h := NewHasher()
		h.Str("workload", "ME-V1-MV")
		h.Bytes("source", []byte("mul t0, s2, s2"))
		h.Int("runs", 8)
		h.Uint("seed", 42)
		h.Bool("fastbypass", true)
		return h.Sum()
	}
	if a, b := build(), build(); a != b {
		t.Fatalf("same fields, different keys: %s vs %s", a, b)
	}
}

func TestHasherFieldSensitivity(t *testing.T) {
	base := func(mutate func(*Hasher)) string {
		h := NewHasher()
		h.Str("workload", "smoke")
		h.Int("runs", 4)
		h.Bool("flag", false)
		if mutate != nil {
			mutate(h)
		}
		return h.Sum()
	}
	ref := base(nil)
	for name, k := range map[string]string{
		"extra field": base(func(h *Hasher) { h.Int("warmup", 2) }),
		"changed int": func() string {
			h := NewHasher()
			h.Str("workload", "smoke")
			h.Int("runs", 5)
			h.Bool("flag", false)
			return h.Sum()
		}(),
		"changed bool": func() string {
			h := NewHasher()
			h.Str("workload", "smoke")
			h.Int("runs", 4)
			h.Bool("flag", true)
			return h.Sum()
		}(),
	} {
		if k == ref {
			t.Errorf("%s did not change the key", name)
		}
	}
}

// TestHasherNoConcatenationAliasing pins the length-prefixing: field
// boundaries must be unambiguous, so ("ab","c") never collides with
// ("a","bc"), and a value can never bleed into the next field's name.
func TestHasherNoConcatenationAliasing(t *testing.T) {
	a := NewHasher()
	a.Str("ab", "c")
	b := NewHasher()
	b.Str("a", "bc")
	if a.Sum() == b.Sum() {
		t.Fatal("field name/value boundary aliasing")
	}
	c := NewHasher()
	c.Str("x", "y")
	c.Str("z", "w")
	d := NewHasher()
	d.Str("x", "yz")
	d.Str("", "w")
	if c.Sum() == d.Sum() {
		t.Fatal("cross-field aliasing")
	}
	e := NewHasher()
	e.Str("n", "1")
	f := NewHasher()
	f.Bytes("n", []byte("1"))
	if e.Sum() == f.Sum() {
		t.Fatal("type tag aliasing: Str vs Bytes")
	}
}

func TestLRUBasics(t *testing.T) {
	c := NewLRU(2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	// "b" is now least recently used; inserting "c" must evict it.
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU entry not evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently used entry evicted")
	}
	st := c.Stats()
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want 2", st.Entries)
	}
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 2 hits / 2 misses", st)
	}
}

func TestLRURePutRefreshes(t *testing.T) {
	c := NewLRU(2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // refresh: "b" becomes LRU
	c.Put("c", 3)
	if v, ok := c.Get("a"); !ok || v.(int) != 10 {
		t.Fatalf("Get(a) = %v, %v; want refreshed 10", v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("stale LRU entry survived")
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := NewLRU(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%100)
				c.Put(key, i)
				c.Get(key)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("cache grew past capacity: %d", c.Len())
	}
}

func TestDiskRoundTrip(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := NewHasher().Sum() // hex of empty hash — a valid key shape
	if _, ok, err := d.Get(key); err != nil || ok {
		t.Fatalf("Get on empty store = ok=%v err=%v", ok, err)
	}
	blob := []byte("verdict bytes")
	if err := d.Put(key, blob); err != nil {
		t.Fatal(err)
	}
	got, ok, err := d.Get(key)
	if err != nil || !ok || string(got) != string(blob) {
		t.Fatalf("Get = %q, %v, %v", got, ok, err)
	}
	// No stray temp files left behind.
	var stray []string
	filepath.Walk(d.Dir(), func(p string, info os.FileInfo, _ error) error {
		if info != nil && !info.IsDir() && filepath.Ext(p) == ".tmp" {
			stray = append(stray, p)
		}
		return nil
	})
	if len(stray) > 0 {
		t.Fatalf("temp files left behind: %v", stray)
	}
}

func TestDiskRejectsUnsafeKeys(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "ab", "../../etc/passwd", "a/b", "..abcdef"} {
		if err := d.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted an unsafe key", key)
		}
	}
}

func TestGroupDedupesInFlight(t *testing.T) {
	var g Group
	var calls atomic.Int64
	gate := make(chan struct{})
	const n = 8
	results := make([]any, n)
	shareds := make([]bool, n)
	var wg sync.WaitGroup
	do := func(i int) {
		defer wg.Done()
		v, err, shared := g.Do("key", func() (any, error) {
			calls.Add(1)
			<-gate
			return "result", nil
		})
		if err != nil {
			t.Error(err)
		}
		results[i], shareds[i] = v, shared
	}
	// Start the leader alone and wait until it is inside fn (blocked on
	// the gate); only then launch the followers, so every follower joins
	// while the call is provably in flight.
	wg.Add(1)
	go do(0)
	for calls.Load() == 0 {
		runtime.Gosched()
	}
	for i := 1; i < n; i++ {
		wg.Add(1)
		go do(i)
	}
	time.Sleep(20 * time.Millisecond) // let followers enter Do
	close(gate)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	nShared := 0
	for i := range results {
		if results[i].(string) != "result" {
			t.Fatalf("result[%d] = %v", i, results[i])
		}
		if shareds[i] {
			nShared++
		}
	}
	if nShared != n-1 {
		t.Fatalf("shared count = %d, want %d", nShared, n-1)
	}
}

func TestGroupSequentialCallsRunFresh(t *testing.T) {
	var g Group
	var calls int
	for i := 0; i < 3; i++ {
		_, _, shared := g.Do("key", func() (any, error) {
			calls++
			return nil, nil
		})
		if shared {
			t.Fatalf("sequential call %d marked shared", i)
		}
	}
	if calls != 3 {
		t.Fatalf("fn ran %d times, want 3 (group must not cache at rest)", calls)
	}
}
