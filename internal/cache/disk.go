package cache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Disk is a content-addressed blob store: opaque byte values filed
// under their canonical key, written atomically (temp file, fsync,
// rename) so a reader — including one racing a crash — never observes
// a torn blob. It is the optional persistence layer under an LRU: the
// msd daemon colocates one with its journal so cached verdicts survive
// a restart.
type Disk struct {
	dir string
}

// NewDisk opens (creating as needed) a blob store rooted at dir.
func NewDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: disk dir: %w", err)
	}
	return &Disk{dir: dir}, nil
}

// Dir returns the store's root directory.
func (d *Disk) Dir() string { return d.dir }

// path shards blobs by the first key byte to keep directories shallow.
func (d *Disk) path(key string) (string, error) {
	if len(key) < 3 || strings.ContainsAny(key, "/\\.") {
		return "", fmt.Errorf("cache: unsafe key %q", key)
	}
	return filepath.Join(d.dir, key[:2], key+".bin"), nil
}

// Get returns the blob stored under key; ok is false when the key is
// absent. Errors are reserved for real I/O failures.
func (d *Disk) Get(key string) (data []byte, ok bool, err error) {
	p, err := d.path(key)
	if err != nil {
		return nil, false, err
	}
	data, err = os.ReadFile(p)
	switch {
	case err == nil:
		return data, true, nil
	case os.IsNotExist(err):
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("cache: read %s: %w", key, err)
	}
}

// Put stores the blob under key, fsync'd before rename so an
// acknowledged entry survives the process dying at any later instant.
func (d *Disk) Put(key string, data []byte) error {
	p, err := d.path(key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("cache: shard dir: %w", err)
	}
	tmp := p + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("cache: create %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("cache: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("cache: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cache: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, p); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cache: rename %s: %w", tmp, err)
	}
	return nil
}
