package cache

import "sync"

// Group deduplicates identical in-flight work: concurrent Do calls with
// the same key share one execution of fn, so N simultaneous identical
// submissions pay for a single simulation. Unlike a cache, a Group
// retains nothing once the call returns — it only collapses the
// in-flight window; pair it with an LRU for the at-rest window.
type Group struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

// Do executes fn under key, or — when an identical call is already in
// flight — waits for it and shares its result. shared reports whether
// this caller received another call's result rather than running fn
// itself. A panic in fn is not contained here; callers recover at their
// own boundary.
func (g *Group) Do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	defer func() {
		// Unregister before releasing waiters, so a post-completion Do
		// starts fresh work (the at-rest cache, not the Group, serves
		// finished results).
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = fn()
	return c.val, c.err, false
}
