package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"time"
)

// Wire shapes shared by the coordinator's HTTP surface and the worker
// agent.

// RegisterRequest is the POST /api/v1/cluster/register payload.
type RegisterRequest struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// HeartbeatRequest is the POST /api/v1/cluster/heartbeat payload.
type HeartbeatRequest struct {
	ID string `json:"id"`
}

// ExecuteRequest is the POST /api/v1/cluster/execute payload: the point
// plus the coordinator-computed canonical cache key, so every node of
// the cluster files the verdict under the same address.
type ExecuteRequest struct {
	Point Point  `json:"point"`
	Key   string `json:"key,omitempty"`
}

// Agent is the worker side of the cluster protocol: it registers the
// daemon with the coordinator and keeps the registration alive with
// periodic heartbeats, re-registering whenever the coordinator stops
// recognising it (coordinator restart, or this worker was reaped while
// partitioned).
type Agent struct {
	// Coordinator is the coordinator's base URL, Self the URL this
	// worker advertises for execute dispatches.
	Coordinator string
	Self        string
	// ID identifies the worker (default: Self).
	ID string
	// Interval is the heartbeat period (default 1s).
	Interval time.Duration
	Client   *http.Client
	Logger   *slog.Logger
}

// Run registers and heartbeats until ctx is cancelled. Failures are
// retried on the next tick — a worker partitioned from its coordinator
// keeps serving local requests and rejoins when the partition heals.
func (a *Agent) Run(ctx context.Context) {
	id := a.ID
	if id == "" {
		id = a.Self
	}
	interval := a.Interval
	if interval <= 0 {
		interval = time.Second
	}
	log := a.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}

	registered := false
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		if !registered {
			if err := a.post(ctx, "/api/v1/cluster/register", RegisterRequest{ID: id, URL: a.Self}); err != nil {
				log.Warn("cluster register failed", "coordinator", a.Coordinator, "err", err)
			} else {
				registered = true
				log.Info("registered with coordinator", "coordinator", a.Coordinator, "id", id)
			}
		} else if err := a.post(ctx, "/api/v1/cluster/heartbeat", HeartbeatRequest{ID: id}); err != nil {
			// An unknown-worker rejection or a transport failure both mean
			// the registration can no longer be trusted; re-register.
			registered = false
			log.Warn("cluster heartbeat failed, re-registering", "err", err)
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

func (a *Agent) post(ctx context.Context, path string, payload any) error {
	body, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	url := strings.TrimRight(a.Coordinator, "/") + path
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	client := a.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("cluster: %s: HTTP %d", path, resp.StatusCode)
	}
	return nil
}

// HTTPExecutor dispatches points to workers over the msd HTTP surface.
type HTTPExecutor struct {
	Client *http.Client
}

// Execute posts the point to the worker's execute endpoint. The
// response carries a terminal PointResult — possibly with a
// verdict-level Err — while transport failures and non-200 statuses
// come back as errors for the dispatcher's retry/reassignment logic.
func (e *HTTPExecutor) Execute(ctx context.Context, workerURL string, p Point, key string) (PointResult, error) {
	body, err := json.Marshal(ExecuteRequest{Point: p, Key: key})
	if err != nil {
		return PointResult{}, err
	}
	url := strings.TrimRight(workerURL, "/") + "/api/v1/cluster/execute"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return PointResult{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	client := e.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return PointResult{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return PointResult{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return PointResult{}, fmt.Errorf("cluster: execute on %s: HTTP %d: %s",
			workerURL, resp.StatusCode, bytes.TrimSpace(data))
	}
	var res PointResult
	if err := json.Unmarshal(data, &res); err != nil {
		return PointResult{}, fmt.Errorf("cluster: decode execute response: %w", err)
	}
	return res, nil
}
