package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"microsampler/internal/core"
	"microsampler/internal/faults"
)

// The chaos test (the robustness acceptance check for the cluster
// layer): a seeded faults.Injector kills, hangs, slows and flakes
// workers mid-batch, and the final verdicts must still be
// byte-identical to a fault-free single-node run. The verdict is a pure
// function of the point, so whatever path a point takes — reassignment
// after a worker death, a hedged duplicate, retry after a transient, or
// degradation to local execution — the answer may not change.

// chaosVerdict is the pure per-point verdict both the workers and the
// local fallback compute: deterministic in the key alone.
func chaosVerdict(key string) PointResult {
	var sum int
	for _, b := range []byte(key) {
		sum += int(b)
	}
	res := PointResult{
		Key:        key,
		Leaky:      sum%2 == 1,
		Iterations: 64 + sum%17,
		SimCycles:  int64(1000 + sum),
		Digest:     []byte(`{"workload":"chaos","key":"` + key + `"}`),
	}
	if res.Leaky {
		res.LeakyUnits = []string{"TAGE-PRED"}
	}
	return res
}

func TestChaosClusterMatchesSingleNode(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runChaosSeed(t, seed)
		})
	}
}

func runChaosSeed(t *testing.T, seed uint64) {
	const npoints = 24
	points := make([]Point, npoints)
	keys := make([]string, npoints)
	keyIdx := make(map[string]int, npoints)
	for i := range points {
		keys[i] = fmt.Sprintf("chaos-key-%02d", i)
		keyIdx[keys[i]] = i
	}

	// The single-node ground truth: what a fault-free local run answers.
	expected := make([][]byte, npoints)
	for i, key := range keys {
		data, err := json.Marshal(chaosVerdict(key).Verdict())
		if err != nil {
			t.Fatal(err)
		}
		expected[i] = data
	}

	// Three workers; faults are drawn per (point, attempt) from the
	// seeded injector, so a failing seed replays identically.
	workers := map[string]string{
		"http://w1": "w1",
		"http://w2": "w2",
		"http://w3": "w3",
	}
	m := NewMembership(time.Hour)
	for url, id := range workers {
		m.Register(id, url)
	}
	inj := faults.New(seed, faults.Config{
		PTransient: 0.15, // transport flake: retried with backoff
		PPermanent: 0.10, // worker crash: killed mid-batch, later revived
		PHang:      0.10, // stuck worker: shard timeout, then retry
		PSlow:      0.15, // straggler: exercises hedged duplicates
	})

	var attempts [npoints]atomic.Int64
	var mu sync.Mutex // guards MarkDead/Register pairing against the revive timers
	exec := execFunc(func(ctx context.Context, url string, _ Point, key string) (PointResult, error) {
		idx := keyIdx[key]
		attempt := int(attempts[idx].Add(1)) - 1
		switch plan := inj.Plan(idx, attempt); plan.Kind {
		case faults.KindTransient:
			return PointResult{}, fmt.Errorf("chaos: injected transient (point %d attempt %d)", idx, attempt)
		case faults.KindPermanent:
			// Model a worker SIGKILL mid-batch: the worker drops off the
			// membership (its in-flight attempts turn into ErrWorkerLost and
			// reassign) and rejoins shortly after, as a restarted worker's
			// agent would.
			id := workers[url]
			mu.Lock()
			m.MarkDead(id)
			mu.Unlock()
			time.AfterFunc(10*time.Millisecond, func() {
				mu.Lock()
				m.Register(id, url)
				mu.Unlock()
			})
			return PointResult{}, fmt.Errorf("chaos: worker %s killed (point %d attempt %d)", id, idx, attempt)
		case faults.KindHang:
			<-ctx.Done()
			return PointResult{}, ctx.Err()
		case faults.KindSlow:
			select {
			case <-time.After(8 * time.Millisecond):
			case <-ctx.Done():
				return PointResult{}, ctx.Err()
			}
		}
		return chaosVerdict(key), nil
	})

	d := &Dispatcher{
		Members:      m,
		Exec:         exec,
		Local:        func(_ context.Context, _ Point, key string) PointResult { return chaosVerdict(key) },
		Retry:        core.RetryPolicy{Max: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond},
		ShardTimeout: 30 * time.Millisecond, // converts hangs into retryable timeouts fast
		HedgeAfter:   10 * time.Millisecond,
		EWMA:         &LatencyEWMA{},
		DeathPoll:    2 * time.Millisecond,
	}

	results := make([]PointResult, npoints)
	var rmu sync.Mutex
	stats := d.Run(context.Background(), points, keys, func(idx int, res PointResult) {
		rmu.Lock()
		results[idx] = res
		rmu.Unlock()
	})

	if stats.Points != npoints || stats.Failed != 0 {
		t.Fatalf("stats = %+v, want %d points and no failures", stats, npoints)
	}
	for i, res := range results {
		got, err := json.Marshal(res.Verdict())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, expected[i]) {
			t.Errorf("point %d verdict diverged under chaos:\n got  %s\n want %s", i, got, expected[i])
		}
	}
	t.Logf("seed %d: reassigned=%d hedged=%d degraded=%d",
		seed, stats.Reassigned, stats.Hedged, stats.Degraded)
}
