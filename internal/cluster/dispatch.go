package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"microsampler/internal/core"
)

// ErrWorkerLost classifies a dispatch attempt aborted because the
// worker's heartbeat expired mid-flight. Lost attempts are reassigned
// immediately and do not consume the retry budget — the worker died,
// the point did not fail.
var ErrWorkerLost = errors.New("cluster: worker lost")

// Executor runs one point on one worker. Transport-level failures
// (connection refused, timeout, non-200) are returned as errors and
// drive retry/reassignment; a verdict-level failure travels inside
// PointResult.Err and is terminal.
type Executor interface {
	Execute(ctx context.Context, workerURL string, p Point, key string) (PointResult, error)
}

// LatencyEWMA tracks typical successful dispatch latency; the hedging
// threshold is a multiple of it. One instance is shared across batches
// so the estimate survives batch boundaries.
type LatencyEWMA struct {
	mu  sync.Mutex
	sec float64
}

// Observe folds one successful dispatch duration into the average.
func (e *LatencyEWMA) Observe(d time.Duration) {
	const alpha = 0.3 // favour recent dispatches without whiplash
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.sec == 0 {
		e.sec = d.Seconds()
		return
	}
	e.sec = alpha*d.Seconds() + (1-alpha)*e.sec
}

// Value returns the current average.
func (e *LatencyEWMA) Value() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return time.Duration(e.sec * float64(time.Second))
}

// hedgeEWMAFactor scales the latency EWMA into the straggler
// threshold: a dispatch outliving 3× the typical latency earns a
// hedged duplicate.
const hedgeEWMAFactor = 3

// Stats summarises one Dispatcher.Run.
type Stats struct {
	// Points is the number of result slots delivered, Unique the number
	// of distinct cache keys actually dispatched (coalescing folds
	// duplicates onto one execution).
	Points, Unique int
	// Reassigned counts points moved to a different worker after a
	// failure or death; Hedged counts duplicate straggler dispatches;
	// Degraded counts points that fell back to local execution.
	Reassigned, Hedged, Degraded int
	// Failed counts points whose terminal result carries an error.
	Failed int
}

// Dispatcher shards points across the healthy worker set and drives
// them to terminal results. Zero-value fields default sanely; only
// Members, Exec and Local are required.
type Dispatcher struct {
	Members *Membership
	Exec    Executor
	// Local executes a point in-process — the degraded path when no
	// worker is healthy or the retry budget is exhausted. It must not be
	// nil and reports failures inside PointResult.Err, never by panic.
	Local func(ctx context.Context, p Point, key string) PointResult

	// Retry bounds remote attempts per point beyond the first, with
	// full-jitter exponential backoff between them (the core.RetryPolicy
	// shape; zero value defaults to 3 retries, 100ms base, 2s cap).
	Retry core.RetryPolicy
	// ShardTimeout bounds one dispatch attempt (default 2m).
	ShardTimeout time.Duration
	// HedgeAfter is the floor of the straggler threshold: an attempt
	// outliving max(HedgeAfter, 3×latency-EWMA) gets a duplicate
	// dispatch on the next-ranked worker, first result wins. Zero
	// disables hedging.
	HedgeAfter time.Duration
	// EWMA is the shared latency estimate feeding the hedge threshold
	// (nil: hedging uses HedgeAfter alone).
	EWMA *LatencyEWMA
	// DeathPoll is how often an in-flight attempt checks its worker's
	// liveness (default 25ms).
	DeathPoll time.Duration
	// Parallel bounds concurrently in-flight points (default 8).
	Parallel int

	Logger *slog.Logger

	// Event hooks, invoked synchronously from dispatch goroutines; nil
	// hooks are skipped. msd wires them to telemetry counters.
	OnReassign func(key, from, to string)
	OnHedge    func(key, primary, hedge string)
	OnDegrade  func(key string)

	reassigned, hedged, degraded atomic.Int64
}

// Run drives every point to a terminal result. keys is parallel to
// points (the caller computes canonical cache keys once); onResult is
// invoked exactly once per index, from dispatch goroutines, in
// completion order. Points sharing a key are coalesced onto one
// execution and each index still receives its own onResult call.
// Run blocks until every point is terminal; a cancelled ctx drains
// quickly by failing the remaining points with the context error.
func (d *Dispatcher) Run(ctx context.Context, points []Point, keys []string, onResult func(idx int, res PointResult)) Stats {
	if len(points) != len(keys) {
		panic("cluster: Dispatcher.Run: len(points) != len(keys)")
	}
	d.reassigned.Store(0)
	d.hedged.Store(0)
	d.degraded.Store(0)

	// Coalesce by key, preserving first-appearance order.
	type task struct {
		key     string
		point   Point
		indices []int
	}
	byKey := make(map[string]int, len(points))
	var tasks []task
	for i, k := range keys {
		if ti, ok := byKey[k]; ok {
			tasks[ti].indices = append(tasks[ti].indices, i)
			continue
		}
		byKey[k] = len(tasks)
		tasks = append(tasks, task{key: k, point: points[i], indices: []int{i}})
	}

	parallel := d.Parallel
	if parallel <= 0 {
		parallel = 8
	}
	sem := make(chan struct{}, parallel)
	var failed atomic.Int64
	var wg sync.WaitGroup
	for _, t := range tasks {
		wg.Add(1)
		go func(t task) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res := d.runPoint(ctx, t.key, t.point)
			if res.Err != "" {
				failed.Add(int64(len(t.indices)))
			}
			for _, idx := range t.indices {
				onResult(idx, res)
			}
		}(t)
	}
	wg.Wait()

	return Stats{
		Points:     len(points),
		Unique:     len(tasks),
		Reassigned: int(d.reassigned.Load()),
		Hedged:     int(d.hedged.Load()),
		Degraded:   int(d.degraded.Load()),
		Failed:     int(failed.Load()),
	}
}

// retry returns the retry policy with the dispatcher's defaults
// applied.
func (d *Dispatcher) retry() core.RetryPolicy {
	p := d.Retry
	if p.Max <= 0 {
		p.Max = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.MaxDelay < p.BaseDelay {
		p.MaxDelay = p.BaseDelay
	}
	return p
}

// backoff sleeps the full-jitter delay before retry n (0-based),
// honouring ctx: uniform from [0, min(MaxDelay, BaseDelay·2ⁿ)] — the
// core.RetryPolicy shape.
func backoff(ctx context.Context, p core.RetryPolicy, n int) {
	window := p.BaseDelay
	for i := 0; i < n && window < p.MaxDelay; i++ {
		window *= 2
	}
	if window > p.MaxDelay {
		window = p.MaxDelay
	}
	if window <= 0 {
		return
	}
	t := time.NewTimer(time.Duration(rand.Int64N(int64(window))))
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// runPoint drives one unique point to a terminal result: rendezvous
// pick, hedged attempt, and on failure either a backoff retry (worker
// still healthy — transport flake) or an immediate reassignment
// (worker died). Exhausting the retry budget, like an empty healthy
// set, degrades to local execution rather than failing the point.
func (d *Dispatcher) runPoint(ctx context.Context, key string, p Point) PointResult {
	policy := d.retry()
	tried := make(map[string]bool)
	failures := 0
	last := ""
	for {
		if err := ctx.Err(); err != nil {
			return PointResult{Key: key, Err: fmt.Sprintf("dispatch cancelled: %v", err)}
		}
		worker, ok := d.pick(key, tried)
		if !ok {
			return d.degrade(ctx, key, p, "no healthy workers")
		}
		if last != "" && worker.ID != last {
			d.reassigned.Add(1)
			if d.OnReassign != nil {
				d.OnReassign(key, last, worker.ID)
			}
			d.logf("point reassigned", "key", short(key), "from", last, "to", worker.ID)
		}
		last = worker.ID

		res, err := d.attempt(ctx, key, p, worker)
		if err == nil {
			return res
		}
		tried[worker.ID] = true
		if errors.Is(err, ErrWorkerLost) {
			// The worker died under the attempt: reassign immediately,
			// without charging the retry budget or backing off — the
			// point did nothing wrong.
			d.logf("worker lost mid-dispatch", "key", short(key), "worker", worker.ID)
			continue
		}
		failures++
		if failures > policy.Max {
			return d.degrade(ctx, key, p, fmt.Sprintf("retries exhausted: %v", err))
		}
		d.logf("dispatch attempt failed", "key", short(key), "worker", worker.ID,
			"attempt", failures, "err", err)
		backoff(ctx, policy, failures-1)
	}
}

// pick returns the highest-ranked healthy worker for key, skipping
// workers that already failed this point. When every healthy worker
// has been tried, the tried set resets — a still-healthy worker that
// returned a transport flake deserves another attempt (bounded by the
// retry budget).
func (d *Dispatcher) pick(key string, tried map[string]bool) (WorkerInfo, bool) {
	healthy := d.Members.Healthy()
	if len(healthy) == 0 {
		return WorkerInfo{}, false
	}
	byID := make(map[string]WorkerInfo, len(healthy))
	ids := make([]string, 0, len(healthy))
	fresh := 0
	for _, w := range healthy {
		byID[w.ID] = w
		ids = append(ids, w.ID)
		if !tried[w.ID] {
			fresh++
		}
	}
	if fresh == 0 {
		clear(tried)
	}
	for _, id := range Rank(key, ids) {
		if !tried[id] {
			return byID[id], true
		}
	}
	return WorkerInfo{}, false
}

// pickHedge returns the best healthy worker other than primary.
func (d *Dispatcher) pickHedge(key, primary string) (WorkerInfo, bool) {
	healthy := d.Members.Healthy()
	byID := make(map[string]WorkerInfo, len(healthy))
	ids := make([]string, 0, len(healthy))
	for _, w := range healthy {
		byID[w.ID] = w
		ids = append(ids, w.ID)
	}
	for _, id := range Rank(key, ids) {
		if id != primary {
			return byID[id], true
		}
	}
	return WorkerInfo{}, false
}

// hedgeDelay is the straggler threshold for this attempt: the EWMA
// multiple, floored by HedgeAfter. Zero disables hedging.
func (d *Dispatcher) hedgeDelay() time.Duration {
	if d.HedgeAfter <= 0 {
		return 0
	}
	delay := d.HedgeAfter
	if d.EWMA != nil {
		if byEWMA := hedgeEWMAFactor * d.EWMA.Value(); byEWMA > delay {
			delay = byEWMA
		}
	}
	return delay
}

// attempt runs one hedgeable dispatch of a point: the primary worker
// immediately, a duplicate on the next-ranked worker once the straggler
// threshold passes, first successful result wins. Each leg is bounded
// by ShardTimeout and watched against membership — a leg whose worker's
// heartbeat expires is cancelled and reported as ErrWorkerLost.
func (d *Dispatcher) attempt(ctx context.Context, key string, p Point, primary WorkerInfo) (PointResult, error) {
	timeout := d.ShardTimeout
	if timeout <= 0 {
		timeout = 2 * time.Minute
	}
	actx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	type outcome struct {
		res  PointResult
		err  error
		id   string
		lost bool
	}
	ch := make(chan outcome, 2) // buffered: a losing leg must never block
	started := time.Now()
	launch := func(w WorkerInfo) {
		go func() {
			wctx, wcancel := context.WithCancel(actx)
			defer wcancel()
			lost := make(chan struct{})
			go d.watchWorker(wctx, w.ID, wcancel, lost)
			res, err := d.Exec.Execute(wctx, w.URL, p, key)
			wasLost := false
			if err != nil {
				select {
				case <-lost:
					wasLost = true
					err = fmt.Errorf("%w: %s", ErrWorkerLost, w.ID)
				default:
				}
			}
			ch <- outcome{res: res, err: err, id: w.ID, lost: wasLost}
		}()
	}

	launch(primary)
	inflight := 1
	var hedgeC <-chan time.Time
	if delay := d.hedgeDelay(); delay > 0 {
		t := time.NewTimer(delay)
		defer t.Stop()
		hedgeC = t.C
	}

	var firstErr error
	for {
		select {
		case o := <-ch:
			inflight--
			if o.err == nil {
				if d.EWMA != nil {
					d.EWMA.Observe(time.Since(started))
				}
				o.res.Worker = o.id
				return o.res, nil
			}
			// Prefer surfacing a lost worker over a transport error: loss
			// must not consume the retry budget.
			if firstErr == nil || o.lost {
				firstErr = o.err
			}
			if inflight == 0 {
				return PointResult{}, firstErr
			}
		case <-hedgeC:
			hedgeC = nil
			if hedge, ok := d.pickHedge(key, primary.ID); ok {
				d.hedged.Add(1)
				if d.OnHedge != nil {
					d.OnHedge(key, primary.ID, hedge.ID)
				}
				d.logf("straggler hedged", "key", short(key),
					"primary", primary.ID, "hedge", hedge.ID)
				launch(hedge)
				inflight++
			}
		}
	}
}

// watchWorker cancels an in-flight attempt the moment its worker's
// heartbeat expires, closing lost first so the attempt can classify the
// cancellation as a death rather than a flake.
func (d *Dispatcher) watchWorker(ctx context.Context, id string, cancel context.CancelFunc, lost chan<- struct{}) {
	poll := d.DeathPoll
	if poll <= 0 {
		poll = 25 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if !d.Members.Alive(id) {
				close(lost)
				cancel()
				return
			}
		}
	}
}

// degrade executes a point locally — the graceful-degradation path —
// and flags the result.
func (d *Dispatcher) degrade(ctx context.Context, key string, p Point, why string) PointResult {
	d.degraded.Add(1)
	if d.OnDegrade != nil {
		d.OnDegrade(key)
	}
	d.logf("point degraded to local execution", "key", short(key), "why", why)
	res := d.Local(ctx, p, key)
	res.Degraded = true
	res.Worker = ""
	return res
}

func (d *Dispatcher) logf(msg string, args ...any) {
	if d.Logger != nil {
		d.Logger.Info(msg, args...)
	}
}

func short(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}
