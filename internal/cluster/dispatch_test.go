package cluster

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"microsampler/internal/core"
)

// execFunc adapts a closure to the Executor interface for dispatcher
// tests.
type execFunc func(ctx context.Context, workerURL string, p Point, key string) (PointResult, error)

func (f execFunc) Execute(ctx context.Context, workerURL string, p Point, key string) (PointResult, error) {
	return f(ctx, workerURL, p, key)
}

// testMembers registers the given workers under a TTL long enough that
// only explicit MarkDead calls kill them.
func testMembers(ids ...string) *Membership {
	m := NewMembership(time.Hour)
	for _, id := range ids {
		m.Register(id, "http://"+id)
	}
	return m
}

func okResult(key string) PointResult {
	return PointResult{Key: key, Leaky: true, LeakyUnits: []string{"TAGE-PRED"}}
}

// localFail is a Local fallback for tests that must never degrade.
func localFail(t *testing.T) func(context.Context, Point, string) PointResult {
	return func(_ context.Context, _ Point, key string) PointResult {
		t.Errorf("point %s unexpectedly degraded to local execution", key)
		return PointResult{Key: key, Err: "unexpected degrade"}
	}
}

func collectResults(n int) ([]PointResult, func(int, PointResult)) {
	results := make([]PointResult, n)
	var mu sync.Mutex
	return results, func(idx int, res PointResult) {
		mu.Lock()
		results[idx] = res
		mu.Unlock()
	}
}

// TestDispatchCoalescesByKey: points sharing a cache key fold onto one
// execution — the exactly-once-per-verdict guarantee — and every index
// still receives its result.
func TestDispatchCoalescesByKey(t *testing.T) {
	keys := []string{"key-a", "key-b", "key-a", "key-a", "key-b", "key-c"}
	points := make([]Point, len(keys))

	var mu sync.Mutex
	execs := map[string]int{}
	d := &Dispatcher{
		Members: testMembers("w1", "w2"),
		Exec: execFunc(func(_ context.Context, _ string, _ Point, key string) (PointResult, error) {
			mu.Lock()
			execs[key]++
			mu.Unlock()
			return okResult(key), nil
		}),
		Local: localFail(t),
	}
	results, onResult := collectResults(len(keys))
	stats := d.Run(context.Background(), points, keys, onResult)

	if stats.Points != 6 || stats.Unique != 3 || stats.Failed != 0 {
		t.Fatalf("stats = %+v, want 6 points / 3 unique / 0 failed", stats)
	}
	for key, n := range execs {
		if n != 1 {
			t.Errorf("key %s executed %d times, want 1", key, n)
		}
	}
	for i, res := range results {
		if res.Key != keys[i] {
			t.Errorf("result %d carries key %q, want %q", i, res.Key, keys[i])
		}
	}
}

// TestDispatchReassignsOnWorkerDeath: an attempt whose worker dies
// mid-flight moves to the next-ranked worker without consuming the
// retry budget or degrading.
func TestDispatchReassignsOnWorkerDeath(t *testing.T) {
	m := testMembers("w1", "w2")
	firstURL := make(chan string, 1)
	var calls atomic.Int64
	d := &Dispatcher{
		Members: m,
		Exec: execFunc(func(ctx context.Context, url string, _ Point, key string) (PointResult, error) {
			if calls.Add(1) == 1 {
				// First attempt: report who we are, then hang until the
				// death watch cancels us.
				firstURL <- url
				<-ctx.Done()
				return PointResult{}, ctx.Err()
			}
			return okResult(key), nil
		}),
		Local: localFail(t),
		// No remote retries budgeted: only the lost-worker path (which is
		// free) can produce the second attempt.
		Retry:     core.RetryPolicy{Max: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond},
		DeathPoll: 2 * time.Millisecond,
	}
	var reassigns atomic.Int64
	d.OnReassign = func(key, from, to string) { reassigns.Add(1) }

	// Kill whichever worker won the rendezvous, once its attempt is
	// in flight.
	go func() {
		url := <-firstURL
		m.MarkDead(strings.TrimPrefix(url, "http://"))
	}()

	results, onResult := collectResults(1)
	stats := d.Run(context.Background(), []Point{{}}, []string{"key-x"}, onResult)

	if stats.Reassigned != 1 || stats.Degraded != 0 || stats.Failed != 0 {
		t.Fatalf("stats = %+v, want exactly one reassignment", stats)
	}
	if reassigns.Load() != 1 {
		t.Errorf("OnReassign fired %d times, want 1", reassigns.Load())
	}
	res := results[0]
	if res.Err != "" || res.Degraded || res.Worker == "" {
		t.Fatalf("result = %+v, want a healthy remote verdict", res)
	}
}

// TestDispatchDegradesWhenRetriesExhaust: persistent transport failures
// consume the full-jitter retry budget and then fall back to local
// execution with the Degraded flag, instead of failing the point.
func TestDispatchDegradesWhenRetriesExhaust(t *testing.T) {
	var attempts atomic.Int64
	var degrades atomic.Int64
	d := &Dispatcher{
		Members: testMembers("w1"),
		Exec: execFunc(func(_ context.Context, _ string, _ Point, _ string) (PointResult, error) {
			attempts.Add(1)
			return PointResult{}, fmt.Errorf("connection refused")
		}),
		Local: func(_ context.Context, _ Point, key string) PointResult {
			return okResult(key)
		},
		Retry: core.RetryPolicy{Max: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	}
	d.OnDegrade = func(string) { degrades.Add(1) }

	results, onResult := collectResults(1)
	stats := d.Run(context.Background(), []Point{{}}, []string{"key-x"}, onResult)

	if got := attempts.Load(); got != 3 { // first + Max retries
		t.Errorf("remote attempts = %d, want 3", got)
	}
	if stats.Degraded != 1 || degrades.Load() != 1 {
		t.Errorf("stats = %+v (OnDegrade %d), want one degrade", stats, degrades.Load())
	}
	res := results[0]
	if !res.Degraded || res.Worker != "" || res.Err != "" {
		t.Fatalf("result = %+v, want a degraded local verdict", res)
	}
}

// TestDispatchDegradesWithNoWorkers: an empty healthy set goes straight
// to local execution — the zero-workers graceful-degradation path.
func TestDispatchDegradesWithNoWorkers(t *testing.T) {
	d := &Dispatcher{
		Members: NewMembership(time.Hour),
		Exec: execFunc(func(_ context.Context, _ string, _ Point, _ string) (PointResult, error) {
			t.Error("executor called with no healthy workers")
			return PointResult{}, fmt.Errorf("unreachable")
		}),
		Local: func(_ context.Context, _ Point, key string) PointResult {
			return okResult(key)
		},
	}
	results, onResult := collectResults(2)
	stats := d.Run(context.Background(), make([]Point, 2), []string{"key-a", "key-b"}, onResult)
	if stats.Degraded != 2 || stats.Failed != 0 {
		t.Fatalf("stats = %+v, want both points degraded", stats)
	}
	for i, res := range results {
		if !res.Degraded || res.Err != "" {
			t.Errorf("result %d = %+v, want degraded success", i, res)
		}
	}
}

// TestDispatchHedgesStragglers: an attempt outliving the hedge
// threshold gets a duplicate on the next-ranked worker, and the first
// result wins.
func TestDispatchHedgesStragglers(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	var calls atomic.Int64
	d := &Dispatcher{
		Members: testMembers("w1", "w2"),
		Exec: execFunc(func(ctx context.Context, url string, _ Point, key string) (PointResult, error) {
			if calls.Add(1) == 1 {
				// The primary straggles until the test ends.
				select {
				case <-release:
				case <-ctx.Done():
				}
				return PointResult{}, fmt.Errorf("straggler cancelled")
			}
			res := okResult(key)
			res.Worker = "set-by-dispatcher" // overwritten with the real ID
			return res, nil
		}),
		Local:      localFail(t),
		HedgeAfter: 5 * time.Millisecond,
	}
	var hedges atomic.Int64
	d.OnHedge = func(key, primary, hedge string) {
		if primary == hedge {
			t.Errorf("hedged onto the primary worker %s", primary)
		}
		hedges.Add(1)
	}

	results, onResult := collectResults(1)
	stats := d.Run(context.Background(), []Point{{}}, []string{"key-x"}, onResult)

	if stats.Hedged != 1 || hedges.Load() != 1 {
		t.Fatalf("stats = %+v (OnHedge %d), want one hedge", stats, hedges.Load())
	}
	res := results[0]
	if res.Err != "" || res.Worker == "" || res.Worker == "set-by-dispatcher" {
		t.Fatalf("result = %+v, want the hedge's verdict with its worker ID", res)
	}
}

// TestDispatchCancelledContext: a cancelled run fails the remaining
// points quickly instead of dispatching them.
func TestDispatchCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d := &Dispatcher{
		Members: testMembers("w1"),
		Exec: execFunc(func(_ context.Context, _ string, _ Point, key string) (PointResult, error) {
			return okResult(key), nil
		}),
		Local: func(_ context.Context, _ Point, key string) PointResult {
			return okResult(key)
		},
	}
	results, onResult := collectResults(1)
	stats := d.Run(ctx, []Point{{}}, []string{"key-x"}, onResult)
	if stats.Failed != 1 {
		t.Fatalf("stats = %+v, want the point failed", stats)
	}
	if !strings.Contains(results[0].Err, "dispatch cancelled") {
		t.Fatalf("result error = %q, want a dispatch-cancelled failure", results[0].Err)
	}
}

// TestLatencyEWMAFeedsHedgeThreshold: the straggler threshold is the
// max of the configured floor and 3× the observed latency average.
func TestLatencyEWMAFeedsHedgeThreshold(t *testing.T) {
	ewma := &LatencyEWMA{}
	ewma.Observe(100 * time.Millisecond)
	d := &Dispatcher{HedgeAfter: 50 * time.Millisecond, EWMA: ewma}
	if got := d.hedgeDelay(); got != 300*time.Millisecond {
		t.Errorf("hedgeDelay = %v, want 300ms (3× EWMA)", got)
	}
	d.HedgeAfter = time.Second
	if got := d.hedgeDelay(); got != time.Second {
		t.Errorf("hedgeDelay = %v, want the 1s floor", got)
	}
	d.HedgeAfter = 0
	if got := d.hedgeDelay(); got != 0 {
		t.Errorf("hedgeDelay = %v, want hedging disabled", got)
	}
}
