package cluster

import (
	"sync"
	"time"
)

// defaultWorkerTTL is how stale a worker's heartbeat may be before the
// coordinator treats it as dead when no TTL is configured.
const defaultWorkerTTL = 5 * time.Second

// reapAfterTTLs is how many TTLs a dead worker's entry lingers before
// it is dropped entirely; long enough that its heartbeat age stays
// visible on /metrics across a few scrapes, short enough that the
// table (and the max-age gauge) is not pinned forever by one crash. A
// reaped worker that comes back simply re-registers — its agent
// re-registers on the first heartbeat the coordinator rejects.
const reapAfterTTLs = 20

// WorkerInfo is one worker's membership snapshot.
type WorkerInfo struct {
	ID  string `json:"id"`
	URL string `json:"url"`
	// HeartbeatAge is how long ago the last heartbeat (or registration)
	// arrived.
	HeartbeatAge time.Duration `json:"-"`
	// HeartbeatAgeSeconds is HeartbeatAge on the wire.
	HeartbeatAgeSeconds float64 `json:"heartbeatAgeSeconds"`
	Healthy             bool    `json:"healthy"`
}

type member struct {
	id, url  string
	lastBeat time.Time
}

// Membership is the coordinator's failure detector: the registered
// worker set with heartbeat timestamps. A worker whose last heartbeat
// is older than the TTL is dead — excluded from Healthy and therefore
// from dispatch — until it re-registers or beats again.
type Membership struct {
	ttl time.Duration
	now func() time.Time // injectable clock for tests

	mu      sync.Mutex
	members map[string]*member
}

// NewMembership builds a worker table with the given heartbeat TTL
// (<= 0 selects the default).
func NewMembership(ttl time.Duration) *Membership {
	if ttl <= 0 {
		ttl = defaultWorkerTTL
	}
	return &Membership{ttl: ttl, now: time.Now, members: make(map[string]*member)}
}

// TTL returns the configured heartbeat TTL.
func (m *Membership) TTL() time.Duration { return m.ttl }

// Register adds (or revives) a worker and counts as a heartbeat.
func (m *Membership) Register(id, url string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.members[id] = &member{id: id, url: url, lastBeat: m.now()}
}

// Heartbeat refreshes a worker's liveness; false means the worker is
// unknown (never registered, or reaped after dying) and must
// re-register.
func (m *Membership) Heartbeat(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	w, ok := m.members[id]
	if !ok {
		return false
	}
	w.lastBeat = m.now()
	return true
}

// MarkDead forces a worker unhealthy immediately — ahead of its TTL —
// by backdating its heartbeat. The entry survives until reaped, so a
// re-register or a fresh heartbeat revives it.
func (m *Membership) MarkDead(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if w, ok := m.members[id]; ok {
		w.lastBeat = m.now().Add(-m.ttl - time.Nanosecond)
	}
}

// Alive reports whether a worker is registered with a fresh heartbeat.
func (m *Membership) Alive(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	w, ok := m.members[id]
	return ok && m.now().Sub(w.lastBeat) <= m.ttl
}

// Healthy returns the live worker set, sorted by ID for deterministic
// iteration. Long-dead entries are reaped as a side effect.
func (m *Membership) Healthy() []WorkerInfo {
	return m.snapshot(true)
}

// Snapshot returns every registered worker — healthy or not — sorted
// by ID; the /api/v1/cluster/workers view.
func (m *Membership) Snapshot() []WorkerInfo {
	return m.snapshot(false)
}

func (m *Membership) snapshot(healthyOnly bool) []WorkerInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	out := make([]WorkerInfo, 0, len(m.members))
	for id, w := range m.members {
		age := now.Sub(w.lastBeat)
		if age > time.Duration(reapAfterTTLs)*m.ttl {
			delete(m.members, id)
			continue
		}
		healthy := age <= m.ttl
		if healthyOnly && !healthy {
			continue
		}
		out = append(out, WorkerInfo{
			ID: w.id, URL: w.url,
			HeartbeatAge:        age,
			HeartbeatAgeSeconds: age.Seconds(),
			Healthy:             healthy,
		})
	}
	sortWorkers(out)
	return out
}

// MaxHeartbeatAge is the staleness of the most-stale registered worker
// (zero with no workers) — the msd_worker_heartbeat_age_seconds gauge.
func (m *Membership) MaxHeartbeatAge() time.Duration {
	var max time.Duration
	for _, w := range m.snapshot(false) {
		if w.HeartbeatAge > max {
			max = w.HeartbeatAge
		}
	}
	return max
}

func sortWorkers(ws []WorkerInfo) {
	for i := 1; i < len(ws); i++ {
		for k := i; k > 0 && ws[k].ID < ws[k-1].ID; k-- {
			ws[k], ws[k-1] = ws[k-1], ws[k]
		}
	}
}
