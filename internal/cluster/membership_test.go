package cluster

import (
	"testing"
	"time"
)

// clockedMembership returns a membership whose clock the test advances
// by hand, so TTL expiry is exact instead of sleep-based.
func clockedMembership(ttl time.Duration) (*Membership, func(d time.Duration)) {
	m := NewMembership(ttl)
	cur := time.Unix(1000, 0)
	m.now = func() time.Time { return cur }
	return m, func(d time.Duration) { cur = cur.Add(d) }
}

func TestMembershipLifecycle(t *testing.T) {
	m, advance := clockedMembership(time.Second)

	if m.Heartbeat("w1") {
		t.Fatal("heartbeat for an unregistered worker must be rejected")
	}
	m.Register("w1", "http://w1")
	if !m.Alive("w1") {
		t.Fatal("freshly registered worker not alive")
	}
	if h := m.Healthy(); len(h) != 1 || h[0].ID != "w1" || !h[0].Healthy {
		t.Fatalf("Healthy = %+v, want [w1]", h)
	}

	// Past the TTL the worker is dead: gone from Healthy, still visible
	// (unhealthy) in the full snapshot.
	advance(1500 * time.Millisecond)
	if m.Alive("w1") {
		t.Fatal("worker alive past its TTL")
	}
	if h := m.Healthy(); len(h) != 0 {
		t.Fatalf("Healthy past TTL = %+v, want empty", h)
	}
	snap := m.Snapshot()
	if len(snap) != 1 || snap[0].Healthy || snap[0].HeartbeatAgeSeconds < 1.4 {
		t.Fatalf("Snapshot past TTL = %+v", snap)
	}

	// A heartbeat revives a dead-but-not-reaped worker.
	if !m.Heartbeat("w1") {
		t.Fatal("heartbeat for a registered worker rejected")
	}
	if !m.Alive("w1") {
		t.Fatal("worker not revived by heartbeat")
	}

	// MarkDead forces immediate death ahead of the TTL.
	m.MarkDead("w1")
	if m.Alive("w1") {
		t.Fatal("worker alive after MarkDead")
	}
	m.Register("w1", "http://w1")
	if !m.Alive("w1") {
		t.Fatal("re-registration did not revive the worker")
	}
}

func TestMembershipReapsLongDead(t *testing.T) {
	m, advance := clockedMembership(time.Second)
	m.Register("w1", "http://w1")
	advance(time.Duration(reapAfterTTLs)*time.Second + time.Second)
	if snap := m.Snapshot(); len(snap) != 0 {
		t.Fatalf("long-dead worker not reaped: %+v", snap)
	}
	// After the reap the worker is unknown: its agent's next heartbeat
	// is rejected, which is what triggers re-registration.
	if m.Heartbeat("w1") {
		t.Fatal("heartbeat accepted for a reaped worker")
	}
}

func TestMembershipMaxHeartbeatAge(t *testing.T) {
	m, advance := clockedMembership(time.Second)
	if m.MaxHeartbeatAge() != 0 {
		t.Fatal("empty table must report zero heartbeat age")
	}
	m.Register("w1", "http://w1")
	advance(300 * time.Millisecond)
	m.Register("w2", "http://w2")
	advance(200 * time.Millisecond)
	if got := m.MaxHeartbeatAge(); got != 500*time.Millisecond {
		t.Fatalf("MaxHeartbeatAge = %v, want 500ms", got)
	}
}
