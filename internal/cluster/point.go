// Package cluster is the distributed-verification substrate behind the
// msd coordinator/worker topology: rendezvous sharding of verification
// points across a heartbeat-tracked worker set, dispatch with per-shard
// timeouts, full-jitter retry, death-driven reassignment and hedged
// duplicates for stragglers, and graceful degradation to local
// execution when no worker is healthy. The package is transport- and
// daemon-agnostic: internal/msd supplies the HTTP executor, the local
// fallback and the verdict cache; everything here is deterministic
// given the same membership events, which is what lets the chaos tests
// assert byte-identical verdicts against a single-node run.
package cluster

import (
	"fmt"
	"strings"

	"microsampler/internal/core"
	"microsampler/internal/sim"
	"microsampler/internal/workloads"
)

// Point is one program×configuration verification point of a batch —
// the unit of work the coordinator shards across workers. It is
// self-contained on the wire: a worker can resolve it to a
// (core.Workload, core.Options) pair without any batch context.
type Point struct {
	// Exactly one of Workload (built-in case-study name) or Source (raw
	// RV64 assembly) names the program.
	Workload string `json:"workload,omitempty"`
	Source   string `json:"source,omitempty"`

	// Cell pins the microarchitecture to one grid cell by its canonical
	// "axis=value,..." name (core.Cell). When set, Config and FastBypass
	// are ignored — the cell defines the configuration.
	Cell string `json:"cell,omitempty"`
	// Config selects the simulated core when Cell is empty: "mega"
	// (default) or "small".
	Config     string `json:"config,omitempty"`
	FastBypass bool   `json:"fastBypass,omitempty"`

	Runs          int  `json:"runs,omitempty"`   // default 4
	Warmup        int  `json:"warmup,omitempty"` // 0: framework default, <0: keep all
	SeedOffset    int  `json:"seedOffset,omitempty"`
	MeasureStages bool `json:"measureStages,omitempty"`

	// Label is execution metadata for the worker's history store; it
	// never enters the cache key.
	Label string `json:"label,omitempty"`
}

// ParseCell decodes a canonical "axis=value,axis=value" cell name into
// a core.Cell, validating every axis and value against the grid
// vocabulary (via Cell.Config).
func ParseCell(name string) (core.Cell, error) {
	c := core.Cell{Name: name}
	for _, part := range strings.Split(name, ",") {
		axis, value, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || axis == "" || value == "" {
			return core.Cell{}, fmt.Errorf("cluster: cell %q: want axis=value pairs", name)
		}
		c.Axes = append(c.Axes, axis)
		c.Values = append(c.Values, value)
	}
	if _, err := c.Config(); err != nil {
		return core.Cell{}, err
	}
	return c, nil
}

// Resolve materialises the point into the workload and options its
// verification runs with. Execution-strategy options (parallelism,
// retries, telemetry) are the executing daemon's business and are left
// zero.
func (p Point) Resolve() (core.Workload, core.Options, error) {
	var w core.Workload
	var err error
	switch {
	case (p.Workload == "") == (p.Source == ""):
		return w, core.Options{}, fmt.Errorf("cluster: point needs exactly one of workload or source")
	case p.Workload != "":
		if w, err = workloads.ByName(p.Workload); err != nil {
			return w, core.Options{}, err
		}
	default:
		w = core.Workload{Name: "submitted-source", Source: p.Source}
	}

	var cfg sim.Config
	if p.Cell != "" {
		cell, err := ParseCell(p.Cell)
		if err != nil {
			return w, core.Options{}, err
		}
		if cfg, err = cell.Config(); err != nil {
			return w, core.Options{}, err
		}
	} else {
		switch strings.ToLower(p.Config) {
		case "", "mega", "megaboom":
			cfg = sim.MegaBoom()
		case "small", "smallboom":
			cfg = sim.SmallBoom()
		default:
			return w, core.Options{}, fmt.Errorf("cluster: unknown config %q (mega or small)", p.Config)
		}
		cfg.FastBypass = p.FastBypass
	}

	runs := p.Runs
	if runs == 0 {
		runs = 4
	}
	warmup := p.Warmup
	if warmup < 0 {
		warmup = core.NoWarmup
	}
	return w, core.Options{
		Config:        cfg,
		Runs:          runs,
		Warmup:        warmup,
		SeedOffset:    p.SeedOffset,
		MeasureStages: p.MeasureStages,
	}, nil
}

// Key returns the point's canonical content-addressed cache key — the
// same core.CacheKey a single-node verification of the identical tuple
// would use, which is exactly what makes cross-node cache fill and
// reassignment dedup sound. maxCycles is the executing daemon's per-run
// bound (part of the verification tuple).
func (p Point) Key(maxCycles int64) (string, error) {
	w, opts, err := p.Resolve()
	if err != nil {
		return "", err
	}
	opts.MaxCycles = maxCycles
	return core.CacheKey(w, opts)
}

// WorkloadName is the point's display name.
func (p Point) WorkloadName() string {
	if p.Workload != "" {
		return p.Workload
	}
	return "submitted-source"
}

// PointResult is one point's terminal outcome. The verdict fields
// (Leaky through Digest, plus Err) are a pure function of the point —
// deterministic simulation — while the execution-metadata fields
// (Cached, Worker, Degraded) describe how this particular dispatch got
// the answer and never enter the cache.
type PointResult struct {
	Key string `json:"key"`

	Leaky      bool     `json:"leaky"`
	LeakyUnits []string `json:"leakyUnits,omitempty"`
	Iterations int      `json:"iterations,omitempty"`
	SimCycles  int64    `json:"simCycles,omitempty"`
	// Digest is the diffable report digest (report.ReportDigest JSON),
	// carried verbatim so verdict identity is byte-checkable.
	Digest []byte `json:"digest,omitempty"`
	// Err records a failed point — assembly error, simulation fault —
	// without failing the batch, mirroring core.CellResult.Err.
	Err string `json:"error,omitempty"`

	// Cached marks a verdict served from a cache layer (local, remote
	// fill, or in-flight dedup) instead of a fresh simulation.
	Cached bool `json:"cached,omitempty"`
	// Worker is the ID of the worker that answered ("" for local).
	Worker string `json:"worker,omitempty"`
	// Degraded marks a point the coordinator executed locally because no
	// worker was healthy (or every remote attempt failed).
	Degraded bool `json:"degraded,omitempty"`
}

// Verdict returns the deterministic verdict-only view of the result —
// execution metadata stripped — which is the unit the chaos tests
// compare byte-for-byte against a single-node run.
func (r PointResult) Verdict() PointResult {
	r.Cached = false
	r.Worker = ""
	r.Degraded = false
	return r
}
