package cluster

import (
	"hash/fnv"
	"sort"
)

// Rendezvous (highest-random-weight) hashing assigns every cache key a
// deterministic preference order over the worker set. Unlike modulo
// sharding, removing one worker only remaps the keys it owned — every
// other key keeps its assignment — which is exactly the stability the
// reassignment path wants: a worker death moves its in-flight points to
// their next-preferred worker and nothing else.

// rendezvousScore is the weight of (key, node): FNV-1a over the key, a
// separator byte no hex key contains, and the node ID. Cache keys are
// canonical SHA-256 hex, so the inputs are already well mixed.
func rendezvousScore(key, node string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	_, _ = h.Write([]byte{0xff})
	_, _ = h.Write([]byte(node))
	return h.Sum64()
}

// Rank orders node IDs by descending rendezvous weight for key, ties
// broken by ID so the order is total and deterministic. The first
// element is the key's owner.
func Rank(key string, nodes []string) []string {
	out := append([]string(nil), nodes...)
	sort.Slice(out, func(i, j int) bool {
		si, sj := rendezvousScore(key, out[i]), rendezvousScore(key, out[j])
		if si != sj {
			return si > sj
		}
		return out[i] < out[j]
	})
	return out
}
