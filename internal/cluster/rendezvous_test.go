package cluster

import (
	"fmt"
	"testing"
)

func TestRankDeterministicAndTotal(t *testing.T) {
	nodes := []string{"w3", "w1", "w5", "w2", "w4"}
	key := "0123456789abcdef"

	a := Rank(key, nodes)
	b := Rank(key, nodes)
	if len(a) != len(nodes) {
		t.Fatalf("Rank dropped nodes: got %d want %d", len(a), len(nodes))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Rank not deterministic: %v vs %v", a, b)
		}
	}

	// Input order must not matter: the ranking is a pure function of
	// (key, node set).
	shuffled := []string{"w5", "w4", "w3", "w2", "w1"}
	c := Rank(key, shuffled)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("Rank depends on input order: %v vs %v", a, c)
		}
	}

	// Every node appears exactly once.
	seen := map[string]bool{}
	for _, id := range a {
		if seen[id] {
			t.Fatalf("node %s ranked twice in %v", id, a)
		}
		seen[id] = true
	}
}

func TestRankSpreadsKeys(t *testing.T) {
	nodes := []string{"w1", "w2", "w3", "w4", "w5"}
	owned := map[string]int{}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("%064x", i)
		owned[Rank(key, nodes)[0]]++
	}
	// With 200 keys over 5 nodes, a node owning nothing (or nearly
	// everything) means the hash is not mixing.
	for _, id := range nodes {
		if owned[id] == 0 {
			t.Errorf("node %s owns no keys: %v", id, owned)
		}
		if owned[id] > 120 {
			t.Errorf("node %s owns %d/200 keys — hash not spreading: %v", id, owned[id], owned)
		}
	}
}

// TestRankMinimalRemap is the property rendezvous hashing buys over
// modulo sharding: removing one node only remaps the keys it owned.
func TestRankMinimalRemap(t *testing.T) {
	nodes := []string{"w1", "w2", "w3", "w4", "w5"}
	const removed = "w3"
	var without []string
	for _, id := range nodes {
		if id != removed {
			without = append(without, id)
		}
	}
	remapped := 0
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("%064x", i)
		before := Rank(key, nodes)[0]
		after := Rank(key, without)[0]
		if before == removed {
			remapped++
			continue
		}
		if before != after {
			t.Fatalf("key %d moved from %s to %s though %s was not its owner",
				i, before, after, removed)
		}
	}
	if remapped == 0 {
		t.Fatal("removed node owned no keys; the remap property was not exercised")
	}
}
