package core

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"

	"microsampler/internal/cache"
	"microsampler/internal/sim"
	"microsampler/internal/telemetry"
	"microsampler/internal/trace"
)

func mustKey(t *testing.T, w Workload, opts Options) string {
	t.Helper()
	k, err := CacheKey(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestCacheKeyCanonicalization(t *testing.T) {
	w := Workload{Name: "smoke", Source: smokeWorkload}
	// Spelling out a default must hash identically to omitting it.
	implicit := mustKey(t, w, Options{})
	explicit := mustKey(t, w, Options{
		Config: sim.MegaBoom(), Runs: 1, Warmup: 2,
		MaxCycles: 20_000_000, Units: trace.AllUnits(),
	})
	if implicit != explicit {
		t.Errorf("defaulted and explicit options produced different keys:\n%s\n%s",
			implicit, explicit)
	}
	// Execution-strategy fields must not perturb the key.
	strategic := mustKey(t, w, Options{Parallel: 4, Retry: RetryPolicy{Max: 3}})
	if strategic != implicit {
		t.Error("Parallel/Retry changed the cache key")
	}
}

func TestCacheKeyDiscriminates(t *testing.T) {
	w := Workload{Name: "smoke", Source: smokeWorkload}
	base := mustKey(t, w, Options{})
	small := sim.SmallBoom()
	fb := sim.MegaBoom()
	fb.FastBypass = true
	for name, k := range map[string]string{
		"program": mustKey(t, Workload{Name: "smoke", Source: leakWorkload}, Options{}),
		"name":    mustKey(t, Workload{Name: "other", Source: smokeWorkload}, Options{}),
		"config":  mustKey(t, w, Options{Config: small}),
		"flag":    mustKey(t, w, Options{Config: fb}),
		"seed":    mustKey(t, w, Options{SeedOffset: 7}),
		"runs":    mustKey(t, w, Options{Runs: 2}),
		"warmup":  mustKey(t, w, Options{Warmup: NoWarmup}),
		"cycles":  mustKey(t, w, Options{MaxCycles: 1000}),
		"units":   mustKey(t, w, Options{Units: []trace.Unit{trace.SQADDR}}),
	} {
		if k == base {
			t.Errorf("changing %s did not change the cache key", name)
		}
	}
}

func TestCacheKeyRejectsInvalidOptions(t *testing.T) {
	if _, err := CacheKey(Workload{Name: "x"}, Options{Runs: -1}); err == nil {
		t.Fatal("CacheKey accepted negative Runs")
	}
}

func TestVerifyCacheHit(t *testing.T) {
	c := cache.NewLRU(8)
	reg := telemetry.NewRegistry()
	w := Workload{Name: "smoke", Source: smokeWorkload}
	opts := Options{Config: sim.SmallBoom(), Runs: 2, Warmup: 1, Cache: c, Metrics: reg}

	first, err := Verify(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Verify(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Error("second verification did not return the cached report")
	}
	if got := reg.Counter("verify_cache_hits_total").Value(); got != 1 {
		t.Errorf("verify_cache_hits_total = %d, want 1", got)
	}
	if got := reg.Counter("verify_cache_misses_total").Value(); got != 1 {
		t.Errorf("verify_cache_misses_total = %d, want 1", got)
	}
	// A detection-relevant change must miss.
	opts.SeedOffset = 3
	third, err := Verify(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if third == first {
		t.Error("different seed served the cached report")
	}
	if got := reg.Counter("verify_cache_misses_total").Value(); got != 2 {
		t.Errorf("verify_cache_misses_total = %d, want 2", got)
	}
}

// TestMatrixSweepReusesCache pins the matrix-diffing property: cells
// are cached under per-cell keys, so a re-sweep simulates nothing and a
// one-axis extension only simulates the new cells.
func TestMatrixSweepReusesCache(t *testing.T) {
	c := cache.NewLRU(32)
	reg := telemetry.NewRegistry()
	w := Workload{Name: "smoke", Source: smokeWorkload}
	opts := MatrixOptions{
		Options: Options{Runs: 1, Warmup: 1, Cache: c, Metrics: reg},
		Grid:    GridSpec{Axes: []Axis{{Name: "prefetch", Values: []string{"nlp", "none"}}}},
	}
	first, err := VerifyMatrix(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if misses := reg.Counter("verify_cache_misses_total").Value(); misses != 2 {
		t.Fatalf("first sweep misses = %d, want 2", misses)
	}
	// Identical re-sweep: every cell is a hit.
	second, err := VerifyMatrix(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if hits := reg.Counter("verify_cache_hits_total").Value(); hits != 2 {
		t.Errorf("re-sweep hits = %d, want 2", hits)
	}
	for i := range first.Cells {
		if first.Cells[i].Report != second.Cells[i].Report {
			t.Errorf("cell %s not served from cache", first.Cells[i].Name)
		}
	}
	// One-axis extension: only the new cell simulates.
	opts.Grid = GridSpec{Axes: []Axis{{Name: "prefetch", Values: []string{"nlp", "none", "stride"}}}}
	if _, err := VerifyMatrix(w, opts); err != nil {
		t.Fatal(err)
	}
	if misses := reg.Counter("verify_cache_misses_total").Value(); misses != 3 {
		t.Errorf("extended sweep total misses = %d, want 3 (one new cell)", misses)
	}
	if hits := reg.Counter("verify_cache_hits_total").Value(); hits != 4 {
		t.Errorf("extended sweep total hits = %d, want 4", hits)
	}
}

func TestMatrixCacheKeyCanonical(t *testing.T) {
	w := Workload{Name: "smoke", Source: smokeWorkload}
	a, err := MatrixCacheKey(w, MatrixOptions{Grid: GridSpec{Axes: []Axis{
		{Name: "predictor", Values: []string{"gshare", "tage"}},
		{Name: "prefetch", Values: []string{"nlp", "none"}},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	// Reordered axes enumerate the same canonical cells.
	b, err := MatrixCacheKey(w, MatrixOptions{Grid: GridSpec{Axes: []Axis{
		{Name: "prefetch", Values: []string{"nlp", "none"}},
		{Name: "predictor", Values: []string{"gshare", "tage"}},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("axis order changed the matrix cache key")
	}
	// CellParallel is execution strategy.
	cpar, err := MatrixCacheKey(w, MatrixOptions{CellParallel: 4, Grid: GridSpec{Axes: []Axis{
		{Name: "predictor", Values: []string{"gshare", "tage"}},
		{Name: "prefetch", Values: []string{"nlp", "none"}},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if cpar != a {
		t.Error("CellParallel changed the matrix cache key")
	}
	// A different cell set must not share a key.
	c, err := MatrixCacheKey(w, MatrixOptions{Grid: GridSpec{Axes: []Axis{
		{Name: "prefetch", Values: []string{"nlp", "none"}},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different grids share a matrix cache key")
	}
}

// capturedRunIDs sweeps a two-cell grid with a JSON slog handler and
// returns the distinct run_id attributes observed.
func capturedRunIDs(t *testing.T, runID string) map[string]bool {
	t.Helper()
	var buf bytes.Buffer
	var mu sync.Mutex
	lg := slog.New(slog.NewJSONHandler(lockedWriter{&mu, &buf}, nil))
	w := Workload{Name: "smoke", Source: smokeWorkload}
	opts := MatrixOptions{
		Options: Options{Runs: 1, Warmup: 1, Logger: lg, RunID: runID},
		Grid:    GridSpec{Axes: []Axis{{Name: "prefetch", Values: []string{"nlp", "none"}}}},
	}
	if _, err := VerifyMatrix(w, opts); err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("malformed log line %q: %v", line, err)
		}
		id, _ := rec["run_id"].(string)
		ids[id] = true
	}
	return ids
}

// TestMatrixCellRunIDs pins the per-cell run-ID derivation: cells must
// never log with an empty run ID (which made cells indistinguishable),
// and each cell's ID must be distinct.
func TestMatrixCellRunIDs(t *testing.T) {
	ids := capturedRunIDs(t, "")
	if ids[""] {
		t.Error("matrix cell logged with an empty run_id")
	}
	for _, want := range []string{"prefetch=nlp", "prefetch=none"} {
		if !ids[want] {
			t.Errorf("no log records with run_id %q (got %v)", want, ids)
		}
	}

	prefixed := capturedRunIDs(t, "job-7")
	for _, want := range []string{"job-7/prefetch=nlp", "job-7/prefetch=none"} {
		if !prefixed[want] {
			t.Errorf("no log records with run_id %q (got %v)", want, prefixed)
		}
	}
}
