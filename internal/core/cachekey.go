package core

import (
	"fmt"
	"reflect"

	"microsampler/internal/cache"
)

// Content-addressed verification keys. A verification is a pure
// function of (program bytes, machine configuration, seed range,
// detection-relevant options) — the calibration gate proves
// byte-identical output across runs — so a canonical SHA-256 of that
// tuple names the result: two submissions with the same key would
// simulate to the same report, whatever the parallelism, retry policy
// or telemetry wiring of either.
//
// Detection-relevant fields are hashed; execution-strategy fields
// (Parallel, Retry, RunTimeout, Watchdog, FaultHook, probes, sinks,
// loggers) are deliberately not — they change how the answer is
// computed, never what it is. MeasureStages is hashed because it
// changes the report's stage breakdown contents.

// verifyCacheKeySchema versions the key layout: bump it when the set of
// hashed fields changes, so stale caches miss instead of serving
// results keyed under the old tuple.
const verifyCacheKeySchema = "microsampler-verify-v1"

// CacheKey returns the canonical content-addressed key of a
// verification: identical (program, config, seed range,
// detection-relevant options) tuples — including tuples that differ
// only in defaulted fields — share a key; any change to a hashed field
// produces a different one. The workload's Setup function cannot be
// hashed; it is assumed to be determined by the workload name (true for
// the built-in corpus and for raw submitted sources, which have no
// Setup).
func CacheKey(w Workload, opts Options) (string, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return "", err
	}
	return cacheKeyWithDefaults(w, o), nil
}

// MatrixCacheKey is CacheKey for a grid sweep: the per-workload tuple
// combined with the canonical cell enumeration of the grid, so
// equivalent specs (reordered axes) share a key and any cell-set change
// produces a different one. CellParallel is execution strategy and not
// hashed.
func MatrixCacheKey(w Workload, opts MatrixOptions) (string, error) {
	grid := opts.Grid
	if len(grid.Axes) == 0 {
		grid = DefaultGrid()
	}
	if err := grid.Validate(); err != nil {
		return "", err
	}
	o, err := opts.Options.withDefaults()
	if err != nil {
		return "", err
	}
	h := cache.NewHasher()
	h.Str("schema", "microsampler-matrix-v1")
	h.Str("base", cacheKeyWithDefaults(w, o))
	for _, c := range grid.Cells() {
		h.Str("cell", c.Name)
	}
	return h.Sum(), nil
}

// cacheKeyWithDefaults hashes the detection-relevant tuple of a
// defaults-applied Options. Callers must have run withDefaults first,
// so explicitly spelling out a default hashes identically to omitting
// it.
func cacheKeyWithDefaults(w Workload, o Options) string {
	h := cache.NewHasher()
	h.Str("schema", verifyCacheKeySchema)
	h.Str("workload", w.Name)
	h.Str("source", w.Source)
	h.Bool("setup", w.Setup != nil)
	hashConfig(h, o.Config)
	h.Int("runs", int64(o.Runs))
	h.Int("warmup", int64(o.Warmup))
	h.Int("maxcycles", o.MaxCycles)
	h.Int("seedoffset", int64(o.SeedOffset))
	h.Bool("measurestages", o.MeasureStages)
	h.Int("nunits", int64(len(o.Units)))
	for _, u := range o.Units {
		h.Str("unit", u.String())
	}
	return h.Sum()
}

// hashConfig hashes every field of a sim.Config by reflection, so a
// configuration field added to the simulator is hashed the day it
// exists instead of silently aliasing configs that differ in it.
func hashConfig(h *cache.Hasher, cfg any) {
	v := reflect.ValueOf(cfg)
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		name := "cfg." + t.Field(i).Name
		switch fv := v.Field(i); fv.Kind() {
		case reflect.String:
			h.Str(name, fv.String())
		case reflect.Bool:
			h.Bool(name, fv.Bool())
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			h.Int(name, fv.Int())
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			h.Uint(name, fv.Uint())
		default:
			// Conservative fallback: no silent omission of a field the
			// fast paths above do not cover.
			h.Str(name, fmt.Sprintf("%v", fv.Interface()))
		}
	}
}
