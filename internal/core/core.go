// Package core implements the MicroSampler verification pipeline — the
// paper's primary contribution (Section V, Fig. 1):
//
//  1. run the code under test on the cycle-level BOOM simulator while
//     tracing microarchitectural state every cycle,
//  2. partition the trace into per-iteration snapshots labeled with the
//     secret class values,
//  3. build per-unit contingency tables of snapshot-hash frequencies and
//     measure the class association with Cramér's V validated by the
//     chi-squared p-value,
//  4. for units with significant correlation, extract the features
//     (addresses, PCs, activity) responsible via feature uniqueness and
//     feature ordering.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"microsampler/internal/asm"
	"microsampler/internal/cache"
	"microsampler/internal/faults"
	"microsampler/internal/features"
	"microsampler/internal/sim"
	"microsampler/internal/snapshot"
	"microsampler/internal/stats"
	"microsampler/internal/telemetry"
	"microsampler/internal/trace"
)

// Workload is a program under verification plus its input generator.
type Workload struct {
	// Name identifies the case study (e.g. "ME-V1-CV").
	Name string
	// Source is the RV64 assembly of the program. It must delimit the
	// security-critical region with roi.begin/roi.end and label each
	// algorithmic iteration with iter.begin <class-reg> / iter.end.
	Source string
	// Setup initialises memory for one run (e.g. writes the key and
	// operands at the program's data symbols). run is the 0-based run
	// index. May be nil.
	Setup func(run int, m *sim.Machine, prog *asm.Program) error
}

// NoWarmup is the Warmup sentinel requesting that no iterations be
// dropped. A plain zero keeps the default of 2, so the zero-valued
// Options stay useful; any negative Warmup means "explicitly zero".
const NoWarmup = -1

// ParallelAuto is the Options.Parallel sentinel selecting one worker
// per CPU.
const ParallelAuto = -1

// Progress describes one completed simulation run; see
// Options.OnProgress.
type Progress struct {
	// Run is the 0-based index of the run that just finished; Done of
	// Total runs have completed so far (runs may finish out of order
	// under Parallel > 1, but Done is monotonic).
	Run, Done, Total int
	// Cycles the run simulated and Iterations it kept after warmup.
	Cycles     int64
	Iterations int
	// Elapsed is the wall time since the verification started.
	Elapsed time.Duration
}

// Options configures a verification.
type Options struct {
	// Config is the core configuration (default MegaBoom).
	Config sim.Config
	// Units to track (default: all Table IV units).
	Units []trace.Unit
	// Runs is the number of independent simulations, each starting from
	// reset state with fresh inputs (default 1).
	Runs int
	// Warmup drops the first n labeled iterations of each run (default
	// 2). Use NoWarmup (or any negative value) to keep every iteration;
	// a plain 0 selects the default.
	Warmup int
	// MaxCycles bounds each run (default 20M).
	MaxCycles int64
	// SeedOffset shifts the run index passed to the workload's Setup
	// function: run r calls Setup(SeedOffset+r, ...). Setup functions
	// derive their input RNG seed from the run index, so distinct
	// offsets draw disjoint input sets — the oracle harness uses this
	// to replicate a verification under independent seeds. Progress
	// callbacks and spans still report local run indices.
	SeedOffset int
	// MeasureStages makes Verify execute each run twice — once without
	// tracing — so that the Table VI stage breakdown can separate pure
	// simulation time from trace parsing time. The double execution is
	// attributed per run, so it composes with Parallel > 1: the
	// Simulate/Parse stage totals are then sums of per-run (CPU) time
	// rather than wall time.
	MeasureStages bool
	// Parallel runs up to this many simulations concurrently (each run
	// is an independent machine). 0 or 1 means sequential; ParallelAuto
	// (-1) means one worker per CPU. Results are identical to a
	// sequential run: merging happens in run order. When any run fails,
	// its siblings are cancelled instead of simulating to completion.
	Parallel int

	// RunTimeout bounds the wall time of each run attempt (0 means no
	// bound). An expired attempt fails with context.DeadlineExceeded,
	// which the retry policy treats as transient.
	RunTimeout time.Duration
	// Watchdog, when positive, arms a wall-clock stall detector per run
	// attempt: if the simulator makes no cycle progress for this long
	// (a blocked tracer or fault hook), the attempt is aborted with a
	// sim.ErrStalled-wrapped error, which the retry policy treats as
	// transient.
	Watchdog time.Duration
	// Retry re-executes run attempts that fail transiently — injected
	// transient faults, recovered panics, deadline expiries, watchdog
	// stalls — with exponential backoff and full jitter. The zero value
	// disables retrying.
	Retry RetryPolicy
	// FaultHook, when non-nil, supplies the per-cycle fault hook
	// installed on each run attempt's machine (nil hooks are fine and
	// cost nothing). It exists for fault-injection campaigns:
	// faults.Injector.Hook is the intended source.
	FaultHook func(run, attempt int) sim.FaultHook
	// FlightRecorderFrames, when positive, attaches a cycle-level flight
	// recorder of that many frames to every run attempt's machine. A
	// failing attempt — fault, stall, timeout, panic, nonzero exit —
	// then surfaces as a *RunFailure carrying the post-mortem ring of
	// the last N cycles (extract with FlightDumpFromError; render with
	// telemetry/export.FlightPerfetto). Zero disables the recorder.
	FlightRecorderFrames int
	// Probe, when non-nil, receives the live progress of this
	// verification: simulated cycles, current stage, completed runs and
	// retries, all readable concurrently while Verify runs.
	Probe *RunProbe

	// Cache, when non-nil, serves repeat verifications from a
	// content-addressed result cache instead of re-simulating: before
	// running, Verify hashes the (program, config, seed range,
	// detection-relevant options) tuple — see CacheKey — and a hit
	// returns the cached *Report in microseconds. Cached reports are
	// shared, not copied; callers must treat them as immutable (reports
	// are read-only once built). Hits and misses are counted in Metrics
	// as verify_cache_hits_total / verify_cache_misses_total.
	Cache *cache.LRU

	// Metrics, when non-nil, receives pipeline and simulator counters
	// (cycles, IPC, cache and predictor events, per-unit sample volume,
	// run/stage latency distributions). Accumulation is per run, off
	// the per-cycle hot path.
	Metrics *telemetry.Registry
	// TraceSink, when non-nil, receives every pipeline span as one JSON
	// line (see telemetry.Span). Spans are recorded in Report.Spans
	// regardless; the sink only adds the streaming JSONL output. Sink
	// write errors do not fail the verification.
	TraceSink io.Writer
	// OnProgress, when non-nil, is called after each run completes.
	// Calls are serialised, but may originate from worker goroutines
	// when Parallel > 1.
	OnProgress func(Progress)

	// Logger, when non-nil, receives structured progress and outcome
	// events (run completions, failures, stage durations, the verdict)
	// as slog records. Records may originate from worker goroutines
	// when Parallel > 1; slog handlers are safe for that.
	Logger *slog.Logger
	// RunID tags every log record of this verification with a run_id
	// attribute, correlating daemon logs with the metrics and spans of
	// the same job. Empty means no run_id attribute.
	RunID string
}

// RetryPolicy configures per-run retry of transiently failing attempts.
type RetryPolicy struct {
	// Max is the number of retries allowed per run beyond the first
	// attempt; 0 disables retrying.
	Max int
	// BaseDelay seeds the exponential backoff (default 50ms when
	// Max > 0): before retry n (0-based) the worker sleeps a full-jitter
	// duration drawn uniformly from [0, min(MaxDelay, BaseDelay·2ⁿ)].
	BaseDelay time.Duration
	// MaxDelay caps the backoff window (default 2s; never below
	// BaseDelay).
	MaxDelay time.Duration
}

// backoff returns the jittered delay before retry n (0-based).
func (p RetryPolicy) backoff(n int) time.Duration {
	return p.backoffAt(n, rand.Float64())
}

// backoffAt is backoff with the uniform jitter draw u injected; split
// out so tests can pin the draw.
func (p RetryPolicy) backoffAt(n int, u float64) time.Duration {
	window := p.BaseDelay
	for i := 0; i < n && window < p.MaxDelay; i++ {
		window *= 2
	}
	if window > p.MaxDelay {
		window = p.MaxDelay
	}
	if window <= 0 {
		return 0
	}
	return time.Duration(u * float64(window))
}

// withDefaults validates the options and fills in defaults. Negative
// Runs or MaxCycles, or a Parallel below the ParallelAuto sentinel, are
// programming errors that used to surface as panics (e.g. in
// make([]runOut, opts.Runs)) deep inside Verify; they are rejected here
// with a descriptive error instead.
func (o Options) withDefaults() (Options, error) {
	if o.Runs < 0 {
		return o, fmt.Errorf("core: Options.Runs must be non-negative, got %d", o.Runs)
	}
	if o.MaxCycles < 0 {
		return o, fmt.Errorf("core: Options.MaxCycles must be non-negative, got %d", o.MaxCycles)
	}
	if o.Parallel < ParallelAuto {
		return o, fmt.Errorf("core: Options.Parallel must be >= %d (ParallelAuto), got %d",
			ParallelAuto, o.Parallel)
	}
	if o.RunTimeout < 0 {
		return o, fmt.Errorf("core: Options.RunTimeout must be non-negative, got %v", o.RunTimeout)
	}
	if o.Watchdog < 0 {
		return o, fmt.Errorf("core: Options.Watchdog must be non-negative, got %v", o.Watchdog)
	}
	if o.Retry.Max < 0 || o.Retry.BaseDelay < 0 || o.Retry.MaxDelay < 0 {
		return o, fmt.Errorf("core: Options.Retry fields must be non-negative, got %+v", o.Retry)
	}
	if o.FlightRecorderFrames < 0 {
		return o, fmt.Errorf("core: Options.FlightRecorderFrames must be non-negative, got %d",
			o.FlightRecorderFrames)
	}
	if o.Retry.Max > 0 {
		if o.Retry.BaseDelay == 0 {
			o.Retry.BaseDelay = 50 * time.Millisecond
		}
		if o.Retry.MaxDelay == 0 {
			o.Retry.MaxDelay = 2 * time.Second
		}
		if o.Retry.MaxDelay < o.Retry.BaseDelay {
			o.Retry.MaxDelay = o.Retry.BaseDelay
		}
	}
	if o.Config.Name == "" {
		o.Config = sim.MegaBoom()
	}
	if len(o.Units) == 0 {
		o.Units = trace.AllUnits()
	}
	if o.Runs == 0 {
		o.Runs = 1
	}
	if o.Warmup == 0 {
		o.Warmup = 2
	} else if o.Warmup < 0 {
		o.Warmup = 0
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 20_000_000
	}
	return o, nil
}

// UnitResult is the verdict for one microarchitectural unit.
type UnitResult struct {
	Unit trace.Unit

	// Assoc measures the class association of the full (timed)
	// snapshots; AssocNoTiming of the consolidated (timing-free) ones.
	Assoc         stats.Association
	AssocNoTiming stats.Association

	// Table is the contingency table behind Assoc.
	Table *stats.Table

	// Root-cause extraction, populated for units with a significant
	// correlation (Section V-C3).
	UniqueFeatures map[uint64][]uint64
	Ordering       []features.OrderingMismatch

	// Store holds the deduplicated snapshots for further inspection.
	Store         *snapshot.Store
	StoreNoTiming *snapshot.Store
}

// Leaky reports the paper's per-unit verdict.
func (u UnitResult) Leaky() bool { return u.Assoc.Leaky() }

// StageTimes is the Table VI breakdown, enriched with per-run
// distributions so parallel-mode runs remain attributable.
type StageTimes struct {
	Assemble time.Duration // 0: assembling the program under test
	Simulate time.Duration // 1: RTL-equivalent simulation
	Parse    time.Duration // 2: trace extraction and snapshot generation
	Stats    time.Duration // 3: Cramér's V for all tracked structures
	Extract  time.Duration // 4: feature extraction

	// RunWall is the distribution of per-run wall times (traced
	// execution). RunSim and RunParse split each run into pure
	// simulation and trace-parsing shares; they are populated only
	// under MeasureStages.
	RunWall  telemetry.DurStats
	RunSim   telemetry.DurStats
	RunParse telemetry.DurStats
}

// Total returns the end-to-end analysis time.
func (s StageTimes) Total() time.Duration {
	return s.Assemble + s.Simulate + s.Parse + s.Stats + s.Extract
}

// SimStats aggregates the simulator's event counters across runs — the
// microarchitectural behaviour behind the verdicts (and behind the
// pipeline's own performance).
type SimStats struct {
	Cycles                  int64
	Instructions            uint64
	Branches                uint64
	BranchMispredicts       uint64
	DCacheHits              uint64
	DCacheMisses            uint64
	TLBMisses               uint64
	Prefetches              uint64
	PrefetchesUseful        uint64
	PrefetchesUseless       uint64
	StridePrefetches        uint64
	StridePrefetchesUseful  uint64
	StridePrefetchesUseless uint64
	LSUReplays              uint64
	MSHRHighWater           int
}

// IPC returns retired instructions per simulated cycle across all runs.
func (s SimStats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// accumulate folds one run's result into the aggregate.
func (s *SimStats) accumulate(r sim.Result) {
	s.Cycles += r.Cycles
	s.Instructions += r.Instructions
	s.Branches += r.Branches
	s.BranchMispredicts += r.Mispredicts
	s.DCacheHits += r.DCacheHits
	s.DCacheMisses += r.DCacheMisses
	s.TLBMisses += r.TLBMisses
	s.Prefetches += r.Prefetches
	s.PrefetchesUseful += r.PrefetchesUseful
	s.PrefetchesUseless += r.PrefetchesUseless
	s.StridePrefetches += r.StridePrefetches
	s.StridePrefetchesUseful += r.StridePrefetchesUseful
	s.StridePrefetchesUseless += r.StridePrefetchesUseless
	s.LSUReplays += r.LSUReplays
	if r.MSHRHighWater > s.MSHRHighWater {
		s.MSHRHighWater = r.MSHRHighWater
	}
}

// Report is the complete verification outcome for a workload.
type Report struct {
	Workload   string
	Config     string
	Units      []UnitResult
	Iterations []trace.IterSample
	Runs       int
	Stages     StageTimes
	SimCycles  int64 // total simulated cycles across runs
	// Retries counts run attempts that failed transiently and were
	// re-executed under Options.Retry; 0 on the fault-free path.
	Retries int

	// Sim aggregates the simulator's event counters across runs.
	Sim SimStats
	// Samples is the number of state rows the tracer ingested per unit.
	Samples map[trace.Unit]uint64
	// IterHashes is, per tracked unit, the full-snapshot hash of every
	// kept iteration, concatenated in run order and aligned with
	// Iterations. The report package bins this sequence into iteration
	// windows to render the leakage heatmap.
	IterHashes map[trace.Unit][]uint64
	// Spans is the pipeline span tree of this verification (per stage
	// and per run); see telemetry.SpanStats for aggregation.
	Spans []telemetry.Span

	// Provenance is, per tracked unit, the per-key event-stream evidence
	// for instruction-level leakage attribution, merged across runs with
	// iteration indices into Iterations. Keys are PCs for direct units
	// and observed values (addresses) for the rest; the report package's
	// BuildProvenance computes per-key Cramér's V over these streams and
	// resolves value keys to instructions.
	Provenance []trace.UnitProvenance

	// Program is the assembled image, kept for symbolising extracted
	// features (PCs to functions, addresses to data symbols).
	Program *asm.Program
	// StoreWriters and LoadReaders attribute each memory address
	// observed in the region of interest to the PCs that stored/loaded
	// it — the paper's step of tracing leaked addresses back to the
	// code that produced them.
	StoreWriters map[uint64][]uint64
	LoadReaders  map[uint64][]uint64
}

// LeakyUnits returns the units flagged as leaky, in Table IV order.
func (r *Report) LeakyUnits() []UnitResult {
	var out []UnitResult
	for _, u := range r.Units {
		if u.Leaky() {
			out = append(out, u)
		}
	}
	return out
}

// AnyLeak reports whether any unit was flagged.
func (r *Report) AnyLeak() bool { return len(r.LeakyUnits()) > 0 }

// Unit returns the result for a specific unit.
func (r *Report) Unit(u trace.Unit) (UnitResult, bool) {
	for _, ur := range r.Units {
		if ur.Unit == u {
			return ur, true
		}
	}
	return UnitResult{}, false
}

// ErrNoIterations is returned when a workload produced no labeled
// iterations (missing or unreached MARK instructions).
var ErrNoIterations = errors.New("core: workload produced no labeled iterations")

// Verify runs the full MicroSampler pipeline on a workload.
func Verify(w Workload, opts Options) (*Report, error) {
	return VerifyContext(context.Background(), w, opts)
}

// VerifyContext is Verify with cancellation: a cancelled context aborts
// between (not within) simulation runs.
func VerifyContext(ctx context.Context, w Workload, opts Options) (*Report, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	verifyStart := time.Now()
	probe := opts.Probe
	if probe == nil {
		probe = NewRunProbe() // discarded: keeps the publish sites branch-free
	}
	probe.setTotal(opts.Runs)
	probe.setStage(StageAssemble)
	lg := opts.Logger
	if lg == nil {
		lg = slog.New(slog.DiscardHandler)
	}
	if opts.RunID != "" {
		lg = lg.With("run_id", opts.RunID)
	}
	lg = lg.With("workload", w.Name)

	// Content-addressed cache lookup: a hit short-circuits the whole
	// pipeline — assembly, simulation, statistics — and returns the
	// previously computed report. Correct because verification is a pure
	// function of the hashed tuple (the calibration gate pins
	// byte-identical output across runs).
	var cacheKey string
	if opts.Cache != nil {
		cacheKey = cacheKeyWithDefaults(w, opts)
		if v, ok := opts.Cache.Get(cacheKey); ok {
			rep := v.(*Report)
			if opts.Metrics != nil {
				opts.Metrics.Counter("verify_cache_hits_total").Inc()
			}
			if opts.TraceSink != nil {
				ctr := telemetry.NewSpanTracer(opts.TraceSink)
				ctr.StartDetail("verify.cached", 0, -1, cacheKey[:12]).End()
			}
			probe.setStage(StageDone)
			lg.Info("verify served from cache",
				"cache_key", cacheKey[:12], "leaky", rep.AnyLeak(),
				"iterations", len(rep.Iterations), "elapsed", time.Since(verifyStart))
			return rep, nil
		}
		if opts.Metrics != nil {
			opts.Metrics.Counter("verify_cache_misses_total").Inc()
		}
	}

	lg.Info("verify started",
		"config", opts.Config.Name, "runs", opts.Runs,
		"parallel", opts.Parallel, "max_cycles", opts.MaxCycles)

	tr := telemetry.NewSpanTracer(opts.TraceSink)
	root := tr.Start("verify", 0, -1)

	asmSpan := tr.Start("assemble", root.ID(), -1)
	prog, err := asm.Assemble(w.Source)
	asmDur := asmSpan.End()
	if err != nil {
		root.End()
		probe.setStage(StageFailed)
		lg.Error("assemble failed", "err", err)
		return nil, fmt.Errorf("assemble %s: %w", w.Name, err)
	}

	rep := &Report{
		Workload:     w.Name,
		Config:       opts.Config.Name,
		Runs:         opts.Runs,
		Program:      prog,
		Samples:      make(map[trace.Unit]uint64, len(opts.Units)),
		IterHashes:   make(map[trace.Unit][]uint64, len(opts.Units)),
		StoreWriters: make(map[uint64][]uint64),
		LoadReaders:  make(map[uint64][]uint64),
	}
	rep.Stages.Assemble = asmDur

	// Stages 1–2: simulate with tracing, accumulating snapshots.
	full := make(map[trace.Unit]*snapshot.Store, len(opts.Units))
	noT := make(map[trace.Unit]*snapshot.Store, len(opts.Units))
	for _, u := range opts.Units {
		full[u] = snapshot.NewStore()
		noT[u] = snapshot.NewStore()
	}

	probe.setStage(StageSimulate)
	simSpan := tr.Start("simulate", root.ID(), -1)
	type runOut struct {
		col    *trace.Collector
		res    sim.Result
		err    error
		plain  time.Duration // untraced execution (MeasureStages only)
		traced time.Duration // traced execution wall time
	}
	// runCtx is cancelled when the first run fails, so sibling runs —
	// queued or about to start — abort instead of simulating their full
	// cycle budget only to have the result discarded. firstErr keeps the
	// error that triggered cancellation: in run order it may be shadowed
	// by the context.Canceled of an aborted earlier-indexed sibling.
	runCtx, cancelRuns := context.WithCancel(ctx)
	defer cancelRuns()
	var failOnce sync.Once
	var firstErr error
	fail := func(err error) {
		failOnce.Do(func() {
			firstErr = err
			cancelRuns()
		})
	}
	var progressMu sync.Mutex
	runsDone := 0
	var retriesTotal atomic.Int64
	// attemptOne executes one attempt of one run: the untraced pass
	// (MeasureStages), the traced pass with a fresh collector, and the
	// synthesised parse span. Attempt state never leaks across attempts,
	// so a retried run is indistinguishable from a first try.
	attemptOne := func(run, attempt int, parent uint64) (out runOut) {
		if opts.MeasureStages {
			s := tr.Start("simulate.untraced", parent, run)
			_, err := execRun(runCtx, w, opts, prog, probe, run, attempt, nil, nil, 0)
			out.plain = s.End()
			if err != nil {
				out.err = fmt.Errorf("%s run %d (untraced): %w", w.Name, run, err)
				return out
			}
		}
		col := trace.NewCollector(
			trace.WithUnits(opts.Units...),
			trace.WithWarmupIterations(opts.Warmup),
		)
		tracedStart := time.Now()
		res, err := execRun(runCtx, w, opts, prog, probe, run, attempt, col, tr, parent)
		out.traced = time.Since(tracedStart)
		if err != nil {
			out.err = fmt.Errorf("%s run %d: %w", w.Name, run, err)
			return out
		}
		out.col, out.res = col, res
		if opts.MeasureStages {
			// Attribute the traced-minus-untraced overhead of this run
			// to trace parsing, as a synthesised span.
			parse := out.traced - out.plain
			if parse < 0 {
				parse = 0
			}
			tr.Record("parse", parent, run, tracedStart, parse)
		}
		return out
	}
	runOne := func(run int) (out runOut) {
		// Re-check cancellation here, after the run has been claimed:
		// a worker may have been waiting while a sibling failed.
		if err := runCtx.Err(); err != nil {
			out.err = err
			return out
		}
		runSpan := tr.Start("run", simSpan.ID(), run)
		defer runSpan.End()
		for attempt := 0; ; attempt++ {
			out = attemptOne(run, attempt, runSpan.ID())
			if out.err == nil {
				break
			}
			countFailure(opts.Metrics, out.err)
			if runCtx.Err() != nil || attempt >= opts.Retry.Max || !retryable(out.err) {
				lg.Error("run failed", "run", run, "attempt", attempt, "err", out.err)
				return out
			}
			retriesTotal.Add(1)
			probe.retryObserved()
			if opts.Metrics != nil {
				opts.Metrics.Counter("verify_retries_total").Inc()
			}
			delay := opts.Retry.backoff(attempt)
			lg.Warn("run attempt failed; retrying", "run", run, "attempt", attempt,
				"class", errClass(out.err), "backoff", delay, "err", out.err)
			retrySpan := tr.StartDetail("run.retry", runSpan.ID(), run,
				fmt.Sprintf("attempt %d after %s", attempt+1, errClass(out.err)))
			wait := time.NewTimer(delay)
			select {
			case <-runCtx.Done():
				wait.Stop()
				retrySpan.End()
				return out
			case <-wait.C:
			}
			retrySpan.End()
		}
		lg.Debug("run complete", "run", run, "cycles", out.res.Cycles,
			"iterations", len(out.col.Iterations()), "dur", out.traced)
		if opts.OnProgress != nil {
			progressMu.Lock()
			runsDone++
			opts.OnProgress(Progress{
				Run:        run,
				Done:       runsDone,
				Total:      opts.Runs,
				Cycles:     out.res.Cycles,
				Iterations: len(out.col.Iterations()),
				Elapsed:    time.Since(verifyStart),
			})
			progressMu.Unlock()
		}
		return out
	}

	workers := opts.Parallel
	if workers < 0 {
		workers = runtime.NumCPU()
	}
	if workers <= 1 {
		workers = 1
	}
	if workers > opts.Runs {
		workers = opts.Runs
	}

	outs := make([]runOut, opts.Runs)
	doRun := func(run int) {
		out := runOne(run)
		if out.err != nil {
			fail(out.err)
		} else {
			probe.runComplete()
		}
		outs[run] = out
	}
	if workers <= 1 {
		for run := 0; run < opts.Runs; run++ {
			doRun(run)
		}
	} else {
		// A fixed pool of `workers` goroutines claims run indices from a
		// shared counter: at most `workers` goroutines exist (instead of
		// one per run), and a claimed run observes sibling failure via
		// runCtx before it starts simulating.
		var wg sync.WaitGroup
		var nextRun atomic.Int64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					run := int(nextRun.Add(1)) - 1
					if run >= opts.Runs {
						return
					}
					doRun(run)
				}
			}()
		}
		wg.Wait()
	}
	simWall := simSpan.End()
	rep.Retries = int(retriesTotal.Load())

	// Merge in run order so results are identical to a sequential run.
	probe.setStage(StageMerge)
	mergeSpan := tr.Start("merge", root.ID(), -1)
	var plainTime, parseTime time.Duration
	runWall := make([]time.Duration, 0, opts.Runs)
	runSim := make([]time.Duration, 0, opts.Runs)
	runParse := make([]time.Duration, 0, opts.Runs)
	prov := newProvMerger()
	for run := 0; run < opts.Runs; run++ {
		if err := outs[run].err; err != nil {
			// End the enclosing spans so a TraceSink JSONL stream is
			// well-formed even on failure, and surface the error that
			// caused the abort rather than a sibling's cancellation.
			mergeSpan.End()
			root.End()
			probe.setStage(StageFailed)
			if firstErr != nil {
				err = firstErr
			}
			lg.Error("verify failed", "err", err, "elapsed", time.Since(verifyStart))
			return nil, err
		}
		rep.Sim.accumulate(outs[run].res)
		for _, ut := range outs[run].col.Results() {
			full[ut.Unit].Merge(ut.Full)
			noT[ut.Unit].Merge(ut.NoTiming)
			rep.IterHashes[ut.Unit] = append(rep.IterHashes[ut.Unit], ut.IterHashes...)
		}
		for u, n := range outs[run].col.SampleCounts() {
			rep.Samples[u] += n
		}
		// Provenance iteration indices are per run; shift them by the
		// kept iterations merged so far so they stay aligned with
		// rep.Iterations.
		prov.add(outs[run].col.Provenance(), len(rep.Iterations))
		rep.Iterations = append(rep.Iterations, outs[run].col.Iterations()...)
		writers, readers := outs[run].col.Attribution()
		mergeAttribution(rep.StoreWriters, writers)
		mergeAttribution(rep.LoadReaders, readers)

		runWall = append(runWall, outs[run].traced)
		if opts.MeasureStages {
			plainTime += outs[run].plain
			parse := outs[run].traced - outs[run].plain
			if parse < 0 {
				parse = 0
			}
			parseTime += parse
			runSim = append(runSim, outs[run].plain)
			runParse = append(runParse, parse)
		}
	}
	rep.Provenance = prov.flatten(opts.Units)
	mergeSpan.End()
	rep.SimCycles = rep.Sim.Cycles
	rep.Stages.RunWall = telemetry.Stats(runWall)
	if opts.MeasureStages {
		rep.Stages.Simulate = plainTime
		rep.Stages.Parse = parseTime
		rep.Stages.RunSim = telemetry.Stats(runSim)
		rep.Stages.RunParse = telemetry.Stats(runParse)
	} else {
		rep.Stages.Simulate = simWall
	}

	if len(rep.Iterations) == 0 {
		root.End()
		probe.setStage(StageFailed)
		lg.Error("verify failed", "err", ErrNoIterations)
		return nil, fmt.Errorf("%s: %w", w.Name, ErrNoIterations)
	}

	// Stage 3: statistical correlation analysis.
	probe.setStage(StageStats)
	statsSpan := tr.Start("stats", root.ID(), -1)
	for _, u := range opts.Units {
		us := tr.StartDetail("stats.unit", statsSpan.ID(), -1, u.String())
		ur := UnitResult{
			Unit:          u,
			Table:         tableOf(full[u]),
			Store:         full[u],
			StoreNoTiming: noT[u],
		}
		ur.Assoc = ur.Table.Analyze()
		ur.AssocNoTiming = tableOf(noT[u]).Analyze()
		rep.Units = append(rep.Units, ur)
		us.End()
	}
	rep.Stages.Stats = statsSpan.End()

	// Stage 4: feature extraction for correlated units only (the paper
	// runs uniqueness/ordering only where correlation is observed).
	probe.setStage(StageExtract)
	extractSpan := tr.Start("extract", root.ID(), -1)
	for i := range rep.Units {
		ur := &rep.Units[i]
		if !ur.Assoc.Significant() {
			continue
		}
		us := tr.StartDetail("extract.unit", extractSpan.ID(), -1, ur.Unit.String())
		ur.UniqueFeatures = features.Uniqueness(ur.Store)
		ur.Ordering = features.Ordering(ur.StoreNoTiming)
		us.End()
	}
	rep.Stages.Extract = extractSpan.End()
	root.End()
	rep.Spans = tr.Spans()
	probe.setStage(StageDone)

	if opts.Metrics != nil {
		recordMetrics(opts.Metrics, rep, runWall)
	}
	leakyNames := make([]string, 0, len(rep.Units))
	for _, u := range rep.LeakyUnits() {
		leakyNames = append(leakyNames, u.Unit.String())
	}
	lg.Info("verify complete",
		"leaky", rep.AnyLeak(), "leaky_units", leakyNames,
		"iterations", len(rep.Iterations), "sim_cycles", rep.SimCycles,
		"retries", rep.Retries,
		"elapsed", time.Since(verifyStart),
		"stage_simulate", rep.Stages.Simulate, "stage_stats", rep.Stages.Stats,
		"stage_extract", rep.Stages.Extract)
	if opts.Cache != nil {
		opts.Cache.Put(cacheKey, rep)
	}
	return rep, nil
}

// recordMetrics folds one finished verification into a registry.
func recordMetrics(m *telemetry.Registry, rep *Report, runWall []time.Duration) {
	m.Counter("verify_total").Inc()
	m.Counter("verify_runs_total").Add(uint64(rep.Runs))
	m.Counter("verify_iterations_total").Add(uint64(len(rep.Iterations)))
	m.Counter("sim_cycles_total").Add(uint64(rep.Sim.Cycles))
	m.Counter("sim_instructions_total").Add(rep.Sim.Instructions)
	m.Counter("sim_branches_total").Add(rep.Sim.Branches)
	m.Counter("sim_branch_mispredicts_total").Add(rep.Sim.BranchMispredicts)
	m.Counter("sim_dcache_hits_total").Add(rep.Sim.DCacheHits)
	m.Counter("sim_dcache_misses_total").Add(rep.Sim.DCacheMisses)
	m.Counter("sim_tlb_misses_total").Add(rep.Sim.TLBMisses)
	m.Counter("sim_nlp_prefetches_total").Add(rep.Sim.Prefetches)
	m.Counter("sim_nlp_useful_total").Add(rep.Sim.PrefetchesUseful)
	m.Counter("sim_nlp_mispredicts_total").Add(rep.Sim.PrefetchesUseless)
	m.Counter("sim_spf_prefetches_total").Add(rep.Sim.StridePrefetches)
	m.Counter("sim_spf_useful_total").Add(rep.Sim.StridePrefetchesUseful)
	m.Counter("sim_spf_mispredicts_total").Add(rep.Sim.StridePrefetchesUseless)
	m.Counter("sim_lsu_replays_total").Add(rep.Sim.LSUReplays)
	m.Gauge("sim_ipc").Set(rep.Sim.IPC())
	m.Gauge("sim_mshr_highwater").SetMax(float64(rep.Sim.MSHRHighWater))
	for u, n := range rep.Samples {
		m.Counter("trace_samples_total." + u.String()).Add(n)
	}
	runHist := m.Histogram("verify_run_seconds", telemetry.LatencyBuckets())
	for _, d := range runWall {
		runHist.Observe(d.Seconds())
	}
	lb := telemetry.LatencyBuckets()
	m.Histogram("verify_stage_seconds.assemble", lb).Observe(rep.Stages.Assemble.Seconds())
	m.Histogram("verify_stage_seconds.simulate", lb).Observe(rep.Stages.Simulate.Seconds())
	m.Histogram("verify_stage_seconds.parse", lb).Observe(rep.Stages.Parse.Seconds())
	m.Histogram("verify_stage_seconds.stats", lb).Observe(rep.Stages.Stats.Seconds())
	m.Histogram("verify_stage_seconds.extract", lb).Observe(rep.Stages.Extract.Seconds())
}

// execRun performs one simulation run attempt from reset state. When tr
// is non-nil, machine construction and execution are recorded as child
// spans of parent. A panic anywhere in the attempt — setup, probes, an
// injected fault — is recovered into a transient faults.PanicError with
// the stack captured, so one crashing attempt never takes down the
// worker pool. When a flight recorder is armed, any failure (including
// a recovered panic) is wrapped in a *RunFailure carrying the
// post-mortem dump of the machine's final cycles.
func execRun(ctx context.Context, w Workload, opts Options, prog *asm.Program, probe *RunProbe,
	run, attempt int, col *trace.Collector, tr *telemetry.SpanTracer, parent uint64) (res sim.Result, err error) {
	var m *sim.Machine
	defer func() {
		if r := recover(); r != nil {
			err = faults.Transient(&faults.PanicError{Value: r, Stack: debug.Stack()})
		}
		if err != nil && opts.FlightRecorderFrames > 0 && m != nil {
			err = &RunFailure{Run: run, Attempt: attempt, Dump: m.FlightDump(), Err: err}
		}
	}()
	setupSpan := tr.Start("machine-setup", parent, run)
	m, err = sim.New(opts.Config)
	if err != nil {
		setupSpan.End()
		return sim.Result{}, err
	}
	if err := m.LoadProgram(prog); err != nil {
		setupSpan.End()
		return sim.Result{}, err
	}
	if w.Setup != nil {
		if err := w.Setup(opts.SeedOffset+run, m, prog); err != nil {
			setupSpan.End()
			return sim.Result{}, fmt.Errorf("setup: %w", err)
		}
	}
	setupSpan.End()
	if col != nil {
		m.SetTracer(col)
	}
	if opts.FaultHook != nil {
		m.SetFaultHook(opts.FaultHook(run, attempt))
	}
	if opts.FlightRecorderFrames > 0 {
		m.SetFlightRecorder(sim.NewFlightRecorder(opts.FlightRecorderFrames))
	}
	if probe != nil {
		m.SetCycleObserver(probe.AddCycles)
	}
	if opts.RunTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.RunTimeout)
		defer cancel()
	}
	execSpan := tr.Start("execute", parent, run)
	res, err = m.RunContext(ctx, opts.MaxCycles, opts.Watchdog)
	execSpan.End()
	if err != nil {
		return res, err
	}
	if res.ExitCode != 0 {
		return res, fmt.Errorf("program exited with code %d", res.ExitCode)
	}
	return res, nil
}

// retryable reports whether a failed attempt may be re-executed:
// watchdog stalls, run-deadline expiries and errors the faults package
// marks transient (injected transients, recovered panics) are; plain
// cancellation — a sibling failed, or the caller gave up — never is,
// even though its chain may carry transient markers.
func retryable(err error) bool {
	switch {
	case errors.Is(err, sim.ErrStalled), errors.Is(err, context.DeadlineExceeded):
		return true
	case errors.Is(err, context.Canceled):
		return false
	}
	return faults.IsTransient(err)
}

// errClass names the failure mode of a run attempt for logs and spans.
func errClass(err error) string {
	var pe *faults.PanicError
	switch {
	case errors.As(err, &pe):
		return "panic"
	case errors.Is(err, sim.ErrStalled):
		return "stall"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case faults.IsTransient(err):
		return "transient"
	}
	return "error"
}

// countFailure attributes one failed run attempt to the matching live
// telemetry counter.
func countFailure(m *telemetry.Registry, err error) {
	if m == nil {
		return
	}
	var pe *faults.PanicError
	switch {
	case errors.As(err, &pe):
		m.Counter("verify_run_panics_total").Inc()
	case errors.Is(err, sim.ErrStalled):
		m.Counter("verify_run_stalls_total").Inc()
	case errors.Is(err, context.DeadlineExceeded):
		m.Counter("verify_run_timeouts_total").Inc()
	default:
		m.Counter("verify_run_errors_total").Inc()
	}
}

// provMerger accumulates per-unit provenance streams across runs,
// rebasing per-run iteration indices onto the merged iteration order.
type provMerger struct {
	byUnit map[trace.Unit]*provUnitAcc
}

type provUnitAcc struct {
	direct  bool
	streams map[uint64]*trace.ProvStream
	keys    []uint64 // insertion-ordered; sorted at flatten time
}

func newProvMerger() *provMerger {
	return &provMerger{byUnit: make(map[trace.Unit]*provUnitAcc)}
}

// add folds one run's provenance in, shifting iteration indices by
// iterBase (the kept iterations merged before this run).
func (pm *provMerger) add(prov []trace.UnitProvenance, iterBase int) {
	for _, up := range prov {
		acc := pm.byUnit[up.Unit]
		if acc == nil {
			acc = &provUnitAcc{direct: up.Direct, streams: make(map[uint64]*trace.ProvStream)}
			pm.byUnit[up.Unit] = acc
		}
		for _, s := range up.Streams {
			dst := acc.streams[s.Key]
			if dst == nil {
				dst = &trace.ProvStream{Key: s.Key}
				acc.streams[s.Key] = dst
				acc.keys = append(acc.keys, s.Key)
			}
			dst.Events += s.Events
			for i, it := range s.Iters {
				dst.Iters = append(dst.Iters, it+int32(iterBase))
				dst.Hashes = append(dst.Hashes, s.Hashes[i])
			}
		}
	}
}

// flatten emits the merged provenance in tracked-unit order with keys
// ascending, matching the determinism of a single-run collection.
func (pm *provMerger) flatten(units []trace.Unit) []trace.UnitProvenance {
	out := make([]trace.UnitProvenance, 0, len(pm.byUnit))
	for _, u := range units {
		acc := pm.byUnit[u]
		if acc == nil {
			continue
		}
		sort.Slice(acc.keys, func(i, j int) bool { return acc.keys[i] < acc.keys[j] })
		up := trace.UnitProvenance{Unit: u, Direct: acc.direct}
		up.Streams = make([]trace.ProvStream, 0, len(acc.keys))
		for _, k := range acc.keys {
			up.Streams = append(up.Streams, *acc.streams[k])
		}
		out = append(out, up)
	}
	return out
}

// mergeAttribution unions sorted PC lists per address. Both sides hold
// strictly increasing lists (trace.Collector.Attribution sorts its
// output, and dst only ever holds results of previous merges), so a
// linear two-pointer merge replaces the former quadratic membership
// scan plus insertion sort while producing the identical sorted union.
func mergeAttribution(dst, src map[uint64][]uint64) {
	for addr, pcs := range src {
		dst[addr] = mergeSortedUnique(dst[addr], pcs)
	}
}

// mergeSortedUnique returns the sorted, deduplicated union of two
// strictly increasing lists. The result never aliases b, so callers may
// retain it independently of the source map.
func mergeSortedUnique(a, b []uint64) []uint64 {
	if len(b) == 0 {
		return a
	}
	out := make([]uint64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// tableOf builds the contingency table of a snapshot store. Classes
// are inserted in sorted order: the chi-squared and mutual-information
// sums accumulate floats in table insertion order, so iterating the
// CountByClass map directly would perturb their low-order bits from
// run to run.
func tableOf(s *snapshot.Store) *stats.Table {
	t := stats.NewTable()
	for _, e := range s.Entries() {
		classes := make([]uint64, 0, len(e.CountByClass))
		for class := range e.CountByClass {
			classes = append(classes, class)
		}
		sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
		for _, class := range classes {
			t.Add(class, e.Hash, e.CountByClass[class])
		}
	}
	return t
}
