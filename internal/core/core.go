// Package core implements the MicroSampler verification pipeline — the
// paper's primary contribution (Section V, Fig. 1):
//
//  1. run the code under test on the cycle-level BOOM simulator while
//     tracing microarchitectural state every cycle,
//  2. partition the trace into per-iteration snapshots labeled with the
//     secret class values,
//  3. build per-unit contingency tables of snapshot-hash frequencies and
//     measure the class association with Cramér's V validated by the
//     chi-squared p-value,
//  4. for units with significant correlation, extract the features
//     (addresses, PCs, activity) responsible via feature uniqueness and
//     feature ordering.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"microsampler/internal/asm"
	"microsampler/internal/features"
	"microsampler/internal/sim"
	"microsampler/internal/snapshot"
	"microsampler/internal/stats"
	"microsampler/internal/trace"
)

// Workload is a program under verification plus its input generator.
type Workload struct {
	// Name identifies the case study (e.g. "ME-V1-CV").
	Name string
	// Source is the RV64 assembly of the program. It must delimit the
	// security-critical region with roi.begin/roi.end and label each
	// algorithmic iteration with iter.begin <class-reg> / iter.end.
	Source string
	// Setup initialises memory for one run (e.g. writes the key and
	// operands at the program's data symbols). run is the 0-based run
	// index. May be nil.
	Setup func(run int, m *sim.Machine, prog *asm.Program) error
}

// Options configures a verification.
type Options struct {
	// Config is the core configuration (default MegaBoom).
	Config sim.Config
	// Units to track (default: all Table IV units).
	Units []trace.Unit
	// Runs is the number of independent simulations, each starting from
	// reset state with fresh inputs (default 1).
	Runs int
	// Warmup drops the first n labeled iterations of each run (default 2).
	Warmup int
	// MaxCycles bounds each run (default 20M).
	MaxCycles int64
	// MeasureStages makes Verify execute each run twice — once without
	// tracing — so that the Table VI stage breakdown can separate pure
	// simulation time from trace parsing time.
	MeasureStages bool
	// Parallel runs up to this many simulations concurrently (each run
	// is an independent machine). 0 or 1 means sequential; negative
	// means one worker per CPU. Results are identical to a sequential
	// run: merging happens in run order. MeasureStages forces
	// sequential execution so the stage timings stay meaningful.
	Parallel int
}

func (o Options) withDefaults() Options {
	if o.Config.Name == "" {
		o.Config = sim.MegaBoom()
	}
	if len(o.Units) == 0 {
		o.Units = trace.AllUnits()
	}
	if o.Runs == 0 {
		o.Runs = 1
	}
	if o.Warmup == 0 {
		o.Warmup = 2
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 20_000_000
	}
	return o
}

// UnitResult is the verdict for one microarchitectural unit.
type UnitResult struct {
	Unit trace.Unit

	// Assoc measures the class association of the full (timed)
	// snapshots; AssocNoTiming of the consolidated (timing-free) ones.
	Assoc         stats.Association
	AssocNoTiming stats.Association

	// Table is the contingency table behind Assoc.
	Table *stats.Table

	// Root-cause extraction, populated for units with a significant
	// correlation (Section V-C3).
	UniqueFeatures map[uint64][]uint64
	Ordering       []features.OrderingMismatch

	// Store holds the deduplicated snapshots for further inspection.
	Store         *snapshot.Store
	StoreNoTiming *snapshot.Store
}

// Leaky reports the paper's per-unit verdict.
func (u UnitResult) Leaky() bool { return u.Assoc.Leaky() }

// StageTimes is the Table VI breakdown.
type StageTimes struct {
	Simulate time.Duration // 1: RTL-equivalent simulation
	Parse    time.Duration // 2: trace extraction and snapshot generation
	Stats    time.Duration // 3: Cramér's V for all tracked structures
	Extract  time.Duration // 4: feature extraction
}

// Total returns the end-to-end analysis time.
func (s StageTimes) Total() time.Duration {
	return s.Simulate + s.Parse + s.Stats + s.Extract
}

// Report is the complete verification outcome for a workload.
type Report struct {
	Workload   string
	Config     string
	Units      []UnitResult
	Iterations []trace.IterSample
	Runs       int
	Stages     StageTimes
	SimCycles  int64 // total simulated cycles across runs

	// Program is the assembled image, kept for symbolising extracted
	// features (PCs to functions, addresses to data symbols).
	Program *asm.Program
	// StoreWriters and LoadReaders attribute each memory address
	// observed in the region of interest to the PCs that stored/loaded
	// it — the paper's step of tracing leaked addresses back to the
	// code that produced them.
	StoreWriters map[uint64][]uint64
	LoadReaders  map[uint64][]uint64
}

// LeakyUnits returns the units flagged as leaky, in Table IV order.
func (r *Report) LeakyUnits() []UnitResult {
	var out []UnitResult
	for _, u := range r.Units {
		if u.Leaky() {
			out = append(out, u)
		}
	}
	return out
}

// AnyLeak reports whether any unit was flagged.
func (r *Report) AnyLeak() bool { return len(r.LeakyUnits()) > 0 }

// Unit returns the result for a specific unit.
func (r *Report) Unit(u trace.Unit) (UnitResult, bool) {
	for _, ur := range r.Units {
		if ur.Unit == u {
			return ur, true
		}
	}
	return UnitResult{}, false
}

// ErrNoIterations is returned when a workload produced no labeled
// iterations (missing or unreached MARK instructions).
var ErrNoIterations = errors.New("core: workload produced no labeled iterations")

// Verify runs the full MicroSampler pipeline on a workload.
func Verify(w Workload, opts Options) (*Report, error) {
	return VerifyContext(context.Background(), w, opts)
}

// VerifyContext is Verify with cancellation: a cancelled context aborts
// between (not within) simulation runs.
func VerifyContext(ctx context.Context, w Workload, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	prog, err := asm.Assemble(w.Source)
	if err != nil {
		return nil, fmt.Errorf("assemble %s: %w", w.Name, err)
	}

	rep := &Report{
		Workload:     w.Name,
		Config:       opts.Config.Name,
		Runs:         opts.Runs,
		Program:      prog,
		StoreWriters: make(map[uint64][]uint64),
		LoadReaders:  make(map[uint64][]uint64),
	}

	// Stages 1–2: simulate with tracing, accumulating snapshots.
	full := make(map[trace.Unit]*snapshot.Store, len(opts.Units))
	noT := make(map[trace.Unit]*snapshot.Store, len(opts.Units))
	for _, u := range opts.Units {
		full[u] = snapshot.NewStore()
		noT[u] = snapshot.NewStore()
	}

	simStart := time.Now()
	var plainTime time.Duration
	runOne := func(run int) (*trace.Collector, sim.Result, error) {
		if err := ctx.Err(); err != nil {
			return nil, sim.Result{}, err
		}
		col := trace.NewCollector(
			trace.WithUnits(opts.Units...),
			trace.WithWarmupIterations(opts.Warmup),
		)
		res, err := execRun(w, opts, prog, run, col)
		if err != nil {
			return nil, res, fmt.Errorf("%s run %d: %w", w.Name, run, err)
		}
		return col, res, nil
	}

	workers := opts.Parallel
	if workers < 0 {
		workers = runtime.NumCPU()
	}
	if opts.MeasureStages || workers <= 1 {
		workers = 1
	}

	type runOut struct {
		col *trace.Collector
		res sim.Result
		err error
	}
	outs := make([]runOut, opts.Runs)
	if workers == 1 {
		for run := 0; run < opts.Runs; run++ {
			if opts.MeasureStages {
				t0 := time.Now()
				if _, err := execRun(w, opts, prog, run, nil); err != nil {
					return nil, fmt.Errorf("%s run %d (untraced): %w", w.Name, run, err)
				}
				plainTime += time.Since(t0)
			}
			outs[run].col, outs[run].res, outs[run].err = runOne(run)
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for run := 0; run < opts.Runs; run++ {
			wg.Add(1)
			go func(run int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				outs[run].col, outs[run].res, outs[run].err = runOne(run)
			}(run)
		}
		wg.Wait()
	}
	// Merge in run order so results are identical to a sequential run.
	for run := 0; run < opts.Runs; run++ {
		if err := outs[run].err; err != nil {
			return nil, err
		}
		rep.SimCycles += outs[run].res.Cycles
		for _, ut := range outs[run].col.Results() {
			full[ut.Unit].Merge(ut.Full)
			noT[ut.Unit].Merge(ut.NoTiming)
		}
		rep.Iterations = append(rep.Iterations, outs[run].col.Iterations()...)
		writers, readers := outs[run].col.Attribution()
		mergeAttribution(rep.StoreWriters, writers)
		mergeAttribution(rep.LoadReaders, readers)
	}
	tracedTime := time.Since(simStart) - plainTime
	if opts.MeasureStages {
		rep.Stages.Simulate = plainTime
		rep.Stages.Parse = tracedTime - plainTime
		if rep.Stages.Parse < 0 {
			rep.Stages.Parse = 0
		}
	} else {
		rep.Stages.Simulate = tracedTime
	}

	if len(rep.Iterations) == 0 {
		return nil, fmt.Errorf("%s: %w", w.Name, ErrNoIterations)
	}

	// Stage 3: statistical correlation analysis.
	statsStart := time.Now()
	for _, u := range opts.Units {
		ur := UnitResult{
			Unit:          u,
			Table:         tableOf(full[u]),
			Store:         full[u],
			StoreNoTiming: noT[u],
		}
		ur.Assoc = ur.Table.Analyze()
		ur.AssocNoTiming = tableOf(noT[u]).Analyze()
		rep.Units = append(rep.Units, ur)
	}
	rep.Stages.Stats = time.Since(statsStart)

	// Stage 4: feature extraction for correlated units only (the paper
	// runs uniqueness/ordering only where correlation is observed).
	extractStart := time.Now()
	for i := range rep.Units {
		ur := &rep.Units[i]
		if !ur.Assoc.Significant() {
			continue
		}
		ur.UniqueFeatures = features.Uniqueness(ur.Store)
		ur.Ordering = features.Ordering(ur.StoreNoTiming)
	}
	rep.Stages.Extract = time.Since(extractStart)
	return rep, nil
}

// execRun performs one simulation run from reset state.
func execRun(w Workload, opts Options, prog *asm.Program, run int,
	col *trace.Collector) (sim.Result, error) {
	m, err := sim.New(opts.Config)
	if err != nil {
		return sim.Result{}, err
	}
	if err := m.LoadProgram(prog); err != nil {
		return sim.Result{}, err
	}
	if w.Setup != nil {
		if err := w.Setup(run, m, prog); err != nil {
			return sim.Result{}, fmt.Errorf("setup: %w", err)
		}
	}
	if col != nil {
		m.SetTracer(col)
	}
	res, err := m.Run(opts.MaxCycles)
	if err != nil {
		return res, err
	}
	if res.ExitCode != 0 {
		return res, fmt.Errorf("program exited with code %d", res.ExitCode)
	}
	return res, nil
}

// mergeAttribution unions sorted PC lists per address.
func mergeAttribution(dst, src map[uint64][]uint64) {
	for addr, pcs := range src {
		have := dst[addr]
		for _, pc := range pcs {
			found := false
			for _, h := range have {
				if h == pc {
					found = true
					break
				}
			}
			if !found {
				have = append(have, pc)
			}
		}
		for i := 1; i < len(have); i++ {
			for j := i; j > 0 && have[j] < have[j-1]; j-- {
				have[j], have[j-1] = have[j-1], have[j]
			}
		}
		dst[addr] = have
	}
}

// tableOf builds the contingency table of a snapshot store.
func tableOf(s *snapshot.Store) *stats.Table {
	t := stats.NewTable()
	for _, e := range s.Entries() {
		for class, n := range e.CountByClass {
			t.Add(class, e.Hash, n)
		}
	}
	return t
}
