package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"microsampler/internal/asm"
	"microsampler/internal/sim"
	"microsampler/internal/telemetry"
	"microsampler/internal/trace"
)

// verifyNamed runs the pipeline on a named workload built by the
// workloads package; to avoid an import cycle in tests, the assembly is
// duplicated here only for the tiny smoke workload — full case-study
// verdicts are tested in the root package. This file focuses on the
// pipeline mechanics.

const smokeWorkload = `
	.text
_start:
	li   s2, 8            # iterations
	roi.begin
loop:
	andi s3, s2, 1
	iter.begin s3
	mul  t0, s2, s2
	iter.end
	addi s2, s2, -1
	bnez s2, loop
	roi.end
	li   a0, 0
	li   a7, 93
	ecall
`

// leakWorkload executes a secret-dependent extra instruction: iteration
// class 1 performs an additional multiply.
const leakWorkload = `
	.text
_start:
	li   s2, 40
	roi.begin
loop:
	andi s3, s2, 1
	iter.begin s3
	mul  t0, s2, s2
	beqz s3, skip
	mul  t0, t0, s2
skip:
	iter.end
	addi s2, s2, -1
	bnez s2, loop
	roi.end
	li   a0, 0
	li   a7, 93
	ecall
`

func TestVerifySmoke(t *testing.T) {
	rep, err := Verify(Workload{Name: "smoke", Source: smokeWorkload},
		Options{Runs: 2, Warmup: 1, Config: sim.SmallBoom()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workload != "smoke" || rep.Config != "SmallBoom" || rep.Runs != 2 {
		t.Errorf("report metadata wrong: %+v", rep)
	}
	if len(rep.Units) != len(trace.AllUnits()) {
		t.Errorf("got %d unit results, want %d", len(rep.Units), len(trace.AllUnits()))
	}
	// 8 iterations per run, 1 warmup dropped, 2 runs.
	if len(rep.Iterations) != 14 {
		t.Errorf("iterations = %d want 14", len(rep.Iterations))
	}
	if rep.SimCycles == 0 {
		t.Error("no simulation cycles recorded")
	}
}

func TestVerifyDetectsControlFlowLeak(t *testing.T) {
	rep, err := Verify(Workload{Name: "leak", Source: leakWorkload},
		Options{Runs: 3, Warmup: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AnyLeak() {
		t.Fatal("secret-dependent multiply not detected")
	}
	mul, ok := rep.Unit(trace.EUUMUL)
	if !ok {
		t.Fatal("EUU-MUL result missing")
	}
	if !mul.Leaky() {
		t.Errorf("EUU-MUL not flagged: %v", mul.Assoc)
	}
	// The extra multiply's PC must surface as a unique feature of the
	// class-1 iterations.
	if mul.UniqueFeatures == nil {
		t.Fatal("no feature extraction for leaky unit")
	}
	if len(mul.UniqueFeatures[1]) == 0 {
		t.Errorf("class 1 should have unique MUL PCs, got %v", mul.UniqueFeatures)
	}
}

func TestVerifyCleanWorkloadHasNoLeaks(t *testing.T) {
	rep, err := Verify(Workload{Name: "smoke", Source: smokeWorkload},
		Options{Runs: 3, Warmup: 2})
	if err != nil {
		t.Fatal(err)
	}
	if leaks := rep.LeakyUnits(); len(leaks) != 0 {
		names := make([]string, 0, len(leaks))
		for _, l := range leaks {
			names = append(names, l.Unit.String())
		}
		t.Errorf("clean workload flagged leaky: %v", names)
	}
}

func TestVerifyUnitSubset(t *testing.T) {
	rep, err := Verify(Workload{Name: "smoke", Source: smokeWorkload},
		Options{Runs: 1, Warmup: 1, Units: []trace.Unit{trace.ROBPC, trace.EUUALU}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Units) != 2 {
		t.Fatalf("unit subset not honoured: %d results", len(rep.Units))
	}
	if _, ok := rep.Unit(trace.SQADDR); ok {
		t.Error("untracked unit present in report")
	}
}

func TestVerifyMeasureStages(t *testing.T) {
	rep, err := Verify(Workload{Name: "smoke", Source: smokeWorkload},
		Options{Runs: 1, Warmup: 1, MeasureStages: true, Config: sim.SmallBoom()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stages.Simulate <= 0 {
		t.Error("simulate stage time missing")
	}
	if rep.Stages.Total() < rep.Stages.Simulate {
		t.Error("total stage time inconsistent")
	}
}

func TestVerifyErrors(t *testing.T) {
	t.Run("assembly error", func(t *testing.T) {
		_, err := Verify(Workload{Name: "bad", Source: "_start:\n bogus\n"},
			Options{})
		if err == nil || !strings.Contains(err.Error(), "unknown mnemonic") {
			t.Errorf("want assembly error, got %v", err)
		}
	})
	t.Run("no iterations", func(t *testing.T) {
		_, err := Verify(Workload{Name: "empty", Source: `
_start:
	li a0, 0
	li a7, 93
	ecall
`}, Options{Runs: 1, Warmup: 0})
		if !errors.Is(err, ErrNoIterations) {
			t.Errorf("want ErrNoIterations, got %v", err)
		}
	})
	t.Run("nonzero exit", func(t *testing.T) {
		_, err := Verify(Workload{Name: "fail", Source: `
_start:
	roi.begin
	li  t0, 1
	iter.begin t0
	iter.end
	roi.end
	li a0, 7
	li a7, 93
	ecall
`}, Options{Runs: 1, Warmup: 0})
		if err == nil || !strings.Contains(err.Error(), "exited with code 7") {
			t.Errorf("want exit-code error, got %v", err)
		}
	})
	t.Run("setup error", func(t *testing.T) {
		w := Workload{
			Name:   "s",
			Source: smokeWorkload,
			Setup: func(int, *sim.Machine, *asm.Program) error {
				return errors.New("boom")
			},
		}
		_, err := Verify(w, Options{Runs: 1})
		if err == nil || !strings.Contains(err.Error(), "setup: boom") {
			t.Errorf("want setup error, got %v", err)
		}
	})
}

func TestVerifyNegativeOptions(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want string
	}{
		{"negative runs", Options{Runs: -1}, "Runs"},
		{"negative max cycles", Options{MaxCycles: -5}, "MaxCycles"},
		{"parallel below auto", Options{Parallel: -2}, "Parallel"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Verify(Workload{Name: "neg", Source: smokeWorkload}, tc.opts)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("opts %+v: want error mentioning %q, got %v", tc.opts, tc.want, err)
			}
		})
	}
	// ParallelAuto itself must remain valid.
	if _, err := Verify(Workload{Name: "auto", Source: smokeWorkload},
		Options{Runs: 2, Warmup: 1, Config: sim.SmallBoom(), Parallel: ParallelAuto}); err != nil {
		t.Errorf("ParallelAuto rejected: %v", err)
	}
}

func TestParallelFailureCancelsSiblings(t *testing.T) {
	// Run 0 fails during setup; the remaining runs would each simulate a
	// long loop. With failure propagation, the pool must stop claiming
	// queued runs: only the runs already in flight when the failure hits
	// can still execute, so far fewer than Runs setups are observed.
	const runs = 16
	var started atomic.Int64
	w := Workload{
		Name:   "failfast",
		Source: leakWorkload,
		Setup: func(run int, m *sim.Machine, prog *asm.Program) error {
			started.Add(1)
			if run == 0 {
				return errors.New("injected failure")
			}
			return nil
		},
	}
	start := time.Now()
	_, err := Verify(w, Options{Runs: runs, Warmup: 1, Config: sim.SmallBoom(), Parallel: 2})
	if err == nil || !strings.Contains(err.Error(), "injected failure") {
		t.Fatalf("want the injected failure surfaced, got %v", err)
	}
	// Worker pool of 2: run 0 fails immediately; at most a handful of
	// sibling runs can have started before cancellation lands.
	if n := started.Load(); n > 4 {
		t.Errorf("%d of %d runs started after failure, cancellation did not propagate", n, runs)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("failure took %v to surface; siblings were not cancelled", elapsed)
	}
}

func TestSequentialFailureSkipsRemainingRuns(t *testing.T) {
	var started atomic.Int64
	w := Workload{
		Name:   "failfast-seq",
		Source: smokeWorkload,
		Setup: func(run int, m *sim.Machine, prog *asm.Program) error {
			started.Add(1)
			if run == 1 {
				return errors.New("injected failure")
			}
			return nil
		},
	}
	_, err := Verify(w, Options{Runs: 8, Warmup: 1, Config: sim.SmallBoom()})
	if err == nil || !strings.Contains(err.Error(), "injected failure") {
		t.Fatalf("want the injected failure surfaced, got %v", err)
	}
	if n := started.Load(); n != 2 {
		t.Errorf("%d runs started, want 2 (runs after the failure must be skipped)", n)
	}
}

// spanNames decodes a JSONL span sink into the multiset of span names.
func spanNames(t *testing.T, sink string) map[string]int {
	t.Helper()
	names := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(sink), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		name, _ := m["name"].(string)
		names[name]++
	}
	return names
}

func TestSpansClosedOnFailure(t *testing.T) {
	t.Run("run failure", func(t *testing.T) {
		var buf syncBuffer
		_, err := Verify(Workload{Name: "fail", Source: `
_start:
	roi.begin
	li  t0, 1
	iter.begin t0
	iter.end
	roi.end
	li a0, 7
	li a7, 93
	ecall
`}, Options{Runs: 2, Warmup: 0, Config: sim.SmallBoom(), TraceSink: &buf})
		if err == nil {
			t.Fatal("want run failure")
		}
		names := spanNames(t, buf.String())
		for _, want := range []string{"verify", "simulate", "merge"} {
			if names[want] == 0 {
				t.Errorf("span %q not closed on the failing path (sink: %v)", want, names)
			}
		}
	})
	t.Run("assemble failure", func(t *testing.T) {
		var buf syncBuffer
		_, err := Verify(Workload{Name: "bad", Source: "_start:\n bogus\n"},
			Options{TraceSink: &buf})
		if err == nil {
			t.Fatal("want assembly failure")
		}
		names := spanNames(t, buf.String())
		if names["verify"] == 0 || names["assemble"] == 0 {
			t.Errorf("verify/assemble spans not closed: %v", names)
		}
	})
	t.Run("no iterations", func(t *testing.T) {
		var buf syncBuffer
		_, err := Verify(Workload{Name: "empty", Source: `
_start:
	li a0, 0
	li a7, 93
	ecall
`}, Options{Runs: 1, Warmup: 0, Config: sim.SmallBoom(), TraceSink: &buf})
		if !errors.Is(err, ErrNoIterations) {
			t.Fatalf("want ErrNoIterations, got %v", err)
		}
		names := spanNames(t, buf.String())
		for _, want := range []string{"verify", "simulate", "merge"} {
			if names[want] == 0 {
				t.Errorf("span %q not closed on the no-iterations path: %v", want, names)
			}
		}
	})
}

func TestMergeAttribution(t *testing.T) {
	// Reference implementation: the former quadratic membership scan.
	ref := func(dst, src map[uint64][]uint64) {
		for addr, pcs := range src {
			have := dst[addr]
			for _, pc := range pcs {
				found := false
				for _, h := range have {
					if h == pc {
						found = true
						break
					}
				}
				if !found {
					have = append(have, pc)
				}
			}
			for i := 1; i < len(have); i++ {
				for j := i; j > 0 && have[j] < have[j-1]; j-- {
					have[j], have[j-1] = have[j-1], have[j]
				}
			}
			dst[addr] = have
		}
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		got := map[uint64][]uint64{}
		want := map[uint64][]uint64{}
		for merge := 0; merge < 4; merge++ {
			src := map[uint64][]uint64{}
			for a := 0; a < 5; a++ {
				addr := uint64(rng.Intn(6))
				n := rng.Intn(5)
				set := map[uint64]struct{}{}
				for i := 0; i < n; i++ {
					set[uint64(rng.Intn(10))] = struct{}{}
				}
				pcs := make([]uint64, 0, len(set))
				for pc := range set {
					pcs = append(pcs, pc)
				}
				sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
				src[addr] = pcs
			}
			srcCopy := map[uint64][]uint64{}
			for a, pcs := range src {
				srcCopy[a] = append([]uint64(nil), pcs...)
			}
			mergeAttribution(got, src)
			ref(want, srcCopy)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d addrs, want %d", trial, len(got), len(want))
		}
		for addr, pcs := range want {
			g := got[addr]
			if len(g) != len(pcs) {
				t.Fatalf("trial %d addr %d: %v want %v", trial, addr, g, pcs)
			}
			for i := range pcs {
				if g[i] != pcs[i] {
					t.Fatalf("trial %d addr %d: %v want %v", trial, addr, g, pcs)
				}
			}
		}
	}
}

func TestVerifyDeterministic(t *testing.T) {
	opts := Options{Runs: 2, Warmup: 1, Config: sim.SmallBoom()}
	r1, err := Verify(Workload{Name: "leak", Source: leakWorkload}, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Verify(Workload{Name: "leak", Source: leakWorkload}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.SimCycles != r2.SimCycles {
		t.Errorf("cycles differ: %d vs %d", r1.SimCycles, r2.SimCycles)
	}
	for i := range r1.Units {
		if r1.Units[i].Assoc.V != r2.Units[i].Assoc.V ||
			r1.Units[i].Assoc.P != r2.Units[i].Assoc.P {
			t.Errorf("unit %v stats differ across identical runs", r1.Units[i].Unit)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	seq, err := Verify(Workload{Name: "leak", Source: leakWorkload},
		Options{Runs: 4, Warmup: 1, Config: sim.SmallBoom()})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Verify(Workload{Name: "leak", Source: leakWorkload},
		Options{Runs: 4, Warmup: 1, Config: sim.SmallBoom(), Parallel: -1})
	if err != nil {
		t.Fatal(err)
	}
	if seq.SimCycles != par.SimCycles {
		t.Errorf("cycles differ: %d vs %d", seq.SimCycles, par.SimCycles)
	}
	if len(seq.Iterations) != len(par.Iterations) {
		t.Fatalf("iteration counts differ")
	}
	for i := range seq.Iterations {
		if seq.Iterations[i] != par.Iterations[i] {
			t.Fatalf("iteration %d differs: %+v vs %+v",
				i, seq.Iterations[i], par.Iterations[i])
		}
	}
	for i := range seq.Units {
		if seq.Units[i].Assoc != par.Units[i].Assoc {
			t.Errorf("unit %v stats differ: %+v vs %+v",
				seq.Units[i].Unit, seq.Units[i].Assoc, par.Units[i].Assoc)
		}
	}
}

func TestVerifyContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := VerifyContext(ctx, Workload{Name: "leak", Source: leakWorkload},
		Options{Runs: 2, Config: sim.SmallBoom()})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("want context.Canceled, got %v", err)
	}
}

func TestIterationClassesBalanced(t *testing.T) {
	rep, err := Verify(Workload{Name: "leak", Source: leakWorkload},
		Options{Runs: 1, Warmup: 2, Config: sim.SmallBoom()})
	if err != nil {
		t.Fatal(err)
	}
	count := map[uint64]int{}
	for _, it := range rep.Iterations {
		count[it.Class]++
		if it.Cycles <= 0 {
			t.Errorf("nonpositive iteration length: %+v", it)
		}
	}
	if count[0] == 0 || count[1] == 0 {
		t.Errorf("classes unbalanced: %v", count)
	}
}

func TestMemoryAttribution(t *testing.T) {
	src := `
	.data
buf: .zero 64
	.text
_start:
	la   s2, buf
	li   s3, 6
	roi.begin
loop:
	andi s4, s3, 1
	iter.begin s4
	sd   s3, 0(s2)
	ld   t0, 0(s2)
	iter.end
	addi s3, s3, -1
	bnez s3, loop
	roi.end
	li a0, 0
	li a7, 93
	ecall
`
	rep, err := Verify(Workload{Name: "attr", Source: src},
		Options{Runs: 1, Warmup: 1, Config: sim.SmallBoom()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Program == nil {
		t.Fatal("program missing from report")
	}
	bufAddr := rep.Program.MustSymbol("buf")
	writers := rep.StoreWriters[bufAddr]
	readers := rep.LoadReaders[bufAddr]
	if len(writers) == 0 {
		t.Fatal("no writer PCs attributed to buf")
	}
	if len(readers) == 0 {
		t.Fatal("no reader PCs attributed to buf")
	}
	if sym := rep.Program.SymbolAt(writers[0]); sym != "loop+0x8" {
		t.Errorf("writer PC symbol = %q want loop+0x8", sym)
	}
	if sym := rep.Program.DataSymbolAt(bufAddr); sym != "buf" {
		t.Errorf("data symbol = %q want buf", sym)
	}
}

func TestWarmupDefaultAndSentinel(t *testing.T) {
	defaulted := func(o Options) Options {
		t.Helper()
		out, err := o.withDefaults()
		if err != nil {
			t.Fatalf("withDefaults(%+v): %v", o, err)
		}
		return out
	}
	if got := defaulted(Options{}).Warmup; got != 2 {
		t.Errorf("zero Warmup should default to 2, got %d", got)
	}
	if got := defaulted(Options{Warmup: NoWarmup}).Warmup; got != 0 {
		t.Errorf("NoWarmup should yield 0, got %d", got)
	}
	if got := defaulted(Options{Warmup: 5}).Warmup; got != 5 {
		t.Errorf("explicit Warmup clobbered: %d", got)
	}
	// End-to-end: NoWarmup keeps every labeled iteration (8 per run).
	rep, err := Verify(Workload{Name: "smoke", Source: smokeWorkload},
		Options{Runs: 1, Warmup: NoWarmup, Config: sim.SmallBoom()})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Iterations) != 8 {
		t.Errorf("NoWarmup kept %d iterations, want 8", len(rep.Iterations))
	}
}

func TestSimStatsAndIPCConsistency(t *testing.T) {
	reg := telemetry.NewRegistry()
	rep, err := Verify(Workload{Name: "smoke", Source: smokeWorkload},
		Options{Runs: 2, Warmup: 1, Config: sim.SmallBoom(), Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sim.Cycles != rep.SimCycles {
		t.Errorf("SimStats.Cycles %d != SimCycles %d", rep.Sim.Cycles, rep.SimCycles)
	}
	if rep.Sim.Instructions == 0 || rep.Sim.Branches == 0 {
		t.Errorf("sim stats empty: %+v", rep.Sim)
	}
	// The telemetry counters must agree with the aggregated sim.Result
	// values, and the IPC gauge with SimStats.IPC().
	if got := reg.Counter("sim_cycles_total").Value(); got != uint64(rep.Sim.Cycles) {
		t.Errorf("sim_cycles_total = %d want %d", got, rep.Sim.Cycles)
	}
	if got := reg.Counter("sim_instructions_total").Value(); got != rep.Sim.Instructions {
		t.Errorf("sim_instructions_total = %d want %d", got, rep.Sim.Instructions)
	}
	wantIPC := float64(rep.Sim.Instructions) / float64(rep.Sim.Cycles)
	if got := reg.Gauge("sim_ipc").Value(); got != wantIPC || got != rep.Sim.IPC() {
		t.Errorf("sim_ipc gauge = %g want %g", got, wantIPC)
	}
	if rep.Sim.IPC() <= 0 || rep.Sim.IPC() > float64(sim.SmallBoom().RetireWidth) {
		t.Errorf("IPC out of range: %g", rep.Sim.IPC())
	}
	// Per-unit sample volume: every tracked unit sampled the same
	// number of in-iteration cycles.
	if len(rep.Samples) != len(trace.AllUnits()) {
		t.Fatalf("samples for %d units, want %d", len(rep.Samples), len(trace.AllUnits()))
	}
	var first uint64
	for _, u := range trace.AllUnits() {
		n := rep.Samples[u]
		if n == 0 {
			t.Fatalf("unit %v sampled nothing", u)
		}
		if first == 0 {
			first = n
		} else if n != first {
			t.Errorf("unit %v sampled %d rows, others %d", u, n, first)
		}
	}
	if got := reg.Counter("trace_samples_total.SQ-ADDR").Value(); got != rep.Samples[trace.SQADDR] {
		t.Errorf("trace_samples_total.SQ-ADDR = %d want %d", got, rep.Samples[trace.SQADDR])
	}
}

func TestSpansEmittedUnderParallel(t *testing.T) {
	var buf syncBuffer
	rep, err := Verify(Workload{Name: "leak", Source: leakWorkload},
		Options{Runs: 4, Warmup: 1, Config: sim.SmallBoom(), Parallel: 4,
			TraceSink: &buf, MeasureStages: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Spans) < 20 {
		t.Errorf("only %d spans recorded", len(rep.Spans))
	}
	byName := map[string]int{}
	rootID := uint64(0)
	for _, s := range rep.Spans {
		byName[s.Name]++
		if s.Name == "verify" {
			rootID = s.ID
		}
	}
	for _, want := range []string{"verify", "assemble", "simulate", "run",
		"machine-setup", "execute", "simulate.untraced", "parse", "stats",
		"stats.unit", "extract"} {
		if byName[want] == 0 {
			t.Errorf("no %q span", want)
		}
	}
	if byName["run"] != 4 || byName["parse"] != 4 {
		t.Errorf("per-run spans: run=%d parse=%d want 4 each", byName["run"], byName["parse"])
	}
	// Parent linkage: every non-root span's parent must exist.
	ids := map[uint64]bool{}
	for _, s := range rep.Spans {
		ids[s.ID] = true
	}
	for _, s := range rep.Spans {
		if s.ID != rootID && !ids[s.Parent] {
			t.Errorf("span %q parent %d not recorded", s.Name, s.Parent)
		}
	}
	// Enriched stage stats must be populated in parallel MeasureStages mode.
	if rep.Stages.RunWall.N != 4 || rep.Stages.RunSim.N != 4 || rep.Stages.RunParse.N != 4 {
		t.Errorf("run stats not aggregated: %+v", rep.Stages)
	}
	if rep.Stages.RunWall.Max < rep.Stages.RunWall.Min {
		t.Errorf("run wall stats inconsistent: %+v", rep.Stages.RunWall)
	}
	if rep.Stages.Simulate <= 0 {
		t.Error("parallel MeasureStages lost the simulate stage total")
	}
	// The JSONL sink must carry one well-formed object per span.
	lines := 0
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		lines++
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if m["name"] == "" || m["id"] == nil {
			t.Errorf("span line missing fields: %v", m)
		}
	}
	if lines != len(rep.Spans) {
		t.Errorf("sink lines %d != spans %d", lines, len(rep.Spans))
	}
}

func TestParallelMeasureStagesMatchesSequential(t *testing.T) {
	opts := Options{Runs: 4, Warmup: 1, Config: sim.SmallBoom(), MeasureStages: true}
	seq, err := Verify(Workload{Name: "leak", Source: leakWorkload}, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallel = 4
	par, err := Verify(Workload{Name: "leak", Source: leakWorkload}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if seq.SimCycles != par.SimCycles {
		t.Errorf("cycles differ: %d vs %d", seq.SimCycles, par.SimCycles)
	}
	for i := range seq.Units {
		if seq.Units[i].Assoc != par.Units[i].Assoc {
			t.Errorf("unit %v stats differ under parallel MeasureStages",
				seq.Units[i].Unit)
		}
	}
}

func TestOnProgress(t *testing.T) {
	var mu sync.Mutex
	var events []Progress
	rep, err := Verify(Workload{Name: "smoke", Source: smokeWorkload},
		Options{Runs: 3, Warmup: 1, Config: sim.SmallBoom(), Parallel: 2,
			OnProgress: func(p Progress) {
				mu.Lock()
				events = append(events, p)
				mu.Unlock()
			}})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("got %d progress events, want 3", len(events))
	}
	seenRun := map[int]bool{}
	for i, e := range events {
		if e.Done != i+1 || e.Total != 3 {
			t.Errorf("event %d: Done=%d Total=%d", i, e.Done, e.Total)
		}
		if e.Cycles <= 0 || e.Iterations <= 0 || e.Elapsed <= 0 {
			t.Errorf("event %d incomplete: %+v", i, e)
		}
		seenRun[e.Run] = true
	}
	if len(seenRun) != 3 {
		t.Errorf("runs reported: %v", seenRun)
	}
	_ = rep
}

// syncBuffer is a goroutine-safe bytes.Buffer for parallel span sinks.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestSeedOffset(t *testing.T) {
	record := func(got *[]int) Workload {
		return Workload{
			Name:   "smoke",
			Source: smokeWorkload,
			Setup: func(run int, m *sim.Machine, prog *asm.Program) error {
				*got = append(*got, run)
				return nil
			},
		}
	}
	var base, shifted []int
	if _, err := Verify(record(&base),
		Options{Runs: 3, Warmup: 1, Config: sim.SmallBoom()}); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(record(&shifted),
		Options{Runs: 3, Warmup: 1, Config: sim.SmallBoom(), SeedOffset: 700}); err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 1, 2}; !equalInts(base, want) {
		t.Errorf("default offset passed runs %v, want %v", base, want)
	}
	if want := []int{700, 701, 702}; !equalInts(shifted, want) {
		t.Errorf("SeedOffset=700 passed runs %v, want %v", shifted, want)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestReportIterHashes(t *testing.T) {
	w := Workload{Name: "iterhash", Source: smokeWorkload}
	rep, err := Verify(w, Options{Config: sim.SmallBoom(), Runs: 3, Warmup: 1, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.IterHashes) == 0 {
		t.Fatal("report has no per-iteration hashes")
	}
	for _, u := range rep.Units {
		hashes := rep.IterHashes[u.Unit]
		if len(hashes) != len(rep.Iterations) {
			t.Fatalf("%v: %d iter hashes for %d iterations",
				u.Unit, len(hashes), len(rep.Iterations))
		}
		// Hash multiset must agree with the merged store totals.
		total := 0
		for _, e := range u.Store.Entries() {
			total += e.Total()
		}
		if total != len(hashes) {
			t.Errorf("%v: store total %d vs %d hashes", u.Unit, total, len(hashes))
		}
	}

	// Parallel merge must preserve the sequential run-order sequence.
	seq, err := Verify(w, Options{Config: sim.SmallBoom(), Runs: 3, Warmup: 1, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range rep.Units {
		a, b := rep.IterHashes[u.Unit], seq.IterHashes[u.Unit]
		if len(a) != len(b) {
			t.Fatalf("%v: parallel %d vs sequential %d hashes", u.Unit, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: hash %d differs between parallel and sequential", u.Unit, i)
			}
		}
	}
}

func TestVerifyStructuredLogging(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	lg := slog.New(slog.NewJSONHandler(lockedWriter{&mu, &buf}, &slog.HandlerOptions{
		Level: slog.LevelDebug,
	}))
	w := Workload{Name: "logged", Source: smokeWorkload}
	_, err := Verify(w, Options{
		Config: sim.SmallBoom(), Runs: 2, Warmup: 1, Parallel: 2,
		Logger: lg, RunID: "job-42",
	})
	if err != nil {
		t.Fatal(err)
	}
	var started, runDone, complete int
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("malformed log line %q: %v", line, err)
		}
		if rec["run_id"] != "job-42" {
			t.Fatalf("log record missing run_id: %q", line)
		}
		if rec["workload"] != "logged" {
			t.Fatalf("log record missing workload: %q", line)
		}
		switch rec["msg"] {
		case "verify started":
			started++
		case "run complete":
			runDone++
		case "verify complete":
			complete++
			if _, ok := rec["leaky"]; !ok {
				t.Error("verify complete record missing verdict")
			}
		}
	}
	if started != 1 || runDone != 2 || complete != 1 {
		t.Errorf("log events started=%d runDone=%d complete=%d", started, runDone, complete)
	}

	// Failures must be logged too.
	buf.Reset()
	bad := Workload{Name: "bad", Source: smokeWorkload,
		Setup: func(run int, m *sim.Machine, prog *asm.Program) error {
			return errors.New("boom")
		}}
	if _, err := Verify(bad, Options{Config: sim.SmallBoom(), Runs: 1, Logger: lg}); err == nil {
		t.Fatal("expected setup failure")
	}
	if !strings.Contains(buf.String(), "verify failed") {
		t.Errorf("failure not logged:\n%s", buf.String())
	}
}

// lockedWriter serialises handler writes: with Parallel > 1 log records
// originate from worker goroutines.
type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
