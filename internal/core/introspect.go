package core

import (
	"errors"
	"sync/atomic"

	"microsampler/internal/sim"
)

// Stage identifies the pipeline stage a verification is currently in,
// published through RunProbe while Verify runs.
type Stage int32

// Pipeline stages in execution order, plus the two terminal states.
const (
	StageIdle Stage = iota
	StageAssemble
	StageSimulate
	StageMerge
	StageStats
	StageExtract
	StageDone
	StageFailed
)

var stageNames = [...]string{
	StageIdle:     "idle",
	StageAssemble: "assemble",
	StageSimulate: "simulate",
	StageMerge:    "merge",
	StageStats:    "stats",
	StageExtract:  "extract",
	StageDone:     "done",
	StageFailed:   "failed",
}

// String returns the stage's wire name.
func (s Stage) String() string {
	if s >= 0 && int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// RunProbe is a live progress view of one verification: pass one in
// Options.Probe and read it from any goroutine while Verify runs. All
// fields advance atomically; the cycle counter aggregates simulated
// cycles across runs, attempts and (under MeasureStages) both passes,
// so it is monotonically increasing for the lifetime of the
// verification.
type RunProbe struct {
	cycles    atomic.Int64
	stage     atomic.Int32
	runsDone  atomic.Int32
	totalRuns atomic.Int32
	retries   atomic.Int32

	sink func(delta int64)
}

// NewRunProbe returns a probe in the idle stage.
func NewRunProbe() *RunProbe { return &RunProbe{} }

// SetCycleSink installs a callback mirroring every cycle-count delta
// the probe receives (e.g. into a metrics counter). It must be set
// before the verification starts and the callback must be
// goroutine-safe: deltas arrive from simulation workers.
func (p *RunProbe) SetCycleSink(fn func(delta int64)) { p.sink = fn }

// AddCycles advances the simulated-cycle counter; the simulator's cycle
// observer feeds this in progress-interval batches.
func (p *RunProbe) AddCycles(delta int64) {
	p.cycles.Add(delta)
	if p.sink != nil {
		p.sink(delta)
	}
}

// ProbeSnapshot is one consistent-enough reading of a RunProbe (fields
// are loaded individually; each is internally consistent and monotonic).
type ProbeSnapshot struct {
	Cycles    int64
	Stage     Stage
	RunsDone  int
	TotalRuns int
	Retries   int
}

// Snapshot reads the probe's current state.
func (p *RunProbe) Snapshot() ProbeSnapshot {
	return ProbeSnapshot{
		Cycles:    p.cycles.Load(),
		Stage:     Stage(p.stage.Load()),
		RunsDone:  int(p.runsDone.Load()),
		TotalRuns: int(p.totalRuns.Load()),
		Retries:   int(p.retries.Load()),
	}
}

func (p *RunProbe) setStage(s Stage) { p.stage.Store(int32(s)) }
func (p *RunProbe) setTotal(n int)   { p.totalRuns.Store(int32(n)) }
func (p *RunProbe) runComplete()     { p.runsDone.Add(1) }
func (p *RunProbe) retryObserved()   { p.retries.Add(1) }

// RunFailure wraps the error of a failed run attempt with the
// flight-recorder post-mortem captured at the moment of failure
// (Options.FlightRecorderFrames must be positive). Extract it from a
// Verify error with errors.As; render the dump with
// telemetry/export.FlightPerfetto. Unwrap exposes the underlying
// error, so retry classification and errors.Is/As chains are
// unaffected by the wrapping.
type RunFailure struct {
	Run     int
	Attempt int
	Dump    *sim.FlightDump
	Err     error
}

// Error reports the underlying failure.
func (f *RunFailure) Error() string { return f.Err.Error() }

// Unwrap exposes the underlying failure to errors.Is/As.
func (f *RunFailure) Unwrap() error { return f.Err }

// FlightDumpFromError extracts the flight-recorder post-mortem from a
// Verify error, if one is attached.
func FlightDumpFromError(err error) (*sim.FlightDump, bool) {
	var rf *RunFailure
	if errors.As(err, &rf) && rf.Dump != nil {
		return rf.Dump, true
	}
	return nil, false
}
