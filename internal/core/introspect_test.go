package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"microsampler/internal/sim"
)

func TestRunProbeLifecycle(t *testing.T) {
	probe := NewRunProbe()
	var sunk atomic.Int64
	probe.SetCycleSink(func(d int64) { sunk.Add(d) })

	if s := probe.Snapshot(); s.Stage != StageIdle {
		t.Fatalf("fresh probe stage = %v want idle", s.Stage)
	}
	rep, err := Verify(Workload{Name: "smoke", Source: smokeWorkload},
		Options{Runs: 3, Probe: probe})
	if err != nil {
		t.Fatal(err)
	}
	s := probe.Snapshot()
	if s.Stage != StageDone {
		t.Errorf("final stage = %v want done", s.Stage)
	}
	if s.RunsDone != 3 || s.TotalRuns != 3 {
		t.Errorf("runs = %d/%d want 3/3", s.RunsDone, s.TotalRuns)
	}
	if s.Cycles != rep.SimCycles {
		t.Errorf("probe cycles = %d, report sim cycles = %d", s.Cycles, rep.SimCycles)
	}
	if got := sunk.Load(); got != s.Cycles {
		t.Errorf("cycle sink saw %d, probe holds %d", got, s.Cycles)
	}
	if s.Retries != 0 {
		t.Errorf("retries = %d want 0", s.Retries)
	}
}

func TestRunProbeFailureStage(t *testing.T) {
	probe := NewRunProbe()
	_, err := Verify(Workload{Name: "fail", Source: `
_start:
	li a0, 3
	li a7, 93
	ecall
`}, Options{Probe: probe})
	if err == nil {
		t.Fatal("want error for nonzero exit")
	}
	if s := probe.Snapshot(); s.Stage != StageFailed {
		t.Errorf("stage after failure = %v want failed", s.Stage)
	}
}

func TestStageStrings(t *testing.T) {
	want := map[Stage]string{
		StageIdle: "idle", StageAssemble: "assemble", StageSimulate: "simulate",
		StageMerge: "merge", StageStats: "stats", StageExtract: "extract",
		StageDone: "done", StageFailed: "failed", Stage(99): "unknown",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("%d.String() = %q want %q", s, s.String(), name)
		}
	}
}

func TestRunFailureCarriesFlightDump(t *testing.T) {
	// A run that exits nonzero must fail with a post-mortem attached
	// when the flight recorder is armed.
	_, err := Verify(Workload{Name: "fail", Source: `
_start:
	li t0, 50
spin:
	addi t0, t0, -1
	bnez t0, spin
	li a0, 9
	li a7, 93
	ecall
`}, Options{FlightRecorderFrames: 16})
	if err == nil {
		t.Fatal("want error for nonzero exit")
	}
	dump, ok := FlightDumpFromError(err)
	if !ok {
		t.Fatalf("no flight dump attached to %v", err)
	}
	if len(dump.Frames) != 16 {
		t.Errorf("dump frames = %d want 16", len(dump.Frames))
	}
	if dump.Cycle == 0 || dump.Frames[len(dump.Frames)-1].Cycle != dump.Cycle {
		t.Errorf("dump not anchored at final cycle: cycle=%d last frame=%d",
			dump.Cycle, dump.Frames[len(dump.Frames)-1].Cycle)
	}
	var rf *RunFailure
	if !errors.As(err, &rf) || rf.Run != 0 {
		t.Errorf("RunFailure metadata missing: %+v", rf)
	}
}

func TestRunFailureWrapsStallWithDump(t *testing.T) {
	// A fault hook that blocks until cancellation models a wedged run;
	// the watchdog aborts it and the flight recorder keeps the final
	// approach.
	block := func(run, attempt int) sim.FaultHook {
		return func(ctx context.Context, cycle int64) error {
			if cycle < 50 {
				return nil
			}
			<-ctx.Done()
			return ctx.Err()
		}
	}
	_, err := Verify(Workload{Name: "stall", Source: smokeWorkload}, Options{
		FlightRecorderFrames: 64,
		Watchdog:             30 * time.Millisecond,
		FaultHook:            block,
		MaxCycles:            1 << 30,
	})
	if !errors.Is(err, sim.ErrStalled) {
		t.Fatalf("want ErrStalled, got %v", err)
	}
	dump, ok := FlightDumpFromError(err)
	if !ok {
		t.Fatalf("stalled run carried no flight dump: %v", err)
	}
	if len(dump.Frames) == 0 {
		t.Error("empty flight dump for stalled run")
	}
	// The wrapping must stay transparent to retry classification.
	if !retryable(err) {
		t.Error("stall wrapped in RunFailure no longer classified retryable")
	}
	if errClass(err) != "stall" {
		t.Errorf("errClass = %q want stall", errClass(err))
	}
}

func TestRunFailureWrapsPanicWithDump(t *testing.T) {
	boom := func(run, attempt int) sim.FaultHook {
		return func(ctx context.Context, cycle int64) error {
			if cycle > 50 {
				panic("injected crash")
			}
			return nil
		}
	}
	_, err := Verify(Workload{Name: "crash", Source: smokeWorkload}, Options{
		FlightRecorderFrames: 32,
		FaultHook:            boom,
	})
	if err == nil {
		t.Fatal("want error from panicking hook")
	}
	if errClass(err) != "panic" {
		t.Fatalf("errClass = %q want panic (err: %v)", errClass(err), err)
	}
	if _, ok := FlightDumpFromError(err); !ok {
		t.Errorf("panicking run carried no flight dump: %v", err)
	}
}

func TestFlightRecorderFramesValidation(t *testing.T) {
	_, err := Verify(Workload{Name: "smoke", Source: smokeWorkload},
		Options{FlightRecorderFrames: -1})
	if err == nil {
		t.Fatal("negative FlightRecorderFrames must be rejected")
	}
}

func TestProvenanceMergedAcrossRuns(t *testing.T) {
	rep, err := Verify(Workload{Name: "leak", Source: leakWorkload},
		Options{Runs: 3, Warmup: NoWarmup})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Provenance) == 0 {
		t.Fatal("report carries no provenance")
	}
	n := len(rep.Iterations)
	for _, up := range rep.Provenance {
		for _, s := range up.Streams {
			if len(s.Iters) != len(s.Hashes) {
				t.Fatalf("%v key %#x: iters/hashes misaligned", up.Unit, s.Key)
			}
			for i, it := range s.Iters {
				if int(it) >= n || it < 0 {
					t.Fatalf("%v key %#x: iter %d out of range [0,%d)", up.Unit, s.Key, it, n)
				}
				if i > 0 && it <= s.Iters[i-1] {
					t.Fatalf("%v key %#x: merged iters not strictly increasing", up.Unit, s.Key)
				}
			}
		}
	}
	// Determinism: a second identical verification must merge to the
	// identical provenance.
	rep2, err := Verify(Workload{Name: "leak", Source: leakWorkload},
		Options{Runs: 3, Warmup: NoWarmup})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Provenance) != len(rep.Provenance) {
		t.Fatal("provenance unit count differs between identical verifications")
	}
	for i := range rep.Provenance {
		a, b := rep.Provenance[i], rep2.Provenance[i]
		if a.Unit != b.Unit || len(a.Streams) != len(b.Streams) {
			t.Fatalf("unit %v provenance shape differs", a.Unit)
		}
		for j := range a.Streams {
			sa, sb := a.Streams[j], b.Streams[j]
			if sa.Key != sb.Key || sa.Events != sb.Events || len(sa.Hashes) != len(sb.Hashes) {
				t.Fatalf("%v stream %d differs between identical runs", a.Unit, j)
			}
			for k := range sa.Hashes {
				if sa.Hashes[k] != sb.Hashes[k] || sa.Iters[k] != sb.Iters[k] {
					t.Fatalf("%v key %#x: stream content differs", a.Unit, sa.Key)
				}
			}
		}
	}
}
