package core

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"microsampler/internal/sim"
)

// The microarchitecture matrix: Verify swept over a declarative grid of
// core configurations. A constant-time verdict is a property of a
// (program, microarchitecture) pair, not of a program — the corpus'
// adversarial twins (fast bypass, data-dependent divide, TAGE, stride
// prefetcher) all hold the program fixed and flip one hardware axis.
// VerifyMatrix makes that sweep a first-class operation: a grid spec
// names the axes and values, every cell runs the full pipeline, and the
// result is a per-cell verdict matrix suitable for deterministic
// artifacts (report.RenderMatrixJSON / RenderMatrixHTML).

// Axis is one dimension of the configuration grid: a named hardware
// toggle and the values it sweeps, in sweep order.
type Axis struct {
	Name   string   `json:"name"`
	Values []string `json:"values"`
}

// gridAxes is the grid vocabulary: every sweepable axis in canonical
// order, its legal values (the first is the default), and how each
// value shapes a sim.Config.
var gridAxes = []struct {
	name   string
	values []string
	apply  func(cfg *sim.Config, value string)
}{
	{"base", []string{"mega", "small"}, func(cfg *sim.Config, v string) {
		if v == "small" {
			*cfg = sim.SmallBoom()
		} else {
			*cfg = sim.MegaBoom()
		}
	}},
	{"fastbypass", []string{"off", "on"}, func(cfg *sim.Config, v string) {
		cfg.FastBypass = v == "on"
	}},
	{"divider", []string{"fixed", "datadep"}, func(cfg *sim.Config, v string) {
		cfg.DataDepDivide = v == "datadep"
	}},
	{"prefetch", []string{"nlp", "none", "stride", "both"}, func(cfg *sim.Config, v string) {
		cfg.NextLinePrefetcher = v == "nlp" || v == "both"
		cfg.StridePrefetcher = v == "stride" || v == "both"
	}},
	{"predictor", []string{"gshare", "tage"}, func(cfg *sim.Config, v string) {
		cfg.TAGEPredictor = v == "tage"
	}},
}

// GridSpec is a declarative configuration grid: the axes to sweep. Axes
// not listed stay pinned at their defaults (MegaBoom, no fast bypass,
// fixed-latency divider, next-line prefetcher, gshare).
type GridSpec struct {
	Axes []Axis `json:"axes"`
}

// DefaultGrid sweeps the two base configurations against the predictor
// and prefetcher models — the hardware-space axes that add leakage
// surfaces rather than merely re-timing existing ones.
func DefaultGrid() GridSpec {
	return GridSpec{Axes: []Axis{
		{Name: "base", Values: []string{"mega", "small"}},
		{Name: "prefetch", Values: []string{"nlp", "none", "stride"}},
		{Name: "predictor", Values: []string{"gshare", "tage"}},
	}}
}

// ParseGridSpec parses a textual grid spec of the form
//
//	axis=value,value;axis=value,...
//
// e.g. "base=small,mega;prefetch=none,stride;predictor=gshare,tage".
// Unknown axes or values, a repeated axis (contradictory toggles), a
// repeated value (duplicate cells), and empty specs are rejected.
func ParseGridSpec(s string) (GridSpec, error) {
	var g GridSpec
	s = strings.TrimSpace(s)
	if s == "" {
		return g, fmt.Errorf("matrix: empty grid spec")
	}
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			return g, fmt.Errorf("matrix: empty axis in grid spec %q", s)
		}
		name, vals, ok := strings.Cut(part, "=")
		if !ok {
			return g, fmt.Errorf("matrix: axis %q missing '=value,...'", part)
		}
		name = strings.TrimSpace(name)
		def := axisDef(name)
		if def == nil {
			return g, fmt.Errorf("matrix: unknown axis %q (have %s)", name, axisNames())
		}
		if seen[name] {
			return g, fmt.Errorf("matrix: axis %q listed twice (contradictory toggles)", name)
		}
		seen[name] = true
		ax := Axis{Name: name}
		dup := map[string]bool{}
		for _, v := range strings.Split(vals, ",") {
			v = strings.TrimSpace(v)
			if v == "" {
				return g, fmt.Errorf("matrix: axis %q has an empty value", name)
			}
			if !validValue(def.values, v) {
				return g, fmt.Errorf("matrix: axis %q has no value %q (have %s)",
					name, v, strings.Join(def.values, ", "))
			}
			if dup[v] {
				return g, fmt.Errorf("matrix: axis %q lists value %q twice (duplicate cells)", name, v)
			}
			dup[v] = true
			ax.Values = append(ax.Values, v)
		}
		g.Axes = append(g.Axes, ax)
	}
	return g, g.Validate()
}

func axisDef(name string) *struct {
	name   string
	values []string
	apply  func(cfg *sim.Config, value string)
} {
	for i := range gridAxes {
		if gridAxes[i].name == name {
			return &gridAxes[i]
		}
	}
	return nil
}

func axisNames() string {
	names := make([]string, len(gridAxes))
	for i, a := range gridAxes {
		names[i] = a.name
	}
	return strings.Join(names, ", ")
}

func validValue(legal []string, v string) bool {
	for _, l := range legal {
		if l == v {
			return true
		}
	}
	return false
}

// Validate checks a programmatically built GridSpec against the axis
// vocabulary: at least one axis, known names and values, no repeated
// axis and no repeated value.
func (g GridSpec) Validate() error {
	if len(g.Axes) == 0 {
		return fmt.Errorf("matrix: grid has no axes")
	}
	seen := map[string]bool{}
	for _, ax := range g.Axes {
		def := axisDef(ax.Name)
		if def == nil {
			return fmt.Errorf("matrix: unknown axis %q (have %s)", ax.Name, axisNames())
		}
		if seen[ax.Name] {
			return fmt.Errorf("matrix: axis %q listed twice (contradictory toggles)", ax.Name)
		}
		seen[ax.Name] = true
		if len(ax.Values) == 0 {
			return fmt.Errorf("matrix: axis %q sweeps no values", ax.Name)
		}
		dup := map[string]bool{}
		for _, v := range ax.Values {
			if !validValue(def.values, v) {
				return fmt.Errorf("matrix: axis %q has no value %q (have %s)",
					ax.Name, v, strings.Join(def.values, ", "))
			}
			if dup[v] {
				return fmt.Errorf("matrix: axis %q lists value %q twice (duplicate cells)", ax.Name, v)
			}
			dup[v] = true
		}
	}
	return nil
}

// canonical returns the grid's axes reordered into canonical axis order
// (the order of gridAxes), so equivalent specs enumerate identical cell
// sequences.
func (g GridSpec) canonical() []Axis {
	out := make([]Axis, 0, len(g.Axes))
	for _, def := range gridAxes {
		for _, ax := range g.Axes {
			if ax.Name == def.name {
				out = append(out, ax)
			}
		}
	}
	return out
}

// Cell is one grid point: a value for every swept axis, in canonical
// axis order.
type Cell struct {
	// Name is the canonical identifier, "axis=value" pairs comma-joined.
	Name string `json:"name"`
	// Axes and Values are the swept axes and this cell's coordinates.
	Axes   []string `json:"axes"`
	Values []string `json:"values"`
}

// Config materialises the cell into a simulator configuration: defaults
// first (MegaBoom, fixed divider, next-line prefetcher, gshare), then
// each swept axis applied in canonical order. The base axis, when
// swept, is applied first regardless, so it cannot clobber the others.
func (c Cell) Config() (sim.Config, error) {
	cfg := sim.MegaBoom()
	// Base preset first: applying it resets every toggle.
	for i, name := range c.Axes {
		if name == "base" {
			def := axisDef(name)
			def.apply(&cfg, c.Values[i])
		}
	}
	for i, name := range c.Axes {
		if name == "base" {
			continue
		}
		def := axisDef(name)
		if def == nil {
			return sim.Config{}, fmt.Errorf("matrix: cell %q has unknown axis %q", c.Name, name)
		}
		if !validValue(def.values, c.Values[i]) {
			return sim.Config{}, fmt.Errorf("matrix: cell %q has no value %q for axis %q",
				c.Name, c.Values[i], name)
		}
		def.apply(&cfg, c.Values[i])
	}
	return cfg, nil
}

// Cells enumerates the grid's cartesian product in canonical axis order,
// last axis fastest — a deterministic enumeration for any equivalent
// spec.
func (g GridSpec) Cells() []Cell {
	axes := g.canonical()
	total := 1
	for _, ax := range axes {
		total *= len(ax.Values)
	}
	cells := make([]Cell, 0, total)
	idx := make([]int, len(axes))
	for {
		c := Cell{Axes: make([]string, len(axes)), Values: make([]string, len(axes))}
		parts := make([]string, len(axes))
		for i, ax := range axes {
			c.Axes[i] = ax.Name
			c.Values[i] = ax.Values[idx[i]]
			parts[i] = ax.Name + "=" + c.Values[i]
		}
		c.Name = strings.Join(parts, ",")
		cells = append(cells, c)
		// Odometer increment, last axis fastest.
		i := len(axes) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(axes[i].Values) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return cells
		}
	}
}

// MatrixOptions configures a grid sweep. The embedded Options apply to
// every cell's verification; Options.Config is overridden per cell.
type MatrixOptions struct {
	Options
	// Grid is the configuration grid (default DefaultGrid).
	Grid GridSpec
	// CellParallel bounds the number of cells verified concurrently: 0
	// or 1 means sequential, ParallelAuto (-1) one worker per CPU. It
	// composes with Options.Parallel (the per-cell run parallelism);
	// sweeping many cheap cells favours CellParallel, few expensive
	// cells favour Parallel.
	CellParallel int
}

// UnitVerdict is one flagged unit of one cell, with the association
// behind the verdict.
type UnitVerdict struct {
	Unit string  `json:"unit"`
	V    float64 `json:"v"`
	P    float64 `json:"p"`
}

// CellResult is the verdict of one grid cell. Wall-clock quantities are
// deliberately absent: serialising a matrix must be byte-identical
// across runs (the simulator and the statistics are deterministic).
type CellResult struct {
	Cell
	// ConfigName is the resolved sim configuration preset.
	ConfigName string `json:"config"`
	// Leaky is the cell verdict: any unit over both thresholds.
	Leaky bool `json:"leaky"`
	// Flagged lists the leaky units in Table IV order.
	Flagged []UnitVerdict `json:"flaggedUnits,omitempty"`
	// MaxV/MaxVUnit give the strongest statistically significant
	// association, flagged or not — the margin of the verdict.
	MaxV     float64 `json:"maxSignificantV"`
	MaxVUnit string  `json:"maxVUnit,omitempty"`
	// Iterations kept and cycles simulated across the cell's runs.
	Iterations int   `json:"iterations"`
	SimCycles  int64 `json:"simCycles"`
	// Err records a failed cell (assembly, simulation, no iterations)
	// without aborting the sweep; the other cells still report.
	Err string `json:"error,omitempty"`

	// Report is the cell's full verification outcome (nil when Err is
	// set). Excluded from serialisation; report.RenderMatrixJSON distils
	// it into the artifact.
	Report *Report `json:"-"`
}

// Matrix is a full grid sweep outcome: one workload, every cell.
type Matrix struct {
	Workload string       `json:"workload"`
	Grid     []Axis       `json:"grid"`
	Cells    []CellResult `json:"cells"`
}

// CellByName returns a cell result by its canonical name.
func (m *Matrix) CellByName(name string) (*CellResult, bool) {
	for i := range m.Cells {
		if m.Cells[i].Name == name {
			return &m.Cells[i], true
		}
	}
	return nil, false
}

// LeakyCells returns the names of the cells with a leaky verdict.
func (m *Matrix) LeakyCells() []string {
	var out []string
	for _, c := range m.Cells {
		if c.Leaky {
			out = append(out, c.Name)
		}
	}
	return out
}

// VerifyMatrix sweeps the workload over a configuration grid.
func VerifyMatrix(w Workload, opts MatrixOptions) (*Matrix, error) {
	return VerifyMatrixContext(context.Background(), w, opts)
}

// VerifyMatrixContext runs the full verification pipeline once per grid
// cell, reusing the per-cell worker pool, retry layer and telemetry of
// VerifyContext. Cells are verified by a fixed pool of CellParallel
// workers claiming cell indices from a shared counter — the same
// scheme VerifyContext uses for runs — and merged in cell order, so the
// matrix is deterministic for any parallelism. A failing cell records
// its error and leaves the sweep running; only a cancelled context or
// an invalid grid aborts the whole matrix.
func VerifyMatrixContext(ctx context.Context, w Workload, opts MatrixOptions) (*Matrix, error) {
	grid := opts.Grid
	if len(grid.Axes) == 0 {
		grid = DefaultGrid()
	}
	if err := grid.Validate(); err != nil {
		return nil, err
	}
	if opts.CellParallel < ParallelAuto {
		return nil, fmt.Errorf("core: MatrixOptions.CellParallel must be >= %d (ParallelAuto), got %d",
			ParallelAuto, opts.CellParallel)
	}
	cells := grid.Cells()
	m := &Matrix{Workload: w.Name, Grid: grid.canonical(), Cells: make([]CellResult, len(cells))}
	if opts.Metrics != nil {
		opts.Metrics.Counter("verify_matrix_total").Inc()
		opts.Metrics.Counter("verify_matrix_cells_total").Add(uint64(len(cells)))
	}

	verifyCell := func(i int) {
		cr := CellResult{Cell: cells[i]}
		defer func() { m.Cells[i] = cr }()
		cfg, err := cells[i].Config()
		if err != nil {
			cr.Err = err.Error()
			return
		}
		cr.ConfigName = cfg.Name
		o := opts.Options
		o.Config = cfg
		// Every cell gets its own run ID: with a caller-supplied ID the
		// cell name is suffixed; without one the cell name itself is the
		// ID. An empty per-cell ID would make cells indistinguishable in
		// logs and flight-recorder dumps.
		if o.RunID != "" {
			o.RunID = o.RunID + "/" + cells[i].Name
		} else {
			o.RunID = cells[i].Name
		}
		rep, err := VerifyContext(ctx, w, o)
		if err != nil {
			cr.Err = err.Error()
			return
		}
		cr.Report = rep
		cr.Iterations = len(rep.Iterations)
		cr.SimCycles = rep.SimCycles
		for _, u := range rep.Units {
			if u.Assoc.Significant() && u.Assoc.V > cr.MaxV {
				cr.MaxV = u.Assoc.V
				cr.MaxVUnit = u.Unit.String()
			}
			if u.Leaky() {
				cr.Leaky = true
				cr.Flagged = append(cr.Flagged, UnitVerdict{
					Unit: u.Unit.String(), V: u.Assoc.V, P: u.Assoc.P,
				})
			}
		}
	}

	workers := opts.CellParallel
	if workers < 0 {
		workers = runtime.NumCPU()
	}
	if workers <= 1 {
		workers = 1
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers <= 1 {
		for i := range cells {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			verifyCell(i)
		}
	} else {
		var wg sync.WaitGroup
		var next atomic.Int64
		for n := 0; n < workers; n++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(cells) || ctx.Err() != nil {
						return
					}
					verifyCell(i)
				}
			}()
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return m, nil
}
