package core

import (
	"strings"
	"testing"
)

func TestParseGridSpec(t *testing.T) {
	g, err := ParseGridSpec("base=small,mega;prefetch=none,stride;predictor=gshare,tage")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Axes) != 3 {
		t.Fatalf("axes = %d, want 3", len(g.Axes))
	}
	cells := g.Cells()
	if len(cells) != 2*2*2 {
		t.Fatalf("cells = %d, want 8", len(cells))
	}
	// Canonical order: base before prefetch before predictor, last axis
	// fastest.
	if cells[0].Name != "base=small,prefetch=none,predictor=gshare" {
		t.Errorf("cells[0] = %q", cells[0].Name)
	}
	if cells[1].Name != "base=small,prefetch=none,predictor=tage" {
		t.Errorf("cells[1] = %q", cells[1].Name)
	}
	if cells[7].Name != "base=mega,prefetch=stride,predictor=tage" {
		t.Errorf("cells[7] = %q", cells[7].Name)
	}
}

func TestParseGridSpecCanonicalOrder(t *testing.T) {
	// Axis order in the spec must not matter: both orderings enumerate
	// identical cell sequences.
	a, err := ParseGridSpec("predictor=gshare,tage;base=small,mega")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseGridSpec("base=small,mega;predictor=gshare,tage")
	if err != nil {
		t.Fatal(err)
	}
	ca, cb := a.Cells(), b.Cells()
	if len(ca) != len(cb) {
		t.Fatalf("cell counts differ: %d vs %d", len(ca), len(cb))
	}
	for i := range ca {
		if ca[i].Name != cb[i].Name {
			t.Errorf("cell %d: %q vs %q", i, ca[i].Name, cb[i].Name)
		}
	}
}

func TestParseGridSpecRejects(t *testing.T) {
	cases := []struct {
		spec, want string
	}{
		{"", "empty grid spec"},
		{";", "empty axis"},
		{"base=small;;predictor=tage", "empty axis"},
		{"base", "missing '=value"},
		{"warp=small,mega", "unknown axis"},
		{"base=tiny", `has no value "tiny"`},
		{"base=small;base=mega", "contradictory toggles"},
		{"base=small,small", "duplicate cells"},
		{"base=", "empty value"},
		{"base=small,,mega", "empty value"},
	}
	for _, c := range cases {
		if _, err := ParseGridSpec(c.spec); err == nil {
			t.Errorf("ParseGridSpec(%q) accepted, want error containing %q", c.spec, c.want)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseGridSpec(%q) = %v, want error containing %q", c.spec, err, c.want)
		}
	}
}

func TestGridSpecValidate(t *testing.T) {
	bad := []GridSpec{
		{},
		{Axes: []Axis{{Name: "warp", Values: []string{"x"}}}},
		{Axes: []Axis{{Name: "base"}}},
		{Axes: []Axis{{Name: "base", Values: []string{"small", "small"}}}},
		{Axes: []Axis{
			{Name: "base", Values: []string{"small"}},
			{Name: "base", Values: []string{"mega"}},
		}},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, g)
		}
	}
	if err := DefaultGrid().Validate(); err != nil {
		t.Errorf("DefaultGrid invalid: %v", err)
	}
}

func TestCellConfig(t *testing.T) {
	g, err := ParseGridSpec("base=small,mega;fastbypass=off,on;divider=fixed,datadep;prefetch=none,nlp,stride,both;predictor=gshare,tage")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range g.Cells() {
		cfg, err := c.Config()
		if err != nil {
			t.Fatalf("cell %q: %v", c.Name, err)
		}
		val := func(axis string) string {
			for i, a := range c.Axes {
				if a == axis {
					return c.Values[i]
				}
			}
			return ""
		}
		wantName := "MegaBoom"
		if val("base") == "small" {
			wantName = "SmallBoom"
		}
		if cfg.Name != wantName {
			t.Errorf("cell %q: config %q, want %q", c.Name, cfg.Name, wantName)
		}
		if got, want := cfg.FastBypass, val("fastbypass") == "on"; got != want {
			t.Errorf("cell %q: FastBypass = %v", c.Name, got)
		}
		if got, want := cfg.DataDepDivide, val("divider") == "datadep"; got != want {
			t.Errorf("cell %q: DataDepDivide = %v", c.Name, got)
		}
		pf := val("prefetch")
		if got, want := cfg.NextLinePrefetcher, pf == "nlp" || pf == "both"; got != want {
			t.Errorf("cell %q: NextLinePrefetcher = %v", c.Name, got)
		}
		if got, want := cfg.StridePrefetcher, pf == "stride" || pf == "both"; got != want {
			t.Errorf("cell %q: StridePrefetcher = %v", c.Name, got)
		}
		if got, want := cfg.TAGEPredictor, val("predictor") == "tage"; got != want {
			t.Errorf("cell %q: TAGEPredictor = %v", c.Name, got)
		}
	}
}

func TestCellConfigDefaults(t *testing.T) {
	// Axes not swept stay pinned at their defaults.
	g, err := ParseGridSpec("predictor=tage")
	if err != nil {
		t.Fatal(err)
	}
	cells := g.Cells()
	if len(cells) != 1 {
		t.Fatalf("cells = %d, want 1", len(cells))
	}
	cfg, err := cells[0].Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "MegaBoom" || cfg.FastBypass || cfg.DataDepDivide ||
		!cfg.NextLinePrefetcher || cfg.StridePrefetcher || !cfg.TAGEPredictor {
		t.Errorf("defaults not pinned: %+v", cfg)
	}
}

func TestVerifyMatrixRejectsBadOptions(t *testing.T) {
	w := Workload{Name: "x", Source: "nop"}
	if _, err := VerifyMatrix(w, MatrixOptions{CellParallel: -2}); err == nil {
		t.Error("CellParallel=-2 accepted")
	}
	if _, err := VerifyMatrix(w, MatrixOptions{
		Grid: GridSpec{Axes: []Axis{{Name: "warp", Values: []string{"x"}}}},
	}); err == nil {
		t.Error("unknown axis accepted")
	}
}

// FuzzMatrixConfig fuzzes grid-spec parsing: no panic on arbitrary
// input, and every accepted spec must round-trip into a valid,
// deterministic, non-empty cell enumeration whose cells materialise
// into valid configurations.
func FuzzMatrixConfig(f *testing.F) {
	f.Add("base=small,mega;predictor=gshare,tage")
	f.Add("prefetch=none,nlp,stride,both")
	f.Add("base=small;base=mega")
	f.Add("base=small,small")
	f.Add(";;")
	f.Add("divider=datadep")
	f.Add("fastbypass=on,off;divider=fixed")
	f.Add("base==small")
	f.Add("base=small, mega ; predictor = tage")
	f.Fuzz(func(t *testing.T, spec string) {
		g, err := ParseGridSpec(spec)
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted spec %q fails Validate: %v", spec, err)
		}
		cells := g.Cells()
		if len(cells) == 0 {
			t.Fatalf("accepted spec %q enumerates no cells", spec)
		}
		seen := map[string]bool{}
		for _, c := range cells {
			if c.Name == "" {
				t.Fatalf("spec %q: cell with empty name", spec)
			}
			if seen[c.Name] {
				t.Fatalf("spec %q: duplicate cell %q", spec, c.Name)
			}
			seen[c.Name] = true
			if _, err := c.Config(); err != nil {
				t.Fatalf("spec %q: cell %q: %v", spec, c.Name, err)
			}
		}
		// Re-parsing the same spec enumerates the same cells.
		g2, err := ParseGridSpec(spec)
		if err != nil {
			t.Fatalf("spec %q: second parse failed: %v", spec, err)
		}
		cells2 := g2.Cells()
		if len(cells2) != len(cells) {
			t.Fatalf("spec %q: cell count changed between parses", spec)
		}
		for i := range cells {
			if cells[i].Name != cells2[i].Name {
				t.Fatalf("spec %q: cell %d changed between parses", spec, i)
			}
		}
	})
}
