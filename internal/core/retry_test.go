package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"microsampler/internal/faults"
	"microsampler/internal/sim"
	"microsampler/internal/telemetry"
)

// fastRetry keeps test backoffs in the microsecond range.
var fastRetry = RetryPolicy{Max: 3, BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond}

// hookEvery installs the same per-cycle hook on every attempt of every
// run.
func hookEvery(h sim.FaultHook) func(run, attempt int) sim.FaultHook {
	return func(run, attempt int) sim.FaultHook { return h }
}

// failAttemptsBelow returns a FaultHook factory whose attempts below n
// fail at cycle 1 with err; later attempts are fault-free.
func failAttemptsBelow(n int, err error) func(run, attempt int) sim.FaultHook {
	return func(run, attempt int) sim.FaultHook {
		if attempt >= n {
			return nil
		}
		return func(ctx context.Context, cycle int64) error { return err }
	}
}

func TestRetryTransientSucceeds(t *testing.T) {
	m := telemetry.NewRegistry()
	rep, err := Verify(Workload{Name: "flaky", Source: leakWorkload}, Options{
		Config:    sim.SmallBoom(),
		Runs:      2,
		Retry:     fastRetry,
		FaultHook: failAttemptsBelow(2, faults.Transient(errors.New("blip"))),
		Metrics:   m,
	})
	if err != nil {
		t.Fatalf("verify with transient faults and retries: %v", err)
	}
	// Each of the 2 runs burned 2 attempts before succeeding.
	if rep.Retries != 4 {
		t.Errorf("Report.Retries = %d want 4", rep.Retries)
	}
	if got := m.Counter("verify_retries_total").Value(); got != 4 {
		t.Errorf("verify_retries_total = %d want 4", got)
	}
	if got := m.Counter("verify_run_errors_total").Value(); got != 4 {
		t.Errorf("verify_run_errors_total = %d want 4", got)
	}

	// The retried verification reaches the same verdicts as a fault-free
	// one: retried attempts restart from reset state with the same seed.
	base, err := Verify(Workload{Name: "flaky", Source: leakWorkload},
		Options{Config: sim.SmallBoom(), Runs: 2})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	if got, want := leakyNamesOf(rep), leakyNamesOf(base); got != want {
		t.Errorf("verdicts diverged under retry: %q vs baseline %q", got, want)
	}
}

func TestPermanentFaultFailsFast(t *testing.T) {
	var attempts atomic.Int64
	_, err := Verify(Workload{Name: "dead", Source: smokeWorkload}, Options{
		Config: sim.SmallBoom(),
		Retry:  fastRetry,
		FaultHook: func(run, attempt int) sim.FaultHook {
			attempts.Add(1)
			return func(ctx context.Context, cycle int64) error {
				return faults.Permanent(errors.New("wedged"))
			}
		},
	})
	if !faults.IsPermanent(err) {
		t.Fatalf("want permanent-classified error, got %v", err)
	}
	if n := attempts.Load(); n != 1 {
		t.Errorf("permanent fault consumed %d attempts, want 1 (no retry)", n)
	}
}

func TestUnmarkedErrorNotRetried(t *testing.T) {
	var attempts atomic.Int64
	_, err := Verify(Workload{Name: "plain", Source: smokeWorkload}, Options{
		Config: sim.SmallBoom(),
		Retry:  fastRetry,
		FaultHook: func(run, attempt int) sim.FaultHook {
			attempts.Add(1)
			return func(ctx context.Context, cycle int64) error {
				return errors.New("unclassified")
			}
		},
	})
	if err == nil || !strings.Contains(err.Error(), "unclassified") {
		t.Fatalf("want the unclassified error, got %v", err)
	}
	if n := attempts.Load(); n != 1 {
		t.Errorf("unmarked error consumed %d attempts, want 1", n)
	}
}

func TestRetryExhaustionSurfacesTransient(t *testing.T) {
	var attempts atomic.Int64
	rep, err := Verify(Workload{Name: "hopeless", Source: smokeWorkload}, Options{
		Config: sim.SmallBoom(),
		Retry:  RetryPolicy{Max: 2, BaseDelay: 50 * time.Microsecond},
		FaultHook: func(run, attempt int) sim.FaultHook {
			attempts.Add(1)
			return func(ctx context.Context, cycle int64) error {
				return faults.Transient(errors.New("still down"))
			}
		},
	})
	if rep != nil || !faults.IsTransient(err) {
		t.Fatalf("want transient-classified failure after exhaustion, got rep=%v err=%v", rep, err)
	}
	if n := attempts.Load(); n != 3 {
		t.Errorf("Max=2 ran %d attempts, want 3", n)
	}
	if !strings.Contains(err.Error(), "run 0") {
		t.Errorf("error lost the run prefix: %v", err)
	}
}

func TestPanicRecoveredAndRetried(t *testing.T) {
	m := telemetry.NewRegistry()
	rep, err := Verify(Workload{Name: "panicky", Source: smokeWorkload}, Options{
		Config: sim.SmallBoom(),
		Retry:  fastRetry,
		FaultHook: func(run, attempt int) sim.FaultHook {
			if attempt > 0 {
				return nil
			}
			return func(ctx context.Context, cycle int64) error { panic("probe bug") }
		},
		Metrics: m,
	})
	if err != nil {
		t.Fatalf("panic was not recovered and retried: %v", err)
	}
	if rep.Retries != 1 {
		t.Errorf("Retries = %d want 1", rep.Retries)
	}
	if got := m.Counter("verify_run_panics_total").Value(); got != 1 {
		t.Errorf("verify_run_panics_total = %d want 1", got)
	}
}

func TestPanicWithoutRetrySurfacesPanicError(t *testing.T) {
	_, err := Verify(Workload{Name: "panicky", Source: smokeWorkload}, Options{
		Config:    sim.SmallBoom(),
		FaultHook: hookEvery(func(ctx context.Context, cycle int64) error { panic("boom") }),
	})
	var pe *faults.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want PanicError, got %v", err)
	}
	if pe.Value != "boom" || len(pe.Stack) == 0 {
		t.Errorf("PanicError lost value or stack: %+v", pe)
	}
}

func TestRunTimeoutIsTransient(t *testing.T) {
	m := telemetry.NewRegistry()
	rep, err := Verify(Workload{Name: "slowstart", Source: smokeWorkload}, Options{
		Config:     sim.SmallBoom(),
		RunTimeout: 30 * time.Millisecond,
		Retry:      fastRetry,
		FaultHook: func(run, attempt int) sim.FaultHook {
			if attempt > 0 {
				return nil
			}
			// First attempt blocks (honouring ctx) until the run deadline.
			return func(ctx context.Context, cycle int64) error {
				select {
				case <-ctx.Done():
					return ctx.Err()
				case <-time.After(10 * time.Second):
					return errors.New("timeout never fired")
				}
			}
		},
		Metrics: m,
	})
	if err != nil {
		t.Fatalf("deadline expiry was not retried: %v", err)
	}
	if rep.Retries != 1 {
		t.Errorf("Retries = %d want 1", rep.Retries)
	}
	if got := m.Counter("verify_run_timeouts_total").Value(); got != 1 {
		t.Errorf("verify_run_timeouts_total = %d want 1", got)
	}
}

func TestWatchdogStallIsTransient(t *testing.T) {
	m := telemetry.NewRegistry()
	rep, err := Verify(Workload{Name: "stall", Source: smokeWorkload}, Options{
		Config:   sim.SmallBoom(),
		Watchdog: 50 * time.Millisecond,
		Retry:    fastRetry,
		FaultHook: func(run, attempt int) sim.FaultHook {
			if attempt > 0 {
				return nil
			}
			return func(ctx context.Context, cycle int64) error {
				<-ctx.Done() // a hang the watchdog must break
				return ctx.Err()
			}
		},
		Metrics: m,
	})
	if err != nil {
		t.Fatalf("watchdog stall was not retried: %v", err)
	}
	if rep.Retries != 1 {
		t.Errorf("Retries = %d want 1", rep.Retries)
	}
	if got := m.Counter("verify_run_stalls_total").Value(); got != 1 {
		t.Errorf("verify_run_stalls_total = %d want 1", got)
	}
}

func TestRetrySpansRecorded(t *testing.T) {
	var sink bytes.Buffer
	_, err := Verify(Workload{Name: "flaky", Source: smokeWorkload}, Options{
		Config:    sim.SmallBoom(),
		Retry:     fastRetry,
		FaultHook: failAttemptsBelow(1, faults.Transient(errors.New("blip"))),
		TraceSink: &sink,
	})
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	var runID uint64
	var retries []struct {
		Parent uint64
		Detail string
	}
	for _, line := range strings.Split(strings.TrimSpace(sink.String()), "\n") {
		var span struct {
			Name   string `json:"name"`
			ID     uint64 `json:"id"`
			Parent uint64 `json:"parent"`
			Detail string `json:"detail"`
		}
		if err := json.Unmarshal([]byte(line), &span); err != nil {
			t.Fatalf("bad span line %q: %v", line, err)
		}
		switch span.Name {
		case "run":
			runID = span.ID
		case "run.retry":
			retries = append(retries, struct {
				Parent uint64
				Detail string
			}{span.Parent, span.Detail})
		}
	}
	if len(retries) != 1 {
		t.Fatalf("want 1 run.retry span, got %d", len(retries))
	}
	if retries[0].Parent != runID {
		t.Errorf("run.retry parented under %d, want run span %d", retries[0].Parent, runID)
	}
	if !strings.Contains(retries[0].Detail, "transient") {
		t.Errorf("run.retry detail %q lacks the failure class", retries[0].Detail)
	}
}

func TestBackoffWindows(t *testing.T) {
	p := RetryPolicy{Max: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 35 * time.Millisecond}
	// u=1 probes the upper edge of each jitter window: 10ms, 20ms, then
	// capped at 35ms.
	for n, want := range map[int]time.Duration{
		0: 10 * time.Millisecond,
		1: 20 * time.Millisecond,
		2: 35 * time.Millisecond,
		9: 35 * time.Millisecond,
	} {
		if got := p.backoffAt(n, 1); got != want {
			t.Errorf("backoffAt(%d, 1) = %v want %v", n, got, want)
		}
	}
	if got := p.backoffAt(3, 0); got != 0 {
		t.Errorf("backoffAt(_, 0) = %v want 0 (full jitter reaches zero)", got)
	}
	if (RetryPolicy{}).backoffAt(2, 1) != 0 {
		t.Error("zero policy must not sleep")
	}
	// Verify jittered draws stay inside the window.
	for i := 0; i < 100; i++ {
		if d := p.backoff(1); d < 0 || d > 20*time.Millisecond {
			t.Fatalf("backoff(1) = %v outside [0, 20ms]", d)
		}
	}
}

func TestFaultToleranceOptionValidation(t *testing.T) {
	for name, opts := range map[string]Options{
		"timeout":  {RunTimeout: -time.Second},
		"watchdog": {Watchdog: -time.Second},
		"retryMax": {Retry: RetryPolicy{Max: -1}},
		"retryDur": {Retry: RetryPolicy{Max: 1, BaseDelay: -time.Second}},
	} {
		if _, err := Verify(Workload{Name: "neg", Source: smokeWorkload}, opts); err == nil {
			t.Errorf("%s: negative option accepted", name)
		}
	}
	// Defaults fill in only when retrying is enabled.
	o, err := Options{Retry: RetryPolicy{Max: 2}}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if o.Retry.BaseDelay != 50*time.Millisecond || o.Retry.MaxDelay != 2*time.Second {
		t.Errorf("retry defaults not filled: %+v", o.Retry)
	}
	o, err = Options{}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if o.Retry.BaseDelay != 0 {
		t.Errorf("disabled retry grew a delay: %+v", o.Retry)
	}
}

func leakyNamesOf(rep *Report) string {
	names := make([]string, 0, len(rep.Units))
	for _, u := range rep.LeakyUnits() {
		names = append(names, u.Unit.String())
	}
	return strings.Join(names, ",")
}

// classifiedFailure reports whether a Verify error carries one of the
// fault-tolerance layer's classifications — the chaos-test contract
// that failures are never anonymous.
func classifiedFailure(err error) bool {
	return faults.IsTransient(err) || faults.IsPermanent(err) ||
		errors.Is(err, sim.ErrStalled) || errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled)
}

// chaosVerify runs the leak workload under an injector for one seed.
func chaosVerify(seed uint64) (string, error) {
	inj := faults.New(seed, faults.Config{
		PTransient: 0.15,
		PPermanent: 0.05,
		PPanic:     0.10,
		PHang:      0.05,
		PSlow:      0.10,
		MaxCycle:   2048,
		HangFor:    2 * time.Second,
		SlowFor:    time.Millisecond,
	})
	rep, err := Verify(Workload{Name: "chaos", Source: leakWorkload}, Options{
		Config:     sim.SmallBoom(),
		Runs:       3,
		Parallel:   2,
		RunTimeout: 10 * time.Second,
		Watchdog:   100 * time.Millisecond,
		Retry:      RetryPolicy{Max: 5, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
		FaultHook:  inj.Hook,
	})
	if err != nil {
		return "", err
	}
	return leakyNamesOf(rep), nil
}

// TestChaosSeeds drives the full pipeline under a seeded mix of
// injected transients, permanents, panics, hangs and latency. For every
// seed the outcome must be one of exactly two shapes: a report whose
// verdicts match the fault-free baseline (retries are invisible to the
// analysis), or a classified error. Panics escaping Verify or the test
// timing out are the failures this guards against.
func TestChaosSeeds(t *testing.T) {
	base, err := Verify(Workload{Name: "chaos", Source: leakWorkload},
		Options{Config: sim.SmallBoom(), Runs: 3, Parallel: 2})
	if err != nil {
		t.Fatalf("fault-free baseline: %v", err)
	}
	want := leakyNamesOf(base)
	if want == "" {
		t.Fatal("baseline found no leaks; chaos comparison is vacuous")
	}

	failed, succeeded := 0, 0
	for seed := uint64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			verdicts, err := chaosVerify(seed)
			if err != nil {
				failed++
				if !classifiedFailure(err) {
					t.Errorf("unclassified chaos failure: %v", err)
				}
				t.Logf("seed %d: classified failure: %v", seed, err)
				return
			}
			succeeded++
			if verdicts != want {
				t.Errorf("verdicts under faults %q != baseline %q", verdicts, want)
			}
		})
	}
	t.Logf("chaos: %d seeds succeeded, %d failed classified", succeeded, failed)

	// Determinism: replaying a seed reproduces the outcome shape.
	v1, err1 := chaosVerify(3)
	v2, err2 := chaosVerify(3)
	if (err1 == nil) != (err2 == nil) || v1 != v2 {
		t.Errorf("seed 3 not reproducible: (%q, %v) vs (%q, %v)", v1, err1, v2, err2)
	}
}
