package ctc

import (
	"fmt"
	"strings"
)

// Strategy selects how secret-dependent conditionals are lowered.
type Strategy int

// Lowering strategies for `if (c) f(..a..) else f(..b..)` patterns.
const (
	// LowerPlain emits ordinary branches (no hardening).
	LowerPlain Strategy = iota + 1
	// LowerBalanced emits the constant-time lowering: the differing
	// argument is selected branchlessly with mask arithmetic and a
	// single call is made (the ME-V1-MV shape).
	LowerBalanced
	// LowerPreload emits the unbalanced "optimised" sequence of the
	// paper's Listing 4: the then-arguments are preloaded into the
	// argument registers before the condition is checked, and the else
	// path patches the differing register with two extra instructions
	// (the ME-V1-CV compiler vulnerability).
	LowerPreload
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case LowerPlain:
		return "plain"
	case LowerBalanced:
		return "balanced"
	case LowerPreload:
		return "preload"
	}
	return "strategy?"
}

// CompileError reports a code-generation failure.
type CompileError struct {
	Fn  string
	Msg string
}

func (e *CompileError) Error() string {
	return fmt.Sprintf("ctc: function %s: %s", e.Fn, e.Msg)
}

var tempRegs = []string{"t0", "t1", "t2", "t3", "t4", "t5", "t6"}
var localRegs = []string{"s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11"}

// Compile parses and compiles source to assembly text using the given
// lowering strategy. Each function becomes a global label; builtins
// load8/load64/store8/store64 become memory instructions; calls to
// undefined names are emitted as external calls to same-named labels.
func Compile(src string, strategy Strategy) (string, error) {
	prog, err := Parse(src)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, fn := range prog.Funcs {
		g := &gen{fn: fn, strategy: strategy, out: &b}
		if err := g.compile(); err != nil {
			return "", err
		}
	}
	return b.String(), nil
}

type gen struct {
	fn       *FuncDef
	strategy Strategy
	out      *strings.Builder

	vars      map[string]string // name -> s-register
	varOrder  []string
	depth     int // live temps
	label     int
	body      strings.Builder
	spillBase int // frame offset of temp spill area
}

const spillSlots = 7

func (g *gen) errf(format string, args ...interface{}) error {
	return &CompileError{Fn: g.fn.Name, Msg: fmt.Sprintf(format, args...)}
}

func (g *gen) emit(format string, args ...interface{}) {
	fmt.Fprintf(&g.body, "\t"+format+"\n", args...)
}

func (g *gen) newLabel(hint string) string {
	g.label++
	return fmt.Sprintf("%s_%s%d", g.fn.Name, hint, g.label)
}

func (g *gen) allocTemp() (string, error) {
	if g.depth >= len(tempRegs) {
		return "", g.errf("expression too deep (more than %d live temporaries)", len(tempRegs))
	}
	r := tempRegs[g.depth]
	g.depth++
	return r, nil
}

func (g *gen) release(n int) { g.depth -= n }

func (g *gen) declare(name string) (string, error) {
	if _, dup := g.vars[name]; dup {
		return "", g.errf("redeclared variable %q", name)
	}
	if len(g.varOrder) >= len(localRegs) {
		return "", g.errf("too many locals/parameters (max %d)", len(localRegs))
	}
	r := localRegs[len(g.varOrder)]
	g.vars[name] = r
	g.varOrder = append(g.varOrder, name)
	return r, nil
}

func (g *gen) compile() error {
	g.vars = make(map[string]string)
	if len(g.fn.Params) > 8 {
		return g.errf("more than 8 parameters")
	}
	for _, p := range g.fn.Params {
		if _, err := g.declare(p); err != nil {
			return err
		}
	}
	for i, p := range g.fn.Params {
		g.emit("mv   %s, a%d", g.vars[p], i)
	}
	if err := g.stmts(g.fn.Body); err != nil {
		return err
	}

	// Frame: ra + all local registers + temp spill area, 16-aligned.
	nSaved := 1 + len(g.varOrder)
	frame := (nSaved*8 + spillSlots*8 + 15) &^ 15
	g.spillBase = nSaved * 8

	fmt.Fprintf(g.out, "%s:\n", g.fn.Name)
	fmt.Fprintf(g.out, "\taddi sp, sp, -%d\n", frame)
	fmt.Fprintf(g.out, "\tsd   ra, 0(sp)\n")
	for i, name := range g.varOrder {
		fmt.Fprintf(g.out, "\tsd   %s, %d(sp)\n", g.vars[name], (i+1)*8)
	}
	out := g.body.String()
	out = strings.ReplaceAll(out, "@SPILL", fmt.Sprintf("%d", g.spillBase))
	g.out.WriteString(out)
	fmt.Fprintf(g.out, "%s_ret:\n", g.fn.Name)
	fmt.Fprintf(g.out, "\tld   ra, 0(sp)\n")
	for i, name := range g.varOrder {
		fmt.Fprintf(g.out, "\tld   %s, %d(sp)\n", g.vars[name], (i+1)*8)
	}
	fmt.Fprintf(g.out, "\taddi sp, sp, %d\n", frame)
	fmt.Fprintf(g.out, "\tret\n")
	return nil
}

func (g *gen) stmts(list []Stmt) error {
	for _, s := range list {
		if err := g.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) stmt(s Stmt) error {
	switch st := s.(type) {
	case *VarStmt:
		r, err := g.expr(st.Init)
		if err != nil {
			return err
		}
		dst, err := g.declare(st.Name)
		if err != nil {
			return err
		}
		g.emit("mv   %s, %s", dst, r)
		g.release(1)
		return nil

	case *AssignStmt:
		dst, ok := g.vars[st.Name]
		if !ok {
			return g.errf("undefined variable %q", st.Name)
		}
		r, err := g.expr(st.Value)
		if err != nil {
			return err
		}
		g.emit("mv   %s, %s", dst, r)
		g.release(1)
		return nil

	case *ReturnStmt:
		if st.Value != nil {
			r, err := g.expr(st.Value)
			if err != nil {
				return err
			}
			g.emit("mv   a0, %s", r)
			g.release(1)
		}
		g.emit("j    %s_ret", g.fn.Name)
		return nil

	case *ExprStmt:
		r, err := g.expr(st.X)
		if err != nil {
			return err
		}
		_ = r
		g.release(1)
		return nil

	case *WhileStmt:
		top := g.newLabel("while")
		end := g.newLabel("endwhile")
		fmt.Fprintf(&g.body, "%s:\n", top)
		c, err := g.expr(st.Cond)
		if err != nil {
			return err
		}
		g.emit("beqz %s, %s", c, end)
		g.release(1)
		if err := g.stmts(st.Body); err != nil {
			return err
		}
		g.emit("j    %s", top)
		fmt.Fprintf(&g.body, "%s:\n", end)
		return nil

	case *IfStmt:
		return g.ifStmt(st)
	}
	return g.errf("unsupported statement %T", s)
}

// ifStmt lowers a conditional, applying the strategy when the paper's
// dual-call pattern is recognised.
func (g *gen) ifStmt(st *IfStmt) error {
	if call1, call2, diff, ok := dualCallPattern(st); ok {
		switch g.strategy {
		case LowerBalanced:
			return g.lowerBalanced(st.Cond, call1, call2, diff)
		case LowerPreload:
			return g.lowerPreload(st, call1, call2, diff)
		}
	}
	return g.ifPlain(st)
}

// ifPlain emits the ordinary branchy lowering.
func (g *gen) ifPlain(st *IfStmt) error {
	elseL := g.newLabel("else")
	endL := g.newLabel("endif")
	c, err := g.expr(st.Cond)
	if err != nil {
		return err
	}
	g.emit("beqz %s, %s", c, elseL)
	g.release(1)
	if err := g.stmts(st.Then); err != nil {
		return err
	}
	g.emit("j    %s", endL)
	fmt.Fprintf(&g.body, "%s:\n", elseL)
	if err := g.stmts(st.Else); err != nil {
		return err
	}
	fmt.Fprintf(&g.body, "%s:\n", endL)
	return nil
}

// dualCallPattern matches `if (c) f(..a..) else f(..b..)` where the two
// calls differ in exactly one argument position.
func dualCallPattern(st *IfStmt) (then, els *CallExpr, diffIdx int, ok bool) {
	if len(st.Then) != 1 || len(st.Else) != 1 {
		return nil, nil, 0, false
	}
	t1, ok1 := st.Then[0].(*ExprStmt)
	t2, ok2 := st.Else[0].(*ExprStmt)
	if !ok1 || !ok2 {
		return nil, nil, 0, false
	}
	c1, ok1 := t1.X.(*CallExpr)
	c2, ok2 := t2.X.(*CallExpr)
	if !ok1 || !ok2 || c1.Name != c2.Name || len(c1.Args) != len(c2.Args) {
		return nil, nil, 0, false
	}
	diffIdx = -1
	for i := range c1.Args {
		if !exprEqual(c1.Args[i], c2.Args[i]) {
			if diffIdx >= 0 {
				return nil, nil, 0, false
			}
			diffIdx = i
		}
	}
	if diffIdx < 0 {
		return nil, nil, 0, false
	}
	return c1, c2, diffIdx, true
}

func exprEqual(a, b Expr) bool {
	switch x := a.(type) {
	case *NumExpr:
		y, ok := b.(*NumExpr)
		return ok && x.Value == y.Value
	case *IdentExpr:
		y, ok := b.(*IdentExpr)
		return ok && x.Name == y.Name
	}
	return false
}

// lowerBalanced emits the constant-time select: the differing argument
// is chosen with mask arithmetic and the call is unconditional.
func (g *gen) lowerBalanced(cond Expr, call, els *CallExpr, diff int) error {
	c, err := g.expr(cond)
	if err != nil {
		return err
	}
	thenArg, err := g.expr(call.Args[diff])
	if err != nil {
		return err
	}
	elseArg, err := g.expr(els.Args[diff])
	if err != nil {
		return err
	}
	g.emit("snez %s, %s", c, c)
	g.emit("neg  %s, %s", c, c) // mask
	g.emit("xor  %s, %s, %s", thenArg, thenArg, elseArg)
	g.emit("and  %s, %s, %s", thenArg, thenArg, c)
	g.emit("xor  %s, %s, %s", thenArg, thenArg, elseArg)
	g.release(1) // elseArg; the selected value lives in thenArg
	base := g.depth

	merged := &CallExpr{Name: call.Name, Args: append([]Expr{}, call.Args...)}
	if _, err := g.call(merged, map[int]string{diff: thenArg}); err != nil {
		return err
	}
	g.release(g.depth - base + 2) // call result, selected value, cond
	return nil
}

// lowerPreload emits the paper's Listing 4 shape: preload the then
// arguments, check the condition afterwards, and patch the differing
// register on the else path with two extra instructions.
func (g *gen) lowerPreload(st *IfStmt, call, els *CallExpr, diff int) error {
	cond := st.Cond
	elseArg, okSimple := els.Args[diff].(*IdentExpr)
	if !okSimple {
		// The optimisation only fires for register-resident operands,
		// like a compiler forwarding a local.
		return g.ifPlain(st)
	}
	c, err := g.expr(cond)
	if err != nil {
		return err
	}
	// Preload all then-arguments into the argument registers.
	if len(call.Args) > 6 {
		return g.errf("preload lowering supports at most 6 arguments")
	}
	for i, a := range call.Args {
		r, err := g.expr(a)
		if err != nil {
			return err
		}
		g.emit("mv   a%d, %s", i, r)
		g.release(1)
	}
	fix := g.newLabel("fix")
	goL := g.newLabel("go")
	end := g.newLabel("end")
	g.emit("beqz %s, %s", c, fix)
	g.release(1)
	fmt.Fprintf(&g.body, "%s:\n", goL)
	g.emit("call %s", call.Name)
	g.emit("j    %s", end)
	fmt.Fprintf(&g.body, "%s:\n", fix)
	reg, ok := g.vars[elseArg.Name]
	if !ok {
		return g.errf("undefined variable %q", elseArg.Name)
	}
	g.emit("mv   a%d, %s", diff, reg)
	g.emit("j    %s", goL)
	fmt.Fprintf(&g.body, "%s:\n", end)
	return nil
}

// expr compiles an expression; the result is left in a fresh temp whose
// name is returned. The caller releases it.
func (g *gen) expr(e Expr) (string, error) {
	switch x := e.(type) {
	case *NumExpr:
		r, err := g.allocTemp()
		if err != nil {
			return "", err
		}
		g.emit("li   %s, %d", r, int64(x.Value))
		return r, nil

	case *IdentExpr:
		src, ok := g.vars[x.Name]
		if !ok {
			return "", g.errf("undefined variable %q", x.Name)
		}
		r, err := g.allocTemp()
		if err != nil {
			return "", err
		}
		g.emit("mv   %s, %s", r, src)
		return r, nil

	case *UnExpr:
		r, err := g.expr(x.X)
		if err != nil {
			return "", err
		}
		switch x.Op {
		case "-":
			g.emit("neg  %s, %s", r, r)
		case "~":
			g.emit("not  %s, %s", r, r)
		case "!":
			g.emit("seqz %s, %s", r, r)
		}
		return r, nil

	case *BinExpr:
		return g.binExpr(x)

	case *CallExpr:
		return g.call(x, nil)
	}
	return "", g.errf("unsupported expression %T", e)
}

var binOps = map[string]string{
	"+": "add", "-": "sub", "*": "mul", "/": "divu", "%": "remu",
	"&": "and", "|": "or", "^": "xor", "<<": "sll", ">>": "srl",
}

func (g *gen) binExpr(x *BinExpr) (string, error) {
	rl, err := g.expr(x.L)
	if err != nil {
		return "", err
	}
	rr, err := g.expr(x.R)
	if err != nil {
		return "", err
	}
	defer g.release(1) // rr
	if op, ok := binOps[x.Op]; ok {
		g.emit("%s  %s, %s, %s", op, rl, rl, rr)
		return rl, nil
	}
	switch x.Op {
	case "==":
		g.emit("xor  %s, %s, %s", rl, rl, rr)
		g.emit("seqz %s, %s", rl, rl)
	case "!=":
		g.emit("xor  %s, %s, %s", rl, rl, rr)
		g.emit("snez %s, %s", rl, rl)
	case "<":
		g.emit("sltu %s, %s, %s", rl, rl, rr)
	case ">":
		g.emit("sltu %s, %s, %s", rl, rr, rl)
	case "<=":
		g.emit("sltu %s, %s, %s", rl, rr, rl)
		g.emit("xori %s, %s, 1", rl, rl)
	case ">=":
		g.emit("sltu %s, %s, %s", rl, rl, rr)
		g.emit("xori %s, %s, 1", rl, rl)
	case "&&":
		g.emit("snez %s, %s", rl, rl)
		g.emit("snez %s, %s", rr, rr)
		g.emit("and  %s, %s, %s", rl, rl, rr)
	case "||":
		g.emit("or   %s, %s, %s", rl, rl, rr)
		g.emit("snez %s, %s", rl, rl)
	default:
		return "", g.errf("unsupported operator %q", x.Op)
	}
	return rl, nil
}

var builtinMem = map[string]struct {
	load bool
	op   string
}{
	"load64":  {true, "ld"},
	"load8":   {true, "lbu"},
	"store64": {false, "sd"},
	"store8":  {false, "sb"},
}

// call compiles a call; override maps argument index to a register that
// already holds the value (used by the balanced lowering).
func (g *gen) call(x *CallExpr, override map[int]string) (string, error) {
	if bi, ok := builtinMem[x.Name]; ok {
		return g.builtin(x, bi.load, bi.op)
	}
	if len(x.Args) > 8 {
		return "", g.errf("more than 8 call arguments")
	}
	base := g.depth
	regs := make([]string, len(x.Args))
	for i, a := range x.Args {
		if r, ok := override[i]; ok {
			regs[i] = r
			continue
		}
		r, err := g.expr(a)
		if err != nil {
			return "", err
		}
		regs[i] = r
	}
	// Spill temps that must survive the call (those live before the
	// argument evaluation began).
	for i := 0; i < base; i++ {
		g.emit("sd   %s, @SPILL+%d(sp)", tempRegs[i], i*8)
	}
	for i, r := range regs {
		g.emit("mv   a%d, %s", i, r)
	}
	g.emit("call %s", x.Name)
	// Release the argument temps allocated here.
	g.depth = base
	r, err := g.allocTemp()
	if err != nil {
		return "", err
	}
	g.emit("mv   %s, a0", r)
	for i := 0; i < base; i++ {
		g.emit("ld   %s, @SPILL+%d(sp)", tempRegs[i], i*8)
	}
	return r, nil
}

func (g *gen) builtin(x *CallExpr, isLoad bool, op string) (string, error) {
	if isLoad {
		if len(x.Args) != 1 {
			return "", g.errf("%s expects 1 argument", x.Name)
		}
		r, err := g.expr(x.Args[0])
		if err != nil {
			return "", err
		}
		g.emit("%s   %s, 0(%s)", op, r, r)
		return r, nil
	}
	if len(x.Args) != 2 {
		return "", g.errf("%s expects 2 arguments", x.Name)
	}
	addr, err := g.expr(x.Args[0])
	if err != nil {
		return "", err
	}
	val, err := g.expr(x.Args[1])
	if err != nil {
		return "", err
	}
	g.emit("%s   %s, 0(%s)", op, val, addr)
	g.release(1) // val; addr temp becomes the statement result
	g.emit("li   %s, 0", addr)
	return addr, nil
}
