package ctc

import (
	"strings"
	"testing"

	"microsampler/internal/asm"
	"microsampler/internal/sim"
)

// runFunc compiles fn, wraps it with a driver that calls `name` with
// the given arguments, runs it on the simulator and returns a0.
func runFunc(t *testing.T, src, name string, strategy Strategy, args ...uint64) uint64 {
	t.Helper()
	code, err := Compile(src, strategy)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	driver := "\t.text\n_start:\n"
	for i, a := range args {
		driver += "\tli a" + string(rune('0'+i)) + ", " + utoa(a) + "\n"
	}
	driver += "\tcall " + name + "\n\tli a7, 93\n\tecall\n" + code + dataSection
	prog, err := asm.Assemble(driver)
	if err != nil {
		t.Fatalf("assemble compiled output: %v\n%s", err, code)
	}
	m, err := sim.New(sim.SmallBoom())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(2_000_000)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, code)
	}
	return res.ExitCode
}

const dataSection = "\n\t.data\nscratch: .zero 256\n"

func utoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestCompileArithmetic(t *testing.T) {
	src := `
func calc(a, b) {
	var s = a + b * 2;
	var d = (a ^ b) & 255;
	return s - d + (a % b) + (a / b);
}
`
	a, b := uint64(100), uint64(7)
	want := (a + b*2) - ((a ^ b) & 255) + a%b + a/b
	if got := runFunc(t, src, "calc", LowerPlain, a, b); got != want {
		t.Errorf("calc = %d want %d", got, want)
	}
}

func TestCompileComparisonsAndLogic(t *testing.T) {
	src := `
func cmp(a, b) {
	var r = 0;
	r = r + (a == b);
	r = r + (a != b) * 2;
	r = r + (a < b) * 4;
	r = r + (a > b) * 8;
	r = r + (a <= b) * 16;
	r = r + (a >= b) * 32;
	r = r + (a && b) * 64;
	r = r + (a || b) * 128;
	r = r + !a * 256;
	return r;
}
`
	// a=3, b=5: eq=0 ne=1 lt=1 gt=0 le=1 ge=0 and=1 or=1 !a=0
	want := uint64(0 + 2 + 4 + 0 + 16 + 0 + 64 + 128)
	if got := runFunc(t, src, "cmp", LowerPlain, 3, 5); got != want {
		t.Errorf("cmp = %d want %d", got, want)
	}
}

func TestCompileWhileLoop(t *testing.T) {
	src := `
func fact(n) {
	var r = 1;
	while (n > 1) {
		r = r * n;
		n = n - 1;
	}
	return r;
}
`
	if got := runFunc(t, src, "fact", LowerPlain, 10); got != 3628800 {
		t.Errorf("fact(10) = %d", got)
	}
}

func TestCompileIfElse(t *testing.T) {
	src := `
func pick(c, a, b) {
	if (c) {
		return a;
	} else {
		return b;
	}
}
`
	if got := runFunc(t, src, "pick", LowerPlain, 1, 11, 22); got != 11 {
		t.Errorf("pick(1) = %d", got)
	}
	if got := runFunc(t, src, "pick", LowerPlain, 0, 11, 22); got != 22 {
		t.Errorf("pick(0) = %d", got)
	}
}

func TestCompileMemoryBuiltins(t *testing.T) {
	src := `
func memtest(base) {
	store64(base, 12345);
	store8(base + 64, 77);
	var a = load64(base);
	var b = load8(base + 64);
	return a + b;
}
`
	// scratch is at the data base of the assembled program.
	code, err := Compile(src, LowerPlain)
	if err != nil {
		t.Fatal(err)
	}
	driver := "\t.text\n_start:\n\tla a0, scratch\n\tcall memtest\n\tli a7, 93\n\tecall\n" +
		code + dataSection
	prog, err := asm.Assemble(driver)
	if err != nil {
		t.Fatalf("%v\n%s", err, code)
	}
	m, _ := sim.New(sim.SmallBoom())
	if err := m.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 12345+77 {
		t.Errorf("memtest = %d want %d", res.ExitCode, 12345+77)
	}
}

func TestCompileNestedCalls(t *testing.T) {
	src := `
func double(x) {
	return x + x;
}
func quad(x) {
	return double(double(x)) + double(1);
}
`
	if got := runFunc(t, src, "quad", LowerPlain, 5); got != 22 {
		t.Errorf("quad(5) = %d want 22", got)
	}
}

const ccopySrc = `
func ccopy(ctl, dst, dummy, src, len) {
	if (ctl) {
		memmove(dst, src, len);
	} else {
		memmove(dummy, src, len);
	}
	return 0;
}
func memmove(dst, src, len) {
	while (len) {
		store8(dst, load8(src));
		dst = dst + 1;
		src = src + 1;
		len = len - 1;
	}
	return 0;
}
`

// runCcopy compiles ccopy with a strategy and checks which buffer the
// bytes landed in.
func runCcopy(t *testing.T, strategy Strategy, ctl uint64) (dstByte, dummyByte byte) {
	t.Helper()
	code, err := Compile(ccopySrc, strategy)
	if err != nil {
		t.Fatalf("compile(%v): %v", strategy, err)
	}
	driver := `
	.text
_start:
	li   a0, ` + utoa(ctl) + `
	la   a1, dstbuf
	la   a2, dummybuf
	la   a3, srcbuf
	li   a4, 8
	call ccopy
	li   a0, 0
	li   a7, 93
	ecall
` + code + `
	.data
dstbuf:   .zero 16
dummybuf: .zero 16
srcbuf:   .byte 0xAB, 1, 2, 3, 4, 5, 6, 7
`
	prog, err := asm.Assemble(driver)
	if err != nil {
		t.Fatalf("assemble: %v\n%s", err, code)
	}
	m, _ := sim.New(sim.SmallBoom())
	if err := m.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatalf("run: %v\n%s", err, code)
	}
	return m.Memory().LoadByte(prog.MustSymbol("dstbuf")),
		m.Memory().LoadByte(prog.MustSymbol("dummybuf"))
}

func TestCcopySemanticsAcrossStrategies(t *testing.T) {
	for _, s := range []Strategy{LowerPlain, LowerBalanced, LowerPreload} {
		t.Run(s.String(), func(t *testing.T) {
			dst, dummy := runCcopy(t, s, 1)
			if dst != 0xAB || dummy != 0 {
				t.Errorf("ctl=1: dst=%#x dummy=%#x", dst, dummy)
			}
			dst, dummy = runCcopy(t, s, 0)
			if dst != 0 || dummy != 0xAB {
				t.Errorf("ctl=0: dst=%#x dummy=%#x", dst, dummy)
			}
		})
	}
}

func TestPreloadEmitsUnbalancedSequence(t *testing.T) {
	code, err := Compile(ccopySrc, LowerPreload)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(code, "ccopy_fix") {
		t.Errorf("preload lowering missing fix block:\n%s", code)
	}
	// The fix block holds exactly the two extra instructions of
	// Listing 4: a register patch and a jump back.
	idx := strings.Index(code, "ccopy_fix")
	tail := code[idx:]
	if !strings.Contains(tail, "mv   a0") || !strings.Contains(tail, "j    ccopy_go") {
		t.Errorf("fix block malformed:\n%s", tail)
	}
}

func TestBalancedEmitsBranchlessSelect(t *testing.T) {
	code, err := Compile(ccopySrc, LowerBalanced)
	if err != nil {
		t.Fatal(err)
	}
	body := extractFunc(code, "ccopy")
	if strings.Contains(body, "beqz") || strings.Contains(body, "bnez") {
		t.Errorf("balanced ccopy contains branches:\n%s", body)
	}
	for _, want := range []string{"snez", "neg", "xor", "and"} {
		if !strings.Contains(body, want) {
			t.Errorf("balanced ccopy missing %q:\n%s", want, body)
		}
	}
}

func extractFunc(code, name string) string {
	start := strings.Index(code, name+":")
	end := strings.Index(code[start:], "\tret\n")
	return code[start : start+end]
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"func f( { }",
		"func f() { var = 1; }",
		"func f() { return 1 }",
		"func f() { if x { } }",
		"func f() { 1 +; }",
		"notafunc",
		"func f() { @ }",
	}
	for _, src := range bad {
		if _, err := Compile(src, LowerPlain); err == nil {
			t.Errorf("Compile(%q): expected error", src)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	bad := map[string]string{
		"undefined var":  "func f() { return nope; }",
		"redeclared":     "func f(a) { var a = 1; return a; }",
		"too many parms": "func f(a,b,c,d,e,f1,g,h,i) { return 0; }",
	}
	for name, src := range bad {
		t.Run(name, func(t *testing.T) {
			if _, err := Compile(src, LowerPlain); err == nil {
				t.Error("expected compile error")
			}
		})
	}
}

func TestCompiledOutputAssembles(t *testing.T) {
	for _, s := range []Strategy{LowerPlain, LowerBalanced, LowerPreload} {
		code, err := Compile(ccopySrc, s)
		if err != nil {
			t.Fatal(err)
		}
		full := "\t.text\n_start:\n\tli a7, 93\n\tli a0, 0\n\tecall\n" + code
		if _, err := asm.Assemble(full); err != nil {
			t.Errorf("strategy %v output does not assemble: %v", s, err)
		}
	}
}

func TestStrategyString(t *testing.T) {
	if LowerPlain.String() != "plain" || LowerBalanced.String() != "balanced" ||
		LowerPreload.String() != "preload" || Strategy(0).String() != "strategy?" {
		t.Error("strategy names wrong")
	}
}
