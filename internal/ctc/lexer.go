// Package ctc implements a miniature compiler for a C-like language,
// targeting the RV64 assembly dialect of internal/asm. Its purpose is to
// reproduce the paper's ME-V1-CV case study as a real compiler artefact:
// the same conditional-copy source can be lowered either with the
// constant-time branchless strategy or with the "argument preload"
// optimisation that produces the unbalanced sequence of Listing 4, and
// MicroSampler then distinguishes the two binaries.
package ctc

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota + 1
	tokIdent
	tokNumber
	tokPunct // operators and punctuation
	tokKeyword
)

var keywords = map[string]bool{
	"func": true, "var": true, "if": true, "else": true,
	"while": true, "return": true,
}

type token struct {
	kind tokKind
	text string
	line int
}

// lexError reports a tokenisation failure.
type lexError struct {
	line int
	msg  string
}

func (e *lexError) Error() string { return fmt.Sprintf("ctc: line %d: %s", e.line, e.msg) }

var multiCharOps = []string{
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
}

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case unicode.IsDigit(rune(c)):
			j := i
			for j < len(src) && (isAlnum(src[j])) {
				j++
			}
			text := src[i:j]
			if _, err := strconv.ParseInt(text, 0, 64); err != nil {
				if _, uerr := strconv.ParseUint(text, 0, 64); uerr != nil {
					return nil, &lexError{line, "bad number " + text}
				}
			}
			toks = append(toks, token{tokNumber, text, line})
			i = j
		case isAlpha(c):
			j := i
			for j < len(src) && isAlnum(src[j]) {
				j++
			}
			text := src[i:j]
			kind := tokIdent
			if keywords[text] {
				kind = tokKeyword
			}
			toks = append(toks, token{kind, text, line})
			i = j
		default:
			matched := false
			for _, op := range multiCharOps {
				if strings.HasPrefix(src[i:], op) {
					toks = append(toks, token{tokPunct, op, line})
					i += len(op)
					matched = true
					break
				}
			}
			if matched {
				continue
			}
			if strings.ContainsRune("+-*/%&|^~!<>=(){},;", rune(c)) {
				toks = append(toks, token{tokPunct, string(c), line})
				i++
				continue
			}
			return nil, &lexError{line, fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, token{tokEOF, "", line})
	return toks, nil
}

func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isAlnum(c byte) bool { return isAlpha(c) || (c >= '0' && c <= '9') }
