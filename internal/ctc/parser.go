package ctc

import "fmt"

// AST node types.

// Program is a parsed compilation unit.
type Program struct {
	Funcs []*FuncDef
}

// FuncDef is a function definition. All values are 64-bit unsigned
// words, as in the constant-time kernels the language exists to express.
type FuncDef struct {
	Name   string
	Params []string
	Body   []Stmt
}

// Stmt is a statement.
type Stmt interface{ stmt() }

// VarStmt declares and initialises a local.
type VarStmt struct {
	Name string
	Init Expr
}

// AssignStmt assigns to a local or parameter.
type AssignStmt struct {
	Name  string
	Value Expr
}

// IfStmt is a conditional with an optional else branch.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// WhileStmt is a loop.
type WhileStmt struct {
	Cond Expr
	Body []Stmt
}

// ReturnStmt returns an optional value.
type ReturnStmt struct {
	Value Expr // may be nil
}

// ExprStmt evaluates an expression for its side effects (calls).
type ExprStmt struct {
	X Expr
}

func (*VarStmt) stmt()    {}
func (*AssignStmt) stmt() {}
func (*IfStmt) stmt()     {}
func (*WhileStmt) stmt()  {}
func (*ReturnStmt) stmt() {}
func (*ExprStmt) stmt()   {}

// Expr is an expression.
type Expr interface{ expr() }

// NumExpr is an integer literal.
type NumExpr struct {
	Value uint64
}

// IdentExpr references a local or parameter.
type IdentExpr struct {
	Name string
}

// CallExpr calls a function (user-defined or builtin load/store).
type CallExpr struct {
	Name string
	Args []Expr
}

// BinExpr is a binary operation.
type BinExpr struct {
	Op   string
	L, R Expr
}

// UnExpr is a unary operation.
type UnExpr struct {
	Op string
	X  Expr
}

func (*NumExpr) expr()   {}
func (*IdentExpr) expr() {}
func (*CallExpr) expr()  {}
func (*BinExpr) expr()   {}
func (*UnExpr) expr()    {}

// ParseError reports a syntax error.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("ctc: line %d: %s", e.Line, e.Msg) }

type parser struct {
	toks []token
	pos  int
}

// Parse parses source text into a Program.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.at(tokEOF, "") {
		fn, err := p.funcDef()
		if err != nil {
			return nil, err
		}
		prog.Funcs = append(prog.Funcs, fn)
	}
	if len(prog.Funcs) == 0 {
		return nil, &ParseError{1, "no functions"}
	}
	return prog, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	t := p.cur()
	return t, &ParseError{t.Line(), fmt.Sprintf("expected %q, got %q", text, t.text)}
}

// Line returns the source line of the token.
func (t token) Line() int { return t.line }

func (p *parser) funcDef() (*FuncDef, error) {
	if _, err := p.expect(tokKeyword, "func"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, &ParseError{p.cur().line, "expected function name"}
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	fn := &FuncDef{Name: name.text}
	for !p.at(tokPunct, ")") {
		param, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, &ParseError{p.cur().line, "expected parameter name"}
		}
		fn.Params = append(fn.Params, param.text)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	fn.Body, err = p.block()
	if err != nil {
		return nil, err
	}
	return fn, nil
}

func (p *parser) block() ([]Stmt, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	var out []Stmt
	for !p.at(tokPunct, "}") {
		if p.at(tokEOF, "") {
			return nil, &ParseError{p.cur().line, "unexpected end of file in block"}
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	p.next() // consume }
	return out, nil
}

func (p *parser) statement() (Stmt, error) {
	switch {
	case p.accept(tokKeyword, "var"):
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, &ParseError{p.cur().line, "expected variable name"}
		}
		if _, err := p.expect(tokPunct, "="); err != nil {
			return nil, err
		}
		init, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &VarStmt{Name: name.text, Init: init}, nil

	case p.accept(tokKeyword, "if"):
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Cond: cond, Then: then}
		if p.accept(tokKeyword, "else") {
			st.Else, err = p.block()
			if err != nil {
				return nil, err
			}
		}
		return st, nil

	case p.accept(tokKeyword, "while"):
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body}, nil

	case p.accept(tokKeyword, "return"):
		st := &ReturnStmt{}
		if !p.at(tokPunct, ";") {
			v, err := p.expression()
			if err != nil {
				return nil, err
			}
			st.Value = v
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return st, nil
	}

	// Assignment or expression statement.
	if p.cur().kind == tokIdent && p.toks[p.pos+1].kind == tokPunct &&
		p.toks[p.pos+1].text == "=" {
		name := p.next()
		p.next() // =
		v, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &AssignStmt{Name: name.text, Value: v}, nil
	}
	x, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	return &ExprStmt{X: x}, nil
}

// Binary operator precedence (higher binds tighter).
var precedence = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) expression() (Expr, error) { return p.binary(0) }

func (p *parser) binary(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		prec, ok := precedence[t.text]
		if t.kind != tokPunct || !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinExpr{Op: t.text, L: lhs, R: rhs}
	}
}

func (p *parser) unary() (Expr, error) {
	t := p.cur()
	if t.kind == tokPunct && (t.text == "-" || t.text == "~" || t.text == "!") {
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: t.text, X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.next()
	switch {
	case t.kind == tokNumber:
		v, err := parseUint(t.text)
		if err != nil {
			return nil, &ParseError{t.line, err.Error()}
		}
		return &NumExpr{Value: v}, nil
	case t.kind == tokIdent:
		if p.at(tokPunct, "(") {
			p.next()
			call := &CallExpr{Name: t.text}
			for !p.at(tokPunct, ")") {
				arg, err := p.expression()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if !p.accept(tokPunct, ",") {
					break
				}
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &IdentExpr{Name: t.text}, nil
	case t.kind == tokPunct && t.text == "(":
		x, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, &ParseError{t.line, fmt.Sprintf("unexpected token %q", t.text)}
}

func parseUint(s string) (uint64, error) {
	var v uint64
	var err error
	if len(s) > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X') {
		v, err = parseHex(s[2:])
	} else {
		for i := 0; i < len(s); i++ {
			if s[i] < '0' || s[i] > '9' {
				return 0, fmt.Errorf("bad number %q", s)
			}
			v = v*10 + uint64(s[i]-'0')
		}
	}
	return v, err
}

func parseHex(s string) (uint64, error) {
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, fmt.Errorf("bad hex digit %q", c)
		}
		v = v<<4 | d
	}
	return v, nil
}
