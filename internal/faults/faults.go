// Package faults provides the failure-handling primitives shared by
// every layer of the pipeline: transient/permanent error classification
// markers, panic capture with stack retention, and a deterministic,
// seedable fault injector used to chaos-test the verification pipeline
// end to end.
//
// Classification is the contract between the layers. A run attempt that
// fails with an error marked Transient (an injected transient fault, a
// recovered panic, a run-deadline expiry, a watchdog stall) may be
// re-executed by core.Verify's retry loop; an error marked Permanent —
// or any unmarked error, which is treated as permanent — surfaces
// immediately. The outermost marker wins, so Permanent(Transient(err))
// is permanent.
package faults

import (
	"errors"
	"fmt"
)

// classified wraps an error with a retryability verdict.
type classified struct {
	err       error
	transient bool
}

func (c *classified) Error() string {
	if c.transient {
		return "transient: " + c.err.Error()
	}
	return "permanent: " + c.err.Error()
}

func (c *classified) Unwrap() error { return c.err }

// Transient marks err as retryable. A nil err stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, transient: true}
}

// Permanent marks err as not retryable, overriding any transient marker
// wrapped deeper in the chain. A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, transient: false}
}

// IsTransient reports whether err carries a transient marker as its
// outermost classification. Unmarked errors are not transient.
func IsTransient(err error) bool {
	var c *classified
	if errors.As(err, &c) {
		return c.transient
	}
	return false
}

// IsPermanent reports whether err carries a permanent marker as its
// outermost classification. Unmarked errors report false: they are
// treated as permanent by retry loops but were never classified.
func IsPermanent(err error) bool {
	var c *classified
	if errors.As(err, &c) {
		return !c.transient
	}
	return false
}

// PanicError is a recovered panic converted into an error, with the
// goroutine stack captured at the recovery site. Workers recover panics
// from probes, workloads and injected faults into a PanicError instead
// of crashing the process.
type PanicError struct {
	// Value is the value the goroutine panicked with.
	Value any
	// Stack is the stack trace captured by debug.Stack at recovery.
	Stack []byte
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("recovered panic: %v", p.Value)
}
