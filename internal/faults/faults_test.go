package faults

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestClassification(t *testing.T) {
	base := errors.New("boom")
	tr := Transient(base)
	pe := Permanent(base)

	if !IsTransient(tr) || IsPermanent(tr) {
		t.Errorf("Transient marker: IsTransient=%v IsPermanent=%v", IsTransient(tr), IsPermanent(tr))
	}
	if !IsPermanent(pe) || IsTransient(pe) {
		t.Errorf("Permanent marker: IsPermanent=%v IsTransient=%v", IsPermanent(pe), IsTransient(pe))
	}
	if IsTransient(base) || IsPermanent(base) {
		t.Error("unmarked error must carry no classification")
	}
	if IsTransient(nil) || IsPermanent(nil) {
		t.Error("nil error must carry no classification")
	}
	if Transient(nil) != nil || Permanent(nil) != nil {
		t.Error("marking nil must stay nil")
	}

	// The outermost marker wins; the chain stays intact.
	flip := Permanent(Transient(base))
	if IsTransient(flip) || !IsPermanent(flip) {
		t.Error("Permanent(Transient(err)) must be permanent")
	}
	if !errors.Is(flip, base) {
		t.Error("classification must not break errors.Is")
	}
	wrapped := fmt.Errorf("run 3: %w", Transient(base))
	if !IsTransient(wrapped) {
		t.Error("classification must survive fmt.Errorf %w wrapping")
	}
	if !strings.Contains(tr.Error(), "transient: boom") {
		t.Errorf("transient message: %q", tr.Error())
	}
}

func TestPanicError(t *testing.T) {
	pe := &PanicError{Value: "oops", Stack: []byte("stack")}
	if !strings.Contains(pe.Error(), "oops") {
		t.Errorf("PanicError message: %q", pe.Error())
	}
	var got *PanicError
	if !errors.As(Transient(pe), &got) || got != pe {
		t.Error("PanicError must survive classification for errors.As")
	}
}

// TestPlanDeterministicReplay is the injector's core contract: the same
// seed yields the identical fault schedule, and distinct seeds diverge.
func TestPlanDeterministicReplay(t *testing.T) {
	cfg := Config{PTransient: 0.2, PPermanent: 0.1, PPanic: 0.1, PHang: 0.1, PSlow: 0.1}
	a := New(42, cfg)
	b := New(42, cfg)
	c := New(43, cfg)
	same, diff := true, false
	for run := 0; run < 64; run++ {
		for attempt := 0; attempt < 4; attempt++ {
			pa, pb, pc := a.Plan(run, attempt), b.Plan(run, attempt), c.Plan(run, attempt)
			if pa != pb {
				same = false
			}
			if pa != pc {
				diff = true
			}
			// Replaying the same (run, attempt) must not consume state.
			if again := a.Plan(run, attempt); again != pa {
				t.Fatalf("Plan(%d,%d) not pure: %+v then %+v", run, attempt, pa, again)
			}
			if pa.Kind != KindNone && (pa.Cycle < 1 || pa.Cycle > 2048) {
				t.Fatalf("Plan(%d,%d) cycle %d out of [1,2048]", run, attempt, pa.Cycle)
			}
			if pa.Kind == KindNone && pa.Cycle != 0 {
				t.Fatalf("fault-free plan with cycle %d", pa.Cycle)
			}
		}
	}
	if !same {
		t.Error("same seed produced different schedules")
	}
	if !diff {
		t.Error("different seeds produced identical schedules")
	}
}

// TestPlanMixCoverage checks every kind actually occurs under a mixed
// config — the schedule is not degenerate.
func TestPlanMixCoverage(t *testing.T) {
	in := New(7, Config{PTransient: 0.2, PPermanent: 0.1, PPanic: 0.15, PHang: 0.1, PSlow: 0.15})
	seen := map[Kind]int{}
	for run := 0; run < 400; run++ {
		seen[in.Plan(run, 0).Kind]++
	}
	for _, k := range []Kind{KindNone, KindTransient, KindPermanent, KindPanic, KindHang, KindSlow} {
		if seen[k] == 0 {
			t.Errorf("kind %v never drawn in 400 plans (%v)", k, seen)
		}
	}
	// Roughly 30% of plans should be fault-free under a 0.7 total rate.
	if seen[KindNone] < 40 || seen[KindNone] > 240 {
		t.Errorf("fault-free rate implausible: %d/400", seen[KindNone])
	}
}

// findPlanned locates a (run, attempt) whose plan has the wanted kind,
// by construction of a single-kind config.
func findPlanned(t *testing.T, in *Injector, want Kind) (int, Plan) {
	t.Helper()
	for run := 0; run < 4096; run++ {
		if p := in.Plan(run, 0); p.Kind == want {
			return run, p
		}
	}
	t.Fatalf("no %v fault planned in 4096 runs", want)
	return 0, Plan{}
}

func TestHookFiresAtPlannedCycle(t *testing.T) {
	in := New(1, Config{PTransient: 0.5})
	run, plan := findPlanned(t, in, KindTransient)
	hook := in.Hook(run, 0)
	if hook == nil {
		t.Fatal("planned fault must yield a hook")
	}
	ctx := context.Background()
	for cycle := int64(0); cycle < plan.Cycle; cycle++ {
		if err := hook(ctx, cycle); err != nil {
			t.Fatalf("hook fired early at cycle %d (planned %d): %v", cycle, plan.Cycle, err)
		}
	}
	err := hook(ctx, plan.Cycle)
	if err == nil || !IsTransient(err) {
		t.Fatalf("hook at planned cycle: %v", err)
	}
	// One-shot: the fault does not fire again.
	if err := hook(ctx, plan.Cycle+1); err != nil {
		t.Errorf("fault fired twice: %v", err)
	}
	fired := in.Fired()
	if len(fired) != 1 || fired[0].Run != run || fired[0].Plan != plan {
		t.Errorf("firing log: %+v", fired)
	}
}

func TestHookFaultFreeAttemptIsNil(t *testing.T) {
	in := New(1, Config{PTransient: 0.5})
	for run := 0; run < 4096; run++ {
		if in.Plan(run, 0).Kind == KindNone {
			if in.Hook(run, 0) != nil {
				t.Fatal("fault-free attempt must have a nil hook (zero-cost path)")
			}
			return
		}
	}
	t.Fatal("no fault-free run found")
}

func TestHookPanics(t *testing.T) {
	in := New(3, Config{PPanic: 1})
	run, plan := findPlanned(t, in, KindPanic)
	hook := in.Hook(run, 0)
	defer func() {
		if recover() == nil {
			t.Error("panic fault did not panic")
		}
	}()
	_ = hook(context.Background(), plan.Cycle)
}

func TestHookHangHonoursContext(t *testing.T) {
	in := New(5, Config{PHang: 1, HangFor: time.Minute})
	run, plan := findPlanned(t, in, KindHang)
	hook := in.Hook(run, 0)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := hook(ctx, plan.Cycle)
	if err == nil || !IsTransient(err) || !errors.Is(err, context.Canceled) {
		t.Fatalf("hang abort: %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("hang ignored cancellation for %v", d)
	}
}

func TestHookHangBackstopExpires(t *testing.T) {
	in := New(5, Config{PHang: 1, HangFor: 5 * time.Millisecond})
	run, plan := findPlanned(t, in, KindHang)
	err := in.Hook(run, 0)(context.Background(), plan.Cycle)
	if err == nil || !IsTransient(err) || !strings.Contains(err.Error(), "hang expired") {
		t.Fatalf("hang backstop: %v", err)
	}
}

func TestHookSlowInjectsLatency(t *testing.T) {
	in := New(9, Config{PSlow: 1, SlowFor: 20 * time.Millisecond})
	run, plan := findPlanned(t, in, KindSlow)
	hook := in.Hook(run, 0)
	start := time.Now()
	if err := hook(context.Background(), plan.Cycle); err != nil {
		t.Fatalf("slow fault must not error: %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Errorf("slow fault injected only %v", d)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNone: "none", KindTransient: "transient", KindPermanent: "permanent",
		KindPanic: "panic", KindHang: "hang", KindSlow: "slow", Kind(99): "Kind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q want %q", k, got, want)
		}
	}
}
