package faults

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Kind enumerates the failure modes the injector models — the ones long
// instrumentation campaigns actually see.
type Kind uint8

// Fault kinds.
const (
	KindNone      Kind = iota // fault-free attempt
	KindTransient             // run error that a retry would clear
	KindPermanent             // run error no retry can clear
	KindPanic                 // panic mid-run (probe or workload bug)
	KindHang                  // blocks until cancelled (stuck I/O, deadlock)
	KindSlow                  // injected latency without an error
)

func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindTransient:
		return "transient"
	case KindPermanent:
		return "permanent"
	case KindPanic:
		return "panic"
	case KindHang:
		return "hang"
	case KindSlow:
		return "slow"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Config sets the per-attempt fault probabilities and shapes. The
// probabilities are evaluated in field order against one uniform draw
// per (run, attempt); their sum must not exceed 1 — the remainder is
// the fault-free case.
type Config struct {
	PTransient float64 // probability of an injected transient run error
	PPermanent float64 // probability of an injected permanent run error
	PPanic     float64 // probability of an injected panic
	PHang      float64 // probability of an injected hang
	PSlow      float64 // probability of injected latency

	// MaxCycle bounds the simulated cycle at which a fault fires; the
	// cycle is drawn deterministically in [1, MaxCycle] (default 2048).
	// Programs that exit earlier never reach the fault — exactly like a
	// real crash window.
	MaxCycle int64
	// HangFor caps how long a hang blocks when the surrounding context
	// is never cancelled (default 30s) — a backstop so an unwatched
	// hang cannot outlive the test binary.
	HangFor time.Duration
	// SlowFor is the latency a Slow fault injects (default 10ms).
	SlowFor time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxCycle <= 0 {
		c.MaxCycle = 2048
	}
	if c.HangFor <= 0 {
		c.HangFor = 30 * time.Second
	}
	if c.SlowFor <= 0 {
		c.SlowFor = 10 * time.Millisecond
	}
	return c
}

// Plan is the fault scheduled for one run attempt.
type Plan struct {
	Kind Kind
	// Cycle is the simulated cycle at which the fault fires (>= 1 for
	// any Kind other than None).
	Cycle int64
}

// Firing records one fault the injector actually delivered.
type Firing struct {
	Run, Attempt int
	Plan         Plan
}

// Injector is a deterministic, seedable source of injected faults. The
// schedule is a pure function of (seed, run, attempt): the same seed
// replays the identical fault sequence, so a failing chaos seed
// reproduces offline. Injectors are safe for concurrent use — parallel
// run workers share one.
type Injector struct {
	seed uint64
	cfg  Config

	mu    sync.Mutex
	fired []Firing
}

// New returns an injector for the given seed and fault mix.
func New(seed uint64, cfg Config) *Injector {
	return &Injector{seed: seed, cfg: cfg.withDefaults()}
}

// splitmix64 is the avalanche mixer behind the schedule: cheap, and
// statistically solid enough that fault draws across (run, attempt)
// pairs are independent for chaos-testing purposes.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Plan returns the fault scheduled for the given run attempt — a pure
// function of the injector's seed, never consuming shared state.
func (in *Injector) Plan(run, attempt int) Plan {
	h := splitmix64(in.seed ^ splitmix64(uint64(run)<<32|uint64(uint32(attempt))))
	u := float64(h>>11) / (1 << 53) // uniform in [0,1)
	kind := KindNone
	for _, c := range []struct {
		p float64
		k Kind
	}{
		{in.cfg.PTransient, KindTransient},
		{in.cfg.PPermanent, KindPermanent},
		{in.cfg.PPanic, KindPanic},
		{in.cfg.PHang, KindHang},
		{in.cfg.PSlow, KindSlow},
	} {
		if u < c.p {
			kind = c.k
			break
		}
		u -= c.p
	}
	if kind == KindNone {
		return Plan{}
	}
	cycle := 1 + int64(splitmix64(h)%uint64(in.cfg.MaxCycle))
	return Plan{Kind: kind, Cycle: cycle}
}

// Hook returns the per-cycle fault hook for one run attempt, shaped for
// sim.Machine.SetFaultHook and core.Options.FaultHook. A nil hook is
// returned for fault-free attempts, so the simulator's zero-fault loop
// stays hook-free. The hook fires its plan once, when simulation first
// reaches the planned cycle: Transient/Permanent return classified
// errors, Panic panics, Hang blocks until ctx is cancelled (bounded by
// Config.HangFor), Slow sleeps Config.SlowFor and continues.
func (in *Injector) Hook(run, attempt int) func(ctx context.Context, cycle int64) error {
	plan := in.Plan(run, attempt)
	if plan.Kind == KindNone {
		return nil
	}
	fired := false
	return func(ctx context.Context, cycle int64) error {
		if fired || cycle < plan.Cycle {
			return nil
		}
		fired = true
		in.record(Firing{Run: run, Attempt: attempt, Plan: plan})
		at := fmt.Sprintf("run %d attempt %d cycle %d", run, attempt, cycle)
		switch plan.Kind {
		case KindTransient:
			return Transient(fmt.Errorf("faults: injected transient error (%s)", at))
		case KindPermanent:
			return Permanent(fmt.Errorf("faults: injected permanent error (%s)", at))
		case KindPanic:
			panic(fmt.Sprintf("faults: injected panic (%s)", at))
		case KindHang:
			t := time.NewTimer(in.cfg.HangFor)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return Transient(fmt.Errorf("faults: injected hang aborted (%s): %w", at, ctx.Err()))
			case <-t.C:
				return Transient(fmt.Errorf("faults: injected hang expired after %v (%s)", in.cfg.HangFor, at))
			}
		case KindSlow:
			time.Sleep(in.cfg.SlowFor)
		}
		return nil
	}
}

// record appends a delivered fault to the firing log.
func (in *Injector) record(f Firing) {
	in.mu.Lock()
	in.fired = append(in.fired, f)
	in.mu.Unlock()
}

// Fired returns a copy of every fault delivered so far, in delivery
// order. Order across parallel runs is nondeterministic; the set is
// not.
func (in *Injector) Fired() []Firing {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Firing, len(in.fired))
	copy(out, in.fired)
	return out
}
