// Package features implements the root-cause extraction of MicroSampler
// (Section V-C3 of the paper): once a microarchitectural unit shows a
// statistically significant correlation, feature uniqueness pinpoints
// values (addresses, PCs, activity) that appear in only one secret
// class, and feature ordering pinpoints values that appear in all
// classes but in a consistently different chronological order.
package features

import (
	"sort"

	"microsampler/internal/snapshot"
)

// Uniqueness returns, per class, the sorted feature values (non-zero
// matrix cells) that appear in that class's snapshots and in no other
// class's.
func Uniqueness(s *snapshot.Store) map[uint64][]uint64 {
	valuesBy := valuesByClass(s)
	out := make(map[uint64][]uint64, len(valuesBy))
	for class, vals := range valuesBy {
		var unique []uint64
		for v := range vals {
			inOther := false
			for other, ovals := range valuesBy {
				if other == class {
					continue
				}
				if _, ok := ovals[v]; ok {
					inOther = true
					break
				}
			}
			if !inOther {
				unique = append(unique, v)
			}
		}
		sort.Slice(unique, func(i, j int) bool { return unique[i] < unique[j] })
		out[class] = unique
	}
	return out
}

// SharedValues returns the sorted feature values present in every class.
func SharedValues(s *snapshot.Store) []uint64 {
	valuesBy := valuesByClass(s)
	if len(valuesBy) == 0 {
		return nil
	}
	var shared []uint64
	classes := classList(valuesBy)
	for v := range valuesBy[classes[0]] {
		all := true
		for _, c := range classes[1:] {
			if _, ok := valuesBy[c][v]; !ok {
				all = false
				break
			}
		}
		if all {
			shared = append(shared, v)
		}
	}
	sort.Slice(shared, func(i, j int) bool { return shared[i] < shared[j] })
	return shared
}

// OrderingMismatch describes two classes whose shared features appear in
// consistently different chronological order.
type OrderingMismatch struct {
	ClassA, ClassB uint64
	OrderA, OrderB []uint64 // first-appearance sequences of shared values
}

// Ordering compares the chronological first-appearance order of shared
// feature values between every pair of classes, using each class's
// modal (most frequent) snapshot as the representative execution. It
// returns the pairs whose orders differ.
func Ordering(s *snapshot.Store) []OrderingMismatch {
	shared := SharedValues(s)
	if len(shared) < 2 {
		return nil
	}
	sharedSet := make(map[uint64]struct{}, len(shared))
	for _, v := range shared {
		sharedSet[v] = struct{}{}
	}
	modal := s.ModalByClass()
	classes := make([]uint64, 0, len(modal))
	for c := range modal {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })

	orders := make(map[uint64][]uint64, len(classes))
	for _, c := range classes {
		orders[c] = appearanceOrder(modal[c].Rep, sharedSet)
	}

	var out []OrderingMismatch
	for i := 0; i < len(classes); i++ {
		for j := i + 1; j < len(classes); j++ {
			a, b := classes[i], classes[j]
			if !seqEqual(orders[a], orders[b]) {
				out = append(out, OrderingMismatch{
					ClassA: a, ClassB: b,
					OrderA: orders[a], OrderB: orders[b],
				})
			}
		}
	}
	return out
}

// appearanceOrder scans a matrix row-major and returns the values of
// interest in first-appearance order.
func appearanceOrder(rows [][]uint64, of map[uint64]struct{}) []uint64 {
	seen := make(map[uint64]struct{}, len(of))
	var out []uint64
	for _, row := range rows {
		for _, v := range row {
			if v == 0 {
				continue
			}
			if _, want := of[v]; !want {
				continue
			}
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	return out
}

func valuesByClass(s *snapshot.Store) map[uint64]map[uint64]struct{} {
	out := make(map[uint64]map[uint64]struct{})
	for _, e := range s.Entries() {
		for class := range e.CountByClass {
			set := out[class]
			if set == nil {
				set = make(map[uint64]struct{})
				out[class] = set
			}
			for _, row := range e.Rep {
				for _, v := range row {
					if v != 0 {
						set[v] = struct{}{}
					}
				}
			}
		}
	}
	return out
}

func classList(m map[uint64]map[uint64]struct{}) []uint64 {
	out := make([]uint64, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func seqEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
