package features

import (
	"testing"

	"microsampler/internal/snapshot"
)

func observe(s *snapshot.Store, class uint64, m [][]uint64, n int) {
	h := snapshot.HashMatrix(m)
	for i := 0; i < n; i++ {
		s.Observe(class, h, m)
	}
}

func TestUniquenessDisjointAddresses(t *testing.T) {
	// Class 0 stores to 0x1000, class 1 stores to 0x2000; 0x500 is
	// touched by both. This is the Fig. 5 scenario.
	s := snapshot.NewStore()
	observe(s, 0, [][]uint64{{0x1000, 0x500}}, 10)
	observe(s, 1, [][]uint64{{0x2000, 0x500}}, 10)
	u := Uniqueness(s)
	if len(u[0]) != 1 || u[0][0] != 0x1000 {
		t.Errorf("class 0 unique = %v want [0x1000]", u[0])
	}
	if len(u[1]) != 1 || u[1][0] != 0x2000 {
		t.Errorf("class 1 unique = %v want [0x2000]", u[1])
	}
	shared := SharedValues(s)
	if len(shared) != 1 || shared[0] != 0x500 {
		t.Errorf("shared = %v want [0x500]", shared)
	}
}

func TestUniquenessIgnoresZeros(t *testing.T) {
	s := snapshot.NewStore()
	observe(s, 0, [][]uint64{{0, 7}}, 3)
	observe(s, 1, [][]uint64{{0, 9}}, 3)
	u := Uniqueness(s)
	for class, vals := range u {
		for _, v := range vals {
			if v == 0 {
				t.Errorf("class %d contains the empty-slot value 0", class)
			}
		}
	}
}

func TestUniquenessIdenticalClasses(t *testing.T) {
	s := snapshot.NewStore()
	m := [][]uint64{{1, 2, 3}}
	observe(s, 0, m, 5)
	observe(s, 1, m, 5)
	u := Uniqueness(s)
	if len(u[0]) != 0 || len(u[1]) != 0 {
		t.Errorf("identical snapshots should yield no unique features: %v", u)
	}
}

func TestOrderingMismatchDetected(t *testing.T) {
	// Same features, consistently different order: the ME-V2-FB ROB-PC
	// scenario (Section VII-B2).
	s := snapshot.NewStore()
	observe(s, 0, [][]uint64{{0x10}, {0x20}, {0x30}}, 8)
	observe(s, 1, [][]uint64{{0x20}, {0x10}, {0x30}}, 8)
	mm := Ordering(s)
	if len(mm) != 1 {
		t.Fatalf("mismatches = %d want 1", len(mm))
	}
	m := mm[0]
	if m.ClassA != 0 || m.ClassB != 1 {
		t.Errorf("classes = %d,%d", m.ClassA, m.ClassB)
	}
	if len(m.OrderA) != 3 || m.OrderA[0] != 0x10 || m.OrderB[0] != 0x20 {
		t.Errorf("orders = %v / %v", m.OrderA, m.OrderB)
	}
}

func TestOrderingNoMismatchWhenSame(t *testing.T) {
	s := snapshot.NewStore()
	// Different timing (row counts) but same feature order.
	observe(s, 0, [][]uint64{{0x10}, {0x10}, {0x20}}, 4)
	observe(s, 1, [][]uint64{{0x10}, {0x20}, {0x20}}, 4)
	if mm := Ordering(s); len(mm) != 0 {
		t.Errorf("unexpected ordering mismatches: %+v", mm)
	}
}

func TestOrderingUsesModalSnapshot(t *testing.T) {
	s := snapshot.NewStore()
	// Class 0's modal snapshot has order 10,20; a rare variant has the
	// reverse but must not drive the verdict.
	observe(s, 0, [][]uint64{{0x10}, {0x20}}, 9)
	observe(s, 0, [][]uint64{{0x20}, {0x10}}, 1)
	observe(s, 1, [][]uint64{{0x10}, {0x20}}, 10)
	if mm := Ordering(s); len(mm) != 0 {
		t.Errorf("modal snapshots agree; unexpected mismatch: %+v", mm)
	}
}

func TestOrderingThreeClasses(t *testing.T) {
	s := snapshot.NewStore()
	observe(s, 0, [][]uint64{{1}, {2}}, 5)
	observe(s, 1, [][]uint64{{1}, {2}}, 5)
	observe(s, 2, [][]uint64{{2}, {1}}, 5)
	mm := Ordering(s)
	if len(mm) != 2 { // (0,2) and (1,2)
		t.Errorf("mismatch pairs = %d want 2: %+v", len(mm), mm)
	}
}

func TestEmptyStore(t *testing.T) {
	s := snapshot.NewStore()
	if u := Uniqueness(s); len(u) != 0 {
		t.Errorf("Uniqueness(empty) = %v", u)
	}
	if sh := SharedValues(s); sh != nil {
		t.Errorf("SharedValues(empty) = %v", sh)
	}
	if mm := Ordering(s); mm != nil {
		t.Errorf("Ordering(empty) = %v", mm)
	}
}
