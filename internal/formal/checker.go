package formal

import (
	"fmt"
	"time"
)

// Violation describes a discovered two-safety counterexample: a pair of
// executions agreeing on public inputs whose observable outputs differ.
type Violation struct {
	Step           int
	StateA, StateB uint64
	Public         uint64
	SecretA        uint64
	SecretB        uint64
	ObsA, ObsB     uint64
}

func (v *Violation) Error() string {
	return fmt.Sprintf(
		"formal: two-safety violation at step %d: public=%#x secrets=(%#x,%#x) obs=(%#x,%#x)",
		v.Step, v.Public, v.SecretA, v.SecretB, v.ObsA, v.ObsB)
}

// Result summarises one verification run.
type Result struct {
	Design        string
	StateBits     int
	ProductStates int // distinct product states explored
	Transitions   int64
	Steps         int
	Elapsed       time.Duration
	Violation     *Violation
}

// Holds reports whether the two-safety property held.
func (r Result) Holds() bool { return r.Violation == nil }

// productState is a pair of machine states in lockstep.
type productState struct{ a, b uint64 }

// Check exhaustively explores the product of two copies of the design
// from reset, driving both copies with every public input value and
// every pair of secret values, for up to maxSteps breadth-first levels.
// The observable outputs of the two copies must agree on every
// transition. The exploration cost is
//
//	O(reachable product states × 2^(publicBits + 2·secretBits))
//
// which is the exponential blow-up in state/input bits that Table VII
// contrasts against MicroSampler's linear scaling.
func Check(n *Netlist, maxSteps int) (Result, error) {
	res := Result{Design: n.Name, StateBits: n.StateBits()}
	if err := n.validate(); err != nil {
		return res, err
	}
	start := time.Now()
	scratch := make([]bool, len(n.gates))

	visited := map[productState]bool{}
	frontier := []productState{{n.resetState, n.resetState}}
	visited[frontier[0]] = true

	publicMax := uint64(1) << n.publicBits
	secretMax := uint64(1) << n.secretBits

	for step := 0; step < maxSteps && len(frontier) > 0; step++ {
		var next []productState
		for _, ps := range frontier {
			for pub := uint64(0); pub < publicMax; pub++ {
				for sa := uint64(0); sa < secretMax; sa++ {
					na, oa := n.eval(ps.a, pub, sa, scratch)
					for sb := uint64(0); sb < secretMax; sb++ {
						nb, ob := n.eval(ps.b, pub, sb, scratch)
						res.Transitions++
						if oa != ob {
							res.Elapsed = time.Since(start)
							res.Steps = step + 1
							res.ProductStates = len(visited)
							res.Violation = &Violation{
								Step: step, StateA: ps.a, StateB: ps.b,
								Public: pub, SecretA: sa, SecretB: sb,
								ObsA: oa, ObsB: ob,
							}
							return res, nil
						}
						np := productState{na, nb}
						if !visited[np] {
							visited[np] = true
							next = append(next, np)
						}
					}
				}
			}
		}
		frontier = next
		res.Steps = step + 1
	}
	res.ProductStates = len(visited)
	res.Elapsed = time.Since(start)
	return res, nil
}
