package formal

// signals returns w state signals starting at bit base.
func stateVec(b *Builder, base, w int) []Signal {
	out := make([]Signal, w)
	for i := range out {
		out[i] = b.State(base + i)
	}
	return out
}

func secretVec(b *Builder, w int) []Signal {
	out := make([]Signal, w)
	for i := range out {
		out[i] = b.Secret(i)
	}
	return out
}

// ALUDesign builds the small data-oblivious ALU used as the 1x design of
// Table VII (standing in for the XCRYPTO ALU verified by XENON). State:
// a 4-bit accumulator and a 2-bit latched mode. Each cycle the secret
// operand is combined into the accumulator according to the public mode;
// the observable "done" line asserts every cycle regardless of data.
func ALUDesign() *Netlist {
	b := NewBuilder("ALU", 6, 2, 2)
	acc := stateVec(b, 0, 4)
	sec := secretVec(b, 2)
	sec = append(sec, b.Const(false), b.Const(false)) // widen to 4 bits

	xorRes := make([]Signal, 4)
	andRes := make([]Signal, 4)
	orRes := make([]Signal, 4)
	for i := 0; i < 4; i++ {
		xorRes[i] = b.Xor(acc[i], sec[i])
		andRes[i] = b.And(acc[i], sec[i])
		orRes[i] = b.Or(acc[i], sec[i])
	}
	addRes := b.Adder(acc, sec)

	m0, m1 := b.Input(0), b.Input(1)
	for i := 0; i < 4; i++ {
		lo := b.Mux(m0, andRes[i], xorRes[i]) // 01 and, 00 xor
		hi := b.Mux(m0, addRes[i], orRes[i])  // 11 add, 10 or
		b.SetNext(i, b.Mux(m1, hi, lo))
	}
	// Latch the mode (state bits 4,5).
	b.SetNext(4, m0)
	b.SetNext(5, m1)

	// Constant-time completion strobe: one cycle per op, always.
	b.Observe(b.Const(true))
	return b.Build()
}

// ALUDesignLeaky is the ALU with a data-dependent early-out: the done
// line asserts early when the secret operand is zero (the classic
// operand-dependent optimisation). The checker must find this.
func ALUDesignLeaky() *Netlist {
	b := NewBuilder("ALU-leaky", 6, 2, 2)
	acc := stateVec(b, 0, 4)
	sec := secretVec(b, 2)
	sec = append(sec, b.Const(false), b.Const(false))

	addRes := b.Adder(acc, sec)
	for i := 0; i < 4; i++ {
		b.SetNext(i, b.Mux(b.Input(0), addRes[i], b.Xor(acc[i], sec[i])))
	}
	b.SetNext(4, b.Input(0))
	b.SetNext(5, b.Input(1))

	// Early done when the operand is zero: secret-dependent timing.
	anyBit := b.Or(b.Secret(0), b.Secret(1))
	b.Observe(b.Not(anyBit))
	return b.Build()
}

// SCARVDesign builds the 8x design of Table VII: a toy in-order
// scalar core in the spirit of the SCARV RISC-V CPU. State (48 bits,
// 8x the ALU's 6): a 4-bit PC, four 8-bit registers (r0–r2, acc), a
// 4-bit flag latch and an 8-bit cycle counter. The public input selects
// the operation; secrets enter through r0 on loads. All observable
// behaviour (the stall strobe) follows the public schedule only, so the
// design is data-oblivious and the two-safety property holds — the cost
// of proving it is what the scalability experiment measures.
func SCARVDesign() *Netlist {
	const (
		pcBase   = 0
		r0Base   = 4
		r1Base   = 12
		r2Base   = 20
		accBase  = 28
		flagBase = 36
		ctrBase  = 40
		bits     = 48
	)
	b := NewBuilder("SCARV", bits, 2, 5)
	pc := stateVec(b, pcBase, 4)
	r0 := stateVec(b, r0Base, 8)
	r1 := stateVec(b, r1Base, 8)
	r2 := stateVec(b, r2Base, 8)
	acc := stateVec(b, accBase, 8)
	ctr := stateVec(b, ctrBase, 8)

	op0, op1 := b.Input(0), b.Input(1)
	sec := secretVec(b, 5)
	for len(sec) < 8 {
		sec = append(sec, b.Const(false))
	}

	// Datapath candidates.
	xorAcc := make([]Signal, 8)
	for i := range xorAcc {
		xorAcc[i] = b.Xor(acc[i], r0[i])
	}
	addAcc := b.Adder(acc, r1)
	rotR2 := make([]Signal, 8)
	for i := range rotR2 {
		rotR2[i] = r2[(i+1)%8]
	}

	// op 00: acc ^= r0 | op 01: acc += r1 | op 10: r0 = secret
	// op 11: r2 = rot(r2) ^ acc; r1 = acc.
	for i := 0; i < 8; i++ {
		aluLo := b.Mux(op0, addAcc[i], xorAcc[i])
		accNext := b.Mux(op1, acc[i], aluLo)
		b.SetNext(accBase+i, accNext)

		r0Next := b.Mux(b.And(op1, b.Not(op0)), sec[i], r0[i])
		b.SetNext(r0Base+i, r0Next)

		r1Next := b.Mux(b.And(op1, op0), acc[i], r1[i])
		b.SetNext(r1Base+i, r1Next)

		r2Next := b.Mux(b.And(op1, op0), b.Xor(rotR2[i], acc[i]), r2[i])
		b.SetNext(r2Base+i, r2Next)
	}

	// PC and cycle counter advance unconditionally (in-order, no
	// data-dependent stalls).
	one4 := []Signal{b.Const(true), b.Const(false), b.Const(false), b.Const(false)}
	pcNext := b.Adder(pc, one4)
	for i := 0; i < 4; i++ {
		b.SetNext(pcBase+i, pcNext[i])
	}
	one8 := make([]Signal, 8)
	for i := range one8 {
		one8[i] = b.Const(i == 0)
	}
	ctrNext := b.Adder(ctr, one8)
	for i := 0; i < 8; i++ {
		b.SetNext(ctrBase+i, ctrNext[i])
	}

	// Internal flags: zero detect on acc (not observable).
	zero := b.Not(b.Or(b.Or(b.Or(acc[0], acc[1]), b.Or(acc[2], acc[3])),
		b.Or(b.Or(acc[4], acc[5]), b.Or(acc[6], acc[7]))))
	b.SetNext(flagBase, zero)
	b.SetNext(flagBase+1, b.Xor(acc[0], acc[7]))
	b.SetNext(flagBase+2, op0)
	b.SetNext(flagBase+3, op1)

	// Observable stall strobe: a function of the public op and the
	// cycle counter's low bits only.
	b.Observe(b.And(op0, ctr[0]))
	b.Observe(b.Xor(op1, ctr[1]))
	return b.Build()
}

// SCARVDesignLeaky plants a data-dependent stall into the SCARV core:
// the stall strobe additionally asserts when the loaded operand register
// is zero, an operand-dependent "fast path" like the paper's fast
// bypass.
func SCARVDesignLeaky() *Netlist {
	n := SCARVDesign()
	n.Name = "SCARV-leaky"
	b := &Builder{n: n}
	r0 := stateVec(b, 4, 8)
	zero := b.Not(b.Or(b.Or(b.Or(r0[0], r0[1]), b.Or(r0[2], r0[3])),
		b.Or(b.Or(r0[4], r0[5]), b.Or(r0[6], r0[7]))))
	b.Observe(zero)
	return b.Build()
}
