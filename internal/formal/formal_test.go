package formal

import (
	"testing"
	"time"
)

func TestALUDesignHolds(t *testing.T) {
	res, err := Check(ALUDesign(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds() {
		t.Fatalf("constant-time ALU reported a violation: %v", res.Violation)
	}
	if res.ProductStates == 0 || res.Transitions == 0 {
		t.Errorf("no exploration happened: %+v", res)
	}
}

func TestALULeakyDetected(t *testing.T) {
	res, err := Check(ALUDesignLeaky(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds() {
		t.Fatal("data-dependent early-out not detected")
	}
	v := res.Violation
	if v.ObsA == v.ObsB {
		t.Errorf("violation with equal observables: %+v", v)
	}
	if v.SecretA == v.SecretB {
		t.Errorf("violation must involve differing secrets: %+v", v)
	}
	if v.Error() == "" {
		t.Error("violation should describe itself")
	}
}

func TestSCARVDesignHoldsBounded(t *testing.T) {
	res, err := Check(SCARVDesign(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds() {
		t.Fatalf("data-oblivious core reported a violation: %v", res.Violation)
	}
	if res.StateBits != 48 {
		t.Errorf("SCARV state bits = %d want 48", res.StateBits)
	}
}

func TestSCARVLeakyDetected(t *testing.T) {
	if testing.Short() {
		t.Skip("product-state exploration of the 48-bit design is slow")
	}
	res, err := Check(SCARVDesignLeaky(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds() {
		t.Fatal("data-dependent stall not detected in leaky core")
	}
}

func TestScalabilityShape(t *testing.T) {
	// The Table VII contrast: the 8x-larger design must cost far more
	// than 8x the verification time, even at a shallower bound.
	aluRes, err := Check(ALUDesign(), 64)
	if err != nil {
		t.Fatal(err)
	}
	scarvRes, err := Check(SCARVDesign(), 2)
	if err != nil {
		t.Fatal(err)
	}
	sizeRatio := float64(scarvRes.StateBits) / float64(aluRes.StateBits)
	if sizeRatio != 8 {
		t.Errorf("size ratio = %v want 8", sizeRatio)
	}
	if scarvRes.Transitions < 30*aluRes.Transitions {
		t.Errorf("expected superlinear blow-up: ALU %d vs SCARV %d transitions",
			aluRes.Transitions, scarvRes.Transitions)
	}
}

func TestCheckRejectsOversizedDesigns(t *testing.T) {
	b := NewBuilder("huge", 63, 2, 2)
	b.Observe(b.Const(true))
	if _, err := Check(b.Build(), 1); err == nil {
		t.Error("expected width-validation error")
	}
}

func TestNetlistDeterminism(t *testing.T) {
	r1, err := Check(ALUDesign(), 16)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Check(ALUDesign(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if r1.ProductStates != r2.ProductStates || r1.Transitions != r2.Transitions {
		t.Errorf("exploration not deterministic: %+v vs %+v", r1, r2)
	}
}

func TestBuilderGateSemantics(t *testing.T) {
	b := NewBuilder("gates", 4, 2, 1)
	x, y := b.Input(0), b.Input(1)
	s := b.Secret(0)
	b.SetNext(0, b.And(x, y))
	b.SetNext(1, b.Or(x, s))
	b.SetNext(2, b.Xor(x, y))
	b.SetNext(3, b.Mux(x, y, s))
	b.Observe(b.Const(true))
	n := b.Build()
	scratch := make([]bool, len(n.gates))
	tests := []struct {
		pub, sec uint64
		want     uint64
	}{
		{0b11, 0, 0b1011}, // and=1 or=1 xor=0 mux(sel=1)=y=1
		{0b01, 1, 0b0110}, // and=0 or=1 xor=1 mux(sel=1)=y=0
		{0b00, 1, 0b1010}, // and=0 or=1 xor=0 mux(sel=0)=sec=1
		{0b10, 0, 0b0100}, // and=0 or=0 xor=1 mux(sel=0)=sec=0
	}
	for _, tt := range tests {
		next, _ := n.eval(0, tt.pub, tt.sec, scratch)
		if next != tt.want {
			t.Errorf("eval(pub=%b, sec=%b) = %04b want %04b",
				tt.pub, tt.sec, next, tt.want)
		}
	}
}

func TestCheckTimes(t *testing.T) {
	res, err := Check(ALUDesign(), 32)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 || res.Elapsed > time.Minute {
		t.Errorf("implausible elapsed time %v", res.Elapsed)
	}
}
