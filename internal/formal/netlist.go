// Package formal implements the baseline that Table VII compares
// MicroSampler against: a XENON-style formal constant-time checker. It
// verifies a two-safety property over gate-level netlists — for every
// reachable pair of executions that agree on public inputs but may
// differ in secrets, the observable (timing) outputs must agree — by
// exhaustive product-state exploration. Like the solver-based tools it
// stands in for, its cost grows superlinearly with the design's state
// bits, which is exactly the scalability contrast the paper draws.
package formal

import "fmt"

// op is a gate operation.
type op uint8

const (
	opConst op = iota + 1
	opInput
	opSecret
	opState
	opNot
	opAnd
	opOr
	opXor
	opMux // sel ? a : b, with sel in c
)

// gate is one node of the combinational DAG.
type gate struct {
	op      op
	a, b, c int // operand gate indices (or input/state bit index)
	val     bool
}

// Netlist is a synchronous circuit: state registers, public and secret
// inputs, a combinational gate DAG, next-state functions and observable
// outputs.
type Netlist struct {
	Name       string
	stateBits  int
	publicBits int
	secretBits int
	gates      []gate
	next       []int // per state bit: gate producing its next value
	observable []int // gates an attacker can time/observe
	resetState uint64
}

// Builder constructs netlists.
type Builder struct {
	n *Netlist
}

// NewBuilder returns a builder for a netlist with the given register and
// input widths.
func NewBuilder(name string, stateBits, publicBits, secretBits int) *Builder {
	n := &Netlist{
		Name:       name,
		stateBits:  stateBits,
		publicBits: publicBits,
		secretBits: secretBits,
		next:       make([]int, stateBits),
	}
	b := &Builder{n: n}
	for i := range n.next {
		n.next[i] = int(b.State(i)) // default: registers hold their value
	}
	return b
}

// Signal is a reference to a gate output.
type Signal int

func (b *Builder) add(g gate) Signal {
	b.n.gates = append(b.n.gates, g)
	return Signal(len(b.n.gates) - 1)
}

// Const returns a constant signal.
func (b *Builder) Const(v bool) Signal { return b.add(gate{op: opConst, val: v}) }

// Input returns the i-th public input bit.
func (b *Builder) Input(i int) Signal { return b.add(gate{op: opInput, a: i}) }

// Secret returns the i-th secret input bit.
func (b *Builder) Secret(i int) Signal { return b.add(gate{op: opSecret, a: i}) }

// State returns the i-th state register's current value.
func (b *Builder) State(i int) Signal { return b.add(gate{op: opState, a: i}) }

// Not returns the negation of s.
func (b *Builder) Not(s Signal) Signal { return b.add(gate{op: opNot, a: int(s)}) }

// And returns x AND y.
func (b *Builder) And(x, y Signal) Signal {
	return b.add(gate{op: opAnd, a: int(x), b: int(y)})
}

// Or returns x OR y.
func (b *Builder) Or(x, y Signal) Signal {
	return b.add(gate{op: opOr, a: int(x), b: int(y)})
}

// Xor returns x XOR y.
func (b *Builder) Xor(x, y Signal) Signal {
	return b.add(gate{op: opXor, a: int(x), b: int(y)})
}

// Mux returns sel ? x : y.
func (b *Builder) Mux(sel, x, y Signal) Signal {
	return b.add(gate{op: opMux, a: int(x), b: int(y), c: int(sel)})
}

// Adder returns the sum bits of x + y (ripple carry, same width).
func (b *Builder) Adder(x, y []Signal) []Signal {
	carry := b.Const(false)
	out := make([]Signal, len(x))
	for i := range x {
		s := b.Xor(x[i], y[i])
		out[i] = b.Xor(s, carry)
		carry = b.Or(b.And(x[i], y[i]), b.And(s, carry))
	}
	return out
}

// SetNext wires the next-state function of register i.
func (b *Builder) SetNext(i int, s Signal) { b.n.next[i] = int(s) }

// Observe marks a signal as attacker-observable.
func (b *Builder) Observe(s Signal) {
	b.n.observable = append(b.n.observable, int(s))
}

// SetReset sets the reset value of the state registers.
func (b *Builder) SetReset(v uint64) { b.n.resetState = v }

// Build finalises the netlist.
func (b *Builder) Build() *Netlist { return b.n }

// StateBits returns the number of state registers: the design-size
// metric of Table I and Table VII.
func (n *Netlist) StateBits() int { return n.stateBits }

// eval computes the next state and observable outputs for one cycle.
// scratch must have len(n.gates) capacity; it is reused across calls.
func (n *Netlist) eval(state, public, secret uint64, scratch []bool) (next, obs uint64) {
	for i := range n.gates {
		g := &n.gates[i]
		var v bool
		switch g.op {
		case opConst:
			v = g.val
		case opInput:
			v = public>>g.a&1 == 1
		case opSecret:
			v = secret>>g.a&1 == 1
		case opState:
			v = state>>g.a&1 == 1
		case opNot:
			v = !scratch[g.a]
		case opAnd:
			v = scratch[g.a] && scratch[g.b]
		case opOr:
			v = scratch[g.a] || scratch[g.b]
		case opXor:
			v = scratch[g.a] != scratch[g.b]
		case opMux:
			if scratch[g.c] {
				v = scratch[g.a]
			} else {
				v = scratch[g.b]
			}
		}
		scratch[i] = v
	}
	for i, gi := range n.next {
		if scratch[gi] {
			next |= 1 << i
		}
	}
	for i, gi := range n.observable {
		if scratch[gi] {
			obs |= 1 << i
		}
	}
	return next, obs
}

func (n *Netlist) validate() error {
	if n.stateBits > 62 || n.publicBits > 16 || n.secretBits > 16 {
		return fmt.Errorf("formal: %s exceeds explorable widths", n.Name)
	}
	return nil
}
