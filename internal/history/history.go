// Package history is the append-only run-history store behind the
// differential observability layer: one fsync'd JSONL index line per
// labeled run (a single verification or a matrix sweep), with the full
// artifacts filed content-addressed in a cache.Disk blob store next to
// the index. The store is the memory that turns one-shot verdicts into
// deltas — "what changed between commit A and commit B" — and follows
// the msd journal's crash-safety discipline: appends are fsync'd
// before they are acknowledged, and a reopen after a crash mid-append
// drops only the torn final line, never an earlier record.
package history

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"microsampler/internal/cache"
)

// Record kinds: what the primary artifact of a record is.
const (
	// KindReport marks a single verification, whose diffable artifact
	// is the report digest (report.ReportDigest JSON).
	KindReport = "report"
	// KindMatrix marks a configuration-grid sweep, whose diffable
	// artifact is the matrix artifact (report.MatrixArtifact JSON).
	KindMatrix = "matrix"
)

// Record is one line of the history index: the distilled verdict of a
// labeled run plus content-addressed references to its artifacts. Time
// and ElapsedMillis are informational perf stats only — diff artifacts
// are built solely from the referenced artifact blobs, which carry no
// wall-clock quantities.
type Record struct {
	// Label identifies the code state that produced the run — a commit
	// SHA by default (version.DefaultLabel), or any user string.
	Label    string `json:"label"`
	Workload string `json:"workload"`
	// Kind is KindReport or KindMatrix.
	Kind string `json:"kind"`
	// Time is the RFC3339 UTC append time (informational).
	Time string `json:"time,omitempty"`

	Leaky      bool     `json:"leaky"`
	LeakyUnits []string `json:"leakyUnits,omitempty"`
	// MaxV is the strongest per-unit Cramér's V of the run (report
	// kind) or the strongest cell MaxV (matrix kind).
	MaxV float64 `json:"maxCramersV,omitempty"`
	// Cells/LeakyCells summarise a matrix record.
	Cells      int      `json:"cells,omitempty"`
	LeakyCells []string `json:"leakyCells,omitempty"`
	Iterations int      `json:"iterations,omitempty"`
	SimCycles  int64    `json:"simCycles,omitempty"`
	// ElapsedMillis is the run's wall-clock cost (informational).
	ElapsedMillis int64 `json:"elapsedMillis,omitempty"`

	// Artifacts maps artifact name (e.g. "digest", "matrix") to the
	// SHA-256 content address of its blob in the store.
	Artifacts map[string]string `json:"artifacts,omitempty"`
}

// Store is the on-disk history: dir/index.jsonl plus dir/blobs/. Safe
// for concurrent use.
type Store struct {
	dir   string
	blobs *cache.Disk

	mu   sync.Mutex
	f    *os.File
	recs []Record
}

// Open loads (creating as needed) the history store rooted at dir. A
// torn final index line — the signature of a crash mid-append — is
// dropped and truncated away; a corrupt line anywhere earlier is an
// error, since silently skipping it would rewrite history.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("history: dir: %w", err)
	}
	blobs, err := cache.NewDisk(filepath.Join(dir, "blobs"))
	if err != nil {
		return nil, fmt.Errorf("history: %w", err)
	}
	path := filepath.Join(dir, "index.jsonl")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("history: index: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("history: read index: %w", err)
	}
	var (
		recs       []Record
		off        int64
		needRepair bool // final line parsed but lost its '\n' terminator
	)
	lines := bytes.Split(data, []byte("\n"))
	for i, line := range lines {
		last := i == len(lines)-1
		if len(bytes.TrimSpace(line)) == 0 {
			// The terminator after the last record, or a blank line.
			if !last {
				off += int64(len(line)) + 1
			}
			continue
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			if last {
				// Torn tail from a crash mid-append: drop it. The
				// truncate below makes the next append start cleanly.
				break
			}
			f.Close()
			return nil, fmt.Errorf("history: corrupt index line %d: %w", i+1, err)
		}
		recs = append(recs, r)
		if last {
			// Complete JSON whose trailing '\n' the crash swallowed:
			// keep the record and re-terminate the line below, so the
			// next append cannot merge into it.
			off += int64(len(line))
			needRepair = true
			continue
		}
		off += int64(len(line)) + 1
	}
	if err := f.Truncate(off); err != nil {
		f.Close()
		return nil, fmt.Errorf("history: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(off, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("history: seek: %w", err)
	}
	if needRepair {
		if _, err := f.Write([]byte("\n")); err != nil {
			f.Close()
			return nil, fmt.Errorf("history: repair tail: %w", err)
		}
	}
	return &Store{dir: dir, blobs: blobs, f: f, recs: recs}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close releases the index file. Records already appended stay durable.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

// BlobKey is the content address of an artifact blob.
func BlobKey(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Append files the artifacts content-addressed, stamps the record with
// their keys (and an append time, if unset), and appends it to the
// index. The blobs and the index line are durable — fsync'd — before
// Append returns the stored record.
func (s *Store) Append(rec Record, artifacts map[string][]byte) (Record, error) {
	if rec.Label == "" {
		return Record{}, fmt.Errorf("history: record needs a label")
	}
	if rec.Kind != KindReport && rec.Kind != KindMatrix {
		return Record{}, fmt.Errorf("history: unknown record kind %q", rec.Kind)
	}
	if rec.Time == "" {
		rec.Time = time.Now().UTC().Format(time.RFC3339)
	}
	if len(artifacts) > 0 {
		rec.Artifacts = make(map[string]string, len(artifacts))
		for name, data := range artifacts {
			key := BlobKey(data)
			if err := s.blobs.Put(key, data); err != nil {
				return Record{}, fmt.Errorf("history: artifact %s: %w", name, err)
			}
			rec.Artifacts[name] = key
		}
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return Record{}, fmt.Errorf("history: encode record: %w", err)
	}
	line = append(line, '\n')

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Write(line); err != nil {
		return Record{}, fmt.Errorf("history: append: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return Record{}, fmt.Errorf("history: sync: %w", err)
	}
	s.recs = append(s.recs, rec)
	return rec, nil
}

// Records returns a copy of every record, in append order.
func (s *Store) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, len(s.recs))
	copy(out, s.recs)
	return out
}

// Len reports the number of records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Latest returns the most recent record matching the given filters; an
// empty filter value matches anything. ok is false when nothing
// matches.
func (s *Store) Latest(label, workload, kind string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.recs) - 1; i >= 0; i-- {
		r := s.recs[i]
		if (label == "" || r.Label == label) &&
			(workload == "" || r.Workload == workload) &&
			(kind == "" || r.Kind == kind) {
			return r, true
		}
	}
	return Record{}, false
}

// Artifact loads a record's named artifact from the blob store.
func (s *Store) Artifact(rec Record, name string) ([]byte, error) {
	key, ok := rec.Artifacts[name]
	if !ok {
		return nil, fmt.Errorf("history: record %s/%s has no artifact %q", rec.Label, rec.Workload, name)
	}
	data, ok, err := s.blobs.Get(key)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("history: artifact %q blob %s missing", name, key[:12])
	}
	return data, nil
}
