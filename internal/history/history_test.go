package history

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func openT(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func rec(label, kind string) Record {
	return Record{Label: label, Workload: "TAGE-HIST", Kind: kind, Leaky: kind == KindMatrix}
}

func TestAppendReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	blob := []byte(`{"workload":"TAGE-HIST"}`)
	stored, err := s.Append(rec("aaa111", KindMatrix), map[string][]byte{"matrix": blob})
	if err != nil {
		t.Fatal(err)
	}
	if stored.Time == "" || stored.Artifacts["matrix"] != BlobKey(blob) {
		t.Fatalf("stored record incomplete: %+v", stored)
	}
	if _, err := s.Append(rec("bbb222", KindReport), nil); err != nil {
		t.Fatal(err)
	}
	s.Close()

	r := openT(t, dir)
	recs := r.Records()
	if len(recs) != 2 || recs[0].Label != "aaa111" || recs[1].Label != "bbb222" {
		t.Fatalf("reopened records: %+v", recs)
	}
	got, err := r.Artifact(recs[0], "matrix")
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("artifact round trip: %q, %v", got, err)
	}
	if _, err := r.Artifact(recs[1], "matrix"); err == nil {
		t.Fatal("missing artifact should error")
	}
}

func TestValidation(t *testing.T) {
	s := openT(t, t.TempDir())
	if _, err := s.Append(Record{Workload: "w", Kind: KindReport}, nil); err == nil {
		t.Error("empty label should be rejected")
	}
	if _, err := s.Append(Record{Label: "l", Workload: "w", Kind: "weird"}, nil); err == nil {
		t.Error("unknown kind should be rejected")
	}
}

// TestTruncatedTailSkipped is the crash-safety contract: a partial
// final index line — the write cut short by a crash — is dropped on
// reopen without losing any earlier record, and the store appends
// cleanly afterwards.
func TestTruncatedTailSkipped(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	for i := 0; i < 3; i++ {
		if _, err := s.Append(rec(fmt.Sprintf("c%d", i), KindReport), nil); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	idx := filepath.Join(dir, "index.jsonl")
	f, err := os.OpenFile(idx, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"label":"torn","workload":"TAGE`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r := openT(t, dir)
	recs := r.Records()
	if len(recs) != 3 {
		t.Fatalf("after torn tail: %d records, want 3 (%+v)", len(recs), recs)
	}
	if _, err := r.Append(rec("after-crash", KindReport), nil); err != nil {
		t.Fatal(err)
	}
	r.Close()

	rr := openT(t, dir)
	if n := rr.Len(); n != 4 {
		t.Fatalf("after repair+append: %d records, want 4", n)
	}
	if got, ok := rr.Latest("after-crash", "", ""); !ok || got.Label != "after-crash" {
		t.Fatalf("appended record lost: %+v ok=%v", got, ok)
	}
}

// A final line that is complete JSON but lost its newline must be kept
// and re-terminated, not merged into the next append.
func TestUnterminatedFinalLineKept(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	if _, err := s.Append(rec("one", KindReport), nil); err != nil {
		t.Fatal(err)
	}
	s.Close()

	idx := filepath.Join(dir, "index.jsonl")
	data, err := os.ReadFile(idx)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(idx, bytes.TrimRight(data, "\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	r := openT(t, dir)
	if r.Len() != 1 {
		t.Fatalf("unterminated record lost: %d", r.Len())
	}
	if _, err := r.Append(rec("two", KindReport), nil); err != nil {
		t.Fatal(err)
	}
	r.Close()

	rr := openT(t, dir)
	recs := rr.Records()
	if len(recs) != 2 || recs[0].Label != "one" || recs[1].Label != "two" {
		t.Fatalf("records merged or lost: %+v", recs)
	}
}

// A corrupt line in the middle of the index is not silently skipped —
// that would rewrite history.
func TestCorruptMiddleLineErrors(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	if _, err := s.Append(rec("one", KindReport), nil); err != nil {
		t.Fatal(err)
	}
	s.Close()

	idx := filepath.Join(dir, "index.jsonl")
	f, err := os.OpenFile(idx, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(f, "not json at all")
	fmt.Fprintln(f, `{"label":"three","workload":"w","kind":"report"}`)
	f.Close()

	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt middle line: %v", err)
	}
}

// TestConcurrentAppendRead drives appends, listings, lookups and
// artifact loads from concurrent goroutines; the race detector pass in
// verify.sh makes this the store's thread-safety gate.
func TestConcurrentAppendRead(t *testing.T) {
	s := openT(t, t.TempDir())
	const writers, perWriter = 4, 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				blob := []byte(fmt.Sprintf(`{"w":%d,"i":%d}`, w, i))
				r := rec(fmt.Sprintf("w%d-i%d", w, i), KindMatrix)
				if _, err := s.Append(r, map[string][]byte{"matrix": blob}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				for _, r := range s.Records() {
					if r.Label == "" {
						t.Error("empty label observed")
						return
					}
					if len(r.Artifacts) > 0 {
						if _, err := s.Artifact(r, "matrix"); err != nil {
							t.Error(err)
							return
						}
					}
				}
				s.Latest("", "TAGE-HIST", KindMatrix)
			}
		}()
	}
	wg.Wait()
	if n := s.Len(); n != writers*perWriter {
		t.Fatalf("lost appends: %d records, want %d", n, writers*perWriter)
	}
}

func TestLatestFilters(t *testing.T) {
	s := openT(t, t.TempDir())
	seq := []Record{
		{Label: "a", Workload: "W1", Kind: KindReport},
		{Label: "a", Workload: "W1", Kind: KindMatrix},
		{Label: "b", Workload: "W2", Kind: KindMatrix},
		{Label: "a", Workload: "W2", Kind: KindReport},
	}
	for _, r := range seq {
		if _, err := s.Append(r, nil); err != nil {
			t.Fatal(err)
		}
	}
	if r, ok := s.Latest("a", "", ""); !ok || r.Workload != "W2" || r.Kind != KindReport {
		t.Errorf("Latest(a): %+v ok=%v", r, ok)
	}
	if r, ok := s.Latest("a", "W1", KindMatrix); !ok || r.Kind != KindMatrix {
		t.Errorf("Latest(a,W1,matrix): %+v ok=%v", r, ok)
	}
	if _, ok := s.Latest("c", "", ""); ok {
		t.Error("Latest(c) should miss")
	}
	if r, ok := s.Latest("", "", KindMatrix); !ok || r.Label != "b" {
		t.Errorf("Latest(kind=matrix): %+v ok=%v", r, ok)
	}
}
