package isa

import "fmt"

func signExtend(v uint32, bits uint) int64 {
	shift := 64 - bits
	return int64(uint64(v)<<shift) >> shift
}

// Decode parses a 32-bit RISC-V machine word into an instruction.
func Decode(word uint32) (Inst, error) {
	opc := word & 0x7F
	rd := Reg(word >> 7 & 0x1F)
	f3 := word >> 12 & 0x7
	rs1 := Reg(word >> 15 & 0x1F)
	rs2 := Reg(word >> 20 & 0x1F)
	f7 := word >> 25 & 0x7F
	immI := signExtend(word>>20, 12)

	switch opc {
	case opcLUI, opcAUIPC:
		op := OpLUI
		if opc == opcAUIPC {
			op = OpAUIPC
		}
		return Inst{Op: op, Rd: rd, Imm: signExtend(word>>12, 20)}, nil

	case opcJAL:
		u := word
		imm := (u>>31&1)<<20 | (u>>21&0x3FF)<<1 | (u>>20&1)<<11 | (u >> 12 & 0xFF << 12)
		return Inst{Op: OpJAL, Rd: rd, Imm: signExtend(imm, 21)}, nil

	case opcJALR:
		return Inst{Op: OpJALR, Rd: rd, Rs1: rs1, Imm: immI}, nil

	case opcBRANCH:
		u := word
		imm := (u>>31&1)<<12 | (u>>25&0x3F)<<5 | (u>>8&0xF)<<1 | (u>>7&1)<<11
		for op, enc := range branchEnc {
			if enc == f3 {
				return Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: signExtend(imm, 13)}, nil
			}
		}

	case opcLOAD:
		for op, enc := range loadEnc {
			if enc == f3 {
				return Inst{Op: op, Rd: rd, Rs1: rs1, Imm: immI}, nil
			}
		}

	case opcSTORE:
		imm := (word>>25&0x7F)<<5 | word>>7&0x1F
		for op, enc := range storeEnc {
			if enc == f3 {
				return Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: signExtend(imm, 12)}, nil
			}
		}

	case opcOPIMM:
		switch f3 {
		case 1:
			return Inst{Op: OpSLLI, Rd: rd, Rs1: rs1, Imm: int64(word >> 20 & 0x3F)}, nil
		case 5:
			op := OpSRLI
			if f7>>1 == 0x10 {
				op = OpSRAI
			}
			return Inst{Op: op, Rd: rd, Rs1: rs1, Imm: int64(word >> 20 & 0x3F)}, nil
		}
		for op, enc := range iArithEnc {
			if enc == f3 {
				return Inst{Op: op, Rd: rd, Rs1: rs1, Imm: immI}, nil
			}
		}

	case opcOPIMM32:
		switch f3 {
		case 0:
			return Inst{Op: OpADDIW, Rd: rd, Rs1: rs1, Imm: immI}, nil
		case 1:
			return Inst{Op: OpSLLIW, Rd: rd, Rs1: rs1, Imm: int64(word >> 20 & 0x1F)}, nil
		case 5:
			op := OpSRLIW
			if f7 == 0x20 {
				op = OpSRAIW
			}
			return Inst{Op: op, Rd: rd, Rs1: rs1, Imm: int64(word >> 20 & 0x1F)}, nil
		}

	case opcOP:
		for op, enc := range rTypeEnc {
			if enc.funct3 == f3 && enc.funct7 == f7 {
				return Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}, nil
			}
		}

	case opcOP32:
		for op, enc := range r32TypeEnc {
			if enc.funct3 == f3 && enc.funct7 == f7 {
				return Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}, nil
			}
		}

	case opcSYSTEM:
		switch word {
		case 0x00000073:
			return Inst{Op: OpECALL}, nil
		case 0x00100073:
			return Inst{Op: OpEBREAK}, nil
		}

	case opcMISCMEM:
		switch f3 {
		case 0:
			return Inst{Op: OpFENCE}, nil
		case 2:
			if word>>20&0xFFF == 2 {
				return Inst{Op: OpCBOFLUSH, Rs1: rs1}, nil
			}
		}

	case opcCUSTOM0:
		if f3 >= 1 && f3 <= 4 {
			return Inst{Op: OpMARK, Rs1: rs1, Imm: int64(f3)}, nil
		}
	}
	return Inst{}, fmt.Errorf("decode: unsupported word %#08x", word)
}
