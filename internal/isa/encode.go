package isa

import "fmt"

// Binary opcode fields (bits [6:0]) of the standard RISC-V encoding.
const (
	opcLOAD    = 0x03
	opcMISCMEM = 0x0F
	opcOPIMM   = 0x13
	opcAUIPC   = 0x17
	opcOPIMM32 = 0x1B
	opcSTORE   = 0x23
	opcOP      = 0x33
	opcLUI     = 0x37
	opcOP32    = 0x3B
	opcBRANCH  = 0x63
	opcJALR    = 0x67
	opcJAL     = 0x6F
	opcSYSTEM  = 0x73
	opcCUSTOM0 = 0x0B // MARK tracing extension
)

type rEnc struct{ funct7, funct3 uint32 }

var rTypeEnc = map[Op]rEnc{
	OpADD: {0x00, 0}, OpSUB: {0x20, 0}, OpSLL: {0x00, 1}, OpSLT: {0x00, 2},
	OpSLTU: {0x00, 3}, OpXOR: {0x00, 4}, OpSRL: {0x00, 5}, OpSRA: {0x20, 5},
	OpOR: {0x00, 6}, OpAND: {0x00, 7},
	OpMUL: {0x01, 0}, OpMULH: {0x01, 1}, OpMULHSU: {0x01, 2}, OpMULHU: {0x01, 3},
	OpDIV: {0x01, 4}, OpDIVU: {0x01, 5}, OpREM: {0x01, 6}, OpREMU: {0x01, 7},
}

var r32TypeEnc = map[Op]rEnc{
	OpADDW: {0x00, 0}, OpSUBW: {0x20, 0}, OpSLLW: {0x00, 1},
	OpSRLW: {0x00, 5}, OpSRAW: {0x20, 5},
	OpMULW: {0x01, 0}, OpDIVW: {0x01, 4}, OpDIVUW: {0x01, 5},
	OpREMW: {0x01, 6}, OpREMUW: {0x01, 7},
}

var iArithEnc = map[Op]uint32{
	OpADDI: 0, OpSLTI: 2, OpSLTIU: 3, OpXORI: 4, OpORI: 6, OpANDI: 7,
}

var loadEnc = map[Op]uint32{
	OpLB: 0, OpLH: 1, OpLW: 2, OpLD: 3, OpLBU: 4, OpLHU: 5, OpLWU: 6,
}

var storeEnc = map[Op]uint32{OpSB: 0, OpSH: 1, OpSW: 2, OpSD: 3}

var branchEnc = map[Op]uint32{
	OpBEQ: 0, OpBNE: 1, OpBLT: 4, OpBGE: 5, OpBLTU: 6, OpBGEU: 7,
}

// Encode serializes the instruction into a 32-bit RISC-V machine word.
func Encode(in Inst) (uint32, error) {
	rd, rs1, rs2 := uint32(in.Rd), uint32(in.Rs1), uint32(in.Rs2)
	switch {
	case in.Op == OpLUI || in.Op == OpAUIPC:
		if in.Imm < -(1<<19) || in.Imm >= 1<<19 {
			return 0, fmt.Errorf("encode %v: U-immediate %d out of range", in.Op, in.Imm)
		}
		opc := uint32(opcLUI)
		if in.Op == OpAUIPC {
			opc = opcAUIPC
		}
		return (uint32(in.Imm)&0xFFFFF)<<12 | rd<<7 | opc, nil

	case in.Op == OpJAL:
		imm := in.Imm
		if imm < -(1<<20) || imm >= 1<<20 || imm&1 != 0 {
			return 0, fmt.Errorf("encode jal: offset %d out of range", imm)
		}
		u := uint32(imm)
		w := (u>>20&1)<<31 | (u>>1&0x3FF)<<21 | (u>>11&1)<<20 | (u >> 12 & 0xFF << 12)
		return w | rd<<7 | opcJAL, nil

	case in.Op == OpJALR:
		return encI(uint32(in.Imm), rs1, 0, rd, opcJALR, in.Imm)

	case in.IsCondBranch():
		imm := in.Imm
		if imm < -(1<<12) || imm >= 1<<12 || imm&1 != 0 {
			return 0, fmt.Errorf("encode %v: branch offset %d out of range", in.Op, imm)
		}
		u := uint32(imm)
		w := (u>>12&1)<<31 | (u>>5&0x3F)<<25 | (u>>1&0xF)<<8 | (u>>11&1)<<7
		return w | rs2<<20 | rs1<<15 | branchEnc[in.Op]<<12 | opcBRANCH, nil

	case in.IsLoad():
		return encI(uint32(in.Imm), rs1, loadEnc[in.Op], rd, opcLOAD, in.Imm)

	case in.IsStore():
		imm := in.Imm
		if imm < -(1<<11) || imm >= 1<<11 {
			return 0, fmt.Errorf("encode %v: store offset %d out of range", in.Op, imm)
		}
		u := uint32(imm)
		return (u>>5&0x7F)<<25 | rs2<<20 | rs1<<15 | storeEnc[in.Op]<<12 |
			(u&0x1F)<<7 | opcSTORE, nil

	case in.Op == OpECALL:
		return 0x00000073, nil
	case in.Op == OpEBREAK:
		return 0x00100073, nil
	case in.Op == OpFENCE:
		return 0x0000000F, nil

	case in.Op == OpCBOFLUSH:
		// Zicbom CBO.FLUSH: imm12=2, funct3=2, opcode MISC-MEM.
		return 2<<20 | rs1<<15 | 2<<12 | opcMISCMEM, nil

	case in.Op == OpMARK:
		kind := uint32(in.Imm)
		if kind == 0 || kind > 4 {
			return 0, fmt.Errorf("encode mark: bad kind %d", in.Imm)
		}
		return rs1<<15 | kind<<12 | opcCUSTOM0, nil

	case in.Op == OpSLLI || in.Op == OpSRLI || in.Op == OpSRAI:
		if in.Imm < 0 || in.Imm > 63 {
			return 0, fmt.Errorf("encode %v: shamt %d out of range", in.Op, in.Imm)
		}
		f6 := uint32(0)
		f3 := uint32(1)
		if in.Op != OpSLLI {
			f3 = 5
		}
		if in.Op == OpSRAI {
			f6 = 0x10
		}
		return f6<<26 | uint32(in.Imm)<<20 | rs1<<15 | f3<<12 | rd<<7 | opcOPIMM, nil

	case in.Op == OpSLLIW || in.Op == OpSRLIW || in.Op == OpSRAIW:
		if in.Imm < 0 || in.Imm > 31 {
			return 0, fmt.Errorf("encode %v: shamt %d out of range", in.Op, in.Imm)
		}
		f7 := uint32(0)
		f3 := uint32(1)
		if in.Op != OpSLLIW {
			f3 = 5
		}
		if in.Op == OpSRAIW {
			f7 = 0x20
		}
		return f7<<25 | uint32(in.Imm)<<20 | rs1<<15 | f3<<12 | rd<<7 | opcOPIMM32, nil

	case in.Op == OpADDIW:
		return encI(uint32(in.Imm), rs1, 0, rd, opcOPIMM32, in.Imm)
	}

	if f3, ok := iArithEnc[in.Op]; ok {
		return encI(uint32(in.Imm), rs1, f3, rd, opcOPIMM, in.Imm)
	}
	if e, ok := rTypeEnc[in.Op]; ok {
		return e.funct7<<25 | rs2<<20 | rs1<<15 | e.funct3<<12 | rd<<7 | opcOP, nil
	}
	if e, ok := r32TypeEnc[in.Op]; ok {
		return e.funct7<<25 | rs2<<20 | rs1<<15 | e.funct3<<12 | rd<<7 | opcOP32, nil
	}
	return 0, fmt.Errorf("encode: unsupported op %v", in.Op)
}

func encI(imm, rs1, f3, rd, opc uint32, raw int64) (uint32, error) {
	if raw < -(1<<11) || raw >= 1<<11 {
		return 0, fmt.Errorf("encode: I-immediate %d out of range", raw)
	}
	return (imm&0xFFF)<<20 | rs1<<15 | f3<<12 | rd<<7 | opc, nil
}
