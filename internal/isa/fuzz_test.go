package isa

import "testing"

// FuzzDecode asserts the decoder never panics on arbitrary words, and
// that anything it accepts survives an encode/decode round trip.
func FuzzDecode(f *testing.F) {
	seeds := []uint32{
		0x00000000, 0xFFFFFFFF, 0x00000073, 0x00100073, 0x0000000F,
		0x00A00913, 0x0000100B, 0x02A383B3, 0xFE0918E3, 0x0080006F,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, word uint32) {
		in, err := Decode(word)
		if err != nil {
			return
		}
		w2, err := Encode(in)
		if err != nil {
			t.Fatalf("decoded %#08x to %v but cannot re-encode: %v", word, in, err)
		}
		in2, err := Decode(w2)
		if err != nil || in2 != in {
			t.Fatalf("round trip unstable: %#08x -> %v -> %#08x -> %v (%v)",
				word, in, w2, in2, err)
		}
		_ = in.String() // must not panic
	})
}
