// Package isa defines the RV64IM instruction-set subset used throughout
// MicroSampler: registers, opcodes, the decoded instruction form, and
// binary encoding/decoding of the standard RISC-V 32-bit formats.
//
// In addition to the base ISA, the package defines two small extensions
// that the verification flow relies on:
//
//   - MARK: a custom-0 (opcode 0x0B) tracing instruction used to delimit
//     the security-critical region and to label algorithmic iterations
//     with their secret class value. It is the in-band equivalent of the
//     paper's trace-parser region tagging.
//   - CBOFLUSH: a Zicbom-style cache-block flush, used by the timing
//     experiments (Fig. 6) to model an attacker evicting a memory region.
package isa

import "fmt"

// Reg is an architectural integer register, x0 through x31.
type Reg uint8

// Architectural registers by ABI name.
const (
	Zero Reg = iota // x0: hardwired zero
	RA              // x1: return address
	SP              // x2: stack pointer
	GP              // x3: global pointer
	TP              // x4: thread pointer
	T0              // x5
	T1              // x6
	T2              // x7
	S0              // x8 / fp
	S1              // x9
	A0              // x10
	A1              // x11
	A2              // x12
	A3              // x13
	A4              // x14
	A5              // x15
	A6              // x16
	A7              // x17
	S2              // x18
	S3              // x19
	S4              // x20
	S5              // x21
	S6              // x22
	S7              // x23
	S8              // x24
	S9              // x25
	S10             // x26
	S11             // x27
	T3              // x28
	T4              // x29
	T5              // x30
	T6              // x31
)

// NumRegs is the number of architectural integer registers.
const NumRegs = 32

var regNames = [NumRegs]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

// String returns the ABI name of the register.
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("x%d", uint8(r))
}

// RegByName resolves an ABI name ("a0"), numeric name ("x10") or the
// frame-pointer alias ("fp") to a register.
func RegByName(name string) (Reg, bool) {
	for i, n := range regNames {
		if n == name {
			return Reg(i), true
		}
	}
	if name == "fp" {
		return S0, true
	}
	if len(name) >= 2 && name[0] == 'x' {
		var n int
		if _, err := fmt.Sscanf(name, "x%d", &n); err == nil && n >= 0 && n < NumRegs {
			return Reg(n), true
		}
	}
	return 0, false
}

// Op identifies an operation (mnemonic) in the supported subset.
type Op int

// Supported operations. The set covers RV64I, the M extension, ECALL,
// FENCE, the MARK tracing extension and CBO.FLUSH.
const (
	OpInvalid Op = iota

	// RV32I/RV64I register-register.
	OpADD
	OpSUB
	OpSLL
	OpSLT
	OpSLTU
	OpXOR
	OpSRL
	OpSRA
	OpOR
	OpAND
	OpADDW
	OpSUBW
	OpSLLW
	OpSRLW
	OpSRAW

	// Immediate arithmetic.
	OpADDI
	OpSLTI
	OpSLTIU
	OpXORI
	OpORI
	OpANDI
	OpSLLI
	OpSRLI
	OpSRAI
	OpADDIW
	OpSLLIW
	OpSRLIW
	OpSRAIW

	// Upper-immediate.
	OpLUI
	OpAUIPC

	// Control flow.
	OpJAL
	OpJALR
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpBLTU
	OpBGEU

	// Loads.
	OpLB
	OpLH
	OpLW
	OpLD
	OpLBU
	OpLHU
	OpLWU

	// Stores.
	OpSB
	OpSH
	OpSW
	OpSD

	// M extension.
	OpMUL
	OpMULH
	OpMULHSU
	OpMULHU
	OpDIV
	OpDIVU
	OpREM
	OpREMU
	OpMULW
	OpDIVW
	OpDIVUW
	OpREMW
	OpREMUW

	// System.
	OpECALL
	OpEBREAK
	OpFENCE

	// Zicbom-style cache block flush (rs1 holds the address).
	OpCBOFLUSH

	// MARK tracing extension (custom-0). Imm holds the MarkKind and rs1
	// optionally carries the iteration class value.
	OpMARK

	opCount
)

var opNames = map[Op]string{
	OpADD: "add", OpSUB: "sub", OpSLL: "sll", OpSLT: "slt", OpSLTU: "sltu",
	OpXOR: "xor", OpSRL: "srl", OpSRA: "sra", OpOR: "or", OpAND: "and",
	OpADDW: "addw", OpSUBW: "subw", OpSLLW: "sllw", OpSRLW: "srlw", OpSRAW: "sraw",
	OpADDI: "addi", OpSLTI: "slti", OpSLTIU: "sltiu", OpXORI: "xori",
	OpORI: "ori", OpANDI: "andi", OpSLLI: "slli", OpSRLI: "srli", OpSRAI: "srai",
	OpADDIW: "addiw", OpSLLIW: "slliw", OpSRLIW: "srliw", OpSRAIW: "sraiw",
	OpLUI: "lui", OpAUIPC: "auipc",
	OpJAL: "jal", OpJALR: "jalr",
	OpBEQ: "beq", OpBNE: "bne", OpBLT: "blt", OpBGE: "bge", OpBLTU: "bltu", OpBGEU: "bgeu",
	OpLB: "lb", OpLH: "lh", OpLW: "lw", OpLD: "ld", OpLBU: "lbu", OpLHU: "lhu", OpLWU: "lwu",
	OpSB: "sb", OpSH: "sh", OpSW: "sw", OpSD: "sd",
	OpMUL: "mul", OpMULH: "mulh", OpMULHSU: "mulhsu", OpMULHU: "mulhu",
	OpDIV: "div", OpDIVU: "divu", OpREM: "rem", OpREMU: "remu",
	OpMULW: "mulw", OpDIVW: "divw", OpDIVUW: "divuw", OpREMW: "remw", OpREMUW: "remuw",
	OpECALL: "ecall", OpEBREAK: "ebreak", OpFENCE: "fence",
	OpCBOFLUSH: "cbo.flush", OpMARK: "mark",
}

// String returns the assembler mnemonic of the operation.
func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// MarkKind distinguishes the MARK tracing instructions.
type MarkKind int64

// Tracing marker kinds, carried in Inst.Imm of an OpMARK instruction.
const (
	MarkROIBegin  MarkKind = iota + 1 // begin security-critical region
	MarkROIEnd                        // end security-critical region
	MarkIterBegin                     // begin iteration; rs1 holds the class
	MarkIterEnd                       // end iteration
)

// Class categorizes operations for the pipeline's functional-unit routing.
type Class int

// Functional-unit classes.
const (
	ClassALU    Class = iota + 1 // single-cycle integer
	ClassMul                     // pipelined multiplier
	ClassDiv                     // iterative divider
	ClassLoad                    // memory load (AGU + D-cache)
	ClassStore                   // memory store (AGU + STQ)
	ClassBranch                  // conditional branch / jump
	ClassSystem                  // ecall, ebreak, fence, mark, cbo
)

// Inst is a decoded instruction.
type Inst struct {
	Op  Op
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Imm int64
}

// Class reports the functional-unit class of the instruction.
func (i Inst) Class() Class {
	switch i.Op {
	case OpMUL, OpMULH, OpMULHSU, OpMULHU, OpMULW:
		return ClassMul
	case OpDIV, OpDIVU, OpREM, OpREMU, OpDIVW, OpDIVUW, OpREMW, OpREMUW:
		return ClassDiv
	case OpLB, OpLH, OpLW, OpLD, OpLBU, OpLHU, OpLWU:
		return ClassLoad
	case OpSB, OpSH, OpSW, OpSD:
		return ClassStore
	case OpJAL, OpJALR, OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		return ClassBranch
	case OpECALL, OpEBREAK, OpFENCE, OpMARK, OpCBOFLUSH:
		return ClassSystem
	default:
		return ClassALU
	}
}

// IsCondBranch reports whether the instruction is a conditional branch.
func (i Inst) IsCondBranch() bool {
	switch i.Op {
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		return true
	}
	return false
}

// IsJump reports whether the instruction is an unconditional jump.
func (i Inst) IsJump() bool { return i.Op == OpJAL || i.Op == OpJALR }

// IsLoad reports whether the instruction reads memory.
func (i Inst) IsLoad() bool { return i.Class() == ClassLoad }

// IsStore reports whether the instruction writes memory.
func (i Inst) IsStore() bool { return i.Class() == ClassStore }

// WritesRd reports whether the instruction produces a register result.
func (i Inst) WritesRd() bool {
	switch i.Class() {
	case ClassStore, ClassBranch:
		return i.Op == OpJAL || i.Op == OpJALR
	case ClassSystem:
		return false
	default:
		return true
	}
}

// ReadsRs1 reports whether rs1 is a source operand.
func (i Inst) ReadsRs1() bool {
	switch i.Op {
	case OpLUI, OpAUIPC, OpJAL, OpECALL, OpEBREAK, OpFENCE:
		return false
	case OpMARK:
		return MarkKind(i.Imm) == MarkIterBegin
	}
	return true
}

// ReadsRs2 reports whether rs2 is a source operand.
func (i Inst) ReadsRs2() bool {
	switch i.Class() {
	case ClassALU, ClassMul, ClassDiv:
		switch i.Op {
		case OpADDI, OpSLTI, OpSLTIU, OpXORI, OpORI, OpANDI,
			OpSLLI, OpSRLI, OpSRAI, OpADDIW, OpSLLIW, OpSRLIW, OpSRAIW,
			OpLUI, OpAUIPC:
			return false
		}
		return true
	case ClassStore:
		return true
	case ClassBranch:
		return i.IsCondBranch()
	}
	return false
}

// String renders the instruction in assembler syntax.
func (i Inst) String() string {
	switch i.Op {
	case OpInvalid:
		return "invalid"
	case OpECALL, OpEBREAK, OpFENCE:
		return i.Op.String()
	case OpMARK:
		switch MarkKind(i.Imm) {
		case MarkROIBegin:
			return "roi.begin"
		case MarkROIEnd:
			return "roi.end"
		case MarkIterBegin:
			return fmt.Sprintf("iter.begin %s", i.Rs1)
		case MarkIterEnd:
			return "iter.end"
		}
		return "mark?"
	case OpCBOFLUSH:
		return fmt.Sprintf("cbo.flush %d(%s)", i.Imm, i.Rs1)
	case OpLUI, OpAUIPC:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Rd, i.Imm)
	case OpJAL:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Rd, i.Imm)
	case OpJALR:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rd, i.Imm, i.Rs1)
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rs1, i.Rs2, i.Imm)
	case OpLB, OpLH, OpLW, OpLD, OpLBU, OpLHU, OpLWU:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rd, i.Imm, i.Rs1)
	case OpSB, OpSH, OpSW, OpSD:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rs2, i.Imm, i.Rs1)
	case OpADDI, OpSLTI, OpSLTIU, OpXORI, OpORI, OpANDI,
		OpSLLI, OpSRLI, OpSRAI, OpADDIW, OpSLLIW, OpSRLIW, OpSRAIW:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	default:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Rs1, i.Rs2)
	}
}
