package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegByName(t *testing.T) {
	tests := []struct {
		name string
		want Reg
		ok   bool
	}{
		{"zero", Zero, true},
		{"ra", RA, true},
		{"sp", SP, true},
		{"a0", A0, true},
		{"a7", A7, true},
		{"t6", T6, true},
		{"s11", S11, true},
		{"fp", S0, true},
		{"x0", Zero, true},
		{"x31", T6, true},
		{"x15", A5, true},
		{"x32", 0, false},
		{"bogus", 0, false},
		{"", 0, false},
	}
	for _, tt := range tests {
		got, ok := RegByName(tt.name)
		if ok != tt.ok || (ok && got != tt.want) {
			t.Errorf("RegByName(%q) = %v,%v want %v,%v", tt.name, got, ok, tt.want, tt.ok)
		}
	}
}

func TestRegString(t *testing.T) {
	if A0.String() != "a0" || Zero.String() != "zero" || T6.String() != "t6" {
		t.Errorf("unexpected register names: %v %v %v", A0, Zero, T6)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tests := []Inst{
		{Op: OpADD, Rd: A0, Rs1: A1, Rs2: A2},
		{Op: OpSUB, Rd: T0, Rs1: T1, Rs2: T2},
		{Op: OpAND, Rd: S2, Rs1: S3, Rs2: S4},
		{Op: OpXOR, Rd: A5, Rs1: A5, Rs2: A4},
		{Op: OpMUL, Rd: A0, Rs1: A1, Rs2: A2},
		{Op: OpDIVU, Rd: A0, Rs1: A1, Rs2: A2},
		{Op: OpREMU, Rd: T3, Rs1: T4, Rs2: T5},
		{Op: OpADDW, Rd: A0, Rs1: A1, Rs2: A2},
		{Op: OpSUBW, Rd: A0, Rs1: A1, Rs2: A2},
		{Op: OpMULW, Rd: A3, Rs1: A4, Rs2: A5},
		{Op: OpADDI, Rd: A0, Rs1: A1, Imm: -42},
		{Op: OpADDI, Rd: A0, Rs1: A1, Imm: 2047},
		{Op: OpADDI, Rd: A0, Rs1: A1, Imm: -2048},
		{Op: OpANDI, Rd: A0, Rs1: A1, Imm: 255},
		{Op: OpXORI, Rd: A0, Rs1: A1, Imm: -1},
		{Op: OpSLTIU, Rd: A0, Rs1: A1, Imm: 1},
		{Op: OpSLLI, Rd: A0, Rs1: A1, Imm: 63},
		{Op: OpSRLI, Rd: A0, Rs1: A1, Imm: 1},
		{Op: OpSRAI, Rd: A0, Rs1: A1, Imm: 32},
		{Op: OpADDIW, Rd: A0, Rs1: A1, Imm: -7},
		{Op: OpSLLIW, Rd: A0, Rs1: A1, Imm: 31},
		{Op: OpSRAIW, Rd: A0, Rs1: A1, Imm: 3},
		{Op: OpLUI, Rd: A0, Imm: 0x12345},
		{Op: OpLUI, Rd: A0, Imm: -1},
		{Op: OpAUIPC, Rd: A0, Imm: 1},
		{Op: OpJAL, Rd: RA, Imm: 2048},
		{Op: OpJAL, Rd: Zero, Imm: -4},
		{Op: OpJALR, Rd: Zero, Rs1: RA, Imm: 0},
		{Op: OpJALR, Rd: RA, Rs1: A0, Imm: 16},
		{Op: OpBEQ, Rs1: A0, Rs2: A1, Imm: 64},
		{Op: OpBNE, Rs1: A0, Rs2: Zero, Imm: -64},
		{Op: OpBLT, Rs1: T0, Rs2: T1, Imm: 4094},
		{Op: OpBGEU, Rs1: T0, Rs2: T1, Imm: -4096},
		{Op: OpLD, Rd: A0, Rs1: SP, Imm: 8},
		{Op: OpLB, Rd: A0, Rs1: A1, Imm: -1},
		{Op: OpLBU, Rd: A0, Rs1: A1, Imm: 2047},
		{Op: OpLWU, Rd: A0, Rs1: A1, Imm: 4},
		{Op: OpSD, Rs1: SP, Rs2: A0, Imm: -8},
		{Op: OpSB, Rs1: A0, Rs2: A1, Imm: 0},
		{Op: OpSW, Rs1: A0, Rs2: A1, Imm: 100},
		{Op: OpECALL},
		{Op: OpEBREAK},
		{Op: OpFENCE},
		{Op: OpCBOFLUSH, Rs1: A0},
		{Op: OpMARK, Imm: int64(MarkROIBegin)},
		{Op: OpMARK, Imm: int64(MarkROIEnd)},
		{Op: OpMARK, Rs1: A0, Imm: int64(MarkIterBegin)},
		{Op: OpMARK, Imm: int64(MarkIterEnd)},
	}
	for _, in := range tests {
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		out, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(Encode(%v)=%#x): %v", in, w, err)
		}
		if out != in {
			t.Errorf("round-trip %v: got %v (word %#08x)", in, out, w)
		}
	}
}

func TestEncodeRangeErrors(t *testing.T) {
	bad := []Inst{
		{Op: OpADDI, Rd: A0, Rs1: A1, Imm: 2048},
		{Op: OpADDI, Rd: A0, Rs1: A1, Imm: -2049},
		{Op: OpSLLI, Rd: A0, Rs1: A1, Imm: 64},
		{Op: OpSLLIW, Rd: A0, Rs1: A1, Imm: 32},
		{Op: OpBEQ, Rs1: A0, Rs2: A1, Imm: 4096},
		{Op: OpBEQ, Rs1: A0, Rs2: A1, Imm: 3}, // misaligned
		{Op: OpJAL, Rd: RA, Imm: 1 << 20},
		{Op: OpSD, Rs1: A0, Rs2: A1, Imm: 5000},
		{Op: OpLUI, Rd: A0, Imm: 1 << 19},
		{Op: OpMARK, Imm: 9},
	}
	for _, in := range bad {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%v): expected error, got none", in)
		}
	}
}

// TestEncodeDecodeQuick drives randomized instructions through the
// encoder/decoder pair and checks the round-trip property.
func TestEncodeDecodeQuick(t *testing.T) {
	const seed = 7
	t.Logf("rng seed %d", seed)
	rng := rand.New(rand.NewSource(seed))
	rops := []Op{OpADD, OpSUB, OpSLL, OpSLT, OpSLTU, OpXOR, OpSRL, OpSRA, OpOR,
		OpAND, OpADDW, OpSUBW, OpMUL, OpMULH, OpMULHU, OpDIV, OpDIVU, OpREM, OpREMU}
	iops := []Op{OpADDI, OpSLTI, OpSLTIU, OpXORI, OpORI, OpANDI, OpADDIW}

	f := func() bool {
		var in Inst
		switch rng.Intn(3) {
		case 0:
			in = Inst{Op: rops[rng.Intn(len(rops))],
				Rd: Reg(rng.Intn(32)), Rs1: Reg(rng.Intn(32)), Rs2: Reg(rng.Intn(32))}
		case 1:
			in = Inst{Op: iops[rng.Intn(len(iops))],
				Rd: Reg(rng.Intn(32)), Rs1: Reg(rng.Intn(32)),
				Imm: int64(rng.Intn(4096) - 2048)}
		default:
			in = Inst{Op: OpBEQ, Rs1: Reg(rng.Intn(32)), Rs2: Reg(rng.Intn(32)),
				Imm: int64(rng.Intn(2048)-1024) * 2}
		}
		w, err := Encode(in)
		if err != nil {
			return false
		}
		out, err := Decode(w)
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeInvalid(t *testing.T) {
	for _, w := range []uint32{0x00000000, 0xFFFFFFFF, 0x0000007F, 0x00005073} {
		if _, err := Decode(w); err == nil {
			t.Errorf("Decode(%#08x): expected error", w)
		}
	}
}

func TestInstClassification(t *testing.T) {
	tests := []struct {
		in   Inst
		cls  Class
		load bool
		st   bool
		br   bool
	}{
		{Inst{Op: OpADD}, ClassALU, false, false, false},
		{Inst{Op: OpMUL}, ClassMul, false, false, false},
		{Inst{Op: OpDIVU}, ClassDiv, false, false, false},
		{Inst{Op: OpREM}, ClassDiv, false, false, false},
		{Inst{Op: OpLD}, ClassLoad, true, false, false},
		{Inst{Op: OpSB}, ClassStore, false, true, false},
		{Inst{Op: OpBEQ}, ClassBranch, false, false, true},
		{Inst{Op: OpJAL}, ClassBranch, false, false, false},
		{Inst{Op: OpECALL}, ClassSystem, false, false, false},
		{Inst{Op: OpMARK}, ClassSystem, false, false, false},
	}
	for _, tt := range tests {
		if got := tt.in.Class(); got != tt.cls {
			t.Errorf("%v.Class() = %v want %v", tt.in.Op, got, tt.cls)
		}
		if tt.in.IsLoad() != tt.load || tt.in.IsStore() != tt.st ||
			tt.in.IsCondBranch() != tt.br {
			t.Errorf("%v: load/store/branch flags wrong", tt.in.Op)
		}
	}
}

func TestOperandUsage(t *testing.T) {
	if (Inst{Op: OpLUI}).ReadsRs1() {
		t.Error("lui should not read rs1")
	}
	if !(Inst{Op: OpADDI}).ReadsRs1() {
		t.Error("addi should read rs1")
	}
	if (Inst{Op: OpADDI}).ReadsRs2() {
		t.Error("addi should not read rs2")
	}
	if !(Inst{Op: OpSD}).ReadsRs2() {
		t.Error("sd should read rs2 (data)")
	}
	if !(Inst{Op: OpBEQ}).ReadsRs2() {
		t.Error("beq should read rs2")
	}
	if (Inst{Op: OpJAL}).ReadsRs1() {
		t.Error("jal should not read rs1")
	}
	if !(Inst{Op: OpJAL, Rd: RA}).WritesRd() {
		t.Error("jal should write rd")
	}
	if (Inst{Op: OpSD}).WritesRd() {
		t.Error("sd should not write rd")
	}
	if (Inst{Op: OpBEQ}).WritesRd() {
		t.Error("beq should not write rd")
	}
	if !(Inst{Op: OpMARK, Rs1: A0, Imm: int64(MarkIterBegin)}).ReadsRs1() {
		t.Error("iter.begin should read rs1 (class value)")
	}
	if (Inst{Op: OpMARK, Imm: int64(MarkROIBegin)}).ReadsRs1() {
		t.Error("roi.begin should not read rs1")
	}
}

func TestInstString(t *testing.T) {
	tests := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpADD, Rd: A0, Rs1: A1, Rs2: A2}, "add a0, a1, a2"},
		{Inst{Op: OpADDI, Rd: A0, Rs1: A1, Imm: -4}, "addi a0, a1, -4"},
		{Inst{Op: OpLD, Rd: A0, Rs1: SP, Imm: 8}, "ld a0, 8(sp)"},
		{Inst{Op: OpSD, Rs1: SP, Rs2: A0, Imm: -8}, "sd a0, -8(sp)"},
		{Inst{Op: OpBEQ, Rs1: A0, Rs2: A1, Imm: 16}, "beq a0, a1, 16"},
		{Inst{Op: OpECALL}, "ecall"},
		{Inst{Op: OpMARK, Rs1: A3, Imm: int64(MarkIterBegin)}, "iter.begin a3"},
		{Inst{Op: OpMARK, Imm: int64(MarkROIEnd)}, "roi.end"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String() = %q want %q", got, tt.want)
		}
	}
}
