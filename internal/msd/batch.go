package msd

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"microsampler/internal/cluster"
	"microsampler/internal/core"
)

// Batch verification: POST /api/v1/batch accepts many program×config
// points in one request — entries with a matrix field explode into one
// point per grid cell — and the coordinator shards them across the
// healthy worker set via internal/cluster. Batch state is journaled
// through the same fsync'd WAL as jobs ("batch-submit" on admission,
// "batch-point" per terminal point, "batch-done" at the end), so a
// coordinator killed mid-batch recovers the batch on restart and
// re-dispatches only the points without a journaled result. Partial
// results are always retrievable from GET /api/v1/batch/{id}.

// maxBatchPoints bounds one batch after matrix explosion; a request
// beyond it is rejected rather than silently truncated.
const maxBatchPoints = 1024

// BatchEntry is one line of a batch request: a single verification
// point, or — with Matrix set — a whole configuration grid that
// explodes into one point per cell.
type BatchEntry struct {
	// Exactly one of Workload or Source names the program.
	Workload string `json:"workload,omitempty"`
	Source   string `json:"source,omitempty"`

	// Matrix explodes this entry across a configuration grid ("default"
	// or an "axis=v1|v2,..." spec — core.ParseGridSpec). Cell, Config and
	// FastBypass are ignored when set.
	Matrix string `json:"matrix,omitempty"`
	// Cell pins one grid cell by its canonical name; Config/FastBypass
	// select a plain configuration when both Matrix and Cell are empty.
	Cell       string `json:"cell,omitempty"`
	Config     string `json:"config,omitempty"`
	FastBypass bool   `json:"fastBypass,omitempty"`

	Runs          int  `json:"runs,omitempty"`
	Warmup        int  `json:"warmup,omitempty"`
	SeedOffset    int  `json:"seedOffset,omitempty"`
	MeasureStages bool `json:"measureStages,omitempty"`
}

// BatchRequest is the POST /api/v1/batch payload.
type BatchRequest struct {
	// Label tags every point's history record (workers file fresh
	// verdicts under it).
	Label   string       `json:"label,omitempty"`
	Entries []BatchEntry `json:"points"`
}

// explode expands the request into its flat point list with canonical
// cache keys, deterministically: the same request always yields the
// same points in the same order, which is what lets recovery rebuild a
// journaled batch from its "batch-submit" record alone.
func (r BatchRequest) explode(maxCycles int64) ([]cluster.Point, []string, error) {
	if len(r.Entries) == 0 {
		return nil, nil, fmt.Errorf("batch has no points")
	}
	var points []cluster.Point
	for ei, e := range r.Entries {
		base := cluster.Point{
			Workload: e.Workload, Source: e.Source,
			Cell: e.Cell, Config: e.Config, FastBypass: e.FastBypass,
			Runs: e.Runs, Warmup: e.Warmup, SeedOffset: e.SeedOffset,
			MeasureStages: e.MeasureStages, Label: r.Label,
		}
		if e.Matrix == "" {
			points = append(points, base)
			continue
		}
		if e.Cell != "" {
			return nil, nil, fmt.Errorf("point %d: matrix and cell are mutually exclusive", ei)
		}
		var grid core.GridSpec
		if strings.EqualFold(e.Matrix, "default") {
			grid = core.DefaultGrid()
		} else {
			g, err := core.ParseGridSpec(e.Matrix)
			if err != nil {
				return nil, nil, fmt.Errorf("point %d: %v", ei, err)
			}
			grid = g
		}
		for _, cell := range grid.Cells() {
			p := base
			p.Cell = cell.Name
			p.Config, p.FastBypass = "", false
			points = append(points, p)
		}
	}
	if len(points) > maxBatchPoints {
		return nil, nil, fmt.Errorf("batch explodes to %d points, max %d", len(points), maxBatchPoints)
	}
	keys := make([]string, len(points))
	for i, p := range points {
		key, err := p.Key(maxCycles)
		if err != nil {
			return nil, nil, fmt.Errorf("point %d: %v", i, err)
		}
		keys[i] = key
	}
	return points, keys, nil
}

// Batch statuses.
const (
	BatchRunning = "running"
	BatchDone    = "done"
)

// Batch is one tracked batch: the exploded point list, per-point
// terminal results as they land, and the dispatch tallies.
type Batch struct {
	ID     string
	Req    BatchRequest
	Points []cluster.Point
	Keys   []string
	// Results is parallel to Points; nil marks a point not yet terminal.
	Results []*cluster.PointResult

	Status    string
	Submitted time.Time
	Finished  time.Time

	// Done/Failed/DegradedPts tally terminal points; Reassigned/Hedged
	// count dispatch pathologies (carried into the batch-done record).
	Done, Failed, DegradedPts int
	Reassigned, Hedged        int
}

// batchPointView is one point of a batch on the wire.
type batchPointView struct {
	Index    int                  `json:"index"`
	Workload string               `json:"workload"`
	Cell     string               `json:"cell,omitempty"`
	Config   string               `json:"config,omitempty"`
	Key      string               `json:"key"`
	Done     bool                 `json:"done"`
	Result   *cluster.PointResult `json:"result,omitempty"`
}

// batchView is a batch on the wire. Degraded flags a batch any point of
// which fell back to coordinator-local execution — the graceful answer
// to zero healthy workers.
type batchView struct {
	ID             string    `json:"id"`
	Status         string    `json:"status"`
	Points         int       `json:"points"`
	Done           int       `json:"done"`
	Failed         int       `json:"failed"`
	Degraded       bool      `json:"degraded"`
	DegradedPoints int       `json:"degradedPoints,omitempty"`
	Reassigned     int       `json:"reassigned,omitempty"`
	Hedged         int       `json:"hedged,omitempty"`
	Label          string    `json:"label,omitempty"`
	Submitted      time.Time `json:"submitted"`
	Finished       time.Time `json:"finished,omitzero"`

	Results []batchPointView `json:"results,omitempty"`
}

// view snapshots the batch; callers hold s.mu. withPoints adds the
// per-point result list (the single-batch endpoint).
func (b *Batch) view(withPoints bool) batchView {
	v := batchView{
		ID: b.ID, Status: b.Status,
		Points: len(b.Points), Done: b.Done, Failed: b.Failed,
		Degraded: b.DegradedPts > 0, DegradedPoints: b.DegradedPts,
		Reassigned: b.Reassigned, Hedged: b.Hedged,
		Label: b.Req.Label, Submitted: b.Submitted, Finished: b.Finished,
	}
	if !withPoints {
		return v
	}
	v.Results = make([]batchPointView, len(b.Points))
	for i, p := range b.Points {
		pv := batchPointView{
			Index: i, Workload: p.WorkloadName(),
			Cell: p.Cell, Config: p.Config, Key: b.Keys[i],
		}
		if r := b.Results[i]; r != nil {
			pv.Done = true
			res := *r
			pv.Result = &res
		}
		v.Results[i] = pv
	}
	return v
}

// handleBatchSubmit admits a batch: validate and explode, journal the
// submission, and launch the dispatcher.
func (s *Server) handleBatchSubmit(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	points, keys, err := req.explode(s.cfg.MaxCycles)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.rejected.Inc()
		writeError(w, http.StatusServiceUnavailable, "daemon is draining")
		return
	}
	s.nextBatchID++
	b := &Batch{
		ID:        fmt.Sprintf("batch-%d", s.nextBatchID),
		Req:       req,
		Points:    points,
		Keys:      keys,
		Results:   make([]*cluster.PointResult, len(points)),
		Status:    BatchRunning,
		Submitted: time.Now(),
	}
	s.batches[b.ID] = b
	s.batchOrder = append(s.batchOrder, b.ID)
	// Journal before acknowledging, under the lock so journal order
	// matches admission order — the WAL discipline jobs follow.
	s.journal(journalRecord{Event: "batch-submit", Time: b.Submitted, ID: b.ID, BatchReq: &b.Req})
	view := b.view(false)
	s.mu.Unlock()

	s.batchWG.Add(1)
	go s.runBatch(b)
	s.log.Info("batch submitted", "batch", b.ID, "points", len(points))
	writeJSON(w, http.StatusAccepted, view)
}

func (s *Server) handleBatchList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	views := make([]batchView, 0, len(s.batchOrder))
	for _, id := range s.batchOrder {
		views = append(views, s.batches[id].view(false))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"batches": views})
}

func (s *Server) handleBatchStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	b, ok := s.batches[r.PathValue("id")]
	var view batchView
	if ok {
		view = b.view(true)
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown batch %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// runBatch drives a batch's unresolved points to terminal results and
// seals it. Each terminal point is journaled before it becomes visible
// in the batch view, so a SIGKILL'd coordinator recovers every point
// that was ever observable.
func (s *Server) runBatch(b *Batch) {
	defer s.batchWG.Done()

	// Dispatch only the points without a result — on first submission
	// that is all of them, on post-crash resumption just the remainder.
	s.mu.Lock()
	var points []cluster.Point
	var keys []string
	var idxs []int
	for i, r := range b.Results {
		if r == nil {
			points = append(points, b.Points[i])
			keys = append(keys, b.Keys[i])
			idxs = append(idxs, i)
		}
	}
	s.mu.Unlock()

	if len(points) > 0 {
		d := s.dispatcher(b)
		d.Run(context.Background(), points, keys, func(di int, res cluster.PointResult) {
			i := idxs[di]
			s.journal(journalRecord{
				Event: "batch-point", Time: time.Now(), ID: b.ID,
				PointIdx: i, PointRes: &res,
			})
			s.mu.Lock()
			s.applyPointLocked(b, i, res)
			s.mu.Unlock()
		})
	}

	finished := time.Now()
	s.mu.Lock()
	b.Status = BatchDone
	b.Finished = finished
	rec := journalRecord{
		Event: "batch-done", Time: finished, ID: b.ID,
		Done: b.Done, FailedPts: b.Failed, DegradedPts: b.DegradedPts,
		Reassigned: b.Reassigned, Hedged: b.Hedged,
	}
	s.mu.Unlock()
	s.journal(rec)
	s.log.Info("batch done", "batch", b.ID,
		"done", rec.Done, "failed", rec.FailedPts, "degraded", rec.DegradedPts,
		"reassigned", rec.Reassigned, "hedged", rec.Hedged)
}

// applyPointLocked records one point's terminal result in the batch and
// the daemon counters; callers hold s.mu. Idempotent per index so a
// recovery replay cannot double-count.
func (s *Server) applyPointLocked(b *Batch, i int, res cluster.PointResult) {
	if i < 0 || i >= len(b.Results) || b.Results[i] != nil {
		return
	}
	r := res
	b.Results[i] = &r
	if res.Err != "" {
		b.Failed++
		s.pointsFailed.Inc()
	} else {
		b.Done++
		s.pointsDone.Inc()
	}
	if res.Degraded {
		b.DegradedPts++
		s.pointsDegraded.Inc()
	}
}

// recoverBatches rebuilds the batch table from a previous incarnation's
// journal: batch-submit re-explodes the request (explosion is
// deterministic, so indices line up), batch-point fills the results
// that were terminal before the crash, batch-done seals. Runs before
// the HTTP surface exists, so plain field access is race-free — except
// the shared counters, which applyPointLocked touches anyway.
func (s *Server) recoverBatches(recs []journalRecord) {
	for _, r := range recs {
		switch r.Event {
		case "batch-submit":
			if r.BatchReq == nil {
				continue
			}
			points, keys, err := r.BatchReq.explode(s.cfg.MaxCycles)
			if err != nil {
				s.log.Warn("journaled batch no longer explodes", "batch", r.ID, "err", err)
				continue
			}
			if _, dup := s.batches[r.ID]; !dup {
				s.batchOrder = append(s.batchOrder, r.ID)
			}
			s.batches[r.ID] = &Batch{
				ID: r.ID, Req: *r.BatchReq, Points: points, Keys: keys,
				Results:   make([]*cluster.PointResult, len(points)),
				Status:    BatchRunning,
				Submitted: r.Time,
			}
			if n := batchIDNum(r.ID); n > s.nextBatchID {
				s.nextBatchID = n
			}
		case "batch-point":
			b := s.batches[r.ID]
			if b == nil || r.PointRes == nil {
				continue
			}
			s.applyPointLocked(b, r.PointIdx, *r.PointRes)
		case "batch-done":
			if b := s.batches[r.ID]; b != nil {
				b.Status = BatchDone
				b.Finished = r.Time
				b.Reassigned = r.Reassigned
				b.Hedged = r.Hedged
			}
		}
	}
}

// resumeBatches relaunches dispatch for every recovered batch that was
// still running at the crash, finishing just its unresolved points.
// Each resumed batch briefly waits for workers to re-register before
// dispatching, so a whole-cluster restart does not stampede the
// coordinator into degraded local execution.
func (s *Server) resumeBatches() {
	s.mu.Lock()
	var resume []*Batch
	for _, id := range s.batchOrder {
		if b := s.batches[id]; b.Status == BatchRunning {
			resume = append(resume, b)
		}
	}
	s.mu.Unlock()
	for _, b := range resume {
		s.log.Info("batch resumed after restart", "batch", b.ID,
			"remaining", len(b.Points)-b.Done-b.Failed)
		s.batchWG.Add(1)
		go func(b *Batch) {
			s.awaitWorkers(s.members.TTL())
			s.runBatch(b)
		}(b)
	}
}

// awaitWorkers polls the membership until a healthy worker appears or
// the grace period elapses.
func (s *Server) awaitWorkers(grace time.Duration) {
	deadline := time.Now().Add(grace)
	for time.Now().Before(deadline) {
		if len(s.members.Healthy()) > 0 {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
}
