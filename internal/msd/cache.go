package msd

import (
	"encoding/json"
	"fmt"

	"microsampler/internal/cache"
	"microsampler/internal/core"
)

// Content-addressed job cache. Verification is deterministic, so a
// job's full artifact set is a pure function of (program, config, seed
// range, detection-relevant options, artifact parameters); two
// submissions with the same key are served the same rendered bytes.
// The in-memory LRU holds recent verdicts; Config.CacheDir adds an
// fsync'd disk layer colocated with the journal that survives
// restarts.

// jobCacheKey returns the content-addressed key of a job request's
// artifact set, or "" when the request cannot be keyed (an invalid
// request never reaches the cache — enqueue validates first — so ""
// only means "do not cache"). maxCycles is the daemon's per-run bound,
// part of the key because it can truncate simulations.
func jobCacheKey(req JobRequest, maxCycles int64) string {
	w, err := req.workload()
	if err != nil {
		return ""
	}
	runs := req.Runs
	if runs == 0 {
		runs = 4
	}
	warmup := req.Warmup
	if warmup < 0 {
		warmup = core.NoWarmup
	}
	opts := core.Options{
		Runs:          runs,
		Warmup:        warmup,
		SeedOffset:    req.SeedOffset,
		MeasureStages: req.MeasureStages,
		MaxCycles:     maxCycles,
	}
	var base string
	if req.Matrix != "" {
		// Matrix jobs ignore Config/FastBypass — the grid defines each
		// cell's configuration — so the key must too, or equivalent
		// sweeps would needlessly split.
		grid, err := req.grid()
		if err != nil {
			return ""
		}
		base, err = core.MatrixCacheKey(w, core.MatrixOptions{Options: opts, Grid: grid})
		if err != nil {
			return ""
		}
	} else {
		opts.Config = req.config()
		base, err = core.CacheKey(w, opts)
		if err != nil {
			return ""
		}
	}
	// The rendered artifacts depend on the heatmap windowing on top of
	// the verification tuple.
	h := cache.NewHasher()
	h.Str("schema", "msd-job-v1")
	h.Str("base", base)
	h.Int("heatmapWindows", int64(req.HeatmapWindows))
	return h.Sum()
}

// cachedJob is one cache entry: the full artifact set plus the verdict
// summary, everything a hit needs to finish a job without simulating.
type cachedJob struct {
	arts map[string]artifact
	sum  jobSummary
}

// cachedJobWire is cachedJob's disk encoding. Artifact data rides as
// base64 via encoding/json's []byte handling.
type cachedJobWire struct {
	Leaky      bool                    `json:"leaky"`
	LeakyUnits []string                `json:"leakyUnits,omitempty"`
	Iterations int                     `json:"iterations,omitempty"`
	SimCycles  int64                   `json:"simCycles,omitempty"`
	Cells      int                     `json:"cells,omitempty"`
	LeakyCells []string                `json:"leakyCells,omitempty"`
	Artifacts  map[string]wireArtifact `json:"artifacts"`
}

type wireArtifact struct {
	ContentType string `json:"contentType"`
	Data        []byte `json:"data"`
}

func encodeCachedJob(cj *cachedJob) ([]byte, error) {
	w := cachedJobWire{
		Leaky:      cj.sum.leaky,
		LeakyUnits: cj.sum.leakyUnits,
		Iterations: cj.sum.iterations,
		SimCycles:  cj.sum.simCycles,
		Cells:      cj.sum.cells,
		LeakyCells: cj.sum.leakyCells,
		Artifacts:  make(map[string]wireArtifact, len(cj.arts)),
	}
	for name, art := range cj.arts {
		w.Artifacts[name] = wireArtifact{ContentType: art.contentType, Data: art.data}
	}
	return json.Marshal(w)
}

func decodeCachedJob(data []byte) (*cachedJob, error) {
	var w cachedJobWire
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("msd: decode cached job: %w", err)
	}
	cj := &cachedJob{
		arts: make(map[string]artifact, len(w.Artifacts)),
		sum: jobSummary{
			leaky: w.Leaky, leakyUnits: w.LeakyUnits,
			iterations: w.Iterations, simCycles: w.SimCycles,
			cells: w.Cells, leakyCells: w.LeakyCells,
		},
	}
	for name, art := range w.Artifacts {
		cj.arts[name] = artifact{contentType: art.ContentType, data: art.Data}
	}
	return cj, nil
}

// cacheGet looks a key up in the memory layer, then the disk layer
// (promoting a disk hit into memory). A corrupt disk blob is treated as
// a miss — the job simply re-verifies and overwrites it.
func (s *Server) cacheGet(key string) (*cachedJob, bool) {
	if v, ok := s.cache.Get(key); ok {
		return v.(*cachedJob), true
	}
	if s.cacheDisk == nil {
		return nil, false
	}
	data, ok, err := s.cacheDisk.Get(key)
	if err != nil || !ok {
		if err != nil {
			s.log.Warn("cache disk read failed", "key", key[:12], "err", err)
		}
		return nil, false
	}
	cj, err := decodeCachedJob(data)
	if err != nil {
		s.log.Warn("cache disk blob corrupt", "key", key[:12], "err", err)
		return nil, false
	}
	s.cache.Put(key, cj)
	return cj, true
}

// cachePut stores a freshly computed verdict in both layers. Disk
// failures degrade to memory-only caching.
func (s *Server) cachePut(key string, cj *cachedJob) {
	s.cache.Put(key, cj)
	if s.cacheDisk == nil {
		return
	}
	data, err := encodeCachedJob(cj)
	if err == nil {
		err = s.cacheDisk.Put(key, data)
	}
	if err != nil {
		s.log.Warn("cache disk write failed", "key", key[:12], "err", err)
	}
}
