package msd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"
	"unicode/utf8"

	"microsampler/internal/core"
)

// newTestHTTP serves s over a test listener torn down with the test.
func newTestHTTP(t *testing.T, s *Server) string {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// fetchArtifact downloads one artifact's raw bytes.
func fetchArtifact(t *testing.T, base, id, name string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/api/v1/jobs/" + id + "/" + name)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact %s/%s: status %d", id, name, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// scrapeMetric reads one plain (non-histogram) series from /metrics.
func scrapeMetric(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("parse metric %s: %v", name, err)
			}
			return v
		}
	}
	t.Fatalf("/metrics has no series %s", name)
	return 0
}

// TestCacheHitServesJob pins the core caching contract: a repeat of an
// identical submission runs no verification, is marked cached, serves
// byte-identical artifacts, and bumps the hit counter; a submission
// differing in a detection-relevant field misses.
func TestCacheHitServesJob(t *testing.T) {
	var calls atomic.Int64
	_, ts := newFakeServer(t, Config{CacheEntries: 8}, func(*Job) (*core.Report, error) {
		calls.Add(1)
		return fakeReport(), nil
	})

	req := JobRequest{Source: "nop"}
	first, code := submitJob(t, ts.URL, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	firstDone := waitDone(t, ts.URL, first.ID)
	if firstDone.Cached {
		t.Error("first run of a tuple marked cached")
	}
	firstReport := fetchArtifact(t, ts.URL, first.ID, "report")

	second, _ := submitJob(t, ts.URL, req)
	secondDone := waitDone(t, ts.URL, second.ID)
	if !secondDone.Cached {
		t.Error("repeat submission not marked cached")
	}
	if secondDone.Leaky == nil || *secondDone.Leaky != *firstDone.Leaky {
		t.Error("cached verdict differs from original")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("verification ran %d times, want 1", got)
	}
	// Golden comparison: the cached artifact is the identical bytes.
	if !bytes.Equal(firstReport, fetchArtifact(t, ts.URL, second.ID, "report")) {
		t.Error("cached report artifact not byte-identical")
	}
	if hits := scrapeMetric(t, ts.URL, "msd_cache_hits_total"); hits != 1 {
		t.Errorf("msd_cache_hits_total = %v, want 1", hits)
	}

	// A detection-relevant change misses and verifies afresh.
	third, _ := submitJob(t, ts.URL, JobRequest{Source: "nop", SeedOffset: 9})
	if v := waitDone(t, ts.URL, third.ID); v.Cached {
		t.Error("different seed served from cache")
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("verification ran %d times, want 2", got)
	}
	if misses := scrapeMetric(t, ts.URL, "msd_cache_misses_total"); misses != 2 {
		t.Errorf("msd_cache_misses_total = %v, want 2", misses)
	}
}

// TestJobCacheKeyCanonicalJSON pins canonicalization at the wire
// boundary: reordered JSON fields and explicitly spelled defaults
// decode to the same key, while every detection-relevant mutation
// changes it.
func TestJobCacheKeyCanonicalJSON(t *testing.T) {
	keyOf := func(raw string) string {
		t.Helper()
		var req JobRequest
		if err := json.Unmarshal([]byte(raw), &req); err != nil {
			t.Fatalf("decode %s: %v", raw, err)
		}
		if err := req.validate(); err != nil {
			t.Fatalf("validate %s: %v", raw, err)
		}
		k := jobCacheKey(req, 0)
		if k == "" {
			t.Fatalf("no key for %s", raw)
		}
		return k
	}
	base := keyOf(`{"source":"nop","runs":4}`)
	for name, raw := range map[string]string{
		"reordered fields":  `{"runs":4,"source":"nop"}`,
		"defaulted runs":    `{"source":"nop"}`,
		"explicit defaults": `{"source":"nop","runs":4,"seedOffset":0,"config":"mega","fastBypass":false}`,
		"strategy fields":   `{"source":"nop","runs":4,"parallel":3,"cellParallel":0}`,
	} {
		if keyOf(raw) != base {
			t.Errorf("%s produced a different key", name)
		}
	}
	for name, raw := range map[string]string{
		"program": `{"source":"add x0, x0, x0","runs":4}`,
		"config":  `{"source":"nop","runs":4,"config":"small"}`,
		"flag":    `{"source":"nop","runs":4,"fastBypass":true}`,
		"seed":    `{"source":"nop","runs":4,"seedOffset":1}`,
		"runs":    `{"source":"nop","runs":5}`,
		"heatmap": `{"source":"nop","runs":4,"heatmapWindows":32}`,
		"matrix":  `{"source":"nop","runs":4,"matrix":"default"}`,
	} {
		if keyOf(raw) == base {
			t.Errorf("changing %s did not change the key", name)
		}
	}
	// The daemon's cycle bound is part of the key too.
	var req JobRequest
	_ = json.Unmarshal([]byte(`{"source":"nop","runs":4}`), &req)
	if jobCacheKey(req, 5000) == base {
		t.Error("maxCycles did not change the key")
	}
}

// FuzzCacheKey fuzzes the canonicalization invariants: the key is
// deterministic, survives a JSON round trip of the request, and moves
// whenever the seed moves.
func FuzzCacheKey(f *testing.F) {
	f.Add("nop", "mega", 4, 2, 0, false, 0, false)
	f.Add("mul t0, s2, s2", "small", 1, -1, 7, true, 16, true)
	f.Add("", "", 0, 0, 0, false, 0, false)
	f.Fuzz(func(t *testing.T, source, config string, runs, warmup, seedOffset int, measureStages bool, heatmapWindows int, fastBypass bool) {
		// Requests reach the daemon as JSON, which is always valid
		// UTF-8; invalid bytes would be rewritten to U+FFFD by
		// json.Marshal and genuinely name a different program.
		if !utf8.ValidString(source) || !utf8.ValidString(config) {
			t.Skip()
		}
		req := JobRequest{
			Source: source, Config: config, FastBypass: fastBypass,
			Runs: runs, Warmup: warmup, SeedOffset: seedOffset,
			MeasureStages: measureStages, HeatmapWindows: heatmapWindows,
		}
		if req.validate() != nil {
			t.Skip()
		}
		key := jobCacheKey(req, 0)
		if key == "" {
			t.Skip() // unkeyable (e.g. unparsable option combination)
		}
		if again := jobCacheKey(req, 0); again != key {
			t.Fatalf("key not deterministic: %s vs %s", key, again)
		}
		data, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		var back JobRequest
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if k := jobCacheKey(back, 0); k != key {
			t.Fatalf("JSON round trip changed the key: %s vs %s", key, k)
		}
		mutated := req
		mutated.SeedOffset++
		if jobCacheKey(mutated, 0) == key {
			t.Fatal("seed mutation did not change the key")
		}
	})
}

// TestSingleflightDedupesInFlightJobs: two identical jobs running
// concurrently share one verification; the follower is marked cached.
func TestSingleflightDedupesInFlightJobs(t *testing.T) {
	var calls atomic.Int64
	gate := make(chan struct{})
	_, ts := newFakeServer(t, Config{Workers: 2, CacheEntries: 8}, func(*Job) (*core.Report, error) {
		calls.Add(1)
		<-gate
		return fakeReport(), nil
	})

	req := JobRequest{Source: "nop"}
	a, _ := submitJob(t, ts.URL, req)
	b, _ := submitJob(t, ts.URL, req)
	// Wait until both jobs are running (each on its own worker), then
	// give the follower a beat to join the in-flight call before the
	// leader is released.
	for _, id := range []string{a.ID, b.ID} {
		deadline := time.Now().Add(10 * time.Second)
		for {
			v, code := getView(t, ts.URL, id)
			if code == http.StatusOK && v.Status == string(StatusRunning) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s never started", id)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	time.Sleep(100 * time.Millisecond)
	close(gate)

	av, bv := waitDone(t, ts.URL, a.ID), waitDone(t, ts.URL, b.ID)
	if got := calls.Load(); got != 1 {
		t.Fatalf("verification ran %d times for identical in-flight jobs, want 1", got)
	}
	if av.Cached == bv.Cached {
		t.Errorf("want exactly one deduplicated job, got cached=%v/%v", av.Cached, bv.Cached)
	}
	if deduped := scrapeMetric(t, ts.URL, "msd_jobs_deduped_total"); deduped != 1 {
		t.Errorf("msd_jobs_deduped_total = %v, want 1", deduped)
	}
	// Both carry the full artifact set.
	if !bytes.Equal(fetchArtifact(t, ts.URL, a.ID, "report"), fetchArtifact(t, ts.URL, b.ID, "report")) {
		t.Error("deduplicated job's report differs from the leader's")
	}
}

// TestCacheDiskLayerSurvivesRestart: with CacheDir set, a verdict
// computed before a restart is served from cache after it.
func TestCacheDiskLayerSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int64
	count := func(*Job) (*core.Report, error) {
		calls.Add(1)
		return fakeReport(), nil
	}

	cfgA := Config{CacheEntries: 8, CacheDir: dir, verify: count}
	sA, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	tsA := newTestHTTP(t, sA)
	first, _ := submitJob(t, tsA, JobRequest{Source: "nop"})
	firstDone := waitDone(t, tsA, first.ID)
	firstReport := fetchArtifact(t, tsA, first.ID, "report")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := sA.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	sB, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	tsB := newTestHTTP(t, sB)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = sB.Drain(ctx)
	})
	second, _ := submitJob(t, tsB, JobRequest{Source: "nop"})
	secondDone := waitDone(t, tsB, second.ID)
	if !secondDone.Cached {
		t.Error("verdict not served from the disk cache after restart")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("verification ran %d times across restart, want 1", got)
	}
	if secondDone.Leaky == nil || *secondDone.Leaky != *firstDone.Leaky {
		t.Error("disk-cached verdict differs")
	}
	if !bytes.Equal(firstReport, fetchArtifact(t, tsB, second.ID, "report")) {
		t.Error("disk-cached report artifact not byte-identical")
	}
}

// TestQuiescedServerConvergesToRetentionBound pins the completion-time
// eviction fix: with no further submissions, finishing jobs alone must
// shrink the job table to MaxJobs (previously eviction only ran on
// submit, so a quiesced daemon held excess finished jobs forever).
func TestQuiescedServerConvergesToRetentionBound(t *testing.T) {
	const maxJobs, total = 2, 5
	_, ts := newFakeServer(t, Config{Workers: 1, MaxJobs: maxJobs}, nil)
	var last string
	for i := 0; i < total; i++ {
		v, code := submitJob(t, ts.URL, JobRequest{Source: fmt.Sprintf("nop %d", i)})
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, code)
		}
		last = v.ID
	}
	waitDone(t, ts.URL, last)
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/api/v1/jobs")
		if err != nil {
			t.Fatal(err)
		}
		var list struct {
			Jobs []jobView `json:"jobs"`
		}
		err = json.NewDecoder(resp.Body).Decode(&list)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(list.Jobs) <= maxJobs {
			// The most recent job must be among the survivors.
			found := false
			for _, v := range list.Jobs {
				if v.ID == last {
					found = true
				}
			}
			if !found {
				t.Fatalf("latest job %s evicted, survivors: %+v", last, list.Jobs)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job table stuck at %d jobs, want <= %d with no submissions", len(list.Jobs), maxJobs)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestQueueDepthGaugeAtScrape pins the gauge fix: msd_queue_depth is
// computed under the server lock at scrape time, so it reflects the
// actual queue instead of whichever racy Set landed last.
func TestQueueDepthGaugeAtScrape(t *testing.T) {
	gate := make(chan struct{})
	_, ts := newFakeServer(t, Config{Workers: 1, QueueSize: 8}, func(*Job) (*core.Report, error) {
		<-gate
		return fakeReport(), nil
	})
	var ids []string
	for i := 0; i < 3; i++ {
		v, code := submitJob(t, ts.URL, JobRequest{Source: "nop"})
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, code)
		}
		ids = append(ids, v.ID)
	}
	// One job is (or will be) running; the queue drains to exactly two.
	deadline := time.Now().Add(10 * time.Second)
	for scrapeMetric(t, ts.URL, "msd_queue_depth") != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("msd_queue_depth = %v, want 2 (1 running, 2 queued)",
				scrapeMetric(t, ts.URL, "msd_queue_depth"))
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(gate)
	for _, id := range ids {
		waitDone(t, ts.URL, id)
	}
	if depth := scrapeMetric(t, ts.URL, "msd_queue_depth"); depth != 0 {
		t.Errorf("msd_queue_depth = %v after quiesce, want 0", depth)
	}
}
