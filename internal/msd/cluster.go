package msd

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"runtime/debug"
	"strings"

	"microsampler/internal/cluster"
	"microsampler/internal/core"
	"microsampler/internal/faults"
	"microsampler/internal/history"
	"microsampler/internal/report"
	"microsampler/internal/version"
)

// Cluster surfaces of the daemon. Every msd can execute a shard on a
// coordinator's behalf (POST /api/v1/cluster/execute); a daemon started
// with Config.Coordinator additionally runs the membership table and
// the shared verdict store, and a daemon started with
// Config.CoordinatorURL consults that store on every point-cache miss
// before simulating and uploads fresh verdicts back — the cross-node
// cache fill that makes worker-death reassignment a cache hit instead
// of a re-simulation.

// handleClusterRegister admits (or revives) a worker.
func (s *Server) handleClusterRegister(w http.ResponseWriter, r *http.Request) {
	var req cluster.RegisterRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	if req.ID == "" || req.URL == "" {
		writeError(w, http.StatusBadRequest, "id and url are required")
		return
	}
	s.members.Register(req.ID, req.URL)
	s.log.Info("worker registered", "worker", req.ID, "url", req.URL)
	writeJSON(w, http.StatusOK, map[string]string{"status": "registered"})
}

// handleClusterHeartbeat refreshes a worker's liveness; an unknown
// worker gets 404 so its agent re-registers.
func (s *Server) handleClusterHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req cluster.HeartbeatRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	if !s.members.Heartbeat(req.ID) {
		writeError(w, http.StatusNotFound, "unknown worker %q: register first", req.ID)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleClusterWorkers lists the registered worker set with liveness.
func (s *Server) handleClusterWorkers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"workers": s.members.Snapshot()})
}

// handleClusterExecute runs one point on this daemon: the worker side
// of a coordinator dispatch. The response is always a terminal
// PointResult — verdict-level failures ride inside it with HTTP 200,
// so the dispatcher can tell "the point fails deterministically" from
// "this worker failed to answer".
func (s *Server) handleClusterExecute(w http.ResponseWriter, r *http.Request) {
	var req cluster.ExecuteRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	key := req.Key
	if key == "" {
		k, err := req.Point.Key(s.cfg.MaxCycles)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		key = k
	}
	if _, _, err := req.Point.Resolve(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, s.runPoint(req.Point, key))
}

// handleCacheGet serves the shared verdict store: a worker's cache
// miss consults it before simulating.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	res, ok := s.pointCacheGet(key)
	if !ok {
		writeError(w, http.StatusNotFound, "no cached verdict under %q", shortKey(key))
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleCachePut accepts a worker's freshly computed verdict into the
// shared store (cross-node cache fill).
func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	var res cluster.PointResult
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20)).Decode(&res); err != nil {
		writeError(w, http.StatusBadRequest, "decode result: %v", err)
		return
	}
	if res.Err != "" {
		writeError(w, http.StatusBadRequest, "failed verdicts are not cacheable")
		return
	}
	res.Key = key
	s.pointCachePut(key, res)
	w.WriteHeader(http.StatusNoContent)
}

// runPoint resolves one point to a terminal result through the cache
// hierarchy: local store, then the coordinator's store (worker mode),
// then a fresh simulation — deduplicated across identical in-flight
// points, uploaded back to the coordinator, and filed in this daemon's
// history exactly once per fresh verdict. The cache-key dedup is what
// keeps a restarted or re-registered worker from double-reporting a
// point it already answered: the replayed request hits the disk cache
// and never reaches the history append.
func (s *Server) runPoint(p cluster.Point, key string) cluster.PointResult {
	if res, ok := s.pointCacheGet(key); ok {
		s.cacheHits.Inc()
		res.Cached = true
		return res
	}
	s.cacheMisses.Inc()
	if s.cfg.CoordinatorURL != "" {
		if res, ok := s.pointFetchRemote(key); ok {
			s.pointCachePut(key, res)
			res.Cached = true
			s.log.Info("point filled from coordinator store", "key", shortKey(key))
			return res
		}
	}
	v, _, shared := s.flight.Do("point:"+key, func() (any, error) {
		return s.computePoint(p, key), nil
	})
	res := v.(cluster.PointResult)
	if shared {
		res.Cached = true
		s.deduped.Inc()
		return res
	}
	if res.Err == "" {
		s.pointCachePut(key, res)
		if s.cfg.CoordinatorURL != "" {
			s.pointUploadRemote(key, res)
		}
		s.recordPointHistory(p, res)
	}
	return res
}

// computePoint runs one point's verification with panic containment,
// honouring the test seam.
func (s *Server) computePoint(p cluster.Point, key string) (res cluster.PointResult) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Inc()
			perr := &faults.PanicError{Value: r, Stack: debug.Stack()}
			s.log.Error("point panicked", "key", shortKey(key), "panic", r)
			res = cluster.PointResult{Key: key, Err: perr.Error()}
		}
	}()
	if s.cfg.executePoint != nil {
		res = s.cfg.executePoint(p, key)
		res.Key = key
		return res
	}
	w, opts, err := p.Resolve()
	if err != nil {
		return cluster.PointResult{Key: key, Err: err.Error()}
	}
	opts.MaxCycles = s.cfg.MaxCycles
	opts.Watchdog = s.cfg.Watchdog
	opts.Metrics = s.reg
	opts.Logger = s.log
	opts.RunID = "point-" + shortKey(key)
	rep, err := core.Verify(w, opts)
	if err != nil {
		return cluster.PointResult{Key: key, Err: err.Error()}
	}
	res = cluster.PointResult{Key: key}
	sum := reportSummary(rep)
	res.Leaky = sum.leaky
	res.LeakyUnits = sum.leakyUnits
	res.Iterations = sum.iterations
	res.SimCycles = sum.simCycles
	if dg, err := report.BuildDigest(rep); err == nil {
		if data, err := dg.JSON(); err == nil {
			res.Digest = data
		}
	}
	return res
}

// recordPointHistory files a fresh point verdict in the run-history
// store — called only on fresh computes, never on cache or fill hits,
// so a replayed shard cannot double-report.
func (s *Server) recordPointHistory(p cluster.Point, res cluster.PointResult) {
	if s.hist == nil || res.Err != "" {
		return
	}
	label := p.Label
	if label == "" {
		label = version.DefaultLabel()
	}
	rec := history.Record{
		Label:      label,
		Workload:   p.WorkloadName(),
		Kind:       history.KindReport,
		Leaky:      res.Leaky,
		LeakyUnits: res.LeakyUnits,
		Iterations: res.Iterations,
		SimCycles:  res.SimCycles,
	}
	blobs := map[string][]byte{}
	if len(res.Digest) > 0 {
		blobs["digest"] = res.Digest
		var dg report.ReportDigest
		if json.Unmarshal(res.Digest, &dg) == nil {
			rec.MaxV = dg.MaxV()
		}
	}
	if _, err := s.hist.Append(rec, blobs); err != nil {
		s.log.Warn("point history append failed", "key", shortKey(res.Key), "err", err)
	}
}

// pointCacheGet looks a point verdict up in the local store (memory,
// then disk, promoting). Point entries share the LRU and disk layer
// with job artifacts but live under their own canonical core.CacheKey
// address space; a checked type assertion keeps the two from ever
// masquerading as each other.
func (s *Server) pointCacheGet(key string) (cluster.PointResult, bool) {
	if s.cache == nil || key == "" {
		return cluster.PointResult{}, false
	}
	if v, ok := s.cache.Get(key); ok {
		if res, ok := v.(cluster.PointResult); ok {
			return res, true
		}
		return cluster.PointResult{}, false
	}
	if s.cacheDisk == nil {
		return cluster.PointResult{}, false
	}
	data, ok, err := s.cacheDisk.Get(key)
	if err != nil || !ok {
		if err != nil {
			s.log.Warn("point cache disk read failed", "key", shortKey(key), "err", err)
		}
		return cluster.PointResult{}, false
	}
	var res cluster.PointResult
	if err := json.Unmarshal(data, &res); err != nil {
		s.log.Warn("point cache disk blob corrupt", "key", shortKey(key), "err", err)
		return cluster.PointResult{}, false
	}
	res = res.Verdict()
	s.cache.Put(key, res)
	return res, true
}

// pointCachePut stores a verdict in both local layers, stripped to its
// deterministic verdict fields (who computed it and how is dispatch
// metadata, not part of the answer).
func (s *Server) pointCachePut(key string, res cluster.PointResult) {
	if s.cache == nil || key == "" || res.Err != "" {
		return
	}
	res = res.Verdict()
	res.Key = key
	s.cache.Put(key, res)
	if s.cacheDisk == nil {
		return
	}
	data, err := json.Marshal(res)
	if err == nil {
		err = s.cacheDisk.Put(key, data)
	}
	if err != nil {
		s.log.Warn("point cache disk write failed", "key", shortKey(key), "err", err)
	}
}

// pointFetchRemote consults the coordinator's verdict store for key.
// Any failure — transport, 404, decode — is a miss; the worker just
// simulates.
func (s *Server) pointFetchRemote(key string) (cluster.PointResult, bool) {
	req, err := http.NewRequest(http.MethodGet, s.coordinatorCacheURL(key), nil)
	if err != nil {
		return cluster.PointResult{}, false
	}
	resp, err := s.clusterHTTP.Do(req)
	if err != nil {
		return cluster.PointResult{}, false
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil || resp.StatusCode != http.StatusOK {
		return cluster.PointResult{}, false
	}
	var res cluster.PointResult
	if err := json.Unmarshal(data, &res); err != nil || res.Err != "" {
		return cluster.PointResult{}, false
	}
	return res.Verdict(), true
}

// pointUploadRemote pushes a fresh verdict to the coordinator's store,
// best-effort: a worker that dies right after this upload has already
// made its result a cache hit for whoever inherits the shard.
func (s *Server) pointUploadRemote(key string, res cluster.PointResult) {
	data, err := json.Marshal(res.Verdict())
	if err != nil {
		return
	}
	req, err := http.NewRequest(http.MethodPut, s.coordinatorCacheURL(key), bytes.NewReader(data))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.clusterHTTP.Do(req)
	if err != nil {
		s.log.Warn("verdict upload to coordinator failed", "key", shortKey(key), "err", err)
		return
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
}

func (s *Server) coordinatorCacheURL(key string) string {
	return strings.TrimRight(s.cfg.CoordinatorURL, "/") + "/api/v1/cache/" + key
}

func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

// dispatcher builds the batch dispatcher over this server's membership,
// executor, and degraded-local fallback, wiring the event hooks to the
// cluster telemetry.
func (s *Server) dispatcher(b *Batch) *cluster.Dispatcher {
	return &cluster.Dispatcher{
		Members:      s.members,
		Exec:         &cluster.HTTPExecutor{Client: s.clusterHTTP},
		Local:        func(_ context.Context, p cluster.Point, key string) cluster.PointResult { return s.runPoint(p, key) },
		Retry:        s.cfg.ClusterRetry,
		ShardTimeout: s.cfg.ShardTimeout,
		HedgeAfter:   s.cfg.HedgeAfter,
		EWMA:         s.dispatchLat,
		Logger:       s.log,
		OnReassign: func(key, from, to string) {
			s.shardReassign.Inc()
			s.mu.Lock()
			b.Reassigned++
			s.mu.Unlock()
		},
		OnHedge: func(key, primary, hedge string) {
			s.hedgedDispatch.Inc()
			s.mu.Lock()
			b.Hedged++
			s.mu.Unlock()
		},
	}
}
