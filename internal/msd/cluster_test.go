package msd

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"microsampler/internal/cluster"
	"microsampler/internal/core"
	"microsampler/internal/history"
)

// fakePointResult is the deterministic verdict the executePoint seam
// returns; the iterations value doubles as a marker for which seam (or
// which incarnation) computed it.
func fakePointResult(iter int) cluster.PointResult {
	return cluster.PointResult{
		Leaky:      true,
		LeakyUnits: []string{"TAGE-PRED"},
		Iterations: iter,
		SimCycles:  1234,
		Digest:     []byte(`{"workload":"fake"}`),
	}
}

// newPointServer builds a Server whose per-point verification is the
// given seam, so cluster tests never pay for a simulation.
func newPointServer(t *testing.T, cfg Config, fn func(cluster.Point, string) cluster.PointResult) (*Server, *httptest.Server) {
	t.Helper()
	if fn == nil {
		fn = func(cluster.Point, string) cluster.PointResult { return fakePointResult(8) }
	}
	cfg.executePoint = fn
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("msd.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { drainNow(t, s) })
	return s, ts
}

func submitBatch(t *testing.T, base string, req BatchRequest) (batchView, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/api/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v batchView
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return v, resp.StatusCode
}

func getBatch(t *testing.T, base, id string) (batchView, int) {
	t.Helper()
	resp, err := http.Get(base + "/api/v1/batch/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v batchView
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return v, resp.StatusCode
}

func waitBatch(t *testing.T, base, id string) batchView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v, code := getBatch(t, base, id)
		if code != http.StatusOK {
			t.Fatalf("batch %s: HTTP %d", id, code)
		}
		if v.Status == BatchDone {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("batch %s did not finish", id)
	return batchView{}
}

// executeOnWorker posts one point to a daemon's cluster execute
// endpoint, the way a coordinator dispatch does.
func executeOnWorker(t *testing.T, base string, p cluster.Point) (cluster.PointResult, int) {
	t.Helper()
	body, _ := json.Marshal(cluster.ExecuteRequest{Point: p})
	resp, err := http.Post(base+"/api/v1/cluster/execute", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res cluster.PointResult
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
	}
	return res, resp.StatusCode
}

func historyRecords(t *testing.T, base string) []history.Record {
	t.Helper()
	resp, err := http.Get(base + "/api/v1/history")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v struct {
		Records []history.Record `json:"records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v.Records
}

// TestBatchFanOutAcrossWorkers: a coordinator shards a mixed batch
// (single points plus a matrix entry exploded to cells) across two
// registered workers; every point lands exactly once and the per-point
// results carry the answering worker.
func TestBatchFanOutAcrossWorkers(t *testing.T) {
	var calls1, calls2 atomic.Int64
	_, w1 := newPointServer(t, Config{}, func(cluster.Point, string) cluster.PointResult {
		calls1.Add(1)
		return fakePointResult(8)
	})
	_, w2 := newPointServer(t, Config{}, func(cluster.Point, string) cluster.PointResult {
		calls2.Add(1)
		return fakePointResult(8)
	})
	coord, ts := newPointServer(t, Config{Coordinator: true}, func(cluster.Point, string) cluster.PointResult {
		t.Error("coordinator executed a point locally with healthy workers registered")
		return fakePointResult(8)
	})
	coord.members.Register("w1", w1.URL)
	coord.members.Register("w2", w2.URL)

	v, code := submitBatch(t, ts.URL, BatchRequest{
		Label: "pr10",
		Entries: []BatchEntry{
			{Workload: "ME-NAIVE", Runs: 2, Warmup: 2},
			{Workload: "TAGE-HIST", Matrix: "predictor=gshare,tage", Runs: 2, Warmup: 2},
		},
	})
	if code != http.StatusAccepted || v.ID != "batch-1" || v.Points != 3 {
		t.Fatalf("submit: code=%d view=%+v", code, v)
	}
	done := waitBatch(t, ts.URL, v.ID)
	if done.Done != 3 || done.Failed != 0 || done.Degraded {
		t.Fatalf("batch = %+v, want 3 done, none failed or degraded", done)
	}
	if got := calls1.Load() + calls2.Load(); got != 3 {
		t.Errorf("workers executed %d points, want 3 (exactly once each)", got)
	}
	if len(done.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(done.Results))
	}
	keys := map[string]bool{}
	for _, pv := range done.Results {
		if !pv.Done || pv.Result == nil {
			t.Fatalf("point %d not terminal: %+v", pv.Index, pv)
		}
		if w := pv.Result.Worker; w != "w1" && w != "w2" {
			t.Errorf("point %d answered by %q, want a registered worker", pv.Index, w)
		}
		if pv.Key == "" || keys[pv.Key] {
			t.Errorf("point %d key %q missing or duplicated", pv.Index, pv.Key)
		}
		keys[pv.Key] = true
	}

	// The worker roster is visible on the coordinator surface.
	resp, err := http.Get(ts.URL + "/api/v1/cluster/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var roster struct {
		Workers []cluster.WorkerInfo `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&roster); err != nil {
		t.Fatal(err)
	}
	if len(roster.Workers) != 2 {
		t.Errorf("workers = %+v, want 2", roster.Workers)
	}
}

func TestBatchValidation(t *testing.T) {
	_, ts := newPointServer(t, Config{Coordinator: true}, nil)
	for name, req := range map[string]BatchRequest{
		"empty":           {},
		"matrix+cell":     {Entries: []BatchEntry{{Workload: "ME-NAIVE", Matrix: "default", Cell: "predictor=tage"}}},
		"unknown":         {Entries: []BatchEntry{{Workload: "NO-SUCH-WORKLOAD"}}},
		"source+workload": {Entries: []BatchEntry{{Workload: "ME-NAIVE", Source: "nop"}}},
	} {
		if _, code := submitBatch(t, ts.URL, req); code != http.StatusBadRequest {
			t.Errorf("%s: code=%d want 400", name, code)
		}
	}
	if _, code := getBatch(t, ts.URL, "batch-99"); code != http.StatusNotFound {
		t.Errorf("unknown batch: code=%d want 404", code)
	}
}

// TestBatchWorkerDeathReassigns: the worker holding a point is marked
// dead mid-dispatch; the point must move to the surviving worker and
// complete without degrading — and the reassignment must be visible in
// the batch tallies.
func TestBatchWorkerDeathReassigns(t *testing.T) {
	var first atomic.Bool
	block := make(chan struct{})
	gotFirst := make(chan string, 1)
	seam := func(id string) func(cluster.Point, string) cluster.PointResult {
		return func(cluster.Point, string) cluster.PointResult {
			if first.CompareAndSwap(false, true) {
				gotFirst <- id
				<-block
				return cluster.PointResult{Err: "first attempt aborted"}
			}
			return fakePointResult(8)
		}
	}
	_, w1 := newPointServer(t, Config{}, seam("w1"))
	_, w2 := newPointServer(t, Config{}, seam("w2"))
	// Registered after the worker servers, so this cleanup unblocks the
	// stuck handler before httptest.Server.Close waits on it.
	t.Cleanup(func() { close(block) })

	coord, ts := newPointServer(t, Config{Coordinator: true}, func(cluster.Point, string) cluster.PointResult {
		t.Error("point degraded to coordinator-local execution")
		return fakePointResult(8)
	})
	coord.members.Register("w1", w1.URL)
	coord.members.Register("w2", w2.URL)

	v, code := submitBatch(t, ts.URL, BatchRequest{Entries: []BatchEntry{{Workload: "ME-NAIVE", Runs: 2, Warmup: 2}}})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}

	// Kill whichever worker won the rendezvous once its attempt is in
	// flight; the death watch cancels the attempt and reassigns.
	select {
	case id := <-gotFirst:
		coord.members.MarkDead(id)
	case <-time.After(10 * time.Second):
		t.Fatal("no worker ever received the point")
	}

	done := waitBatch(t, ts.URL, v.ID)
	if done.Done != 1 || done.Failed != 0 || done.Degraded {
		t.Fatalf("batch = %+v, want the point completed on the survivor", done)
	}
	if done.Reassigned < 1 {
		t.Errorf("reassigned = %d, want >= 1", done.Reassigned)
	}
	if res := done.Results[0].Result; res == nil || res.Worker == "" || res.Err != "" {
		t.Fatalf("result = %+v, want a healthy remote verdict", done.Results[0])
	}
}

// TestBatchDegradesWithNoWorkers: a coordinator with zero healthy
// workers executes the batch locally and flags both the points and the
// batch as degraded — graceful degradation, not failure.
func TestBatchDegradesWithNoWorkers(t *testing.T) {
	_, ts := newPointServer(t, Config{Coordinator: true}, nil)
	v, code := submitBatch(t, ts.URL, BatchRequest{Entries: []BatchEntry{
		{Workload: "ME-NAIVE", Runs: 2, Warmup: 2},
		{Workload: "ME-NAIVE", Runs: 2, Warmup: 2, SeedOffset: 7},
	}})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	done := waitBatch(t, ts.URL, v.ID)
	if done.Done != 2 || done.Failed != 0 {
		t.Fatalf("batch = %+v, want 2 done", done)
	}
	if !done.Degraded || done.DegradedPoints != 2 {
		t.Fatalf("batch = %+v, want both points degraded", done)
	}
	for _, pv := range done.Results {
		if pv.Result == nil || !pv.Result.Degraded || pv.Result.Worker != "" {
			t.Errorf("point %d = %+v, want a degraded local verdict", pv.Index, pv.Result)
		}
	}
}

// TestBatchPointFailureContained: a point whose verification fails
// carries the error in its own result — the batch completes and the
// other points are unaffected, mirroring core.CellResult.Err.
func TestBatchPointFailureContained(t *testing.T) {
	_, ts := newPointServer(t, Config{Coordinator: true}, func(p cluster.Point, _ string) cluster.PointResult {
		if p.SeedOffset == 7 {
			return cluster.PointResult{Err: "injected verification failure"}
		}
		return fakePointResult(8)
	})
	v, _ := submitBatch(t, ts.URL, BatchRequest{Entries: []BatchEntry{
		{Workload: "ME-NAIVE", Runs: 2, Warmup: 2},
		{Workload: "ME-NAIVE", Runs: 2, Warmup: 2, SeedOffset: 7},
	}})
	done := waitBatch(t, ts.URL, v.ID)
	if done.Done != 1 || done.Failed != 1 {
		t.Fatalf("batch = %+v, want 1 done + 1 failed", done)
	}
	var failed *cluster.PointResult
	for _, pv := range done.Results {
		if pv.Result != nil && pv.Result.Err != "" {
			failed = pv.Result
		}
	}
	if failed == nil || !strings.Contains(failed.Err, "injected verification failure") {
		t.Fatalf("failed point result = %+v", failed)
	}
}

// TestBatchJournalRecoveryResumes is the coordinator crash-recovery
// test: incarnation A is abandoned mid-batch with one point journaled
// and one still in flight; incarnation B over the same journal dir must
// rebuild the batch, keep A's journaled result (exactly-once — B never
// recomputes it), and finish only the remainder.
func TestBatchJournalRecoveryResumes(t *testing.T) {
	dir := t.TempDir()
	blockA := make(chan struct{})
	t.Cleanup(func() { close(blockA) })

	cfgA := Config{Coordinator: true, JournalDir: dir, WorkerTTL: 50 * time.Millisecond}
	cfgA.executePoint = func(p cluster.Point, _ string) cluster.PointResult {
		if p.Workload == "TAGE-HIST" {
			<-blockA // the point the "crash" interrupts
			return fakePointResult(999)
		}
		return fakePointResult(111) // incarnation-A marker
	}
	sA, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(sA.Handler())
	t.Cleanup(tsA.Close)

	v, code := submitBatch(t, tsA.URL, BatchRequest{Entries: []BatchEntry{
		{Workload: "ME-NAIVE", Runs: 2, Warmup: 2},
		{Workload: "TAGE-HIST", Runs: 2, Warmup: 2},
	}})
	if code != http.StatusAccepted || v.ID != "batch-1" {
		t.Fatalf("submit: code=%d view=%+v", code, v)
	}
	// Wait until the ME-NAIVE point's result is journaled (the journal
	// write precedes visibility in the view), then abandon A un-drained —
	// the closest in-process model of a SIGKILL.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if bv, _ := getBatch(t, tsA.URL, v.ID); bv.Done == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first point never completed under incarnation A")
		}
		time.Sleep(2 * time.Millisecond)
	}

	cfgB := Config{Coordinator: true, JournalDir: dir, WorkerTTL: 50 * time.Millisecond}
	cfgB.executePoint = func(cluster.Point, string) cluster.PointResult {
		return fakePointResult(222) // incarnation-B marker
	}
	sB, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	tsB := httptest.NewServer(sB.Handler())
	t.Cleanup(tsB.Close)
	t.Cleanup(func() { drainNow(t, sB) })

	done := waitBatch(t, tsB.URL, "batch-1")
	if done.Done != 2 || done.Failed != 0 {
		t.Fatalf("recovered batch = %+v, want both points done", done)
	}
	byWorkload := map[string]*cluster.PointResult{}
	for _, pv := range done.Results {
		byWorkload[pv.Workload] = pv.Result
	}
	if r := byWorkload["ME-NAIVE"]; r == nil || r.Iterations != 111 {
		t.Errorf("recovered point = %+v, want incarnation A's journaled verdict (111), not a recompute", r)
	}
	if r := byWorkload["TAGE-HIST"]; r == nil || r.Iterations != 222 {
		t.Errorf("resumed point = %+v, want incarnation B's fresh verdict (222)", r)
	}

	// The batch ID sequence continues past the recovered batch.
	v2, code := submitBatch(t, tsB.URL, BatchRequest{Entries: []BatchEntry{{Workload: "ME-NAIVE", Runs: 2, Warmup: 2}}})
	if code != http.StatusAccepted || v2.ID != "batch-2" {
		t.Errorf("post-recovery submit: code=%d id=%s want batch-2", code, v2.ID)
	}
	waitBatch(t, tsB.URL, v2.ID)
}

// TestBatchRecordsInAuditChain: batch-point and batch-done records are
// audit leaves — covered by the Merkle chain and tamper-evident.
func TestBatchRecordsInAuditChain(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Coordinator: true, JournalDir: dir, AuditBatch: 2}
	cfg.executePoint = func(cluster.Point, string) cluster.PointResult { return fakePointResult(8) }
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	v, _ := submitBatch(t, ts.URL, BatchRequest{Entries: []BatchEntry{
		{Workload: "ME-NAIVE", Runs: 2, Warmup: 2},
		{Workload: "ME-NAIVE", Runs: 2, Warmup: 2, SeedOffset: 7},
	}})
	waitBatch(t, ts.URL, v.ID)
	drainNow(t, s)

	sum, err := VerifyAuditLog(dir)
	if err != nil {
		t.Fatalf("clean journal failed verification: %v", err)
	}
	// Two batch-point leaves plus the batch-done leaf.
	if sum.Terminal != 3 || sum.Pending != 0 {
		t.Errorf("summary = %+v, want 3 covered terminal records", sum)
	}

	// Flipping one audited batch verdict must break the chain.
	path := filepath.Join(dir, "journal.jsonl")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(raw), `"leaky":true`, `"leaky":false`, 1)
	if tampered == string(raw) {
		t.Fatal("no batch verdict found to tamper with")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyAuditLog(dir); err == nil {
		t.Error("tampered batch record passed audit verification")
	}
}

// TestRetryAfterCapped locks in the Config.MaxRetryAfter cap: even with
// a huge observed job duration and a saturated queue, the 503 hint may
// not exceed the cap.
func TestRetryAfterCapped(t *testing.T) {
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	s, ts := newFakeServer(t, Config{Workers: 1, QueueSize: 1, MaxRetryAfter: 2 * time.Second},
		func(*Job) (*core.Report, error) { <-release; return fakeReport(), nil })

	// Pretend jobs have been taking an hour each: uncapped, the hint for
	// a full queue would be thousands of seconds.
	s.mu.Lock()
	s.ewmaJobSec = 3600
	s.mu.Unlock()

	if _, code := submitJob(t, ts.URL, JobRequest{Source: "a"}); code != http.StatusAccepted {
		t.Fatal("submit a")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, _ := getView(t, ts.URL, "job-1"); v.Status == string(StatusRunning) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job-1 never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, code := submitJob(t, ts.URL, JobRequest{Source: "b"}); code != http.StatusAccepted {
		t.Fatal("submit b")
	}
	body, _ := json.Marshal(JobRequest{Source: "c"})
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity: %d want 503", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q not an integer", resp.Header.Get("Retry-After"))
	}
	if secs != 2 {
		t.Errorf("Retry-After = %d, want the 2s cap", secs)
	}
}

// TestRetryAfterCapDisabled: a negative MaxRetryAfter switches the cap
// off, restoring the raw queue-depth × duration estimate.
func TestRetryAfterCapDisabled(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueSize: 4, MaxRetryAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { drainNow(t, s) })
	s.mu.Lock()
	s.ewmaJobSec = 3600
	secs := s.retryAfterLocked()
	s.mu.Unlock()
	if secs < 3600 {
		t.Errorf("uncapped Retry-After = %d, want >= 3600", secs)
	}
}

// TestWorkerRestartNoDoubleHistory is the worker-side journal-replay
// dedup test: a worker restarted over the same cache and history
// directories must serve a replayed point from its disk cache and must
// NOT append a second history record for a verdict it already filed.
func TestWorkerRestartNoDoubleHistory(t *testing.T) {
	dir := t.TempDir()
	cacheDir, histDir := dir+"/cache", dir+"/history"
	point := cluster.Point{Workload: "ME-NAIVE", Runs: 2, Warmup: 2, Label: "pr10"}

	var computes1 atomic.Int64
	cfg1 := Config{CacheEntries: 8, CacheDir: cacheDir, HistoryDir: histDir}
	cfg1.executePoint = func(cluster.Point, string) cluster.PointResult {
		computes1.Add(1)
		return fakePointResult(8)
	}
	s1, err := New(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())

	res, code := executeOnWorker(t, ts1.URL, point)
	if code != http.StatusOK || res.Err != "" || res.Cached {
		t.Fatalf("first execute: code=%d res=%+v, want a fresh verdict", code, res)
	}
	if recs := historyRecords(t, ts1.URL); len(recs) != 1 || recs[0].Label != "pr10" {
		t.Fatalf("history after fresh compute = %+v, want one pr10 record", recs)
	}
	drainNow(t, s1)
	ts1.Close()

	// The restarted worker: same disk layers, fresh process. The
	// replayed point must be a cache hit that never reaches the seam or
	// the history store.
	cfg2 := Config{CacheEntries: 8, CacheDir: cacheDir, HistoryDir: histDir}
	cfg2.executePoint = func(cluster.Point, string) cluster.PointResult {
		t.Error("replayed point recomputed after restart")
		return fakePointResult(8)
	}
	s2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(ts2.Close)
	t.Cleanup(func() { drainNow(t, s2) })

	res, code = executeOnWorker(t, ts2.URL, point)
	if code != http.StatusOK || !res.Cached || res.Iterations != 8 {
		t.Fatalf("replayed execute: code=%d res=%+v, want a cached verdict", code, res)
	}
	if recs := historyRecords(t, ts2.URL); len(recs) != 1 {
		t.Fatalf("history after replay has %d records, want 1 — the verdict was double-reported", len(recs))
	}
	if n := computes1.Load(); n != 1 {
		t.Errorf("first incarnation computed %d times, want 1", n)
	}
}

// TestWorkerFillsFromCoordinatorStore: a worker whose local cache
// misses consults the coordinator's shared verdict store before
// simulating — the cross-node fill that makes reassignment after a
// worker death a cache hit.
func TestWorkerFillsFromCoordinatorStore(t *testing.T) {
	coord, tsCoord := newPointServer(t, Config{Coordinator: true}, nil)
	point := cluster.Point{Workload: "ME-NAIVE", Runs: 2, Warmup: 2}
	key, err := point.Key(0)
	if err != nil {
		t.Fatal(err)
	}
	// Seed the coordinator's store the way a dying worker's last upload
	// would: PUT a fresh verdict under the canonical key.
	seeded := fakePointResult(77)
	body, _ := json.Marshal(seeded)
	req, _ := http.NewRequest(http.MethodPut, tsCoord.URL+"/api/v1/cache/"+key, bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("cache put: %d", resp.StatusCode)
	}

	workerCfg := Config{CacheEntries: 8, CoordinatorURL: tsCoord.URL}
	_, tsWorker := newPointServer(t, workerCfg, func(cluster.Point, string) cluster.PointResult {
		t.Error("worker simulated a point the coordinator store already answers")
		return fakePointResult(0)
	})
	res, code := executeOnWorker(t, tsWorker.URL, point)
	if code != http.StatusOK || !res.Cached || res.Iterations != 77 {
		t.Fatalf("execute = code=%d res=%+v, want the coordinator-store verdict (77)", code, res)
	}
	// Failed verdicts are rejected by the store: they must re-run, not
	// stick.
	bad, _ := json.Marshal(cluster.PointResult{Err: "boom"})
	req, _ = http.NewRequest(http.MethodPut, tsCoord.URL+"/api/v1/cache/"+key, bytes.NewReader(bad))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("failed-verdict put: %d want 400", resp.StatusCode)
	}
	_ = coord
}

// BenchmarkClusterThroughput measures coordinator batch throughput over
// two in-process workers, in points per second (the bench.sh cluster
// row). Seed offsets keep every point's cache key distinct.
func BenchmarkClusterThroughput(b *testing.B) {
	seam := func(cluster.Point, string) cluster.PointResult { return fakePointResult(8) }
	newWorker := func() *httptest.Server {
		cfg := Config{}
		cfg.executePoint = seam
		s, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		b.Cleanup(ts.Close)
		return ts
	}
	w1, w2 := newWorker(), newWorker()
	cfg := Config{Coordinator: true}
	cfg.executePoint = seam
	coord, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(coord.Handler())
	b.Cleanup(ts.Close)
	coord.members.Register("w1", w1.URL)
	coord.members.Register("w2", w2.URL)

	const pointsPerBatch = 32
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		entries := make([]BatchEntry, pointsPerBatch)
		for j := range entries {
			entries[j] = BatchEntry{Workload: "ME-NAIVE", Runs: 2, Warmup: 2,
				SeedOffset: i*pointsPerBatch + j + 1}
		}
		body, _ := json.Marshal(BatchRequest{Entries: entries})
		resp, err := http.Post(ts.URL+"/api/v1/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var v batchView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		for {
			resp, err := http.Get(ts.URL + "/api/v1/batch/" + v.ID)
			if err != nil {
				b.Fatal(err)
			}
			var bv batchView
			if err := json.NewDecoder(resp.Body).Decode(&bv); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if bv.Status == BatchDone {
				if bv.Failed != 0 {
					b.Fatalf("batch %s failed %d points", bv.ID, bv.Failed)
				}
				break
			}
		}
	}
	elapsed := time.Since(start)
	b.ReportMetric(float64(b.N*pointsPerBatch)/elapsed.Seconds(), "points/s")
	b.StopTimer()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = coord.Drain(ctx)
}
