package msd

import (
	"encoding/json"
	"net/http"
	"time"

	"microsampler/internal/history"
	"microsampler/internal/report"
	"microsampler/internal/version"
)

// Differential observability surface: when Config.HistoryDir is set,
// every finished job's verdict is filed in the run-history store under
// its label (JobRequest.Label, defaulting to the daemon binary's VCS
// stamp), and the daemon can diff any two labeled states on demand —
// GET /api/v1/history lists the records, POST /api/v1/diff builds the
// verdict diff between two labels and feeds every clean↔leaky flip
// into the msd_verdict_flips_total counter.

// historyLabel resolves the label a job's history record is filed
// under.
func historyLabel(job *Job) string {
	if job.Req.Label != "" {
		return job.Req.Label
	}
	return version.DefaultLabel()
}

// recordHistory appends a finished job's verdict to the history store.
// Append failures are logged, not fatal — the daemon prefers serving
// with a degraded history over failing completed jobs.
func (s *Server) recordHistory(job *Job, sum jobSummary, arts map[string]artifact, finished time.Time) {
	if s.hist == nil {
		return
	}
	rec := history.Record{
		Label:         historyLabel(job),
		Workload:      job.workloadName(),
		Leaky:         sum.leaky,
		LeakyUnits:    sum.leakyUnits,
		Iterations:    sum.iterations,
		SimCycles:     sum.simCycles,
		ElapsedMillis: finished.Sub(job.Started).Milliseconds(),
	}
	// The diffable artifact rides along content-addressed. Cache
	// entries written before the digest artifact existed may lack it;
	// the verdict is still recorded, just not diffable.
	blobs := map[string][]byte{}
	if job.Req.Matrix != "" {
		rec.Kind = history.KindMatrix
		rec.Cells = sum.cells
		rec.LeakyCells = sum.leakyCells
		if a, ok := arts["matrix"]; ok {
			blobs["matrix"] = a.data
			var art report.MatrixArtifact
			if json.Unmarshal(a.data, &art) == nil {
				for _, c := range art.Cells {
					if c.MaxV > rec.MaxV {
						rec.MaxV = c.MaxV
					}
				}
			}
		}
	} else {
		rec.Kind = history.KindReport
		if a, ok := arts["digest"]; ok {
			blobs["digest"] = a.data
			var dg report.ReportDigest
			if json.Unmarshal(a.data, &dg) == nil {
				rec.MaxV = dg.MaxV()
			}
		}
	}
	if _, err := s.hist.Append(rec, blobs); err != nil {
		s.log.Warn("history append failed", "run_id", job.ID, "err", err)
		return
	}
	s.log.Info("history recorded", "run_id", job.ID,
		"label", rec.Label, "workload", rec.Workload, "kind", rec.Kind)
}

// handleHistory lists the run-history records, optionally narrowed by
// ?label= and ?workload=.
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	if s.hist == nil {
		writeError(w, http.StatusNotFound, "history disabled: daemon runs without a history dir")
		return
	}
	label := r.URL.Query().Get("label")
	workload := r.URL.Query().Get("workload")
	recs := s.hist.Records()
	out := make([]history.Record, 0, len(recs))
	for _, rec := range recs {
		if (label == "" || rec.Label == label) &&
			(workload == "" || rec.Workload == workload) {
			out = append(out, rec)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"records": out})
}

// diffRequest is the POST /api/v1/diff payload: diff the latest run
// labeled To against the latest labeled From (optionally pinned to one
// workload). The kind — report or matrix — follows the To record.
type diffRequest struct {
	Workload string  `json:"workload,omitempty"`
	From     string  `json:"from"`
	To       string  `json:"to"`
	VDelta   float64 `json:"vDelta,omitempty"`
}

// handleDiff builds the verdict diff between two labeled history
// states and answers with the diff artifact plus a regression summary.
// Every flip it surfaces increments msd_verdict_flips_total.
func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	if s.hist == nil {
		writeError(w, http.StatusNotFound, "history disabled: daemon runs without a history dir")
		return
	}
	var req diffRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	if req.From == "" || req.To == "" {
		writeError(w, http.StatusBadRequest, "from and to labels are required")
		return
	}
	toRec, ok := s.hist.Latest(req.To, req.Workload, "")
	if !ok {
		writeError(w, http.StatusNotFound, "no history record labeled %q", req.To)
		return
	}
	// Pin the baseline to the to-side's workload unless the caller
	// already did, so cross-workload noise never masquerades as a diff.
	workload := req.Workload
	if workload == "" {
		workload = toRec.Workload
	}
	fromRec, ok := s.hist.Latest(req.From, workload, toRec.Kind)
	if !ok {
		writeError(w, http.StatusNotFound, "no %s record labeled %q for workload %q",
			toRec.Kind, req.From, workload)
		return
	}
	opts := report.DiffOptions{FromLabel: req.From, ToLabel: req.To, VDelta: req.VDelta}

	artName := "digest"
	if toRec.Kind == history.KindMatrix {
		artName = "matrix"
	}
	fromData, err := s.hist.Artifact(fromRec, artName)
	if err != nil {
		writeError(w, http.StatusNotFound, "baseline %s: %v", req.From, err)
		return
	}
	toData, err := s.hist.Artifact(toRec, artName)
	if err != nil {
		writeError(w, http.StatusNotFound, "current %s: %v", req.To, err)
		return
	}

	if toRec.Kind == history.KindMatrix {
		var from, to report.MatrixArtifact
		if err := json.Unmarshal(fromData, &from); err != nil {
			writeError(w, http.StatusInternalServerError, "baseline matrix: %v", err)
			return
		}
		if err := json.Unmarshal(toData, &to); err != nil {
			writeError(w, http.StatusInternalServerError, "current matrix: %v", err)
			return
		}
		d := report.BuildMatrixDiff(&from, &to, opts)
		s.verdictFlips.Add(uint64(len(d.Flips)))
		writeJSON(w, http.StatusOK, map[string]any{
			"kind":         history.KindMatrix,
			"regression":   d.Regression(),
			"flips":        len(d.Flips),
			"regressions":  d.Regressions,
			"improvements": d.Improvements,
			"diff":         d,
		})
		return
	}
	var from, to report.ReportDigest
	if err := json.Unmarshal(fromData, &from); err != nil {
		writeError(w, http.StatusInternalServerError, "baseline digest: %v", err)
		return
	}
	if err := json.Unmarshal(toData, &to); err != nil {
		writeError(w, http.StatusInternalServerError, "current digest: %v", err)
		return
	}
	d := report.BuildDiff(&from, &to, opts)
	s.verdictFlips.Add(uint64(len(d.Flips)))
	writeJSON(w, http.StatusOK, map[string]any{
		"kind":         history.KindReport,
		"regression":   d.Regression(),
		"flips":        len(d.Flips),
		"regressions":  d.Regressions,
		"improvements": d.Improvements,
		"diff":         d,
	})
}
