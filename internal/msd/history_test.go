package msd

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"microsampler/internal/core"
	"microsampler/internal/stats"
	"microsampler/internal/trace"
)

// fakeCleanReport is fakeReport's clean twin: every iteration hashes
// identically regardless of class, so no unit is flagged.
func fakeCleanReport() *core.Report {
	const iters = 8
	rep := &core.Report{
		Workload:   "fake",
		Config:     "TestBoom",
		Runs:       1,
		SimCycles:  1234,
		IterHashes: map[trace.Unit][]uint64{},
	}
	hashes := make([]uint64, 0, iters)
	for i := 0; i < iters; i++ {
		rep.Iterations = append(rep.Iterations, trace.IterSample{Class: uint64(i % 2), Cycles: 10})
		hashes = append(hashes, 100)
	}
	rep.IterHashes[trace.SQADDR] = hashes
	tab := stats.NewTable()
	for i, h := range hashes {
		tab.Add(rep.Iterations[i].Class, h, 1)
	}
	rep.Units = append(rep.Units, core.UnitResult{
		Unit:  trace.SQADDR,
		Table: tab,
		Assoc: tab.Analyze(),
	})
	return rep
}

func postDiff(t *testing.T, base string, req map[string]any) (map[string]any, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/api/v1/diff", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out, resp.StatusCode
}

// TestDaemonHistoryAndDiff: finished jobs land in the history store
// under their label, /api/v1/history lists and filters them, and
// /api/v1/diff detects the clean→leaky flip between two labels,
// feeding msd_verdict_flips_total.
func TestDaemonHistoryAndDiff(t *testing.T) {
	cfg := Config{Workers: 1, HistoryDir: t.TempDir() + "/hist"}
	_, ts := newFakeServer(t, cfg, func(j *Job) (*core.Report, error) {
		if j.Req.Label == "clean" {
			return fakeCleanReport(), nil
		}
		return fakeReport(), nil
	})

	for _, label := range []string{"clean", "leaky"} {
		v, code := submitJob(t, ts.URL, JobRequest{Source: "fake", Label: label})
		if code != http.StatusAccepted {
			t.Fatalf("submit %s: %d", label, code)
		}
		done := waitDone(t, ts.URL, v.ID)
		if done.Status != string(StatusDone) {
			t.Fatalf("job %s failed: %+v", label, done)
		}
		if done.Label != label {
			t.Errorf("job view label = %q want %q", done.Label, label)
		}
	}

	// The digest artifact is downloadable and parses as a digest.
	resp, err := http.Get(ts.URL + "/api/v1/jobs?label=leaky")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []jobView `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Jobs) != 1 || list.Jobs[0].Label != "leaky" {
		t.Fatalf("?label=leaky list: %+v", list.Jobs)
	}

	// History lists both runs; ?label= narrows to one.
	resp, err = http.Get(ts.URL + "/api/v1/history")
	if err != nil {
		t.Fatal(err)
	}
	var hist struct {
		Records []map[string]any `json:"records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hist); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(hist.Records) != 2 {
		t.Fatalf("history records = %d want 2", len(hist.Records))
	}
	if k := hist.Records[0]["kind"]; k != "report" {
		t.Errorf("record kind = %v want report", k)
	}
	resp, err = http.Get(ts.URL + "/api/v1/history?label=clean")
	if err != nil {
		t.Fatal(err)
	}
	hist.Records = nil
	if err := json.NewDecoder(resp.Body).Decode(&hist); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(hist.Records) != 1 || hist.Records[0]["label"] != "clean" {
		t.Fatalf("?label=clean records: %+v", hist.Records)
	}

	// clean → leaky is a regression with one flip.
	out, code := postDiff(t, ts.URL, map[string]any{"from": "clean", "to": "leaky"})
	if code != http.StatusOK {
		t.Fatalf("diff: %d %v", code, out)
	}
	if out["kind"] != "report" || out["regression"] != true || out["flips"] != float64(1) {
		t.Errorf("diff clean→leaky: %v", out)
	}

	// leaky → clean is the same flip seen as an improvement.
	out, code = postDiff(t, ts.URL, map[string]any{"from": "leaky", "to": "clean"})
	if code != http.StatusOK || out["regression"] != false || out["improvements"] != float64(1) {
		t.Errorf("diff leaky→clean: %d %v", code, out)
	}

	// Both diffs surfaced their flip in the counter, and the build-info
	// gauge is part of the exposition.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := new(bytes.Buffer)
	_, _ = metrics.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(metrics.String(), "msd_verdict_flips_total 2") {
		t.Errorf("metrics missing msd_verdict_flips_total 2:\n%s", metrics.String())
	}
	if !strings.Contains(metrics.String(), "msd_build_info{") {
		t.Error("metrics missing msd_build_info gauge")
	}
}

// TestDaemonMatrixDiff: matrix jobs file their artifact under the
// matrix kind and the diff endpoint flags a cell flip between labels.
func TestDaemonMatrixDiff(t *testing.T) {
	cfg := Config{Workers: 1, HistoryDir: t.TempDir() + "/hist"}
	cfg.verifyMatrix = func(j *Job) (*core.Matrix, error) {
		m := fakeMatrix()
		if j.Req.Label == "clean" {
			for i := range m.Cells {
				m.Cells[i].Leaky = false
				m.Cells[i].Flagged = nil
				m.Cells[i].MaxV = 0
				m.Cells[i].MaxVUnit = ""
			}
		}
		return m, nil
	}
	_, ts := newFakeServer(t, cfg, nil)

	for _, label := range []string{"clean", "current"} {
		v, code := submitMatrix(t, ts.URL, JobRequest{Workload: "CT-DIV", Label: label})
		if code != http.StatusAccepted {
			t.Fatalf("submit %s: %d", label, code)
		}
		if done := waitDone(t, ts.URL, v.ID); done.Status != string(StatusDone) {
			t.Fatalf("matrix job %s failed: %+v", label, done)
		}
	}

	out, code := postDiff(t, ts.URL, map[string]any{"from": "clean", "to": "current"})
	if code != http.StatusOK {
		t.Fatalf("matrix diff: %d %v", code, out)
	}
	if out["kind"] != "matrix" || out["regression"] != true || out["flips"] != float64(1) {
		t.Errorf("matrix diff clean→current: %v", out)
	}
	diff, ok := out["diff"].(map[string]any)
	if !ok {
		t.Fatalf("diff payload missing: %v", out)
	}
	if diff["fromLabel"] != "clean" || diff["toLabel"] != "current" {
		t.Errorf("diff labels: %v", diff)
	}

	// An unknown baseline label is a 404, not a silent empty diff.
	if _, code := postDiff(t, ts.URL, map[string]any{"from": "nope", "to": "current"}); code != http.StatusNotFound {
		t.Errorf("diff with unknown baseline: %d want 404", code)
	}
}

// TestHistoryDisabled: without a HistoryDir the history and diff
// endpoints answer 404 instead of pretending an empty history.
func TestHistoryDisabled(t *testing.T) {
	_, ts := newFakeServer(t, Config{Workers: 1}, nil)
	resp, err := http.Get(ts.URL + "/api/v1/history")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("history without store: %d want 404", resp.StatusCode)
	}
	if _, code := postDiff(t, ts.URL, map[string]any{"from": "a", "to": "b"}); code != http.StatusNotFound {
		t.Errorf("diff without store: %d want 404", code)
	}
}

// TestLabelDoesNotSplitCache: the history label is execution metadata;
// two submissions differing only in label share one cache key.
func TestLabelDoesNotSplitCache(t *testing.T) {
	var req1, req2 JobRequest
	if err := json.Unmarshal([]byte(`{"source":"nop","runs":4}`), &req1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(`{"source":"nop","runs":4,"label":"abc123"}`), &req2); err != nil {
		t.Fatal(err)
	}
	k1, k2 := jobCacheKey(req1, 0), jobCacheKey(req2, 0)
	if k1 == "" || k1 != k2 {
		t.Errorf("label changed the cache key: %q vs %q", k1, k2)
	}
}
