package msd

import (
	"fmt"
	"strings"
	"time"

	"microsampler/internal/core"
	"microsampler/internal/report"
	"microsampler/internal/sim"
	"microsampler/internal/telemetry/export"
	"microsampler/internal/workloads"
)

// JobStatus is the lifecycle state of a submitted verification job.
type JobStatus string

// Job lifecycle states.
const (
	StatusQueued  JobStatus = "queued"
	StatusRunning JobStatus = "running"
	StatusDone    JobStatus = "done"
	StatusFailed  JobStatus = "failed"
	// StatusInterrupted marks a job that was mid-run when the daemon
	// process died, discovered by journal recovery at the next start.
	// It is terminal unless Config.RequeueInterrupted re-enqueues the
	// job for a fresh attempt.
	StatusInterrupted JobStatus = "interrupted"
)

// JobRequest is the submit-endpoint payload. Exactly one of Workload
// (a built-in case-study name) or Source (raw RV64 assembly in the
// framework dialect) must be set; everything else defaults like the
// CLI does.
type JobRequest struct {
	Workload string `json:"workload,omitempty"`
	Source   string `json:"source,omitempty"`
	// Config selects the simulated core: "mega" (default) or "small".
	Config     string `json:"config,omitempty"`
	FastBypass bool   `json:"fastBypass,omitempty"`
	Runs       int    `json:"runs,omitempty"`   // default 4
	Warmup     int    `json:"warmup,omitempty"` // 0: framework default, <0: keep all
	// Parallel is forwarded to core.Options.Parallel: concurrent
	// simulations within this job (0/absent: one per CPU).
	Parallel       int  `json:"parallel,omitempty"`
	SeedOffset     int  `json:"seedOffset,omitempty"`
	MeasureStages  bool `json:"measureStages,omitempty"`
	HeatmapWindows int  `json:"heatmapWindows,omitempty"`
}

// validate normalises the request and reports user errors.
func (r *JobRequest) validate() error {
	if (r.Workload == "") == (r.Source == "") {
		return fmt.Errorf("exactly one of workload or source is required")
	}
	if r.Workload != "" {
		if _, err := workloads.ByName(r.Workload); err != nil {
			return err
		}
	}
	switch strings.ToLower(r.Config) {
	case "", "mega", "megaboom", "small", "smallboom":
	default:
		return fmt.Errorf("unknown config %q (mega or small)", r.Config)
	}
	if r.Runs < 0 || r.Runs > 1024 {
		return fmt.Errorf("runs must be in [0,1024], got %d", r.Runs)
	}
	return nil
}

func (r *JobRequest) config() sim.Config {
	var cfg sim.Config
	switch strings.ToLower(r.Config) {
	case "small", "smallboom":
		cfg = sim.SmallBoom()
	default:
		cfg = sim.MegaBoom()
	}
	cfg.FastBypass = r.FastBypass
	return cfg
}

func (r *JobRequest) workload() (core.Workload, error) {
	if r.Workload != "" {
		return workloads.ByName(r.Workload)
	}
	return core.Workload{Name: "submitted-source", Source: r.Source}, nil
}

// Job is one tracked verification: the request, its lifecycle
// timestamps, and — once done — the rendered artifacts. Fields are
// guarded by the server mutex; artifacts are written once before the
// job transitions to done and read-only afterwards.
type Job struct {
	ID        string
	Req       JobRequest
	Status    JobStatus
	Err       string
	Submitted time.Time
	Started   time.Time
	Finished  time.Time

	Leaky      bool
	LeakyUnits []string
	Iterations int
	SimCycles  int64

	artifacts map[string]artifact
}

// artifact is one downloadable result document.
type artifact struct {
	contentType string
	data        []byte
}

// jobView is the wire form of a job's status.
type jobView struct {
	ID         string   `json:"id"`
	Workload   string   `json:"workload"`
	Status     string   `json:"status"`
	Error      string   `json:"error,omitempty"`
	Submitted  string   `json:"submitted"`
	Started    string   `json:"started,omitempty"`
	Finished   string   `json:"finished,omitempty"`
	DurationMS int64    `json:"durationMillis,omitempty"`
	Leaky      *bool    `json:"leaky,omitempty"`
	LeakyUnits []string `json:"leakyUnits,omitempty"`
	Iterations int      `json:"iterations,omitempty"`
	SimCycles  int64    `json:"simCycles,omitempty"`
	Artifacts  []string `json:"artifacts,omitempty"`
}

func (j *Job) view() jobView {
	v := jobView{
		ID:        j.ID,
		Workload:  j.workloadName(),
		Status:    string(j.Status),
		Error:     j.Err,
		Submitted: j.Submitted.UTC().Format(time.RFC3339Nano),
	}
	if !j.Started.IsZero() {
		v.Started = j.Started.UTC().Format(time.RFC3339Nano)
	}
	if !j.Finished.IsZero() {
		v.Finished = j.Finished.UTC().Format(time.RFC3339Nano)
		v.DurationMS = j.Finished.Sub(j.Started).Milliseconds()
	}
	if j.Status == StatusDone {
		leaky := j.Leaky
		v.Leaky = &leaky
		v.LeakyUnits = j.LeakyUnits
		v.Iterations = j.Iterations
		v.SimCycles = j.SimCycles
		for name := range j.artifacts {
			v.Artifacts = append(v.Artifacts, name)
		}
		sortStrings(v.Artifacts)
	}
	return v
}

func (j *Job) workloadName() string {
	if j.Req.Workload != "" {
		return j.Req.Workload
	}
	return "submitted-source"
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for k := i; k > 0 && s[k] < s[k-1]; k-- {
			s[k], s[k-1] = s[k-1], s[k]
		}
	}
}

// renderArtifacts produces every downloadable document of a finished
// verification: the stable JSON report, the Perfetto trace of the span
// tree, and the leakage heatmap in JSON and self-contained HTML.
func renderArtifacts(rep *core.Report, heatmapWindows int) (map[string]artifact, error) {
	out := make(map[string]artifact, 4)
	repJSON, err := report.JSON(rep)
	if err != nil {
		return nil, fmt.Errorf("render report: %w", err)
	}
	out["report"] = artifact{"application/json", repJSON}

	traceJSON, err := export.Perfetto(rep.Spans).JSON()
	if err != nil {
		return nil, fmt.Errorf("render trace: %w", err)
	}
	out["trace"] = artifact{"application/json", traceJSON}

	hm, err := report.BuildHeatmap(rep, heatmapWindows)
	if err != nil {
		return nil, fmt.Errorf("build heatmap: %w", err)
	}
	hmJSON, err := hm.JSON()
	if err != nil {
		return nil, fmt.Errorf("render heatmap: %w", err)
	}
	out["heatmap"] = artifact{"application/json", hmJSON}
	out["heatmap.html"] = artifact{"text/html; charset=utf-8", []byte(hm.HTML())}
	return out, nil
}
