package msd

import (
	"fmt"
	"strings"
	"time"

	"microsampler/internal/core"
	"microsampler/internal/report"
	"microsampler/internal/sim"
	"microsampler/internal/telemetry/export"
	"microsampler/internal/workloads"
)

// JobStatus is the lifecycle state of a submitted verification job.
type JobStatus string

// Job lifecycle states.
const (
	StatusQueued  JobStatus = "queued"
	StatusRunning JobStatus = "running"
	StatusDone    JobStatus = "done"
	StatusFailed  JobStatus = "failed"
	// StatusInterrupted marks a job that was mid-run when the daemon
	// process died, discovered by journal recovery at the next start.
	// It is terminal unless Config.RequeueInterrupted re-enqueues the
	// job for a fresh attempt.
	StatusInterrupted JobStatus = "interrupted"
)

// JobRequest is the submit-endpoint payload. Exactly one of Workload
// (a built-in case-study name) or Source (raw RV64 assembly in the
// framework dialect) must be set; everything else defaults like the
// CLI does.
type JobRequest struct {
	Workload string `json:"workload,omitempty"`
	Source   string `json:"source,omitempty"`
	// Config selects the simulated core: "mega" (default) or "small".
	Config     string `json:"config,omitempty"`
	FastBypass bool   `json:"fastBypass,omitempty"`
	Runs       int    `json:"runs,omitempty"`   // default 4
	Warmup     int    `json:"warmup,omitempty"` // 0: framework default, <0: keep all
	// Parallel is forwarded to core.Options.Parallel: concurrent
	// simulations within this job (0/absent: one per CPU).
	Parallel       int  `json:"parallel,omitempty"`
	SeedOffset     int  `json:"seedOffset,omitempty"`
	MeasureStages  bool `json:"measureStages,omitempty"`
	HeatmapWindows int  `json:"heatmapWindows,omitempty"`

	// Matrix turns the job into a configuration-grid sweep: the program
	// is fanned out across every cell of the grid spec (or the default
	// grid when the value is "default") and the per-cell verdicts are
	// aggregated into single matrix/matrix.html artifacts. Config and
	// FastBypass are ignored for matrix jobs — the grid defines each
	// cell's configuration. POST /api/v1/matrix submits this shape
	// directly.
	Matrix string `json:"matrix,omitempty"`
	// CellParallel bounds the concurrently verified cells of a matrix
	// job (0/absent: sequential cells; each cell still parallelises its
	// runs via Parallel).
	CellParallel int `json:"cellParallel,omitempty"`

	// Label names the code state this run should be filed under in the
	// daemon's run-history store (Config.HistoryDir) — a commit SHA,
	// typically. Execution metadata only: it never enters the
	// content-addressed cache key, so relabeled resubmissions still hit
	// the cache. Empty defaults to the daemon binary's own VCS stamp.
	Label string `json:"label,omitempty"`
}

// validate normalises the request and reports user errors.
func (r *JobRequest) validate() error {
	if (r.Workload == "") == (r.Source == "") {
		return fmt.Errorf("exactly one of workload or source is required")
	}
	if r.Workload != "" {
		if _, err := workloads.ByName(r.Workload); err != nil {
			return err
		}
	}
	switch strings.ToLower(r.Config) {
	case "", "mega", "megaboom", "small", "smallboom":
	default:
		return fmt.Errorf("unknown config %q (mega or small)", r.Config)
	}
	if r.Runs < 0 || r.Runs > 1024 {
		return fmt.Errorf("runs must be in [0,1024], got %d", r.Runs)
	}
	if r.Matrix != "" && !strings.EqualFold(r.Matrix, "default") {
		if _, err := core.ParseGridSpec(r.Matrix); err != nil {
			return err
		}
	}
	if r.CellParallel < core.ParallelAuto {
		return fmt.Errorf("cellParallel must be >= %d, got %d", core.ParallelAuto, r.CellParallel)
	}
	return nil
}

// grid resolves the request's grid spec; only meaningful when Matrix is
// non-empty (validate has already vetted the spec).
func (r *JobRequest) grid() (core.GridSpec, error) {
	if strings.EqualFold(r.Matrix, "default") {
		return core.DefaultGrid(), nil
	}
	return core.ParseGridSpec(r.Matrix)
}

func (r *JobRequest) config() sim.Config {
	var cfg sim.Config
	switch strings.ToLower(r.Config) {
	case "small", "smallboom":
		cfg = sim.SmallBoom()
	default:
		cfg = sim.MegaBoom()
	}
	cfg.FastBypass = r.FastBypass
	return cfg
}

func (r *JobRequest) workload() (core.Workload, error) {
	if r.Workload != "" {
		return workloads.ByName(r.Workload)
	}
	return core.Workload{Name: "submitted-source", Source: r.Source}, nil
}

// Job is one tracked verification: the request, its lifecycle
// timestamps, and — once done — the rendered artifacts. Fields are
// guarded by the server mutex; artifacts are written once before the
// job transitions to done and read-only afterwards.
type Job struct {
	ID        string
	Req       JobRequest
	Status    JobStatus
	Err       string
	Submitted time.Time
	Started   time.Time
	Finished  time.Time

	Leaky      bool
	LeakyUnits []string
	Iterations int
	SimCycles  int64
	// Cells and LeakyCells summarise a matrix job (Req.Matrix set):
	// grid size and the names of the cells with a leaky verdict.
	Cells      int
	LeakyCells []string
	// Cached marks a done job whose verdict came from the
	// content-addressed cache (or was deduplicated onto an identical
	// in-flight job) instead of a fresh simulation.
	Cached bool

	artifacts map[string]artifact

	// probe is the live progress view of the running verification,
	// installed by the worker just before the job starts and read by
	// the /jobs/{id}/progress endpoint. Nil until the job first runs
	// (and after recovery, where no live pipeline exists).
	probe *core.RunProbe
}

// artifact is one downloadable result document.
type artifact struct {
	contentType string
	data        []byte
}

// jobView is the wire form of a job's status.
type jobView struct {
	ID         string   `json:"id"`
	Workload   string   `json:"workload"`
	Label      string   `json:"label,omitempty"`
	Status     string   `json:"status"`
	Error      string   `json:"error,omitempty"`
	Submitted  string   `json:"submitted"`
	Started    string   `json:"started,omitempty"`
	Finished   string   `json:"finished,omitempty"`
	DurationMS int64    `json:"durationMillis,omitempty"`
	Leaky      *bool    `json:"leaky,omitempty"`
	LeakyUnits []string `json:"leakyUnits,omitempty"`
	Iterations int      `json:"iterations,omitempty"`
	SimCycles  int64    `json:"simCycles,omitempty"`
	Cells      int      `json:"cells,omitempty"`
	LeakyCells []string `json:"leakyCells,omitempty"`
	Cached     bool     `json:"cached,omitempty"`
	Artifacts  []string `json:"artifacts,omitempty"`
}

func (j *Job) view() jobView {
	v := jobView{
		ID:        j.ID,
		Workload:  j.workloadName(),
		Label:     j.Req.Label,
		Status:    string(j.Status),
		Error:     j.Err,
		Submitted: j.Submitted.UTC().Format(time.RFC3339Nano),
	}
	if !j.Started.IsZero() {
		v.Started = j.Started.UTC().Format(time.RFC3339Nano)
	}
	if !j.Finished.IsZero() {
		v.Finished = j.Finished.UTC().Format(time.RFC3339Nano)
		v.DurationMS = j.Finished.Sub(j.Started).Milliseconds()
	}
	if j.Status == StatusDone {
		leaky := j.Leaky
		v.Leaky = &leaky
		v.LeakyUnits = j.LeakyUnits
		v.Iterations = j.Iterations
		v.SimCycles = j.SimCycles
		v.Cells = j.Cells
		v.LeakyCells = j.LeakyCells
		v.Cached = j.Cached
	}
	// Failed jobs can carry artifacts too (the flight-recorder
	// post-mortem), so list them for every terminal status.
	if j.Status == StatusDone || j.Status == StatusFailed {
		for name := range j.artifacts {
			v.Artifacts = append(v.Artifacts, name)
		}
		sortStrings(v.Artifacts)
	}
	return v
}

// progressView is the wire form of /api/v1/jobs/{id}/progress: a live
// reading of the run probe while the job executes, frozen to the final
// report numbers once it is terminal.
type progressView struct {
	ID        string `json:"id"`
	Status    string `json:"status"`
	Stage     string `json:"stage"`
	Cycles    int64  `json:"cycles"`
	RunsDone  int    `json:"runsDone"`
	TotalRuns int    `json:"totalRuns"`
	Retries   int    `json:"retries"`
	ElapsedMS int64  `json:"elapsedMillis"`
}

// progress snapshots the job's live state; callers hold the server
// mutex (the probe itself is lock-free and safe to read concurrently
// with the running pipeline).
func (j *Job) progress() progressView {
	v := progressView{ID: j.ID, Status: string(j.Status)}
	switch j.Status {
	case StatusQueued:
		v.Stage = core.StageIdle.String()
		v.ElapsedMS = time.Since(j.Submitted).Milliseconds()
	case StatusRunning:
		v.ElapsedMS = time.Since(j.Started).Milliseconds()
	default:
		v.ElapsedMS = j.Finished.Sub(j.Started).Milliseconds()
	}
	if j.probe != nil {
		s := j.probe.Snapshot()
		v.Stage = s.Stage.String()
		v.Cycles = s.Cycles
		v.RunsDone = s.RunsDone
		v.TotalRuns = s.TotalRuns
		v.Retries = s.Retries
	}
	// Terminal statuses pin the stage and cycle count to the recorded
	// outcome, which also covers journal-recovered jobs with no live
	// probe (and test doubles that never drive one).
	switch j.Status {
	case StatusDone:
		v.Stage = core.StageDone.String()
		if j.SimCycles > v.Cycles {
			v.Cycles = j.SimCycles
		}
	case StatusFailed, StatusInterrupted:
		v.Stage = core.StageFailed.String()
	}
	return v
}

func (j *Job) workloadName() string {
	if j.Req.Workload != "" {
		return j.Req.Workload
	}
	return "submitted-source"
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for k := i; k > 0 && s[k] < s[k-1]; k-- {
			s[k], s[k-1] = s[k-1], s[k]
		}
	}
}

// renderArtifacts produces every downloadable document of a finished
// verification: the stable JSON report, the Perfetto trace of the span
// tree, the leakage heatmap and provenance in JSON and self-contained
// HTML, and the diffable report digest the history/diff layer consumes.
func renderArtifacts(rep *core.Report, heatmapWindows int) (map[string]artifact, error) {
	out := make(map[string]artifact, 4)
	repJSON, err := report.JSON(rep)
	if err != nil {
		return nil, fmt.Errorf("render report: %w", err)
	}
	out["report"] = artifact{"application/json", repJSON}

	traceJSON, err := export.Perfetto(rep.Spans).JSON()
	if err != nil {
		return nil, fmt.Errorf("render trace: %w", err)
	}
	out["trace"] = artifact{"application/json", traceJSON}

	hm, err := report.BuildHeatmap(rep, heatmapWindows)
	if err != nil {
		return nil, fmt.Errorf("build heatmap: %w", err)
	}
	hmJSON, err := hm.JSON()
	if err != nil {
		return nil, fmt.Errorf("render heatmap: %w", err)
	}
	out["heatmap"] = artifact{"application/json", hmJSON}
	out["heatmap.html"] = artifact{"text/html; charset=utf-8", []byte(hm.HTML())}

	pv, err := report.BuildProvenance(rep)
	if err != nil {
		return nil, fmt.Errorf("build provenance: %w", err)
	}
	pvJSON, err := pv.JSON()
	if err != nil {
		return nil, fmt.Errorf("render provenance: %w", err)
	}
	out["provenance"] = artifact{"application/json", pvJSON}
	out["provenance.html"] = artifact{"text/html; charset=utf-8",
		[]byte(pv.HTMLWithDisasm(rep.Program, 5, 4))}

	dg, err := report.BuildDigest(rep)
	if err != nil {
		return nil, fmt.Errorf("build digest: %w", err)
	}
	dgJSON, err := dg.JSON()
	if err != nil {
		return nil, fmt.Errorf("render digest: %w", err)
	}
	out["digest"] = artifact{"application/json", dgJSON}
	return out, nil
}

// renderMatrixArtifacts aggregates a grid sweep's per-cell results into
// the single downloadable matrix artifact pair: the deterministic JSON
// verdict matrix and the self-contained HTML heatmap.
func renderMatrixArtifacts(m *core.Matrix) (map[string]artifact, error) {
	art := report.BuildMatrix(m, 0)
	data, err := art.JSON()
	if err != nil {
		return nil, fmt.Errorf("render matrix: %w", err)
	}
	return map[string]artifact{
		"matrix":      {"application/json", data},
		"matrix.html": {"text/html; charset=utf-8", []byte(art.HTML())},
	}, nil
}

// postmortemArtifacts extracts the downloadable evidence of a failed
// job: the flight-recorder dump rendered as a Perfetto counter trace,
// when the verification error carries one. Failures without a dump
// yield no artifacts.
func postmortemArtifacts(err error) map[string]artifact {
	dump, ok := core.FlightDumpFromError(err)
	if !ok {
		return nil
	}
	data, jerr := export.FlightPerfetto(dump).JSON()
	if jerr != nil {
		return nil
	}
	return map[string]artifact{
		"postmortem": {"application/json", data},
	}
}
