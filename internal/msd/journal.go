package msd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"microsampler/internal/cluster"
)

// journalRecord is one line of the write-ahead job journal: an event in
// a job's lifecycle, appended (and fsynced) before the corresponding
// in-memory state change becomes externally visible. Replaying the
// journal in order reconstructs the job table of a crashed daemon.
type journalRecord struct {
	// Event is one of submit, start, done, failed, interrupted, evict.
	Event string    `json:"event"`
	Time  time.Time `json:"time"`
	ID    string    `json:"id"`

	// Req is recorded on submit, so a recovered queued job can re-run.
	Req *JobRequest `json:"req,omitempty"`
	// Err is recorded on failed.
	Err string `json:"err,omitempty"`

	// Verdict summary, recorded on done. Artifacts live next to the
	// journal under jobs/<id>/ and are not duplicated here.
	Leaky      bool     `json:"leaky,omitempty"`
	LeakyUnits []string `json:"leakyUnits,omitempty"`
	Iterations int      `json:"iterations,omitempty"`
	SimCycles  int64    `json:"simCycles,omitempty"`
	// Cells and LeakyCells summarise a matrix job's grid sweep.
	Cells      int      `json:"cells,omitempty"`
	LeakyCells []string `json:"leakyCells,omitempty"`
	// Cached marks a done job whose verdict was served from the
	// content-addressed cache instead of a fresh simulation.
	Cached bool `json:"cached,omitempty"`

	// Batch fields: BatchReq is recorded on batch-submit (recovery
	// re-explodes it deterministically), PointIdx/PointRes on
	// batch-point — one point's terminal result, the WAL unit of the
	// cluster path — and the tallies on batch-done.
	BatchReq    *BatchRequest        `json:"batchReq,omitempty"`
	PointIdx    int                  `json:"pointIdx,omitempty"`
	PointRes    *cluster.PointResult `json:"pointRes,omitempty"`
	Done        int                  `json:"done,omitempty"`
	FailedPts   int                  `json:"failedPoints,omitempty"`
	DegradedPts int                  `json:"degradedPoints,omitempty"`
	Reassigned  int                  `json:"reassigned,omitempty"`
	Hedged      int                  `json:"hedged,omitempty"`

	// Audit fields, recorded on event "audit" (which carries no job ID):
	// Root is the Merkle root over the Count terminal records starting at
	// terminal ordinal First, and Prev is the chain value before this
	// batch — the chain after it is H(Prev || Root). See merkle.go.
	Root  string `json:"root,omitempty"`
	Prev  string `json:"prev,omitempty"`
	First int    `json:"first,omitempty"`
	Count int    `json:"count,omitempty"`
}

// journal is the daemon's crash-safe persistence: an append-only JSONL
// event log plus per-job artifact directories, all under one root.
type journal struct {
	dir string

	mu     sync.Mutex
	f      *os.File
	closed bool
}

// openJournal opens (creating as needed) the journal under dir and
// returns the records of any previous incarnation, in append order,
// plus the raw journal bytes so the audit chain can be rebuilt from the
// exact line bytes its leaves hash.
func openJournal(dir string) (*journal, []journalRecord, []byte, error) {
	if err := os.MkdirAll(filepath.Join(dir, "jobs"), 0o755); err != nil {
		return nil, nil, nil, fmt.Errorf("msd: journal dir: %w", err)
	}
	path := filepath.Join(dir, "journal.jsonl")
	var recs []journalRecord
	raw, err := os.ReadFile(path)
	switch {
	case err == nil:
		recs = parseJournal(raw)
	case !os.IsNotExist(err):
		return nil, nil, nil, fmt.Errorf("msd: read journal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("msd: open journal: %w", err)
	}
	return &journal{dir: dir, f: f}, recs, raw, nil
}

// parseJournal decodes journal lines tolerantly: a line torn by the
// crash (or otherwise unparsable) is skipped rather than poisoning
// recovery of every job recorded before it.
func parseJournal(raw []byte) []journalRecord {
	var recs []journalRecord
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 64*1024), 8<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.ID == "" {
			continue
		}
		recs = append(recs, rec)
	}
	return recs
}

// append writes one record and syncs it to stable storage before
// returning, so an acknowledged event survives the process dying at any
// later instant. It returns the exact line bytes written (without the
// trailing newline): the audit chain hashes those bytes as Merkle
// leaves, so any later mutation of the line is detectable.
func (j *journal) append(rec journalRecord) ([]byte, error) {
	data, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("msd: encode journal record: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil, fmt.Errorf("msd: journal closed")
	}
	if _, err := j.f.Write(append(data, '\n')); err != nil {
		return nil, fmt.Errorf("msd: append journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return nil, fmt.Errorf("msd: sync journal: %w", err)
	}
	return data, nil
}

// Close releases the journal file; further appends fail.
func (j *journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	return j.f.Close()
}

// jobDir is where one job's artifacts live on disk.
func (j *journal) jobDir(id string) string { return filepath.Join(j.dir, "jobs", id) }

// artifactMeta is one entry of a job's on-disk artifact manifest.
type artifactMeta struct {
	File        string `json:"file"`
	ContentType string `json:"contentType"`
}

// writeArtifacts flushes a finished job's artifacts to its directory.
// Every file lands via write-to-temp, fsync, rename — the manifest
// last — so a reader (including a recovering daemon) never observes a
// partially written artifact: either the manifest names only complete
// files, or there is no manifest and the job does not count as done.
func (j *journal) writeArtifacts(id string, arts map[string]artifact) error {
	dir := j.jobDir(id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("msd: job dir: %w", err)
	}
	manifest := make(map[string]artifactMeta, len(arts))
	for name, art := range arts {
		if strings.ContainsAny(name, "/\\") || strings.HasPrefix(name, ".") {
			return fmt.Errorf("msd: unsafe artifact name %q", name)
		}
		if err := writeFileAtomic(filepath.Join(dir, name), art.data); err != nil {
			return err
		}
		manifest[name] = artifactMeta{File: name, ContentType: art.contentType}
	}
	mdata, err := json.MarshalIndent(manifest, "", "  ")
	if err != nil {
		return fmt.Errorf("msd: encode manifest: %w", err)
	}
	return writeFileAtomic(filepath.Join(dir, "manifest.json"), mdata)
}

// loadArtifacts reads a job's artifacts back from its directory.
func (j *journal) loadArtifacts(id string) (map[string]artifact, error) {
	dir := j.jobDir(id)
	mdata, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("msd: read manifest: %w", err)
	}
	var manifest map[string]artifactMeta
	if err := json.Unmarshal(mdata, &manifest); err != nil {
		return nil, fmt.Errorf("msd: decode manifest: %w", err)
	}
	arts := make(map[string]artifact, len(manifest))
	for name, meta := range manifest {
		data, err := os.ReadFile(filepath.Join(dir, meta.File))
		if err != nil {
			return nil, fmt.Errorf("msd: read artifact %s: %w", name, err)
		}
		arts[name] = artifact{contentType: meta.ContentType, data: data}
	}
	return arts, nil
}

// removeJob deletes a job's artifact directory (eviction).
func (j *journal) removeJob(id string) error {
	return os.RemoveAll(j.jobDir(id))
}

// writeFileAtomic writes data to path via a temp file, fsync and
// rename, so path never holds a torn write.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("msd: create %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("msd: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("msd: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("msd: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("msd: rename %s: %w", tmp, err)
	}
	return nil
}

// idNum extracts the numeric suffix of a "job-N" identifier (0 if the
// ID has another shape), so a recovered daemon resumes its ID sequence
// past every journaled job.
func idNum(id string) int {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "job-"))
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// batchIDNum is idNum for "batch-N" identifiers.
func batchIDNum(id string) int {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "batch-"))
	if err != nil || n < 0 {
		return 0
	}
	return n
}
