package msd

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"microsampler/internal/core"
)

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, recs, _, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	now := time.Now().UTC().Truncate(time.Millisecond)
	want := []journalRecord{
		{Event: "submit", Time: now, ID: "job-1", Req: &JobRequest{Source: "x"}},
		{Event: "start", Time: now, ID: "job-1"},
		{Event: "done", Time: now, ID: "job-1", Leaky: true, LeakyUnits: []string{"SQ_ADDR"}, Iterations: 8, SimCycles: 99},
	}
	for _, rec := range want {
		if _, err := j.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := j.append(journalRecord{Event: "start", ID: "job-2"}); err == nil {
		t.Error("append after Close must fail")
	}

	// A torn final line — the write the crash interrupted — is skipped.
	path := filepath.Join(dir, "journal.jsonl")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprint(f, `{"event":"done","id":"job-1","lea`)
	f.Close()

	j2, recs, _, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records want %d", len(recs), len(want))
	}
	for i, rec := range recs {
		if rec.Event != want[i].Event || rec.ID != want[i].ID {
			t.Errorf("record %d: %+v want %+v", i, rec, want[i])
		}
	}
	if !recs[2].Leaky || recs[2].SimCycles != 99 || recs[2].LeakyUnits[0] != "SQ_ADDR" {
		t.Errorf("done summary lost: %+v", recs[2])
	}
}

func TestIDNum(t *testing.T) {
	for id, want := range map[string]int{"job-7": 7, "job-123": 123, "weird": 0, "job--4": 0} {
		if got := idNum(id); got != want {
			t.Errorf("idNum(%q) = %d want %d", id, got, want)
		}
	}
}

// newJournaledServer builds a journaling server over dir whose verify
// step is fn (nil: instant fakeReport).
func newJournaledServer(t *testing.T, dir string, cfg Config, fn func(*Job) (*core.Report, error)) (*Server, *httptest.Server) {
	t.Helper()
	cfg.JournalDir = dir
	if fn == nil {
		fn = func(*Job) (*core.Report, error) { return fakeReport(), nil }
	}
	cfg.verify = fn
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("msd.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getView(t *testing.T, base, id string) (jobView, int) {
	t.Helper()
	resp, err := http.Get(base + "/api/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return v, resp.StatusCode
}

// TestDaemonCrashRecovery models a daemon death mid-run: incarnation A
// is abandoned (never drained) with one job blocked in a worker and two
// more queued; incarnation B over the same journal dir must mark the
// running job interrupted, re-enqueue the queued ones, finish them, and
// continue the job-ID sequence.
func TestDaemonCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	block := make(chan struct{})
	sA, tsA := newJournaledServer(t, dir, Config{Workers: 1},
		func(j *Job) (*core.Report, error) {
			if j.ID == "job-1" {
				<-block // stuck until the test ends, like a crashed process
			}
			return fakeReport(), nil
		})
	t.Cleanup(func() {
		// Unstick the abandoned incarnation and wait it out, so its
		// worker cannot write into the temp dir during removal.
		close(block)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = sA.Drain(ctx)
	})

	if _, code := submitJob(t, tsA.URL, JobRequest{Source: "a"}); code != http.StatusAccepted {
		t.Fatalf("submit 1: %d", code)
	}
	// Wait until the worker owns job-1, so it is "running" at the crash.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, _ := getView(t, tsA.URL, "job-1"); v.Status == string(StatusRunning) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job-1 never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, src := range []string{"b", "c"} {
		if _, code := submitJob(t, tsA.URL, JobRequest{Source: src}); code != http.StatusAccepted {
			t.Fatalf("submit %s: %d", src, code)
		}
	}
	// "Crash": incarnation A is simply abandoned, holding its worker.

	sB, tsB := newJournaledServer(t, dir, Config{Workers: 1}, nil)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = sB.Drain(ctx)
	})

	if v, code := getView(t, tsB.URL, "job-1"); code != http.StatusOK ||
		v.Status != string(StatusInterrupted) || !strings.Contains(v.Error, "interrupted") {
		t.Errorf("job-1 after restart: code=%d %+v", code, v)
	}
	for _, id := range []string{"job-2", "job-3"} {
		if v := waitDone(t, tsB.URL, id); v.Status != string(StatusDone) {
			t.Errorf("recovered %s: %+v", id, v)
		}
	}
	// The ID sequence continues past every journaled job.
	v, code := submitJob(t, tsB.URL, JobRequest{Source: "d"})
	if code != http.StatusAccepted || v.ID != "job-4" {
		t.Errorf("post-recovery submit: code=%d id=%s want job-4", code, v.ID)
	}
	waitDone(t, tsB.URL, "job-4")
}

// TestDaemonRecoveryRequeuesInterrupted covers the -recover path: a job
// orphaned mid-run is re-enqueued and completes on the new incarnation.
func TestDaemonRecoveryRequeuesInterrupted(t *testing.T) {
	dir := t.TempDir()
	block := make(chan struct{})
	sA, tsA := newJournaledServer(t, dir, Config{Workers: 1},
		func(*Job) (*core.Report, error) { <-block; return fakeReport(), nil })
	t.Cleanup(func() {
		close(block)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = sA.Drain(ctx)
	})
	if _, code := submitJob(t, tsA.URL, JobRequest{Source: "a"}); code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, _ := getView(t, tsA.URL, "job-1"); v.Status == string(StatusRunning) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job-1 never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	sB, tsB := newJournaledServer(t, dir, Config{Workers: 1, RequeueInterrupted: true}, nil)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = sB.Drain(ctx)
	})
	if v := waitDone(t, tsB.URL, "job-1"); v.Status != string(StatusDone) {
		t.Errorf("requeued job-1: %+v", v)
	}
}

// TestDaemonRecoveryReloadsArtifacts: a finished job survives a restart
// with its verdict and downloadable artifacts intact.
func TestDaemonRecoveryReloadsArtifacts(t *testing.T) {
	dir := t.TempDir()
	sA, tsA := newJournaledServer(t, dir, Config{Workers: 1}, nil)
	v, _ := submitJob(t, tsA.URL, JobRequest{Source: "x"})
	done := waitDone(t, tsA.URL, v.ID)
	if done.Status != string(StatusDone) {
		t.Fatalf("job: %+v", done)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = sA.Drain(ctx)

	// The artifacts were flushed to disk before the job was marked done.
	for _, name := range []string{"report", "trace", "heatmap", "heatmap.html", "manifest.json"} {
		if _, err := os.Stat(filepath.Join(dir, "jobs", v.ID, name)); err != nil {
			t.Errorf("artifact %s not on disk: %v", name, err)
		}
	}

	sB, tsB := newJournaledServer(t, dir, Config{Workers: 1}, nil)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = sB.Drain(ctx)
	})
	got, code := getView(t, tsB.URL, v.ID)
	if code != http.StatusOK || got.Status != string(StatusDone) {
		t.Fatalf("recovered done job: code=%d %+v", code, got)
	}
	if got.Leaky == nil || !*got.Leaky || got.SimCycles != 1234 {
		t.Errorf("verdict lost in recovery: %+v", got)
	}
	resp, err := http.Get(tsB.URL + "/api/v1/jobs/" + v.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "application/json" {
		t.Errorf("recovered artifact: %d ct=%q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
}

// TestDaemonEvictionNeverTouchesRunningJob is the eviction regression
// test: heavy churn past MaxJobs while one job is mid-write must not
// evict the running job or its artifact directory.
func TestDaemonEvictionNeverTouchesRunningJob(t *testing.T) {
	dir := t.TempDir()
	release := make(chan struct{})
	started := make(chan struct{})
	_, ts := newJournaledServer(t, dir, Config{Workers: 2, MaxJobs: 1},
		func(j *Job) (*core.Report, error) {
			if j.ID == "job-1" {
				close(started)
				<-release // job-1 is "still being written" while churn happens
			}
			return fakeReport(), nil
		})

	if _, code := submitJob(t, ts.URL, JobRequest{Source: "slow"}); code != http.StatusAccepted {
		t.Fatal("submit job-1")
	}
	<-started
	// Churn: finished jobs far beyond MaxJobs while job-1 runs.
	for i := 0; i < 4; i++ {
		v, code := submitJob(t, ts.URL, JobRequest{Source: "fast"})
		if code != http.StatusAccepted {
			t.Fatalf("churn submit %d: %d", i, code)
		}
		waitDone(t, ts.URL, v.ID)
	}
	if _, code := getView(t, ts.URL, "job-1"); code != http.StatusOK {
		t.Fatal("running job-1 was evicted under churn")
	}
	close(release)
	done := waitDone(t, ts.URL, "job-1")
	if done.Status != string(StatusDone) {
		t.Fatalf("job-1: %+v", done)
	}
	// Its artifacts are complete on disk despite the eviction pressure.
	if _, err := os.Stat(filepath.Join(dir, "jobs", "job-1", "manifest.json")); err != nil {
		t.Errorf("job-1 artifacts: %v", err)
	}
	// Evicted jobs' directories are gone, and a restart does not
	// resurrect them.
	evictedDirs := 0
	for i := 2; i <= 5; i++ {
		if _, err := os.Stat(filepath.Join(dir, "jobs", fmt.Sprintf("job-%d", i))); err == nil {
			evictedDirs++
		}
	}
	// MaxJobs=1 retains at most one finished job's directory alongside
	// job-1's.
	if evictedDirs > 1 {
		t.Errorf("%d evicted job dirs persisted", evictedDirs)
	}
}

func TestDaemonQueueFullRetryAfter(t *testing.T) {
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	_, ts := newFakeServer(t, Config{Workers: 1, QueueSize: 1},
		func(*Job) (*core.Report, error) { <-release; return fakeReport(), nil })

	if _, code := submitJob(t, ts.URL, JobRequest{Source: "a"}); code != http.StatusAccepted {
		t.Fatal("submit a")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, _ := getView(t, ts.URL, "job-1"); v.Status == string(StatusRunning) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job-1 never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, code := submitJob(t, ts.URL, JobRequest{Source: "b"}); code != http.StatusAccepted {
		t.Fatal("submit b")
	}
	body, _ := json.Marshal(JobRequest{Source: "c"})
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity: %d want 503", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Errorf("Retry-After %q: want a positive integer of seconds", ra)
	}
}

// TestDaemonWorkerPanicContained: a panicking verification fails its own
// job and the daemon keeps serving.
func TestDaemonWorkerPanicContained(t *testing.T) {
	_, ts := newFakeServer(t, Config{Workers: 1}, func(j *Job) (*core.Report, error) {
		if j.ID == "job-1" {
			panic("probe exploded")
		}
		return fakeReport(), nil
	})
	v, _ := submitJob(t, ts.URL, JobRequest{Source: "boom"})
	done := waitDone(t, ts.URL, v.ID)
	if done.Status != string(StatusFailed) || !strings.Contains(done.Error, "probe exploded") {
		t.Fatalf("panicked job: %+v", done)
	}
	v2, _ := submitJob(t, ts.URL, JobRequest{Source: "fine"})
	if after := waitDone(t, ts.URL, v2.ID); after.Status != string(StatusDone) {
		t.Errorf("daemon wedged after panic: %+v", after)
	}
}
