package msd

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"microsampler/internal/core"
)

// fakeMatrix hand-builds a two-cell sweep result — one clean cell, one
// leaky — so matrix job tests never pay for a simulation. The cells
// carry no Report, which is the recovery shape too: artifact rendering
// must cope without one.
func fakeMatrix() *core.Matrix {
	return &core.Matrix{
		Workload: "fake",
		Grid:     []core.Axis{{Name: "predictor", Values: []string{"gshare", "tage"}}},
		Cells: []core.CellResult{
			{
				Cell:       core.Cell{Name: "predictor=gshare", Axes: []string{"predictor"}, Values: []string{"gshare"}},
				ConfigName: "MegaBoom",
				Iterations: 8, SimCycles: 100,
			},
			{
				Cell:       core.Cell{Name: "predictor=tage", Axes: []string{"predictor"}, Values: []string{"tage"}},
				ConfigName: "MegaBoom",
				Leaky:      true,
				Flagged:    []core.UnitVerdict{{Unit: "TAGE-PRED", V: 0.9, P: 0.001}},
				MaxV:       0.9, MaxVUnit: "TAGE-PRED",
				Iterations: 8, SimCycles: 120,
			},
		},
	}
}

func submitMatrix(t *testing.T, base string, req JobRequest) (jobView, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/api/v1/matrix", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return v, resp.StatusCode
}

func TestMatrixJobEndToEnd(t *testing.T) {
	var gotMatrix string
	cfg := Config{Workers: 1}
	cfg.verifyMatrix = func(j *Job) (*core.Matrix, error) {
		gotMatrix = j.Req.Matrix
		return fakeMatrix(), nil
	}
	_, ts := newFakeServer(t, cfg, nil)

	// The batch endpoint defaults an absent grid spec to "default".
	v, code := submitMatrix(t, ts.URL, JobRequest{Workload: "CT-DIV"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	done := waitDone(t, ts.URL, v.ID)
	if done.Status != string(StatusDone) {
		t.Fatalf("matrix job did not finish clean: %+v", done)
	}
	if gotMatrix != "default" {
		t.Errorf("verify saw matrix spec %q, want \"default\"", gotMatrix)
	}

	// The grid digest rides on the job view.
	if done.Cells != 2 {
		t.Errorf("cells = %d want 2", done.Cells)
	}
	if len(done.LeakyCells) != 1 || done.LeakyCells[0] != "predictor=tage" {
		t.Errorf("leakyCells = %v", done.LeakyCells)
	}
	if done.Leaky == nil || !*done.Leaky {
		t.Errorf("matrix job with a leaky cell must be leaky: %+v", done)
	}
	if len(done.LeakyUnits) != 1 || done.LeakyUnits[0] != "TAGE-PRED" {
		t.Errorf("leakyUnits = %v", done.LeakyUnits)
	}
	if done.Iterations != 16 || done.SimCycles != 220 {
		t.Errorf("totals = %d iters / %d cycles, want 16 / 220", done.Iterations, done.SimCycles)
	}

	// Both matrix artifacts are downloadable with their content types.
	for name, wantType := range map[string]string{
		"matrix":      "application/json",
		"matrix.html": "text/html; charset=utf-8",
	} {
		resp, err := http.Get(ts.URL + "/api/v1/jobs/" + v.ID + "/" + name)
		if err != nil {
			t.Fatal(err)
		}
		data := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", name, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != wantType {
			t.Errorf("%s content type %q want %q", name, ct, wantType)
		}
		switch name {
		case "matrix":
			var art struct {
				Workload string `json:"workload"`
				Cells    []struct {
					Name  string `json:"name"`
					Leaky bool   `json:"leaky"`
				} `json:"cells"`
			}
			if err := json.Unmarshal(data, &art); err != nil {
				t.Fatalf("matrix artifact invalid JSON: %v", err)
			}
			if art.Workload != "fake" || len(art.Cells) != 2 || !art.Cells[1].Leaky {
				t.Errorf("matrix artifact shape: %+v", art)
			}
		case "matrix.html":
			doc := string(data)
			for _, want := range []string{"<svg", "predictor=tage", "TAGE-PRED"} {
				if !strings.Contains(doc, want) {
					t.Errorf("matrix.html missing %q", want)
				}
			}
		}
	}
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestMatrixValidation(t *testing.T) {
	_, ts := newFakeServer(t, Config{Workers: 1}, nil)
	cases := []struct {
		name string
		req  JobRequest
	}{
		{"unknown axis", JobRequest{Workload: "CT-DIV", Matrix: "warp=on,off"}},
		{"unknown value", JobRequest{Workload: "CT-DIV", Matrix: "predictor=gshare,perceptron"}},
		{"duplicate axis", JobRequest{Workload: "CT-DIV", Matrix: "base=mega;base=small"}},
		{"bad cellParallel", JobRequest{Workload: "CT-DIV", Matrix: "default", CellParallel: -5}},
		{"no program", JobRequest{Matrix: "default"}},
	}
	for _, tc := range cases {
		if _, code := submitMatrix(t, ts.URL, tc.req); code != http.StatusBadRequest {
			t.Errorf("%s: status %d want 400", tc.name, code)
		}
	}
	// The same matrix fields validate on the plain submit path too.
	if _, code := submitJob(t, ts.URL, JobRequest{Workload: "CT-DIV", Matrix: "warp=on"}); code != http.StatusBadRequest {
		t.Error("plain submit accepted a bad grid spec")
	}
}

func TestMatrixFailedSweep(t *testing.T) {
	// A sweep-level failure (not a cell failure) must fail the job and
	// surface the error, exactly like single-verification failures.
	cfg := Config{Workers: 1}
	cfg.verifyMatrix = func(*Job) (*core.Matrix, error) {
		panic("sweep exploded") // safeVerifyMatrix must contain this
	}
	_, ts := newFakeServer(t, cfg, nil)
	v, code := submitMatrix(t, ts.URL, JobRequest{Workload: "CT-DIV"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	done := waitDone(t, ts.URL, v.ID)
	if done.Status != string(StatusFailed) {
		t.Fatalf("status %s want failed", done.Status)
	}
	if !strings.Contains(done.Error, "sweep exploded") {
		t.Errorf("error %q does not carry the panic", done.Error)
	}
}

func TestMatrixJournalRecovery(t *testing.T) {
	// A finished matrix job must survive a daemon restart: grid digest
	// on the view, artifacts reloaded from disk.
	dir := t.TempDir()
	cfgA := Config{Workers: 1}
	cfgA.verifyMatrix = func(*Job) (*core.Matrix, error) { return fakeMatrix(), nil }
	sA, tsA := newJournaledServer(t, dir, cfgA, nil)
	v, code := submitMatrix(t, tsA.URL, JobRequest{Workload: "CT-DIV", Matrix: "predictor=gshare,tage"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	waitDone(t, tsA.URL, v.ID)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := sA.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	tsA.Close()

	sB, err := New(Config{Workers: 1, JournalDir: dir})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	tsB := httptest.NewServer(sB.Handler())
	defer tsB.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = sB.Drain(ctx)
	}()

	got, code := getView(t, tsB.URL, v.ID)
	if code != http.StatusOK || got.Status != string(StatusDone) {
		t.Fatalf("recovered job: %d %+v", code, got)
	}
	if got.Cells != 2 || len(got.LeakyCells) != 1 || got.LeakyCells[0] != "predictor=tage" {
		t.Errorf("grid digest lost at recovery: %+v", got)
	}
	resp, err := http.Get(tsB.URL + "/api/v1/jobs/" + v.ID + "/matrix")
	if err != nil {
		t.Fatal(err)
	}
	data := readBody(t, resp)
	if resp.StatusCode != http.StatusOK || !json.Valid(data) {
		t.Fatalf("matrix artifact not recovered: %d", resp.StatusCode)
	}
}

func TestMatrixRealPipeline(t *testing.T) {
	// One genuine sweep through the daemon: the TAGE-HIST config-flip
	// workload over the predictor axis, flagged only in the tage cell.
	if testing.Short() {
		t.Skip("real simulation in -short mode")
	}
	srv, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatalf("msd.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Drain(ctx)
	}()

	v, code := submitMatrix(t, ts.URL, JobRequest{
		Workload: "TAGE-HIST", Matrix: "predictor=gshare,tage", Runs: 2, Warmup: 2,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	done := waitDone(t, ts.URL, v.ID)
	if done.Status != string(StatusDone) {
		t.Fatalf("real matrix job: %+v", done)
	}
	if done.Cells != 2 {
		t.Errorf("cells = %d want 2", done.Cells)
	}
	if len(done.LeakyCells) != 1 || done.LeakyCells[0] != "predictor=tage" {
		t.Errorf("leakyCells = %v, want only predictor=tage", done.LeakyCells)
	}
	for _, u := range done.LeakyUnits {
		if u == "TAGE-PRED" {
			return
		}
	}
	t.Errorf("TAGE-PRED missing from leakyUnits %v", done.LeakyUnits)
}
