package msd

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Tamper-evident audit chain over the job journal.
//
// Every terminal journal record (done, failed, interrupted) becomes a
// Merkle leaf: the SHA-256 of the exact line bytes as written, so any
// later edit of a verdict — a flipped leaky bit, a swapped unit list, a
// rewritten error — changes the leaf. Leaves are batched (Config.
// AuditBatch per batch, partial batches flushed at drain) into a Merkle
// root, and the roots are chained: chain_n = H(chain_{n-1} || root_n),
// starting from a zero chain. Each root is persisted as an "audit"
// record in the same journal, carrying the root, the previous chain
// value, and the ordinal range of leaves it covers.
//
// The scheme makes the journal append-only in a checkable sense:
// VerifyAuditLog recomputes every root and the chain from the raw lines
// and fails on any mutated, reordered, inserted or deleted terminal
// record, and on any truncation that removes an audited record. The one
// blind spot is pure tail truncation — deleting records newer than the
// last audit record is indistinguishable from the daemon never having
// written them. Anchoring the latest chain value externally (the
// /api/v1/audit endpoint serves it; cmd/msd -audit-verify accepts it
// via -audit-head) closes that gap.

// defaultAuditBatch is how many terminal records one Merkle root covers
// when Config.AuditBatch is zero: small enough that a crash loses at
// most a few leaves to the unflushed tail, large enough that the
// journal is not dominated by audit records.
const defaultAuditBatch = 8

// terminalEvent reports whether a journal event records a terminal
// verdict and therefore becomes an audit leaf: a job's lifecycle end,
// or — on the cluster path — a batch point's terminal result and the
// batch's own seal.
func terminalEvent(event string) bool {
	switch event {
	case "done", "failed", "interrupted", "batch-point", "batch-done":
		return true
	}
	return false
}

// merkleLeaf hashes one journal line into a leaf. Line bytes exclude
// the trailing newline.
func merkleLeaf(line []byte) [32]byte { return sha256.Sum256(line) }

// merkleNode hashes two child digests into their parent. The 0x01
// domain-separation prefix keeps interior nodes from colliding with
// leaves (a leaf is the plain SHA-256 of a line).
func merkleNode(l, r [32]byte) [32]byte {
	buf := make([]byte, 1, 1+2*32)
	buf[0] = 0x01
	buf = append(buf, l[:]...)
	buf = append(buf, r[:]...)
	return sha256.Sum256(buf)
}

// merkleRoot folds leaves into a root; an odd node at any level is
// promoted unchanged. A single leaf is its own root; merkleRoot of no
// leaves is never taken (batches are flushed only when non-empty).
func merkleRoot(leaves [][32]byte) [32]byte {
	level := leaves
	for len(level) > 1 {
		next := make([][32]byte, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, merkleNode(level[i], level[i+1]))
			} else {
				next = append(next, level[i])
			}
		}
		level = next
	}
	return level[0]
}

// chainNext advances the root chain: H(prev || root).
func chainNext(prev, root [32]byte) [32]byte {
	buf := make([]byte, 0, 2*32)
	buf = append(buf, prev[:]...)
	buf = append(buf, root[:]...)
	return sha256.Sum256(buf)
}

// proofStep is one sibling on an inclusion path, bottom-up. Left means
// the sibling sits to the left of the running hash.
type proofStep struct {
	Hash string `json:"hash"`
	Left bool   `json:"left"`
}

// inclusionProof returns the sibling path of leaves[idx] up to the
// batch root, mirroring merkleRoot's odd-node promotion (a promoted
// node contributes no step at that level).
func inclusionProof(leaves [][32]byte, idx int) []proofStep {
	proof := []proofStep{}
	level := leaves
	for len(level) > 1 {
		if sib := idx ^ 1; sib < len(level) {
			proof = append(proof, proofStep{
				Hash: hex.EncodeToString(level[sib][:]),
				Left: sib < idx,
			})
		}
		next := make([][32]byte, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, merkleNode(level[i], level[i+1]))
			} else {
				next = append(next, level[i])
			}
		}
		level = next
		idx /= 2
	}
	return proof
}

// auditBatch is one flushed root with the leaves it covers, retained in
// memory so /api/v1/audit can serve inclusion proofs without re-reading
// the journal.
type auditBatch struct {
	first  int // 1-based ordinal of the first leaf's terminal record
	root   [32]byte
	chain  [32]byte // chain value after this batch
	leaves [][32]byte
	ids    []string // job ID per leaf, parallel to leaves
}

// auditor accumulates terminal-record leaves and emits audit records.
// It is driven by Server.journal under its own lock (journal appends of
// different jobs can race) and read by the audit endpoint.
type auditor struct {
	batchSize int

	mu      sync.Mutex
	chain   [32]byte // running chain value (zero before the first batch)
	seq     int      // terminal records observed so far
	pending [][32]byte
	pendIDs []string
	batches []auditBatch
}

func newAuditor(batchSize int) *auditor {
	if batchSize <= 0 {
		batchSize = defaultAuditBatch
	}
	return &auditor{batchSize: batchSize}
}

// observe absorbs one terminal journal line. When the pending batch
// reaches the batch size it is sealed and the audit record to persist
// is returned.
func (a *auditor) observe(jobID string, line []byte) (journalRecord, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.seq++
	a.pending = append(a.pending, merkleLeaf(line))
	a.pendIDs = append(a.pendIDs, jobID)
	if len(a.pending) < a.batchSize {
		return journalRecord{}, false
	}
	return a.sealLocked(), true
}

// flush seals a partial pending batch (drain path); reports false when
// nothing is pending.
func (a *auditor) flush() (journalRecord, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.pending) == 0 {
		return journalRecord{}, false
	}
	return a.sealLocked(), true
}

func (a *auditor) sealLocked() journalRecord {
	root := merkleRoot(a.pending)
	prev := a.chain
	a.chain = chainNext(prev, root)
	first := a.seq - len(a.pending) + 1
	a.batches = append(a.batches, auditBatch{
		first:  first,
		root:   root,
		chain:  a.chain,
		leaves: a.pending,
		ids:    a.pendIDs,
	})
	rec := journalRecord{
		Event: "audit",
		Root:  hex.EncodeToString(root[:]),
		Prev:  hex.EncodeToString(prev[:]),
		First: first,
		Count: len(a.pending),
	}
	a.pending, a.pendIDs = nil, nil
	return rec
}

// replay rebuilds the auditor's state from a previous incarnation's raw
// journal bytes: terminal lines become pending leaves, audit lines seal
// them. Replay trusts the journal (verification is VerifyAuditLog's
// job) but tolerates the same torn tail parseJournal does.
func (a *auditor) replay(raw []byte) {
	a.mu.Lock()
	defer a.mu.Unlock()
	forEachJournalLine(raw, func(line []byte, rec journalRecord) {
		switch {
		case terminalEvent(rec.Event):
			a.seq++
			a.pending = append(a.pending, merkleLeaf(line))
			a.pendIDs = append(a.pendIDs, rec.ID)
		case rec.Event == "audit":
			// Drop the leaves this root covered; on a well-formed journal
			// that is exactly the pending set. A count mismatch (tamper or
			// torn audit line) keeps the extra leaves pending so they are
			// re-audited rather than silently lost.
			if rec.Count > 0 && rec.Count <= len(a.pending) {
				covered := a.pending[:rec.Count]
				root := merkleRoot(covered)
				a.chain = chainNext(a.chain, root)
				a.batches = append(a.batches, auditBatch{
					first:  a.seq - len(a.pending) + 1,
					root:   root,
					chain:  a.chain,
					leaves: covered,
					ids:    a.pendIDs[:rec.Count],
				})
				a.pending = a.pending[rec.Count:]
				a.pendIDs = a.pendIDs[rec.Count:]
			}
		}
	})
}

// forEachJournalLine walks raw journal bytes line by line, invoking fn
// with the exact line bytes and the decoded record. Unparsable lines
// (a torn tail) are skipped, matching parseJournal.
func forEachJournalLine(raw []byte, fn func(line []byte, rec journalRecord)) {
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 64*1024), 8<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			continue
		}
		// Copy: the scanner reuses its buffer.
		fn(append([]byte(nil), line...), rec)
	}
}

// auditRootView is one chained root on the wire.
type auditRootView struct {
	Root  string `json:"root"`
	Prev  string `json:"prev"`
	Chain string `json:"chain"`
	First int    `json:"first"`
	Count int    `json:"count"`
}

// auditProofView is an inclusion proof for one job's terminal record.
type auditProofView struct {
	Job   string      `json:"job"`
	Leaf  string      `json:"leaf"`
	Index int         `json:"index"` // leaf position within its batch
	Root  string      `json:"root"`
	Path  []proofStep `json:"path"`
}

// auditView is the GET /api/v1/audit payload.
type auditView struct {
	BatchSize int             `json:"batchSize"`
	Terminal  int             `json:"terminalRecords"`
	Pending   int             `json:"pendingRecords"`
	Chain     string          `json:"chain"`
	Roots     []auditRootView `json:"roots"`
	Proof     *auditProofView `json:"proof,omitempty"`
}

// view snapshots the chain; when jobID is non-empty it also builds the
// inclusion proof of that job's most recent audited terminal record
// (ok=false when the job has none).
func (a *auditor) view(jobID string) (auditView, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	v := auditView{
		BatchSize: a.batchSize,
		Terminal:  a.seq,
		Pending:   len(a.pending),
		Chain:     hex.EncodeToString(a.chain[:]),
		Roots:     make([]auditRootView, 0, len(a.batches)),
	}
	prev := [32]byte{}
	for _, b := range a.batches {
		v.Roots = append(v.Roots, auditRootView{
			Root:  hex.EncodeToString(b.root[:]),
			Prev:  hex.EncodeToString(prev[:]),
			Chain: hex.EncodeToString(b.chain[:]),
			First: b.first,
			Count: len(b.leaves),
		})
		prev = b.chain
	}
	if jobID == "" {
		return v, true
	}
	// Most recent audited terminal record wins: a requeued-interrupted
	// job can terminate more than once.
	for bi := len(a.batches) - 1; bi >= 0; bi-- {
		b := a.batches[bi]
		for li := len(b.ids) - 1; li >= 0; li-- {
			if b.ids[li] != jobID {
				continue
			}
			v.Proof = &auditProofView{
				Job:   jobID,
				Leaf:  hex.EncodeToString(b.leaves[li][:]),
				Index: li,
				Root:  hex.EncodeToString(b.root[:]),
				Path:  inclusionProof(b.leaves, li),
			}
			return v, true
		}
	}
	return v, false
}

// AuditSummary is VerifyAuditLog's digest of a clean journal.
type AuditSummary struct {
	// Records is the total number of parsed journal lines, Terminal the
	// number of audit leaves among them, and Batches the number of
	// verified Merkle roots. Pending counts terminal records newer than
	// the last root (not yet covered by any batch).
	Records  int
	Terminal int
	Batches  int
	Pending  int
	// Chain is the hex chain value after the last verified root: the
	// anchor to compare against an externally recorded head.
	Chain string
}

// VerifyAuditLog replays the journal under dir and recomputes every
// Merkle root and the root chain from the raw line bytes. It fails on
// any mutated, inserted, deleted or reordered terminal record covered
// by an audit record, and on any malformed or out-of-order audit
// record. Terminal records after the last root are uncheckable and
// only counted (Pending); so is pure tail truncation — anchor the
// chain externally to detect it.
func VerifyAuditLog(dir string) (AuditSummary, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		return AuditSummary{}, fmt.Errorf("msd: read journal: %w", err)
	}
	var sum AuditSummary
	var pending [][32]byte
	chain := [32]byte{}
	seq := 0
	var verr error
	forEachJournalLine(raw, func(line []byte, rec journalRecord) {
		if verr != nil {
			return
		}
		sum.Records++
		switch {
		case terminalEvent(rec.Event):
			seq++
			sum.Terminal++
			pending = append(pending, merkleLeaf(line))
		case rec.Event == "audit":
			if rec.Count <= 0 {
				verr = fmt.Errorf("audit record %d covers no records", sum.Batches+1)
				return
			}
			if rec.Count != len(pending) {
				verr = fmt.Errorf("audit record %d covers %d records, journal has %d uncovered",
					sum.Batches+1, rec.Count, len(pending))
				return
			}
			if want := seq - len(pending) + 1; rec.First != want {
				verr = fmt.Errorf("audit record %d starts at terminal ordinal %d, want %d",
					sum.Batches+1, rec.First, want)
				return
			}
			if got := hex.EncodeToString(chain[:]); rec.Prev != got {
				verr = fmt.Errorf("audit record %d chains from %.12s…, journal head is %.12s…",
					sum.Batches+1, rec.Prev, got)
				return
			}
			root := merkleRoot(pending)
			if got := hex.EncodeToString(root[:]); rec.Root != got {
				verr = fmt.Errorf("audit record %d root mismatch: journal says %.12s…, records hash to %.12s…",
					sum.Batches+1, rec.Root, got)
				return
			}
			chain = chainNext(chain, root)
			pending = nil
			sum.Batches++
		}
	})
	if verr != nil {
		return sum, fmt.Errorf("msd: audit verification failed: %w", verr)
	}
	sum.Pending = len(pending)
	sum.Chain = hex.EncodeToString(chain[:])
	return sum, nil
}
