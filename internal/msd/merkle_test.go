package msd

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// drainNow drains s with a short deadline, failing the test on timeout.
func drainNow(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// runJobs submits n trivially distinct jobs and waits for each.
func runJobs(t *testing.T, base string, n int) []string {
	t.Helper()
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		v, code := submitJob(t, base, JobRequest{Source: fmt.Sprintf("nop %d", i)})
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, code)
		}
		waitDone(t, base, v.ID)
		ids = append(ids, v.ID)
	}
	return ids
}

func TestAuditLogVerifiesClean(t *testing.T) {
	dir := t.TempDir()
	s, ts := newJournaledServer(t, dir, Config{Workers: 1, AuditBatch: 2}, nil)
	runJobs(t, ts.URL, 5)
	drainNow(t, s) // seals the trailing partial batch

	sum, err := VerifyAuditLog(dir)
	if err != nil {
		t.Fatalf("clean journal failed verification: %v", err)
	}
	if sum.Terminal != 5 {
		t.Errorf("terminal records = %d, want 5", sum.Terminal)
	}
	// 5 leaves at batch size 2: two full roots plus the drain flush.
	if sum.Batches != 3 {
		t.Errorf("batches = %d, want 3", sum.Batches)
	}
	if sum.Pending != 0 {
		t.Errorf("pending = %d, want 0 after drain", sum.Pending)
	}
	if sum.Chain == "" || sum.Chain == strings.Repeat("0", 64) {
		t.Errorf("chain head not advanced: %q", sum.Chain)
	}
}

// TestAuditLogDetectsTampering flips one audited verdict bit and
// expects verification to fail; same for deleting an audited record.
func TestAuditLogDetectsTampering(t *testing.T) {
	dir := t.TempDir()
	s, ts := newJournaledServer(t, dir, Config{Workers: 1, AuditBatch: 2}, nil)
	runJobs(t, ts.URL, 4)
	drainNow(t, s)
	if _, err := VerifyAuditLog(dir); err != nil {
		t.Fatalf("pre-tamper journal not clean: %v", err)
	}
	path := filepath.Join(dir, "journal.jsonl")
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip the first job's verdict from leaky to clean.
	tampered := strings.Replace(string(pristine), `"leaky":true`, `"fixed":true`, 1)
	if tampered == string(pristine) {
		t.Fatal("test journal has no leaky verdict to tamper with")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyAuditLog(dir); err == nil {
		t.Error("tampered verdict passed audit verification")
	}

	// Delete one audited terminal record entirely.
	var kept []string
	dropped := false
	for _, line := range strings.Split(strings.TrimRight(string(pristine), "\n"), "\n") {
		if !dropped && strings.Contains(line, `"event":"done"`) {
			dropped = true
			continue
		}
		kept = append(kept, line)
	}
	if !dropped {
		t.Fatal("no done record to delete")
	}
	if err := os.WriteFile(path, []byte(strings.Join(kept, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyAuditLog(dir); err == nil {
		t.Error("journal with a deleted audited record passed verification")
	}

	// Restoring the pristine bytes verifies again.
	if err := os.WriteFile(path, pristine, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyAuditLog(dir); err != nil {
		t.Errorf("restored journal failed verification: %v", err)
	}
}

// proofRootFromPath replays an inclusion proof bottom-up.
func proofRootFromPath(t *testing.T, leafHex string, path []proofStep) string {
	t.Helper()
	decode := func(s string) (h [32]byte) {
		b, err := hex.DecodeString(s)
		if err != nil || len(b) != 32 {
			t.Fatalf("bad digest %q", s)
		}
		copy(h[:], b)
		return h
	}
	h := decode(leafHex)
	for _, st := range path {
		if st.Left {
			h = merkleNode(decode(st.Hash), h)
		} else {
			h = merkleNode(h, decode(st.Hash))
		}
	}
	return hex.EncodeToString(h[:])
}

func TestAuditEndpointServesChainAndProofs(t *testing.T) {
	dir := t.TempDir()
	s, ts := newJournaledServer(t, dir, Config{Workers: 1, AuditBatch: 2}, nil)
	t.Cleanup(func() { drainNow(t, s) })
	ids := runJobs(t, ts.URL, 3) // one sealed batch of 2, one pending

	getAudit := func(query string) (auditView, int) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/api/v1/audit" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var v auditView
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
				t.Fatal(err)
			}
		}
		return v, resp.StatusCode
	}

	view, code := getAudit("")
	if code != http.StatusOK {
		t.Fatalf("GET /api/v1/audit: %d", code)
	}
	if view.Terminal != 3 || view.Pending != 1 || len(view.Roots) != 1 {
		t.Fatalf("audit view = %+v, want 3 terminal, 1 pending, 1 root", view)
	}
	if view.Roots[0].First != 1 || view.Roots[0].Count != 2 {
		t.Errorf("root covers [%d,+%d), want [1,+2)", view.Roots[0].First, view.Roots[0].Count)
	}
	if view.Chain != view.Roots[0].Chain {
		t.Errorf("head chain %q != last root chain %q", view.Chain, view.Roots[0].Chain)
	}

	// Inclusion proof for an audited job replays to the batch root.
	proved, code := getAudit("?job=" + ids[0])
	if code != http.StatusOK || proved.Proof == nil {
		t.Fatalf("proof request: code=%d proof=%v", code, proved.Proof)
	}
	if got := proofRootFromPath(t, proved.Proof.Leaf, proved.Proof.Path); got != proved.Proof.Root {
		t.Errorf("proof path replays to %.12s…, root is %.12s…", got, proved.Proof.Root)
	}
	if proved.Proof.Root != view.Roots[0].Root {
		t.Errorf("proof root not the batch root")
	}

	// The third job is still pending (no root covers it yet).
	if _, code := getAudit("?job=" + ids[2]); code != http.StatusNotFound {
		t.Errorf("unaudited job proof: %d, want 404", code)
	}
	if _, code := getAudit("?job=no-such-job"); code != http.StatusNotFound {
		t.Errorf("unknown job proof: %d, want 404", code)
	}
}

func TestAuditDisabledWithoutJournal(t *testing.T) {
	_, ts := newFakeServer(t, Config{}, nil)
	resp, err := http.Get(ts.URL + "/api/v1/audit")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("audit without journal: %d, want 404", resp.StatusCode)
	}
}

// TestAuditChainSurvivesRestart: a restarted daemon extends the same
// chain, and the whole journal still verifies.
func TestAuditChainSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	sA, tsA := newJournaledServer(t, dir, Config{Workers: 1, AuditBatch: 2}, nil)
	runJobs(t, tsA.URL, 3)
	drainNow(t, sA)
	before, err := VerifyAuditLog(dir)
	if err != nil {
		t.Fatal(err)
	}

	sB, tsB := newJournaledServer(t, dir, Config{Workers: 1, AuditBatch: 2}, nil)
	runJobs(t, tsB.URL, 2)
	drainNow(t, sB)
	after, err := VerifyAuditLog(dir)
	if err != nil {
		t.Fatalf("journal broken across restart: %v", err)
	}
	if after.Terminal != before.Terminal+2 {
		t.Errorf("terminal records = %d, want %d", after.Terminal, before.Terminal+2)
	}
	if after.Batches <= before.Batches {
		t.Errorf("no new roots after restart: %d -> %d", before.Batches, after.Batches)
	}
	if after.Chain == before.Chain {
		t.Error("chain head did not advance across restart")
	}
}
