package msd

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"microsampler/internal/core"
	"microsampler/internal/sim"
	"microsampler/internal/telemetry"
)

func getProgress(t *testing.T, base, id string) (progressView, int) {
	t.Helper()
	resp, err := http.Get(base + "/api/v1/jobs/" + id + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v progressView
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return v, resp.StatusCode
}

// TestProgressMonotonicOnLiveJob drives a fake verification step by
// step through a channel handshake and polls /progress between steps:
// the reported cycle count must increase monotonically while the job
// runs, and the terminal reading must hold the final totals.
func TestProgressMonotonicOnLiveJob(t *testing.T) {
	const steps = 5
	step := make(chan struct{})
	stepped := make(chan struct{})
	reg := telemetry.NewRegistry()
	_, ts := newFakeServer(t, Config{Workers: 1, Metrics: reg},
		func(j *Job) (*core.Report, error) {
			for i := 0; i < steps; i++ {
				<-step
				j.probe.AddCycles(1000)
				stepped <- struct{}{}
			}
			// Hold the job in the running state until the test has
			// taken its final mid-flight reading.
			<-step
			rep := fakeReport()
			rep.SimCycles = steps * 1000
			return rep, nil
		})

	v, code := submitJob(t, ts.URL, JobRequest{Source: "fake"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	var last int64
	for i := 0; i < steps; i++ {
		step <- struct{}{}
		<-stepped
		pg, code := getProgress(t, ts.URL, v.ID)
		if code != http.StatusOK {
			t.Fatalf("progress step %d: status %d", i, code)
		}
		if pg.Status != string(StatusRunning) {
			t.Fatalf("progress step %d: status %q want running", i, pg.Status)
		}
		if pg.Cycles <= last && i > 0 {
			t.Fatalf("cycles not increasing: step %d reports %d after %d", i, pg.Cycles, last)
		}
		if pg.Cycles != int64(i+1)*1000 {
			t.Errorf("step %d: cycles = %d want %d", i, pg.Cycles, (i+1)*1000)
		}
		last = pg.Cycles
	}
	step <- struct{}{} // release the held verification
	waitDone(t, ts.URL, v.ID)
	pg, _ := getProgress(t, ts.URL, v.ID)
	if pg.Status != string(StatusDone) || pg.Stage != "done" {
		t.Errorf("terminal progress: %+v", pg)
	}
	if pg.Cycles != steps*1000 {
		t.Errorf("terminal cycles = %d want %d", pg.Cycles, steps*1000)
	}

	// The probe's cycle deltas also feed the daemon-wide counter.
	metrics := scrapeMetrics(t, ts.URL)
	if !strings.Contains(metrics, "msd_job_cycles_total 5000") {
		t.Errorf("msd_job_cycles_total missing or wrong in scrape")
	}
	if !strings.Contains(metrics, "msd_queue_oldest_age_seconds") {
		t.Error("msd_queue_oldest_age_seconds gauge not exposed")
	}
}

func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestProgressUnknownJob(t *testing.T) {
	_, ts := newFakeServer(t, Config{Workers: 1}, nil)
	if _, code := getProgress(t, ts.URL, "job-999"); code != http.StatusNotFound {
		t.Errorf("unknown job progress: status %d want 404", code)
	}
}

// TestProgressOnRealVerification runs the genuine pipeline and checks
// the progress endpoint reports real, growing cycle counts: two
// consecutive readings taken while the job runs must be ordered, and
// the terminal reading must match the report.
func TestProgressOnRealVerification(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, err := New(Config{Workers: 1, Metrics: reg, FlightFrames: 64})
	if err != nil {
		t.Fatal(err)
	}
	ts := serveDaemon(t, s)

	// A workload long enough to observe mid-flight (many iterations on
	// the big core).
	v, code := submitJob(t, ts, JobRequest{Source: `
	.text
_start:
	li   s2, 400
	roi.begin
loop:
	andi s3, s2, 1
	iter.begin s3
	mul  t0, s2, s2
	mul  t0, t0, s2
	mul  t0, t0, s2
	iter.end
	addi s2, s2, -1
	bnez s2, loop
	roi.end
	li a0, 0
	li a7, 93
	ecall
`, Runs: 2, Config: "small"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	var readings []int64
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		pg, code := getProgress(t, ts, v.ID)
		if code != http.StatusOK {
			t.Fatalf("progress: %d", code)
		}
		if pg.Status == string(StatusDone) || pg.Status == string(StatusFailed) {
			break
		}
		if pg.Status == string(StatusRunning) && pg.Cycles > 0 {
			readings = append(readings, pg.Cycles)
		}
	}
	done := waitDone(t, ts, v.ID)
	if done.Status != string(StatusDone) {
		t.Fatalf("job failed: %+v", done)
	}
	for i := 1; i < len(readings); i++ {
		if readings[i] < readings[i-1] {
			t.Fatalf("cycle readings regressed: %v", readings)
		}
	}
	pg, _ := getProgress(t, ts, v.ID)
	if pg.Cycles < done.SimCycles || pg.Stage != "done" {
		t.Errorf("terminal progress %+v vs view %+v", pg, done)
	}
	if pg.RunsDone != 2 || pg.TotalRuns != 2 {
		t.Errorf("terminal runs = %d/%d want 2/2", pg.RunsDone, pg.TotalRuns)
	}
}

// serveDaemon exposes a ready-built Server over httptest and registers
// drain/close cleanups, returning the base URL.
func serveDaemon(t *testing.T, s *Server) string {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return ts.URL
}

// TestStalledJobLeavesPostmortem wedges a real verification (a fault
// hook that blocks until cancellation) under a short watchdog: the job
// must fail as stalled and leave a readable Perfetto post-mortem
// artifact, which survives a daemon restart when journaled.
func TestStalledJobLeavesPostmortem(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Workers:      1,
		JournalDir:   dir,
		Watchdog:     50 * time.Millisecond,
		FlightFrames: 128,
	}
	var wedged atomic.Bool
	cfg.verify = func(j *Job) (*core.Report, error) {
		// Run the real pipeline, wedged by a fault hook after warm-up.
		return core.Verify(core.Workload{Name: "wedge", Source: `
_start:
	li   s2, 8
	roi.begin
loop:
	andi s3, s2, 1
	iter.begin s3
	mul  t0, s2, s2
	iter.end
	addi s2, s2, -1
	bnez s2, loop
	roi.end
	li a0, 0
	li a7, 93
	ecall
`}, core.Options{
			Config:               sim.SmallBoom(),
			Watchdog:             cfg.Watchdog,
			FlightRecorderFrames: cfg.FlightFrames,
			MaxCycles:            1 << 30,
			Probe:                j.probe,
			FaultHook: func(run, attempt int) sim.FaultHook {
				return func(ctx context.Context, cycle int64) error {
					if cycle < 100 {
						return nil
					}
					wedged.Store(true)
					<-ctx.Done()
					return ctx.Err()
				}
			},
		})
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := serveDaemon(t, s)

	v, code := submitJob(t, ts, JobRequest{Source: "wedge"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	done := waitDone(t, ts, v.ID)
	if done.Status != string(StatusFailed) {
		t.Fatalf("wedged job: %+v", done)
	}
	if !wedged.Load() {
		t.Fatal("fault hook never wedged the run")
	}
	if !strings.Contains(done.Error, "watchdog") {
		t.Errorf("failure does not mention the watchdog: %q", done.Error)
	}
	if len(done.Artifacts) != 1 || done.Artifacts[0] != "postmortem" {
		t.Fatalf("failed job artifacts = %v want [postmortem]", done.Artifacts)
	}
	checkPostmortem(t, ts, v.ID)

	// Restart over the same journal: the post-mortem must still serve.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = s.Drain(ctx)
	s2, err := New(Config{Workers: 1, JournalDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := serveDaemon(t, s2)
	got, code := getView(t, ts2, v.ID)
	if code != http.StatusOK || got.Status != string(StatusFailed) {
		t.Fatalf("recovered failed job: code=%d %+v", code, got)
	}
	checkPostmortem(t, ts2, v.ID)
}

// checkPostmortem downloads a job's postmortem artifact and validates
// it is a well-formed Perfetto counter trace.
func checkPostmortem(t *testing.T, base, id string) {
	t.Helper()
	resp, err := http.Get(base + "/api/v1/jobs/" + id + "/postmortem")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("postmortem download: status %d", resp.StatusCode)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
		OtherData map[string]string `json:"otherData"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("postmortem not valid JSON: %v", err)
	}
	counters := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "C" {
			counters[ev.Name] = true
		}
	}
	for _, name := range []string{"rob", "sq", "lq", "mshr", "lfb"} {
		if !counters[name] {
			t.Errorf("postmortem missing %q counter series", name)
		}
	}
	if doc.OtherData["source"] != "microsampler flight recorder" {
		t.Errorf("postmortem otherData = %v", doc.OtherData)
	}
}
