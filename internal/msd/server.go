// Package msd implements the MicroSampler daemon: a long-running HTTP
// service that accepts verification jobs, runs them on a bounded
// worker pool, and exposes the observability surfaces of the pipeline
// — Prometheus metrics, pprof, per-job Perfetto traces, JSON reports
// and leakage heatmaps. It is the serving boundary the ROADMAP's
// "production-scale system" grows behind: cmd/msd is a thin flag/signal
// wrapper around this package.
package msd

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"microsampler/internal/cache"
	"microsampler/internal/cluster"
	"microsampler/internal/core"
	"microsampler/internal/faults"
	"microsampler/internal/history"
	"microsampler/internal/telemetry"
	"microsampler/internal/telemetry/export"
	"microsampler/internal/version"
)

// Config parameterises a Server.
type Config struct {
	// Workers is the number of jobs verified concurrently (default 1).
	// Each job additionally parallelises its own simulation runs via
	// JobRequest.Parallel / core.Options.Parallel.
	Workers int
	// QueueSize bounds the number of queued (not yet running) jobs;
	// submissions beyond it are rejected with 503 (default 16).
	QueueSize int
	// MaxJobs bounds the number of finished jobs retained in memory;
	// the oldest finished jobs are evicted first (default 64).
	MaxJobs int
	// Logger receives the daemon's structured logs; every job's
	// pipeline events carry its job ID as run_id. Nil discards.
	Logger *slog.Logger
	// Metrics is the registry served at /metrics; the verification
	// pipeline's own counters land in the same registry so one scrape
	// sees daemon and pipeline state. Nil creates a fresh registry.
	Metrics *telemetry.Registry
	// MaxCycles bounds each simulation run (0: core default).
	MaxCycles int64
	// Watchdog aborts a simulation run that stops retiring instructions
	// for this wall-clock duration (0: disabled); aborted runs carry a
	// flight-recorder post-mortem when FlightFrames is positive.
	Watchdog time.Duration
	// FlightFrames arms a per-run flight recorder of the last N cycles;
	// failed jobs then expose a "postmortem" Perfetto artifact showing
	// the final approach. Zero disables the recorder.
	FlightFrames int

	// CacheEntries enables the content-addressed verdict cache: up to
	// this many finished jobs' artifact sets are retained (LRU) keyed by
	// the canonical hash of (program, config, seed range,
	// detection-relevant options), and a resubmission with the same key
	// is served the identical bytes without simulating. Identical
	// requests already in flight are deduplicated onto one computation.
	// Zero disables caching.
	CacheEntries int
	// CacheDir, when non-empty (and CacheEntries is positive), adds an
	// fsync'd disk layer under this directory: cached verdicts survive a
	// daemon restart. Typically a subdirectory of JournalDir.
	CacheDir string

	// HistoryDir, when non-empty, enables the run-history store: every
	// finished job's verdict is appended to an append-only labeled index
	// under this directory with its diffable artifact (report digest or
	// matrix) filed content-addressed, feeding GET /api/v1/history and
	// POST /api/v1/diff. Typically a subdirectory of JournalDir.
	HistoryDir string

	// AuditBatch is how many terminal journal records one Merkle root of
	// the tamper-evident audit chain covers (0: a small default; see
	// merkle.go). Auditing is active whenever JournalDir is set.
	AuditBatch int

	// Coordinator enables the cluster-coordinator surface: worker
	// registration and heartbeats, the batch endpoint that shards
	// program×config points across the healthy worker set, and the
	// shared verdict store behind GET/PUT /api/v1/cache/{key}. A
	// coordinator without CacheEntries still gets a small in-memory
	// verdict cache — cross-node fill and reassignment dedup depend on
	// one existing.
	Coordinator bool
	// WorkerTTL is how stale a worker's heartbeat may be before the
	// coordinator marks it dead and reassigns its in-flight shards
	// (default 5s).
	WorkerTTL time.Duration
	// HedgeAfter floors the straggler threshold: a dispatch outliving
	// max(HedgeAfter, 3×latency-EWMA) gets a hedged duplicate on the
	// next-ranked worker, first result wins (default 30s; negative
	// disables hedging).
	HedgeAfter time.Duration
	// ShardTimeout bounds one dispatch attempt to one worker
	// (default 2m).
	ShardTimeout time.Duration
	// ClusterRetry bounds remote attempts per point beyond the first,
	// with full-jitter backoff between them (zero value: 3 retries,
	// 100ms base, 2s cap — the core.RetryPolicy shape).
	ClusterRetry core.RetryPolicy
	// CoordinatorURL, when non-empty, makes this daemon a cluster
	// worker: a point cache miss consults the coordinator's store
	// before simulating, and fresh verdicts are uploaded back —
	// cross-node cache fill.
	CoordinatorURL string

	// MaxRetryAfter caps the 503 Retry-After hint computed from queue
	// depth × average job duration (default 5m; negative disables the
	// cap). An uncapped hint during a long stall tells clients to go
	// away for hours.
	MaxRetryAfter time.Duration

	// JournalDir, when non-empty, enables crash-safe job persistence:
	// every job transition is appended (and fsynced) to a JSONL
	// write-ahead journal under this directory, and finished jobs'
	// artifacts are flushed to jobs/<id>/ on disk before the job is
	// marked done. A daemon restarted over the same directory rebuilds
	// its job table from the journal: jobs queued at the crash are
	// re-enqueued, jobs mid-run are marked interrupted (see
	// RequeueInterrupted), finished jobs reload their artifacts. Empty
	// disables persistence; the daemon is then purely in-memory.
	JournalDir string
	// RequeueInterrupted makes recovery re-enqueue jobs that were
	// running when the previous process died, instead of leaving them
	// terminally interrupted. Safe because verification is
	// deterministic and side-effect free.
	RequeueInterrupted bool

	// verify, when non-nil, replaces the real verification step; the
	// in-package tests use it to model slow or failing jobs without
	// paying for a simulation. verifyMatrix is its grid-sweep
	// counterpart, used for jobs with JobRequest.Matrix set.
	// executePoint replaces the per-point verification of the cluster
	// path the same way.
	verify       func(j *Job) (*core.Report, error)
	verifyMatrix func(j *Job) (*core.Matrix, error)
	executePoint func(p cluster.Point, key string) cluster.PointResult
}

// Server is the daemon: an http.Handler plus a worker pool.
type Server struct {
	cfg Config
	log *slog.Logger
	reg *telemetry.Registry
	mux *http.ServeMux

	queue chan *Job
	wg    sync.WaitGroup

	jrn *journal // nil when persistence is disabled
	aud *auditor // nil when persistence is disabled

	// cache is the content-addressed verdict store (nil when disabled);
	// cacheDisk its optional persistent layer; flight deduplicates
	// identical in-flight jobs onto one computation.
	cache     *cache.LRU
	cacheDisk *cache.Disk
	flight    cache.Group

	// hist is the labeled run-history store behind /api/v1/history and
	// /api/v1/diff (nil when disabled). It carries its own lock.
	hist *history.Store

	// Cluster state: the worker failure detector, the shared dispatch
	// latency estimate feeding the hedge threshold, the HTTP client
	// batches dispatch (and workers upload) through, and the tracked
	// batches. batchWG counts running batch dispatchers so Drain can
	// wait them out.
	members     *cluster.Membership
	dispatchLat *cluster.LatencyEWMA
	clusterHTTP *http.Client
	batchWG     sync.WaitGroup

	mu          sync.Mutex
	jobs        map[string]*Job
	order       []string // submission order, for listing and eviction
	nextID      int
	batches     map[string]*Batch
	batchOrder  []string
	nextBatchID int
	draining    bool
	// ewmaJobSec tracks typical job duration (exponentially weighted)
	// to compute the Retry-After hint when the queue saturates.
	ewmaJobSec float64

	// verify runs one job's verification (verifyMatrix one matrix job's
	// grid sweep); tests swap them out to model slow or failing jobs
	// without paying for a simulation.
	verify       func(j *Job) (*core.Report, error)
	verifyMatrix func(j *Job) (*core.Matrix, error)

	queueDepth  *telemetry.Gauge
	inflight    *telemetry.Gauge
	submitted   *telemetry.Counter
	rejected    *telemetry.Counter
	completed   *telemetry.Counter
	failed      *telemetry.Counter
	recovered   *telemetry.Counter
	interrupted *telemetry.Counter
	panics      *telemetry.Counter
	jobCycles   *telemetry.Counter
	queueOldest *telemetry.Gauge
	jobSeconds  *telemetry.Histogram
	waitSeconds *telemetry.Histogram
	cacheHits   *telemetry.Counter
	cacheMisses *telemetry.Counter
	deduped     *telemetry.Counter
	// verdictFlips counts clean↔leaky verdict flips surfaced by the
	// diff endpoint — the scrapeable regression signal.
	verdictFlips *telemetry.Counter
	// Cluster telemetry: the health of the worker set (refreshed at
	// scrape time) and the dispatch pathologies — reassignments after a
	// worker death, hedged straggler duplicates, and the per-point
	// terminal counters including local-degraded execution.
	workersHealthy *telemetry.Gauge
	heartbeatAge   *telemetry.Gauge
	shardReassign  *telemetry.Counter
	hedgedDispatch *telemetry.Counter
	pointsDone     *telemetry.Counter
	pointsFailed   *telemetry.Counter
	pointsDegraded *telemetry.Counter
}

// New builds a Server, recovers any journaled jobs when
// Config.JournalDir is set, and starts the worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 16
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 64
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	if cfg.Metrics == nil {
		cfg.Metrics = telemetry.NewRegistry()
	}
	if cfg.WorkerTTL <= 0 {
		cfg.WorkerTTL = 5 * time.Second
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = 30 * time.Second
	}
	if cfg.ShardTimeout <= 0 {
		cfg.ShardTimeout = 2 * time.Minute
	}
	if cfg.MaxRetryAfter == 0 {
		cfg.MaxRetryAfter = 5 * time.Minute
	}
	if cfg.Coordinator && cfg.CacheEntries <= 0 {
		// The cluster's exactly-once-per-verdict dedup and cross-node
		// fill live in the coordinator's store; give it one even when job
		// caching was not asked for.
		cfg.CacheEntries = 512
	}
	s := &Server{
		cfg:         cfg,
		log:         cfg.Logger,
		reg:         cfg.Metrics,
		queue:       make(chan *Job, cfg.QueueSize),
		jobs:        make(map[string]*Job),
		batches:     make(map[string]*Batch),
		members:     cluster.NewMembership(cfg.WorkerTTL),
		dispatchLat: &cluster.LatencyEWMA{},
		clusterHTTP: &http.Client{},

		queueDepth:   cfg.Metrics.Gauge("msd_queue_depth"),
		inflight:     cfg.Metrics.Gauge("msd_jobs_inflight"),
		submitted:    cfg.Metrics.Counter("msd_jobs_submitted_total"),
		rejected:     cfg.Metrics.Counter("msd_jobs_rejected_total"),
		completed:    cfg.Metrics.Counter("msd_jobs_completed_total"),
		failed:       cfg.Metrics.Counter("msd_jobs_failed_total"),
		recovered:    cfg.Metrics.Counter("msd_jobs_recovered_total"),
		interrupted:  cfg.Metrics.Counter("msd_jobs_interrupted_total"),
		panics:       cfg.Metrics.Counter("msd_job_panics_total"),
		jobCycles:    cfg.Metrics.Counter("msd_job_cycles_total"),
		queueOldest:  cfg.Metrics.Gauge("msd_queue_oldest_age_seconds"),
		jobSeconds:   cfg.Metrics.Histogram("msd_job_seconds", telemetry.LatencyBuckets()),
		waitSeconds:  cfg.Metrics.Histogram("msd_job_queue_wait_seconds", telemetry.LatencyBuckets()),
		cacheHits:    cfg.Metrics.Counter("msd_cache_hits_total"),
		cacheMisses:  cfg.Metrics.Counter("msd_cache_misses_total"),
		deduped:      cfg.Metrics.Counter("msd_jobs_deduped_total"),
		verdictFlips: cfg.Metrics.Counter("msd_verdict_flips_total"),

		workersHealthy: cfg.Metrics.Gauge("msd_workers_healthy"),
		heartbeatAge:   cfg.Metrics.Gauge("msd_worker_heartbeat_age_seconds"),
		shardReassign:  cfg.Metrics.Counter("msd_shard_reassignments_total"),
		hedgedDispatch: cfg.Metrics.Counter("msd_hedged_dispatches_total"),
		pointsDone:     cfg.Metrics.Counter("msd_batch_points_done_total"),
		pointsFailed:   cfg.Metrics.Counter("msd_batch_points_failed_total"),
		pointsDegraded: cfg.Metrics.Counter("msd_batch_points_degraded_total"),
	}
	// The constant build-info gauge ties every scrape to the exact
	// binary that produced it.
	version.Gauge(cfg.Metrics, "msd_build_info")
	s.verify = cfg.verify
	if s.verify == nil {
		s.verify = s.runVerification
	}
	s.verifyMatrix = cfg.verifyMatrix
	if s.verifyMatrix == nil {
		s.verifyMatrix = s.runMatrixVerification
	}
	if cfg.CacheEntries > 0 {
		s.cache = cache.NewLRU(cfg.CacheEntries)
		if cfg.CacheDir != "" {
			disk, err := cache.NewDisk(cfg.CacheDir)
			if err != nil {
				return nil, fmt.Errorf("msd: cache dir: %w", err)
			}
			s.cacheDisk = disk
		}
	}
	if cfg.HistoryDir != "" {
		h, err := history.Open(cfg.HistoryDir)
		if err != nil {
			return nil, fmt.Errorf("msd: history: %w", err)
		}
		s.hist = h
	}
	if cfg.JournalDir != "" {
		jrn, recs, raw, err := openJournal(cfg.JournalDir)
		if err != nil {
			return nil, err
		}
		s.jrn = jrn
		// Rebuild the audit chain from the raw journal before recovery
		// appends anything, so recovery's own terminal records (dropped
		// or interrupted jobs) land in the chain too.
		s.aud = newAuditor(cfg.AuditBatch)
		s.aud.replay(raw)
		s.recoverJobs(recs)
		s.recoverBatches(recs)
	}
	s.mux = s.buildMux()
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker(w)
	}
	s.resumeBatches()
	return s, nil
}

// recoverJobs rebuilds the job table from a previous incarnation's
// journal. It runs before the worker pool starts and before the HTTP
// surface exists, so plain field access is race-free.
func (s *Server) recoverJobs(recs []journalRecord) {
	for _, r := range recs {
		switch r.Event {
		case "submit":
			if r.Req == nil {
				continue
			}
			if _, dup := s.jobs[r.ID]; !dup {
				s.order = append(s.order, r.ID)
			}
			s.jobs[r.ID] = &Job{ID: r.ID, Req: *r.Req, Status: StatusQueued, Submitted: r.Time}
			if n := idNum(r.ID); n > s.nextID {
				s.nextID = n
			}
		case "start":
			if j := s.jobs[r.ID]; j != nil {
				j.Status = StatusRunning
				j.Started = r.Time
			}
		case "done":
			if j := s.jobs[r.ID]; j != nil {
				j.Status = StatusDone
				j.Finished = r.Time
				j.Leaky = r.Leaky
				j.LeakyUnits = r.LeakyUnits
				j.Iterations = r.Iterations
				j.SimCycles = r.SimCycles
				j.Cells = r.Cells
				j.LeakyCells = r.LeakyCells
				j.Cached = r.Cached
			}
		case "failed":
			if j := s.jobs[r.ID]; j != nil {
				j.Status = StatusFailed
				j.Finished = r.Time
				j.Err = r.Err
			}
		case "interrupted":
			if j := s.jobs[r.ID]; j != nil {
				j.Status = StatusInterrupted
				j.Finished = r.Time
				j.Err = "interrupted by daemon restart"
			}
		case "evict":
			if _, ok := s.jobs[r.ID]; ok {
				delete(s.jobs, r.ID)
				for i, id := range s.order {
					if id == r.ID {
						s.order = append(s.order[:i], s.order[i+1:]...)
						break
					}
				}
			}
		}
	}

	requeue := func(j *Job) {
		select {
		case s.queue <- j:
			j.Status = StatusQueued
			j.Err = ""
			j.Started, j.Finished = time.Time{}, time.Time{}
			s.recovered.Inc()
			s.log.Info("job recovered", "run_id", j.ID, "workload", j.workloadName())
		default:
			j.Status = StatusFailed
			j.Finished = time.Now()
			j.Err = "dropped at recovery: queue full"
			s.journal(journalRecord{Event: "failed", Time: j.Finished, ID: j.ID, Err: j.Err})
			s.log.Warn("recovered job dropped: queue full", "run_id", j.ID)
		}
	}
	for _, id := range s.order {
		j := s.jobs[id]
		switch j.Status {
		case StatusDone:
			arts, err := s.jrn.loadArtifacts(id)
			if err != nil {
				j.Status = StatusFailed
				j.Err = fmt.Sprintf("artifacts lost at recovery: %v", err)
				s.log.Warn("done job lost artifacts", "run_id", id, "err", err)
				continue
			}
			j.artifacts = arts
		case StatusFailed:
			// A failed job may have persisted a post-mortem; reload it
			// tolerantly — most failures leave no artifacts at all.
			if arts, err := s.jrn.loadArtifacts(id); err == nil && len(arts) > 0 {
				j.artifacts = arts
			}
		case StatusRunning:
			// Orphaned mid-run by the crash: the journal has a start
			// without a terminal event.
			j.Status = StatusInterrupted
			j.Finished = time.Now()
			j.Err = "interrupted by daemon restart"
			s.interrupted.Inc()
			s.journal(journalRecord{Event: "interrupted", Time: j.Finished, ID: id})
			s.log.Warn("job interrupted by restart", "run_id", id)
			if s.cfg.RequeueInterrupted {
				requeue(j)
			}
		case StatusQueued:
			requeue(j)
		}
	}
}

// journal appends rec when persistence is enabled and feeds terminal
// records into the audit chain, persisting the Merkle root record when
// a batch fills. Append failures are logged, not fatal: the daemon
// prefers serving with a degraded journal over refusing work.
func (s *Server) journal(rec journalRecord) {
	if s.jrn == nil {
		return
	}
	line, err := s.jrn.append(rec)
	if err != nil {
		s.log.Error("journal append failed", "event", rec.Event, "run_id", rec.ID, "err", err)
		return
	}
	if s.aud == nil || !terminalEvent(rec.Event) {
		return
	}
	if audRec, sealed := s.aud.observe(rec.ID, line); sealed {
		if _, err := s.jrn.append(audRec); err != nil {
			s.log.Error("audit record append failed", "root", audRec.Root[:12], "err", err)
		} else {
			s.log.Info("audit root sealed", "root", audRec.Root[:12],
				"first", audRec.First, "count", audRec.Count)
		}
	}
}

// Handler returns the daemon's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops accepting new jobs, waits for queued and in-flight jobs
// to finish (or ctx to expire), and stops the workers. After Drain the
// server still serves reads (/metrics, job status and artifacts), but
// every submission is rejected and /readyz reports 503.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		close(s.queue)
	}
	s.log.Info("msd draining", "queued", len(s.queue))

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		// Batch dispatchers finish their in-flight points too: partial
		// batch results are journaled per point, so even a drain that
		// times out here leaves every completed point recoverable.
		s.batchWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		if s.jrn != nil {
			// Seal the partial audit batch so every terminal record of a
			// cleanly drained daemon is covered by a persisted root.
			if s.aud != nil {
				if audRec, sealed := s.aud.flush(); sealed {
					if _, err := s.jrn.append(audRec); err != nil {
						s.log.Error("audit flush failed", "err", err)
					}
				}
			}
			_ = s.jrn.Close()
		}
		if s.hist != nil {
			_ = s.hist.Close()
		}
		s.log.Info("msd drained")
		return nil
	case <-ctx.Done():
		return fmt.Errorf("msd drain: %w", ctx.Err())
	}
}

func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /api/v1/matrix", s.handleSubmitMatrix)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	// The literal "progress" segment takes precedence over the
	// {artifact} wildcard under Go 1.22 routing, so an artifact named
	// "progress" can never shadow the live view (and vice versa).
	mux.HandleFunc("GET /api/v1/jobs/{id}/progress", s.handleProgress)
	mux.HandleFunc("GET /api/v1/jobs/{id}/{artifact}", s.handleArtifact)
	metricsHandler := export.MetricsHandler(s.reg)
	mux.Handle("GET /metrics", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Freshen the scrape-time gauges before rendering. Queue depth
		// is read under the server lock — where queue slots are
		// reserved — so a scrape sees a consistent point-in-time value
		// instead of racing the unlocked Set calls submit and dequeue
		// used to make.
		s.mu.Lock()
		s.queueDepth.Set(float64(len(s.queue)))
		s.mu.Unlock()
		s.queueOldest.Set(s.oldestQueuedAge().Seconds())
		s.workersHealthy.Set(float64(len(s.members.Healthy())))
		s.heartbeatAge.Set(s.members.MaxHeartbeatAge().Seconds())
		metricsHandler.ServeHTTP(w, r)
	}))
	mux.HandleFunc("GET /api/v1/audit", s.handleAudit)
	mux.HandleFunc("GET /api/v1/history", s.handleHistory)
	mux.HandleFunc("POST /api/v1/diff", s.handleDiff)
	// Any daemon can execute a shard on behalf of a coordinator; the
	// coordination surfaces themselves (registration, batches, the
	// shared verdict store) are gated on Config.Coordinator.
	mux.HandleFunc("POST /api/v1/cluster/execute", s.handleClusterExecute)
	if s.cfg.Coordinator {
		mux.HandleFunc("POST /api/v1/cluster/register", s.handleClusterRegister)
		mux.HandleFunc("POST /api/v1/cluster/heartbeat", s.handleClusterHeartbeat)
		mux.HandleFunc("GET /api/v1/cluster/workers", s.handleClusterWorkers)
		mux.HandleFunc("POST /api/v1/batch", s.handleBatchSubmit)
		mux.HandleFunc("GET /api/v1/batch", s.handleBatchList)
		mux.HandleFunc("GET /api/v1/batch/{id}", s.handleBatchStatus)
		mux.HandleFunc("GET /api/v1/cache/{key}", s.handleCacheGet)
		mux.HandleFunc("PUT /api/v1/cache/{key}", s.handleCachePut)
	}
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if draining {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	if err := req.validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.enqueue(w, req)
}

// handleSubmitMatrix is the batch-submit endpoint: one program fanned
// out across every cell of a configuration grid, aggregated into a
// single job with matrix artifacts. The payload is a JobRequest whose
// matrix field defaults to the default grid when absent.
func (s *Server) handleSubmitMatrix(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	if req.Matrix == "" {
		req.Matrix = "default"
	}
	if err := req.validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.enqueue(w, req)
}

// enqueue admits a validated request into the job queue and answers the
// submission request.
func (s *Server) enqueue(w http.ResponseWriter, req JobRequest) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.rejected.Inc()
		writeError(w, http.StatusServiceUnavailable, "daemon is draining")
		return
	}
	s.nextID++
	job := &Job{
		ID:        fmt.Sprintf("job-%d", s.nextID),
		Req:       req,
		Status:    StatusQueued,
		Submitted: time.Now(),
	}
	// Reserve the queue slot while holding the lock: draining flips
	// before close(queue), so a reserved send cannot hit a closed
	// channel.
	select {
	case s.queue <- job:
	default:
		retryAfter := s.retryAfterLocked()
		s.mu.Unlock()
		s.rejected.Inc()
		// Shed load gracefully: tell the client when a slot should
		// free up, from the queue depth and observed job durations.
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		writeError(w, http.StatusServiceUnavailable, "job queue full (%d queued)", s.cfg.QueueSize)
		return
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	// Journal the submit before acknowledging, still under the lock so
	// journal order matches submission order.
	s.journal(journalRecord{Event: "submit", Time: job.Submitted, ID: job.ID, Req: &job.Req})
	evicted := s.evictLocked("")
	view := job.view()
	s.mu.Unlock()

	s.dropEvicted(evicted)
	s.submitted.Inc()
	s.log.Info("job submitted", "run_id", view.ID, "workload", view.Workload)
	writeJSON(w, http.StatusAccepted, view)
}

// evictLocked drops the oldest finished jobs beyond the retention
// bound, returning the evicted IDs so the caller can clean up their
// on-disk artifacts outside the lock. Queued and running jobs are never
// evicted — a job's artifacts are flushed to disk before its status
// turns terminal, so an evictable job is never still being written.
// keepID (completion-time eviction passes the job that just finished)
// is also spared: a fresh verdict must stay fetchable at least until
// the next submission or completion, not vanish the instant it lands.
func (s *Server) evictLocked(keepID string) []string {
	excess := len(s.order) - s.cfg.MaxJobs
	if excess <= 0 {
		return nil
	}
	var evicted []string
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if excess > 0 && id != keepID &&
			(j.Status == StatusDone || j.Status == StatusFailed || j.Status == StatusInterrupted) {
			delete(s.jobs, id)
			evicted = append(evicted, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
	return evicted
}

// dropEvicted journals evictions and removes the jobs' artifact
// directories; called without the server lock held.
func (s *Server) dropEvicted(ids []string) {
	for _, id := range ids {
		s.journal(journalRecord{Event: "evict", Time: time.Now(), ID: id})
		if s.jrn != nil {
			if err := s.jrn.removeJob(id); err != nil {
				s.log.Warn("evicted job dir not removed", "run_id", id, "err", err)
			}
		}
	}
}

// retryAfterLocked estimates, in whole seconds, when a queue slot
// should free: queued work divided by worker throughput, using the
// exponentially weighted average job duration (1s before any job has
// finished). The estimate is capped at Config.MaxRetryAfter — during a
// long stall (a deep queue of slow jobs) an uncapped hint would tell
// clients to go away for hours, when what they should do is probe
// again within bounded time.
func (s *Server) retryAfterLocked() int {
	avg := s.ewmaJobSec
	if avg <= 0 {
		avg = 1
	}
	secs := int(math.Ceil(avg * float64(len(s.queue)+1) / float64(s.cfg.Workers)))
	if secs < 1 {
		secs = 1
	}
	if cap := s.cfg.MaxRetryAfter; cap > 0 {
		if max := int(cap / time.Second); max >= 1 && secs > max {
			secs = max
		}
	}
	return secs
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	// ?label= narrows the listing to one code state's jobs — the
	// per-label view the diff workflow reads.
	label := r.URL.Query().Get("label")
	s.mu.Lock()
	views := make([]jobView, 0, len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		if label != "" && j.Req.Label != label {
			continue
		}
		views = append(views, j.view())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	job, ok := s.jobs[r.PathValue("id")]
	var view jobView
	if ok {
		view = job.view()
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleAudit serves the tamper-evidence surface: the chained Merkle
// roots over the journal's terminal records, and — with ?job=<id> —
// the inclusion proof of that job's audited verdict. Clients that
// record the chain value externally can later hand it to
// `msd -audit-verify -audit-head` to detect tail truncation.
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	if s.aud == nil {
		writeError(w, http.StatusNotFound, "auditing disabled: daemon runs without a journal")
		return
	}
	jobID := r.URL.Query().Get("job")
	view, ok := s.aud.view(jobID)
	if !ok {
		writeError(w, http.StatusNotFound, "job %q has no audited terminal record", jobID)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// oldestQueuedAge reports how long the longest-waiting queued job has
// been waiting, or zero when the queue is empty. Exposed as the
// msd_queue_oldest_age_seconds gauge, refreshed at scrape time.
func (s *Server) oldestQueuedAge() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	var oldest time.Time
	for _, id := range s.order {
		j := s.jobs[id]
		if j.Status == StatusQueued && (oldest.IsZero() || j.Submitted.Before(oldest)) {
			oldest = j.Submitted
		}
	}
	if oldest.IsZero() {
		return 0
	}
	return time.Since(oldest)
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	job, ok := s.jobs[r.PathValue("id")]
	var view progressView
	if ok {
		view = job.progress()
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	id, name := r.PathValue("id"), r.PathValue("artifact")
	s.mu.Lock()
	job, ok := s.jobs[id]
	var status JobStatus
	var art artifact
	var have bool
	if ok {
		status = job.Status
		art, have = job.artifacts[name]
	}
	s.mu.Unlock()
	switch {
	case !ok:
		writeError(w, http.StatusNotFound, "unknown job %q", id)
	case status == StatusQueued || status == StatusRunning:
		writeError(w, http.StatusConflict, "job %s is %s; artifacts appear when it is done", id, status)
	case !have:
		writeError(w, http.StatusNotFound, "job %s has no artifact %q", id, name)
	default:
		w.Header().Set("Content-Type", art.contentType)
		_, _ = w.Write(art.data)
	}
}

// worker drains the job queue until Drain closes it.
func (s *Server) worker(n int) {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJob(job)
	}
	s.log.Debug("msd worker exiting", "worker", n)
}

func (s *Server) runJob(job *Job) {
	s.mu.Lock()
	job.Status = StatusRunning
	job.Started = time.Now()
	// Arm the live progress probe before the verification can start;
	// its cycle deltas also feed the daemon-wide cycle counter.
	job.probe = core.NewRunProbe()
	job.probe.SetCycleSink(func(d int64) {
		if d > 0 {
			s.jobCycles.Add(uint64(d))
		}
	})
	s.mu.Unlock()
	s.journal(journalRecord{Event: "start", Time: job.Started, ID: job.ID})
	s.inflight.Add(1)
	s.waitSeconds.Observe(job.Started.Sub(job.Submitted).Seconds())
	s.log.Info("job started", "run_id", job.ID, "workload", job.workloadName())

	var (
		arts   map[string]artifact
		err    error
		sum    jobSummary
		cached bool
	)
	var key string
	if s.cache != nil {
		key = jobCacheKey(job.Req, s.cfg.MaxCycles)
	}
	if key != "" {
		if cj, ok := s.cacheGet(key); ok {
			arts, sum, cached = cj.arts, cj.sum, true
			s.cacheHits.Inc()
			s.log.Info("job served from cache", "run_id", job.ID, "cache_key", key[:12])
		} else {
			s.cacheMisses.Inc()
		}
	}
	switch {
	case cached:
	case key != "":
		// Deduplicate identical in-flight jobs: followers block on the
		// leader's computation and share its artifact set instead of
		// simulating the same tuple twice.
		v, ferr, shared := s.flight.Do(key, func() (any, error) {
			a, su, cerr := s.computeJob(job)
			if cerr != nil {
				return nil, cerr
			}
			return &cachedJob{arts: a, sum: su}, nil
		})
		err = ferr
		if err == nil {
			cj := v.(*cachedJob)
			arts, sum = cj.arts, cj.sum
			if shared {
				cached = true
				s.deduped.Inc()
				s.log.Info("job deduplicated onto identical in-flight job",
					"run_id", job.ID, "cache_key", key[:12])
			} else {
				s.cachePut(key, cj)
			}
		}
	default:
		arts, sum, err = s.computeJob(job)
	}
	// Flush the artifacts to stable storage BEFORE anything marks the
	// job finished: eviction only touches terminal jobs, so a job whose
	// artifacts are still being written can never be evicted, and a
	// recovering daemon only sees a "done" journal record after its
	// artifacts are durable.
	if err == nil && s.jrn != nil {
		if werr := s.jrn.writeArtifacts(job.ID, arts); werr != nil {
			err = fmt.Errorf("persist artifacts: %w", werr)
		}
	}
	if err != nil {
		// A failed run may still leave evidence: the flight-recorder
		// post-mortem rides along as a downloadable artifact, persisted
		// before the failure is journaled so recovery can reload it.
		arts = postmortemArtifacts(err)
		if len(arts) > 0 && s.jrn != nil {
			if werr := s.jrn.writeArtifacts(job.ID, arts); werr != nil {
				s.log.Warn("postmortem not persisted", "run_id", job.ID, "err", werr)
			}
		}
	}

	finished := time.Now()
	if err != nil {
		s.journal(journalRecord{Event: "failed", Time: finished, ID: job.ID, Err: err.Error()})
	} else {
		s.journal(journalRecord{
			Event: "done", Time: finished, ID: job.ID,
			Leaky: sum.leaky, LeakyUnits: sum.leakyUnits,
			Iterations: sum.iterations, SimCycles: sum.simCycles,
			Cells: sum.cells, LeakyCells: sum.leakyCells,
			Cached: cached,
		})
		s.recordHistory(job, sum, arts, finished)
	}

	s.mu.Lock()
	job.Finished = finished
	if err != nil {
		job.Status = StatusFailed
		job.Err = err.Error()
		job.artifacts = arts
	} else {
		job.Status = StatusDone
		job.artifacts = arts
		job.Leaky = sum.leaky
		job.LeakyUnits = sum.leakyUnits
		job.Iterations = sum.iterations
		job.SimCycles = sum.simCycles
		job.Cells = sum.cells
		job.LeakyCells = sum.leakyCells
		job.Cached = cached
	}
	dur := job.Finished.Sub(job.Started)
	const alpha = 0.3 // favour recent jobs without whiplash
	if s.ewmaJobSec == 0 {
		s.ewmaJobSec = dur.Seconds()
	} else {
		s.ewmaJobSec = alpha*dur.Seconds() + (1-alpha)*s.ewmaJobSec
	}
	// Other terminal jobs may now be past the retention bound: evicting
	// here (not only on submit) lets a quiesced daemon converge to
	// MaxJobs instead of holding excess finished jobs until the next
	// submission. The just-finished job itself is spared so its verdict
	// stays fetchable.
	evicted := s.evictLocked(job.ID)
	s.mu.Unlock()
	s.dropEvicted(evicted)

	s.inflight.Add(-1)
	s.jobSeconds.Observe(dur.Seconds())
	if err != nil {
		s.failed.Inc()
		s.log.Error("job failed", "run_id", job.ID, "err", err, "dur", dur)
		return
	}
	s.completed.Inc()
	s.log.Info("job done", "run_id", job.ID, "leaky", job.Leaky,
		"leaky_units", job.LeakyUnits, "dur", dur)
}

// jobSummary is the verdict digest of a finished job, common to single
// verifications and matrix sweeps.
type jobSummary struct {
	leaky      bool
	leakyUnits []string
	iterations int
	simCycles  int64
	cells      int
	leakyCells []string
}

// reportSummary digests a single verification's report.
func reportSummary(rep *core.Report) jobSummary {
	var sum jobSummary
	sum.leaky = rep.AnyLeak()
	for _, u := range rep.LeakyUnits() {
		sum.leakyUnits = append(sum.leakyUnits, u.Unit.String())
	}
	sum.iterations = len(rep.Iterations)
	sum.simCycles = rep.SimCycles
	return sum
}

// matrixSummary digests a grid sweep: the job is leaky when any cell
// is, leaky units are the deduplicated union across cells, and the
// iteration/cycle totals aggregate the whole grid.
func matrixSummary(m *core.Matrix) jobSummary {
	sum := jobSummary{cells: len(m.Cells), leakyCells: m.LeakyCells()}
	sum.leaky = len(sum.leakyCells) > 0
	seen := map[string]bool{}
	for _, c := range m.Cells {
		sum.iterations += c.Iterations
		sum.simCycles += c.SimCycles
		for _, f := range c.Flagged {
			if !seen[f.Unit] {
				seen[f.Unit] = true
				sum.leakyUnits = append(sum.leakyUnits, f.Unit)
			}
		}
	}
	sortStrings(sum.leakyUnits)
	return sum
}

// computeJob runs the job's verification (single or grid sweep) and
// renders its artifact set — the cacheable unit of work.
func (s *Server) computeJob(job *Job) (map[string]artifact, jobSummary, error) {
	if job.Req.Matrix != "" {
		m, err := s.safeVerifyMatrix(job)
		if err != nil {
			return nil, jobSummary{}, err
		}
		arts, err := renderMatrixArtifacts(m)
		if err != nil {
			return nil, jobSummary{}, err
		}
		return arts, matrixSummary(m), nil
	}
	rep, err := s.safeVerify(job)
	if err != nil {
		return nil, jobSummary{}, err
	}
	arts, err := renderArtifacts(rep, job.Req.HeatmapWindows)
	if err != nil {
		return nil, jobSummary{}, err
	}
	return arts, reportSummary(rep), nil
}

// safeVerify runs the verification step with panic containment: a
// panicking job becomes a failed job carrying a faults.PanicError with
// the stack, instead of killing the worker — and with it the daemon.
func (s *Server) safeVerify(job *Job) (rep *core.Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Inc()
			err = &faults.PanicError{Value: r, Stack: debug.Stack()}
			s.log.Error("job panicked", "run_id", job.ID, "panic", r)
		}
	}()
	return s.verify(job)
}

// runVerification executes the real pipeline for one job.
func (s *Server) runVerification(job *Job) (*core.Report, error) {
	w, err := job.Req.workload()
	if err != nil {
		return nil, err
	}
	runs := job.Req.Runs
	if runs == 0 {
		runs = 4
	}
	parallel := job.Req.Parallel
	if parallel == 0 {
		parallel = core.ParallelAuto
	}
	warmup := job.Req.Warmup
	if warmup < 0 {
		warmup = core.NoWarmup
	}
	return core.Verify(w, core.Options{
		Config:               job.Req.config(),
		Runs:                 runs,
		Warmup:               warmup,
		Parallel:             parallel,
		SeedOffset:           job.Req.SeedOffset,
		MeasureStages:        job.Req.MeasureStages,
		MaxCycles:            s.cfg.MaxCycles,
		Watchdog:             s.cfg.Watchdog,
		FlightRecorderFrames: s.cfg.FlightFrames,
		Probe:                job.probe,
		Metrics:              s.reg,
		Logger:               s.log,
		RunID:                job.ID,
	})
}

// safeVerifyMatrix is safeVerify's grid-sweep counterpart.
func (s *Server) safeVerifyMatrix(job *Job) (m *core.Matrix, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Inc()
			err = &faults.PanicError{Value: r, Stack: debug.Stack()}
			s.log.Error("job panicked", "run_id", job.ID, "panic", r)
		}
	}()
	return s.verifyMatrix(job)
}

// runMatrixVerification fans one job's program across every cell of its
// grid. Cell-level failures stay per-cell inside the matrix; only
// grid-level errors fail the job.
func (s *Server) runMatrixVerification(job *Job) (*core.Matrix, error) {
	w, err := job.Req.workload()
	if err != nil {
		return nil, err
	}
	grid, err := job.Req.grid()
	if err != nil {
		return nil, err
	}
	runs := job.Req.Runs
	if runs == 0 {
		runs = 4
	}
	parallel := job.Req.Parallel
	if parallel == 0 {
		parallel = core.ParallelAuto
	}
	warmup := job.Req.Warmup
	if warmup < 0 {
		warmup = core.NoWarmup
	}
	opts := core.MatrixOptions{Grid: grid, CellParallel: job.Req.CellParallel}
	opts.Runs = runs
	opts.Warmup = warmup
	opts.Parallel = parallel
	opts.SeedOffset = job.Req.SeedOffset
	opts.MaxCycles = s.cfg.MaxCycles
	opts.Watchdog = s.cfg.Watchdog
	opts.Metrics = s.reg
	opts.Logger = s.log
	opts.RunID = job.ID
	// The live probe is per-verification state; share it only when the
	// cells run sequentially, where it reports the current cell's runs.
	if job.Req.CellParallel <= 1 {
		opts.Probe = job.probe
	}
	return core.VerifyMatrix(w, opts)
}
