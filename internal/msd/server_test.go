package msd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"microsampler/internal/core"
	"microsampler/internal/stats"
	"microsampler/internal/telemetry"
	"microsampler/internal/trace"
)

// fakeReport hand-builds the minimal report renderArtifacts needs, so
// server tests never pay for a simulation.
func fakeReport() *core.Report {
	const iters = 8
	rep := &core.Report{
		Workload:   "fake",
		Config:     "TestBoom",
		Runs:       1,
		SimCycles:  1234,
		IterHashes: map[trace.Unit][]uint64{},
	}
	hashes := make([]uint64, 0, iters)
	for i := 0; i < iters; i++ {
		class := uint64(i % 2)
		rep.Iterations = append(rep.Iterations, trace.IterSample{Class: class, Cycles: 10})
		hashes = append(hashes, 100+class)
	}
	rep.IterHashes[trace.SQADDR] = hashes
	tab := stats.NewTable()
	for i, h := range hashes {
		tab.Add(rep.Iterations[i].Class, h, 1)
	}
	rep.Units = append(rep.Units, core.UnitResult{
		Unit:  trace.SQADDR,
		Table: tab,
		Assoc: tab.Analyze(),
	})
	return rep
}

// newFakeServer builds a Server whose verify step returns fakeReport
// instantly (or whatever fn decides).
func newFakeServer(t *testing.T, cfg Config, fn func(*Job) (*core.Report, error)) (*Server, *httptest.Server) {
	t.Helper()
	if fn == nil {
		fn = func(*Job) (*core.Report, error) { return fakeReport(), nil }
	}
	cfg.verify = fn
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("msd.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s, ts
}

func submitJob(t *testing.T, base string, req JobRequest) (jobView, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return v, resp.StatusCode
}

func waitDone(t *testing.T, base, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/api/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v jobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch v.Status {
		case string(StatusDone), string(StatusFailed):
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return jobView{}
}

func TestDaemonEndToEnd(t *testing.T) {
	reg := telemetry.NewRegistry()
	_, ts := newFakeServer(t, Config{Workers: 2, Metrics: reg}, nil)

	v, code := submitJob(t, ts.URL, JobRequest{Source: "fake"})
	if code != http.StatusAccepted || v.ID == "" || v.Status != string(StatusQueued) {
		t.Fatalf("submit: code=%d view=%+v", code, v)
	}
	done := waitDone(t, ts.URL, v.ID)
	if done.Status != string(StatusDone) {
		t.Fatalf("job failed: %+v", done)
	}
	if done.Leaky == nil || !*done.Leaky {
		t.Errorf("fake report is leaky, view says %+v", done.Leaky)
	}
	if done.SimCycles != 1234 || done.Iterations != 8 {
		t.Errorf("view stats: %+v", done)
	}
	wantArts := []string{"digest", "heatmap", "heatmap.html", "provenance", "provenance.html", "report", "trace"}
	if fmt.Sprint(done.Artifacts) != fmt.Sprint(wantArts) {
		t.Errorf("artifacts %v want %v", done.Artifacts, wantArts)
	}

	// Every artifact downloads with its content type and parses.
	for _, art := range wantArts {
		resp, err := http.Get(ts.URL + "/api/v1/jobs/" + v.ID + "/" + art)
		if err != nil {
			t.Fatal(err)
		}
		body := new(bytes.Buffer)
		_, _ = body.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", art, resp.StatusCode)
			continue
		}
		ct := resp.Header.Get("Content-Type")
		if art == "heatmap.html" {
			if !strings.HasPrefix(ct, "text/html") || !strings.Contains(body.String(), "<svg") {
				t.Errorf("heatmap.html: ct=%q", ct)
			}
			continue
		}
		if art == "provenance.html" {
			if !strings.HasPrefix(ct, "text/html") || !strings.Contains(body.String(), "Leakage provenance") {
				t.Errorf("provenance.html: ct=%q", ct)
			}
			continue
		}
		if ct != "application/json" {
			t.Errorf("%s: ct=%q", art, ct)
		}
		var parsed map[string]any
		if err := json.Unmarshal(body.Bytes(), &parsed); err != nil {
			t.Errorf("%s: invalid JSON: %v", art, err)
		}
		if art == "trace" {
			if _, ok := parsed["traceEvents"]; !ok {
				t.Error("trace artifact missing traceEvents")
			}
		}
	}

	// The job list includes the finished job.
	resp, err := http.Get(ts.URL + "/api/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []jobView `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Jobs) != 1 || list.Jobs[0].ID != v.ID {
		t.Errorf("list: %+v", list)
	}

	// /metrics is Prometheus text and carries the daemon series.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := new(bytes.Buffer)
	_, _ = metrics.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/plain") {
		t.Errorf("metrics content type %q", resp.Header.Get("Content-Type"))
	}
	for _, want := range []string{
		"msd_jobs_submitted_total 1",
		"msd_jobs_completed_total 1",
		"# TYPE msd_job_seconds histogram",
		"msd_job_seconds_count 1",
		"msd_jobs_inflight 0",
		"msd_queue_depth",
	} {
		if !strings.Contains(metrics.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Liveness/readiness and pprof respond.
	for path, want := range map[string]int{
		"/healthz":      http.StatusOK,
		"/readyz":       http.StatusOK,
		"/debug/pprof/": http.StatusOK,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s: %d want %d", path, resp.StatusCode, want)
		}
	}
}

func TestDaemonValidation(t *testing.T) {
	_, ts := newFakeServer(t, Config{}, nil)
	cases := []struct {
		name string
		body string
	}{
		{"empty", `{}`},
		{"both", `{"workload":"ME-NAIVE","source":"x"}`},
		{"unknown workload", `{"workload":"NOPE"}`},
		{"bad config", `{"source":"x","config":"huge"}`},
		{"bad runs", `{"source":"x","runs":-1}`},
		{"malformed", `{`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json",
			strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d want 400", tc.name, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/api/v1/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %d want 404", resp.StatusCode)
	}
}

func TestDaemonArtifactLifecycle(t *testing.T) {
	release := make(chan struct{})
	_, ts := newFakeServer(t, Config{Workers: 1}, func(*Job) (*core.Report, error) {
		<-release
		return fakeReport(), nil
	})
	v, _ := submitJob(t, ts.URL, JobRequest{Source: "fake"})

	// While the job runs, artifacts are a conflict, not a 404.
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + v.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("running artifact: %d want 409", resp.StatusCode)
	}
	close(release)
	waitDone(t, ts.URL, v.ID)

	resp, err = http.Get(ts.URL + "/api/v1/jobs/" + v.ID + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown artifact: %d want 404", resp.StatusCode)
	}
}

func TestDaemonQueueFullAndDrain(t *testing.T) {
	release := make(chan struct{})
	s, ts := newFakeServer(t, Config{Workers: 1, QueueSize: 1},
		func(*Job) (*core.Report, error) {
			<-release
			return fakeReport(), nil
		})

	// First job occupies the worker, second fills the queue; the third
	// submission must bounce with 503.
	first, code := submitJob(t, ts.URL, JobRequest{Source: "a"})
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d", code)
	}
	// Wait for the worker to pick up the first job so the queue is empty.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := http.Get(ts.URL + "/api/v1/jobs/" + first.ID)
		var v jobView
		_ = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if v.Status == string(StatusRunning) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, code = submitJob(t, ts.URL, JobRequest{Source: "b"}); code != http.StatusAccepted {
		t.Fatalf("second submit: %d", code)
	}
	if _, code = submitJob(t, ts.URL, JobRequest{Source: "c"}); code != http.StatusServiceUnavailable {
		t.Errorf("over-capacity submit: %d want 503", code)
	}

	// Drain finishes the queued work and flips readiness.
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz after drain: %d want 503", resp.StatusCode)
	}
	if _, code = submitJob(t, ts.URL, JobRequest{Source: "d"}); code != http.StatusServiceUnavailable {
		t.Errorf("submit after drain: %d want 503", code)
	}
	// Both accepted jobs completed during the drain.
	for _, id := range []string{"job-1", "job-2"} {
		v := waitDone(t, ts.URL, id)
		if v.Status != string(StatusDone) {
			t.Errorf("%s: %+v", id, v)
		}
	}
	// Drain is idempotent.
	if err := s.Drain(ctx); err != nil {
		t.Errorf("second drain: %v", err)
	}
}

func TestDaemonFailedJob(t *testing.T) {
	_, ts := newFakeServer(t, Config{}, func(*Job) (*core.Report, error) {
		return nil, fmt.Errorf("synthetic failure")
	})
	v, _ := submitJob(t, ts.URL, JobRequest{Source: "x"})
	done := waitDone(t, ts.URL, v.ID)
	if done.Status != string(StatusFailed) || !strings.Contains(done.Error, "synthetic failure") {
		t.Errorf("failed job view: %+v", done)
	}
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + v.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("failed-job artifact: %d want 404", resp.StatusCode)
	}
}

func TestDaemonEviction(t *testing.T) {
	_, ts := newFakeServer(t, Config{Workers: 1, MaxJobs: 2}, nil)
	var last jobView
	for i := 0; i < 3; i++ {
		v, code := submitJob(t, ts.URL, JobRequest{Source: "x"})
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, code)
		}
		last = waitDone(t, ts.URL, v.ID)
		_ = last
	}
	resp, err := http.Get(ts.URL + "/api/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []jobView `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Jobs) != 2 {
		t.Fatalf("retained %d jobs want 2: %+v", len(list.Jobs), list.Jobs)
	}
	if list.Jobs[0].ID != "job-2" || list.Jobs[1].ID != "job-3" {
		t.Errorf("eviction kept %s,%s want job-2,job-3",
			list.Jobs[0].ID, list.Jobs[1].ID)
	}
	resp, err = http.Get(ts.URL + "/api/v1/jobs/job-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted job: %d want 404", resp.StatusCode)
	}
}

// leakyLoopSource is the tiny secret-dependent square-and-multiply
// inner loop used for real end-to-end daemon runs.
const leakyLoopSource = `
	.text
_start:
	li   s2, 20
	roi.begin
loop:
	andi s3, s2, 1
	iter.begin s3
	mul  t0, s2, s2
	beqz s3, skip
	mul  t0, t0, s2
skip:
	iter.end
	addi s2, s2, -1
	bnez s2, loop
	roi.end
	li a0, 0
	li a7, 93
	ecall
`

// TestDaemonRealPipeline submits actual RV64 source and lets the real
// verification pipeline run it — the full submit → simulate → artifact
// path with no injected fakes.
func TestDaemonRealPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation in -short mode")
	}
	reg := telemetry.NewRegistry()
	srv, err := New(Config{Workers: 1, Metrics: reg})
	if err != nil {
		t.Fatalf("msd.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Drain(ctx)
	}()

	v, code := submitJob(t, ts.URL, JobRequest{
		Source: leakyLoopSource, Config: "small", Runs: 2, Warmup: 2,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	done := waitDone(t, ts.URL, v.ID)
	if done.Status != string(StatusDone) {
		t.Fatalf("real job: %+v", done)
	}
	if done.Leaky == nil || !*done.Leaky {
		t.Errorf("secret-dependent loop should be flagged leaky: %+v", done)
	}
	// The pipeline's own stage histograms land in the shared registry.
	text := reg.Snapshot().Prometheus()
	if !strings.Contains(text, "verify_stage_seconds") {
		t.Error("/metrics registry missing pipeline stage histograms")
	}
}

// BenchmarkMSDJobLatency measures end-to-end daemon job latency:
// HTTP submit of real source through simulation, analysis, artifact
// rendering, and the status poll observing completion.
func BenchmarkMSDJobLatency(b *testing.B) {
	s, err := New(Config{Workers: 1, MaxJobs: 4})
	if err != nil {
		b.Fatalf("msd.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	}()

	body, _ := json.Marshal(JobRequest{
		Source: leakyLoopSource, Config: "small", Runs: 2, Warmup: 2,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json",
			bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var v jobView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			b.Fatalf("submit: %d", resp.StatusCode)
		}
		for {
			resp, err := http.Get(ts.URL + "/api/v1/jobs/" + v.ID)
			if err != nil {
				b.Fatal(err)
			}
			var st jobView
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if st.Status == string(StatusDone) {
				break
			}
			if st.Status == string(StatusFailed) {
				b.Fatalf("job failed: %s", st.Error)
			}
			time.Sleep(time.Millisecond)
		}
	}
}
