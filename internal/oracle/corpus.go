package oracle

import "microsampler/internal/trace"

// Corpus returns the built-in ground-truth corpus: thirteen leaky/safe
// pairs spanning every case-study family in internal/workloads plus
// adversarial pairs where the program is held fixed and a single core
// optimisation (fast bypass, data-dependent divide, TAGE predictor,
// stride prefetcher) or a metamorphic transform (dead constant-time
// padding) separates the twins.
//
// Labels are deliberately conservative: MustFlag lists only units whose
// flagging is a headline result of the paper (or of the case study's
// construction), MustClean only units whose cleanliness is; borderline
// units are left unconstrained so the corpus encodes ground truth, not
// incidental simulator behaviour.
func Corpus() []Entry {
	return []Entry{
		// Pair 1 — modexp-mul: the Fig. 1 walkthrough. Square-and-multiply
		// with a secret-dependent multiply vs the BearSSL byte-masked
		// conditional copy (Listing 6).
		{
			Name: "me-naive", Pair: "modexp-mul", Workload: "ME-NAIVE",
			WantLeaky:   true,
			MustFlag:    []trace.Unit{trace.EUUMUL, trace.SQADDR},
			LeakRegions: [][2]string{{"mr_skip_begin", "mr_skip_end"}},
			Notes:       "Listing 1: secret-dependent multiply; EUU-MUL activity separates the key bits",
		},
		{
			Name: "me-v2-safe", Pair: "modexp-mul", Workload: "ME-V2-SAFE",
			WantLeaky: false,
			Notes:     "Listing 6: BearSSL masked conditional copy, constant time by construction",
		},

		// Pair 2 — condcopy-branch: the compiler vulnerability (Listing 4)
		// vs a branchless OpenSSL select.
		{
			Name: "me-v1-cv", Pair: "condcopy-branch", Workload: "ME-V1-CV",
			WantLeaky: true,
			MustFlag:  []trace.Unit{trace.SQADDR, trace.SQPC, trace.ROBPC, trace.EUUALU},
			LeakRegions: [][2]string{
				{"mr_skip_begin", "mr_skip_end"},
				{"ccopy_cv", "do_exit"},
			},
			Notes: "Listing 4: compiled-in unbalanced branch leaks through control flow",
		},
		{
			Name: "ct-select-64", Pair: "condcopy-branch", Workload: "constant_time_select_64",
			WantLeaky: false,
			Notes:     "Table V: branchless 64-bit select primitive",
		},

		// Pair 3 — condcopy-addr: the microarchitectural vulnerability
		// (Listing 5, secret-dependent addresses, branchless) vs a
		// constant-time table scan.
		{
			Name: "me-v1-mv", Pair: "condcopy-addr", Workload: "ME-V1-MV",
			WantLeaky: true,
			MustFlag: []trace.Unit{
				trace.SQADDR, trace.LFBADDR, trace.NLPADDR,
				trace.CACHEADDR, trace.TLBADDR, trace.MSHRADDR,
			},
			MustClean: []trace.Unit{
				trace.SQPC, trace.LQPC, trace.ROBPC,
				trace.EUUALU, trace.EUUMUL, trace.EUUDIV,
			},
			LeakRegions: [][2]string{
				{"mr_skip_begin", "mr_skip_end"},
				{"ccopy_mv", "do_exit"},
			},
			Notes: "Listing 5: pointer select leaks only through address-observing units",
		},
		{
			Name: "ct-lookup", Pair: "condcopy-addr", Workload: "constant_time_lookup",
			WantLeaky: false,
			Notes:     "Table V: full-scan table lookup touches every entry regardless of index",
		},

		// Pair 4 — fast-bypass (adversarial): identical program, the
		// Section VII-B core optimisation flips the verdict.
		{
			Name: "me-v2-fb", Pair: "fast-bypass", Workload: "ME-V2-SAFE",
			FastBypass: true,
			WantLeaky:  true,
			MustFlag:   []trace.Unit{trace.SQADDR, trace.EUUALU},
			LeakRegions: [][2]string{
				{"mr_skip_begin", "mr_skip_end"},
				{"ccopy_safe", "do_exit"},
			},
			Notes: "Section VII-B: rename-time AND folding makes the safe kernel leak",
		},
		{
			Name: "me-v2-safe-small", Pair: "fast-bypass", Workload: "ME-V2-SAFE",
			Small:     true,
			WantLeaky: false,
			Notes:     "same kernel, SmallBoom without fast bypass: clean",
		},

		// Pair 5 — divider (adversarial): identical branchless program,
		// an early-terminating divider reveals the operand width.
		{
			Name: "ct-div-earlyout", Pair: "divider", Workload: "CT-DIV",
			DataDepDivide: true,
			WantLeaky:     true,
			MustFlag:      []trace.Unit{trace.EUUDIV},
			LeakRegions:   [][2]string{{"sw_loop", "do_exit"}},
			Notes:         "third CT principle violated only when divide latency is operand-dependent",
		},
		{
			Name: "ct-div-fixed", Pair: "divider", Workload: "CT-DIV",
			WantLeaky: false,
			Notes:     "same program on the fixed-latency divider: clean",
		},

		// Pair 6 — table-cipher: T-table AES under cache pressure vs the
		// ARX cipher with no tables and no secret-dependent addresses.
		{
			Name: "aes-ttable", Pair: "table-cipher", Workload: "AES-TTABLE",
			WantLeaky: true,
			MustFlag: []trace.Unit{
				trace.LQADDR, trace.CACHEADDR, trace.MSHRADDR, trace.LFBADDR,
			},
			LeakRegions: [][2]string{{"aes_encrypt", "do_exit"}},
			Notes:       "key-distinguishing experiment: secret-indexed T-table loads",
		},
		{
			Name: "chacha20", Pair: "table-cipher", Workload: "CHACHA20",
			WantLeaky: false,
			Notes:     "ARX rounds only: same experiment finds nothing",
		},

		// Pair 7 — preload (partial countermeasure): preloading closes
		// the residency/timing channels but not the access pattern.
		{
			Name: "aes-preload", Pair: "preload", Workload: "AES-PRELOAD",
			WantLeaky: true,
			MustFlag:  []trace.Unit{trace.LQADDR, trace.CACHEADDR, trace.TLBADDR},
			MustClean: []trace.Unit{
				trace.MSHRADDR, trace.LFBADDR, trace.NLPADDR,
				trace.SQADDR, trace.ROBPC, trace.EUUDIV,
			},
			LeakRegions: [][2]string{{"aes_encrypt", "do_exit"}},
			Notes:       "table preload: misses gone, secret-dependent load addresses remain",
		},
		{
			Name: "ct-cond-swap", Pair: "preload", Workload: "constant_time_cond_swap_buff",
			WantLeaky: false,
			Notes:     "Table V: masked buffer swap, fixed access pattern",
		},

		// Pair 8 — window: fixed-window modexp with a secret-indexed
		// window lookup vs the scan-all-windows mitigation.
		{
			Name: "me-win4-lkup", Pair: "window", Workload: "ME-WIN4-LKUP",
			WantLeaky:   true,
			MustFlag:    []trace.Unit{trace.LQADDR, trace.CACHEADDR},
			LeakRegions: [][2]string{{"mw_skip_begin", "mw_skip_end"}},
			Notes:       "4-bit window table indexed by the secret window value",
		},
		{
			Name: "me-win4-safe", Pair: "window", Workload: "ME-WIN4-SAFE",
			WantLeaky: false,
			Notes:     "scans every window entry with a mask: clean",
		},

		// Pair 9 — memcmp: the transient-execution signature of a
		// dependent branch after a constant-time compare.
		{
			Name: "ct-mem-cmp", Pair: "memcmp", Workload: "CT-MEM-CMP",
			Runs:      6,
			WantLeaky: true,
			MustFlag:  []trace.Unit{trace.ROBPC},
			MustClean: []trace.Unit{trace.SQADDR, trace.CACHEADDR, trace.EUUALU},
			LeakRegions: [][2]string{
				{"sw_eq", "sw_join"},
				{"crypto_memcmp", "do_exit"},
			},
			Notes: "Listings 7/8: leak is confined to the reorder buffer's transient window",
		},
		{
			Name: "ct-eq", Pair: "memcmp", Workload: "constant_time_eq",
			WantLeaky: false,
			Notes:     "Table V: branchless equality, no dependent caller branch",
		},

		// Pair 10 — transient: Spectre-PHT bounds-check bypass vs a
		// branchless bignum compare.
		{
			Name: "spectre-pht", Pair: "transient", Workload: "SPECTRE-PHT",
			WantLeaky:   true,
			MustFlag:    []trace.Unit{trace.LQADDR, trace.CACHEADDR},
			MustClean:   []trace.Unit{trace.SQADDR, trace.EUUALU},
			LeakRegions: [][2]string{{"victim", "do_exit"}},
			Notes:       "architecturally invariant probe; transient loads separate the secret",
		},
		{
			Name: "ct-lt-bn", Pair: "transient", Workload: "constant_time_lt_bn",
			WantLeaky: false,
			Notes:     "Table V: branchless bignum less-than",
		},

		// Pair 11 — padding (metamorphic, adversarial): dead constant-time
		// instructions after each iter.begin must mask nothing and flag
		// nothing.
		{
			Name: "me-naive-padded", Pair: "padding", Workload: "ME-NAIVE",
			PadIters:    24,
			WantLeaky:   true,
			MustFlag:    []trace.Unit{trace.EUUMUL},
			LeakRegions: [][2]string{{"mr_skip_begin", "mr_skip_end"}},
			Notes:       "padding must not mask the secret-dependent multiply",
		},
		{
			Name: "me-v2-safe-padded", Pair: "padding", Workload: "ME-V2-SAFE",
			PadIters:  24,
			WantLeaky: false,
			Notes:     "padding a safe kernel must not create an association",
		},

		// Pair 12 — predictor (adversarial): identical program, the
		// predictor model flips the verdict. The secret influences only
		// the deep branch history of a perfectly predicted probe branch:
		// invisible to gshare's 12-bit window, observable as TAGE
		// provider metadata.
		{
			Name: "tage-hist", Pair: "predictor", Workload: "TAGE-HIST",
			TAGEPredictor: true,
			WantLeaky:     true,
			MustFlag:      []trace.Unit{trace.TAGEPRED},
			MustClean: []trace.Unit{
				trace.SQADDR, trace.LQADDR, trace.CACHEADDR,
				trace.EUUALU, trace.EUUDIV,
			},
			LeakRegions: [][2]string{{"pad12", "pb_skip"}},
			Notes:       "TAGE long-history tables expose a secret beyond gshare's window",
		},
		{
			Name: "tage-hist-gshare", Pair: "predictor", Workload: "TAGE-HIST",
			WantLeaky: false,
			Notes:     "same program under gshare: the secret is scrubbed before the window",
		},

		// Pair 13 — prefetcher (adversarial): identical branchless walk,
		// the stride prefetcher flips the verdict by chasing the stream
		// one stride past its end — onto a guard line that encodes the
		// walk direction. The next-line prefetcher is off in both twins
		// (it would prefetch the high guard in either direction).
		{
			Name: "spf-stream", Pair: "prefetcher", Workload: "SPF-STREAM",
			StridePrefetcher: true,
			NoNLP:            true,
			WantLeaky:        true,
			MustFlag:         []trace.Unit{trace.SPFADDR},
			MustClean: []trace.Unit{
				trace.SQADDR, trace.LQADDR, trace.ROBPC,
				trace.EUUALU, trace.TLBADDR,
			},
			LeakRegions: [][2]string{{"sw_loop", "do_exit"}},
			Notes:       "stride prefetcher runahead reveals the walk direction via the guard lines",
		},
		{
			Name: "spf-stream-none", Pair: "prefetcher", Workload: "SPF-STREAM",
			NoNLP:     true,
			WantLeaky: false,
			Notes:     "same walk with no prefetcher: every observable is direction-independent",
		},
	}
}
