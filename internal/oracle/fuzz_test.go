package oracle

import (
	"fmt"
	"strings"
	"testing"

	"microsampler/internal/asm"
	"microsampler/internal/core"
	"microsampler/internal/sim"
)

// genRegs is the register pool a generated program computes in. s11
// holds the scratch base and s10 the iteration class; a0/a7 drive the
// exit sequence; everything else here is fair game.
var genRegs = []string{"s2", "s3", "s4", "s5", "s6", "s7", "t0", "t1", "t2"}

// genProgram derives a small random-but-valid labeled program from fuzz
// bytes: straight-line constant-time-shaped iterations (ALU ops, loads
// and stores at in-bounds scratch offsets, multiplies, divides) with
// class labels drawn from the input. Every output must assemble and
// terminate; anything else is a bug in the pipeline, not the input.
func genProgram(data []byte) string {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	var b strings.Builder
	b.WriteString("\t.text\n_start:\n\tla   s11, scratch\n")
	for i, r := range genRegs {
		fmt.Fprintf(&b, "\tli   %s, %d\n", r, int(next())+i*37+1)
	}
	iters := 2 + int(next())%6
	b.WriteString("\troi.begin\n")
	for it := 0; it < iters; it++ {
		fmt.Fprintf(&b, "\tli   s10, %d\n\titer.begin s10\n", int(next())%3)
		body := 1 + int(next())%8
		for j := 0; j < body; j++ {
			op := next()
			rd := genRegs[int(next())%len(genRegs)]
			ra := genRegs[int(next())%len(genRegs)]
			rb := genRegs[int(next())%len(genRegs)]
			switch op % 10 {
			case 0:
				fmt.Fprintf(&b, "\tadd  %s, %s, %s\n", rd, ra, rb)
			case 1:
				fmt.Fprintf(&b, "\txor  %s, %s, %s\n", rd, ra, rb)
			case 2:
				fmt.Fprintf(&b, "\tand  %s, %s, %s\n", rd, ra, rb)
			case 3:
				fmt.Fprintf(&b, "\tor   %s, %s, %s\n", rd, ra, rb)
			case 4:
				fmt.Fprintf(&b, "\taddi %s, %s, %d\n", rd, ra, int(next())%1024-512)
			case 5:
				fmt.Fprintf(&b, "\tslli %s, %s, %d\n", rd, ra, int(next())%64)
			case 6:
				fmt.Fprintf(&b, "\tmul  %s, %s, %s\n", rd, ra, rb)
			case 7:
				fmt.Fprintf(&b, "\tdivu %s, %s, %s\n", rd, ra, rb)
			case 8:
				fmt.Fprintf(&b, "\tld   %s, %d(s11)\n", rd, int(next())%32*8)
			case 9:
				fmt.Fprintf(&b, "\tsd   %s, %d(s11)\n", ra, int(next())%32*8)
			}
		}
		b.WriteString("\titer.end\n")
	}
	b.WriteString("\troi.end\n\tli   a0, 0\n\tli   a7, 93\n\tecall\n")
	b.WriteString("\t.data\n\t.align 6\nscratch: .zero 256\n")
	return b.String()
}

// FuzzPipeline pushes generated programs through the full assemble ->
// simulate -> snapshot -> stats pipeline and asserts the two invariants
// every refactor must preserve: no panics on valid input, and repeated
// runs produce byte-identical detection evidence.
func FuzzPipeline(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte("divide-heavy\x07\x77\x77\x77\x77\x77\x77\x77\x77"))
	f.Add([]byte{0xFF, 0x00, 0x80, 0x08, 0x88, 0x44, 0x22, 0x11, 0x99, 0xAA, 0xBB, 0xCC})
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		src := genProgram(data)
		if _, err := asm.Assemble(src); err != nil {
			t.Fatalf("generated program does not assemble: %v\n%s", err, src)
		}
		w := core.Workload{Name: "fuzz", Source: src}
		opts := core.Options{
			Config:    sim.SmallBoom(),
			Runs:      1,
			Warmup:    core.NoWarmup,
			MaxCycles: 200_000,
		}
		rep1, err := core.Verify(w, opts)
		if err != nil {
			t.Fatalf("verify: %v\n%s", err, src)
		}
		rep2, err := core.Verify(w, opts)
		if err != nil {
			t.Fatalf("re-verify: %v", err)
		}
		fp1, fp2 := Fingerprint(rep1), Fingerprint(rep2)
		if fp1 != fp2 {
			t.Errorf("pipeline not deterministic: %s vs %s\n%s", fp1, fp2, src)
		}
		if len(rep1.Iterations) == 0 {
			t.Error("generated program produced no labeled iterations")
		}
		for _, u := range rep1.Units {
			if u.Assoc.V < 0 || u.Assoc.V > 1 {
				t.Errorf("unit %s: Cramér's V %v out of [0,1]", u.Unit, u.Assoc.V)
			}
			if u.Assoc.P < 0 || u.Assoc.P > 1 {
				t.Errorf("unit %s: p-value %v out of [0,1]", u.Unit, u.Assoc.P)
			}
			if u.StoreNoTiming.Unique() > u.Store.Unique() {
				t.Errorf("unit %s: timing removal increased snapshot diversity (%d > %d)",
					u.Unit, u.StoreNoTiming.Unique(), u.Store.Unique())
			}
		}
	})
}
