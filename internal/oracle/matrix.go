package oracle

import (
	"fmt"

	"microsampler/internal/core"
	"microsampler/internal/trace"
	"microsampler/internal/workloads"
)

// MatrixExpectation is a config-flip twin expressed as a grid: one
// workload swept over a configuration grid in which every cell has a
// labeled expected verdict. Where the corpus' adversarial pairs pin two
// hand-picked configurations, a matrix expectation labels the whole
// grid — the verdict must flip on exactly the leak-inducing axis value
// and nowhere else (0 false positives, 0 false negatives per cell).
type MatrixExpectation struct {
	// Name identifies the expectation; Workload is the workloads.ByName
	// key of the fixed program.
	Name     string
	Workload string
	// Grid is the textual grid spec swept (core.ParseGridSpec).
	Grid string
	// LeakyAxis/LeakyValue define the expected verdict of every cell: a
	// cell is expected leaky iff its value on LeakyAxis is LeakyValue.
	LeakyAxis  string
	LeakyValue string
	// MustFlag units must be flagged in every leaky cell (the leak's
	// signature must not wander to a different unit as the orthogonal
	// axes vary).
	MustFlag []trace.Unit
	// Runs per cell and warmup iterations per run (defaults 4 and 4).
	Runs   int
	Warmup int
	// Notes documents the flip.
	Notes string
}

// MatrixTwins returns the ground-truth grid expectations: one per
// adversarial config-flip pair of the corpus, each holding the program
// fixed while the grid flips the leak-inducing hardware axis (and, for
// the predictor flip, sweeps two orthogonal axes to assert the flip is
// independent of them).
func MatrixTwins() []MatrixExpectation {
	return []MatrixExpectation{
		{
			Name: "fastbypass-flip", Workload: "ME-V2-SAFE",
			Grid:      "fastbypass=off,on",
			LeakyAxis: "fastbypass", LeakyValue: "on",
			MustFlag: []trace.Unit{trace.SQADDR, trace.EUUALU},
			Notes:    "Section VII-B: rename-time AND folding flips the safe kernel",
		},
		{
			Name: "divider-flip", Workload: "CT-DIV",
			Grid:      "divider=fixed,datadep",
			LeakyAxis: "divider", LeakyValue: "datadep",
			MustFlag: []trace.Unit{trace.EUUDIV},
			Notes:    "early-terminating divider reveals the operand width",
		},
		{
			Name: "predictor-flip", Workload: "TAGE-HIST",
			Grid:      "divider=fixed,datadep;prefetch=none,nlp,stride;predictor=gshare,tage",
			LeakyAxis: "predictor", LeakyValue: "tage",
			MustFlag: []trace.Unit{trace.TAGEPRED},
			Notes:    "TAGE long-history metadata leaks on every divider/prefetch combination, gshare never does",
		},
		{
			Name: "prefetcher-flip", Workload: "SPF-STREAM",
			Grid:      "prefetch=none,stride",
			LeakyAxis: "prefetch", LeakyValue: "stride",
			MustFlag: []trace.Unit{trace.SPFADDR},
			Notes:    "stride-prefetcher runahead onto the guard lines reveals the walk direction",
		},
	}
}

func (x MatrixExpectation) withDefaults() MatrixExpectation {
	if x.Runs == 0 {
		x.Runs = 4
	}
	if x.Warmup == 0 {
		x.Warmup = 4
	}
	return x
}

// ExpectLeaky returns the labeled verdict for one cell of the
// expectation's grid.
func (x MatrixExpectation) ExpectLeaky(c core.Cell) bool {
	for i, a := range c.Axes {
		if a == x.LeakyAxis {
			return c.Values[i] == x.LeakyValue
		}
	}
	return false
}

// RunMatrixExpectation sweeps the expectation's grid under one seed and
// scores every cell against its label. Violations name the cell and the
// disagreement; an empty slice means the whole grid reproduced.
func RunMatrixExpectation(x MatrixExpectation, seed int, th Thresholds, cellParallel int) (*core.Matrix, []string, error) {
	x = x.withDefaults()
	th = th.withDefaults()
	g, err := core.ParseGridSpec(x.Grid)
	if err != nil {
		return nil, nil, fmt.Errorf("oracle %s: %w", x.Name, err)
	}
	w, err := workloads.ByName(x.Workload)
	if err != nil {
		return nil, nil, fmt.Errorf("oracle %s: %w", x.Name, err)
	}
	opts := core.MatrixOptions{Grid: g, CellParallel: cellParallel}
	opts.Runs = x.Runs
	opts.Warmup = x.Warmup
	opts.SeedOffset = seed * SeedStride
	m, err := core.VerifyMatrix(w, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("oracle %s seed %d: %w", x.Name, seed, err)
	}
	var violations []string
	for _, c := range m.Cells {
		if c.Err != "" {
			violations = append(violations, fmt.Sprintf("cell %s: error: %s", c.Name, c.Err))
			continue
		}
		want := x.ExpectLeaky(c.Cell)
		// Re-score at the requested thresholds from the cell's report so
		// custom thresholds behave like RunEntry's.
		flagged := map[trace.Unit]bool{}
		for _, u := range c.Report.Units {
			if flaggedAt(u.Assoc, th) {
				flagged[u.Unit] = true
			}
		}
		leaky := len(flagged) > 0
		switch {
		case leaky && !want:
			violations = append(violations,
				fmt.Sprintf("cell %s: false positive: safe cell flagged", c.Name))
		case !leaky && want:
			violations = append(violations,
				fmt.Sprintf("cell %s: false negative: leaky cell not flagged", c.Name))
		}
		if want && leaky {
			for _, u := range x.MustFlag {
				if !flagged[u] {
					violations = append(violations,
						fmt.Sprintf("cell %s: unit %s must be flagged but is clean", c.Name, u))
				}
			}
		}
	}
	return m, violations, nil
}
