package oracle

import (
	"testing"

	"microsampler/internal/core"
	"microsampler/internal/report"
	"microsampler/internal/trace"
	"microsampler/internal/workloads"
)

func TestMatrixTwinsShape(t *testing.T) {
	seen := map[string]bool{}
	for _, x := range MatrixTwins() {
		if x.Name == "" || seen[x.Name] {
			t.Fatalf("matrix twin with empty or duplicate name %q", x.Name)
		}
		seen[x.Name] = true
		g, err := core.ParseGridSpec(x.Grid)
		if err != nil {
			t.Errorf("%s: bad grid: %v", x.Name, err)
			continue
		}
		if _, err := workloads.ByName(x.Workload); err != nil {
			t.Errorf("%s: %v", x.Name, err)
		}
		cells := g.Cells()
		var leaky, safe int
		axisSwept := false
		for _, c := range cells {
			for i, a := range c.Axes {
				if a == x.LeakyAxis && c.Values[i] == x.LeakyValue {
					axisSwept = true
				}
			}
			if x.ExpectLeaky(c) {
				leaky++
			} else {
				safe++
			}
		}
		if !axisSwept {
			t.Errorf("%s: grid never reaches %s=%s", x.Name, x.LeakyAxis, x.LeakyValue)
		}
		if leaky == 0 || safe == 0 {
			t.Errorf("%s: grid has %d leaky / %d safe cells; a flip needs both", x.Name, leaky, safe)
		}
		if len(x.MustFlag) == 0 {
			t.Errorf("%s: config-flip twin without a MustFlag signature", x.Name)
		}
	}
	if len(seen) < 4 {
		t.Errorf("MatrixTwins has %d expectations, want one per adversarial pair (4)", len(seen))
	}
}

// TestMatrixTwins replays every config-flip pair as a grid sweep: each
// expectation's grid must reproduce the flip exactly — leaky on the
// leak-inducing axis value, clean everywhere else, signature unit
// flagged — with zero per-cell false positives or negatives. The
// predictor expectation's 12-cell grid additionally asserts the flip is
// orthogonal to the divider and prefetcher axes.
func TestMatrixTwins(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid sweeps are not -short")
	}
	for _, x := range MatrixTwins() {
		x := x
		t.Run(x.Name, func(t *testing.T) {
			t.Parallel()
			m, violations, err := RunMatrixExpectation(x, 0, Thresholds{}, core.ParallelAuto)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range violations {
				t.Error(v)
			}
			if t.Failed() {
				for _, c := range m.Cells {
					t.Logf("cell %-50s leaky=%v maxV=%.3f flagged=%v err=%q",
						c.Name, c.Leaky, c.MaxV, flaggedNames(c), c.Err)
				}
			}
		})
	}
}

func flaggedNames(c core.CellResult) []string {
	names := make([]string, 0, len(c.Flagged))
	for _, f := range c.Flagged {
		names = append(names, f.Unit)
	}
	return names
}

// TestMatrixProvenanceLocalizes asserts the two new unit models produce
// localized provenance through the matrix path: in the TAGE and
// stride-prefetcher leaky cells, the matrix artifact's top attribution
// must fall inside the corpus' labeled leak regions.
func TestMatrixProvenanceLocalizes(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid sweeps are not -short")
	}
	cases := []struct {
		twin   string
		corpus string // corpus entry carrying the LeakRegions labels
		unit   trace.Unit
	}{
		{"predictor-flip", "tage-hist", trace.TAGEPRED},
		{"prefetcher-flip", "spf-stream", trace.SPFADDR},
	}
	entries := map[string]Entry{}
	for _, e := range Corpus() {
		entries[e.Name] = e
	}
	twins := map[string]MatrixExpectation{}
	for _, x := range MatrixTwins() {
		twins[x.Name] = x
	}
	for _, c := range cases {
		c := c
		t.Run(c.twin, func(t *testing.T) {
			t.Parallel()
			x, ok := twins[c.twin]
			if !ok {
				t.Fatalf("no matrix twin %q", c.twin)
			}
			e, ok := entries[c.corpus]
			if !ok {
				t.Fatalf("no corpus entry %q", c.corpus)
			}
			m, _, err := RunMatrixExpectation(x, 0, Thresholds{}, core.ParallelAuto)
			if err != nil {
				t.Fatal(err)
			}
			art := report.BuildMatrix(m, 3)
			checked := 0
			for i, cell := range art.Cells {
				if !x.ExpectLeaky(cell.Cell) || cell.Err != "" {
					continue
				}
				if len(cell.TopProvenance) == 0 {
					t.Errorf("cell %s: leaky but no provenance in artifact", cell.Name)
					continue
				}
				rep := m.Cells[i].Report
				regions, err := e.ResolveLeakRegions(rep.Program)
				if err != nil {
					t.Fatal(err)
				}
				top := cell.TopProvenance[0]
				inside := false
				for _, r := range regions {
					if top.PC >= r[0] && top.PC < r[1] {
						inside = true
					}
				}
				if !inside {
					t.Errorf("cell %s: top attribution %s pc=%#x (%s) outside leak regions %v",
						cell.Name, top.Unit, top.PC, top.Symbol, regions)
				}
				if top.Unit != c.unit.String() {
					t.Errorf("cell %s: top attribution unit %s, want %s", cell.Name, top.Unit, c.unit)
				}
				checked++
			}
			if checked == 0 {
				t.Error("no leaky cells checked")
			}
		})
	}
}

// TestMatrixDeterminism is the matrix metamorphic property: the
// artifact JSON must be byte-identical across repeated sweeps and
// across every parallelism setting — cell order, verdicts, statistics
// and provenance are all functions of (workload, grid, seed) only.
func TestMatrixDeterminism(t *testing.T) {
	x := MatrixExpectation{
		Name: "det", Workload: "TAGE-HIST",
		Grid:      "prefetch=none,stride;predictor=gshare,tage",
		LeakyAxis: "predictor", LeakyValue: "tage",
	}
	render := func(cellParallel, parallel int) string {
		x := x.withDefaults()
		g, err := core.ParseGridSpec(x.Grid)
		if err != nil {
			t.Fatal(err)
		}
		w, err := workloads.ByName(x.Workload)
		if err != nil {
			t.Fatal(err)
		}
		opts := core.MatrixOptions{Grid: g, CellParallel: cellParallel}
		opts.Runs = x.Runs
		opts.Warmup = x.Warmup
		opts.Parallel = parallel
		m, err := core.VerifyMatrix(w, opts)
		if err != nil {
			t.Fatal(err)
		}
		j, err := report.BuildMatrix(m, 3).JSON()
		if err != nil {
			t.Fatal(err)
		}
		return string(j)
	}
	sequential := render(1, 1)
	if again := render(1, 1); again != sequential {
		t.Error("matrix JSON differs across two identical sequential sweeps")
	}
	if par := render(core.ParallelAuto, 2); par != sequential {
		t.Error("matrix JSON differs between sequential and parallel sweeps")
	}
}
