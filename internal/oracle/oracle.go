// Package oracle is MicroSampler's detection-quality harness: a labeled
// ground-truth corpus of (workload, expected verdict) pairs, the
// machinery to replay it under independent input seeds, and a
// machine-readable quality artifact with false-positive/false-negative
// rates and Wilson confidence intervals. The paper's core claim is
// detection quality — every known-leaky variant is flagged (V > 0.5,
// p < 0.05) and the constant-time baselines produce zero false
// positives (Tables V–VII) — and this package makes that claim a
// CI-enforced invariant: any refactor of the simulator, snapshot, or
// stats layers that changes a verdict fails the `mstest run` gate.
package oracle

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"microsampler/internal/asm"
	"microsampler/internal/core"
	"microsampler/internal/sim"
	"microsampler/internal/stats"
	"microsampler/internal/trace"
	"microsampler/internal/workloads"
)

// SeedStride is the SeedOffset distance between consecutive oracle
// seeds. Workload Setup functions derive their input RNG from the run
// index, so seed s draws run indices [s*SeedStride, s*SeedStride+Runs),
// disjoint from every other seed for any Runs below the stride.
const SeedStride = 100

// Thresholds are the verdict cut-offs applied by the oracle when
// classifying a unit as flagged. The zero value selects the paper's
// defaults (V > 0.5, p < 0.05).
type Thresholds struct {
	V float64 // Cramér's V strength threshold (exclusive)
	P float64 // chi-squared p-value significance threshold (exclusive)
}

func (t Thresholds) withDefaults() Thresholds {
	if t.V == 0 {
		t.V = stats.DefaultVThreshold
	}
	if t.P == 0 {
		t.P = stats.DefaultPThreshold
	}
	return t
}

// flaggedAt applies the verdict rule at custom thresholds.
func flaggedAt(a stats.Association, th Thresholds) bool {
	return a.V > th.V && a.P < th.P
}

// Entry is one labeled corpus element: a workload plus the core
// configuration it runs on and the expected detection outcome.
type Entry struct {
	// Name uniquely identifies the entry within the corpus.
	Name string
	// Pair groups the leaky/safe counterparts of one case study.
	Pair string
	// Workload is the workloads.ByName key of the program under test.
	Workload string
	// Small selects the SmallBoom configuration (default MegaBoom).
	Small bool
	// FastBypass, DataDepDivide, TAGEPredictor and StridePrefetcher
	// toggle the leakage-inducing core optimisations; the adversarial
	// pairs flip exactly one of these between the leaky and safe twin.
	// NoNLP disables the next-line prefetcher, holding it constant when
	// a pair flips the stride prefetcher.
	FastBypass       bool
	DataDepDivide    bool
	TAGEPredictor    bool
	StridePrefetcher bool
	NoNLP            bool
	// PadIters, when positive, injects that many dead constant-time
	// instructions after each iter.begin marker (see PadDead) — the
	// metamorphic padding transform materialised as a corpus entry.
	PadIters int
	// Runs per seed and warmup iterations per run (defaults 4 and 4).
	Runs   int
	Warmup int
	// WantLeaky is the ground-truth verdict.
	WantLeaky bool
	// MustFlag units must be flagged on every seed (leaky entries);
	// MustClean units must never be flagged. Units outside both sets
	// are unconstrained, keeping the labels robust to borderline units.
	MustFlag  []trace.Unit
	MustClean []trace.Unit
	// LeakRegions are the known secret-dependent instruction ranges of
	// a leaky entry, as [startSymbol, endSymbol) label pairs over the
	// workload source. They are the ground truth for instruction-level
	// provenance: the top-ranked provenance PC must fall inside one of
	// them (see report.BuildProvenance). Safe entries leave this nil.
	LeakRegions [][2]string
	// Notes documents what the entry exercises.
	Notes string
}

func (e Entry) withDefaults() Entry {
	if e.Runs == 0 {
		e.Runs = 4
	}
	if e.Warmup == 0 {
		e.Warmup = 4
	}
	return e
}

// ConfigName returns the entry's core configuration name.
func (e Entry) ConfigName() string {
	if e.Small {
		return sim.SmallBoom().Name
	}
	return sim.MegaBoom().Name
}

// Build constructs the entry's workload (with padding applied) and
// simulator configuration.
func (e Entry) Build() (core.Workload, sim.Config, error) {
	e = e.withDefaults()
	w, err := workloads.ByName(e.Workload)
	if err != nil {
		return core.Workload{}, sim.Config{}, fmt.Errorf("oracle %s: %w", e.Name, err)
	}
	if e.PadIters > 0 {
		src, err := PadDead(w.Source, e.PadIters)
		if err != nil {
			return core.Workload{}, sim.Config{}, fmt.Errorf("oracle %s: %w", e.Name, err)
		}
		w.Source = src
	}
	cfg := sim.MegaBoom()
	if e.Small {
		cfg = sim.SmallBoom()
	}
	cfg.FastBypass = e.FastBypass
	cfg.DataDepDivide = e.DataDepDivide
	cfg.TAGEPredictor = e.TAGEPredictor
	cfg.StridePrefetcher = e.StridePrefetcher
	if e.NoNLP {
		cfg.NextLinePrefetcher = false
	}
	return w, cfg, nil
}

// ResolveLeakRegions maps the entry's LeakRegions label pairs to
// [start, end) address ranges of the assembled program. Every label
// must resolve and every range must be non-empty; a corpus entry whose
// labels drift out of its workload source is a bug, not a skip.
func (e Entry) ResolveLeakRegions(prog *asm.Program) ([][2]uint64, error) {
	regions := make([][2]uint64, 0, len(e.LeakRegions))
	for _, r := range e.LeakRegions {
		lo, ok := prog.Symbol(r[0])
		if !ok {
			return nil, fmt.Errorf("oracle %s: leak region start %q not in program", e.Name, r[0])
		}
		hi, ok := prog.Symbol(r[1])
		if !ok {
			return nil, fmt.Errorf("oracle %s: leak region end %q not in program", e.Name, r[1])
		}
		if lo >= hi {
			return nil, fmt.Errorf("oracle %s: leak region [%s, %s) is empty (%#x >= %#x)",
				e.Name, r[0], r[1], lo, hi)
		}
		regions = append(regions, [2]uint64{lo, hi})
	}
	return regions, nil
}

// SeedResult is the outcome of one entry under one seed.
type SeedResult struct {
	Seed    int      `json:"seed"`
	Leaky   bool     `json:"leaky"`
	Flagged []string `json:"flaggedUnits,omitempty"`
	// MaxV is the largest statistically significant per-unit Cramér's V
	// (0 when no unit is significant): the margin of the verdict.
	MaxV     float64 `json:"maxSignificantV"`
	MaxVUnit string  `json:"maxVUnit,omitempty"`
	// Fingerprint hashes the detection-relevant report content; equal
	// inputs must produce equal fingerprints (metamorphic property 1).
	Fingerprint string `json:"fingerprint"`
	// Violations lists ground-truth disagreements: a false verdict or a
	// MustFlag/MustClean unit on the wrong side.
	Violations []string `json:"violations,omitempty"`
}

// RunEntry verifies one corpus entry under one seed and scores the
// outcome against the entry's labels at the given thresholds.
func RunEntry(e Entry, seed int, th Thresholds, parallel int) (*SeedResult, error) {
	e = e.withDefaults()
	th = th.withDefaults()
	w, cfg, err := e.Build()
	if err != nil {
		return nil, err
	}
	rep, err := core.Verify(w, core.Options{
		Config:     cfg,
		Runs:       e.Runs,
		Warmup:     e.Warmup,
		Parallel:   parallel,
		SeedOffset: seed * SeedStride,
	})
	if err != nil {
		return nil, fmt.Errorf("oracle %s seed %d: %w", e.Name, seed, err)
	}
	return scoreReport(e, seed, th, rep), nil
}

// scoreReport derives the seed verdict from a finished report.
func scoreReport(e Entry, seed int, th Thresholds, rep *core.Report) *SeedResult {
	res := &SeedResult{Seed: seed, Fingerprint: Fingerprint(rep)}
	flagged := make(map[trace.Unit]bool, len(rep.Units))
	for _, u := range rep.Units {
		sig := u.Assoc.P < th.P
		if sig && u.Assoc.V > res.MaxV {
			res.MaxV = u.Assoc.V
			res.MaxVUnit = u.Unit.String()
		}
		if flaggedAt(u.Assoc, th) {
			flagged[u.Unit] = true
			res.Flagged = append(res.Flagged, u.Unit.String())
		}
	}
	res.Leaky = len(flagged) > 0
	if res.Leaky != e.WantLeaky {
		kind := "false positive: safe workload flagged"
		if e.WantLeaky {
			kind = "false negative: leaky workload not flagged"
		}
		res.Violations = append(res.Violations, kind)
	}
	for _, u := range e.MustFlag {
		if !flagged[u] {
			res.Violations = append(res.Violations,
				fmt.Sprintf("unit %s must be flagged but is clean", u))
		}
	}
	for _, u := range e.MustClean {
		if flagged[u] {
			res.Violations = append(res.Violations,
				fmt.Sprintf("unit %s must be clean but is flagged", u))
		}
	}
	return res
}

// FalseVerdict reports whether the seed's overall verdict disagrees
// with the ground-truth label (as opposed to a per-unit violation).
func (r *SeedResult) FalseVerdict(wantLeaky bool) bool {
	return r.Leaky != wantLeaky
}

// Fingerprint returns a stable hash of the detection-relevant content
// of a report: per-unit association statistics (timed and timing-free),
// snapshot population counts, iteration labels and cycle counts, and
// the simulator's event counters. Wall-clock fields are excluded, so
// two runs of the same workload with the same inputs must produce
// byte-identical fingerprints — the determinism metamorphic property.
func Fingerprint(rep *core.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload=%s config=%s runs=%d\n", rep.Workload, rep.Config, rep.Runs)
	for _, u := range rep.Units {
		fmt.Fprintf(&b, "unit=%s %s noT=%s uniq=%d uniqNoT=%d\n",
			u.Unit, assocKey(u.Assoc), assocKey(u.AssocNoTiming),
			u.Store.Unique(), u.StoreNoTiming.Unique())
	}
	fmt.Fprintf(&b, "iters=%d\n", len(rep.Iterations))
	for _, it := range rep.Iterations {
		fmt.Fprintf(&b, "iter class=%d cycles=%d\n", it.Class, it.Cycles)
	}
	fmt.Fprintf(&b, "sim cycles=%d instr=%d br=%d mp=%d dh=%d dm=%d tlb=%d pf=%d lsu=%d\n",
		rep.Sim.Cycles, rep.Sim.Instructions, rep.Sim.Branches, rep.Sim.BranchMispredicts,
		rep.Sim.DCacheHits, rep.Sim.DCacheMisses, rep.Sim.TLBMisses,
		rep.Sim.Prefetches, rep.Sim.LSUReplays)
	units := make([]string, 0, len(rep.Samples))
	for u, n := range rep.Samples {
		units = append(units, fmt.Sprintf("samples %s=%d", u, n))
	}
	sort.Strings(units)
	b.WriteString(strings.Join(units, "\n"))
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:16])
}

// assocKey renders an association's defining values with full float
// precision.
func assocKey(a stats.Association) string {
	return fmt.Sprintf("V=%x Vc=%x p=%x chi2=%x df=%d n=%d r=%d k=%d",
		a.V, a.VCorrected, a.P, a.Chi2, a.DF, a.N, a.Rows, a.Cols)
}

// PadDead inserts n dead constant-time instructions (nops) after every
// iter.begin marker of an assembly source. Padding is secret-independent
// and identical across iterations, so it must never flip a verdict in
// either direction — the metamorphic padding property. It returns an
// error when the source contains no iteration markers.
func PadDead(src string, n int) (string, error) {
	lines := strings.Split(src, "\n")
	pad := strings.Repeat("\tnop\n", n)
	pad = strings.TrimSuffix(pad, "\n")
	var out []string
	found := false
	for _, line := range lines {
		out = append(out, line)
		code := line
		if i := strings.IndexByte(code, '#'); i >= 0 {
			code = code[:i]
		}
		if strings.Contains(code, "iter.begin") {
			found = true
			out = append(out, pad)
		}
	}
	if !found {
		return "", fmt.Errorf("oracle: PadDead: source has no iter.begin markers")
	}
	return strings.Join(out, "\n"), nil
}
