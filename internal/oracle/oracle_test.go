package oracle

import (
	"bytes"
	"regexp"
	"strings"
	"testing"

	"microsampler/internal/asm"
	"microsampler/internal/core"
	"microsampler/internal/sim"
	"microsampler/internal/snapshot"
	"microsampler/internal/stats"
	"microsampler/internal/trace"
)

// TestCorpusShape pins the corpus invariants the acceptance criteria
// depend on: at least 8 pairs, unique names, every pair holding both a
// leaky and a safe twin, and every entry buildable (the workload
// exists, padding applies, the source assembles).
func TestCorpusShape(t *testing.T) {
	corpus := Corpus()
	names := make(map[string]bool)
	type pairSides struct{ leaky, safe bool }
	pairs := make(map[string]*pairSides)
	for _, e := range corpus {
		if names[e.Name] {
			t.Errorf("duplicate entry name %q", e.Name)
		}
		names[e.Name] = true
		p := pairs[e.Pair]
		if p == nil {
			p = &pairSides{}
			pairs[e.Pair] = p
		}
		if e.WantLeaky {
			p.leaky = true
		} else {
			p.safe = true
		}
		w, _, err := e.Build()
		if err != nil {
			t.Errorf("entry %s: %v", e.Name, err)
			continue
		}
		if _, err := asm.Assemble(w.Source); err != nil {
			t.Errorf("entry %s does not assemble: %v", e.Name, err)
		}
	}
	if len(pairs) < 8 {
		t.Errorf("corpus has %d pairs, want >= 8", len(pairs))
	}
	for name, p := range pairs {
		if !p.leaky || !p.safe {
			t.Errorf("pair %q lacks a leaky/safe twin (leaky=%v safe=%v)",
				name, p.leaky, p.safe)
		}
	}
}

// cheapEntry returns a corpus entry that verifies quickly, for tests
// that need real pipeline output.
func cheapEntry(t *testing.T, name string) Entry {
	t.Helper()
	for _, e := range Corpus() {
		if e.Name == name {
			return e
		}
	}
	t.Fatalf("corpus entry %q missing", name)
	return Entry{}
}

// TestSameSeedRunsAreByteIdentical is metamorphic property 1: repeating
// a verification with the same seed must reproduce the exact
// detection-relevant report content.
func TestSameSeedRunsAreByteIdentical(t *testing.T) {
	e := cheapEntry(t, "ct-div-earlyout")
	a, err := RunEntry(e, 1, Thresholds{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunEntry(e, 1, Thresholds{}, -1) // parallel must not change results
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Errorf("same-seed fingerprints differ: %s vs %s", a.Fingerprint, b.Fingerprint)
	}
	if a.Leaky != b.Leaky || a.MaxV != b.MaxV {
		t.Errorf("same-seed verdicts differ: %+v vs %+v", a, b)
	}
	c, err := RunEntry(e, 2, Thresholds{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint == a.Fingerprint {
		t.Error("distinct seeds produced identical fingerprints; seeds are not disjoint")
	}
}

// TestRelabelingInvariance is metamorphic property 2: permuting the
// secret-class labels of real verification evidence permutes the
// contingency table's rows but never changes — let alone creates — the
// measured association.
func TestRelabelingInvariance(t *testing.T) {
	e := cheapEntry(t, "ct-div-earlyout")
	w, cfg, err := e.Build()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Verify(w, core.Options{Config: cfg, Runs: 2, Warmup: 4})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, u := range rep.Units {
		if u.Assoc.N == 0 || u.Assoc.Rows < 2 {
			continue
		}
		orig := u.Table
		relabel := stats.NewTable()
		for _, entry := range u.Store.Entries() {
			for class, n := range entry.CountByClass {
				relabel.Add(class^1, entry.Hash, n) // swap classes 0 and 1
			}
		}
		a, b := orig.Analyze(), relabel.Analyze()
		if !closeTo(a.V, b.V) || !closeTo(a.Chi2, b.Chi2) || !closeTo(a.P, b.P) ||
			!closeTo(a.MI, b.MI) || a.DF != b.DF || a.N != b.N {
			t.Errorf("unit %s: association not relabeling-invariant:\n  %v\n  %v",
				u.Unit, a, b)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no unit had a multi-class table to relabel")
	}
}

func closeTo(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9
}

// TestPaddingPreservesSafeVerdict is metamorphic property 3 at test
// scale (the full-scale version is the corpus "padding" pair): dead
// constant-time instructions never flip a safe verdict.
func TestPaddingPreservesSafeVerdict(t *testing.T) {
	w, cfg, err := Entry{Name: "pad-test", Workload: "ME-V2-SAFE", Small: true, PadIters: 16}.Build()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Verify(w, core.Options{Config: cfg, Runs: 2, Warmup: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AnyLeak() {
		t.Error("padded safe kernel was flagged")
	}
}

func TestPadDead(t *testing.T) {
	src := "\tli s1, 0\n\titer.begin s1  # marker\n\tadd a0, a0, a0\n\titer.end\n"
	out, err := PadDead(src, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out, "\tnop"); got != 3 {
		t.Errorf("padded source has %d nops, want 3", got)
	}
	begin := strings.Index(out, "iter.begin")
	firstNop := strings.Index(out, "nop")
	end := strings.Index(out, "iter.end")
	if !(begin < firstNop && firstNop < end) {
		t.Errorf("padding must land inside the iteration window: %q", out)
	}
	if _, err := PadDead("# iter.begin only in a comment\n\tnop\n", 2); err == nil {
		t.Error("PadDead must reject sources without real iteration markers")
	}
}

// TestQualityArtifactDeterministic runs a corpus subset twice and
// requires byte-identical quality.json artifacts.
func TestQualityArtifactDeterministic(t *testing.T) {
	opts := Options{Seeds: 2, Match: regexp.MustCompile(`^divider$`)}
	q1, err := RunCorpus(Corpus(), opts)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := RunCorpus(Corpus(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := q1.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := q2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		i := 0
		for i < len(b1) && i < len(b2) && b1[i] == b2[i] {
			i++
		}
		lo, hi := i-80, i+80
		if lo < 0 {
			lo = 0
		}
		clip := func(b []byte) string {
			if hi > len(b) {
				return string(b[lo:])
			}
			return string(b[lo:hi])
		}
		t.Errorf("quality.json not deterministic across identical runs; first divergence at byte %d:\n--- run 1\n%s\n--- run 2\n%s",
			i, clip(b1), clip(b2))
	}
	if q1.Summary.Entries != 2 || q1.Summary.Trials != 4 {
		t.Errorf("divider subset: %+v", q1.Summary)
	}
	if !q1.Summary.Pass {
		t.Errorf("divider pair failed: %+v", q1.Summary)
	}
	back, err := ParseQuality(b1)
	if err != nil {
		t.Fatal(err)
	}
	if back.Summary != q1.Summary {
		t.Errorf("artifact round-trip changed summary: %+v vs %+v", back.Summary, q1.Summary)
	}
}

// TestDiffDetectsInjectedRegression perturbs the V threshold — the
// acceptance criterion's injected stats regression — and requires
// mstest's diff layer to flag the resulting verdict flips.
func TestDiffDetectsInjectedRegression(t *testing.T) {
	match := regexp.MustCompile(`^divider$`)
	baseline, err := RunCorpus(Corpus(), Options{Seeds: 2, Match: match})
	if err != nil {
		t.Fatal(err)
	}
	// A verdict threshold no association can exceed (V > 1 is
	// impossible) makes the leaky twin invisible: false negatives
	// where the baseline had none.
	broken, err := RunCorpus(Corpus(), Options{
		Seeds: 2, Match: match, Thresholds: Thresholds{V: 1.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if broken.Summary.FalseNegatives == 0 {
		t.Fatal("injected threshold perturbation did not produce false negatives")
	}
	d := Diff(baseline, broken, -1)
	if d.Clean() {
		t.Fatal("diff missed the injected regression")
	}
	joined := strings.Join(d.Regressions, "\n")
	for _, want := range []string{"thresholds changed", "false negatives rose", "verdict flipped"} {
		if !strings.Contains(joined, want) {
			t.Errorf("diff output missing %q:\n%s", want, joined)
		}
	}
	// The reverse direction must be symmetric-clean: comparing the
	// baseline against itself reports nothing.
	if d := Diff(baseline, baseline, -1); !d.Clean() || len(d.Drift) != 0 {
		t.Errorf("self-diff not clean: %+v", d)
	}
}

func TestDiffFlagsMissingEntryAndMarginErosion(t *testing.T) {
	base := &Quality{
		Schema: QualitySchema, VThreshold: 0.5, PThreshold: 0.05,
		Entries: []EntryQuality{
			{Name: "a", WantLeaky: true, MarginV: 0.9,
				Seeds: []SeedResult{{Seed: 0, Leaky: true, Fingerprint: "x"}}},
			{Name: "gone", WantLeaky: false, MarginV: 0.0},
		},
	}
	cur := &Quality{
		Schema: QualitySchema, VThreshold: 0.5, PThreshold: 0.05,
		Entries: []EntryQuality{
			{Name: "a", WantLeaky: true, MarginV: 0.6,
				Seeds: []SeedResult{{Seed: 0, Leaky: true, Fingerprint: "y"}}},
		},
	}
	d := Diff(base, cur, 0.05)
	joined := strings.Join(d.Regressions, "\n")
	if !strings.Contains(joined, "margin eroded") {
		t.Errorf("margin erosion not flagged:\n%s", joined)
	}
	if !strings.Contains(joined, "missing from current run") {
		t.Errorf("missing entry not flagged:\n%s", joined)
	}
	if len(d.Drift) != 1 || !strings.Contains(d.Drift[0], "fingerprint") {
		t.Errorf("fingerprint change should be drift, got %+v", d.Drift)
	}
	// Erosion within tolerance passes.
	cur.Entries[0].MarginV = 0.88
	base.Entries = base.Entries[:1]
	if d := Diff(base, cur, 0.05); !d.Clean() {
		t.Errorf("tolerated margin shift flagged: %+v", d.Regressions)
	}
}

// TestScoreReportViolations exercises the ground-truth scoring rules
// without running the simulator.
func TestScoreReportViolations(t *testing.T) {
	leakyAssoc := stats.Association{V: 0.9, P: 1e-6, N: 100, Rows: 2, Cols: 4}
	cleanAssoc := stats.Association{V: 0.1, P: 0.9, N: 100, Rows: 2, Cols: 4}
	mkRep := func(flagged map[trace.Unit]bool) *core.Report {
		rep := &core.Report{Workload: "w", Config: "c"}
		for _, u := range trace.AllUnits() {
			a := cleanAssoc
			if flagged[u] {
				a = leakyAssoc
			}
			rep.Units = append(rep.Units, core.UnitResult{
				Unit: u, Assoc: a,
				Store: snapshot.NewStore(), StoreNoTiming: snapshot.NewStore(),
			})
		}
		return rep
	}
	th := Thresholds{}.withDefaults()

	safe := Entry{Name: "s", WantLeaky: false}
	if res := scoreReport(safe, 0, th, mkRep(nil)); len(res.Violations) != 0 || res.Leaky {
		t.Errorf("clean report on safe entry: %+v", res)
	}
	if res := scoreReport(safe, 0, th, mkRep(map[trace.Unit]bool{trace.SQADDR: true})); !res.FalseVerdict(false) {
		t.Error("flagged safe entry must be a false positive")
	}

	leaky := Entry{Name: "l", WantLeaky: true,
		MustFlag:  []trace.Unit{trace.EUUMUL},
		MustClean: []trace.Unit{trace.ROBPC}}
	res := scoreReport(leaky, 0, th, mkRep(map[trace.Unit]bool{trace.ROBPC: true}))
	joined := strings.Join(res.Violations, "\n")
	if !strings.Contains(joined, "EUU-MUL must be flagged") {
		t.Errorf("missing MustFlag violation: %q", joined)
	}
	if !strings.Contains(joined, "ROB-PC must be clean") {
		t.Errorf("missing MustClean violation: %q", joined)
	}
	good := scoreReport(leaky, 0, th, mkRep(map[trace.Unit]bool{trace.EUUMUL: true}))
	if len(good.Violations) != 0 {
		t.Errorf("correct leaky report flagged violations: %+v", good.Violations)
	}
	if good.MaxVUnit != trace.EUUMUL.String() || !closeTo(good.MaxV, 0.9) {
		t.Errorf("margin bookkeeping wrong: %+v", good)
	}
}

// TestSeedStrideKeepsInputsDisjoint documents the contract between
// SeedStride and entry Runs: no entry may draw overlapping run indices
// across seeds.
func TestSeedStrideKeepsInputsDisjoint(t *testing.T) {
	for _, e := range Corpus() {
		if r := e.withDefaults().Runs; r > SeedStride {
			t.Errorf("entry %s: Runs %d exceeds SeedStride %d; seeds would overlap",
				e.Name, r, SeedStride)
		}
	}
}

func TestThresholdDefaults(t *testing.T) {
	th := Thresholds{}.withDefaults()
	if th.V != stats.DefaultVThreshold || th.P != stats.DefaultPThreshold {
		t.Errorf("defaults = %+v", th)
	}
	custom := Thresholds{V: 0.7, P: 0.01}.withDefaults()
	if custom.V != 0.7 || custom.P != 0.01 {
		t.Errorf("custom thresholds clobbered: %+v", custom)
	}
	a := stats.Association{V: 0.6, P: 0.001}
	if !flaggedAt(a, th) {
		t.Error("V=0.6 p=0.001 must be flagged at the defaults")
	}
	if flaggedAt(a, custom) {
		t.Error("V=0.6 must not be flagged at a 0.7 threshold")
	}
}

func TestVerifyConfigRespectsEntryToggles(t *testing.T) {
	e := Entry{Name: "x", Workload: "CT-DIV", FastBypass: true, DataDepDivide: true, Small: true}
	_, cfg, err := e.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.FastBypass || !cfg.DataDepDivide || cfg.Name != sim.SmallBoom().Name {
		t.Errorf("entry toggles not applied: %+v", cfg)
	}
}
