package oracle

import (
	"testing"

	"microsampler/internal/asm"
	"microsampler/internal/core"
	"microsampler/internal/report"
)

// TestLeakRegionsShape pins the provenance ground truth's structural
// invariants: every leaky entry names at least one secret-dependent
// region, every region's labels resolve in the entry's assembled
// workload, and safe entries carry none (there is no secret-dependent
// instruction to point at).
func TestLeakRegionsShape(t *testing.T) {
	for _, e := range Corpus() {
		if !e.WantLeaky {
			if len(e.LeakRegions) != 0 {
				t.Errorf("safe entry %s has leak regions %v", e.Name, e.LeakRegions)
			}
			continue
		}
		if len(e.LeakRegions) == 0 {
			t.Errorf("leaky entry %s has no leak regions", e.Name)
			continue
		}
		w, _, err := e.Build()
		if err != nil {
			t.Errorf("entry %s: %v", e.Name, err)
			continue
		}
		prog, err := asm.Assemble(w.Source)
		if err != nil {
			t.Errorf("entry %s: %v", e.Name, err)
			continue
		}
		regions, err := e.ResolveLeakRegions(prog)
		if err != nil {
			t.Error(err)
			continue
		}
		if len(regions) != len(e.LeakRegions) {
			t.Errorf("entry %s: resolved %d of %d regions", e.Name, len(regions), len(e.LeakRegions))
		}
	}
}

// TestProvenanceLocalizesCorpusLeaks is the provenance ground truth:
// for every labeled leaky pair in the corpus, the top-ranked entry of
// the instruction-level provenance must point into a known
// secret-dependent region of the workload. A detector that flags the
// right units but blames the wrong instruction fails this gate.
func TestProvenanceLocalizesCorpusLeaks(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every leaky corpus entry through a full verification")
	}
	for _, e := range Corpus() {
		if !e.WantLeaky {
			continue
		}
		e := e.withDefaults()
		t.Run(e.Name, func(t *testing.T) {
			w, cfg, err := e.Build()
			if err != nil {
				t.Fatal(err)
			}
			rep, err := core.Verify(w, core.Options{
				Config:   cfg,
				Runs:     e.Runs,
				Warmup:   e.Warmup,
				Parallel: -1,
			})
			if err != nil {
				t.Fatal(err)
			}
			pv, err := report.BuildProvenance(rep)
			if err != nil {
				t.Fatal(err)
			}
			if len(pv.Entries) == 0 {
				t.Fatal("provenance ranked no instructions for a leaky workload")
			}
			regions, err := e.ResolveLeakRegions(rep.Program)
			if err != nil {
				t.Fatal(err)
			}
			top := pv.Entries[0]
			if !inRegions(top.PC, regions) {
				for i, pe := range pv.Entries {
					if i >= 5 {
						break
					}
					t.Logf("rank %d: %s pc=%#x (%s) via %s V=%.3f events=%d",
						i, pe.Unit, pe.PC, pe.Symbol, pe.Via, pe.V, pe.Events)
				}
				t.Errorf("top-ranked PC %#x (%s, unit %s via %s) outside leak regions %v",
					top.PC, top.Symbol, top.Unit, top.Via, e.LeakRegions)
			}
		})
	}
}

func inRegions(pc uint64, regions [][2]uint64) bool {
	for _, r := range regions {
		if pc >= r[0] && pc < r[1] {
			return true
		}
	}
	return false
}
