package oracle

import (
	"encoding/json"
	"fmt"
	"regexp"
	"sort"

	"microsampler/internal/stats"
)

// QualitySchema identifies the quality.json document format.
const QualitySchema = "microsampler-quality/1"

// Options configures a corpus evaluation.
type Options struct {
	// Seeds is the number of independent input seeds per entry
	// (default 5). Seed s offsets the workload's run indices by
	// s*SeedStride, so every seed draws a disjoint input set.
	Seeds int
	// Thresholds are the verdict cut-offs (zero value: paper defaults).
	Thresholds Thresholds
	// Parallel is passed through to core.Options.Parallel per
	// verification.
	Parallel int
	// Match, when non-nil, restricts the corpus to entries whose Name
	// or Pair matches.
	Match *regexp.Regexp
	// OnEntry, when non-nil, is called after each entry completes.
	OnEntry func(EntryQuality)
}

func (o Options) withDefaults() Options {
	if o.Seeds == 0 {
		o.Seeds = 5
	}
	o.Thresholds = o.Thresholds.withDefaults()
	return o
}

// RateCI is an error rate with its 95% Wilson confidence interval.
type RateCI struct {
	Errors   int     `json:"errors"`
	Trials   int     `json:"trials"`
	Rate     float64 `json:"rate"`
	WilsonLo float64 `json:"wilsonLo"`
	WilsonHi float64 `json:"wilsonHi"`
}

// rateCI builds a RateCI at the 95% level.
func rateCI(errors, trials int) RateCI {
	r := RateCI{Errors: errors, Trials: trials}
	if trials > 0 {
		r.Rate = float64(errors) / float64(trials)
		r.WilsonLo, r.WilsonHi = stats.WilsonInterval(errors, trials, 1.96)
	}
	return r
}

// EntryQuality is the evaluated outcome of one corpus entry across all
// seeds.
type EntryQuality struct {
	Name      string `json:"name"`
	Pair      string `json:"pair"`
	Workload  string `json:"workload"`
	Config    string `json:"config"`
	WantLeaky bool   `json:"wantLeaky"`
	Runs      int    `json:"runsPerSeed"`
	Notes     string `json:"notes,omitempty"`

	// Misses counts seeds with a false verdict (false negatives for
	// leaky entries, false positives for safe ones); Violations counts
	// seeds with any ground-truth disagreement, including per-unit
	// MustFlag/MustClean failures.
	Misses     int `json:"misses"`
	Violations int `json:"violations"`

	// MarginV summarises how far the entry sits from the V threshold:
	// for leaky entries the minimum over seeds of the strongest
	// significant V (should stay well above the threshold), for safe
	// entries the maximum (should stay well below).
	MarginV float64 `json:"marginV"`

	Seeds []SeedResult `json:"seeds"`
}

// Quality is the machine-readable quality.json artifact. All content is
// deterministic for a fixed corpus, seed count, and thresholds: it
// contains no timestamps or wall-clock measurements.
type Quality struct {
	Schema     string         `json:"schema"`
	Seeds      int            `json:"seeds"`
	VThreshold float64        `json:"vThreshold"`
	PThreshold float64        `json:"pThreshold"`
	Entries    []EntryQuality `json:"entries"`
	Summary    Summary        `json:"summary"`
}

// Summary aggregates the corpus outcome.
type Summary struct {
	Entries        int    `json:"entries"`
	Pairs          int    `json:"pairs"`
	Trials         int    `json:"trials"`
	FalsePositives int    `json:"falsePositives"`
	FalseNegatives int    `json:"falseNegatives"`
	UnitViolations int    `json:"unitViolations"`
	FPRate         RateCI `json:"fpRate"`
	FNRate         RateCI `json:"fnRate"`
	Pass           bool   `json:"pass"`
}

// RunCorpus evaluates the corpus entries across Options.Seeds seeds and
// assembles the quality artifact. Entries run sequentially in corpus
// order and seeds in ascending order, so the artifact is reproducible
// byte for byte.
func RunCorpus(entries []Entry, o Options) (*Quality, error) {
	o = o.withDefaults()
	q := &Quality{
		Schema:     QualitySchema,
		Seeds:      o.Seeds,
		VThreshold: o.Thresholds.V,
		PThreshold: o.Thresholds.P,
	}
	pairs := make(map[string]bool)
	for _, e := range entries {
		if o.Match != nil && !o.Match.MatchString(e.Name) && !o.Match.MatchString(e.Pair) {
			continue
		}
		e = e.withDefaults()
		eq := EntryQuality{
			Name:      e.Name,
			Pair:      e.Pair,
			Workload:  e.Workload,
			Config:    e.ConfigName(),
			WantLeaky: e.WantLeaky,
			Runs:      e.Runs,
			Notes:     e.Notes,
		}
		for seed := 0; seed < o.Seeds; seed++ {
			res, err := RunEntry(e, seed, o.Thresholds, o.Parallel)
			if err != nil {
				return nil, err
			}
			eq.Seeds = append(eq.Seeds, *res)
			if res.FalseVerdict(e.WantLeaky) {
				eq.Misses++
				if e.WantLeaky {
					q.Summary.FalseNegatives++
				} else {
					q.Summary.FalsePositives++
				}
			}
			if len(res.Violations) > 0 {
				eq.Violations++
				q.Summary.UnitViolations += len(res.Violations)
			}
			if seed == 0 || (e.WantLeaky && res.MaxV < eq.MarginV) ||
				(!e.WantLeaky && res.MaxV > eq.MarginV) {
				eq.MarginV = res.MaxV
			}
			q.Summary.Trials++
		}
		pairs[e.Pair] = true
		q.Entries = append(q.Entries, eq)
		q.Summary.Entries++
		if o.OnEntry != nil {
			o.OnEntry(eq)
		}
	}
	q.Summary.Pairs = len(pairs)
	leakyTrials, safeTrials := 0, 0
	for _, eq := range q.Entries {
		if eq.WantLeaky {
			leakyTrials += len(eq.Seeds)
		} else {
			safeTrials += len(eq.Seeds)
		}
	}
	q.Summary.FPRate = rateCI(q.Summary.FalsePositives, safeTrials)
	q.Summary.FNRate = rateCI(q.Summary.FalseNegatives, leakyTrials)
	q.Summary.Pass = q.Summary.FalsePositives == 0 &&
		q.Summary.FalseNegatives == 0 && q.Summary.UnitViolations == 0
	return q, nil
}

// Marshal renders the artifact as deterministic indented JSON.
func (q *Quality) Marshal() ([]byte, error) {
	return json.MarshalIndent(q, "", "  ")
}

// ParseQuality decodes a quality.json document.
func ParseQuality(data []byte) (*Quality, error) {
	var q Quality
	if err := json.Unmarshal(data, &q); err != nil {
		return nil, fmt.Errorf("oracle: parse quality artifact: %w", err)
	}
	if q.Schema != QualitySchema {
		return nil, fmt.Errorf("oracle: unsupported quality schema %q", q.Schema)
	}
	return &q, nil
}

// DiffResult separates hard regressions (detection quality got worse)
// from drift (behaviour changed without affecting any verdict).
type DiffResult struct {
	// Regressions fail the gate: new false verdicts, new unit
	// violations, verdict flips, or V margins eroding toward the
	// threshold by more than the tolerance.
	Regressions []string
	// Drift is informational: fingerprint changes on trials whose
	// verdicts still agree — typically a legitimate refactor that
	// changed cycle-level behaviour.
	Drift []string
}

// Diff compares a new quality artifact against a calibration baseline.
// vTol is the allowed erosion of an entry's V margin toward the
// threshold (a negative value selects the default 0.05).
func Diff(baseline, current *Quality, vTol float64) DiffResult {
	if vTol < 0 {
		vTol = 0.05
	}
	var d DiffResult
	reg := func(format string, args ...any) {
		d.Regressions = append(d.Regressions, fmt.Sprintf(format, args...))
	}
	if baseline.VThreshold != current.VThreshold || baseline.PThreshold != current.PThreshold {
		reg("verdict thresholds changed: baseline V>%g p<%g, current V>%g p<%g",
			baseline.VThreshold, baseline.PThreshold,
			current.VThreshold, current.PThreshold)
	}
	if current.Summary.FalsePositives > baseline.Summary.FalsePositives {
		reg("false positives rose %d -> %d",
			baseline.Summary.FalsePositives, current.Summary.FalsePositives)
	}
	if current.Summary.FalseNegatives > baseline.Summary.FalseNegatives {
		reg("false negatives rose %d -> %d",
			baseline.Summary.FalseNegatives, current.Summary.FalseNegatives)
	}
	base := make(map[string]*EntryQuality, len(baseline.Entries))
	for i := range baseline.Entries {
		base[baseline.Entries[i].Name] = &baseline.Entries[i]
	}
	for i := range current.Entries {
		cur := &current.Entries[i]
		old, ok := base[cur.Name]
		if !ok {
			continue // new entry: no baseline to regress from
		}
		delete(base, cur.Name)
		if cur.Misses > old.Misses {
			reg("entry %s: misses rose %d -> %d", cur.Name, old.Misses, cur.Misses)
		}
		if cur.Violations > old.Violations {
			reg("entry %s: violating seeds rose %d -> %d",
				cur.Name, old.Violations, cur.Violations)
		}
		if cur.WantLeaky && cur.MarginV < old.MarginV-vTol {
			reg("entry %s: leaky V margin eroded %.3f -> %.3f",
				cur.Name, old.MarginV, cur.MarginV)
		}
		if !cur.WantLeaky && cur.MarginV > old.MarginV+vTol {
			reg("entry %s: safe V margin eroded %.3f -> %.3f",
				cur.Name, old.MarginV, cur.MarginV)
		}
		for s := 0; s < len(cur.Seeds) && s < len(old.Seeds); s++ {
			cs, os := cur.Seeds[s], old.Seeds[s]
			if cs.Leaky != os.Leaky {
				reg("entry %s seed %d: verdict flipped %v -> %v",
					cur.Name, cs.Seed, os.Leaky, cs.Leaky)
			} else if cs.Fingerprint != os.Fingerprint {
				d.Drift = append(d.Drift, fmt.Sprintf(
					"entry %s seed %d: fingerprint %s -> %s (verdict unchanged)",
					cur.Name, cs.Seed, os.Fingerprint, cs.Fingerprint))
			}
		}
	}
	missing := make([]string, 0, len(base))
	for name := range base {
		missing = append(missing, name)
	}
	sort.Strings(missing)
	for _, name := range missing {
		reg("entry %s present in baseline but missing from current run", name)
	}
	return d
}

// Clean reports whether the diff found no regressions.
func (d DiffResult) Clean() bool { return len(d.Regressions) == 0 }
