package report

import (
	"encoding/json"
	"fmt"
	"html"
	"strings"

	"microsampler/internal/core"
	"microsampler/internal/stats"
)

// This file is the diff half of the differential observability layer:
// distilled, JSON-round-trippable digests of a run (ReportDigest; the
// matrix counterpart is MatrixArtifact) and deterministic diff
// artifacts between two of them (BuildDiff, BuildMatrixDiff). Like
// every other artifact in this package, diffs are built exclusively
// from deterministic inputs — no wall-clock quantities — so the JSON
// rendering of the same pair of runs is byte-identical however and
// whenever it is produced.

// ReportDigest is the diffable distillation of one verification: the
// per-unit verdict and association strength plus the top-ranked
// provenance. It round-trips through JSON, so a digest stored in the
// history store (or committed as a baseline file) can seed BuildDiff
// against a fresh run.
type ReportDigest struct {
	Workload string       `json:"workload"`
	Config   string       `json:"config"`
	Leaky    bool         `json:"leaky"`
	Units    []DigestUnit `json:"units"`
	// TopProvenance lists the strongest instruction attributions
	// (BuildProvenance order), empty for clean runs.
	TopProvenance []MatrixProv `json:"topProvenance,omitempty"`
}

// DigestUnit is one unit's distilled verdict.
type DigestUnit struct {
	Unit  string  `json:"unit"`
	Leaky bool    `json:"leaky"`
	V     float64 `json:"cramersV"`
	P     float64 `json:"pValue"`
}

// BuildDigest distils a report into its diffable digest.
func BuildDigest(rep *core.Report) (*ReportDigest, error) {
	d := &ReportDigest{
		Workload: rep.Workload,
		Config:   rep.Config,
		Leaky:    rep.AnyLeak(),
	}
	for _, u := range rep.Units {
		d.Units = append(d.Units, DigestUnit{
			Unit:  u.Unit.String(),
			Leaky: u.Leaky(),
			V:     u.Assoc.V,
			P:     u.Assoc.P,
		})
	}
	if d.Leaky {
		pv, err := BuildProvenance(rep)
		if err != nil {
			return nil, fmt.Errorf("digest provenance: %w", err)
		}
		for i, e := range pv.Entries {
			if i >= DefaultMatrixProvenance {
				break
			}
			d.TopProvenance = append(d.TopProvenance, MatrixProv{
				Unit: e.Unit, PC: e.PC, Symbol: e.Symbol, Via: e.Via, V: e.V,
			})
		}
	}
	return d, nil
}

// JSON renders the digest as indented, deterministic JSON.
func (d *ReportDigest) JSON() ([]byte, error) {
	return json.MarshalIndent(d, "", "  ")
}

// MaxV is the strongest per-unit Cramér's V of the digest.
func (d *ReportDigest) MaxV() float64 {
	var max float64
	for _, u := range d.Units {
		if u.V > max {
			max = u.V
		}
	}
	return max
}

// DefaultVDelta is the Cramér's V drift threshold used when
// DiffOptions leaves it unset.
const DefaultVDelta = 0.05

// DiffOptions tunes the diff engine.
type DiffOptions struct {
	// FromLabel/ToLabel name the two sides in the artifact (typically
	// commit SHAs or history labels); purely descriptive.
	FromLabel string
	ToLabel   string
	// VDelta is the minimum |ΔV| for a unit or cell whose verdict did
	// NOT flip to be reported as drift (default DefaultVDelta).
	VDelta float64
}

func (o DiffOptions) vdelta() float64 {
	if o.VDelta > 0 {
		return o.VDelta
	}
	return DefaultVDelta
}

// VerdictFlip is one unit or grid cell whose leaky verdict changed
// between the two runs. For cell flips the flagged-unit lists carry
// which units tripped on each side.
type VerdictFlip struct {
	Name        string   `json:"name"` // unit name, or grid cell name
	FromLeaky   bool     `json:"fromLeaky"`
	ToLeaky     bool     `json:"toLeaky"`
	FromV       float64  `json:"fromCramersV"`
	ToV         float64  `json:"toCramersV"`
	FromFlagged []string `json:"fromFlagged,omitempty"`
	ToFlagged   []string `json:"toFlagged,omitempty"`
}

// VDrift is a sub-verdict change: the verdict held, but Cramér's V
// moved by at least the configured threshold.
type VDrift struct {
	Name  string  `json:"name"`
	FromV float64 `json:"fromCramersV"`
	ToV   float64 `json:"toCramersV"`
	Delta float64 `json:"delta"` // ToV - FromV
}

// ProvDrift records the top-ranked provenance PC of a unit or cell
// moving between the two runs: the leak is still there but is now
// attributed to a different instruction.
type ProvDrift struct {
	Name       string `json:"name"` // unit (report diff) or cell (matrix diff)
	FromPC     uint64 `json:"fromPC"`
	ToPC       uint64 `json:"toPC"`
	FromSymbol string `json:"fromSymbol,omitempty"`
	ToSymbol   string `json:"toSymbol,omitempty"`
}

// Diff is the deterministic delta between two report digests. A
// regression is a unit flipping clean→leaky (or a leaky unit
// appearing); an improvement is the reverse.
type Diff struct {
	Workload string `json:"workload"`
	// FromWorkload is set when the two sides analysed differently named
	// programs — the normal case for a "introduce a leak, diff it"
	// exercise; cells and units still compare by name.
	FromWorkload string `json:"fromWorkload,omitempty"`
	FromConfig   string `json:"fromConfig,omitempty"`
	ToConfig     string `json:"toConfig,omitempty"`
	FromLabel    string `json:"fromLabel,omitempty"`
	ToLabel      string `json:"toLabel,omitempty"`
	FromLeaky    bool   `json:"fromLeaky"`
	ToLeaky      bool   `json:"toLeaky"`

	Flips      []VerdictFlip `json:"flips,omitempty"`
	Added      []string      `json:"addedUnits,omitempty"`   // units only in the new run
	Removed    []string      `json:"removedUnits,omitempty"` // units only in the old run
	VDrifts    []VDrift      `json:"vDrifts,omitempty"`
	ProvDrifts []ProvDrift   `json:"provenanceDrifts,omitempty"`

	Regressions  int `json:"regressions"`
	Improvements int `json:"improvements"`
}

// Regression reports whether the diff contains at least one clean→leaky
// transition — the condition CI gates on.
func (d *Diff) Regression() bool { return d.Regressions > 0 }

// JSON renders the diff as indented, deterministic JSON.
func (d *Diff) JSON() ([]byte, error) {
	return json.MarshalIndent(d, "", "  ")
}

// topProvByName extracts, per unit, the strongest (first-listed)
// provenance attribution of a ranked TopProvenance list.
func topProvByName(entries []MatrixProv) map[string]MatrixProv {
	top := make(map[string]MatrixProv, len(entries))
	for _, e := range entries {
		if _, seen := top[e.Unit]; !seen {
			top[e.Unit] = e
		}
	}
	return top
}

// BuildDiff computes the deterministic delta between two report
// digests. Units compare by name, in the new run's unit order; the
// old run's units are consulted for removals in their own order.
func BuildDiff(from, to *ReportDigest, opts DiffOptions) *Diff {
	d := &Diff{
		Workload:   to.Workload,
		FromConfig: from.Config,
		ToConfig:   to.Config,
		FromLabel:  opts.FromLabel,
		ToLabel:    opts.ToLabel,
		FromLeaky:  from.Leaky,
		ToLeaky:    to.Leaky,
	}
	if from.Workload != to.Workload {
		d.FromWorkload = from.Workload
	}
	prev := make(map[string]DigestUnit, len(from.Units))
	for _, u := range from.Units {
		prev[u.Unit] = u
	}
	seen := make(map[string]bool, len(to.Units))
	for _, u := range to.Units {
		seen[u.Unit] = true
		p, ok := prev[u.Unit]
		if !ok {
			d.Added = append(d.Added, u.Unit)
			if u.Leaky {
				d.Regressions++
			}
			continue
		}
		switch {
		case p.Leaky != u.Leaky:
			d.Flips = append(d.Flips, VerdictFlip{
				Name: u.Unit, FromLeaky: p.Leaky, ToLeaky: u.Leaky,
				FromV: p.V, ToV: u.V,
			})
			if u.Leaky {
				d.Regressions++
			} else {
				d.Improvements++
			}
		case abs(u.V-p.V) >= opts.vdelta():
			d.VDrifts = append(d.VDrifts, VDrift{
				Name: u.Unit, FromV: p.V, ToV: u.V, Delta: u.V - p.V,
			})
		}
	}
	for _, u := range from.Units {
		if !seen[u.Unit] {
			d.Removed = append(d.Removed, u.Unit)
		}
	}
	// Provenance drift: the top-ranked attribution of a unit moved to a
	// different PC, in the new digest's ranking order.
	fromTop := topProvByName(from.TopProvenance)
	reported := make(map[string]bool)
	for _, e := range to.TopProvenance {
		if reported[e.Unit] {
			continue
		}
		reported[e.Unit] = true
		if p, ok := fromTop[e.Unit]; ok && p.PC != e.PC {
			d.ProvDrifts = append(d.ProvDrifts, ProvDrift{
				Name: e.Unit, FromPC: p.PC, ToPC: e.PC,
				FromSymbol: p.Symbol, ToSymbol: e.Symbol,
			})
		}
	}
	return d
}

// CellSummary names a grid cell present on only one side of a matrix
// diff.
type CellSummary struct {
	Name  string  `json:"name"`
	Leaky bool    `json:"leaky"`
	MaxV  float64 `json:"maxCramersV"`
}

// MatrixDiff is the deterministic delta between two matrix sweeps:
// which cells changed verdict between commit A and commit B, as a
// first-class CI artifact. Cells compare by name (the canonical
// axis=value spelling), so reordered or re-parallelised sweeps of the
// same grid diff clean.
type MatrixDiff struct {
	Workload     string `json:"workload"`
	FromWorkload string `json:"fromWorkload,omitempty"`
	FromLabel    string `json:"fromLabel,omitempty"`
	ToLabel      string `json:"toLabel,omitempty"`

	// Cells counts the cells present in both sweeps; Unchanged those of
	// them with nothing to report.
	Cells     int `json:"cells"`
	Unchanged int `json:"unchanged"`

	Flips      []VerdictFlip `json:"flips,omitempty"`
	Added      []CellSummary `json:"addedCells,omitempty"`
	Removed    []CellSummary `json:"removedCells,omitempty"`
	VDrifts    []VDrift      `json:"vDrifts,omitempty"`
	ProvDrifts []ProvDrift   `json:"provenanceDrifts,omitempty"`
	// Errors lists cells that failed on either side; their verdicts are
	// not compared.
	Errors []string `json:"errors,omitempty"`

	Regressions  int `json:"regressions"`
	Improvements int `json:"improvements"`
}

// Regression reports whether the diff contains at least one clean→leaky
// cell transition (including a leaky cell appearing in a grown grid).
func (d *MatrixDiff) Regression() bool { return d.Regressions > 0 }

// JSON renders the diff as indented, deterministic JSON.
func (d *MatrixDiff) JSON() ([]byte, error) {
	return json.MarshalIndent(d, "", "  ")
}

// flagged lists a cell's flagged unit names.
func flagged(c MatrixCell) []string {
	if len(c.Flagged) == 0 {
		return nil
	}
	out := make([]string, 0, len(c.Flagged))
	for _, f := range c.Flagged {
		out = append(out, f.Unit)
	}
	return out
}

// BuildMatrixDiff computes the deterministic delta between two matrix
// artifacts. The new sweep's cell enumeration drives the comparison
// order, the old sweep's its removals, so the output is byte-stable
// for a given pair of artifacts.
func BuildMatrixDiff(from, to *MatrixArtifact, opts DiffOptions) *MatrixDiff {
	d := &MatrixDiff{
		Workload:  to.Workload,
		FromLabel: opts.FromLabel,
		ToLabel:   opts.ToLabel,
	}
	if from.Workload != to.Workload {
		d.FromWorkload = from.Workload
	}
	prev := make(map[string]MatrixCell, len(from.Cells))
	for _, c := range from.Cells {
		prev[c.Name] = c
	}
	seen := make(map[string]bool, len(to.Cells))
	for _, c := range to.Cells {
		seen[c.Name] = true
		p, ok := prev[c.Name]
		if !ok {
			d.Added = append(d.Added, CellSummary{Name: c.Name, Leaky: c.Leaky, MaxV: c.MaxV})
			if c.Leaky {
				d.Regressions++
			}
			continue
		}
		d.Cells++
		if p.Err != "" || c.Err != "" {
			side := "both sweeps"
			switch {
			case p.Err == "":
				side = "new sweep"
			case c.Err == "":
				side = "old sweep"
			}
			d.Errors = append(d.Errors, fmt.Sprintf("%s: failed in %s", c.Name, side))
			continue
		}
		changed := false
		if p.Leaky != c.Leaky {
			changed = true
			d.Flips = append(d.Flips, VerdictFlip{
				Name: c.Name, FromLeaky: p.Leaky, ToLeaky: c.Leaky,
				FromV: p.MaxV, ToV: c.MaxV,
				FromFlagged: flagged(p), ToFlagged: flagged(c),
			})
			if c.Leaky {
				d.Regressions++
			} else {
				d.Improvements++
			}
		} else if abs(c.MaxV-p.MaxV) >= opts.vdelta() {
			changed = true
			d.VDrifts = append(d.VDrifts, VDrift{
				Name: c.Name, FromV: p.MaxV, ToV: c.MaxV, Delta: c.MaxV - p.MaxV,
			})
		}
		if len(p.TopProvenance) > 0 && len(c.TopProvenance) > 0 &&
			p.TopProvenance[0].PC != c.TopProvenance[0].PC {
			changed = true
			d.ProvDrifts = append(d.ProvDrifts, ProvDrift{
				Name:   c.Name,
				FromPC: p.TopProvenance[0].PC, ToPC: c.TopProvenance[0].PC,
				FromSymbol: p.TopProvenance[0].Symbol, ToSymbol: c.TopProvenance[0].Symbol,
			})
		}
		if !changed {
			d.Unchanged++
		}
	}
	for _, c := range from.Cells {
		if !seen[c.Name] {
			d.Removed = append(d.Removed, CellSummary{Name: c.Name, Leaky: c.Leaky, MaxV: c.MaxV})
		}
	}
	return d
}

// flippedCells is the highlight set for the side-by-side heatmaps.
func (d *MatrixDiff) flippedCells() map[string]bool {
	if len(d.Flips) == 0 {
		return nil
	}
	m := make(map[string]bool, len(d.Flips))
	for _, f := range d.Flips {
		m[f.Name] = true
	}
	return m
}

// HTML renders the matrix diff as a self-contained document: the two
// sweeps' verdict heatmaps side by side with flipped cells ringed
// orange, followed by the flip/drift details. from and to must be the
// artifacts the diff was built from.
func (d *MatrixDiff) HTML(from, to *MatrixArtifact) string {
	highlight := d.flippedCells()
	fromName, toName := d.FromLabel, d.ToLabel
	if fromName == "" {
		fromName = "baseline"
	}
	if toName == "" {
		toName = "current"
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>MicroSampler matrix diff — %s</title>
<style>
%s</style>
</head>
<body>
<h1>Matrix diff — %s</h1>
<div class="meta">%d common cells, %d unchanged; <span class="flip">%d verdict
flip(s)</span> ringed orange, %d regression(s), %d improvement(s). Hover a
cell for details.</div>
`,
		html.EscapeString(d.Workload), matrixCSS, html.EscapeString(d.Workload),
		d.Cells, d.Unchanged, len(d.Flips), d.Regressions, d.Improvements)

	fromTitle := from.Workload
	if d.FromWorkload != "" {
		fromTitle = d.FromWorkload
	}
	fmt.Fprintf(&b, `<div class="side"><h2>%s — %s</h2>`+"\n",
		html.EscapeString(fromName), html.EscapeString(fromTitle))
	b.WriteString(from.svg(highlight))
	b.WriteString("</div>\n")
	fmt.Fprintf(&b, `<div class="side"><h2>%s — %s</h2>`+"\n",
		html.EscapeString(toName), html.EscapeString(to.Workload))
	b.WriteString(to.svg(highlight))
	b.WriteString("</div>\n")

	writeList := func(title string, lines []string) {
		if len(lines) == 0 {
			return
		}
		fmt.Fprintf(&b, "<h2>%s</h2>\n<ul>\n", html.EscapeString(title))
		for _, l := range lines {
			fmt.Fprintf(&b, "<li>%s</li>\n", html.EscapeString(l))
		}
		b.WriteString("</ul>\n")
	}
	var flips []string
	for _, f := range d.Flips {
		flips = append(flips, fmt.Sprintf("%s: %s → %s (V %.3f → %.3f; flagged %s → %s)",
			f.Name, verdict(f.FromLeaky), verdict(f.ToLeaky), f.FromV, f.ToV,
			orNone(f.FromFlagged), orNone(f.ToFlagged)))
	}
	writeList("Verdict flips", flips)
	var drifts []string
	for _, v := range d.VDrifts {
		drifts = append(drifts, fmt.Sprintf("%s: V %.3f → %.3f (Δ %+.3f)", v.Name, v.FromV, v.ToV, v.Delta))
	}
	writeList("Cramér's V drift", drifts)
	var prov []string
	for _, p := range d.ProvDrifts {
		prov = append(prov, fmt.Sprintf("%s: top attribution pc %#x (%s) → %#x (%s)",
			p.Name, p.FromPC, p.FromSymbol, p.ToPC, p.ToSymbol))
	}
	writeList("Provenance drift", prov)
	var cells []string
	for _, c := range d.Added {
		cells = append(cells, fmt.Sprintf("added %s (%s, max V %.3f)", c.Name, verdict(c.Leaky), c.MaxV))
	}
	for _, c := range d.Removed {
		cells = append(cells, fmt.Sprintf("removed %s (%s, max V %.3f)", c.Name, verdict(c.Leaky), c.MaxV))
	}
	writeList("Grid changes", cells)
	writeList("Cell errors", d.Errors)

	b.WriteString(`<div class="legend">Generated by microsampler; data identical to the matrix diff JSON artifact.</div>` + "\n")
	b.WriteString("</body>\n</html>\n")
	return b.String()
}

// HTML renders the report diff as a self-contained document: a
// two-row, per-unit heatmap (baseline over current, flips highlighted)
// plus the detail lists. from and to must be the digests the diff was
// built from.
func (d *Diff) HTML(from, to *ReportDigest) string {
	const (
		cell    = 34
		gap     = 2
		headerH = 70
		labelW  = 76
	)
	flipped := make(map[string]bool, len(d.Flips))
	for _, f := range d.Flips {
		flipped[f.Name] = true
	}
	fromName, toName := d.FromLabel, d.ToLabel
	if fromName == "" {
		fromName = "baseline"
	}
	if toName == "" {
		toName = "current"
	}

	// Column per unit of the new run, plus removed units at the end.
	type col struct {
		unit     string
		from, to *DigestUnit
	}
	prev := make(map[string]DigestUnit, len(from.Units))
	for _, u := range from.Units {
		prev[u.Unit] = u
	}
	var cols []col
	for i := range to.Units {
		u := &to.Units[i]
		c := col{unit: u.Unit, to: u}
		if p, ok := prev[u.Unit]; ok {
			pc := p
			c.from = &pc
		}
		cols = append(cols, c)
	}
	seen := make(map[string]bool, len(to.Units))
	for _, u := range to.Units {
		seen[u.Unit] = true
	}
	for i := range from.Units {
		u := &from.Units[i]
		if !seen[u.Unit] {
			cols = append(cols, col{unit: u.Unit, from: u})
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>MicroSampler report diff — %s</title>
<style>
%s</style>
</head>
<body>
<h1>Report diff — %s</h1>
<div class="meta">%s (%s) vs %s (%s); <span class="flip">%d verdict flip(s)</span>
ringed orange, %d regression(s), %d improvement(s).</div>
`,
		html.EscapeString(d.Workload), matrixCSS, html.EscapeString(d.Workload),
		html.EscapeString(fromName), verdict(d.FromLeaky),
		html.EscapeString(toName), verdict(d.ToLeaky),
		len(d.Flips), d.Regressions, d.Improvements)

	svgW := labelW + len(cols)*(cell+gap) + gap
	svgH := headerH + 2*(cell+gap) + gap
	fmt.Fprintf(&b, `<svg width="%d" height="%d" viewBox="0 0 %d %d" role="img">`,
		svgW, svgH, svgW, svgH)
	b.WriteString("\n")
	for i, c := range cols {
		x := labelW + i*(cell+gap) + gap
		fmt.Fprintf(&b, `<text x="%d" y="%d" transform="rotate(-45 %d %d)">%s</text>`,
			x, headerH-8, x, headerH-8, html.EscapeString(c.unit))
		b.WriteString("\n")
	}
	rows := []struct {
		name  string
		pick  func(col) *DigestUnit
		other func(col) *DigestUnit
	}{
		{fromName, func(c col) *DigestUnit { return c.from }, func(c col) *DigestUnit { return c.to }},
		{toName, func(c col) *DigestUnit { return c.to }, func(c col) *DigestUnit { return c.from }},
	}
	for r, row := range rows {
		y := headerH + r*(cell+gap) + gap
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end">%s</text>`,
			labelW-6, y+cell-12, html.EscapeString(row.name))
		b.WriteString("\n")
		for i, c := range cols {
			x := labelW + i*(cell+gap) + gap
			u := row.pick(c)
			fill, stroke, strokeW := "#eeeeee", "none", 2
			title := c.unit + ": not analysed"
			if u != nil {
				fill = heatColor(u.V, u.P < stats.DefaultPThreshold)
				if u.Leaky {
					stroke = "#b2182b"
				}
				title = fmt.Sprintf("%s (%s): %s, V=%.3f p=%.3g", c.unit, row.name, verdict(u.Leaky), u.V, u.P)
			}
			if flipped[c.unit] {
				stroke, strokeW = "#b35806", 4
				title += " — VERDICT FLIP"
			}
			fmt.Fprintf(&b,
				`<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="%s" stroke-width="%d"><title>%s</title></rect>`,
				x, y, cell, cell, fill, stroke, strokeW, html.EscapeString(title))
			b.WriteString("\n")
		}
	}
	b.WriteString("</svg>\n")

	writeList := func(title string, lines []string) {
		if len(lines) == 0 {
			return
		}
		fmt.Fprintf(&b, "<h2>%s</h2>\n<ul>\n", html.EscapeString(title))
		for _, l := range lines {
			fmt.Fprintf(&b, "<li>%s</li>\n", html.EscapeString(l))
		}
		b.WriteString("</ul>\n")
	}
	var flips []string
	for _, f := range d.Flips {
		flips = append(flips, fmt.Sprintf("%s: %s → %s (V %.3f → %.3f)",
			f.Name, verdict(f.FromLeaky), verdict(f.ToLeaky), f.FromV, f.ToV))
	}
	writeList("Verdict flips", flips)
	var drifts []string
	for _, v := range d.VDrifts {
		drifts = append(drifts, fmt.Sprintf("%s: V %.3f → %.3f (Δ %+.3f)", v.Name, v.FromV, v.ToV, v.Delta))
	}
	writeList("Cramér's V drift", drifts)
	var prov []string
	for _, p := range d.ProvDrifts {
		prov = append(prov, fmt.Sprintf("%s: top attribution pc %#x (%s) → %#x (%s)",
			p.Name, p.FromPC, p.FromSymbol, p.ToPC, p.ToSymbol))
	}
	writeList("Provenance drift", prov)
	var units []string
	for _, u := range d.Added {
		units = append(units, "added "+u)
	}
	for _, u := range d.Removed {
		units = append(units, "removed "+u)
	}
	writeList("Unit changes", units)

	b.WriteString(`<div class="legend">Generated by microsampler; data identical to the report diff JSON artifact.</div>` + "\n")
	b.WriteString("</body>\n</html>\n")
	return b.String()
}

func verdict(leaky bool) string {
	if leaky {
		return "LEAKY"
	}
	return "clean"
}

func orNone(units []string) string {
	if len(units) == 0 {
		return "none"
	}
	return strings.Join(units, "+")
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
