package report

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"microsampler/internal/core"
)

// fromDigest/toDigest are a synthetic baseline/current pair exercising
// every diff feature: a clean→leaky flip (BTB-TGT), a leaky→clean flip
// (LQ-PC), V drift without a flip (SQ-ADDR), a stable unit (ROB-OCC),
// an added unit (NEW-UNIT), a removed one (OLD-UNIT), and a provenance
// move on TAGE-PRED.
func fromDigest() *ReportDigest {
	return &ReportDigest{
		Workload: "SYN-WL", Config: "SmallBoom", Leaky: true,
		Units: []DigestUnit{
			{Unit: "TAGE-PRED", Leaky: true, V: 0.90, P: 0.001},
			{Unit: "BTB-TGT", Leaky: false, V: 0.10, P: 0.40},
			{Unit: "LQ-PC", Leaky: true, V: 0.55, P: 0.01},
			{Unit: "SQ-ADDR", Leaky: false, V: 0.05, P: 0.70},
			{Unit: "ROB-OCC", Leaky: false, V: 0.02, P: 0.90},
			{Unit: "OLD-UNIT", Leaky: false, V: 0.01, P: 0.95},
		},
		TopProvenance: []MatrixProv{
			{Unit: "TAGE-PRED", PC: 0x1004, Symbol: "loop", Via: "timing", V: 0.90},
			{Unit: "LQ-PC", PC: 0x1010, Symbol: "load", Via: "value", V: 0.55},
		},
	}
}

func toDigest() *ReportDigest {
	return &ReportDigest{
		Workload: "SYN-WL", Config: "SmallBoom", Leaky: true,
		Units: []DigestUnit{
			{Unit: "TAGE-PRED", Leaky: true, V: 0.91, P: 0.001},
			{Unit: "BTB-TGT", Leaky: true, V: 0.60, P: 0.002},
			{Unit: "LQ-PC", Leaky: false, V: 0.08, P: 0.60},
			{Unit: "SQ-ADDR", Leaky: false, V: 0.25, P: 0.30},
			{Unit: "ROB-OCC", Leaky: false, V: 0.02, P: 0.90},
			{Unit: "NEW-UNIT", Leaky: false, V: 0.03, P: 0.80},
		},
		TopProvenance: []MatrixProv{
			{Unit: "TAGE-PRED", PC: 0x1020, Symbol: "tail", Via: "timing", V: 0.91},
			{Unit: "BTB-TGT", PC: 0x1008, Symbol: "branch", Via: "timing", V: 0.60},
		},
	}
}

func TestBuildDiffFeatures(t *testing.T) {
	d := BuildDiff(fromDigest(), toDigest(), DiffOptions{FromLabel: "base", ToLabel: "head"})
	if !d.Regression() || d.Regressions != 1 || d.Improvements != 1 {
		t.Fatalf("counts: regressions=%d improvements=%d", d.Regressions, d.Improvements)
	}
	if len(d.Flips) != 2 || d.Flips[0].Name != "BTB-TGT" || !d.Flips[0].ToLeaky ||
		d.Flips[1].Name != "LQ-PC" || d.Flips[1].ToLeaky {
		t.Fatalf("flips: %+v", d.Flips)
	}
	if len(d.VDrifts) != 1 || d.VDrifts[0].Name != "SQ-ADDR" {
		t.Fatalf("vdrifts: %+v", d.VDrifts)
	}
	if len(d.Added) != 1 || d.Added[0] != "NEW-UNIT" ||
		len(d.Removed) != 1 || d.Removed[0] != "OLD-UNIT" {
		t.Fatalf("added/removed: %v / %v", d.Added, d.Removed)
	}
	if len(d.ProvDrifts) != 1 || d.ProvDrifts[0].Name != "TAGE-PRED" ||
		d.ProvDrifts[0].FromPC != 0x1004 || d.ProvDrifts[0].ToPC != 0x1020 {
		t.Fatalf("provenance drift: %+v", d.ProvDrifts)
	}
}

func TestBuildDiffSelfIsQuiet(t *testing.T) {
	d := BuildDiff(fromDigest(), fromDigest(), DiffOptions{})
	if d.Regression() || len(d.Flips)+len(d.VDrifts)+len(d.ProvDrifts)+len(d.Added)+len(d.Removed) != 0 {
		t.Fatalf("self-diff not quiet: %+v", d)
	}
}

// An added unit that is already leaky counts as a regression — a grown
// probe set must not smuggle leaks past the gate.
func TestBuildDiffAddedLeakyIsRegression(t *testing.T) {
	from := &ReportDigest{Workload: "w"}
	to := &ReportDigest{Workload: "w", Leaky: true,
		Units: []DigestUnit{{Unit: "X", Leaky: true, V: 0.8, P: 0.001}}}
	d := BuildDiff(from, to, DiffOptions{})
	if !d.Regression() || len(d.Added) != 1 {
		t.Fatalf("added leaky unit not a regression: %+v", d)
	}
}

func TestDiffGolden(t *testing.T) {
	d := BuildDiff(fromDigest(), toDigest(), DiffOptions{FromLabel: "base", ToLabel: "head"})
	got, err := d.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "diff_golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("diff JSON drifted from golden (rerun with -update if intended)\ngot:\n%s", got)
	}
	for _, banned := range []string{"elapsed", "seconds", "duration", "wall", "time"} {
		if strings.Contains(strings.ToLower(string(got)), banned) {
			t.Errorf("diff JSON contains wall-clock field %q", banned)
		}
	}
}

func TestBuildDigestRoundTrip(t *testing.T) {
	rep := sampleReport(t)
	d, err := BuildDigest(rep)
	if err != nil {
		t.Fatal(err)
	}
	if d.Workload != "sample" || !d.Leaky || len(d.Units) == 0 {
		t.Fatalf("digest shape: %+v", d)
	}
	if len(d.TopProvenance) == 0 {
		t.Fatal("leaky digest missing provenance")
	}
	if d.MaxV() <= 0 {
		t.Fatal("MaxV not populated")
	}
	data, err := d.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back ReportDigest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	// The round-tripped digest must self-diff quiet: the history store
	// keeps digests as JSON blobs and diffs them against live runs.
	if dd := BuildDiff(&back, d, DiffOptions{}); dd.Regression() || len(dd.Flips) != 0 {
		t.Fatalf("round-trip digest self-diff not quiet: %+v", dd)
	}
	for _, banned := range []string{"elapsed", "seconds", "duration", "wall"} {
		if strings.Contains(strings.ToLower(string(data)), banned) {
			t.Errorf("digest JSON contains wall-clock field %q", banned)
		}
	}
}

// mutateMatrix deep-copies the artifact and flips predictor=tage cells
// clean — simulating the "fix landed" (or, reversed, "leak introduced")
// sweep.
func mutateMatrix(a *MatrixArtifact) *MatrixArtifact {
	data, err := json.Marshal(a)
	if err != nil {
		panic(err)
	}
	var out MatrixArtifact
	if err := json.Unmarshal(data, &out); err != nil {
		panic(err)
	}
	for i := range out.Cells {
		c := &out.Cells[i]
		if strings.Contains(c.Name, "predictor=tage") {
			c.Leaky = false
			c.Flagged = nil
			c.MaxV = 0.01
			c.MaxVUnit = ""
			c.TopProvenance = nil
		}
	}
	return &out
}

func TestBuildMatrixDiffRealSweep(t *testing.T) {
	art := BuildMatrix(sampleMatrix(t), 3)

	// Self-diff: every common cell unchanged, nothing reported.
	self := BuildMatrixDiff(art, art, DiffOptions{})
	if self.Regression() || len(self.Flips) != 0 || self.Cells != 4 || self.Unchanged != 4 {
		t.Fatalf("self-diff: %+v", self)
	}

	// fixed (tage cells clean) → art: the tage cells regress.
	fixed := mutateMatrix(art)
	d := BuildMatrixDiff(fixed, art, DiffOptions{FromLabel: "fixed", ToLabel: "regressed"})
	if !d.Regression() || d.Regressions != 2 || len(d.Flips) != 2 {
		t.Fatalf("regression diff: %+v", d)
	}
	for _, f := range d.Flips {
		if !strings.Contains(f.Name, "predictor=tage") || f.FromLeaky || !f.ToLeaky {
			t.Errorf("flip %+v", f)
		}
		if len(f.ToFlagged) == 0 {
			t.Errorf("flip %s lost flagged units", f.Name)
		}
	}
	// Reversed: an improvement, not a regression.
	rev := BuildMatrixDiff(art, fixed, DiffOptions{})
	if rev.Regression() || rev.Improvements != 2 {
		t.Fatalf("improvement diff: %+v", rev)
	}
}

func TestBuildMatrixDiffGridChanges(t *testing.T) {
	art := BuildMatrix(sampleMatrix(t), 3)
	grown := mutateMatrix(art)
	grown.Cells = append(grown.Cells, MatrixCell{CellResult: core.CellResult{
		Cell:  core.Cell{Name: "predictor=perceptron"},
		Leaky: true, MaxV: 0.7,
	}})
	d := BuildMatrixDiff(art, grown, DiffOptions{})
	if len(d.Added) != 1 || d.Added[0].Name != "predictor=perceptron" {
		t.Fatalf("added: %+v", d.Added)
	}
	// The added cell is leaky: that is a regression even without a flip.
	if d.Regressions < 1 {
		t.Fatalf("added leaky cell not counted: %+v", d)
	}
	back := BuildMatrixDiff(grown, art, DiffOptions{})
	if len(back.Removed) != 1 || back.Removed[0].Name != "predictor=perceptron" {
		t.Fatalf("removed: %+v", back.Removed)
	}
}

func TestBuildMatrixDiffErrorCellsExcluded(t *testing.T) {
	art := BuildMatrix(sampleMatrix(t), 3)
	broken := mutateMatrix(art)
	broken.Cells[0].Err = "sim exploded"
	d := BuildMatrixDiff(art, broken, DiffOptions{})
	if len(d.Errors) != 1 || !strings.Contains(d.Errors[0], broken.Cells[0].Name) {
		t.Fatalf("errors: %+v", d.Errors)
	}
	for _, f := range d.Flips {
		if f.Name == broken.Cells[0].Name {
			t.Fatal("errored cell verdict compared")
		}
	}
}

func TestMatrixDiffGolden(t *testing.T) {
	art := BuildMatrix(sampleMatrix(t), 3)
	d := BuildMatrixDiff(mutateMatrix(art), art, DiffOptions{FromLabel: "base", ToLabel: "head"})
	got, err := d.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "matrix_diff_golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("matrix diff JSON drifted from golden (rerun with -update if intended)\ngot:\n%s", got)
	}
	for _, banned := range []string{"elapsed", "seconds", "duration", "wall", "time"} {
		if strings.Contains(strings.ToLower(string(got)), banned) {
			t.Errorf("matrix diff JSON contains wall-clock field %q", banned)
		}
	}
}

func TestMatrixDiffHTML(t *testing.T) {
	art := BuildMatrix(sampleMatrix(t), 3)
	fixed := mutateMatrix(art)
	d := BuildMatrixDiff(fixed, art, DiffOptions{FromLabel: "v1", ToLabel: "v2"})
	doc := d.HTML(fixed, art)
	for _, want := range []string{
		"<!DOCTYPE html>", "</html>", "v1", "v2", "TAGE-HIST",
		"#b35806", "VERDICT FLIP", "Verdict flips",
		`class="side"`,
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("diff HTML missing %q", want)
		}
	}
	// Side-by-side: two svgs, each with all four cells.
	if got := strings.Count(doc, "<svg"); got != 2 {
		t.Errorf("%d svgs, want 2", got)
	}
	if got, want := strings.Count(doc, "<rect"), 2*len(art.Cells); got != want {
		t.Errorf("%d rects, want %d", got, want)
	}
	for _, banned := range []string{"http://", "https://", "src=", "href="} {
		if strings.Contains(doc, banned) {
			t.Errorf("diff HTML not self-contained: found %q", banned)
		}
	}
	if doc != d.HTML(fixed, art) {
		t.Error("diff HTML not deterministic")
	}
}

func TestReportDiffHTML(t *testing.T) {
	from, to := fromDigest(), toDigest()
	d := BuildDiff(from, to, DiffOptions{FromLabel: "base", ToLabel: "head"})
	doc := d.HTML(from, to)
	for _, want := range []string{
		"<!DOCTYPE html>", "</html>", "base", "head",
		"#b35806", "VERDICT FLIP", "BTB-TGT", "LQ-PC",
		"Verdict flips", "not analysed",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("report diff HTML missing %q", want)
		}
	}
	// Two rows over union(new units, removed units) = 7 columns.
	if got, want := strings.Count(doc, "<rect"), 2*7; got != want {
		t.Errorf("%d rects, want %d", got, want)
	}
	for _, banned := range []string{"http://", "https://", "src=", "href="} {
		if strings.Contains(doc, banned) {
			t.Errorf("report diff HTML not self-contained: found %q", banned)
		}
	}
	if doc != d.HTML(from, to) {
		t.Error("report diff HTML not deterministic")
	}
}

// Workloads with different names diff normally — the "introduce a
// leak, diff it" walkthrough compares differently named programs.
func TestDiffAcrossWorkloadNames(t *testing.T) {
	from := &ReportDigest{Workload: "safe-v1"}
	to := &ReportDigest{Workload: "leaky-v2"}
	d := BuildDiff(from, to, DiffOptions{})
	if d.Workload != "leaky-v2" || d.FromWorkload != "safe-v1" {
		t.Fatalf("workload names: %+v", d)
	}
}
