package report

import (
	"encoding/json"
	"fmt"
	"html"
	"strings"

	"microsampler/internal/core"
	"microsampler/internal/stats"
)

// Heatmap is the units × iteration-window leakage matrix: for every
// tracked unit, the per-window Cramér's V of the snapshot-vs-class
// contingency table restricted to that window of iterations. It is the
// visual-inspection artifact of a verification (in the spirit of
// MicroWalk's leakage reports): *when* during the execution each unit
// correlated with the secret, not just whether it ever did.
//
// The matrix is built from deterministic inputs (iteration order and
// per-iteration snapshot hashes), so JSON renderings are byte-identical
// across repeated runs of the same seed.
type Heatmap struct {
	Workload   string        `json:"workload"`
	Config     string        `json:"config"`
	Iterations int           `json:"iterations"`
	Windows    int           `json:"windows"`
	Units      []HeatmapUnit `json:"units"`
}

// HeatmapUnit is one row of the matrix.
type HeatmapUnit struct {
	Unit string `json:"unit"`
	// Leaky is the whole-run verdict, copied from the report's
	// UnitResult so the heatmap flags exactly the units core.Report
	// flags.
	Leaky bool          `json:"leaky"`
	V     float64       `json:"cramersV"` // whole-run association
	P     float64       `json:"pValue"`
	Cells []HeatmapCell `json:"cells"`
}

// HeatmapCell is one unit × window entry.
type HeatmapCell struct {
	// Start (inclusive) and End (exclusive) bound the window's
	// iteration indices into Report.Iterations.
	Start int `json:"start"`
	End   int `json:"end"`
	// V and P measure the snapshot/class association within the
	// window; Leaky applies the paper's verdict thresholds to the
	// window alone.
	V           float64 `json:"cramersV"`
	P           float64 `json:"pValue"`
	Significant bool    `json:"significant"`
	Leaky       bool    `json:"leaky"`
	// Unique counts distinct snapshot hashes inside the window.
	Unique int `json:"uniqueSnapshots"`
}

// DefaultHeatmapWindows is the window count used when callers pass a
// non-positive value to BuildHeatmap.
const DefaultHeatmapWindows = 16

// BuildHeatmap bins a report's per-iteration snapshot hashes into
// `windows` contiguous iteration windows and computes the association
// statistics per unit per window. Windows is clamped to the iteration
// count; non-positive selects DefaultHeatmapWindows. The report must
// carry IterHashes (reports produced by this version's Verify always
// do).
func BuildHeatmap(rep *core.Report, windows int) (*Heatmap, error) {
	n := len(rep.Iterations)
	if n == 0 {
		return nil, fmt.Errorf("heatmap: report has no iterations")
	}
	if windows <= 0 {
		windows = DefaultHeatmapWindows
	}
	if windows > n {
		windows = n
	}
	hm := &Heatmap{
		Workload:   rep.Workload,
		Config:     rep.Config,
		Iterations: n,
		Windows:    windows,
		Units:      make([]HeatmapUnit, 0, len(rep.Units)),
	}
	for _, u := range rep.Units {
		hashes := rep.IterHashes[u.Unit]
		if len(hashes) != n {
			return nil, fmt.Errorf("heatmap: unit %v has %d iteration hashes for %d iterations (report built without per-iteration evidence?)",
				u.Unit, len(hashes), n)
		}
		hu := HeatmapUnit{
			Unit:  u.Unit.String(),
			Leaky: u.Leaky(),
			V:     u.Assoc.V,
			P:     u.Assoc.P,
			Cells: make([]HeatmapCell, 0, windows),
		}
		for w := 0; w < windows; w++ {
			start, end := w*n/windows, (w+1)*n/windows
			t := stats.NewTable()
			for i := start; i < end; i++ {
				t.Add(rep.Iterations[i].Class, hashes[i], 1)
			}
			a := t.Analyze()
			hu.Cells = append(hu.Cells, HeatmapCell{
				Start:       start,
				End:         end,
				V:           a.V,
				P:           a.P,
				Significant: a.Significant(),
				Leaky:       a.Leaky(),
				Unique:      t.Cols(),
			})
		}
		hm.Units = append(hm.Units, hu)
	}
	return hm, nil
}

// JSON renders the heatmap as indented, deterministic JSON: field
// order is fixed by the struct layout and all slices are in unit /
// window order.
func (h *Heatmap) JSON() ([]byte, error) {
	return json.MarshalIndent(h, "", "  ")
}

// heatColor maps a Cramér's V in [0,1] onto a white→red ramp (the
// conventional leakage-intensity scale). Statistically insignificant
// cells render on a grey ramp instead, so strong-but-unsupported V
// values (tiny windows) do not read as leaks.
func heatColor(v float64, significant bool) string {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	if !significant {
		c := 255 - int(v*40+0.5) // faint grey shading
		return fmt.Sprintf("#%02x%02x%02x", c, c, c)
	}
	// white (255,255,255) → strong red (178,24,43)
	r := 255 - int(v*float64(255-178)+0.5)
	g := 255 - int(v*float64(255-24)+0.5)
	b := 255 - int(v*float64(255-43)+0.5)
	return fmt.Sprintf("#%02x%02x%02x", r, g, b)
}

// HTML renders the heatmap as a self-contained single-file HTML
// document with an inline SVG matrix: units as rows (Table IV order),
// iteration windows as columns, cell colour by windowed Cramér's V,
// a red ring around cells meeting the leak verdict, and a per-cell
// <title> tooltip with the exact numbers. No external assets, so the
// file can be archived next to the run's JSON artifacts and opened
// anywhere.
func (h *Heatmap) HTML() string {
	const (
		cell    = 26 // px per matrix cell
		gap     = 2
		labelW  = 110
		headerH = 26
	)
	rows, cols := len(h.Units), h.Windows
	svgW := labelW + cols*(cell+gap) + gap
	svgH := headerH + rows*(cell+gap) + gap

	var b strings.Builder
	fmt.Fprintf(&b, `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>MicroSampler leakage heatmap — %s</title>
<style>
body { font: 14px/1.4 system-ui, sans-serif; margin: 24px; color: #222; }
h1 { font-size: 18px; }
.meta { color: #555; margin-bottom: 12px; }
text { font: 11px system-ui, sans-serif; fill: #333; }
.legend { margin-top: 10px; color: #555; font-size: 12px; }
</style>
</head>
<body>
<h1>Leakage heatmap — %s on %s</h1>
<div class="meta">%d iterations in %d windows; cell colour is the window&#39;s
Cram&#233;r&#39;s V (grey when not statistically significant), red ring marks
windows meeting the leak verdict. Row suffix &#9733; marks units flagged by the
whole-run report.</div>
`,
		html.EscapeString(h.Workload), html.EscapeString(h.Workload),
		html.EscapeString(h.Config), h.Iterations, h.Windows)

	fmt.Fprintf(&b, `<svg width="%d" height="%d" viewBox="0 0 %d %d" role="img">`,
		svgW, svgH, svgW, svgH)
	b.WriteString("\n")

	// Column headers: first iteration index of every 4th window.
	for w := 0; w < cols; w++ {
		if w%4 != 0 {
			continue
		}
		x := labelW + w*(cell+gap) + gap
		fmt.Fprintf(&b, `<text x="%d" y="%d">%d</text>`, x, headerH-8, w*h.Iterations/cols)
		b.WriteString("\n")
	}

	for r, u := range h.Units {
		y := headerH + r*(cell+gap) + gap
		label := u.Unit
		if u.Leaky {
			label += " ★"
		}
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end">%s</text>`,
			labelW-6, y+cell-8, html.EscapeString(label))
		b.WriteString("\n")
		for w, c := range u.Cells {
			x := labelW + w*(cell+gap) + gap
			stroke := "none"
			if c.Leaky {
				stroke = "#b2182b"
			}
			fmt.Fprintf(&b,
				`<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="%s" stroke-width="2"><title>%s window %d (iterations %d-%d): V=%.3f p=%.2e unique=%d</title></rect>`,
				x, y, cell, cell, heatColor(c.V, c.Significant), stroke,
				html.EscapeString(u.Unit), w, c.Start, c.End-1, c.V, c.P, c.Unique)
			b.WriteString("\n")
		}
	}
	b.WriteString("</svg>\n")
	b.WriteString(`<div class="legend">Generated by microsampler; data identical to the heatmap JSON artifact.</div>` + "\n")
	b.WriteString("</body>\n</html>\n")
	return b.String()
}
