package report

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"microsampler/internal/core"
	"microsampler/internal/stats"
	"microsampler/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// syntheticReport builds a report with hand-written iteration evidence:
// SQ-ADDR leaks only in the second half of the run (class-dependent
// hashes), LQ-ADDR never leaks (constant hash). 40 iterations,
// alternating classes.
func syntheticReport() *core.Report {
	const iters = 40
	rep := &core.Report{
		Workload:   "synthetic",
		Config:     "TestBoom",
		Runs:       1,
		IterHashes: map[trace.Unit][]uint64{},
	}
	sq := make([]uint64, 0, iters)
	lq := make([]uint64, 0, iters)
	for i := 0; i < iters; i++ {
		class := uint64(i % 2)
		rep.Iterations = append(rep.Iterations, trace.IterSample{Class: class, Cycles: 10})
		if i < iters/2 {
			sq = append(sq, 1) // constant: no association
		} else {
			sq = append(sq, 100+class) // perfectly class-determined
		}
		lq = append(lq, 7)
	}
	rep.IterHashes[trace.SQADDR] = sq
	rep.IterHashes[trace.LQADDR] = lq
	for _, u := range []trace.Unit{trace.SQADDR, trace.LQADDR} {
		t := stats.NewTable()
		for i, h := range rep.IterHashes[u] {
			t.Add(rep.Iterations[i].Class, h, 1)
		}
		rep.Units = append(rep.Units, core.UnitResult{
			Unit:  u,
			Table: t,
			Assoc: t.Analyze(),
		})
	}
	return rep
}

func TestHeatmapGolden(t *testing.T) {
	hm, err := BuildHeatmap(syntheticReport(), 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := hm.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "heatmap_golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("heatmap JSON drifted from golden (rerun with -update if intended)\ngot:\n%s", got)
	}
}

func TestHeatmapWindowing(t *testing.T) {
	rep := syntheticReport()
	hm, err := BuildHeatmap(rep, 4)
	if err != nil {
		t.Fatal(err)
	}
	if hm.Windows != 4 || hm.Iterations != 40 || len(hm.Units) != 2 {
		t.Fatalf("shape: %+v", hm)
	}
	var sq, lq HeatmapUnit
	for _, u := range hm.Units {
		switch u.Unit {
		case "SQ-ADDR":
			sq = u
		case "LQ-ADDR":
			lq = u
		}
	}
	// Windows must partition [0,40) contiguously.
	next := 0
	for _, c := range sq.Cells {
		if c.Start != next {
			t.Fatalf("window gap: cell starts at %d want %d", c.Start, next)
		}
		next = c.End
	}
	if next != 40 {
		t.Fatalf("windows end at %d want 40", next)
	}
	// The leak lives in the second half: first two windows quiet,
	// last two leaky.
	for i, c := range sq.Cells {
		wantLeak := i >= 2
		if c.Leaky != wantLeak {
			t.Errorf("SQ-ADDR window %d leaky=%v want %v (V=%g p=%g)",
				i, c.Leaky, wantLeak, c.V, c.P)
		}
	}
	for i, c := range lq.Cells {
		if c.Leaky || c.V != 0 {
			t.Errorf("LQ-ADDR window %d should be quiet, got V=%g", i, c.V)
		}
	}
}

// TestHeatmapFlagsMatchReport runs the real pipeline and checks the
// heatmap's per-unit leak flags equal the report's unit verdicts (the
// acceptance criterion for the artifact).
func TestHeatmapFlagsMatchReport(t *testing.T) {
	rep := sampleReport(t)
	hm, err := BuildHeatmap(rep, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hm.Units) != len(rep.Units) {
		t.Fatalf("%d heatmap units vs %d report units", len(hm.Units), len(rep.Units))
	}
	for i, u := range rep.Units {
		if hm.Units[i].Unit != u.Unit.String() || hm.Units[i].Leaky != u.Leaky() {
			t.Errorf("unit %v: heatmap leaky=%v report leaky=%v",
				u.Unit, hm.Units[i].Leaky, u.Leaky())
		}
	}
}

// TestHeatmapDeterministic repeats the same seeded verification and
// requires byte-identical heatmap JSON.
func TestHeatmapDeterministic(t *testing.T) {
	render := func() []byte {
		t.Helper()
		hm, err := BuildHeatmap(sampleReport(t), 8)
		if err != nil {
			t.Fatal(err)
		}
		data, err := hm.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if a, b := render(), render(); !bytes.Equal(a, b) {
		t.Error("heatmap JSON differs across identical seeded runs")
	}
}

func TestHeatmapErrors(t *testing.T) {
	if _, err := BuildHeatmap(&core.Report{}, 4); err == nil {
		t.Error("empty report must error")
	}
	rep := syntheticReport()
	rep.IterHashes[trace.SQADDR] = rep.IterHashes[trace.SQADDR][:3]
	if _, err := BuildHeatmap(rep, 4); err == nil ||
		!strings.Contains(err.Error(), "iteration hashes") {
		t.Errorf("misaligned hashes: %v", err)
	}
	// Window clamping: more windows than iterations.
	rep2 := syntheticReport()
	hm, err := BuildHeatmap(rep2, 1000)
	if err != nil || hm.Windows != 40 {
		t.Errorf("clamp: windows=%d err=%v", hm.Windows, err)
	}
	// Default selection.
	hm, err = BuildHeatmap(rep2, 0)
	if err != nil || hm.Windows != DefaultHeatmapWindows {
		t.Errorf("default: windows=%d err=%v", hm.Windows, err)
	}
}

func TestHeatmapHTML(t *testing.T) {
	hm, err := BuildHeatmap(syntheticReport(), 4)
	if err != nil {
		t.Fatal(err)
	}
	doc := hm.HTML()
	for _, want := range []string{
		"<!DOCTYPE html>", "<svg", "</svg>", "</html>",
		"SQ-ADDR", "LQ-ADDR", "<title>", "synthetic",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
	// One rect per unit×window cell.
	if got, want := strings.Count(doc, "<rect"), 2*4; got != want {
		t.Errorf("%d rects want %d", got, want)
	}
	// Self-contained: no external references.
	for _, banned := range []string{"http://", "https://", "src=", "href="} {
		if strings.Contains(doc, banned) {
			t.Errorf("HTML not self-contained: found %q", banned)
		}
	}
	// Deterministic rendering.
	if doc != hm.HTML() {
		t.Error("HTML rendering not deterministic")
	}
	var jsonDoc map[string]any
	data, _ := hm.JSON()
	if err := json.Unmarshal(data, &jsonDoc); err != nil {
		t.Fatalf("heatmap JSON invalid: %v", err)
	}
}
