package report

import (
	"encoding/json"

	"microsampler/internal/core"
	"microsampler/internal/stats"
	"microsampler/internal/telemetry"
)

// jsonReport is the stable machine-readable schema of a verification.
type jsonReport struct {
	Workload   string            `json:"workload"`
	Config     string            `json:"config"`
	Runs       int               `json:"runs"`
	Iterations int               `json:"iterations"`
	SimCycles  int64             `json:"simCycles"`
	Leaky      bool              `json:"leaky"`
	Units      []jsonUnitResult  `json:"units"`
	Stages     jsonStages        `json:"stagesMillis"`
	RunStats   *jsonRunStats     `json:"runStatsMicros,omitempty"`
	Sim        jsonSimStats      `json:"sim"`
	Samples    map[string]uint64 `json:"traceSamples,omitempty"`
}

type jsonUnitResult struct {
	Unit   string     `json:"unit"`
	Leaky  bool       `json:"leaky"`
	Assoc  jsonAssoc  `json:"assoc"`
	NoTime jsonAssoc  `json:"assocNoTiming"`
	Unique []jsonUniq `json:"uniqueFeatures,omitempty"`
}

type jsonAssoc struct {
	V           float64 `json:"cramersV"`
	VCorrected  float64 `json:"cramersVCorrected"`
	P           float64 `json:"pValue"`
	MI          float64 `json:"mutualInformationBits"`
	Chi2        float64 `json:"chiSquared"`
	DF          int     `json:"degreesOfFreedom"`
	N           int     `json:"observations"`
	UniqueSnaps int     `json:"uniqueSnapshots"`
	Classes     int     `json:"classes"`
}

type jsonUniq struct {
	Class  uint64   `json:"class"`
	Values []uint64 `json:"values"`
}

type jsonStages struct {
	Assemble int64 `json:"assemble"`
	Simulate int64 `json:"simulate"`
	Parse    int64 `json:"parse"`
	Stats    int64 `json:"stats"`
	Extract  int64 `json:"extract"`
}

// jsonDurStats is a per-run duration distribution in microseconds.
type jsonDurStats struct {
	N    int   `json:"n"`
	Min  int64 `json:"min"`
	Mean int64 `json:"mean"`
	P95  int64 `json:"p95"`
	Max  int64 `json:"max"`
}

type jsonRunStats struct {
	Wall     jsonDurStats  `json:"wall"`
	Simulate *jsonDurStats `json:"simulate,omitempty"`
	Parse    *jsonDurStats `json:"parse,omitempty"`
}

// jsonSimStats is the aggregated simulator counter block.
type jsonSimStats struct {
	Cycles            int64   `json:"cycles"`
	Instructions      uint64  `json:"instructions"`
	IPC               float64 `json:"ipc"`
	Branches          uint64  `json:"branches"`
	BranchMispredicts uint64  `json:"branchMispredicts"`
	DCacheHits        uint64  `json:"dcacheHits"`
	DCacheMisses      uint64  `json:"dcacheMisses"`
	TLBMisses         uint64  `json:"tlbMisses"`
	Prefetches        uint64  `json:"nlpPrefetches"`
	PrefetchesUseful  uint64  `json:"nlpUseful"`
	PrefetchesUseless uint64  `json:"nlpMispredicts"`
	LSUReplays        uint64  `json:"lsuReplays"`
	MSHRHighWater     int     `json:"mshrHighWater"`
}

// JSON renders the report in the stable machine-readable schema.
func JSON(rep *core.Report) ([]byte, error) {
	out := jsonReport{
		Workload:   rep.Workload,
		Config:     rep.Config,
		Runs:       rep.Runs,
		Iterations: len(rep.Iterations),
		SimCycles:  rep.SimCycles,
		Leaky:      rep.AnyLeak(),
		Stages: jsonStages{
			Assemble: rep.Stages.Assemble.Milliseconds(),
			Simulate: rep.Stages.Simulate.Milliseconds(),
			Parse:    rep.Stages.Parse.Milliseconds(),
			Stats:    rep.Stages.Stats.Milliseconds(),
			Extract:  rep.Stages.Extract.Milliseconds(),
		},
		Sim: jsonSimStats{
			Cycles:            rep.Sim.Cycles,
			Instructions:      rep.Sim.Instructions,
			IPC:               rep.Sim.IPC(),
			Branches:          rep.Sim.Branches,
			BranchMispredicts: rep.Sim.BranchMispredicts,
			DCacheHits:        rep.Sim.DCacheHits,
			DCacheMisses:      rep.Sim.DCacheMisses,
			TLBMisses:         rep.Sim.TLBMisses,
			Prefetches:        rep.Sim.Prefetches,
			PrefetchesUseful:  rep.Sim.PrefetchesUseful,
			PrefetchesUseless: rep.Sim.PrefetchesUseless,
			LSUReplays:        rep.Sim.LSUReplays,
			MSHRHighWater:     rep.Sim.MSHRHighWater,
		},
	}
	if rep.Stages.RunWall.N > 0 {
		rs := &jsonRunStats{Wall: jsonDurStatsOf(rep.Stages.RunWall)}
		if rep.Stages.RunSim.N > 0 {
			d := jsonDurStatsOf(rep.Stages.RunSim)
			rs.Simulate = &d
		}
		if rep.Stages.RunParse.N > 0 {
			d := jsonDurStatsOf(rep.Stages.RunParse)
			rs.Parse = &d
		}
		out.RunStats = rs
	}
	if len(rep.Samples) > 0 {
		out.Samples = make(map[string]uint64, len(rep.Samples))
		for u, n := range rep.Samples {
			out.Samples[u.String()] = n
		}
	}
	for _, u := range rep.Units {
		ju := jsonUnitResult{
			Unit:   u.Unit.String(),
			Leaky:  u.Leaky(),
			Assoc:  jsonAssocOf(u.Assoc),
			NoTime: jsonAssocOf(u.AssocNoTiming),
		}
		classes := make([]uint64, 0, len(u.UniqueFeatures))
		for c := range u.UniqueFeatures {
			classes = append(classes, c)
		}
		sortUint64(classes)
		for _, c := range classes {
			if len(u.UniqueFeatures[c]) == 0 {
				continue
			}
			ju.Unique = append(ju.Unique, jsonUniq{
				Class:  c,
				Values: u.UniqueFeatures[c],
			})
		}
		out.Units = append(out.Units, ju)
	}
	return json.MarshalIndent(out, "", "  ")
}

func jsonDurStatsOf(d telemetry.DurStats) jsonDurStats {
	return jsonDurStats{
		N:    d.N,
		Min:  d.Min.Microseconds(),
		Mean: d.Mean.Microseconds(),
		P95:  d.P95.Microseconds(),
		Max:  d.Max.Microseconds(),
	}
}

func jsonAssocOf(a stats.Association) jsonAssoc {
	return jsonAssoc{
		V:           a.V,
		VCorrected:  a.VCorrected,
		P:           a.P,
		MI:          a.MI,
		Chi2:        a.Chi2,
		DF:          a.DF,
		N:           a.N,
		UniqueSnaps: a.Cols,
		Classes:     a.Rows,
	}
}

func sortUint64(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
