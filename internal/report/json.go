package report

import (
	"encoding/json"

	"microsampler/internal/core"
	"microsampler/internal/stats"
)

// jsonReport is the stable machine-readable schema of a verification.
type jsonReport struct {
	Workload   string           `json:"workload"`
	Config     string           `json:"config"`
	Runs       int              `json:"runs"`
	Iterations int              `json:"iterations"`
	SimCycles  int64            `json:"simCycles"`
	Leaky      bool             `json:"leaky"`
	Units      []jsonUnitResult `json:"units"`
	Stages     jsonStages       `json:"stagesMillis"`
}

type jsonUnitResult struct {
	Unit   string     `json:"unit"`
	Leaky  bool       `json:"leaky"`
	Assoc  jsonAssoc  `json:"assoc"`
	NoTime jsonAssoc  `json:"assocNoTiming"`
	Unique []jsonUniq `json:"uniqueFeatures,omitempty"`
}

type jsonAssoc struct {
	V           float64 `json:"cramersV"`
	VCorrected  float64 `json:"cramersVCorrected"`
	P           float64 `json:"pValue"`
	MI          float64 `json:"mutualInformationBits"`
	Chi2        float64 `json:"chiSquared"`
	DF          int     `json:"degreesOfFreedom"`
	N           int     `json:"observations"`
	UniqueSnaps int     `json:"uniqueSnapshots"`
	Classes     int     `json:"classes"`
}

type jsonUniq struct {
	Class  uint64   `json:"class"`
	Values []uint64 `json:"values"`
}

type jsonStages struct {
	Simulate int64 `json:"simulate"`
	Parse    int64 `json:"parse"`
	Stats    int64 `json:"stats"`
	Extract  int64 `json:"extract"`
}

// JSON renders the report in the stable machine-readable schema.
func JSON(rep *core.Report) ([]byte, error) {
	out := jsonReport{
		Workload:   rep.Workload,
		Config:     rep.Config,
		Runs:       rep.Runs,
		Iterations: len(rep.Iterations),
		SimCycles:  rep.SimCycles,
		Leaky:      rep.AnyLeak(),
		Stages: jsonStages{
			Simulate: rep.Stages.Simulate.Milliseconds(),
			Parse:    rep.Stages.Parse.Milliseconds(),
			Stats:    rep.Stages.Stats.Milliseconds(),
			Extract:  rep.Stages.Extract.Milliseconds(),
		},
	}
	for _, u := range rep.Units {
		ju := jsonUnitResult{
			Unit:   u.Unit.String(),
			Leaky:  u.Leaky(),
			Assoc:  jsonAssocOf(u.Assoc),
			NoTime: jsonAssocOf(u.AssocNoTiming),
		}
		classes := make([]uint64, 0, len(u.UniqueFeatures))
		for c := range u.UniqueFeatures {
			classes = append(classes, c)
		}
		sortUint64(classes)
		for _, c := range classes {
			if len(u.UniqueFeatures[c]) == 0 {
				continue
			}
			ju.Unique = append(ju.Unique, jsonUniq{
				Class:  c,
				Values: u.UniqueFeatures[c],
			})
		}
		out.Units = append(out.Units, ju)
	}
	return json.MarshalIndent(out, "", "  ")
}

func jsonAssocOf(a stats.Association) jsonAssoc {
	return jsonAssoc{
		V:           a.V,
		VCorrected:  a.VCorrected,
		P:           a.P,
		MI:          a.MI,
		Chi2:        a.Chi2,
		DF:          a.DF,
		N:           a.N,
		UniqueSnaps: a.Cols,
		Classes:     a.Rows,
	}
}

func sortUint64(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
