package report

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestJSONRoundTrip guards the stable schema: RenderJSON output must
// unmarshal back into the schema types and re-marshal byte-identically,
// with every telemetry field surviving the trip.
func TestJSONRoundTrip(t *testing.T) {
	rep := sampleReport(t)
	data, err := JSON(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back jsonReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("report JSON does not unmarshal into its own schema: %v", err)
	}
	again, err := json.MarshalIndent(back, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Errorf("JSON round trip not byte-identical:\n--- first\n%s\n--- second\n%s",
			data, again)
	}
}

// TestJSONFieldFidelity checks the decoded document against the source
// report field by field, including the simulator-counter and run-stats
// telemetry blocks.
func TestJSONFieldFidelity(t *testing.T) {
	rep := sampleReport(t)
	data, err := JSON(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back jsonReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Workload != rep.Workload || back.Config != rep.Config || back.Runs != rep.Runs {
		t.Errorf("identity fields: %+v", back)
	}
	if back.Iterations != len(rep.Iterations) || back.SimCycles != rep.SimCycles {
		t.Errorf("iteration/cycle counts: got %d/%d want %d/%d",
			back.Iterations, back.SimCycles, len(rep.Iterations), rep.SimCycles)
	}
	if back.Leaky != rep.AnyLeak() {
		t.Errorf("leaky = %v want %v", back.Leaky, rep.AnyLeak())
	}
	if back.Sim.Cycles != rep.Sim.Cycles || back.Sim.Instructions != rep.Sim.Instructions ||
		back.Sim.Branches != rep.Sim.Branches || back.Sim.DCacheHits != rep.Sim.DCacheHits ||
		back.Sim.IPC != rep.Sim.IPC() {
		t.Errorf("sim counter block diverges: %+v vs %+v", back.Sim, rep.Sim)
	}
	if back.RunStats == nil {
		t.Fatal("runStatsMicros missing")
	}
	if back.RunStats.Wall.N != rep.Stages.RunWall.N {
		t.Errorf("run wall stats N = %d want %d", back.RunStats.Wall.N, rep.Stages.RunWall.N)
	}
	if len(back.Samples) == 0 {
		t.Error("traceSamples missing")
	}
	for u, n := range rep.Samples {
		if back.Samples[u.String()] != n {
			t.Errorf("samples[%s] = %d want %d", u, back.Samples[u.String()], n)
		}
	}
	if len(back.Units) != len(rep.Units) {
		t.Fatalf("units = %d want %d", len(back.Units), len(rep.Units))
	}
	for i, ju := range back.Units {
		ur := rep.Units[i]
		if ju.Unit != ur.Unit.String() || ju.Leaky != ur.Leaky() {
			t.Errorf("unit %d: %s/%v want %s/%v", i, ju.Unit, ju.Leaky, ur.Unit, ur.Leaky())
		}
		if ju.Assoc.V != ur.Assoc.V || ju.Assoc.P != ur.Assoc.P ||
			ju.Assoc.Chi2 != ur.Assoc.Chi2 || ju.Assoc.DF != ur.Assoc.DF {
			t.Errorf("unit %s association diverges: %+v vs %+v", ju.Unit, ju.Assoc, ur.Assoc)
		}
		if ju.NoTime.V != ur.AssocNoTiming.V {
			t.Errorf("unit %s timing-free V = %v want %v", ju.Unit, ju.NoTime.V, ur.AssocNoTiming.V)
		}
	}
}
