package report

import (
	"encoding/json"
	"fmt"
	"html"
	"strings"

	"microsampler/internal/core"
)

// MatrixArtifact is the serialisable outcome of a configuration-grid
// sweep (core.VerifyMatrix): per-cell verdicts plus, for every leaky
// cell, the top provenance entries localising the leak to instructions.
// Like the heatmap, it is built exclusively from deterministic inputs —
// no wall-clock quantities — so JSON renderings are byte-identical
// across repeated sweeps of the same seed, whatever the parallelism.
type MatrixArtifact struct {
	Workload string       `json:"workload"`
	Grid     []core.Axis  `json:"grid"`
	Cells    []MatrixCell `json:"cells"`
}

// MatrixCell is one grid cell's verdict plus its leak localisation.
type MatrixCell struct {
	core.CellResult
	// TopProvenance lists the strongest instruction attributions of a
	// leaky cell (BuildProvenance order), empty for clean or failed
	// cells.
	TopProvenance []MatrixProv `json:"topProvenance,omitempty"`
}

// MatrixProv is one instruction attribution of a leaky cell.
type MatrixProv struct {
	Unit   string  `json:"unit"`
	PC     uint64  `json:"pc"`
	Symbol string  `json:"symbol,omitempty"`
	Via    string  `json:"via"`
	V      float64 `json:"cramersV"`
}

// DefaultMatrixProvenance is the per-cell attribution count used when
// BuildMatrix is passed a non-positive topN.
const DefaultMatrixProvenance = 3

// BuildMatrix distils a sweep into its artifact: verdicts straight from
// the cells, and for each leaky cell with a report the top provenance
// entries. A cell whose provenance cannot be built keeps its verdict
// and records the reason in the cell error, mirroring VerifyMatrix's
// per-cell failure containment.
func BuildMatrix(m *core.Matrix, topN int) *MatrixArtifact {
	if topN <= 0 {
		topN = DefaultMatrixProvenance
	}
	a := &MatrixArtifact{
		Workload: m.Workload,
		Grid:     m.Grid,
		Cells:    make([]MatrixCell, 0, len(m.Cells)),
	}
	for _, c := range m.Cells {
		mc := MatrixCell{CellResult: c}
		if c.Leaky && c.Report != nil {
			pv, err := BuildProvenance(c.Report)
			if err != nil {
				mc.Err = fmt.Sprintf("provenance: %v", err)
			} else {
				for i, e := range pv.Entries {
					if i >= topN {
						break
					}
					mc.TopProvenance = append(mc.TopProvenance, MatrixProv{
						Unit: e.Unit, PC: e.PC, Symbol: e.Symbol, Via: e.Via, V: e.V,
					})
				}
			}
		}
		a.Cells = append(a.Cells, mc)
	}
	return a
}

// JSON renders the artifact as indented, deterministic JSON.
func (a *MatrixArtifact) JSON() ([]byte, error) {
	return json.MarshalIndent(a, "", "  ")
}

// HTML renders the artifact as a self-contained verdict heatmap: the
// last grid axis spans the columns, the remaining axes the rows, cell
// colour is the cell's strongest significant Cramér's V on the same
// white→red ramp as the leakage heatmap, a red ring marks leaky cells,
// and tooltips carry the flagged units and top attribution. Failed
// cells render hatched grey with the error in the tooltip. No external
// assets.
func (a *MatrixArtifact) HTML() string {
	const (
		cell    = 34 // px per matrix cell
		gap     = 2
		headerH = 26
	)
	// Columns: the last axis. Rows: the cartesian product of the rest,
	// which is exactly how VerifyMatrix enumerates cells (last axis
	// fastest), so cell i lives at (i/cols, i%cols).
	cols := 1
	var colAxis core.Axis
	if len(a.Grid) > 0 {
		colAxis = a.Grid[len(a.Grid)-1]
		cols = len(colAxis.Values)
	}
	rows := (len(a.Cells) + cols - 1) / cols

	rowLabel := func(r int) string {
		i := r * cols
		if i >= len(a.Cells) {
			return ""
		}
		c := a.Cells[i]
		if len(c.Axes) <= 1 {
			return "(defaults)"
		}
		parts := make([]string, 0, len(c.Axes)-1)
		for j := 0; j < len(c.Axes)-1; j++ {
			parts = append(parts, c.Axes[j]+"="+c.Values[j])
		}
		return strings.Join(parts, ",")
	}
	labelW := 120
	for r := 0; r < rows; r++ {
		if w := 10 + 7*len(rowLabel(r)); w > labelW {
			labelW = w
		}
	}
	svgW := labelW + cols*(cell+gap) + gap
	svgH := headerH + rows*(cell+gap) + gap

	var b strings.Builder
	fmt.Fprintf(&b, `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>MicroSampler verdict matrix — %s</title>
<style>
body { font: 14px/1.4 system-ui, sans-serif; margin: 24px; color: #222; }
h1 { font-size: 18px; }
.meta { color: #555; margin-bottom: 12px; }
text { font: 11px system-ui, sans-serif; fill: #333; }
.legend { margin-top: 10px; color: #555; font-size: 12px; }
</style>
</head>
<body>
<h1>Verdict matrix — %s</h1>
<div class="meta">%d configuration cells; cell colour is the strongest
statistically significant Cram&#233;r&#39;s V, red ring marks leaky cells,
grey marks failed cells. Hover a cell for the flagged units and top
attribution.</div>
`,
		html.EscapeString(a.Workload), html.EscapeString(a.Workload), len(a.Cells))

	fmt.Fprintf(&b, `<svg width="%d" height="%d" viewBox="0 0 %d %d" role="img">`,
		svgW, svgH, svgW, svgH)
	b.WriteString("\n")

	// Column headers: the last axis's values.
	for w := 0; w < cols; w++ {
		x := labelW + w*(cell+gap) + gap
		label := ""
		if len(colAxis.Values) > 0 {
			label = colAxis.Name + "=" + colAxis.Values[w]
		}
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`, x, headerH-8, html.EscapeString(label))
		b.WriteString("\n")
	}

	for i, c := range a.Cells {
		r, w := i/cols, i%cols
		x := labelW + w*(cell+gap) + gap
		y := headerH + r*(cell+gap) + gap
		if w == 0 {
			fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end">%s</text>`,
				labelW-6, y+cell-12, html.EscapeString(rowLabel(r)))
			b.WriteString("\n")
		}
		fill := heatColor(c.MaxV, c.MaxVUnit != "")
		stroke := "none"
		if c.Leaky {
			stroke = "#b2182b"
		}
		title := c.Name
		switch {
		case c.Err != "":
			fill = "#cccccc"
			title += ": ERROR " + c.Err
		case c.Leaky:
			units := make([]string, 0, len(c.Flagged))
			for _, f := range c.Flagged {
				units = append(units, fmt.Sprintf("%s (V=%.3f)", f.Unit, f.V))
			}
			title += ": LEAKY " + strings.Join(units, ", ")
			if len(c.TopProvenance) > 0 {
				p := c.TopProvenance[0]
				title += fmt.Sprintf("; top attribution %s @ %s (pc=%#x, via %s)",
					p.Unit, p.Symbol, p.PC, p.Via)
			}
		default:
			title += fmt.Sprintf(": clean (max significant V=%.3f)", c.MaxV)
		}
		fmt.Fprintf(&b,
			`<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="%s" stroke-width="2"><title>%s</title></rect>`,
			x, y, cell, cell, fill, stroke, html.EscapeString(title))
		b.WriteString("\n")
	}
	b.WriteString("</svg>\n")
	b.WriteString(`<div class="legend">Generated by microsampler; data identical to the matrix JSON artifact.</div>` + "\n")
	b.WriteString("</body>\n</html>\n")
	return b.String()
}
