package report

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"microsampler/internal/core"
	"microsampler/internal/workloads"
)

// sampleMatrix sweeps the TAGE-HIST config-flip workload over a 4-cell
// grid: the predictor axis flips the verdict, the prefetch axis must
// not. Everything downstream of this sweep is deterministic.
func sampleMatrix(t *testing.T) *core.Matrix {
	t.Helper()
	w, err := workloads.ByName("TAGE-HIST")
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.ParseGridSpec("prefetch=none,stride;predictor=gshare,tage")
	if err != nil {
		t.Fatal(err)
	}
	opts := core.MatrixOptions{Grid: g}
	opts.Runs = 4
	opts.Warmup = 4
	m, err := core.VerifyMatrix(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMatrixGolden(t *testing.T) {
	got, err := BuildMatrix(sampleMatrix(t), 3).JSON()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "matrix_golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("matrix JSON drifted from golden (rerun with -update if intended)\ngot:\n%s", got)
	}
}

func TestMatrixArtifactShape(t *testing.T) {
	m := sampleMatrix(t)
	art := BuildMatrix(m, 3)
	if art.Workload != "TAGE-HIST" || len(art.Cells) != 4 {
		t.Fatalf("shape: workload=%q cells=%d", art.Workload, len(art.Cells))
	}
	for i, c := range art.Cells {
		if c.Err != "" {
			t.Fatalf("cell %s failed: %s", c.Name, c.Err)
		}
		wantLeaky := strings.Contains(c.Name, "predictor=tage")
		if c.Leaky != wantLeaky {
			t.Errorf("cell %s: leaky=%v want %v", c.Name, c.Leaky, wantLeaky)
		}
		if c.Leaky {
			if len(c.TopProvenance) == 0 {
				t.Errorf("cell %s: leaky without provenance", c.Name)
			} else if c.TopProvenance[0].Unit != "TAGE-PRED" {
				t.Errorf("cell %s: top attribution %s, want TAGE-PRED", c.Name, c.TopProvenance[0].Unit)
			}
			if len(c.Flagged) == 0 {
				t.Errorf("cell %s: leaky without flagged units", c.Name)
			}
		} else if len(c.TopProvenance) != 0 {
			t.Errorf("cell %s: clean cell carries provenance", c.Name)
		}
		// The artifact must agree with the sweep's cells one-to-one.
		if c.Name != m.Cells[i].Name || c.Leaky != m.Cells[i].Leaky {
			t.Errorf("cell %d: artifact/sweep mismatch", i)
		}
	}
	var decoded map[string]any
	data, err := art.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("matrix JSON invalid: %v", err)
	}
	// Wall-clock quantities must never enter the artifact.
	for _, banned := range []string{"elapsed", "seconds", "duration", "wall"} {
		if strings.Contains(strings.ToLower(string(data)), banned) {
			t.Errorf("matrix JSON contains wall-clock field %q", banned)
		}
	}
}

func TestMatrixHTML(t *testing.T) {
	art := BuildMatrix(sampleMatrix(t), 3)
	doc := art.HTML()
	for _, want := range []string{
		"<!DOCTYPE html>", "<svg", "</svg>", "</html>", "<title>",
		"TAGE-HIST", "predictor=tage", "prefetch=stride",
		"#b2182b", // the leaky-cell ring
		"TAGE-PRED",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
	if got, want := strings.Count(doc, "<rect"), len(art.Cells); got != want {
		t.Errorf("%d rects want %d", got, want)
	}
	for _, banned := range []string{"http://", "https://", "src=", "href="} {
		if strings.Contains(doc, banned) {
			t.Errorf("HTML not self-contained: found %q", banned)
		}
	}
	if doc != art.HTML() {
		t.Error("HTML rendering not deterministic")
	}
}

func TestMatrixFailedCellContained(t *testing.T) {
	// A cell whose verification fails keeps its error and must not take
	// the artifact down with it.
	m := &core.Matrix{
		Workload: "x",
		Grid:     []core.Axis{{Name: "predictor", Values: []string{"gshare", "tage"}}},
		Cells: []core.CellResult{
			{Cell: core.Cell{Name: "predictor=gshare", Axes: []string{"predictor"}, Values: []string{"gshare"}}},
			{
				Cell: core.Cell{Name: "predictor=tage", Axes: []string{"predictor"}, Values: []string{"tage"}},
				Err:  "boom",
			},
		},
	}
	art := BuildMatrix(m, 3)
	if art.Cells[1].Err != "boom" {
		t.Errorf("cell error lost: %+v", art.Cells[1])
	}
	doc := art.HTML()
	if !strings.Contains(doc, "ERROR boom") {
		t.Error("HTML does not surface the failed cell")
	}
	if _, err := art.JSON(); err != nil {
		t.Fatal(err)
	}
}
