package report

import (
	"encoding/json"
	"fmt"
	"html"
	"sort"
	"strings"

	"microsampler/internal/asm"
	"microsampler/internal/core"
	"microsampler/internal/stats"
	"microsampler/internal/trace"
)

// Provenance is the instruction-level attribution of a verification's
// verdicts: for each tracked unit, the program counters whose
// event streams statistically separate the secret classes, ranked by
// association strength. It answers the question the per-unit report
// leaves open — *which instruction* made SQ-ADDR (or any other unit)
// leak — in the spirit of MicroWalk's leakage localization.
//
// Built from deterministic inputs (merged provenance streams and the
// iteration order), so JSON renderings are byte-identical across
// repeated runs of the same seed.
type Provenance struct {
	Workload   string      `json:"workload"`
	Config     string      `json:"config"`
	Iterations int         `json:"iterations"`
	Entries    []ProvEntry `json:"entries"`
	// Unattributed lists class-dependent evidence whose value resolved
	// to no instruction (e.g. a prefetched line no load ever touched).
	Unattributed []ProvValue `json:"unattributed,omitempty"`
}

// ProvEntry attributes class-dependent microarchitectural behaviour to
// one instruction of one unit.
type ProvEntry struct {
	Unit   string `json:"unit"`
	PC     uint64 `json:"pc"`
	Symbol string `json:"symbol,omitempty"` // nearest preceding text label
	Disasm string `json:"disasm,omitempty"` // decoded instruction
	// Via explains the attribution path: "direct" (the unit's events
	// carry the PC), "store-addr" or "load-addr" (the event value is an
	// address resolved through the store/load attribution maps).
	Via         string  `json:"via"`
	V           float64 `json:"cramersV"`
	P           float64 `json:"pValue"`
	Significant bool    `json:"significant"`
	Leaky       bool    `json:"leaky"`
	// Events counts the unit events this entry's streams contributed
	// across kept iterations.
	Events uint64 `json:"events"`
	// Values samples the resolved event values (addresses) for
	// value-keyed units, as hex strings.
	Values []string `json:"values,omitempty"`
}

// ProvValue is class-dependent evidence that resolved to no
// instruction.
type ProvValue struct {
	Unit   string  `json:"unit"`
	Value  uint64  `json:"value"`
	V      float64 `json:"cramersV"`
	P      float64 `json:"pValue"`
	Events uint64  `json:"events"`
}

// Address granularities of the value-keyed units. Both Table III
// configurations use 64-byte cache lines and 4 KiB pages; the sampled
// values are line addresses (LFB/NLP/MSHR), byte addresses (Cache) and
// page numbers (TLB).
const (
	provLineBytes = 64
	provPageBytes = 4096
)

// maxProvValues bounds the example-value sample kept per entry.
const maxProvValues = 4

// BuildProvenance ranks the per-PC leakage evidence of a report. For
// every provenance stream it builds the dense per-iteration hash
// sequence (iterations without events hash to the empty stream),
// computes Cramér's V against the secret classes, resolves value keys
// to the instructions that produced the address, and keeps the
// statistically significant entries ranked by V. A report with no
// provenance streams (e.g. deserialised from an older artifact) yields
// an empty ranking rather than an error.
func BuildProvenance(rep *core.Report) (*Provenance, error) {
	n := len(rep.Iterations)
	if n == 0 {
		return nil, fmt.Errorf("provenance: report has no iterations")
	}
	pv := &Provenance{
		Workload:   rep.Workload,
		Config:     rep.Config,
		Iterations: n,
	}
	empty := trace.EmptyStreamHash()
	dense := make([]uint64, n)
	type agg struct {
		unit   trace.Unit
		pc     uint64
		via    string
		a      stats.Association
		events uint64
		values []uint64
	}
	var entries []agg
	for _, up := range rep.Provenance {
		perPC := map[uint64]*agg{}
		var pcs []uint64
		for _, s := range up.Streams {
			for i := range dense {
				dense[i] = empty
			}
			for i, it := range s.Iters {
				dense[it] = s.Hashes[i]
			}
			t := stats.NewTable()
			for i := 0; i < n; i++ {
				t.Add(rep.Iterations[i].Class, dense[i], 1)
			}
			a := t.Analyze()
			if up.Direct {
				if !a.Significant() {
					continue
				}
				entries = append(entries, agg{
					unit: up.Unit, pc: s.Key, via: "direct", a: a, events: s.Events,
				})
				continue
			}
			resolved := resolveValue(rep, up.Unit, s.Key)
			if len(resolved) == 0 {
				if a.Significant() {
					pv.Unattributed = append(pv.Unattributed, ProvValue{
						Unit: up.Unit.String(), Value: s.Key,
						V: a.V, P: a.P, Events: s.Events,
					})
				}
				continue
			}
			for _, r := range resolved {
				g := perPC[r.pc]
				if g == nil {
					g = &agg{unit: up.Unit, pc: r.pc, via: r.via}
					perPC[r.pc] = g
					pcs = append(pcs, r.pc)
				}
				// Keep the strongest association among the values this
				// PC produced: one secret-indexed instruction touches
				// many addresses, each a weaker witness than the best.
				if a.V > g.a.V || (a.V == g.a.V && a.P < g.a.P) {
					g.a = a
				}
				g.events += s.Events
				if len(g.values) < maxProvValues {
					g.values = append(g.values, s.Key)
				}
			}
		}
		sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
		for _, pc := range pcs {
			g := perPC[pc]
			if !g.a.Significant() {
				continue
			}
			entries = append(entries, *g)
		}
	}

	unitRank := make(map[trace.Unit]int, 16)
	for i, u := range trace.AllUnits() {
		unitRank[u] = i
	}
	sort.SliceStable(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.a.V != b.a.V {
			return a.a.V > b.a.V
		}
		if a.events != b.events {
			return a.events > b.events
		}
		if unitRank[a.unit] != unitRank[b.unit] {
			return unitRank[a.unit] < unitRank[b.unit]
		}
		return a.pc < b.pc
	})

	pv.Entries = make([]ProvEntry, 0, len(entries))
	for _, g := range entries {
		e := ProvEntry{
			Unit:        g.unit.String(),
			PC:          g.pc,
			Via:         g.via,
			V:           g.a.V,
			P:           g.a.P,
			Significant: g.a.Significant(),
			Leaky:       g.a.Leaky(),
			Events:      g.events,
		}
		if rep.Program != nil {
			e.Symbol = rep.Program.SymbolAt(g.pc)
			e.Disasm = disasmAt(rep.Program, g.pc)
		}
		for _, v := range g.values {
			e.Values = append(e.Values, fmt.Sprintf("%#x", v))
		}
		pv.Entries = append(pv.Entries, e)
	}
	return pv, nil
}

// resolvedPC is one instruction a value key resolved to.
type resolvedPC struct {
	pc  uint64
	via string
}

// resolveValue maps an observed value of a value-keyed unit back to the
// instructions that produced the address, through the report's
// store-writer and load-reader attribution maps. The match granularity
// follows the unit: byte addresses for the cache request stream, line
// addresses for the fill-buffer/prefetcher/MSHR streams, page numbers
// for the TLB.
func resolveValue(rep *core.Report, u trace.Unit, v uint64) []resolvedPC {
	match := func(addr uint64) bool { return addr == v }
	switch u {
	case trace.LFBADDR, trace.NLPADDR, trace.MSHRADDR:
		match = func(addr uint64) bool { return addr&^uint64(provLineBytes-1) == v }
	case trace.TLBADDR:
		match = func(addr uint64) bool { return addr/provPageBytes == v }
	}
	var out []resolvedPC
	seen := map[uint64]bool{}
	collect := func(m map[uint64][]uint64, via string) {
		addrs := make([]uint64, 0, len(m))
		for addr := range m {
			if match(addr) {
				addrs = append(addrs, addr)
			}
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		for _, addr := range addrs {
			for _, pc := range m[addr] {
				if !seen[pc] {
					seen[pc] = true
					out = append(out, resolvedPC{pc: pc, via: via})
				}
			}
		}
	}
	collect(rep.StoreWriters, "store-addr")
	collect(rep.LoadReaders, "load-addr")
	return out
}

// disasmAt decodes the instruction at pc, or "" when pc lies outside
// the text segment.
func disasmAt(p *asm.Program, pc uint64) string {
	if pc < p.TextBase || pc+4 > p.TextBase+uint64(len(p.Text)) || (pc-p.TextBase)%4 != 0 {
		return ""
	}
	lines := asm.Disassemble(p)
	idx := int(pc-p.TextBase) / 4
	if idx >= len(lines) || !lines[idx].Valid {
		return ""
	}
	return lines[idx].Inst.String()
}

// JSON renders the provenance as indented, deterministic JSON.
func (p *Provenance) JSON() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// HTML renders the provenance as a self-contained single-file HTML
// document: the ranked attribution table, followed by a disassembly
// excerpt around each of the strongest instructions. No external
// assets, so the file can be archived next to the run's JSON artifacts
// and opened anywhere.
func (p *Provenance) HTML() string {
	var b strings.Builder
	fmt.Fprintf(&b, `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>MicroSampler leakage provenance — %s</title>
<style>
body { font: 14px/1.4 system-ui, sans-serif; margin: 24px; color: #222; }
h1 { font-size: 18px; }
h2 { font-size: 15px; margin-top: 24px; }
.meta { color: #555; margin-bottom: 12px; }
table { border-collapse: collapse; }
th, td { padding: 4px 10px; border-bottom: 1px solid #ddd; text-align: left; }
th { border-bottom: 2px solid #999; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
tr.leaky td { background: #fdecea; }
code, pre { font: 12px/1.5 ui-monospace, monospace; }
pre { background: #f6f6f6; padding: 8px 12px; }
pre .hit { background: #fdecea; display: inline-block; width: 100%%; }
.legend { margin-top: 10px; color: #555; font-size: 12px; }
</style>
</head>
<body>
<h1>Leakage provenance — %s on %s</h1>
<div class="meta">%d iterations. Instructions ranked by the Cram&#233;r&#39;s V of
their per-iteration event streams against the secret class; rows meeting the
leak verdict are shaded.</div>
`,
		html.EscapeString(p.Workload), html.EscapeString(p.Workload),
		html.EscapeString(p.Config), p.Iterations)

	if len(p.Entries) == 0 {
		b.WriteString("<p>No statistically significant instruction-level evidence.</p>\n")
	} else {
		b.WriteString("<table>\n<tr><th>#</th><th>unit</th><th>pc</th><th>instruction</th><th>label</th><th>via</th><th>V</th><th>p</th><th>events</th><th>values</th></tr>\n")
		for i, e := range p.Entries {
			cls := ""
			if e.Leaky {
				cls = ` class="leaky"`
			}
			fmt.Fprintf(&b,
				"<tr%s><td class=\"num\">%d</td><td>%s</td><td><code>%#x</code></td><td><code>%s</code></td><td><code>%s</code></td><td>%s</td><td class=\"num\">%.3f</td><td class=\"num\">%.2e</td><td class=\"num\">%d</td><td><code>%s</code></td></tr>\n",
				cls, i+1, html.EscapeString(e.Unit), e.PC,
				html.EscapeString(e.Disasm), html.EscapeString(e.Symbol),
				html.EscapeString(e.Via), e.V, e.P, e.Events,
				html.EscapeString(strings.Join(e.Values, " ")))
		}
		b.WriteString("</table>\n")
	}

	if len(p.Unattributed) > 0 {
		b.WriteString("<h2>Unattributed evidence</h2>\n<table>\n<tr><th>unit</th><th>value</th><th>V</th><th>p</th><th>events</th></tr>\n")
		for _, u := range p.Unattributed {
			fmt.Fprintf(&b,
				"<tr><td>%s</td><td><code>%#x</code></td><td class=\"num\">%.3f</td><td class=\"num\">%.2e</td><td class=\"num\">%d</td></tr>\n",
				html.EscapeString(u.Unit), u.Value, u.V, u.P, u.Events)
		}
		b.WriteString("</table>\n")
	}

	b.WriteString(`<div class="legend">Generated by microsampler; data identical to the provenance JSON artifact.</div>` + "\n")
	b.WriteString("</body>\n</html>\n")
	return b.String()
}

// HTMLWithDisasm is HTML plus disassembly context around the top
// entries: up to `around` instructions on each side of each of the
// first `top` ranked PCs, with the attributed instruction highlighted.
func (p *Provenance) HTMLWithDisasm(prog *asm.Program, top, around int) string {
	base := p.HTML()
	if prog == nil || len(p.Entries) == 0 || top <= 0 {
		return base
	}
	lines := asm.Disassemble(prog)
	if len(lines) == 0 {
		return base
	}
	var b strings.Builder
	b.WriteString("<h2>Disassembly context</h2>\n")
	shown := map[uint64]bool{}
	count := 0
	for _, e := range p.Entries {
		if count >= top {
			break
		}
		if shown[e.PC] || e.PC < prog.TextBase {
			continue
		}
		idx := int(e.PC-prog.TextBase) / 4
		if idx >= len(lines) {
			continue
		}
		shown[e.PC] = true
		count++
		lo, hi := idx-around, idx+around+1
		if lo < 0 {
			lo = 0
		}
		if hi > len(lines) {
			hi = len(lines)
		}
		fmt.Fprintf(&b, "<h2>%s &#8656; <code>%#x</code> (%s)</h2>\n<pre>",
			html.EscapeString(e.Unit), e.PC, html.EscapeString(e.Symbol))
		for i := lo; i < hi; i++ {
			text := html.EscapeString(lines[i].String())
			if i == idx {
				fmt.Fprintf(&b, `<span class="hit">%s   &#8592; here</span>`+"\n", text)
			} else {
				b.WriteString(text + "\n")
			}
		}
		b.WriteString("</pre>\n")
	}
	ctx := b.String()
	// Splice the context before the closing legend.
	const marker = `<div class="legend">`
	if i := strings.LastIndex(base, marker); i >= 0 {
		return base[:i] + ctx + base[i:]
	}
	return base + ctx
}
