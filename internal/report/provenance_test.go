package report

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"microsampler/internal/core"
	"microsampler/internal/sim"
	"microsampler/internal/trace"
)

// provReport verifies a workload whose only secret-dependent behaviour
// is one store whose address is indexed by the class bit (64-byte
// stride, so it lands on distinct cache lines). The store carries a
// label so tests can ask the symbol table where the leak lives.
func provReport(t *testing.T) *core.Report {
	t.Helper()
	rep, err := core.Verify(core.Workload{Name: "prov-sample", Source: `
	.text
_start:
	la   s1, buf
	li   s2, 24
	roi.begin
loop:
	andi s3, s2, 1
	iter.begin s3
	slli t1, s3, 6
	add  t2, s1, t1
leak_st:
	sd   s2, 0(t2)
	ld   t3, 0(t2)
	iter.end
	addi s2, s2, -1
	bnez s2, loop
	roi.end
	li a0, 0
	li a7, 93
	ecall

	.data
	.align 6
buf:
	.zero 256
`}, core.Options{Runs: 2, Warmup: core.NoWarmup, Config: sim.SmallBoom()})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// syntheticProvReport hand-writes provenance streams so the golden
// rendering is independent of the simulator: a direct SQ-ADDR stream
// that perfectly separates the classes, a value-keyed cache stream
// resolving through StoreWriters, and an unattributable TLB page.
func syntheticProvReport() *core.Report {
	const iters = 40
	rep := &core.Report{
		Workload:     "synthetic",
		Config:       "TestBoom",
		Runs:         1,
		StoreWriters: map[uint64][]uint64{0x2040: {0x1010}},
		LoadReaders:  map[uint64][]uint64{},
	}
	for i := 0; i < iters; i++ {
		rep.Iterations = append(rep.Iterations,
			trace.IterSample{Class: uint64(i % 2), Cycles: 10})
	}
	classIters := func(class int) (is []int32, hs []uint64) {
		for i := class; i < iters; i += 2 {
			is = append(is, int32(i))
			hs = append(hs, 0xabc0+uint64(class))
		}
		return
	}
	i1, h1 := classIters(1)
	iAll := make([]int32, iters)
	hAll := make([]uint64, iters)
	for i := 0; i < iters; i++ {
		iAll[i], hAll[i] = int32(i), 0x77
	}
	rep.Provenance = []trace.UnitProvenance{
		{Unit: trace.SQADDR, Direct: true, Streams: []trace.ProvStream{
			// Leaky: events only on class-1 iterations.
			{Key: 0x1010, Events: 20, Iters: i1, Hashes: h1},
			// Quiet: identical hash every iteration.
			{Key: 0x1004, Events: 40, Iters: iAll, Hashes: hAll},
		}},
		{Unit: trace.CACHEADDR, Direct: false, Streams: []trace.ProvStream{
			// Value key 0x2040 resolves to pc 0x1010 via StoreWriters.
			{Key: 0x2040, Events: 20, Iters: i1, Hashes: h1},
			// Significant but unattributable page number.
			{Key: 0x9999, Events: 20, Iters: i1, Hashes: h1},
		}},
	}
	return rep
}

func TestProvenanceGolden(t *testing.T) {
	pv, err := BuildProvenance(syntheticProvReport())
	if err != nil {
		t.Fatal(err)
	}
	got, err := pv.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "provenance_golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("provenance JSON drifted from golden (rerun with -update if intended)\ngot:\n%s", got)
	}
}

func TestProvenanceSynthetic(t *testing.T) {
	pv, err := BuildProvenance(syntheticProvReport())
	if err != nil {
		t.Fatal(err)
	}
	if pv.Iterations != 40 || pv.Workload != "synthetic" {
		t.Fatalf("header: %+v", pv)
	}
	// The quiet SQ-ADDR stream must be filtered; the two leaky streams
	// (direct pc 0x1010 and the resolved cache value) must survive.
	if len(pv.Entries) != 2 {
		t.Fatalf("entries = %d want 2: %+v", len(pv.Entries), pv.Entries)
	}
	for _, e := range pv.Entries {
		if e.PC != 0x1010 {
			t.Errorf("entry pc = %#x want 0x1010", e.PC)
		}
		if !e.Significant || !e.Leaky {
			t.Errorf("perfectly class-determined entry not flagged leaky: %+v", e)
		}
	}
	if pv.Entries[0].Via != "direct" || pv.Entries[1].Via != "store-addr" {
		t.Errorf("via order = %q, %q want direct, store-addr",
			pv.Entries[0].Via, pv.Entries[1].Via)
	}
	if len(pv.Unattributed) != 1 || pv.Unattributed[0].Value != 0x9999 {
		t.Errorf("unattributed = %+v want the dangling 0x9999 value", pv.Unattributed)
	}
}

// TestProvenanceLocalizesStore runs the real pipeline and requires the
// ranking to put the labelled secret-indexed store at the top.
func TestProvenanceLocalizesStore(t *testing.T) {
	rep := provReport(t)
	pv, err := BuildProvenance(rep)
	if err != nil {
		t.Fatal(err)
	}
	if len(pv.Entries) == 0 {
		t.Fatal("no provenance entries from a leaky run")
	}
	leakPC, ok := rep.Program.Symbol("leak_st")
	if !ok {
		t.Fatal("leak_st symbol missing")
	}
	top := pv.Entries[0]
	if top.PC != leakPC {
		t.Errorf("top entry pc = %#x (%s via %s), leak_st = %#x",
			top.PC, top.Unit, top.Via, leakPC)
	}
	if !strings.HasPrefix(top.Symbol, "leak_st") {
		t.Errorf("top entry symbol = %q want leak_st", top.Symbol)
	}
	if top.Disasm == "" || !strings.Contains(top.Disasm, "sd") {
		t.Errorf("top entry disasm = %q want an sd instruction", top.Disasm)
	}
	// Every surviving entry must be statistically significant.
	for _, e := range pv.Entries {
		if !e.Significant {
			t.Errorf("insignificant entry survived: %+v", e)
		}
	}
}

func TestProvenanceDeterministicJSON(t *testing.T) {
	render := func() []byte {
		t.Helper()
		pv, err := BuildProvenance(provReport(t))
		if err != nil {
			t.Fatal(err)
		}
		data, err := pv.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if a, b := render(), render(); !bytes.Equal(a, b) {
		t.Error("provenance JSON differs across identical seeded runs")
	}
}

func TestProvenanceErrors(t *testing.T) {
	if _, err := BuildProvenance(&core.Report{}); err == nil {
		t.Error("report without iterations must error")
	}
	// A report with iterations but no provenance streams (e.g. loaded
	// from an older artifact) builds an empty, valid ranking.
	rep := syntheticProvReport()
	rep.Provenance = nil
	pv, err := BuildProvenance(rep)
	if err != nil {
		t.Fatalf("provenance-free report: %v", err)
	}
	if len(pv.Entries) != 0 || len(pv.Unattributed) != 0 {
		t.Errorf("expected empty ranking, got %+v", pv)
	}
	if !strings.Contains(pv.HTML(), "No statistically significant") {
		t.Error("empty ranking HTML missing placeholder text")
	}
}

func TestProvenanceHTML(t *testing.T) {
	rep := provReport(t)
	pv, err := BuildProvenance(rep)
	if err != nil {
		t.Fatal(err)
	}
	doc := pv.HTMLWithDisasm(rep.Program, 3, 4)
	for _, want := range []string{
		"<!DOCTYPE html>", "</html>", "<table>", "prov-sample",
		"leak_st", "Disassembly context", "&#8592; here",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
	for _, banned := range []string{"http://", "https://", "src=", "href="} {
		if strings.Contains(doc, banned) {
			t.Errorf("HTML not self-contained: found %q", banned)
		}
	}
	if doc != pv.HTMLWithDisasm(rep.Program, 3, 4) {
		t.Error("HTML rendering not deterministic")
	}
	var jsonDoc map[string]any
	data, _ := pv.JSON()
	if err := json.Unmarshal(data, &jsonDoc); err != nil {
		t.Fatalf("provenance JSON invalid: %v", err)
	}
}
