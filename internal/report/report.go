// Package report renders MicroSampler verification results as terminal
// text: Cramér's V bar charts in the style of the paper's figures,
// iteration-timing histograms (Fig. 6), contingency tables (Table II)
// and the various summary tables of the evaluation section.
package report

import (
	"fmt"
	"sort"
	"strings"

	"microsampler/internal/core"
	"microsampler/internal/telemetry"
	"microsampler/internal/trace"
)

const barWidth = 40

// bar renders a value in [0,1] as a fixed-width bar.
func bar(v float64) string {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	n := int(v*barWidth + 0.5)
	return strings.Repeat("#", n) + strings.Repeat(".", barWidth-n)
}

// CramersVChart renders the per-unit Cramér's V bar chart of a report
// (the paper's Figs. 3, 4, 7, 10). Values are masked by statistical
// significance, as in the paper's plots; the raw (V, p) pair is printed
// alongside. A trailing asterisk marks units flagged as leaky.
func CramersVChart(rep *core.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cramér's V per microarchitectural unit — %s on %s (%d iterations)\n",
		rep.Workload, rep.Config, len(rep.Iterations))
	for _, u := range rep.Units {
		mark := " "
		if u.Leaky() {
			mark = "*"
		}
		fmt.Fprintf(&b, "  %-12s |%s| %.3f (p=%.2e)%s\n",
			u.Unit, bar(u.Assoc.MaskedV()), u.Assoc.V, u.Assoc.P, mark)
	}
	return b.String()
}

// CramersVTimingChart renders the paired with/without-timing chart of
// Fig. 9: for each unit the full-snapshot V and the timing-removed V.
func CramersVTimingChart(rep *core.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cramér's V with (=) and without (-) timing — %s on %s\n",
		rep.Workload, rep.Config)
	for _, u := range rep.Units {
		fmt.Fprintf(&b, "  %-12s =|%s| %.3f\n", u.Unit, bar(u.Assoc.MaskedV()), u.Assoc.V)
		fmt.Fprintf(&b, "  %-12s -|%s| %.3f\n", "", bar(u.AssocNoTiming.MaskedV()),
			u.AssocNoTiming.V)
	}
	return b.String()
}

// TimingHistogram renders per-class iteration cycle-count distributions
// (the paper's Fig. 6).
func TimingHistogram(title string, iters []trace.IterSample) string {
	byClass := map[uint64]map[int64]int{}
	maxCount := 0
	for _, it := range iters {
		m := byClass[it.Class]
		if m == nil {
			m = map[int64]int{}
			byClass[it.Class] = m
		}
		m[it.Cycles]++
		if m[it.Cycles] > maxCount {
			maxCount = m[it.Cycles]
		}
	}
	classes := make([]uint64, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })

	var b strings.Builder
	fmt.Fprintf(&b, "Iteration cycle-count distribution — %s\n", title)
	for _, c := range classes {
		fmt.Fprintf(&b, "  class %d (key bit %d):\n", c, c)
		cycles := make([]int64, 0, len(byClass[c]))
		for cyc := range byClass[c] {
			cycles = append(cycles, cyc)
		}
		sort.Slice(cycles, func(i, j int) bool { return cycles[i] < cycles[j] })
		for _, cyc := range cycles {
			n := byClass[c][cyc]
			w := n * barWidth / maxCount
			fmt.Fprintf(&b, "    %6d cycles |%-*s| %d\n", cyc, barWidth,
				strings.Repeat("#", w), n)
		}
	}
	return b.String()
}

// MeanCycles returns the mean iteration length per class, for asserting
// the Fig. 6 separation programmatically.
func MeanCycles(iters []trace.IterSample) map[uint64]float64 {
	sum := map[uint64]int64{}
	n := map[uint64]int64{}
	for _, it := range iters {
		sum[it.Class] += it.Cycles
		n[it.Class]++
	}
	out := make(map[uint64]float64, len(sum))
	for c := range sum {
		out[c] = float64(sum[c]) / float64(n[c])
	}
	return out
}

// ContingencyTable renders the contingency table of one unit (Table II).
func ContingencyTable(rep *core.Report, unit trace.Unit, maxCols int) string {
	u, ok := rep.Unit(unit)
	if !ok {
		return fmt.Sprintf("unit %v not tracked\n", unit)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Contingency table for %s — %s\n", unit, rep.Workload)
	b.WriteString(u.Table.Render(maxCols))
	fmt.Fprintf(&b, "%s\n", u.Assoc)
	return b.String()
}

// Features renders the root-cause extraction of a unit: per-class unique
// feature values (Fig. 5) and feature-ordering mismatches.
func Features(rep *core.Report, unit trace.Unit) string {
	u, ok := rep.Unit(unit)
	if !ok {
		return fmt.Sprintf("unit %v not tracked\n", unit)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Feature extraction for %s — %s\n", unit, rep.Workload)
	if u.UniqueFeatures == nil {
		b.WriteString("  (no significant correlation; extraction not performed)\n")
		return b.String()
	}
	classes := make([]uint64, 0, len(u.UniqueFeatures))
	for c := range u.UniqueFeatures {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, c := range classes {
		vals := u.UniqueFeatures[c]
		fmt.Fprintf(&b, "  class %d: %d unique feature(s)", c, len(vals))
		for i, v := range vals {
			if i == 8 {
				fmt.Fprintf(&b, " … (+%d more)", len(vals)-8)
				break
			}
			fmt.Fprintf(&b, " %s", symbolize(rep, v))
		}
		b.WriteString("\n")
		b.WriteString(attributeFeatures(rep, vals))
	}
	for _, m := range u.Ordering {
		fmt.Fprintf(&b, "  ordering mismatch between class %d and class %d (%d shared features)\n",
			m.ClassA, m.ClassB, len(m.OrderA))
	}
	return b.String()
}

// symbolize renders a feature value with its symbol when it resolves to
// a program address (code or data).
func symbolize(rep *core.Report, v uint64) string {
	if rep.Program == nil {
		return fmt.Sprintf("%#x", v)
	}
	sym := rep.Program.AnySymbolAt(v)
	if strings.HasPrefix(sym, "0x") {
		return sym
	}
	return fmt.Sprintf("%#x (%s)", v, sym)
}

// attributeFeatures names the functions whose stores/loads produced the
// feature addresses — the paper's "these addresses all belong to the
// memmove() function" step.
func attributeFeatures(rep *core.Report, vals []uint64) string {
	if rep.Program == nil {
		return ""
	}
	funcs := map[string]bool{}
	for _, v := range vals {
		for _, pc := range rep.StoreWriters[v] {
			funcs[baseSymbol(rep.Program.SymbolAt(pc))] = true
		}
		for _, pc := range rep.LoadReaders[v] {
			funcs[baseSymbol(rep.Program.SymbolAt(pc))] = true
		}
	}
	if len(funcs) == 0 {
		return ""
	}
	names := make([]string, 0, len(funcs))
	for f := range funcs {
		names = append(names, f)
	}
	sort.Strings(names)
	return fmt.Sprintf("    produced by: %s\n", strings.Join(names, ", "))
}

// baseSymbol strips the +offset suffix of a resolved symbol.
func baseSymbol(sym string) string {
	if i := strings.IndexByte(sym, '+'); i > 0 {
		return sym[:i]
	}
	return sym
}

// Summary renders the one-line verdict plus leaky-unit list.
func Summary(rep *core.Report) string {
	leaks := rep.LeakyUnits()
	if len(leaks) == 0 {
		return fmt.Sprintf("%s on %s: no statistically significant secret-dependent state (%d iterations)\n",
			rep.Workload, rep.Config, len(rep.Iterations))
	}
	names := make([]string, 0, len(leaks))
	for _, l := range leaks {
		names = append(names, l.Unit.String())
	}
	return fmt.Sprintf("%s on %s: LEAKAGE in %d unit(s): %s\n",
		rep.Workload, rep.Config, len(leaks), strings.Join(names, ", "))
}

// StageBreakdown renders the Table VI stage-time breakdown, enriched
// with the per-run distributions (min/mean/p95/max) so that parallel
// runs stay attributable: under Parallel > 1 the stage totals are sums
// of per-run time while the distribution rows show the actual per-run
// behaviour.
func StageBreakdown(rep *core.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "MicroSampler stage breakdown — %s on %s (%d runs, %d cycles simulated)\n",
		rep.Workload, rep.Config, rep.Runs, rep.SimCycles)
	s := rep.Stages
	fmt.Fprintf(&b, "  0. assemble program                    %12v\n", s.Assemble)
	fmt.Fprintf(&b, "  1. execute program on simulator        %12v\n", s.Simulate)
	fmt.Fprintf(&b, "  2. parse traces / build snapshots      %12v\n", s.Parse)
	fmt.Fprintf(&b, "  3. Cramér's V for tracked structures   %12v\n", s.Stats)
	fmt.Fprintf(&b, "  4. feature extraction                  %12v\n", s.Extract)
	fmt.Fprintf(&b, "  total                                  %12v\n", s.Total())
	writeDurStats(&b, "per-run wall", s.RunWall)
	writeDurStats(&b, "per-run simulate", s.RunSim)
	writeDurStats(&b, "per-run parse", s.RunParse)
	return b.String()
}

// writeDurStats renders one per-run distribution row; empty
// distributions (e.g. RunSim without MeasureStages) are omitted.
func writeDurStats(b *strings.Builder, label string, d telemetry.DurStats) {
	if d.N == 0 {
		return
	}
	fmt.Fprintf(b, "  %-20s n=%-3d min=%v mean=%v p95=%v max=%v\n",
		label, d.N, d.Min, d.Mean, d.P95, d.Max)
}
