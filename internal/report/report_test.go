package report

import (
	"encoding/json"
	"strings"
	"testing"

	"microsampler/internal/core"
	"microsampler/internal/sim"
	"microsampler/internal/trace"
)

// sampleReport builds a small real report by verifying a leaky loop.
func sampleReport(t *testing.T) *core.Report {
	t.Helper()
	rep, err := core.Verify(core.Workload{Name: "sample", Source: `
	.text
_start:
	li   s2, 20
	roi.begin
loop:
	andi s3, s2, 1
	iter.begin s3
	mul  t0, s2, s2
	beqz s3, skip
	mul  t0, t0, s2
skip:
	iter.end
	addi s2, s2, -1
	bnez s2, loop
	roi.end
	li a0, 0
	li a7, 93
	ecall
`}, core.Options{Runs: 2, Warmup: 2, Config: sim.SmallBoom()})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestCramersVChart(t *testing.T) {
	rep := sampleReport(t)
	out := CramersVChart(rep)
	for _, u := range trace.AllUnits() {
		if !strings.Contains(out, u.String()) {
			t.Errorf("chart missing unit %v", u)
		}
	}
	if !strings.Contains(out, "sample") || !strings.Contains(out, "SmallBoom") {
		t.Error("chart missing metadata")
	}
	if !strings.Contains(out, "*") {
		t.Error("chart should mark leaky units")
	}
}

func TestBar(t *testing.T) {
	if got := bar(0); strings.Contains(got, "#") {
		t.Errorf("bar(0) = %q", got)
	}
	if got := bar(1); strings.Contains(got, ".") {
		t.Errorf("bar(1) = %q", got)
	}
	if got := bar(0.5); strings.Count(got, "#") != barWidth/2 {
		t.Errorf("bar(0.5) = %q", got)
	}
	if len(bar(-1)) != barWidth || len(bar(2)) != barWidth {
		t.Error("bar must clamp out-of-range values")
	}
}

func TestTimingChart(t *testing.T) {
	rep := sampleReport(t)
	out := CramersVTimingChart(rep)
	if strings.Count(out, "EUU-MUL") != 1 {
		t.Error("timing chart should list each unit once")
	}
	if strings.Count(out, "=|") < len(trace.AllUnits()) ||
		strings.Count(out, "-|") < len(trace.AllUnits()) {
		t.Error("timing chart needs paired rows")
	}
}

func TestTimingHistogramAndMeans(t *testing.T) {
	iters := []trace.IterSample{
		{Class: 0, Cycles: 10}, {Class: 0, Cycles: 10}, {Class: 0, Cycles: 12},
		{Class: 1, Cycles: 20}, {Class: 1, Cycles: 22},
	}
	out := TimingHistogram("demo", iters)
	for _, want := range []string{"class 0", "class 1", "10 cycles", "22 cycles"} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram missing %q:\n%s", want, out)
		}
	}
	means := MeanCycles(iters)
	if means[0] != 32.0/3 || means[1] != 21 {
		t.Errorf("means = %v", means)
	}
}

func TestContingencyAndFeatures(t *testing.T) {
	rep := sampleReport(t)
	ct := ContingencyTable(rep, trace.EUUMUL, 4)
	if !strings.Contains(ct, "EUU-MUL") || !strings.Contains(ct, "V=") {
		t.Errorf("contingency table malformed:\n%s", ct)
	}
	if !strings.Contains(ContingencyTable(rep, trace.Unit(99), 4), "not tracked") {
		t.Error("unknown unit should be reported")
	}
	ft := Features(rep, trace.EUUMUL)
	if !strings.Contains(ft, "unique feature") {
		t.Errorf("features malformed:\n%s", ft)
	}
	if !strings.Contains(Features(rep, trace.Unit(99)), "not tracked") {
		t.Error("unknown unit should be reported")
	}
}

func TestFeaturesNotExtracted(t *testing.T) {
	// A clean workload has no extraction for insignificant units.
	rep, err := core.Verify(core.Workload{Name: "clean", Source: `
	.text
_start:
	li   s2, 6
	roi.begin
loop:
	andi s3, s2, 1
	iter.begin s3
	mul  t0, s2, s2
	iter.end
	addi s2, s2, -1
	bnez s2, loop
	roi.end
	li a0, 0
	li a7, 93
	ecall
`}, core.Options{Runs: 2, Warmup: 2, Config: sim.SmallBoom()})
	if err != nil {
		t.Fatal(err)
	}
	out := Features(rep, trace.EUUMUL)
	if !strings.Contains(out, "extraction not performed") {
		t.Errorf("expected no-extraction notice:\n%s", out)
	}
}

func TestSummary(t *testing.T) {
	rep := sampleReport(t)
	s := Summary(rep)
	if !strings.Contains(s, "LEAKAGE") {
		t.Errorf("summary should report leakage: %q", s)
	}
}

func TestStageBreakdown(t *testing.T) {
	rep := sampleReport(t)
	out := StageBreakdown(rep)
	for _, want := range []string{"execute program", "parse traces", "Cramér", "feature extraction", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("stage breakdown missing %q", want)
		}
	}
}

func TestJSONExport(t *testing.T) {
	rep := sampleReport(t)
	data, err := JSON(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]interface{}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded["workload"] != "sample" || decoded["leaky"] != true {
		t.Errorf("metadata wrong: %v %v", decoded["workload"], decoded["leaky"])
	}
	units, ok := decoded["units"].([]interface{})
	if !ok || len(units) != 16 {
		t.Fatalf("units = %v", decoded["units"])
	}
	u0, ok := units[0].(map[string]interface{})
	if !ok {
		t.Fatal("unit entry malformed")
	}
	assoc, ok := u0["assoc"].(map[string]interface{})
	if !ok {
		t.Fatal("assoc missing")
	}
	for _, key := range []string{"cramersV", "cramersVCorrected", "pValue",
		"mutualInformationBits", "uniqueSnapshots", "classes"} {
		if _, present := assoc[key]; !present {
			t.Errorf("assoc missing key %q", key)
		}
	}
	// A leaky unit must carry its unique features.
	foundUnique := false
	for _, raw := range units {
		u := raw.(map[string]interface{})
		if u["leaky"] == true {
			if _, present := u["uniqueFeatures"]; present {
				foundUnique = true
			}
		}
	}
	if !foundUnique {
		t.Error("no leaky unit exported unique features")
	}
}
