package report

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"microsampler/internal/core"
	"microsampler/internal/sim"
	"microsampler/internal/telemetry"
	"microsampler/internal/trace"
)

// sampleReport builds a small real report by verifying a leaky loop.
func sampleReport(t *testing.T) *core.Report {
	t.Helper()
	rep, err := core.Verify(core.Workload{Name: "sample", Source: `
	.text
_start:
	li   s2, 20
	roi.begin
loop:
	andi s3, s2, 1
	iter.begin s3
	mul  t0, s2, s2
	beqz s3, skip
	mul  t0, t0, s2
skip:
	iter.end
	addi s2, s2, -1
	bnez s2, loop
	roi.end
	li a0, 0
	li a7, 93
	ecall
`}, core.Options{Runs: 2, Warmup: 2, Config: sim.SmallBoom()})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestCramersVChart(t *testing.T) {
	rep := sampleReport(t)
	out := CramersVChart(rep)
	for _, u := range trace.AllUnits() {
		if !strings.Contains(out, u.String()) {
			t.Errorf("chart missing unit %v", u)
		}
	}
	if !strings.Contains(out, "sample") || !strings.Contains(out, "SmallBoom") {
		t.Error("chart missing metadata")
	}
	if !strings.Contains(out, "*") {
		t.Error("chart should mark leaky units")
	}
}

func TestBar(t *testing.T) {
	if got := bar(0); strings.Contains(got, "#") {
		t.Errorf("bar(0) = %q", got)
	}
	if got := bar(1); strings.Contains(got, ".") {
		t.Errorf("bar(1) = %q", got)
	}
	if got := bar(0.5); strings.Count(got, "#") != barWidth/2 {
		t.Errorf("bar(0.5) = %q", got)
	}
	if len(bar(-1)) != barWidth || len(bar(2)) != barWidth {
		t.Error("bar must clamp out-of-range values")
	}
}

func TestTimingChart(t *testing.T) {
	rep := sampleReport(t)
	out := CramersVTimingChart(rep)
	if strings.Count(out, "EUU-MUL") != 1 {
		t.Error("timing chart should list each unit once")
	}
	if strings.Count(out, "=|") < len(trace.AllUnits()) ||
		strings.Count(out, "-|") < len(trace.AllUnits()) {
		t.Error("timing chart needs paired rows")
	}
}

func TestTimingHistogramAndMeans(t *testing.T) {
	iters := []trace.IterSample{
		{Class: 0, Cycles: 10}, {Class: 0, Cycles: 10}, {Class: 0, Cycles: 12},
		{Class: 1, Cycles: 20}, {Class: 1, Cycles: 22},
	}
	out := TimingHistogram("demo", iters)
	for _, want := range []string{"class 0", "class 1", "10 cycles", "22 cycles"} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram missing %q:\n%s", want, out)
		}
	}
	means := MeanCycles(iters)
	if means[0] != 32.0/3 || means[1] != 21 {
		t.Errorf("means = %v", means)
	}
}

func TestContingencyAndFeatures(t *testing.T) {
	rep := sampleReport(t)
	ct := ContingencyTable(rep, trace.EUUMUL, 4)
	if !strings.Contains(ct, "EUU-MUL") || !strings.Contains(ct, "V=") {
		t.Errorf("contingency table malformed:\n%s", ct)
	}
	if !strings.Contains(ContingencyTable(rep, trace.Unit(99), 4), "not tracked") {
		t.Error("unknown unit should be reported")
	}
	ft := Features(rep, trace.EUUMUL)
	if !strings.Contains(ft, "unique feature") {
		t.Errorf("features malformed:\n%s", ft)
	}
	if !strings.Contains(Features(rep, trace.Unit(99)), "not tracked") {
		t.Error("unknown unit should be reported")
	}
}

func TestFeaturesNotExtracted(t *testing.T) {
	// A clean workload has no extraction for insignificant units.
	rep, err := core.Verify(core.Workload{Name: "clean", Source: `
	.text
_start:
	li   s2, 6
	roi.begin
loop:
	andi s3, s2, 1
	iter.begin s3
	mul  t0, s2, s2
	iter.end
	addi s2, s2, -1
	bnez s2, loop
	roi.end
	li a0, 0
	li a7, 93
	ecall
`}, core.Options{Runs: 2, Warmup: 2, Config: sim.SmallBoom()})
	if err != nil {
		t.Fatal(err)
	}
	out := Features(rep, trace.EUUMUL)
	if !strings.Contains(out, "extraction not performed") {
		t.Errorf("expected no-extraction notice:\n%s", out)
	}
}

func TestSummary(t *testing.T) {
	rep := sampleReport(t)
	s := Summary(rep)
	if !strings.Contains(s, "LEAKAGE") {
		t.Errorf("summary should report leakage: %q", s)
	}
}

func TestStageBreakdown(t *testing.T) {
	rep := sampleReport(t)
	out := StageBreakdown(rep)
	for _, want := range []string{"execute program", "parse traces", "Cramér", "feature extraction", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("stage breakdown missing %q", want)
		}
	}
}

func TestJSONExport(t *testing.T) {
	rep := sampleReport(t)
	data, err := JSON(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]interface{}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded["workload"] != "sample" || decoded["leaky"] != true {
		t.Errorf("metadata wrong: %v %v", decoded["workload"], decoded["leaky"])
	}
	units, ok := decoded["units"].([]interface{})
	if !ok || len(units) != 18 {
		t.Fatalf("units = %v", decoded["units"])
	}
	u0, ok := units[0].(map[string]interface{})
	if !ok {
		t.Fatal("unit entry malformed")
	}
	assoc, ok := u0["assoc"].(map[string]interface{})
	if !ok {
		t.Fatal("assoc missing")
	}
	for _, key := range []string{"cramersV", "cramersVCorrected", "pValue",
		"mutualInformationBits", "uniqueSnapshots", "classes"} {
		if _, present := assoc[key]; !present {
			t.Errorf("assoc missing key %q", key)
		}
	}
	// A leaky unit must carry its unique features.
	foundUnique := false
	for _, raw := range units {
		u := raw.(map[string]interface{})
		if u["leaky"] == true {
			if _, present := u["uniqueFeatures"]; present {
				foundUnique = true
			}
		}
	}
	if !foundUnique {
		t.Error("no leaky unit exported unique features")
	}
}

// fixedReport builds a Report with hand-set stage times and counters so
// the enriched StageBreakdown output is fully deterministic.
func fixedReport() *core.Report {
	rep := &core.Report{
		Workload:  "golden",
		Config:    "SmallBoom",
		Runs:      4,
		SimCycles: 1234,
	}
	rep.Stages.Assemble = 1 * time.Millisecond
	rep.Stages.Simulate = 40 * time.Millisecond
	rep.Stages.Parse = 8 * time.Millisecond
	rep.Stages.Stats = 3 * time.Millisecond
	rep.Stages.Extract = 2 * time.Millisecond
	rep.Stages.RunWall = telemetry.DurStats{
		N: 4, Min: 9 * time.Millisecond, Mean: 12 * time.Millisecond,
		P95: 15 * time.Millisecond, Max: 15 * time.Millisecond,
	}
	rep.Stages.RunSim = telemetry.DurStats{
		N: 4, Min: 8 * time.Millisecond, Mean: 10 * time.Millisecond,
		P95: 12 * time.Millisecond, Max: 12 * time.Millisecond,
	}
	rep.Stages.RunParse = telemetry.DurStats{
		N: 4, Min: 1 * time.Millisecond, Mean: 2 * time.Millisecond,
		P95: 3 * time.Millisecond, Max: 3 * time.Millisecond,
	}
	rep.Sim = core.SimStats{
		Cycles: 1234, Instructions: 2468, Branches: 100, BranchMispredicts: 5,
		DCacheHits: 900, DCacheMisses: 50, TLBMisses: 3,
		Prefetches: 40, PrefetchesUseful: 30, PrefetchesUseless: 6,
		LSUReplays: 2, MSHRHighWater: 4,
	}
	rep.Samples = map[trace.Unit]uint64{trace.EUUMUL: 128, trace.SQADDR: 128}
	return rep
}

func TestStageBreakdownGolden(t *testing.T) {
	got := StageBreakdown(fixedReport())
	want := `MicroSampler stage breakdown — golden on SmallBoom (4 runs, 1234 cycles simulated)
  0. assemble program                             1ms
  1. execute program on simulator                40ms
  2. parse traces / build snapshots               8ms
  3. Cramér's V for tracked structures            3ms
  4. feature extraction                           2ms
  total                                          54ms
  per-run wall         n=4   min=9ms mean=12ms p95=15ms max=15ms
  per-run simulate     n=4   min=8ms mean=10ms p95=12ms max=12ms
  per-run parse        n=4   min=1ms mean=2ms p95=3ms max=3ms
`
	if got != want {
		t.Errorf("golden mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestStageBreakdownOmitsEmptyDistributions(t *testing.T) {
	rep := fixedReport()
	rep.Stages.RunSim = telemetry.DurStats{}
	rep.Stages.RunParse = telemetry.DurStats{}
	out := StageBreakdown(rep)
	if strings.Contains(out, "per-run simulate") || strings.Contains(out, "per-run parse") {
		t.Errorf("empty distributions must be omitted:\n%s", out)
	}
	if !strings.Contains(out, "per-run wall") {
		t.Errorf("non-empty wall distribution must be kept:\n%s", out)
	}
}

func TestJSONEnrichedGolden(t *testing.T) {
	data, err := JSON(fixedReport())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"assemble": 1`,
		`"simulate": 40`,
		`"runStatsMicros"`,
		`"wall"`,
		`"n": 4`,
		`"p95": 15000`,
		`"ipc": 2`,
		`"nlpPrefetches": 40`,
		`"nlpMispredicts": 6`,
		`"lsuReplays": 2`,
		`"mshrHighWater": 4`,
		`"traceSamples"`,
		`"EUU-MUL": 128`,
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON missing %q:\n%s", want, data)
		}
	}
}

// TestJSONParallelSpanAggregation exercises the real Parallel > 1 +
// MeasureStages path end to end and checks that the per-run
// distributions survive into the JSON schema.
func TestJSONParallelSpanAggregation(t *testing.T) {
	rep, err := core.Verify(core.Workload{Name: "par", Source: `
	.text
_start:
	li   s2, 12
	roi.begin
loop:
	andi s3, s2, 1
	iter.begin s3
	mul  t0, s2, s2
	iter.end
	addi s2, s2, -1
	bnez s2, loop
	roi.end
	li a0, 0
	li a7, 93
	ecall
`}, core.Options{Runs: 4, Parallel: 4, MeasureStages: true, Config: sim.SmallBoom()})
	if err != nil {
		t.Fatal(err)
	}
	data, err := JSON(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		RunStats *struct {
			Wall     struct{ N int }  `json:"wall"`
			Simulate *struct{ N int } `json:"simulate"`
			Parse    *struct{ N int } `json:"parse"`
		} `json:"runStatsMicros"`
		Sim struct {
			Cycles       int64   `json:"cycles"`
			Instructions uint64  `json:"instructions"`
			IPC          float64 `json:"ipc"`
		} `json:"sim"`
		Samples map[string]uint64 `json:"traceSamples"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded.RunStats == nil || decoded.RunStats.Wall.N != 4 {
		t.Fatalf("runStatsMicros.wall.n != 4: %+v", decoded.RunStats)
	}
	if decoded.RunStats.Simulate == nil || decoded.RunStats.Simulate.N != 4 ||
		decoded.RunStats.Parse == nil || decoded.RunStats.Parse.N != 4 {
		t.Fatalf("MeasureStages distributions missing under Parallel > 1: %+v", decoded.RunStats)
	}
	if decoded.Sim.Cycles <= 0 || decoded.Sim.Instructions == 0 || decoded.Sim.IPC <= 0 {
		t.Errorf("sim counters not aggregated: %+v", decoded.Sim)
	}
	if decoded.Samples["EUU-MUL"] == 0 {
		t.Errorf("trace sample counts missing: %v", decoded.Samples)
	}
	// StageBreakdown on the same report must carry all three rows.
	out := StageBreakdown(rep)
	for _, want := range []string{"per-run wall", "per-run simulate", "per-run parse"} {
		if !strings.Contains(out, want) {
			t.Errorf("stage breakdown missing %q:\n%s", want, out)
		}
	}
}
