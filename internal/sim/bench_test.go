package sim

import (
	"testing"

	"microsampler/internal/asm"
	"microsampler/internal/isa"
)

// benchProgram is a mixed integer/memory/branch workload.
const benchProgram = `
	.data
buf: .zero 8192
	.text
_start:
	la   s2, buf
	li   s3, 2000
	li   s4, 0
loop:
	andi t0, s3, 127
	slli t0, t0, 6
	add  t0, t0, s2
	sd   s3, 0(t0)
	ld   t1, 0(t0)
	mul  t2, t1, t1
	add  s4, s4, t2
	andi t3, s3, 3
	beqz t3, skip
	xor  s4, s4, t1
skip:
	addi s3, s3, -1
	bnez s3, loop
	li   a0, 0
	li   a7, 93
	ecall
`

func benchConfig(b *testing.B, cfg Config) {
	b.Helper()
	prog, err := asm.Assemble(benchProgram)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		m, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.LoadProgram(prog); err != nil {
			b.Fatal(err)
		}
		res, err := m.Run(50_000_000)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles)*float64(b.N)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// BenchmarkSimMegaBoom measures raw simulation throughput on the large
// configuration (no tracing).
func BenchmarkSimMegaBoom(b *testing.B) { benchConfig(b, MegaBoom()) }

// BenchmarkSimSmallBoom measures raw simulation throughput on the small
// configuration.
func BenchmarkSimSmallBoom(b *testing.B) { benchConfig(b, SmallBoom()) }

// BenchmarkSimTraced measures throughput with a per-cycle tracer
// attached (the dominant cost of the verification pipeline).
func BenchmarkSimTraced(b *testing.B) {
	prog, err := asm.Assemble(benchProgram)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := New(MegaBoom())
		if err != nil {
			b.Fatal(err)
		}
		if err := m.LoadProgram(prog); err != nil {
			b.Fatal(err)
		}
		m.SetTracer(countingTracer{})
		if _, err := m.Run(50_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

type countingTracer struct{}

func (countingTracer) OnCycle(p *Probe) {
	_ = p.StoreQueue()
	_ = p.LoadQueue()
	_ = p.ROB()
	_ = p.ALUBusy()
	_ = p.CacheRequests()
	_ = p.TLBPages()
	_ = p.MSHRAddrs()
	_ = p.LFB()
	_ = p.PrefetchAddrs()
}

func (countingTracer) OnMark(int64, isa.MarkKind, uint64) {}
