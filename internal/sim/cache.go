package sim

// cacheLine is one way of a set.
type cacheLine struct {
	tag        uint64
	valid      bool
	lastUse    int64
	prefetched bool // filled by the prefetcher and not yet demanded
}

// cache is a set-associative, LRU-replacement cache model. It tracks tags
// only; data always comes from the functional Memory.
type cache struct {
	sets      [][]cacheLine
	setMask   uint64
	lineShift uint
}

func newCache(sets, ways, lineBytes int) *cache {
	c := &cache{
		sets:    make([][]cacheLine, sets),
		setMask: uint64(sets - 1),
	}
	for i := range c.sets {
		c.sets[i] = make([]cacheLine, ways)
	}
	for ls := lineBytes; ls > 1; ls >>= 1 {
		c.lineShift++
	}
	return c
}

func (c *cache) setOf(lineAddr uint64) []cacheLine { return c.sets[lineAddr&c.setMask] }

// lookup probes for a line (identified by addr>>lineShift) and refreshes
// its LRU stamp on a hit.
func (c *cache) lookup(lineAddr uint64, now int64) bool {
	set := c.setOf(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			set[i].lastUse = now
			return true
		}
	}
	return false
}

// present probes without updating replacement state.
func (c *cache) present(lineAddr uint64) bool {
	set := c.setOf(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			return true
		}
	}
	return false
}

// insert fills a line, evicting the LRU way if needed.
func (c *cache) insert(lineAddr uint64, now int64) {
	c.fill(lineAddr, now, false)
}

// fill installs a line (marking prefetcher fills) and returns the
// evicted line so callers can account for never-used prefetches.
func (c *cache) fill(lineAddr uint64, now int64, prefetched bool) (evicted cacheLine) {
	set := c.setOf(lineAddr)
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	evicted = set[victim]
	set[victim] = cacheLine{tag: lineAddr, valid: true, lastUse: now, prefetched: prefetched}
	return evicted
}

// demandLookup probes for a line on behalf of a demand access. On a hit
// it refreshes the LRU stamp and clears (and reports) the prefetched
// flag, so the prefetcher's accuracy counters can distinguish useful
// fills from wasted ones.
func (c *cache) demandLookup(lineAddr uint64, now int64) (hit, wasPrefetched bool) {
	set := c.setOf(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			set[i].lastUse = now
			wasPrefetched = set[i].prefetched
			set[i].prefetched = false
			return true, wasPrefetched
		}
	}
	return false, false
}

// invalidate removes a line if present.
func (c *cache) invalidate(lineAddr uint64) {
	set := c.setOf(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			set[i].valid = false
		}
	}
}

// tlbEntry is one data-TLB mapping (identity translation; the entry
// models timing and replacement state only).
type tlbEntry struct {
	page    uint64
	valid   bool
	lastUse int64
}

type tlb struct {
	entries []tlbEntry
	scratch []tlbEntry // reused by recencyScratch; no per-cycle allocation
}

func newTLB(n int) *tlb { return &tlb{entries: make([]tlbEntry, n)} }

func (t *tlb) lookup(page uint64, now int64) bool {
	for i := range t.entries {
		if t.entries[i].valid && t.entries[i].page == page {
			t.entries[i].lastUse = now
			return true
		}
	}
	return false
}

func (t *tlb) insert(page uint64, now int64) {
	victim := 0
	for i := range t.entries {
		if !t.entries[i].valid {
			victim = i
			break
		}
		if t.entries[i].lastUse < t.entries[victim].lastUse {
			victim = i
		}
	}
	t.entries[victim] = tlbEntry{page: page, valid: true, lastUse: now}
}

// recencyOrdered returns the valid pages most-recently-used first, as a
// freshly allocated slice safe to retain.
func (t *tlb) recencyOrdered() []tlbEntry {
	return append([]tlbEntry(nil), t.recencyScratch()...)
}

// recencyScratch returns the valid pages most-recently-used first. This
// is the TLB-ADDR feature row: it exposes the replacement (LRU stack)
// state, which is genuine RTL state of the translation unit. The result
// is backed by a reused scratch buffer, valid until the next call.
func (t *tlb) recencyScratch() []tlbEntry {
	out := t.scratch[:0]
	for _, e := range t.entries {
		if e.valid {
			out = append(out, e)
		}
	}
	// Insertion sort by lastUse descending; the TLB is small.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].lastUse > out[j-1].lastUse; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	t.scratch = out
	return out
}

// mshr is a miss-status holding register: one outstanding cache miss.
type mshr struct {
	valid    bool
	lineAddr uint64
	fillAt   int64
	prefetch bool
}

// lfbEntry is a load-fill-buffer slot holding an in-flight or freshly
// filled line.
type lfbEntry struct {
	valid    bool
	lineAddr uint64
	data     uint64 // first doubleword of the line
	fillAt   int64
	freeAt   int64
}

// dcache bundles the L1D tag array, MSHRs, load-fill buffer, next-line
// prefetcher and data TLB, and provides the timing interface used by the
// load/store machinery.
type dcache struct {
	cfg   Config
	cache *cache
	tlb   *tlb
	mem   *Memory

	mshrs []mshr
	lfb   []lfbEntry

	// Outstanding next-line prefetches.
	nlp []mshr

	// Demand request addresses observed this cycle (Cache-ADDR feature).
	reqThisCycle []reqEvent

	// Statistics.
	hits, misses, tlbMisses, prefetches uint64
	// Prefetcher accuracy: fills later demanded vs fills evicted (or
	// still unreferenced) without ever serving a demand access.
	nlpUseful, nlpUseless uint64
	// Demand-MSHR occupancy high-water mark across the run.
	mshrHighWater int
}

type reqEvent struct {
	addr uint64
	pc   uint64
}

func newDCache(cfg Config, mem *Memory) *dcache {
	return &dcache{
		cfg:   cfg,
		cache: newCache(cfg.DCacheSets, cfg.DCacheWays, cfg.LineBytes),
		tlb:   newTLB(cfg.TLBEntries),
		mem:   mem,
		mshrs: make([]mshr, cfg.MSHREntries),
		lfb:   make([]lfbEntry, cfg.LFBEntries),
		nlp:   make([]mshr, 2),
	}
}

func (d *dcache) lineOf(addr uint64) uint64 { return addr >> d.cache.lineShift }

// tick retires completed fills and expires fill-buffer entries.
func (d *dcache) tick(now int64) {
	d.reqThisCycle = d.reqThisCycle[:0]
	for i := range d.mshrs {
		if d.mshrs[i].valid && d.mshrs[i].fillAt <= now {
			evicted := d.cache.fill(d.mshrs[i].lineAddr, now, false)
			if evicted.valid && evicted.prefetched {
				d.nlpUseless++
			}
			d.mshrs[i].valid = false
		}
	}
	for i := range d.nlp {
		if d.nlp[i].valid && d.nlp[i].fillAt <= now {
			evicted := d.cache.fill(d.nlp[i].lineAddr, now, d.nlp[i].prefetch)
			if evicted.valid && evicted.prefetched {
				d.nlpUseless++
			}
			d.nlp[i].valid = false
		}
	}
	for i := range d.lfb {
		if d.lfb[i].valid && d.lfb[i].freeAt <= now {
			d.lfb[i].valid = false
		}
	}
}

func (d *dcache) mshrFor(line uint64) *mshr {
	for i := range d.mshrs {
		if d.mshrs[i].valid && d.mshrs[i].lineAddr == line {
			return &d.mshrs[i]
		}
	}
	return nil
}

func (d *dcache) freeMSHR() *mshr {
	for i := range d.mshrs {
		if !d.mshrs[i].valid {
			return &d.mshrs[i]
		}
	}
	return nil
}

// mshrOccupancy counts the demand MSHRs currently tracking a miss.
func (d *dcache) mshrOccupancy() int {
	n := 0
	for i := range d.mshrs {
		if d.mshrs[i].valid {
			n++
		}
	}
	return n
}

func (d *dcache) freeLFB() *lfbEntry {
	for i := range d.lfb {
		if !d.lfb[i].valid {
			return &d.lfb[i]
		}
	}
	return nil
}

// access models a demand load or store reaching the L1D. It returns the
// cycle at which the data is available (load) or the write is accepted
// (store), and ok=false when the request must be retried because all
// MSHRs or fill-buffer slots are busy.
func (d *dcache) access(now int64, addr, pc uint64) (done int64, ok bool) {
	d.reqThisCycle = append(d.reqThisCycle, reqEvent{addr: addr, pc: pc})

	penalty := int64(0)
	page := addr / pageBytes
	if !d.tlb.lookup(page, now) {
		penalty = int64(d.cfg.TLBMissLat)
		d.tlb.insert(page, now)
		d.tlbMisses++
	}

	line := d.lineOf(addr)
	d.maybePrefetch(now, line)

	if hit, wasPrefetched := d.cache.demandLookup(line, now); hit {
		d.hits++
		if wasPrefetched {
			d.nlpUseful++
		}
		return now + penalty + int64(d.cfg.DCacheHitLat), true
	}
	d.misses++
	if m := d.mshrFor(line); m != nil {
		return m.fillAt + 1 + penalty, true
	}
	// Check in-flight prefetches: promote to a demand hit on the fill.
	for i := range d.nlp {
		if d.nlp[i].valid && d.nlp[i].lineAddr == line {
			if d.nlp[i].prefetch {
				d.nlp[i].prefetch = false // demanded while in flight: useful
				d.nlpUseful++
			}
			return d.nlp[i].fillAt + 1 + penalty, true
		}
	}
	m := d.freeMSHR()
	f := d.freeLFB()
	if m == nil || f == nil {
		return 0, false
	}
	fill := now + penalty + int64(d.cfg.MissLat)
	*m = mshr{valid: true, lineAddr: line, fillAt: fill}
	if occ := d.mshrOccupancy(); occ > d.mshrHighWater {
		d.mshrHighWater = occ
	}
	lineBase := line << d.cache.lineShift
	*f = lfbEntry{
		valid:    true,
		lineAddr: line,
		data:     d.mem.Read(lineBase, 8),
		fillAt:   fill,
		freeAt:   fill + 3,
	}
	return fill + 1, true
}

// maybePrefetch lets the next-line prefetcher probe line+1 on every
// demand access and fetch it when absent. A prefetch occupies a next-line
// tracker slot, an MSHR and a fill-buffer entry, as in real designs, but
// never delays demand traffic (demand requests that need the last MSHR
// simply retry the next cycle).
func (d *dcache) maybePrefetch(now int64, line uint64) {
	if !d.cfg.NextLinePrefetcher {
		return
	}
	next := line + 1
	if d.cache.present(next) || d.mshrFor(next) != nil {
		return
	}
	for i := range d.nlp {
		if d.nlp[i].valid && d.nlp[i].lineAddr == next {
			return
		}
	}
	f := d.freeLFB()
	if f == nil {
		return
	}
	for i := range d.nlp {
		if !d.nlp[i].valid {
			fill := now + int64(d.cfg.MissLat)
			d.prefetches++
			d.nlp[i] = mshr{valid: true, lineAddr: next, fillAt: fill, prefetch: true}
			lineBase := next << d.cache.lineShift
			*f = lfbEntry{
				valid:    true,
				lineAddr: next,
				data:     d.mem.Read(lineBase, 8),
				fillAt:   fill,
				freeAt:   fill + 3,
			}
			return
		}
	}
}

// flush invalidates the line containing addr (CBO.FLUSH).
func (d *dcache) flush(addr uint64) {
	d.cache.invalidate(d.lineOf(addr))
}

// icache is the instruction-side cache: a plain tag array with a fill
// delay; the front end stalls on misses.
type icache struct {
	cache   *cache
	hitLat  int
	missLat int
}

func newICache(cfg Config) *icache {
	return &icache{
		cache:   newCache(cfg.ICacheSets, cfg.ICacheWays, cfg.LineBytes),
		hitLat:  cfg.ICacheHitLat,
		missLat: cfg.MissLat,
	}
}

// fetchReady returns the cycle at which the line containing pc can
// deliver instructions, filling it on a miss.
func (ic *icache) fetchReady(now int64, pc uint64) int64 {
	line := pc >> ic.cache.lineShift
	if ic.cache.lookup(line, now) {
		return now + int64(ic.hitLat) - 1
	}
	ic.cache.insert(line, now)
	return now + int64(ic.missLat)
}

// flush invalidates the line containing addr.
func (ic *icache) flush(addr uint64) {
	ic.cache.invalidate(addr >> ic.cache.lineShift)
}
