package sim

// Prefetch source tags recorded on cache lines and fills, so the
// accuracy counters can attribute useful and useless fills to the
// prefetcher that issued them.
const (
	pfNone uint8 = iota // demand fill
	pfNLP               // next-line prefetcher
	pfSPF               // stride prefetcher
)

// cacheLine is one way of a set.
type cacheLine struct {
	tag        uint64
	valid      bool
	lastUse    int64
	prefetched uint8 // prefetch source of the fill, until first demanded
}

// cache is a set-associative, LRU-replacement cache model. It tracks tags
// only; data always comes from the functional Memory.
type cache struct {
	sets      [][]cacheLine
	setMask   uint64
	lineShift uint
}

func newCache(sets, ways, lineBytes int) *cache {
	c := &cache{
		sets:    make([][]cacheLine, sets),
		setMask: uint64(sets - 1),
	}
	for i := range c.sets {
		c.sets[i] = make([]cacheLine, ways)
	}
	for ls := lineBytes; ls > 1; ls >>= 1 {
		c.lineShift++
	}
	return c
}

func (c *cache) setOf(lineAddr uint64) []cacheLine { return c.sets[lineAddr&c.setMask] }

// lookup probes for a line (identified by addr>>lineShift) and refreshes
// its LRU stamp on a hit.
func (c *cache) lookup(lineAddr uint64, now int64) bool {
	set := c.setOf(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			set[i].lastUse = now
			return true
		}
	}
	return false
}

// present probes without updating replacement state.
func (c *cache) present(lineAddr uint64) bool {
	set := c.setOf(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			return true
		}
	}
	return false
}

// insert fills a line, evicting the LRU way if needed.
func (c *cache) insert(lineAddr uint64, now int64) {
	c.fill(lineAddr, now, pfNone)
}

// fill installs a line (tagging prefetcher fills with their source) and
// returns the evicted line so callers can account for never-used
// prefetches.
func (c *cache) fill(lineAddr uint64, now int64, prefetched uint8) (evicted cacheLine) {
	set := c.setOf(lineAddr)
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	evicted = set[victim]
	set[victim] = cacheLine{tag: lineAddr, valid: true, lastUse: now, prefetched: prefetched}
	return evicted
}

// demandLookup probes for a line on behalf of a demand access. On a hit
// it refreshes the LRU stamp and clears (and reports) the prefetch
// source, so the prefetchers' accuracy counters can distinguish useful
// fills from wasted ones.
func (c *cache) demandLookup(lineAddr uint64, now int64) (hit bool, wasPrefetched uint8) {
	set := c.setOf(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			set[i].lastUse = now
			wasPrefetched = set[i].prefetched
			set[i].prefetched = pfNone
			return true, wasPrefetched
		}
	}
	return false, pfNone
}

// invalidate removes a line if present.
func (c *cache) invalidate(lineAddr uint64) {
	set := c.setOf(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			set[i].valid = false
		}
	}
}

// tlbEntry is one data-TLB mapping (identity translation; the entry
// models timing and replacement state only).
type tlbEntry struct {
	page    uint64
	valid   bool
	lastUse int64
}

type tlb struct {
	entries []tlbEntry
	scratch []tlbEntry // reused by recencyScratch; no per-cycle allocation
}

func newTLB(n int) *tlb { return &tlb{entries: make([]tlbEntry, n)} }

func (t *tlb) lookup(page uint64, now int64) bool {
	for i := range t.entries {
		if t.entries[i].valid && t.entries[i].page == page {
			t.entries[i].lastUse = now
			return true
		}
	}
	return false
}

func (t *tlb) insert(page uint64, now int64) {
	victim := 0
	for i := range t.entries {
		if !t.entries[i].valid {
			victim = i
			break
		}
		if t.entries[i].lastUse < t.entries[victim].lastUse {
			victim = i
		}
	}
	t.entries[victim] = tlbEntry{page: page, valid: true, lastUse: now}
}

// recencyOrdered returns the valid pages most-recently-used first, as a
// freshly allocated slice safe to retain.
func (t *tlb) recencyOrdered() []tlbEntry {
	return append([]tlbEntry(nil), t.recencyScratch()...)
}

// recencyScratch returns the valid pages most-recently-used first. This
// is the TLB-ADDR feature row: it exposes the replacement (LRU stack)
// state, which is genuine RTL state of the translation unit. The result
// is backed by a reused scratch buffer, valid until the next call.
func (t *tlb) recencyScratch() []tlbEntry {
	out := t.scratch[:0]
	for _, e := range t.entries {
		if e.valid {
			out = append(out, e)
		}
	}
	// Insertion sort by lastUse descending; the TLB is small.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].lastUse > out[j-1].lastUse; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	t.scratch = out
	return out
}

// mshr is a miss-status holding register: one outstanding cache miss.
type mshr struct {
	valid    bool
	lineAddr uint64
	fillAt   int64
	prefetch bool
	// trainPC, set for stride-prefetch trackers only, is the PC of the
	// load stream that trained the prefetch — the attribution target of
	// the SPF-ADDR trace unit.
	trainPC uint64
}

// lfbEntry is a load-fill-buffer slot holding an in-flight or freshly
// filled line.
type lfbEntry struct {
	valid    bool
	lineAddr uint64
	data     uint64 // first doubleword of the line
	fillAt   int64
	freeAt   int64
}

// spfTableEntries is the size of the stride prefetcher's per-PC table.
const spfTableEntries = 16

// strideEntry is one slot of the stride prefetcher's training table,
// tracking the last address and observed stride of the load/store at a
// given PC with a 2-bit confidence counter.
type strideEntry struct {
	pc       uint64
	lastAddr uint64
	stride   int64
	conf     uint8 // saturates at 3; prefetch once >= 2
	valid    bool
}

// dcache bundles the L1D tag array, MSHRs, load-fill buffer, next-line
// and stride prefetchers and data TLB, and provides the timing interface
// used by the load/store machinery.
type dcache struct {
	cfg   Config
	cache *cache
	tlb   *tlb
	mem   *Memory

	mshrs []mshr
	lfb   []lfbEntry

	// Outstanding next-line prefetches.
	nlp []mshr

	// Stride prefetcher: per-PC training table (direct-mapped by PC) and
	// outstanding stride prefetches. The table is the SPF's RTL state —
	// secret-dependent access patterns train secret-dependent strides,
	// which the SPF-ADDR trace unit observes via the in-flight trackers.
	stride []strideEntry
	spf    []mshr

	// Demand request addresses observed this cycle (Cache-ADDR feature).
	reqThisCycle []reqEvent

	// Statistics.
	hits, misses, tlbMisses, prefetches uint64
	// Prefetcher accuracy: fills later demanded vs fills evicted (or
	// still unreferenced) without ever serving a demand access.
	nlpUseful, nlpUseless uint64
	// Stride-prefetcher issue and accuracy counters.
	spfPrefetches, spfUseful, spfUseless uint64
	// Demand-MSHR occupancy high-water mark across the run.
	mshrHighWater int
}

type reqEvent struct {
	addr uint64
	pc   uint64
}

func newDCache(cfg Config, mem *Memory) *dcache {
	return &dcache{
		cfg:    cfg,
		cache:  newCache(cfg.DCacheSets, cfg.DCacheWays, cfg.LineBytes),
		tlb:    newTLB(cfg.TLBEntries),
		mem:    mem,
		mshrs:  make([]mshr, cfg.MSHREntries),
		lfb:    make([]lfbEntry, cfg.LFBEntries),
		nlp:    make([]mshr, 2),
		stride: make([]strideEntry, spfTableEntries),
		spf:    make([]mshr, 2),
	}
}

func (d *dcache) lineOf(addr uint64) uint64 { return addr >> d.cache.lineShift }

// accountEvicted charges a never-demanded prefetched line to the
// prefetcher that fetched it.
func (d *dcache) accountEvicted(evicted cacheLine) {
	if !evicted.valid {
		return
	}
	switch evicted.prefetched {
	case pfNLP:
		d.nlpUseless++
	case pfSPF:
		d.spfUseless++
	}
}

// tick retires completed fills and expires fill-buffer entries.
func (d *dcache) tick(now int64) {
	d.reqThisCycle = d.reqThisCycle[:0]
	for i := range d.mshrs {
		if d.mshrs[i].valid && d.mshrs[i].fillAt <= now {
			d.accountEvicted(d.cache.fill(d.mshrs[i].lineAddr, now, pfNone))
			d.mshrs[i].valid = false
		}
	}
	for i := range d.nlp {
		if d.nlp[i].valid && d.nlp[i].fillAt <= now {
			src := pfNone
			if d.nlp[i].prefetch {
				src = pfNLP
			}
			d.accountEvicted(d.cache.fill(d.nlp[i].lineAddr, now, src))
			d.nlp[i].valid = false
		}
	}
	for i := range d.spf {
		if d.spf[i].valid && d.spf[i].fillAt <= now {
			src := pfNone
			if d.spf[i].prefetch {
				src = pfSPF
			}
			d.accountEvicted(d.cache.fill(d.spf[i].lineAddr, now, src))
			d.spf[i].valid = false
		}
	}
	for i := range d.lfb {
		if d.lfb[i].valid && d.lfb[i].freeAt <= now {
			d.lfb[i].valid = false
		}
	}
}

func (d *dcache) mshrFor(line uint64) *mshr {
	for i := range d.mshrs {
		if d.mshrs[i].valid && d.mshrs[i].lineAddr == line {
			return &d.mshrs[i]
		}
	}
	return nil
}

func (d *dcache) freeMSHR() *mshr {
	for i := range d.mshrs {
		if !d.mshrs[i].valid {
			return &d.mshrs[i]
		}
	}
	return nil
}

// mshrOccupancy counts the demand MSHRs currently tracking a miss.
func (d *dcache) mshrOccupancy() int {
	n := 0
	for i := range d.mshrs {
		if d.mshrs[i].valid {
			n++
		}
	}
	return n
}

func (d *dcache) freeLFB() *lfbEntry {
	for i := range d.lfb {
		if !d.lfb[i].valid {
			return &d.lfb[i]
		}
	}
	return nil
}

// access models a demand load or store reaching the L1D. It returns the
// cycle at which the data is available (load) or the write is accepted
// (store), and ok=false when the request must be retried because all
// MSHRs or fill-buffer slots are busy.
func (d *dcache) access(now int64, addr, pc uint64) (done int64, ok bool) {
	d.reqThisCycle = append(d.reqThisCycle, reqEvent{addr: addr, pc: pc})

	penalty := int64(0)
	page := addr / pageBytes
	if !d.tlb.lookup(page, now) {
		penalty = int64(d.cfg.TLBMissLat)
		d.tlb.insert(page, now)
		d.tlbMisses++
	}

	line := d.lineOf(addr)
	d.maybePrefetch(now, line)
	d.trainStride(now, addr, pc)

	if hit, wasPrefetched := d.cache.demandLookup(line, now); hit {
		d.hits++
		switch wasPrefetched {
		case pfNLP:
			d.nlpUseful++
		case pfSPF:
			d.spfUseful++
		}
		return now + penalty + int64(d.cfg.DCacheHitLat), true
	}
	d.misses++
	if m := d.mshrFor(line); m != nil {
		return m.fillAt + 1 + penalty, true
	}
	// Check in-flight prefetches: promote to a demand hit on the fill.
	for i := range d.nlp {
		if d.nlp[i].valid && d.nlp[i].lineAddr == line {
			if d.nlp[i].prefetch {
				d.nlp[i].prefetch = false // demanded while in flight: useful
				d.nlpUseful++
			}
			return d.nlp[i].fillAt + 1 + penalty, true
		}
	}
	for i := range d.spf {
		if d.spf[i].valid && d.spf[i].lineAddr == line {
			if d.spf[i].prefetch {
				d.spf[i].prefetch = false // demanded while in flight: useful
				d.spfUseful++
			}
			return d.spf[i].fillAt + 1 + penalty, true
		}
	}
	m := d.freeMSHR()
	f := d.freeLFB()
	if m == nil || f == nil {
		return 0, false
	}
	fill := now + penalty + int64(d.cfg.MissLat)
	*m = mshr{valid: true, lineAddr: line, fillAt: fill}
	if occ := d.mshrOccupancy(); occ > d.mshrHighWater {
		d.mshrHighWater = occ
	}
	lineBase := line << d.cache.lineShift
	*f = lfbEntry{
		valid:    true,
		lineAddr: line,
		data:     d.mem.Read(lineBase, 8),
		fillAt:   fill,
		freeAt:   fill + 3,
	}
	return fill + 1, true
}

// maybePrefetch lets the next-line prefetcher probe line+1 on every
// demand access and fetch it when absent. A prefetch occupies a next-line
// tracker slot, an MSHR and a fill-buffer entry, as in real designs, but
// never delays demand traffic (demand requests that need the last MSHR
// simply retry the next cycle).
func (d *dcache) maybePrefetch(now int64, line uint64) {
	if !d.cfg.NextLinePrefetcher {
		return
	}
	next := line + 1
	if d.cache.present(next) || d.mshrFor(next) != nil {
		return
	}
	for i := range d.nlp {
		if d.nlp[i].valid && d.nlp[i].lineAddr == next {
			return
		}
	}
	for i := range d.spf {
		if d.spf[i].valid && d.spf[i].lineAddr == next {
			return
		}
	}
	f := d.freeLFB()
	if f == nil {
		return
	}
	for i := range d.nlp {
		if !d.nlp[i].valid {
			fill := now + int64(d.cfg.MissLat)
			d.prefetches++
			d.nlp[i] = mshr{valid: true, lineAddr: next, fillAt: fill, prefetch: true}
			lineBase := next << d.cache.lineShift
			*f = lfbEntry{
				valid:    true,
				lineAddr: next,
				data:     d.mem.Read(lineBase, 8),
				fillAt:   fill,
				freeAt:   fill + 3,
			}
			return
		}
	}
}

// trainStride updates the stride prefetcher's per-PC table for a demand
// access. The table is direct-mapped by the accessing instruction's PC;
// a slot learns the stride between consecutive addresses from its PC and
// gains confidence on each repeat. Once confident, every access runs one
// stride ahead of the stream.
func (d *dcache) trainStride(now int64, addr, pc uint64) {
	if !d.cfg.StridePrefetcher {
		return
	}
	e := &d.stride[(pc>>2)&(spfTableEntries-1)]
	if !e.valid || e.pc != pc {
		*e = strideEntry{pc: pc, lastAddr: addr, valid: true}
		return
	}
	stride := int64(addr) - int64(e.lastAddr)
	e.lastAddr = addr
	if stride == 0 {
		return
	}
	if stride != e.stride {
		if e.conf > 0 {
			e.conf--
		} else {
			e.stride = stride
		}
		return
	}
	if e.conf < 3 {
		e.conf++
	}
	if e.conf >= 2 {
		d.spfPrefetch(now, uint64(int64(addr)+e.stride), pc)
	}
}

// spfPrefetch issues a stride prefetch for the line containing addr. A
// stride prefetch occupies a dedicated tracker slot and a fill-buffer
// entry, like a next-line prefetch, and never delays demand traffic.
// pc is the training load stream, recorded for attribution.
func (d *dcache) spfPrefetch(now int64, addr uint64, pc uint64) {
	line := d.lineOf(addr)
	if d.cache.present(line) || d.mshrFor(line) != nil {
		return
	}
	for i := range d.nlp {
		if d.nlp[i].valid && d.nlp[i].lineAddr == line {
			return
		}
	}
	for i := range d.spf {
		if d.spf[i].valid && d.spf[i].lineAddr == line {
			return
		}
	}
	f := d.freeLFB()
	if f == nil {
		return
	}
	for i := range d.spf {
		if !d.spf[i].valid {
			fill := now + int64(d.cfg.MissLat)
			d.spfPrefetches++
			d.spf[i] = mshr{valid: true, lineAddr: line, fillAt: fill, prefetch: true, trainPC: pc}
			lineBase := line << d.cache.lineShift
			*f = lfbEntry{
				valid:    true,
				lineAddr: line,
				data:     d.mem.Read(lineBase, 8),
				fillAt:   fill,
				freeAt:   fill + 3,
			}
			return
		}
	}
}

// flush invalidates the line containing addr (CBO.FLUSH).
func (d *dcache) flush(addr uint64) {
	d.cache.invalidate(d.lineOf(addr))
}

// icache is the instruction-side cache: a plain tag array with a fill
// delay; the front end stalls on misses.
type icache struct {
	cache   *cache
	hitLat  int
	missLat int
}

func newICache(cfg Config) *icache {
	return &icache{
		cache:   newCache(cfg.ICacheSets, cfg.ICacheWays, cfg.LineBytes),
		hitLat:  cfg.ICacheHitLat,
		missLat: cfg.MissLat,
	}
}

// fetchReady returns the cycle at which the line containing pc can
// deliver instructions, filling it on a miss.
func (ic *icache) fetchReady(now int64, pc uint64) int64 {
	line := pc >> ic.cache.lineShift
	if ic.cache.lookup(line, now) {
		return now + int64(ic.hitLat) - 1
	}
	ic.cache.insert(line, now)
	return now + int64(ic.missLat)
}

// flush invalidates the line containing addr.
func (ic *icache) flush(addr uint64) {
	ic.cache.invalidate(addr >> ic.cache.lineShift)
}
