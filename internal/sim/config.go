// Package sim implements a deterministic, cycle-level simulator of an
// out-of-order RISC-V core modeled after the Berkeley BOOM design. It is
// the substrate standing in for the paper's Verilator RTL simulation of
// Chipyard/BOOM: a superscalar front end with gshare branch prediction,
// explicit register renaming, a reorder buffer, an issue window, load and
// store queues with forwarding, parameterised L1 caches with MSHRs and a
// load-fill buffer, a next-line prefetcher, a data TLB, and speculative
// execution with full squash-and-recover on branch mispredictions.
//
// All microarchitectural state that the MicroSampler analysis tracks
// (Table IV of the paper) is observable each cycle through the Tracer
// interface, mirroring the Chisel printf instrumentation of the original
// system.
package sim

// Config parameterises the core, following Table III of the paper.
type Config struct {
	Name string

	// Front end.
	FetchWidth       int
	DecodeWidth      int
	IssueWidth       int
	RetireWidth      int
	FetchBufferSize  int
	BranchPredEnts   int // gshare PHT entries
	BTBEntries       int
	ICacheSets       int
	ICacheWays       int
	ICacheFetchBytes int

	// Back end.
	ROBEntries int
	IntPRF     int
	LDQEntries int
	STQEntries int
	LFBEntries int

	// Memory system.
	DCacheSets  int
	DCacheWays  int
	MSHREntries int
	TLBEntries  int
	LineBytes   int

	// Functional units.
	NumALU int
	NumMul int
	NumDiv int
	NumAGU int

	// Latencies, in cycles.
	ICacheHitLat  int
	DCacheHitLat  int
	MissLat       int
	TLBMissLat    int
	MulLat        int
	DivLat        int
	DataDepDivide bool // if set, divide latency depends on operand widths

	// Prefetchers. NextLinePrefetcher probes line+1 on every demand
	// access; StridePrefetcher trains a per-PC stride table and, once a
	// stream is confident, runs ahead of it by one stride. Both occupy
	// dedicated tracker slots plus a fill-buffer entry and never delay
	// demand traffic.
	NextLinePrefetcher bool
	StridePrefetcher   bool

	// TAGEPredictor replaces the gshare direction predictor with a TAGE
	// predictor: a bimodal base table plus tagged tables indexed by
	// geometrically increasing global history lengths. Long-history
	// tables make branch predictions sensitive to outcomes far beyond
	// gshare's 12-bit window — a wider leakage surface, observed through
	// the TAGE-PRED trace unit.
	TAGEPredictor bool

	// FastBypass enables the paper's "fast bypass" optimisation
	// (Section VII-B): an AND whose available operand is zero is folded
	// at rename time — its result is written immediately, dependents
	// wake up at once, and it shares a reorder-buffer slot rather than
	// executing on an ALU.
	FastBypass bool
}

// MegaBoom returns the MegaBoom configuration from Table III.
func MegaBoom() Config {
	return Config{
		Name:               "MegaBoom",
		FetchWidth:         8,
		DecodeWidth:        4,
		IssueWidth:         4,
		RetireWidth:        4,
		FetchBufferSize:    32,
		BranchPredEnts:     2048,
		BTBEntries:         256,
		ICacheSets:         64,
		ICacheWays:         8,
		ICacheFetchBytes:   16,
		ROBEntries:         128,
		IntPRF:             128 + 32,
		LDQEntries:         32,
		STQEntries:         32,
		LFBEntries:         64,
		DCacheSets:         64,
		DCacheWays:         8,
		MSHREntries:        8,
		TLBEntries:         32,
		LineBytes:          64,
		NumALU:             4,
		NumMul:             1,
		NumDiv:             1,
		NumAGU:             2,
		ICacheHitLat:       1,
		DCacheHitLat:       2,
		MissLat:            20,
		TLBMissLat:         8,
		MulLat:             3,
		DivLat:             16,
		NextLinePrefetcher: true,
	}
}

// SmallBoom returns the SmallBoom configuration from Table III.
func SmallBoom() Config {
	c := MegaBoom()
	c.Name = "SmallBoom"
	c.FetchWidth = 4
	c.DecodeWidth = 1
	c.IssueWidth = 1
	c.RetireWidth = 1
	c.FetchBufferSize = 8
	c.ROBEntries = 32
	c.IntPRF = 52 + 32
	c.LDQEntries = 8
	c.STQEntries = 8
	c.LFBEntries = 8
	c.DCacheWays = 4
	c.MSHREntries = 4
	c.TLBEntries = 8
	c.NumALU = 1
	c.NumAGU = 1
	return c
}

// StateBits estimates the number of microarchitectural state bits of the
// configured design, used by the scalability experiment (Table VII).
func (c Config) StateBits() int {
	bits := 0
	bits += c.IntPRF * 64                                 // physical register file
	bits += c.ROBEntries * 80                             // ROB payload
	bits += (c.LDQEntries + c.STQEntries) * (64 + 64 + 8) // LSQ addr+data+meta
	bits += c.LFBEntries * (c.LineBytes*8 + 64)           // fill buffer
	bits += c.FetchBufferSize * 48                        // fetch buffer
	bits += c.predictorBits()
	bits += c.BTBEntries * 96 // BTB tags+targets
	bits += c.DCacheSets * c.DCacheWays * (c.LineBytes*8 + 64)
	bits += c.ICacheSets * c.ICacheWays * (c.LineBytes*8 + 64)
	bits += c.MSHREntries * 80
	bits += c.TLBEntries * 128
	return bits
}

// CoreStateBits estimates the state bits of the core's pipeline
// structures only (ROB, register file, queues, predictors), excluding
// the cache data arrays that are identical across the Table III
// configurations — the paper's "size of structures (e.g., ROB)" metric
// under which MegaBoom is roughly 4x SmallBoom.
func (c Config) CoreStateBits() int {
	bits := 0
	bits += c.IntPRF * 64
	bits += c.ROBEntries * 80
	bits += (c.LDQEntries + c.STQEntries) * (64 + 64 + 8)
	bits += c.LFBEntries * (c.LineBytes*8 + 64)
	bits += c.FetchBufferSize * 48
	bits += c.MSHREntries * 80
	bits += c.TLBEntries * 128
	return bits
}

// predictorBits sizes the direction-predictor state: gshare counters by
// default, or the TAGE base + tagged tables (counter, tag, useful bits
// per entry) when TAGEPredictor is set. The stride table rides along
// because it is the other optional model with real state.
func (c Config) predictorBits() int {
	bits := 0
	if c.TAGEPredictor {
		bits += c.BranchPredEnts * 2 // bimodal base
		perEntry := 3 + tageTagBits + 2
		bits += tageNumTables * (c.BranchPredEnts / tageTableDivisor) * perEntry
	} else {
		bits += c.BranchPredEnts * 2 // gshare counters
	}
	if c.StridePrefetcher {
		bits += spfTableEntries * (64 + 64 + 64 + 2) // pc, last addr, stride, conf
	}
	return bits
}

func (c Config) validate() error {
	checks := []struct {
		ok  bool
		msg string
	}{
		{c.FetchWidth > 0, "FetchWidth must be positive"},
		{c.DecodeWidth > 0, "DecodeWidth must be positive"},
		{c.IssueWidth > 0, "IssueWidth must be positive"},
		{c.RetireWidth > 0, "RetireWidth must be positive"},
		{c.ROBEntries > 1, "ROBEntries must exceed 1"},
		{c.IntPRF >= 64, "IntPRF must be at least 64"},
		{c.LDQEntries > 0 && c.STQEntries > 0, "LSQ entries must be positive"},
		{c.LineBytes > 0 && c.LineBytes&(c.LineBytes-1) == 0, "LineBytes must be a power of two"},
		{c.DCacheSets > 0 && c.DCacheSets&(c.DCacheSets-1) == 0, "DCacheSets must be a power of two"},
		{c.BranchPredEnts > 0 && c.BranchPredEnts&(c.BranchPredEnts-1) == 0, "BranchPredEnts must be a power of two"},
		{c.NumALU > 0 && c.NumAGU > 0 && c.NumMul > 0 && c.NumDiv > 0, "FU counts must be positive"},
		{!c.TAGEPredictor || c.BranchPredEnts >= 4*tageTableDivisor,
			"TAGEPredictor needs BranchPredEnts large enough for the tagged tables"},
	}
	for _, ch := range checks {
		if !ch.ok {
			return &ConfigError{Msg: ch.msg}
		}
	}
	return nil
}

// ConfigError reports an invalid configuration.
type ConfigError struct{ Msg string }

func (e *ConfigError) Error() string { return "sim: invalid config: " + e.Msg }
