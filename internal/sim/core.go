package sim

import (
	"fmt"

	"microsampler/internal/isa"
)

// fuSlot tracks occupancy of one functional-unit instance for the
// execution-unit-utilisation (EUU) features.
type fuSlot struct {
	busyUntil int64
	pc        uint64
	seq       uint64
}

// Core is the out-of-order pipeline.
type Core struct {
	cfg Config
	mem *Memory
	dc  *dcache
	ic  *icache
	bp  branchPredictor
	// tg aliases bp when the TAGE predictor is configured, giving the
	// probe access to the prediction-metadata ring; nil under gshare.
	tg *tage

	cycle int64
	seq   uint64

	// Front end.
	fetchPC      uint64
	fetchReadyAt int64
	fetchBuf     []*uop
	fetchTrapped bool

	// Rename state.
	rat      [32]int16
	prfVal   []uint64
	prfReady []int64 // cycle at which the register becomes readable
	freeList []int16

	// Windows.
	rob []*uop
	iq  []*uop
	ldq []*uop
	stq []*uop

	// Committed stores being drained to the D-cache; entries stay in the
	// STQ until the drain completes.
	drainBusyUntil int64

	// Sequence number of an in-flight serializing op (FENCE/CBO.FLUSH);
	// dispatch stalls until it commits. Zero when none is in flight.
	serializeSeq uint64

	// Functional units.
	alus, muls, divs, agus, brus []fuSlot

	// Architectural state at commit.
	archRegs [32]uint64

	// Run status.
	halted      bool
	exitCode    uint64
	runErr      error
	output      []byte
	retired     uint64
	lastCommit  int64
	mispredicts uint64
	branches    uint64
	lsuReplays  uint64 // memory ops retried because MSHRs/LFB were full

	tracer Tracer
	// probe is the persistent view handed to the tracer every cycle; it
	// lives on the core so neither the probe nor its scratch buffers are
	// reallocated on the per-cycle hot path.
	probe Probe
}

// Tracer observes per-cycle microarchitectural state and commit-time
// region/iteration markers. It is the analogue of the paper's Chisel
// printf instrumentation.
type Tracer interface {
	// OnCycle is invoked at the end of every simulated cycle.
	OnCycle(p *Probe)
	// OnMark is invoked when a MARK instruction commits.
	OnMark(cycle int64, kind isa.MarkKind, class uint64)
}

func newCore(cfg Config, mem *Memory) *Core {
	c := &Core{
		cfg:        cfg,
		mem:        mem,
		dc:         newDCache(cfg, mem),
		ic:         newICache(cfg),
		prfVal:     make([]uint64, cfg.IntPRF),
		prfReady:   make([]int64, cfg.IntPRF),
		alus:       make([]fuSlot, cfg.NumALU),
		muls:       make([]fuSlot, cfg.NumMul),
		divs:       make([]fuSlot, cfg.NumDiv),
		agus:       make([]fuSlot, cfg.NumAGU),
		brus:       make([]fuSlot, cfg.IssueWidth),
		lastCommit: 0,
	}
	if cfg.TAGEPredictor {
		c.tg = newTAGE(cfg.BranchPredEnts, cfg.BTBEntries)
		c.bp = c.tg
	} else {
		c.bp = newGshare(cfg.BranchPredEnts, cfg.BTBEntries)
	}
	for i := 0; i < 32; i++ {
		c.rat[i] = int16(i)
	}
	c.freeList = make([]int16, 0, cfg.IntPRF)
	for i := cfg.IntPRF - 1; i >= 32; i-- {
		c.freeList = append(c.freeList, int16(i))
	}
	c.probe = Probe{c: c}
	return c
}

// step advances the pipeline by one cycle.
func (c *Core) step() {
	c.cycle++
	c.dc.tick(c.cycle)

	c.commit()
	c.drainStores()
	c.complete()
	c.issueMemory()
	c.issue()
	c.dispatch()
	c.fetch()

	if c.tracer != nil {
		c.tracer.OnCycle(&c.probe)
	}
	if !c.halted && c.cycle-c.lastCommit > 100000 {
		c.fail(fmt.Errorf("sim: pipeline made no progress for 100000 cycles (pc≈%#x)", c.fetchPC))
	}
}

func (c *Core) fail(err error) {
	if c.runErr == nil {
		c.runErr = err
	}
	c.halted = true
}

// ---------------------------------------------------------------------
// Commit.

func (c *Core) commit() {
	for n := 0; n < c.cfg.RetireWidth && len(c.rob) > 0; n++ {
		u := c.rob[0]
		if !u.completed {
			return
		}
		// FENCE and iteration-end markers retire only once all older
		// stores have drained to the D-cache: FENCE for memory-ordering
		// semantics, iter.end so each measured iteration is charged its
		// own memory traffic (the paper's long iterations absorb their
		// drains naturally; scaled-down ones need the barrier).
		drainBarrier := u.inst.Op == isa.OpFENCE ||
			(u.inst.Op == isa.OpMARK && isa.MarkKind(u.inst.Imm) == isa.MarkIterEnd)
		if drainBarrier {
			olderStore := len(c.stq) > 0 && c.stq[0].seq < u.seq
			if olderStore || c.cycle < c.drainBusyUntil {
				return
			}
		}
		if u.trap {
			c.fail(fmt.Errorf("sim: illegal instruction at pc %#x", u.pc))
			return
		}
		switch {
		case u.inst.IsStore():
			// The architectural write happens at commit; the D-cache
			// drain (timing) follows. The STQ entry is released once
			// the drain completes.
			c.mem.Write(u.memAddr, u.memSize, u.storeData)
		case u.inst.Op == isa.OpECALL:
			c.syscall()
			if c.halted {
				c.popROBHead(u)
				return
			}
		case u.inst.Op == isa.OpMARK:
			if c.tracer != nil {
				c.tracer.OnMark(c.cycle, isa.MarkKind(u.inst.Imm), u.result)
			}
		case u.inst.Op == isa.OpCBOFLUSH:
			c.dc.flush(u.result)
			c.ic.flush(u.result)
		}
		if u.seq == c.serializeSeq {
			c.serializeSeq = 0
		}
		if u.pdst >= 0 && u.inst.Rd != isa.Zero {
			c.archRegs[u.inst.Rd] = u.result
			if u.stale >= 32 {
				c.freeList = append(c.freeList, u.stale)
			}
		}
		c.popROBHead(u)
	}
}

func (c *Core) popROBHead(u *uop) {
	c.rob = c.rob[1:]
	c.retired++
	c.lastCommit = c.cycle
	if u.inst.IsLoad() && len(c.ldq) > 0 && c.ldq[0] == u {
		c.ldq = c.ldq[1:]
	}
	// Store uops leave the STQ when their drain completes (drainStores).
}

func (c *Core) syscall() {
	switch c.archRegs[isa.A7] {
	case 93: // exit
		c.exitCode = c.archRegs[isa.A0]
		c.halted = true
	case 64: // write
		addr, n := c.archRegs[isa.A1], c.archRegs[isa.A2]
		if n > 1<<20 {
			c.fail(fmt.Errorf("sim: write syscall length %d too large", n))
			return
		}
		c.output = append(c.output, c.mem.ReadBytes(addr, int(n))...)
		c.archRegs[isa.A0] = n
	default:
		c.fail(fmt.Errorf("sim: unsupported syscall %d", c.archRegs[isa.A7]))
	}
}

// drainStores sends committed stores to the D-cache, one at a time; a
// missing line blocks the drain until its fill completes, which is what
// creates the cache-residency timing channel of case study ME-V1-MV.
func (c *Core) drainStores() {
	if c.cycle < c.drainBusyUntil {
		return
	}
	// The head of the STQ is the oldest store. It drains only after its
	// uop has committed (it is no longer in the ROB).
	if len(c.stq) == 0 {
		return
	}
	u := c.stq[0]
	if !c.isCommitted(u) {
		return
	}
	done, ok := c.dc.access(c.cycle, u.memAddr, u.pc)
	if !ok {
		c.lsuReplays++
		return
	}
	c.drainBusyUntil = done
	c.stq = c.stq[1:]
}

func (c *Core) isCommitted(u *uop) bool {
	return len(c.rob) == 0 || u.seq < c.rob[0].seq
}

// ---------------------------------------------------------------------
// Completion and branch resolution.

func (c *Core) complete() {
	for _, u := range c.rob {
		if u.completed || u.doneAt > c.cycle {
			continue
		}
		u.completed = true
		if u.inst.Class() == isa.ClassBranch && !u.resolved {
			if c.resolveBranch(u) {
				return // squash performed; younger state is gone
			}
		}
	}
}

// resolveBranch trains the predictor and squashes on a misprediction.
// It reports whether a squash happened.
func (c *Core) resolveBranch(u *uop) bool {
	u.resolved = true
	c.branches++
	if u.inst.IsCondBranch() {
		c.bp.train(u.phtIdx, u.pc, u.histChk, u.taken)
	}
	if u.inst.Op == isa.OpJALR {
		c.bp.btbUpdate(u.pc, u.target)
	}
	mispredicted := u.taken != u.predTaken || (u.taken && u.target != u.predTarget)
	if !mispredicted {
		return false
	}
	c.mispredicts++
	c.squashAfter(u)
	if u.inst.IsCondBranch() {
		c.bp.restoreHistory(u.histChk, u.taken)
	}
	redirect := u.target
	if !u.taken {
		redirect = u.pc + 4
	}
	c.fetchPC = redirect
	c.fetchReadyAt = c.cycle + 2 // redirect penalty
	c.fetchTrapped = false
	c.fetchBuf = c.fetchBuf[:0]
	return true
}

// squashAfter removes every uop younger than u from the pipeline and
// restores the rename state to u's checkpoint.
func (c *Core) squashAfter(u *uop) {
	if u.ratChk != nil {
		c.rat = *u.ratChk
	}
	squashSeq := u.seq
	// Free destination registers of squashed uops, youngest first, so
	// the free list returns to its pre-allocation order.
	for i := len(c.rob) - 1; i >= 0; i-- {
		v := c.rob[i]
		if v.seq <= squashSeq {
			break
		}
		if v.pdst >= 32 {
			c.freeList = append(c.freeList, v.pdst)
		}
	}
	if c.serializeSeq > squashSeq {
		c.serializeSeq = 0
	}
	c.rob = truncAfter(c.rob, squashSeq)
	c.iq = truncAfter(c.iq, squashSeq)
	c.ldq = truncAfter(c.ldq, squashSeq)
	c.stq = truncAfter(c.stq, squashSeq)
	for _, pool := range [][]fuSlot{c.alus, c.muls, c.divs, c.agus, c.brus} {
		for i := range pool {
			if pool[i].busyUntil > c.cycle && pool[i].seq > squashSeq {
				pool[i] = fuSlot{}
			}
		}
	}
}

func truncAfter(q []*uop, seq uint64) []*uop {
	for len(q) > 0 && q[len(q)-1].seq > seq {
		q = q[:len(q)-1]
	}
	return q
}

// ---------------------------------------------------------------------
// Memory issue (loads accessing the D-cache, with STQ forwarding).

func (c *Core) issueMemory() {
	for _, ld := range c.ldq {
		if !ld.addrReady || ld.memIssued {
			continue
		}
		st, blocked := c.olderStoreConflict(ld)
		if blocked {
			continue
		}
		if st != nil {
			// Store-to-load forwarding.
			shift := (ld.memAddr - st.memAddr) * 8
			raw := st.storeData >> shift
			ld.result = loadExtend(ld.inst.Op, raw)
			ld.memIssued = true
			ld.doneAt = c.cycle + 1
			if ld.pdst >= 0 {
				c.prfVal[ld.pdst] = ld.result
				c.prfReady[ld.pdst] = ld.doneAt
			}
			continue
		}
		done, ok := c.dc.access(c.cycle, ld.memAddr, ld.pc)
		if !ok {
			c.lsuReplays++
			continue
		}
		raw := c.mem.Read(ld.memAddr, ld.memSize)
		ld.result = loadExtend(ld.inst.Op, raw)
		ld.memIssued = true
		ld.doneAt = done
		if ld.pdst >= 0 {
			c.prfVal[ld.pdst] = ld.result
			c.prfReady[ld.pdst] = done
		}
	}
}

// olderStoreConflict scans older stores. It returns a forwarding source
// when the youngest older overlapping store fully covers the load, or
// blocked=true when the load must wait (unknown address, partial
// overlap, or covering store whose data is not yet available).
func (c *Core) olderStoreConflict(ld *uop) (fwd *uop, blocked bool) {
	for i := len(c.stq) - 1; i >= 0; i-- {
		st := c.stq[i]
		if st.seq > ld.seq {
			continue
		}
		if !st.addrReady {
			return nil, true
		}
		if st.memAddr+uint64(st.memSize) <= ld.memAddr ||
			ld.memAddr+uint64(ld.memSize) <= st.memAddr {
			continue // disjoint
		}
		covers := st.memAddr <= ld.memAddr &&
			ld.memAddr+uint64(ld.memSize) <= st.memAddr+uint64(st.memSize)
		if covers && st.completed {
			return st, false
		}
		return nil, true
	}
	return nil, false
}

// ---------------------------------------------------------------------
// Issue and execute.

func (c *Core) srcReady(p int16) bool {
	return p < 0 || c.prfReady[p] <= c.cycle
}

func (c *Core) srcVal(p int16) uint64 {
	if p < 0 {
		return 0
	}
	return c.prfVal[p]
}

func acquireFU(pool []fuSlot, now int64) *fuSlot {
	for i := range pool {
		if pool[i].busyUntil <= now {
			return &pool[i]
		}
	}
	return nil
}

func (c *Core) issue() {
	issued := 0
	kept := c.iq[:0]
	for qi, u := range c.iq {
		if issued >= c.cfg.IssueWidth {
			kept = append(kept, c.iq[qi:]...)
			break
		}
		if !c.srcReady(u.ps1) || !c.srcReady(u.ps2) {
			kept = append(kept, u)
			continue
		}
		if !c.tryIssue(u) {
			kept = append(kept, u)
			continue
		}
		issued++
	}
	c.iq = kept
}

// tryIssue executes u functionally if a functional unit is available.
func (c *Core) tryIssue(u *uop) bool {
	v1 := c.srcVal(u.ps1)
	v2 := c.srcVal(u.ps2)
	now := c.cycle

	switch u.inst.Class() {
	case isa.ClassALU:
		// Fast bypass, late check (Section VII-B1 step 2.2): an AND
		// whose operand arrived as zero via the bypass network is
		// folded at issue — it never occupies an ALU and its dependents
		// wake immediately.
		if c.cfg.FastBypass && u.inst.Op == isa.OpAND && (v1 == 0 || v2 == 0) {
			u.folded = true
			u.result = 0
			u.doneAt = now
			break
		}
		fu := acquireFU(c.alus, now)
		if fu == nil {
			return false
		}
		*fu = fuSlot{busyUntil: now + 1, pc: u.pc, seq: u.seq}
		u.result = execALU(u.inst, v1, v2, u.pc)
		u.doneAt = now + 1

	case isa.ClassMul:
		fu := acquireFU(c.muls, now)
		if fu == nil {
			return false
		}
		lat := int64(c.cfg.MulLat)
		*fu = fuSlot{busyUntil: now + lat, pc: u.pc, seq: u.seq}
		u.result = execALU(u.inst, v1, v2, u.pc)
		u.doneAt = now + lat

	case isa.ClassDiv:
		fu := acquireFU(c.divs, now)
		if fu == nil {
			return false
		}
		lat := divLatency(c.cfg, v1, v2)
		*fu = fuSlot{busyUntil: now + lat, pc: u.pc, seq: u.seq}
		u.result = execALU(u.inst, v1, v2, u.pc)
		u.doneAt = now + lat

	case isa.ClassBranch:
		fu := acquireFU(c.brus, now)
		if fu == nil {
			return false
		}
		*fu = fuSlot{busyUntil: now + 1, pc: u.pc, seq: u.seq}
		u.taken, u.target = branchOutcome(u.inst, v1, v2, u.pc)
		u.result = execALU(u.inst, v1, v2, u.pc) // link value for jal/jalr
		u.doneAt = now + 1

	case isa.ClassLoad:
		fu := acquireFU(c.agus, now)
		if fu == nil {
			return false
		}
		*fu = fuSlot{busyUntil: now + 1, pc: u.pc, seq: u.seq}
		u.memAddr = v1 + uint64(u.inst.Imm)
		u.memSize = memAccessSize(u.inst.Op)
		u.addrReady = true
		// doneAt is set by issueMemory once the access completes.
		u.issued = true
		return true

	case isa.ClassStore:
		fu := acquireFU(c.agus, now)
		if fu == nil {
			return false
		}
		*fu = fuSlot{busyUntil: now + 1, pc: u.pc, seq: u.seq}
		u.memAddr = v1 + uint64(u.inst.Imm)
		u.memSize = memAccessSize(u.inst.Op)
		u.storeData = v2
		u.addrReady = true
		u.doneAt = now + 1

	case isa.ClassSystem:
		// System ops need no functional unit; MARK and CBO carry their
		// rs1 value as the result.
		u.result = v1
		u.doneAt = now + 1
	}

	u.issued = true
	if u.pdst >= 0 && u.inst.Class() != isa.ClassLoad {
		c.prfVal[u.pdst] = u.result
		c.prfReady[u.pdst] = u.doneAt
	}
	return true
}

// ---------------------------------------------------------------------
// Dispatch (rename + allocate).

func (c *Core) dispatch() {
	for n := 0; n < c.cfg.DecodeWidth && len(c.fetchBuf) > 0; n++ {
		if c.serializeSeq != 0 {
			return
		}
		u := c.fetchBuf[0]
		if len(c.rob) >= c.cfg.ROBEntries {
			return
		}
		if u.inst.IsLoad() && len(c.ldq) >= c.cfg.LDQEntries {
			return
		}
		if u.inst.IsStore() && len(c.stq) >= c.cfg.STQEntries {
			return
		}
		needsPdst := u.inst.WritesRd() && u.inst.Rd != isa.Zero && !u.trap
		if needsPdst && len(c.freeList) == 0 {
			return
		}

		// Rename sources.
		if !u.trap {
			if u.inst.ReadsRs1() {
				u.ps1 = c.rat[u.inst.Rs1]
			}
			if u.inst.ReadsRs2() {
				u.ps2 = c.rat[u.inst.Rs2]
			}
		}
		if needsPdst {
			p := c.freeList[len(c.freeList)-1]
			c.freeList = c.freeList[:len(c.freeList)-1]
			u.pdst = p
			u.stale = c.rat[u.inst.Rd]
			c.rat[u.inst.Rd] = p
			c.prfReady[p] = never
		}
		if u.inst.Class() == isa.ClassBranch {
			chk := c.rat
			u.ratChk = &chk
		}

		if u.trap {
			u.completed = true
			u.doneAt = c.cycle
			c.rob = append(c.rob, u)
			c.fetchBuf = c.fetchBuf[1:]
			continue
		}

		if c.cfg.FastBypass && c.tryFastBypass(u) {
			c.rob = append(c.rob, u)
			c.fetchBuf = c.fetchBuf[1:]
			continue
		}

		c.rob = append(c.rob, u)
		switch u.inst.Class() {
		case isa.ClassLoad:
			c.ldq = append(c.ldq, u)
		case isa.ClassStore:
			c.stq = append(c.stq, u)
		}
		if u.inst.Op == isa.OpFENCE || u.inst.Op == isa.OpCBOFLUSH {
			c.serializeSeq = u.seq
		}
		c.iq = append(c.iq, u)
		c.fetchBuf = c.fetchBuf[1:]
	}
}

// tryFastBypass implements the paper's AND-elision optimisation
// (Section VII-B): at rename, if the instruction is an AND and one of
// its operands is already available — from the register file or the
// bypass network — with value zero, the result is written immediately,
// dependents are woken, and the op is folded into the neighbouring ROB
// entry instead of executing on an ALU.
func (c *Core) tryFastBypass(u *uop) bool {
	if u.inst.Op != isa.OpAND {
		return false
	}
	zero := (c.srcReady(u.ps1) && c.srcVal(u.ps1) == 0) ||
		(c.srcReady(u.ps2) && c.srcVal(u.ps2) == 0)
	if !zero {
		return false
	}
	u.folded = true
	u.result = 0
	u.completed = true
	u.doneAt = c.cycle
	if u.pdst >= 0 {
		c.prfVal[u.pdst] = 0
		c.prfReady[u.pdst] = c.cycle
	}
	return true
}

// ---------------------------------------------------------------------
// Fetch.

func (c *Core) fetch() {
	if c.halted || c.fetchTrapped || c.cycle < c.fetchReadyAt {
		return
	}
	room := c.cfg.FetchBufferSize - len(c.fetchBuf)
	if room <= 0 {
		return
	}
	ready := c.ic.fetchReady(c.cycle, c.fetchPC)
	if ready > c.cycle {
		c.fetchReadyAt = ready
		return
	}
	n := c.cfg.FetchWidth
	if n > room {
		n = room
	}
	blockMask := ^uint64(c.cfg.ICacheFetchBytes - 1)
	block := c.fetchPC & blockMask
	pc := c.fetchPC

	for i := 0; i < n; i++ {
		if pc&blockMask != block {
			break // stay within one aligned fetch block per cycle
		}
		word := uint32(c.mem.Read(pc, 4))
		inst, err := isa.Decode(word)
		c.seq++
		u := newUop(c.seq, pc, inst)
		if err != nil {
			u.trap = true
			c.fetchBuf = append(c.fetchBuf, u)
			c.fetchTrapped = true
			return
		}

		redirected := false
		switch {
		case inst.IsCondBranch():
			taken, idx := c.bp.predict(pc)
			u.phtIdx = idx
			u.histChk = c.bp.shiftHistory(taken)
			u.predTaken = taken
			u.predTarget = pc + uint64(inst.Imm)
			if taken {
				pc = u.predTarget
				redirected = true
			}
		case inst.Op == isa.OpJAL:
			u.predTaken = true
			u.predTarget = pc + uint64(inst.Imm)
			if inst.Rd == isa.RA {
				c.bp.rasPush(pc + 4) // call: remember the return address
			}
			pc = u.predTarget
			redirected = true
		case inst.Op == isa.OpJALR:
			u.predTaken = true
			isRet := inst.Rd == isa.Zero && inst.Rs1 == isa.RA
			if t, ok := c.bp.rasPop(); isRet && ok {
				u.predTarget = t
			} else if t, ok := c.bp.btbLookup(pc); ok {
				u.predTarget = t
			} else {
				u.predTarget = pc + 4
			}
			if inst.Rd == isa.RA {
				c.bp.rasPush(pc + 4) // indirect call
			}
			pc = u.predTarget
			redirected = true
		}
		c.fetchBuf = append(c.fetchBuf, u)
		if redirected {
			c.fetchPC = pc
			return
		}
		pc += 4
	}
	c.fetchPC = pc
}
