package sim

import "testing"

// TestRunCountersMissHeavy drives a strided walk over a buffer larger
// than the L1D and checks the telemetry counters surfaced in Result:
// misses and MSHR pressure must register, the next-line prefetcher must
// issue fills, and the basic invariants between the counters must hold.
func TestRunCountersMissHeavy(t *testing.T) {
	cfg := MegaBoom()
	_, res := runSrc(t, cfg, `
	.data
buf: .zero 65536
	.text
_start:
	la   t0, buf
	li   t1, 1024          # lines touched
loop:
	ld   t2, 0(t0)
	addi t0, t0, 64        # one cache line per access
	addi t1, t1, -1
	bnez t1, loop
	li   a0, 0
	j exit
`+exitStub)
	if res.DCacheMisses == 0 {
		t.Fatal("strided walk recorded no D-cache misses")
	}
	if res.MSHRHighWater < 1 {
		t.Errorf("MSHR high-water = %d, want >= 1 with outstanding misses", res.MSHRHighWater)
	}
	if res.MSHRHighWater > cfg.MSHREntries {
		t.Errorf("MSHR high-water %d exceeds %d entries", res.MSHRHighWater, cfg.MSHREntries)
	}
	if res.Prefetches == 0 {
		t.Error("next-line prefetcher idle on a sequential stride")
	}
	if res.PrefetchesUseful+res.PrefetchesUseless > res.Prefetches {
		t.Errorf("prefetch accounting inconsistent: useful %d + useless %d > issued %d",
			res.PrefetchesUseful, res.PrefetchesUseless, res.Prefetches)
	}
	// A sequential stride is exactly what the next-line prefetcher
	// predicts: most fills must serve a demand access.
	if res.PrefetchesUseful == 0 {
		t.Error("no prefetch ever served a demand access on a sequential stride")
	}
	if res.IPC() <= 0 {
		t.Errorf("IPC = %v", res.IPC())
	}
}

// TestRunCountersCleanLoop checks that a tiny cache-resident loop keeps
// the pressure counters quiet.
func TestRunCountersCleanLoop(t *testing.T) {
	_, res := runSrc(t, MegaBoom(), `
_start:
	li   t1, 64
loop:
	addi t1, t1, -1
	bnez t1, loop
	li   a0, 0
	j exit
`+exitStub)
	if res.LSUReplays != 0 {
		t.Errorf("ALU loop recorded %d LSU replays", res.LSUReplays)
	}
	if res.MSHRHighWater > 1 {
		t.Errorf("MSHR high-water = %d for a near-memoryless loop", res.MSHRHighWater)
	}
}

// TestPrefetchUselessEviction forces prefetched lines to be evicted
// unused: random-ish long strides touch each set once and never the
// prefetched neighbour.
func TestPrefetchUselessEviction(t *testing.T) {
	_, res := runSrc(t, SmallBoom(), `
	.data
buf: .zero 131072
	.text
_start:
	la   t0, buf
	li   t1, 256
loop:
	ld   t2, 0(t0)
	addi t0, t0, 512       # skip 8 lines: prefetched line+1 never demanded
	addi t1, t1, -1
	bnez t1, loop
	li   a0, 0
	j exit
`+exitStub)
	if res.Prefetches == 0 {
		t.Skip("prefetcher disabled in this configuration")
	}
	if res.PrefetchesUseless == 0 {
		t.Errorf("no useless prefetches counted on a 512-byte stride (issued %d, useful %d)",
			res.Prefetches, res.PrefetchesUseful)
	}
}
