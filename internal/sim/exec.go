package sim

import (
	"math/bits"

	"microsampler/internal/isa"
)

// execALU computes the functional result of a non-memory instruction.
// v1 and v2 are the source operand values; pc is the instruction address.
func execALU(in isa.Inst, v1, v2, pc uint64) uint64 {
	s1, s2 := int64(v1), int64(v2)
	imm := in.Imm
	switch in.Op {
	case isa.OpADD:
		return v1 + v2
	case isa.OpSUB:
		return v1 - v2
	case isa.OpSLL:
		return v1 << (v2 & 63)
	case isa.OpSLT:
		return b2u(s1 < s2)
	case isa.OpSLTU:
		return b2u(v1 < v2)
	case isa.OpXOR:
		return v1 ^ v2
	case isa.OpSRL:
		return v1 >> (v2 & 63)
	case isa.OpSRA:
		return uint64(s1 >> (v2 & 63))
	case isa.OpOR:
		return v1 | v2
	case isa.OpAND:
		return v1 & v2
	case isa.OpADDW:
		return sext32(uint32(v1 + v2))
	case isa.OpSUBW:
		return sext32(uint32(v1 - v2))
	case isa.OpSLLW:
		return sext32(uint32(v1) << (v2 & 31))
	case isa.OpSRLW:
		return sext32(uint32(v1) >> (v2 & 31))
	case isa.OpSRAW:
		return sext32(uint32(int32(uint32(v1)) >> (v2 & 31)))

	case isa.OpADDI:
		return v1 + uint64(imm)
	case isa.OpSLTI:
		return b2u(s1 < imm)
	case isa.OpSLTIU:
		return b2u(v1 < uint64(imm))
	case isa.OpXORI:
		return v1 ^ uint64(imm)
	case isa.OpORI:
		return v1 | uint64(imm)
	case isa.OpANDI:
		return v1 & uint64(imm)
	case isa.OpSLLI:
		return v1 << (uint64(imm) & 63)
	case isa.OpSRLI:
		return v1 >> (uint64(imm) & 63)
	case isa.OpSRAI:
		return uint64(s1 >> (uint64(imm) & 63))
	case isa.OpADDIW:
		return sext32(uint32(v1 + uint64(imm)))
	case isa.OpSLLIW:
		return sext32(uint32(v1) << (uint64(imm) & 31))
	case isa.OpSRLIW:
		return sext32(uint32(v1) >> (uint64(imm) & 31))
	case isa.OpSRAIW:
		return sext32(uint32(int32(uint32(v1)) >> (uint64(imm) & 31)))

	case isa.OpLUI:
		return uint64(imm << 12)
	case isa.OpAUIPC:
		return pc + uint64(imm<<12)

	case isa.OpMUL:
		return v1 * v2
	case isa.OpMULH:
		h, _ := bits.Mul64(v1, v2)
		if s1 < 0 {
			h -= v2
		}
		if s2 < 0 {
			h -= v1
		}
		return h
	case isa.OpMULHU:
		h, _ := bits.Mul64(v1, v2)
		return h
	case isa.OpMULHSU:
		h, _ := bits.Mul64(v1, v2)
		if s1 < 0 {
			h -= v2
		}
		return h
	case isa.OpMULW:
		return sext32(uint32(v1) * uint32(v2))

	case isa.OpDIV:
		if s2 == 0 {
			return ^uint64(0)
		}
		if s1 == -1<<63 && s2 == -1 {
			return v1
		}
		return uint64(s1 / s2)
	case isa.OpDIVU:
		if v2 == 0 {
			return ^uint64(0)
		}
		return v1 / v2
	case isa.OpREM:
		if s2 == 0 {
			return v1
		}
		if s1 == -1<<63 && s2 == -1 {
			return 0
		}
		return uint64(s1 % s2)
	case isa.OpREMU:
		if v2 == 0 {
			return v1
		}
		return v1 % v2
	case isa.OpDIVW:
		a, b := int32(uint32(v1)), int32(uint32(v2))
		if b == 0 {
			return ^uint64(0)
		}
		if a == -1<<31 && b == -1 {
			return sext32(uint32(a))
		}
		return sext32(uint32(a / b))
	case isa.OpDIVUW:
		a, b := uint32(v1), uint32(v2)
		if b == 0 {
			return ^uint64(0)
		}
		return sext32(a / b)
	case isa.OpREMW:
		a, b := int32(uint32(v1)), int32(uint32(v2))
		if b == 0 {
			return sext32(uint32(a))
		}
		if a == -1<<31 && b == -1 {
			return 0
		}
		return sext32(uint32(a % b))
	case isa.OpREMUW:
		a, b := uint32(v1), uint32(v2)
		if b == 0 {
			return sext32(a)
		}
		return sext32(a % b)

	case isa.OpJAL, isa.OpJALR:
		return pc + 4
	}
	return 0
}

// branchOutcome evaluates a control-flow instruction.
func branchOutcome(in isa.Inst, v1, v2, pc uint64) (taken bool, target uint64) {
	s1, s2 := int64(v1), int64(v2)
	switch in.Op {
	case isa.OpJAL:
		return true, pc + uint64(in.Imm)
	case isa.OpJALR:
		return true, (v1 + uint64(in.Imm)) &^ 1
	case isa.OpBEQ:
		taken = v1 == v2
	case isa.OpBNE:
		taken = v1 != v2
	case isa.OpBLT:
		taken = s1 < s2
	case isa.OpBGE:
		taken = s1 >= s2
	case isa.OpBLTU:
		taken = v1 < v2
	case isa.OpBGEU:
		taken = v1 >= v2
	}
	if taken {
		return true, pc + uint64(in.Imm)
	}
	return false, pc + 4
}

// loadExtend applies the load's sign/zero extension to raw bytes.
func loadExtend(op isa.Op, raw uint64) uint64 {
	switch op {
	case isa.OpLB:
		return uint64(int64(int8(raw)))
	case isa.OpLBU:
		return raw & 0xFF
	case isa.OpLH:
		return uint64(int64(int16(raw)))
	case isa.OpLHU:
		return raw & 0xFFFF
	case isa.OpLW:
		return sext32(uint32(raw))
	case isa.OpLWU:
		return raw & 0xFFFFFFFF
	default:
		return raw
	}
}

// divLatency models the iterative divider. With DataDepDivide the
// latency follows an early-terminating radix-2 divider: proportional to
// the number of quotient bits.
func divLatency(cfg Config, v1, v2 uint64) int64 {
	if !cfg.DataDepDivide {
		return int64(cfg.DivLat)
	}
	q := bits.Len64(v1) - bits.Len64(v2)
	if q < 0 {
		q = 0
	}
	return int64(2 + q/2)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func sext32(v uint32) uint64 { return uint64(int64(int32(v))) }
