package sim

// DefaultFlightFrames is the ring capacity used when NewFlightRecorder
// is given a non-positive size.
const DefaultFlightFrames = 1024

// FlightFrame is one cycle's compact machine-state record: the
// frontend PC, retired-instruction count and the occupancy of the
// structures whose congestion explains most stalls (reorder buffer,
// load/store queues, outstanding misses and fill buffers).
type FlightFrame struct {
	Cycle   int64  `json:"cycle"`
	FetchPC uint64 `json:"fetchPC"`
	Retired uint64 `json:"retired"`
	ROB     int    `json:"rob"`
	SQ      int    `json:"sq"`
	LQ      int    `json:"lq"`
	MSHR    int    `json:"mshr"`
	LFB     int    `json:"lfb"`
}

// FlightRecorder is a fixed-size, allocation-free ring buffer of the
// last N cycles of machine state. Attach one with
// Machine.SetFlightRecorder; when a run fails the ring holds the final
// approach to the failure, dumpable as a Perfetto post-mortem through
// telemetry/export.FlightPerfetto.
type FlightRecorder struct {
	frames  []FlightFrame
	next    int
	wrapped bool
}

// NewFlightRecorder returns a recorder keeping the last n cycles
// (DefaultFlightFrames when n is not positive). The ring is allocated
// once here; recording allocates nothing.
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = DefaultFlightFrames
	}
	return &FlightRecorder{frames: make([]FlightFrame, n)}
}

// record captures the core's state after the cycle that just executed.
func (f *FlightRecorder) record(c *Core) {
	fr := &f.frames[f.next]
	fr.Cycle = c.cycle
	fr.FetchPC = c.fetchPC
	fr.Retired = c.retired
	rob := 0
	for _, u := range c.rob {
		if !u.folded {
			rob++
		}
	}
	fr.ROB = rob
	fr.SQ = len(c.stq)
	fr.LQ = len(c.ldq)
	mshr := 0
	for i := range c.dc.mshrs {
		if c.dc.mshrs[i].valid {
			mshr++
		}
	}
	fr.MSHR = mshr
	lfb := 0
	for i := range c.dc.lfb {
		if c.dc.lfb[i].valid {
			lfb++
		}
	}
	fr.LFB = lfb
	f.next++
	if f.next == len(f.frames) {
		f.next = 0
		f.wrapped = true
	}
}

// Frames returns the recorded frames in chronological order.
func (f *FlightRecorder) Frames() []FlightFrame {
	if !f.wrapped {
		out := make([]FlightFrame, f.next)
		copy(out, f.frames[:f.next])
		return out
	}
	out := make([]FlightFrame, 0, len(f.frames))
	out = append(out, f.frames[f.next:]...)
	out = append(out, f.frames[:f.next]...)
	return out
}

// Reset empties the ring for reuse.
func (f *FlightRecorder) Reset() {
	f.next = 0
	f.wrapped = false
}

// FlightDump is a self-describing post-mortem snapshot of a machine's
// flight recorder: the configuration, where the frontend was pointing
// when the run ended, and the last recorded cycles.
type FlightDump struct {
	Config  string        `json:"config"`
	Cycle   int64         `json:"cycle"`
	FetchPC uint64        `json:"fetchPC"`
	Frames  []FlightFrame `json:"frames"`
}

// SetFlightRecorder attaches a flight recorder sampling every cycle of
// RunContext (nil detaches; the detached path pays one branch per
// cycle).
func (m *Machine) SetFlightRecorder(fr *FlightRecorder) { m.flight = fr }

// FlightDump captures the attached recorder's content, or nil when no
// recorder is attached.
func (m *Machine) FlightDump() *FlightDump {
	if m.flight == nil {
		return nil
	}
	return &FlightDump{
		Config:  m.cfg.Name,
		Cycle:   m.core.cycle,
		FetchPC: m.core.fetchPC,
		Frames:  m.flight.Frames(),
	}
}
