package sim

import (
	"testing"
)

// countingProgram retires a short counted loop and exits.
const countingProgram = `
_start:
	li   t0, 200
loop:
	addi t0, t0, -1
	bnez t0, loop
	li a0, 0
` + exitStub

func TestFlightRecorderCapturesLastCycles(t *testing.T) {
	m := newLoaded(t, SmallBoom(), countingProgram)
	fr := NewFlightRecorder(32)
	m.SetFlightRecorder(fr)
	res, err := m.Run(1_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	frames := fr.Frames()
	if len(frames) != 32 {
		t.Fatalf("frames = %d want 32 (run lasted %d cycles)", len(frames), res.Cycles)
	}
	for i, f := range frames {
		if i > 0 && f.Cycle != frames[i-1].Cycle+1 {
			t.Fatalf("frame %d cycle %d not contiguous after %d", i, f.Cycle, frames[i-1].Cycle)
		}
	}
	if last := frames[len(frames)-1]; last.Cycle != res.Cycles {
		t.Errorf("last frame cycle = %d want %d", last.Cycle, res.Cycles)
	}
	if frames[len(frames)-1].Retired != res.Instructions {
		t.Errorf("last frame retired = %d want %d",
			frames[len(frames)-1].Retired, res.Instructions)
	}
}

func TestFlightRecorderShortRunNoWrap(t *testing.T) {
	m := newLoaded(t, SmallBoom(), quickExit)
	fr := NewFlightRecorder(1 << 16)
	m.SetFlightRecorder(fr)
	res, err := m.Run(1_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	frames := fr.Frames()
	if int64(len(frames)) != res.Cycles {
		t.Fatalf("frames = %d want %d (one per cycle, no wrap)", len(frames), res.Cycles)
	}
	if frames[0].Cycle != 1 {
		t.Errorf("first frame cycle = %d want 1", frames[0].Cycle)
	}
}

func TestFlightDump(t *testing.T) {
	m := newLoaded(t, SmallBoom(), quickExit)
	if d := m.FlightDump(); d != nil {
		t.Fatal("dump without recorder should be nil")
	}
	m.SetFlightRecorder(NewFlightRecorder(0)) // 0 selects the default size
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	d := m.FlightDump()
	if d == nil {
		t.Fatal("nil dump with recorder attached")
	}
	if d.Config != "SmallBoom" {
		t.Errorf("dump config = %q want SmallBoom", d.Config)
	}
	if len(d.Frames) == 0 || d.Cycle == 0 {
		t.Errorf("empty dump: %d frames at cycle %d", len(d.Frames), d.Cycle)
	}
}

func TestFlightRecorderReset(t *testing.T) {
	fr := NewFlightRecorder(4)
	m := newLoaded(t, SmallBoom(), quickExit)
	m.SetFlightRecorder(fr)
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	fr.Reset()
	if got := fr.Frames(); len(got) != 0 {
		t.Errorf("frames after reset = %d want 0", len(got))
	}
}

func TestCycleObserverSeesFullRun(t *testing.T) {
	m := newLoaded(t, SmallBoom(), countingProgram)
	var total int64
	m.SetCycleObserver(func(d int64) {
		if d <= 0 {
			t.Errorf("non-positive delta %d", d)
		}
		total += d
	})
	res, err := m.Run(1_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if total != res.Cycles {
		t.Errorf("observed %d cycles, run took %d", total, res.Cycles)
	}
}
