package sim

import (
	"errors"
	"fmt"

	"microsampler/internal/asm"
	"microsampler/internal/isa"
)

// Machine couples a core with memory and a loaded program; it is the
// top-level entry point of the simulator.
type Machine struct {
	cfg  Config
	mem  *Memory
	core *Core
}

// ErrMaxCycles is returned when a run exceeds its cycle budget.
var ErrMaxCycles = errors.New("sim: exceeded maximum cycle budget")

// New creates a machine with the given configuration.
func New(cfg Config) (*Machine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	mem := NewMemory()
	return &Machine{cfg: cfg, mem: mem, core: newCore(cfg, mem)}, nil
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Memory returns the machine's physical memory, for harnesses that need
// to initialise inputs or inspect outputs.
func (m *Machine) Memory() *Memory { return m.mem }

// SetTracer attaches a per-cycle tracer (may be nil).
func (m *Machine) SetTracer(t Tracer) { m.core.tracer = t }

// LoadProgram installs an assembled program image and resets the PC and
// stack pointer. Microarchitectural state (caches, predictors) is left
// as-is, so a fresh Machine starts from the paper's "reset state".
func (m *Machine) LoadProgram(p *asm.Program) error {
	if len(p.Text) == 0 {
		return errors.New("sim: empty text segment")
	}
	m.mem.WriteBytes(p.TextBase, p.Text)
	if len(p.Data) > 0 {
		m.mem.WriteBytes(p.DataBase, p.Data)
	}
	m.core.fetchPC = p.Entry
	m.setReg(isa.SP, p.StackTop)
	return nil
}

// setReg writes an architectural register in both the renamed and
// committed state; only valid before execution starts.
func (m *Machine) setReg(r isa.Reg, v uint64) {
	p := m.core.rat[r]
	m.core.prfVal[p] = v
	m.core.prfReady[p] = 0
	m.core.archRegs[r] = v
}

// Result summarises a completed run.
type Result struct {
	Cycles       int64
	Instructions uint64
	ExitCode     uint64
	Output       []byte
	Branches     uint64
	Mispredicts  uint64
	DCacheHits   uint64
	DCacheMisses uint64
	TLBMisses    uint64
	Prefetches   uint64
	// PrefetchesUseful counts prefetched lines that later served a
	// demand access; PrefetchesUseless counts prefetched lines evicted
	// without ever being demanded (the prefetcher's mispredictions).
	PrefetchesUseful  uint64
	PrefetchesUseless uint64
	// LSUReplays counts load/store issue attempts bounced because every
	// MSHR or fill-buffer slot was busy.
	LSUReplays uint64
	// MSHRHighWater is the peak number of simultaneously outstanding
	// demand misses.
	MSHRHighWater int
}

// IPC returns retired instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// Run executes until the program exits or maxCycles elapse.
func (m *Machine) Run(maxCycles int64) (Result, error) {
	c := m.core
	for !c.halted {
		if c.cycle >= maxCycles {
			return m.result(), fmt.Errorf("%w (%d cycles)", ErrMaxCycles, maxCycles)
		}
		c.step()
	}
	return m.result(), c.runErr
}

// Step advances the machine a single cycle; used by fine-grained tests.
func (m *Machine) Step() { m.core.step() }

// Halted reports whether the program has exited.
func (m *Machine) Halted() bool { return m.core.halted }

// Cycle returns the current cycle count.
func (m *Machine) Cycle() int64 { return m.core.cycle }

// ArchReg returns the committed architectural value of a register.
func (m *Machine) ArchReg(r isa.Reg) uint64 { return m.core.archRegs[r] }

func (m *Machine) result() Result {
	return Result{
		Cycles:            m.core.cycle,
		Instructions:      m.core.retired,
		ExitCode:          m.core.exitCode,
		Output:            m.core.output,
		Branches:          m.core.branches,
		Mispredicts:       m.core.mispredicts,
		DCacheHits:        m.core.dc.hits,
		DCacheMisses:      m.core.dc.misses,
		TLBMisses:         m.core.dc.tlbMisses,
		Prefetches:        m.core.dc.prefetches,
		PrefetchesUseful:  m.core.dc.nlpUseful,
		PrefetchesUseless: m.core.dc.nlpUseless,
		LSUReplays:        m.core.lsuReplays,
		MSHRHighWater:     m.core.dc.mshrHighWater,
	}
}
