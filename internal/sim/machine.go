package sim

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"microsampler/internal/asm"
	"microsampler/internal/isa"
)

// FaultHook is a per-cycle hook consulted from the run loop before each
// step; see Machine.SetFaultHook. Returning an error aborts the run
// with that error. Hooks may panic or block to model crashes and hangs;
// a blocking hook must honour ctx, which the run loop cancels when its
// deadline expires or the stall watchdog fires. The alias (rather than
// a defined type) lets any compatible function — e.g. one produced by
// faults.Injector.Hook — be installed without conversion.
type FaultHook = func(ctx context.Context, cycle int64) error

// Machine couples a core with memory and a loaded program; it is the
// top-level entry point of the simulator.
type Machine struct {
	cfg    Config
	mem    *Memory
	core   *Core
	fault  FaultHook
	flight *FlightRecorder
	obs    func(delta int64)
}

// ErrMaxCycles is returned when a run exceeds its cycle budget.
var ErrMaxCycles = errors.New("sim: exceeded maximum cycle budget")

// ErrStalled is returned by RunContext when the wall-clock watchdog
// observes no cycle progress for the configured stall window — the run
// loop is alive but stuck (a blocking tracer or fault hook), as opposed
// to a program spinning without committing, which the in-core
// no-progress detector catches in simulated cycles.
var ErrStalled = errors.New("sim: watchdog: no cycle progress")

// New creates a machine with the given configuration.
func New(cfg Config) (*Machine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	mem := NewMemory()
	return &Machine{cfg: cfg, mem: mem, core: newCore(cfg, mem)}, nil
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Memory returns the machine's physical memory, for harnesses that need
// to initialise inputs or inspect outputs.
func (m *Machine) Memory() *Memory { return m.mem }

// SetTracer attaches a per-cycle tracer (may be nil).
func (m *Machine) SetTracer(t Tracer) { m.core.tracer = t }

// SetFaultHook installs a per-cycle fault hook consulted from the run
// loop (may be nil). The zero-fault path pays only a nil check per
// cycle.
func (m *Machine) SetFaultHook(h FaultHook) { m.fault = h }

// SetCycleObserver installs a callback receiving batches of simulated
// cycle progress (may be nil). RunContext flushes the delta since the
// last flush every progressInterval cycles and once more on every exit
// path, so an observer sees the complete cycle count of a run without
// per-cycle overhead. The callback runs on the simulation goroutine and
// must be cheap.
func (m *Machine) SetCycleObserver(fn func(delta int64)) { m.obs = fn }

// LoadProgram installs an assembled program image and resets the PC and
// stack pointer. Microarchitectural state (caches, predictors) is left
// as-is, so a fresh Machine starts from the paper's "reset state".
func (m *Machine) LoadProgram(p *asm.Program) error {
	if len(p.Text) == 0 {
		return errors.New("sim: empty text segment")
	}
	m.mem.WriteBytes(p.TextBase, p.Text)
	if len(p.Data) > 0 {
		m.mem.WriteBytes(p.DataBase, p.Data)
	}
	m.core.fetchPC = p.Entry
	m.setReg(isa.SP, p.StackTop)
	return nil
}

// setReg writes an architectural register in both the renamed and
// committed state; only valid before execution starts.
func (m *Machine) setReg(r isa.Reg, v uint64) {
	p := m.core.rat[r]
	m.core.prfVal[p] = v
	m.core.prfReady[p] = 0
	m.core.archRegs[r] = v
}

// Result summarises a completed run.
type Result struct {
	Cycles       int64
	Instructions uint64
	ExitCode     uint64
	Output       []byte
	Branches     uint64
	Mispredicts  uint64
	DCacheHits   uint64
	DCacheMisses uint64
	TLBMisses    uint64
	Prefetches   uint64
	// PrefetchesUseful counts prefetched lines that later served a
	// demand access; PrefetchesUseless counts prefetched lines evicted
	// without ever being demanded (the prefetcher's mispredictions).
	PrefetchesUseful  uint64
	PrefetchesUseless uint64
	// Stride-prefetcher issue and accuracy counters, mirroring the
	// next-line counters above. Zero unless Config.StridePrefetcher.
	StridePrefetches        uint64
	StridePrefetchesUseful  uint64
	StridePrefetchesUseless uint64
	// LSUReplays counts load/store issue attempts bounced because every
	// MSHR or fill-buffer slot was busy.
	LSUReplays uint64
	// MSHRHighWater is the peak number of simultaneously outstanding
	// demand misses.
	MSHRHighWater int
}

// IPC returns retired instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// Run executes until the program exits or maxCycles elapse.
func (m *Machine) Run(maxCycles int64) (Result, error) {
	return m.RunContext(context.Background(), maxCycles, 0)
}

// progressInterval is how often (in simulated cycles) the run loop
// publishes progress and polls for cancellation: frequent enough that a
// deadline lands within milliseconds of wall time, rare enough that the
// zero-fault hot path pays nothing measurable per cycle.
const progressInterval = 1024

// RunContext executes until the program exits, maxCycles elapse, ctx is
// cancelled (checked between cycles, so a deadline bounds the run in
// wall time), an installed fault hook reports an error, or — when
// stall > 0 — a wall-clock watchdog observes no cycle progress for
// stall. A watchdog abort cancels the context handed to the fault hook,
// so ctx-honouring hangs unblock, and surfaces as an ErrStalled-wrapped
// error.
func (m *Machine) RunContext(ctx context.Context, maxCycles int64, stall time.Duration) (Result, error) {
	c := m.core

	observed := c.cycle
	flushObs := func() {
		if m.obs == nil {
			return
		}
		if d := c.cycle - observed; d > 0 {
			observed = c.cycle
			m.obs(d)
		}
	}
	defer flushObs()

	runCtx := ctx
	var stalled atomic.Bool
	var progress atomic.Int64
	if stall > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithCancel(ctx)
		defer cancel()
		watchDone := make(chan struct{})
		defer close(watchDone)
		go watchProgress(runCtx, cancel, watchDone, &progress, &stalled, stall)
	}

	for !c.halted {
		if c.cycle >= maxCycles {
			return m.result(), fmt.Errorf("%w (%d cycles)", ErrMaxCycles, maxCycles)
		}
		if c.cycle&(progressInterval-1) == 0 {
			progress.Store(c.cycle)
			flushObs()
			if runCtx.Err() != nil {
				return m.result(), m.abortErr(runCtx, &stalled, stall)
			}
		}
		if m.fault != nil {
			if err := m.fault(runCtx, c.cycle); err != nil {
				if stalled.Load() {
					err = fmt.Errorf("%w for %v at cycle %d: %v", ErrStalled, stall, c.cycle, err)
				}
				return m.result(), err
			}
		}
		c.step()
		if m.flight != nil {
			m.flight.record(c)
		}
	}
	return m.result(), c.runErr
}

// abortErr shapes the error of a context-observed abort: a watchdog
// stall, an expired deadline, or plain cancellation.
func (m *Machine) abortErr(runCtx context.Context, stalled *atomic.Bool, stall time.Duration) error {
	c := m.core
	if stalled.Load() {
		return fmt.Errorf("%w for %v (cycle %d, pc≈%#x)", ErrStalled, stall, c.cycle, c.fetchPC)
	}
	return fmt.Errorf("sim: run aborted at cycle %d: %w", c.cycle, context.Cause(runCtx))
}

// watchProgress is the wall-clock stall watchdog: it samples the cycle
// counter the run loop publishes and, when it stops advancing for the
// stall window, flags the stall and cancels the run context so blocked
// hooks unblock and the loop aborts.
func watchProgress(ctx context.Context, cancel context.CancelFunc, done <-chan struct{},
	progress *atomic.Int64, stalled *atomic.Bool, stall time.Duration) {
	interval := stall / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	last := int64(-1)
	lastChange := time.Now()
	for {
		select {
		case <-done:
			return
		case <-ctx.Done():
			return
		case now := <-tick.C:
			cur := progress.Load()
			if cur != last {
				last, lastChange = cur, now
				continue
			}
			if now.Sub(lastChange) >= stall {
				stalled.Store(true)
				cancel()
				return
			}
		}
	}
}

// Step advances the machine a single cycle; used by fine-grained tests.
func (m *Machine) Step() { m.core.step() }

// Halted reports whether the program has exited.
func (m *Machine) Halted() bool { return m.core.halted }

// Cycle returns the current cycle count.
func (m *Machine) Cycle() int64 { return m.core.cycle }

// ArchReg returns the committed architectural value of a register.
func (m *Machine) ArchReg(r isa.Reg) uint64 { return m.core.archRegs[r] }

func (m *Machine) result() Result {
	return Result{
		Cycles:                  m.core.cycle,
		Instructions:            m.core.retired,
		ExitCode:                m.core.exitCode,
		Output:                  m.core.output,
		Branches:                m.core.branches,
		Mispredicts:             m.core.mispredicts,
		DCacheHits:              m.core.dc.hits,
		DCacheMisses:            m.core.dc.misses,
		TLBMisses:               m.core.dc.tlbMisses,
		Prefetches:              m.core.dc.prefetches,
		PrefetchesUseful:        m.core.dc.nlpUseful,
		PrefetchesUseless:       m.core.dc.nlpUseless,
		StridePrefetches:        m.core.dc.spfPrefetches,
		StridePrefetchesUseful:  m.core.dc.spfUseful,
		StridePrefetchesUseless: m.core.dc.spfUseless,
		LSUReplays:              m.core.lsuReplays,
		MSHRHighWater:           m.core.dc.mshrHighWater,
	}
}
