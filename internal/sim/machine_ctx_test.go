package sim

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"microsampler/internal/asm"
)

// newLoaded builds a machine with src loaded, without running it.
func newLoaded(t *testing.T, cfg Config, src string) *Machine {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("new machine: %v", err)
	}
	if err := m.LoadProgram(p); err != nil {
		t.Fatalf("load: %v", err)
	}
	return m
}

// longLoop busy-loops for far more cycles than any test budget.
const longLoop = `
_start:
	li   t0, 100000000
loop:
	addi t0, t0, -1
	bnez t0, loop
	li a0, 0
` + exitStub

const quickExit = `
_start:
	li a0, 7
` + exitStub

func TestRunContextCancelledBeforeStart(t *testing.T) {
	m := newLoaded(t, SmallBoom(), longLoop)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := m.RunContext(ctx, 5_000_000, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestRunContextDeadlineAbortsMidRun(t *testing.T) {
	m := newLoaded(t, SmallBoom(), longLoop)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := m.RunContext(ctx, 1<<60, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Errorf("deadline took %v to land", time.Since(start))
	}
	if res.Cycles == 0 {
		t.Error("abort result should carry the partial cycle count")
	}
}

func TestRunContextCompletesNormally(t *testing.T) {
	m := newLoaded(t, SmallBoom(), quickExit)
	res, err := m.RunContext(context.Background(), 5_000_000, 50*time.Millisecond)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.ExitCode != 7 {
		t.Errorf("exit = %d want 7", res.ExitCode)
	}
}

func TestFaultHookErrorAbortsRun(t *testing.T) {
	m := newLoaded(t, SmallBoom(), longLoop)
	boom := errors.New("injected")
	var firedAt int64 = -1
	m.SetFaultHook(func(ctx context.Context, cycle int64) error {
		if cycle >= 500 {
			firedAt = cycle
			return boom
		}
		return nil
	})
	res, err := m.RunContext(context.Background(), 5_000_000, 0)
	if !errors.Is(err, boom) {
		t.Fatalf("want injected error, got %v", err)
	}
	if firedAt != 500 {
		t.Errorf("hook fired at cycle %d want 500", firedAt)
	}
	if res.Cycles < 499 || res.Cycles > 501 {
		t.Errorf("abort at cycle %d want ~500", res.Cycles)
	}
}

func TestWatchdogAbortsBlockedHook(t *testing.T) {
	m := newLoaded(t, SmallBoom(), longLoop)
	m.SetFaultHook(func(ctx context.Context, cycle int64) error {
		if cycle < 2000 {
			return nil
		}
		// Model a hang that honours cancellation, like a stuck I/O call
		// under a deadline-aware client.
		<-ctx.Done()
		return fmt.Errorf("hang aborted: %w", ctx.Err())
	})
	start := time.Now()
	_, err := m.RunContext(context.Background(), 5_000_000, 50*time.Millisecond)
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("want ErrStalled, got %v", err)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Errorf("watchdog took %v", d)
	}
}

func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	m := newLoaded(t, SmallBoom(), `
_start:
	li   t0, 200000
loop:
	addi t0, t0, -1
	bnez t0, loop
	li a0, 3
`+exitStub)
	res, err := m.RunContext(context.Background(), 5_000_000, 250*time.Millisecond)
	if err != nil {
		t.Fatalf("healthy run tripped the watchdog: %v", err)
	}
	if res.ExitCode != 3 {
		t.Errorf("exit = %d want 3", res.ExitCode)
	}
}

func TestRunContextMaxCyclesStillEnforced(t *testing.T) {
	m := newLoaded(t, SmallBoom(), longLoop)
	_, err := m.RunContext(context.Background(), 10_000, 0)
	if !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("want ErrMaxCycles, got %v", err)
	}
}

// TestRunMatchesRunContext pins Run as a thin RunContext wrapper: the
// same program yields identical results through both entry points.
func TestRunMatchesRunContext(t *testing.T) {
	a := newLoaded(t, SmallBoom(), quickExit)
	resA, errA := a.Run(5_000_000)
	b := newLoaded(t, SmallBoom(), quickExit)
	resB, errB := b.RunContext(context.Background(), 5_000_000, 0)
	if errA != nil || errB != nil {
		t.Fatalf("errs: %v %v", errA, errB)
	}
	if resA.Cycles != resB.Cycles || resA.ExitCode != resB.ExitCode ||
		resA.Instructions != resB.Instructions {
		t.Errorf("Run/RunContext diverge: %+v vs %+v", resA, resB)
	}
}
