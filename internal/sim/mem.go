package sim

import "encoding/binary"

const pageBytes = 4096

// Memory is a sparse, page-granular physical memory. Reads from unmapped
// pages return zeroes; writes allocate pages on demand. It is the
// functional backing store; all timing is modeled by the caches.
type Memory struct {
	pages map[uint64]*[pageBytes]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageBytes]byte)}
}

func (m *Memory) page(addr uint64, alloc bool) *[pageBytes]byte {
	pn := addr / pageBytes
	p := m.pages[pn]
	if p == nil && alloc {
		p = new([pageBytes]byte)
		m.pages[pn] = p
	}
	return p
}

// LoadByte returns the byte at addr.
func (m *Memory) LoadByte(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr%pageBytes]
}

// StoreByte stores a byte at addr.
func (m *Memory) StoreByte(addr uint64, v byte) {
	m.page(addr, true)[addr%pageBytes] = v
}

// Read returns size bytes starting at addr as a little-endian integer.
// size must be 1, 2, 4 or 8.
func (m *Memory) Read(addr uint64, size int) uint64 {
	// Fast path: within one page.
	off := addr % pageBytes
	if off+uint64(size) <= pageBytes {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		switch size {
		case 1:
			return uint64(p[off])
		case 2:
			return uint64(binary.LittleEndian.Uint16(p[off:]))
		case 4:
			return uint64(binary.LittleEndian.Uint32(p[off:]))
		case 8:
			return binary.LittleEndian.Uint64(p[off:])
		}
	}
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(m.LoadByte(addr+uint64(i))) << (8 * i)
	}
	return v
}

// Write stores size bytes of v at addr, little-endian.
func (m *Memory) Write(addr uint64, size int, v uint64) {
	off := addr % pageBytes
	if off+uint64(size) <= pageBytes {
		p := m.page(addr, true)
		switch size {
		case 1:
			p[off] = byte(v)
			return
		case 2:
			binary.LittleEndian.PutUint16(p[off:], uint16(v))
			return
		case 4:
			binary.LittleEndian.PutUint32(p[off:], uint32(v))
			return
		case 8:
			binary.LittleEndian.PutUint64(p[off:], v)
			return
		}
	}
	for i := 0; i < size; i++ {
		m.StoreByte(addr+uint64(i), byte(v>>(8*i)))
	}
}

// WriteBytes copies b into memory starting at addr.
func (m *Memory) WriteBytes(addr uint64, b []byte) {
	for len(b) > 0 {
		off := addr % pageBytes
		n := copy(m.page(addr, true)[off:], b)
		b = b[n:]
		addr += uint64(n)
	}
}

// ReadBytes copies n bytes starting at addr into a new slice.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.LoadByte(addr + uint64(i))
	}
	return out
}
