package sim

// gshare is a global-history XOR-indexed pattern history table of 2-bit
// saturating counters, plus a direct-mapped BTB for indirect targets.
type gshare struct {
	pht     []uint8 // 2-bit counters, initialised weakly not-taken
	mask    uint64
	history uint64 // global history, youngest bit is LSB
	histLen uint

	btbTags    []uint64
	btbTargets []uint64
	btbMask    uint64

	// Return-address stack (speculatively updated at fetch, no
	// checkpointing — wrong-path pushes/pops corrupt it occasionally,
	// as in simple hardware RAS implementations).
	ras    []uint64
	rasTop int
}

const rasEntries = 8

func newGshare(phtEntries, btbEntries int) *gshare {
	g := &gshare{
		pht:        make([]uint8, phtEntries),
		mask:       uint64(phtEntries - 1),
		histLen:    12,
		btbTags:    make([]uint64, btbEntries),
		btbTargets: make([]uint64, btbEntries),
		btbMask:    uint64(btbEntries - 1),
	}
	for i := range g.pht {
		g.pht[i] = 1 // weakly not-taken
	}
	g.ras = make([]uint64, rasEntries)
	return g
}

// rasPush records a call's return address.
func (g *gshare) rasPush(retAddr uint64) {
	g.rasTop = (g.rasTop + 1) % rasEntries
	g.ras[g.rasTop] = retAddr
}

// rasPop predicts a return target.
func (g *gshare) rasPop() (uint64, bool) {
	t := g.ras[g.rasTop]
	if t == 0 {
		return 0, false
	}
	g.ras[g.rasTop] = 0
	g.rasTop = (g.rasTop - 1 + rasEntries) % rasEntries
	return t, true
}

func (g *gshare) index(pc uint64) uint64 {
	return ((pc >> 2) ^ g.history) & g.mask
}

// predict returns the predicted direction for the conditional branch at
// pc and the PHT index used (so the resolver can train the same entry).
func (g *gshare) predict(pc uint64) (taken bool, idx uint64) {
	idx = g.index(pc)
	return g.pht[idx] >= 2, idx
}

// shiftHistory speculatively pushes a predicted direction into the
// global history; it returns the previous history for checkpointing.
func (g *gshare) shiftHistory(taken bool) uint64 {
	prev := g.history
	g.history = (g.history << 1) & ((1 << g.histLen) - 1)
	if taken {
		g.history |= 1
	}
	return prev
}

// restoreHistory rewinds the global history to a checkpoint (taken on a
// mispredicted branch) and then pushes the actual outcome.
func (g *gshare) restoreHistory(checkpoint uint64, actual bool) {
	g.history = checkpoint
	g.shiftHistory(actual)
}

// train updates the 2-bit counter that produced a prediction. The pc and
// checkpointed history carried for TAGE's sake are unused: gshare already
// folded them into idx at predict time.
func (g *gshare) train(idx, _, _ uint64, taken bool) {
	c := g.pht[idx]
	if taken {
		if c < 3 {
			c++
		}
	} else if c > 0 {
		c--
	}
	g.pht[idx] = c
}

// btbLookup returns the last observed target for an indirect branch.
func (g *gshare) btbLookup(pc uint64) (uint64, bool) {
	i := (pc >> 2) & g.btbMask
	if g.btbTags[i] == pc {
		return g.btbTargets[i], true
	}
	return 0, false
}

// btbUpdate records the actual target of an indirect branch.
func (g *gshare) btbUpdate(pc, target uint64) {
	i := (pc >> 2) & g.btbMask
	g.btbTags[i] = pc
	g.btbTargets[i] = target
}
